/**
 * @file
 * Off-chip predictor tests: POPET perceptron learning, HMP hybrid
 * voting, TTP residency tracking, plus generic interface
 * properties parameterized across all kinds.
 */

#include <cstdint>
#include <gtest/gtest.h>

#include "common/rng.hh"
#include "ocp/hmp.hh"
#include "ocp/ocp.hh"
#include "ocp/popet.hh"
#include "ocp/ttp.hh"

namespace athena
{
namespace
{

/** Train with a per-PC ground truth, return accuracy on a held
 *  replay of the same pattern. */
double
perPcAccuracy(OffChipPredictor &ocp)
{
    // PC 0xA00 loads always go off-chip; PC 0xB00 loads never do.
    Rng rng(17);
    for (int i = 0; i < 6000; ++i) {
        bool offchip = rng.chance(0.5);
        std::uint64_t pc = offchip ? 0xA00 : 0xB00;
        Addr addr = (rng.next() % (1 << 20)) << kLineShift;
        ocp.predict(pc, addr);
        ocp.train(pc, addr, offchip);
    }
    unsigned correct = 0;
    const unsigned trials = 2000;
    for (unsigned i = 0; i < trials; ++i) {
        bool offchip = rng.chance(0.5);
        std::uint64_t pc = offchip ? 0xA00 : 0xB00;
        Addr addr = (rng.next() % (1 << 20)) << kLineShift;
        if (ocp.predict(pc, addr) == offchip)
            ++correct;
        ocp.train(pc, addr, offchip);
    }
    return static_cast<double>(correct) / trials;
}

TEST(Popet, LearnsPerPcBehaviour)
{
    PopetPredictor popet;
    EXPECT_GT(perPcAccuracy(popet), 0.9);
}

TEST(Popet, DefaultsToOnChip)
{
    PopetPredictor popet;
    // Zero-initialized weights with a positive activation threshold
    // predict on-chip, the safe default.
    EXPECT_FALSE(popet.predict(0x123, 0x456000));
}

TEST(Popet, AdaptsToDrift)
{
    PopetPredictor popet;
    for (int i = 0; i < 4000; ++i) {
        popet.predict(0xC00, static_cast<Addr>(i) << kLineShift);
        popet.train(0xC00, static_cast<Addr>(i) << kLineShift, true);
    }
    EXPECT_TRUE(popet.predict(0xC00, 0x7777000));
    for (int i = 0; i < 4000; ++i) {
        popet.predict(0xC00, static_cast<Addr>(i) << kLineShift);
        popet.train(0xC00, static_cast<Addr>(i) << kLineShift,
                    false);
    }
    EXPECT_FALSE(popet.predict(0xC00, 0x8888000));
}

TEST(Hmp, LearnsPerPcBehaviour)
{
    // HMP's gshare/gskew components see a *random* global off-chip
    // history in this workload, so only the local component can
    // learn it and the majority vote caps well below POPET —
    // consistent with HMP being the weaker OCP in Fig. 12b.
    HmpPredictor hmp;
    EXPECT_GT(perPcAccuracy(hmp), 0.55);
}

TEST(Hmp, LearnsGlobalPattern)
{
    HmpPredictor hmp;
    // Alternating off-chip/on-chip from a single PC: the gshare
    // and gskew components capture it through global history.
    for (int i = 0; i < 8000; ++i) {
        hmp.predict(0xD00, static_cast<Addr>(i) << kLineShift);
        hmp.train(0xD00, static_cast<Addr>(i) << kLineShift,
                  i % 2 == 0);
    }
    unsigned correct = 0;
    for (int i = 0; i < 1000; ++i) {
        bool truth = i % 2 == 0;
        if (hmp.predict(0xD00, static_cast<Addr>(i) << kLineShift) ==
            truth) {
            ++correct;
        }
        hmp.train(0xD00, static_cast<Addr>(i) << kLineShift, truth);
    }
    EXPECT_GT(correct, 750u);
}

TEST(Ttp, TracksResidency)
{
    TtpPredictor ttp(4096);
    Addr addr = 0x1234000;
    EXPECT_TRUE(ttp.predict(1, addr)) << "unknown line -> off-chip";
    ttp.onFill(lineNumber(addr));
    EXPECT_FALSE(ttp.predict(1, addr)) << "resident -> on-chip";
    ttp.onEvict(lineNumber(addr));
    EXPECT_TRUE(ttp.predict(1, addr)) << "evicted -> off-chip";
}

TEST(Ttp, EvictOfAliasedLineIsSafe)
{
    TtpPredictor ttp(64);
    ttp.onFill(10);
    // Evicting a different line (even an aliasing one) must not
    // throw; at worst it perturbs one partial tag.
    for (Addr l = 0; l < 1000; ++l)
        ttp.onEvict(l);
    SUCCEED();
}

TEST(Ttp, HighAccuracyOnDisjointSets)
{
    TtpPredictor ttp(64 * 1024);
    for (Addr l = 0; l < 5000; ++l)
        ttp.onFill(l);
    unsigned correct = 0;
    for (Addr l = 0; l < 5000; ++l) {
        if (!ttp.predict(0, lineBase(l)))
            ++correct;
    }
    for (Addr l = 100000; l < 105000; ++l) {
        if (ttp.predict(0, lineBase(l)))
            ++correct;
    }
    EXPECT_GT(correct, 9800u);
}

class AnyOcp : public ::testing::TestWithParam<OcpKind>
{};

TEST_P(AnyOcp, ResetIsCleanSlate)
{
    auto ocp = makeOcp(GetParam());
    ASSERT_NE(ocp, nullptr);
    for (int i = 0; i < 1000; ++i) {
        ocp->predict(0xA00, static_cast<Addr>(i) << kLineShift);
        ocp->train(0xA00, static_cast<Addr>(i) << kLineShift, true);
        ocp->onFill(i);
    }
    ocp->reset();
    auto fresh = makeOcp(GetParam());
    for (int i = 0; i < 50; ++i) {
        Addr a = static_cast<Addr>(i + 7000) << kLineShift;
        EXPECT_EQ(ocp->predict(0xB11, a), fresh->predict(0xB11, a));
    }
}

TEST_P(AnyOcp, ReportsStorage)
{
    auto ocp = makeOcp(GetParam());
    ASSERT_NE(ocp, nullptr);
    EXPECT_GT(ocp->storageBits(), 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Kinds, AnyOcp,
    ::testing::Values(OcpKind::kPopet, OcpKind::kHmp, OcpKind::kTtp),
    [](const ::testing::TestParamInfo<OcpKind> &info) {
        return ocpKindName(info.param);
    });

} // namespace
} // namespace athena

/**
 * @file
 * QVStore tests: SARSA fixed-point behaviour, argmax and
 * mean-of-others (Algorithm 1 inputs), tile-coded generalization
 * across the fine/coarse plane split, and float-vs-8-bit-quantized
 * parity.
 */

#include <cstdint>
#include <gtest/gtest.h>

#include "athena/qvstore.hh"
#include "common/rng.hh"

namespace athena
{
namespace
{

QVStoreParams
floatParams()
{
    QVStoreParams p;
    p.quantized = false;
    p.initQ = 0.0;
    return p;
}

TEST(QVStore, InitializedToInitQ)
{
    QVStoreParams p = floatParams();
    p.initQ = 0.5;
    QVStore qv(p);
    EXPECT_NEAR(qv.q(0x123, 2), 0.5, 1e-9);
}

TEST(QVStore, RepeatedUpdatesConvergeToReward)
{
    // With a self-loop (s, a) -> (s, a), Q converges to
    // r / (1 - gamma).
    QVStoreParams p = floatParams();
    p.alpha = 0.3;
    p.gamma = 0.6;
    QVStore qv(p);
    const std::uint32_t s = 0x2a;
    for (int i = 0; i < 500; ++i)
        qv.update(s, 1, 1.0, s, 1);
    EXPECT_NEAR(qv.q(s, 1), 1.0 / (1.0 - 0.6), 0.05);
}

TEST(QVStore, ArgmaxPicksHighest)
{
    QVStore qv(floatParams());
    const std::uint32_t s = 0x15;
    for (int i = 0; i < 200; ++i)
        qv.update(s, 2, 0.8, s, 2);
    EXPECT_EQ(qv.argmax(s), 2u);
}

TEST(QVStore, ArgmaxTiesResolveToMostSpeculative)
{
    QVStoreParams p = floatParams();
    p.initQ = 1.0;
    QVStore qv(p);
    // All-equal optimistic init: ties go to the highest index
    // (the "both" action), so the agent starts from the Naive
    // prior.
    EXPECT_EQ(qv.argmax(0x77), p.actions - 1);
}

TEST(QVStore, MeanOfOthersExcludesSelected)
{
    QVStore qv(floatParams());
    const std::uint32_t s = 9;
    for (int i = 0; i < 300; ++i)
        qv.update(s, 3, 1.2, s, 3);
    double others = qv.meanOfOthers(s, 3);
    EXPECT_LT(others, qv.q(s, 3));
    EXPECT_NEAR(others, (qv.q(s, 0) + qv.q(s, 1) + qv.q(s, 2)) / 3.0,
                1e-9);
}

TEST(QVStore, NegativeRewardsLowerQ)
{
    QVStore qv(floatParams());
    const std::uint32_t s = 4;
    for (int i = 0; i < 100; ++i)
        qv.update(s, 0, -1.0, s, 0);
    EXPECT_LT(qv.q(s, 0), -1.0);
}

TEST(QVStore, TileCodedPlanesGeneralizeToNeighbours)
{
    // Two states differing by one quantization level in one feature
    // share coarse-plane rows, so training one should move the
    // other; two far-apart states should share (almost) nothing.
    QVStoreParams p = floatParams();
    p.stateFields = 4;
    p.bitsPerField = 2;
    QVStore qv(p);
    // Feature layout: 2 bits per field, 4 fields.
    std::uint32_t s = 0b01101001;
    std::uint32_t neighbour = 0b01101010; // last field 01 -> 10
    std::uint32_t far = 0b11000011;       // >=2 levels off everywhere
    for (int i = 0; i < 200; ++i)
        qv.update(s, 1, 1.0, s, 1);
    double q_s = qv.q(s, 1);
    double q_near = qv.q(neighbour, 1);
    double q_far = qv.q(far, 1);
    EXPECT_GT(q_near, 0.2 * q_s)
        << "neighbouring states must share coarse planes";
    EXPECT_LT(q_far, q_near)
        << "distant states must share less than neighbours";
}

TEST(QVStore, QuantizedTracksFloatWithinTolerance)
{
    QVStoreParams fp = floatParams();
    fp.alpha = 0.4;
    QVStoreParams qp = fp;
    qp.quantized = true;
    QVStore f(fp), q(qp);
    const std::uint32_t s = 0x33;
    for (int i = 0; i < 400; ++i) {
        f.update(s, 2, 0.5, s, 2);
        q.update(s, 2, 0.5, s, 2);
    }
    // Stochastic rounding keeps the 8-bit path near the float path
    // (within a few LSBs of the s3.4 grid summed over 8 planes).
    EXPECT_NEAR(q.q(s, 2), f.q(s, 2), 0.5);
}

TEST(QVStore, QuantizedSaturatesGracefully)
{
    QVStoreParams p;
    p.quantized = true;
    p.initQ = 0.0;
    QVStore qv(p);
    const std::uint32_t s = 0x44;
    for (int i = 0; i < 5000; ++i)
        qv.update(s, 0, 2.0, s, 0);
    // s3.4 per-plane entries clamp at ~7.94 each; the sum must be
    // finite and bounded.
    EXPECT_LE(qv.q(s, 0), 8.0 * 8.0);
    EXPECT_GT(qv.q(s, 0), 1.0);
}

TEST(QVStore, ResetRestoresInit)
{
    QVStoreParams p = floatParams();
    p.initQ = 0.25;
    QVStore qv(p);
    qv.update(7, 1, 3.0, 7, 1);
    qv.reset();
    EXPECT_NEAR(qv.q(7, 1), 0.25, 1e-9);
}

TEST(QVStore, StorageMatchesTable4)
{
    QVStore qv; // default 8 x 64 x 4 x 8 bits
    EXPECT_EQ(qv.storageBits(), 8u * 64 * 4 * 8);
    EXPECT_EQ(qv.storageBits() / 8 / 1024, 2u); // 2 KB
}

TEST(QVStore, RowMemoizationIsBitEquivalentToPerCallHashing)
{
    // The memoized row-index path must be indistinguishable from
    // re-hashing every plane on every call: drive two stores — one
    // with the memo, one without — through an identical random
    // sequence of updates and queries and demand exact double
    // equality throughout.
    QVStoreParams with = floatParams();
    with.memoizeRows = true;
    QVStoreParams without = with;
    without.memoizeRows = false;
    QVStore a(with), b(without);

    Rng rng(2024);
    for (int i = 0; i < 4000; ++i) {
        auto s = static_cast<std::uint32_t>(rng.next() & 0xfff);
        auto s2 = static_cast<std::uint32_t>(rng.next() & 0xfff);
        unsigned act = static_cast<unsigned>(rng.below(4));
        double r = (static_cast<double>(rng.next() % 2000) - 1000.0) /
                   500.0;
        a.update(s, act, r, s2, (act + 1) % 4);
        b.update(s, act, r, s2, (act + 1) % 4);
        ASSERT_EQ(a.q(s, act), b.q(s, act)) << "iter " << i;
        ASSERT_EQ(a.argmax(s2), b.argmax(s2)) << "iter " << i;
        ASSERT_EQ(a.meanOfOthers(s, act), b.meanOfOthers(s, act))
            << "iter " << i;
        ASSERT_EQ(a.qSeparation(s2, act), b.qSeparation(s2, act))
            << "iter " << i;
    }
}

TEST(QVStore, MemoHandlesOutOfRangeStates)
{
    // States above the packed state space (possible in tests and
    // ad-hoc callers) take the scratch path; results must match the
    // memo-disabled reference exactly.
    QVStoreParams with = floatParams();
    QVStoreParams without = with;
    without.memoizeRows = false;
    QVStore a(with), b(without);
    const std::uint32_t big = 0xdeadbeef; // >> 12-bit state space
    a.update(big, 1, 0.7, big, 1);
    b.update(big, 1, 0.7, big, 1);
    EXPECT_EQ(a.q(big, 1), b.q(big, 1));
    EXPECT_EQ(a.argmax(big), b.argmax(big));
}

TEST(QVStore, QSeparationMatchesQMinusMeanOfOthers)
{
    QVStore qv(floatParams());
    Rng rng(99);
    for (int i = 0; i < 200; ++i) {
        auto s = static_cast<std::uint32_t>(rng.next() & 0xfff);
        unsigned act = static_cast<unsigned>(rng.below(4));
        qv.update(s, act, 0.3, s, act);
        EXPECT_EQ(qv.qSeparation(s, act),
                  qv.q(s, act) - qv.meanOfOthers(s, act));
    }
}

} // namespace
} // namespace athena

/**
 * @file
 * StepPicker tests: min-heap correctness against a reference scan,
 * deterministic lowest-index-first tie-breaking, and the bounded-
 * skew invariant of loose synchronization (the picked core is never
 * ahead of any other unfinished core).
 */

#include <cstdint>
#include <gtest/gtest.h>
#include <vector>

#include "common/rng.hh"
#include "sim/step_picker.hh"

namespace athena
{
namespace
{

TEST(StepPicker, PicksLeastAdvanced)
{
    StepPicker picker(4);
    picker.advance(0, 40);
    picker.advance(1, 10);
    picker.advance(2, 30);
    picker.advance(3, 20);
    EXPECT_EQ(picker.top(), 1u);
    picker.advance(1, 25);
    EXPECT_EQ(picker.top(), 3u);
    picker.advance(3, 26);
    EXPECT_EQ(picker.top(), 1u);
}

TEST(StepPicker, TiesResolveToLowestIndex)
{
    // All cores start at cycle 0: the first pick must be core 0,
    // not an artifact of scan direction (the old scan picked the
    // *last* tied core).
    StepPicker picker(8);
    EXPECT_EQ(picker.top(), 0u);
    picker.advance(0, 5);
    EXPECT_EQ(picker.top(), 1u);
    // Re-tie cores 2 and 6 at cycle 5 after advancing the rest.
    for (unsigned c = 0; c < 8; ++c)
        picker.advance(c, c == 2 || c == 6 ? 5u : 9u);
    EXPECT_EQ(picker.top(), 2u);
    picker.advance(2, 5); // no progress: still tied, still first
    EXPECT_EQ(picker.top(), 2u);
    picker.advance(2, 6);
    EXPECT_EQ(picker.top(), 6u);
}

TEST(StepPicker, FinishRemovesCore)
{
    StepPicker picker(3);
    picker.advance(0, 1);
    picker.advance(1, 2);
    picker.advance(2, 3);
    picker.finish(0);
    EXPECT_EQ(picker.top(), 1u);
    picker.finish(1);
    EXPECT_EQ(picker.top(), 2u);
    picker.finish(2);
    EXPECT_TRUE(picker.empty());
}

TEST(StepPicker, MatchesReferenceScanUnderRandomAdvances)
{
    // Drive the heap with random monotone advances and check every
    // pick against an O(n) reference scan with the same
    // lowest-index tie-break.
    const unsigned kCores = 6;
    StepPicker picker(kCores);
    std::vector<Cycle> now(kCores, 0);
    std::vector<bool> done(kCores, false);
    unsigned remaining = kCores;
    Rng rng(123);

    while (remaining > 0) {
        unsigned expect = kCores;
        for (unsigned c = 0; c < kCores; ++c) {
            if (done[c])
                continue;
            if (expect == kCores || now[c] < now[expect])
                expect = c;
        }
        ASSERT_EQ(picker.top(), expect);

        // The bounded-skew invariant: the picked core is the least
        // advanced, so stepping it can never widen the spread
        // beyond one instruction's worth of cycles.
        for (unsigned c = 0; c < kCores; ++c) {
            if (!done[c]) {
                ASSERT_LE(now[expect], now[c]);
            }
        }

        if (rng.chance(0.05)) {
            done[expect] = true;
            --remaining;
            picker.finish(expect);
        } else {
            now[expect] += rng.below(20);
            picker.advance(expect, now[expect]);
        }
    }
    EXPECT_TRUE(picker.empty());
}

TEST(StepPicker, SkewStaysBoundedByMaxSingleAdvance)
{
    // Always stepping the least-advanced core keeps the max spread
    // between any two unfinished cores bounded by the largest
    // single-step advance — the loose-synchronization guarantee the
    // multi-core scheduler relies on.
    const unsigned kCores = 5;
    const Cycle kMaxAdvance = 50;
    StepPicker picker(kCores);
    std::vector<Cycle> now(kCores, 0);
    Rng rng(7);

    for (int step = 0; step < 20000; ++step) {
        unsigned pick = picker.top();
        now[pick] += 1 + rng.below(kMaxAdvance);
        picker.advance(pick, now[pick]);

        Cycle lo = now[0], hi = now[0];
        for (unsigned c = 1; c < kCores; ++c) {
            lo = now[c] < lo ? now[c] : lo;
            hi = now[c] > hi ? now[c] : hi;
        }
        ASSERT_LE(hi - lo, kMaxAdvance)
            << "spread exceeded one max advance at step " << step;
    }
}

} // namespace
} // namespace athena

/**
 * @file
 * Warmup-snapshot cache tests: with ATHENA_SNAPSHOT_DIR set, the
 * first sweep of a (config, workload) pair simulates and snapshots
 * its warmup; later sweeps — including a second sweep at a new
 * policy configuration, whose kAllOff baseline shares the same
 * config hash — resume from the snapshots and simulate zero warmup
 * instructions, with bit-identical results.
 */

#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <gtest/gtest.h>
#include <string>
#include <vector>

#include "sim/runner.hh"
#include "sim/system_config.hh"
#include "trace/zoo.hh"

namespace athena
{
namespace
{

RunBudget
smallBudget()
{
    RunBudget b;
    b.simInstructions = 20000;
    b.warmupInstructions = 8000;
    b.mcSimInstructions = 10000;
    b.mcWarmupInstructions = 3000;
    return b;
}

class SnapshotCacheTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        dir = testing::TempDir() + "athena_snap_cache";
        std::filesystem::remove_all(dir);
        std::filesystem::create_directories(dir);
        setenv("ATHENA_SNAPSHOT_DIR", dir.c_str(), 1);
    }

    void
    TearDown() override
    {
        unsetenv("ATHENA_SNAPSHOT_DIR");
        std::filesystem::remove_all(dir);
    }

    std::string dir;
};

TEST_F(SnapshotCacheTest, SecondSweepSkipsWarmup)
{
    auto workloads = evalWorkloads();
    std::vector<WorkloadSpec> specs(workloads.begin(),
                                    workloads.begin() + 3);
    const std::uint64_t warm = smallBudget().warmupInstructions;

    SystemConfig naive =
        makeDesignConfig(CacheDesign::kCd1, PolicyKind::kNaive);
    SystemConfig athena_cfg =
        makeDesignConfig(CacheDesign::kCd1, PolicyKind::kAthena);

    // Cold sweep: every run (baseline + policy per workload)
    // simulates its warmup and leaves a snapshot behind.
    ExperimentRunner cold(smallBudget());
    auto cold_rows = cold.speedups(naive, specs);
    EXPECT_EQ(cold.warmupInstructionsSimulated(),
              2 * specs.size() * warm);

    // Second sweep at a *new policy config*: the kAllOff baselines
    // alias the cached snapshots (configKey hashes only the
    // selected policy's configuration), so only the Athena policy
    // runs simulate warmup.
    ExperimentRunner warmed(smallBudget());
    auto warm_rows = warmed.speedups(athena_cfg, specs);
    EXPECT_EQ(warmed.warmupInstructionsSimulated(),
              specs.size() * warm);

    // Third sweep repeating the Athena config: fully cached, zero
    // warmup instructions simulated.
    ExperimentRunner hot(smallBudget());
    auto hot_rows = hot.speedups(athena_cfg, specs);
    EXPECT_EQ(hot.warmupInstructionsSimulated(), 0u);

    // Resumed runs are bit-identical to cold ones.
    ASSERT_EQ(warm_rows.size(), hot_rows.size());
    for (std::size_t i = 0; i < warm_rows.size(); ++i) {
        EXPECT_EQ(warm_rows[i].result.ipc(),
                  hot_rows[i].result.ipc())
            << specs[i].name;
        EXPECT_EQ(warm_rows[i].baselineIpc, hot_rows[i].baselineIpc)
            << specs[i].name;
        EXPECT_EQ(warm_rows[i].speedup, hot_rows[i].speedup)
            << specs[i].name;
    }
}

TEST_F(SnapshotCacheTest, CachedResultsMatchUncached)
{
    auto workloads = evalWorkloads();
    const WorkloadSpec &spec = workloads.front();
    SystemConfig cfg =
        makeDesignConfig(CacheDesign::kCd1, PolicyKind::kAthena);

    // Reference run with the cache disabled.
    unsetenv("ATHENA_SNAPSHOT_DIR");
    ExperimentRunner plain(smallBudget());
    SimResult want = plain.runOne(cfg, spec);
    setenv("ATHENA_SNAPSHOT_DIR", dir.c_str(), 1);

    ExperimentRunner writer(smallBudget());
    SimResult first = writer.runOne(cfg, spec); // cold: writes
    SimResult second = writer.runOne(cfg, spec); // hot: resumes

    EXPECT_EQ(want.ipc(), first.ipc());
    EXPECT_EQ(want.ipc(), second.ipc());
    EXPECT_EQ(want.cores[0].cycles, second.cores[0].cycles);
    EXPECT_EQ(want.cores[0].llcMisses, second.cores[0].llcMisses);
    EXPECT_EQ(want.dram.demandRequests, second.dram.demandRequests);
    EXPECT_EQ(writer.warmupInstructionsSimulated(),
              smallBudget().warmupInstructions);
}

TEST_F(SnapshotCacheTest, ShardGeometryChangesCacheKey)
{
    // llcBanks/dramChannels are hashed into configKey, so a sweep
    // at a different shard geometry must NOT alias the cached
    // warmup snapshots of another geometry — it simulates its own
    // warmup instead of restoring a wrong-shaped snapshot.
    auto workloads = evalWorkloads();
    const WorkloadSpec &spec = workloads.front();
    SystemConfig mono =
        makeDesignConfig(CacheDesign::kCd1, PolicyKind::kAthena);
    SystemConfig sharded = mono;
    sharded.llcBanks = 2;
    sharded.dramChannels = 2;

    ExperimentRunner first(smallBudget());
    SimResult mono_res = first.runOne(mono, spec);
    EXPECT_EQ(first.warmupInstructionsSimulated(),
              smallBudget().warmupInstructions);

    // Same design/policy, different geometry: cache miss, fresh
    // warmup.
    ExperimentRunner second(smallBudget());
    SimResult shard_res = second.runOne(sharded, spec);
    EXPECT_EQ(second.warmupInstructionsSimulated(),
              smallBudget().warmupInstructions);

    // Each geometry now resumes only from its own snapshot.
    ExperimentRunner third(smallBudget());
    SimResult shard_hot = third.runOne(sharded, spec);
    EXPECT_EQ(third.warmupInstructionsSimulated(), 0u);
    EXPECT_EQ(shard_res.ipc(), shard_hot.ipc());
    EXPECT_EQ(shard_res.cores[0].cycles, shard_hot.cores[0].cycles);
    // Sanity: single-channel and dual-channel runs really are
    // different experiments (per-channel bandwidth adds up).
    EXPECT_EQ(mono_res.cores[0].instructions,
              shard_res.cores[0].instructions);
}

TEST_F(SnapshotCacheTest, CorruptCacheEntryFallsBackToFreshRun)
{
    auto workloads = evalWorkloads();
    const WorkloadSpec &spec = workloads.front();
    SystemConfig cfg =
        makeDesignConfig(CacheDesign::kCd1, PolicyKind::kNaive);

    ExperimentRunner writer(smallBudget());
    SimResult want = writer.runOne(cfg, spec);

    // Trash every cached snapshot.
    for (const auto &entry :
         std::filesystem::directory_iterator(dir)) {
        std::ofstream out(entry.path(),
                          std::ios::binary | std::ios::trunc);
        out << "garbage";
    }

    ExperimentRunner reader(smallBudget());
    SimResult got = reader.runOne(cfg, spec);
    EXPECT_EQ(want.ipc(), got.ipc());
    // The corrupt entry forced a fresh (warmup-simulating) run.
    EXPECT_EQ(reader.warmupInstructionsSimulated(),
              smallBudget().warmupInstructions);
}

TEST_F(SnapshotCacheTest, DisabledWithoutEnvVar)
{
    unsetenv("ATHENA_SNAPSHOT_DIR");
    auto workloads = evalWorkloads();
    SystemConfig cfg =
        makeDesignConfig(CacheDesign::kCd1, PolicyKind::kNaive);
    ExperimentRunner runner(smallBudget());
    (void)runner.runOne(cfg, workloads.front());
    (void)runner.runOne(cfg, workloads.front());
    EXPECT_EQ(runner.warmupInstructionsSimulated(),
              2 * smallBudget().warmupInstructions);
    EXPECT_TRUE(std::filesystem::is_empty(dir));
}

} // namespace
} // namespace athena

/**
 * @file
 * Property-based sweeps: simulator invariants that must hold for
 * every workload in the zoo and across randomized configurations.
 */


#include <cstdint>
#include <cstdlib>
#include <gtest/gtest.h>
#include <string>

#include "common/rng.hh"
#include "sim/simulator.hh"
#include "trace/zoo.hh"

namespace athena
{
namespace
{

/** Invariants of any simulation result. */
void
checkInvariants(const SimResult &res, std::uint64_t instr)
{
    ASSERT_FALSE(res.cores.empty());
    for (const auto &core : res.cores) {
        EXPECT_EQ(core.instructions, instr);
        EXPECT_GT(core.cycles, 0u);
        EXPECT_GT(core.ipc, 0.0);
        EXPECT_LE(core.ipc, 6.0) << "IPC cannot exceed core width";
        EXPECT_LE(core.loads, core.instructions);
        EXPECT_LE(core.branchMispredicts, core.instructions);
        for (const auto &pf : core.pf) {
            EXPECT_LE(pf.used, pf.issued)
                << "used prefetches cannot exceed issued";
            EXPECT_LE(pf.usedTimely, pf.used);
            EXPECT_LE(pf.fillsFromDramUnused, pf.fillsFromDram);
        }
        EXPECT_LE(core.ocpCorrect, core.ocpPredictions);
    }
    EXPECT_GE(res.busUtilization, 0.0);
    EXPECT_LE(res.busUtilization, 1.0);
}

/** Every zoo workload satisfies the invariants under the default
 *  (naive) CD1 system. */
class WorkloadInvariants
    : public ::testing::TestWithParam<WorkloadSpec>
{};

TEST_P(WorkloadInvariants, HoldUnderNaiveCd1)
{
    SystemConfig cfg =
        makeDesignConfig(CacheDesign::kCd1, PolicyKind::kNaive);
    Simulator sim(cfg, {GetParam()});
    SimResult res = sim.run({30000, 8000});
    checkInvariants(res, 30000);
}

TEST_P(WorkloadInvariants, MemoryIntensiveEnough)
{
    // Paper's selection criterion: >= 3 LLC MPKI without
    // speculation. Allow a little slack at this reduced scale.
    SystemConfig cfg =
        makeDesignConfig(CacheDesign::kCd1, PolicyKind::kAllOff);
    Simulator sim(cfg, {GetParam()});
    SimResult res = sim.run({30000, 8000});
    double mpki = 1000.0 *
                  static_cast<double>(res.cores[0].llcMisses) /
                  static_cast<double>(res.cores[0].instructions);
    EXPECT_GE(mpki, 2.0) << GetParam().name
                         << " is not memory-intensive";
}

INSTANTIATE_TEST_SUITE_P(
    Zoo, WorkloadInvariants, ::testing::ValuesIn(evalWorkloads()),
    [](const ::testing::TestParamInfo<WorkloadSpec> &info) {
        std::string name = info.param.name;
        for (char &c : name) {
            if (!std::isalnum(static_cast<unsigned char>(c)))
                c = '_';
        }
        return name;
    });

/** Randomized configuration fuzz: any combination of components
 *  must run cleanly and satisfy the invariants. */
TEST(ConfigFuzz, RandomConfigurationsAreWellFormed)
{
    Rng rng(2024);
    auto workloads = evalWorkloads();
    const PrefetcherKind l1[] = {PrefetcherKind::kNone,
                                 PrefetcherKind::kIpcp,
                                 PrefetcherKind::kBerti};
    const PrefetcherKind l2[] = {
        PrefetcherKind::kNone,   PrefetcherKind::kPythia,
        PrefetcherKind::kSppPpf, PrefetcherKind::kMlop,
        PrefetcherKind::kSms,    PrefetcherKind::kStride};
    const OcpKind ocps[] = {OcpKind::kNone, OcpKind::kPopet,
                            OcpKind::kHmp, OcpKind::kTtp};
    const PolicyKind policies[] = {
        PolicyKind::kNaive, PolicyKind::kTlp, PolicyKind::kHpac,
        PolicyKind::kMab, PolicyKind::kAthena};
    const double bandwidths[] = {1.6, 3.2, 6.4, 12.8, 25.6};

    for (int trial = 0; trial < 24; ++trial) {
        SystemConfig cfg;
        cfg.label = "fuzz" + std::to_string(trial);
        cfg.l1dPf = l1[rng.below(3)];
        cfg.l2cPf = l2[rng.below(6)];
        cfg.ocp = ocps[rng.below(4)];
        cfg.policy = policies[rng.below(5)];
        cfg.bandwidthGBps = bandwidths[rng.below(5)];
        cfg.athena.prefetcherOnlyMode = cfg.ocp == OcpKind::kNone;
        const WorkloadSpec &spec =
            workloads[rng.below(workloads.size())];
        Simulator sim(cfg, {spec});
        SimResult res = sim.run({15000, 4000});
        checkInvariants(res, 15000);
    }
}

TEST(ConfigFuzz, EpochLengthSweepIsStable)
{
    auto workloads = evalWorkloads();
    const WorkloadSpec &spec = workloads[0];
    for (std::uint64_t epoch : {500u, 2000u, 8000u, 32000u}) {
        SystemConfig cfg =
            makeDesignConfig(CacheDesign::kCd1, PolicyKind::kAthena);
        cfg.epochInstructions = epoch;
        Simulator sim(cfg, {spec});
        SimResult res = sim.run({20000, 5000});
        checkInvariants(res, 20000);
    }
}

TEST(ConfigFuzz, AllCacheDesignsRunAllPolicies)
{
    auto workloads = evalWorkloads();
    const WorkloadSpec &spec = workloads[20];
    for (CacheDesign design :
         {CacheDesign::kCd1, CacheDesign::kCd2, CacheDesign::kCd3,
          CacheDesign::kCd4}) {
        for (PolicyKind policy :
             {PolicyKind::kAllOff, PolicyKind::kNaive,
              PolicyKind::kTlp, PolicyKind::kHpac, PolicyKind::kMab,
              PolicyKind::kAthena}) {
            SystemConfig cfg = makeDesignConfig(design, policy);
            Simulator sim(cfg, {spec});
            SimResult res = sim.run({10000, 2000});
            checkInvariants(res, 10000);
        }
    }
}

} // namespace
} // namespace athena

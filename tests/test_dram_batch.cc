/**
 * @file
 * Batched DRAM service equivalence: the request-queue drain kernel
 * must be bit-identical to scalar per-request service for every
 * grouping of the same request stream into batches — completions,
 * row-hit/miss accounting, per-class counts, bus occupancy, and the
 * busBacklog()/takeCounters() values observed at batch boundaries.
 *
 * The scalar side is pinned twice: once against serve() (the
 * enqueue+drain-of-1 shim) and once against a reference model
 * transcribed from the pre-queue scalar implementation, so a bug
 * that crept into the shared kernel cannot hide by changing both
 * sides of the A/B at once.
 */

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <random>
#include <span>
#include <vector>

#include <gtest/gtest.h>

#include "mem/dram.hh"

namespace athena
{
namespace
{

/**
 * Reference model: a line-for-line transcription of the scalar
 * Dram::serve as it existed before the request-queue refactor
 * (always division decode; per-request state and counter updates).
 */
class RefDram
{
  public:
    explicit RefDram(const DramParams &p) : cfg(p), banks(p.banks)
    {
        lineCycles = static_cast<double>(kLineBytes) /
                     cfg.bandwidthGBps * cfg.coreGHz;
        tCycles =
            static_cast<Cycle>(std::llround(cfg.tNs * cfg.coreGHz));
        tCcdCycles = static_cast<Cycle>(
            std::llround(cfg.tCcdNs * cfg.coreGHz));
        lineOccupancy =
            static_cast<Cycle>(std::llround(lineCycles));
    }

    Cycle
    serve(Cycle arrival, Addr line_num, AccessType type)
    {
        const std::uint64_t lines_per_row =
            cfg.rowBytes / kLineBytes;
        auto bank = static_cast<unsigned>((line_num / lines_per_row) %
                                          cfg.banks);
        Addr row = line_num / (lines_per_row * cfg.banks);

        Bank &b = banks[bank];
        Cycle bank_free = std::max(arrival, b.busyUntil);
        Cycle column_ready;
        if (b.openRow == row) {
            column_ready = bank_free;
            b.busyUntil = column_ready + tCcdCycles;
            ++window.rowHits;
        } else {
            column_ready = bank_free + 2 * tCycles;
            b.openRow = row;
            b.busyUntil = bank_free + 4 * tCycles;
            ++window.rowMisses;
        }

        Cycle transfer_start =
            std::max(column_ready + tCycles, busNextFree);
        Cycle done = transfer_start + lineOccupancy;
        busNextFree = done;

        window.busBusyCycles += lineOccupancy;
        switch (type) {
          case AccessType::kDemandLoad:
          case AccessType::kDemandStore:
            ++window.demandRequests;
            break;
          case AccessType::kPrefetch:
            ++window.prefetchRequests;
            break;
          case AccessType::kOcp:
            ++window.ocpRequests;
            break;
        }
        return done;
    }

    Cycle
    busBacklog(Cycle now) const
    {
        return busNextFree > now ? busNextFree - now : 0;
    }

    const DramCounters &counters() const { return window; }

  private:
    struct Bank
    {
        Cycle busyUntil = 0;
        Addr openRow = ~0ull;
    };

    DramParams cfg;
    double lineCycles;
    Cycle tCycles;
    Cycle tCcdCycles;
    Cycle lineOccupancy = 0;
    Cycle busNextFree = 0;
    std::vector<Bank> banks;
    DramCounters window;
};

/**
 * Request streams that stress the drain kernel's interesting
 * regimes: row-hit streaks, bank conflicts, tied arrivals, and
 * random class mixes.
 */
std::vector<DramRequest>
makeStream(std::uint64_t seed, std::size_t n)
{
    std::mt19937_64 rng(seed);
    std::vector<DramRequest> reqs;
    reqs.reserve(n);
    Cycle now = 0;
    Addr cursor = rng() % 100000;
    while (reqs.size() < n) {
        switch (rng() % 4) {
          case 0: { // row-hit streak: sequential lines, tied arrival
            const unsigned burst = 1 + rng() % 8;
            for (unsigned k = 0; k < burst && reqs.size() < n; ++k) {
                reqs.push_back({now, cursor++,
                                static_cast<AccessType>(rng() % 4)});
            }
            break;
          }
          case 1: { // bank conflict: same bank, different rows
            const unsigned burst = 1 + rng() % 4;
            for (unsigned k = 0; k < burst && reqs.size() < n; ++k) {
                reqs.push_back({now, cursor + k * 4096,
                                static_cast<AccessType>(rng() % 4)});
            }
            break;
          }
          case 2: // random scatter
            reqs.push_back({now, rng() % (1ull << 30),
                            static_cast<AccessType>(rng() % 4)});
            cursor = reqs.back().line;
            break;
          default: // idle gap, then a request
            now += rng() % 2000;
            reqs.push_back({now, cursor + rng() % 64,
                            static_cast<AccessType>(rng() % 4)});
            break;
        }
        now += rng() % 40; // arrivals tie often but also advance
    }
    return reqs;
}

void
expectCountersEq(const DramCounters &a, const DramCounters &b)
{
    EXPECT_EQ(a.demandRequests, b.demandRequests);
    EXPECT_EQ(a.prefetchRequests, b.prefetchRequests);
    EXPECT_EQ(a.ocpRequests, b.ocpRequests);
    EXPECT_EQ(a.rowHits, b.rowHits);
    EXPECT_EQ(a.rowMisses, b.rowMisses);
    EXPECT_EQ(a.busBusyCycles, b.busBusyCycles);
}

/** serve()-per-request vs enqueue-all + one drain, plus the
 *  transcription oracle, over several geometries and seeds. */
TEST(DramBatch, DrainMatchesScalarServeAndReference)
{
    std::vector<DramParams> geometries;
    geometries.push_back(DramParams{}); // Table 5, shift decode
    {
        DramParams p;
        p.forceDivisionDecode = true; // same geometry, general path
        geometries.push_back(p);
    }
    {
        DramParams p; // odd geometry: 24-line rows, 6 banks
        p.rowBytes = 1536;
        p.banks = 6;
        geometries.push_back(p);
    }
    {
        DramParams p; // high bandwidth: bus nearly non-binding
        p.bandwidthGBps = 256.0;
        p.coreGHz = 2.0;
        geometries.push_back(p);
    }

    for (const DramParams &p : geometries) {
        for (std::uint64_t seed : {1ull, 42ull, 987654321ull}) {
            auto reqs = makeStream(seed, 500);

            Dram scalar(p);
            RefDram ref(p);
            std::vector<Cycle> scalar_done, ref_done;
            for (const DramRequest &r : reqs) {
                scalar_done.push_back(
                    scalar.serve(r.arrival, r.line, r.type));
                ref_done.push_back(
                    ref.serve(r.arrival, r.line, r.type));
            }

            Dram batched(p);
            for (const DramRequest &r : reqs)
                batched.enqueue(r.arrival, r.line, r.type);
            ASSERT_EQ(batched.pendingRequests(), reqs.size());
            std::span<const Cycle> done = batched.drain();
            ASSERT_EQ(done.size(), reqs.size());
            EXPECT_EQ(batched.pendingRequests(), 0u);

            for (std::size_t i = 0; i < reqs.size(); ++i) {
                ASSERT_EQ(done[i], scalar_done[i])
                    << "request " << i << " seed " << seed;
                ASSERT_EQ(done[i], ref_done[i])
                    << "request " << i << " seed " << seed;
            }
            expectCountersEq(batched.counters(), scalar.counters());
            expectCountersEq(batched.counters(), ref.counters());
            EXPECT_EQ(batched.busBacklog(0), scalar.busBacklog(0));
            EXPECT_EQ(batched.busBacklog(0), ref.busBacklog(0));
        }
    }
}

/** Any chunking of the stream into batches is equivalent, and the
 *  backlog/counter values sampled at every batch boundary match the
 *  scalar-serve values at the same stream position (epoch sampling
 *  and Pythia's reward read exactly these mid-window). */
TEST(DramBatch, BatchBoundariesPreserveBacklogAndCounters)
{
    auto reqs = makeStream(7, 600);
    std::mt19937_64 chunk_rng(99);

    Dram scalar{DramParams{}};
    Dram batched{DramParams{}};

    std::size_t i = 0;
    while (i < reqs.size()) {
        std::size_t chunk = 1 + chunk_rng() % 16;
        chunk = std::min(chunk, reqs.size() - i);

        std::vector<Cycle> scalar_done;
        for (std::size_t k = i; k < i + chunk; ++k) {
            scalar_done.push_back(scalar.serve(
                reqs[k].arrival, reqs[k].line, reqs[k].type));
            batched.enqueue(reqs[k].arrival, reqs[k].line,
                            reqs[k].type);
        }
        std::span<const Cycle> done = batched.drain();
        ASSERT_EQ(done.size(), chunk);
        for (std::size_t k = 0; k < chunk; ++k)
            ASSERT_EQ(done[k], scalar_done[k]) << "at " << i + k;

        // Mid-window observations at the boundary must agree.
        const Cycle now = reqs[i + chunk - 1].arrival;
        EXPECT_EQ(batched.busBacklog(now), scalar.busBacklog(now));
        expectCountersEq(batched.counters(), scalar.counters());

        // Occasionally close an accounting window mid-stream, the
        // way epoch sampling does.
        if (chunk_rng() % 4 == 0) {
            DramCounters a = batched.takeCounters();
            DramCounters b = scalar.takeCounters();
            expectCountersEq(a, b);
            expectCountersEq(batched.counters(), scalar.counters());
        }
        i += chunk;
    }
    expectCountersEq(batched.lifetime(), scalar.lifetime());
}

TEST(DramBatch, DrainOnEmptyQueueIsEmpty)
{
    Dram d{DramParams{}};
    EXPECT_EQ(d.pendingRequests(), 0u);
    EXPECT_TRUE(d.drain().empty());
    expectCountersEq(d.counters(), DramCounters{});
}

/** enqueue() is not observable until drain(): backlog and counters
 *  stay put while requests sit on the queue. */
TEST(DramBatch, EnqueueAloneIsNotObservable)
{
    Dram d{DramParams{}};
    d.enqueue(0, 0, AccessType::kDemandLoad);
    d.enqueue(0, 1024, AccessType::kPrefetch);
    EXPECT_EQ(d.pendingRequests(), 2u);
    EXPECT_EQ(d.busBacklog(0), 0u);
    EXPECT_EQ(d.counters().totalRequests(), 0u);
    EXPECT_FALSE(d.drain().empty());
    EXPECT_GT(d.busBacklog(0), 0u);
    EXPECT_EQ(d.counters().totalRequests(), 2u);
}

/** serve() with requests already pending drains them first, in
 *  order, and returns the completion of its own request. */
TEST(DramBatch, ServeDrainsPendingRequestsFirst)
{
    DramRequest reqs[] = {
        {0, 0, AccessType::kPrefetch},
        {0, 1, AccessType::kPrefetch},
        {0, 2, AccessType::kDemandLoad},
    };

    Dram scalar{DramParams{}};
    Cycle want = 0;
    for (const DramRequest &r : reqs)
        want = scalar.serve(r.arrival, r.line, r.type);

    Dram mixed{DramParams{}};
    mixed.enqueue(reqs[0].arrival, reqs[0].line, reqs[0].type);
    mixed.enqueue(reqs[1].arrival, reqs[1].line, reqs[1].type);
    Cycle got =
        mixed.serve(reqs[2].arrival, reqs[2].line, reqs[2].type);
    EXPECT_EQ(got, want);
    EXPECT_EQ(mixed.pendingRequests(), 0u);
    expectCountersEq(mixed.counters(), scalar.counters());
}

TEST(DramBatch, ResetClearsPendingQueue)
{
    Dram d{DramParams{}};
    d.enqueue(0, 0, AccessType::kDemandLoad);
    d.enqueue(0, 64, AccessType::kDemandLoad);
    d.reset();
    EXPECT_EQ(d.pendingRequests(), 0u);
    EXPECT_TRUE(d.drain().empty());
    EXPECT_EQ(d.lifetime().totalRequests(), 0u);
}

} // namespace
} // namespace athena

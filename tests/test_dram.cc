/**
 * @file
 * DRAM model tests: row-buffer behaviour, bandwidth enforcement on
 * the shared data bus (the mechanism behind every crossover in the
 * paper), request-type accounting, and a parameterized bandwidth
 * sweep.
 */

#include <algorithm>
#include <cstdint>
#include <stdexcept>

#include <gtest/gtest.h>

#include "mem/dram.hh"

namespace athena
{
namespace
{

DramParams
params(double gbps)
{
    DramParams p;
    p.bandwidthGBps = gbps;
    return p;
}

TEST(Dram, CyclesPerLineMatchesBandwidth)
{
    Dram d(params(3.2));
    // 64 B / 3.2 GB/s * 4 GHz = 80 cycles.
    EXPECT_NEAR(d.cyclesPerLine(), 80.0, 0.5);
    Dram d2(params(12.8));
    EXPECT_NEAR(d2.cyclesPerLine(), 20.0, 0.5);
}

TEST(Dram, RowHitFasterThanRowMiss)
{
    Dram d(params(3.2));
    Cycle first = d.serve(0, 0, AccessType::kDemandLoad);
    // Same row (lines 0 and 1 share a 2 KB row on the same bank).
    Dram d2(params(3.2));
    d2.serve(0, 0, AccessType::kDemandLoad);
    Cycle hit = d2.serve(100000, 1, AccessType::kDemandLoad);
    Dram d3(params(3.2));
    d3.serve(0, 0, AccessType::kDemandLoad);
    // Different row on the same bank: line + rows*banks*lines.
    Addr far_row = (2048 / kLineBytes) * 8 * 4;
    Cycle miss = d3.serve(100000, far_row * 0 + 0 + 8 * (2048 / 64),
                          AccessType::kDemandLoad);
    EXPECT_LT(hit - 100000, miss - 100000);
    EXPECT_GT(first, 0u);
}

TEST(Dram, BusSerializesBackToBackRequests)
{
    Dram d(params(3.2));
    // 20 simultaneous requests to distinct banks/rows: total time is
    // bounded below by 20 transfers on the shared bus.
    Cycle last = 0;
    for (int i = 0; i < 20; ++i) {
        last = std::max(
            last, d.serve(0, static_cast<Addr>(i) * 1024,
                          AccessType::kDemandLoad));
    }
    EXPECT_GE(last, static_cast<Cycle>(20 * d.cyclesPerLine()));
}

TEST(Dram, IdleBusDoesNotQueue)
{
    Dram d(params(3.2));
    Cycle t1 = d.serve(0, 0, AccessType::kDemandLoad);
    // A request long after the first sees no queueing delay.
    Cycle t2 = d.serve(1000000, 0, AccessType::kDemandLoad);
    EXPECT_LT(t2 - 1000000, t1 + 300);
}

TEST(Dram, BacklogReflectsQueue)
{
    Dram d(params(3.2));
    EXPECT_EQ(d.busBacklog(0), 0u);
    for (int i = 0; i < 10; ++i)
        d.serve(0, static_cast<Addr>(i) * 1024,
                AccessType::kPrefetch);
    EXPECT_GT(d.busBacklog(0), 0u);
}

TEST(Dram, CountersByRequestType)
{
    Dram d(params(3.2));
    d.serve(0, 0, AccessType::kDemandLoad);
    d.serve(0, 64, AccessType::kDemandStore);
    d.serve(0, 128, AccessType::kPrefetch);
    d.serve(0, 192, AccessType::kOcp);
    const DramCounters &c = d.counters();
    EXPECT_EQ(c.demandRequests, 2u);
    EXPECT_EQ(c.prefetchRequests, 1u);
    EXPECT_EQ(c.ocpRequests, 1u);
    EXPECT_EQ(c.totalRequests(), 4u);
    EXPECT_GT(c.busBusyCycles, 0u);
}

TEST(Dram, TakeCountersResetsWindowNotLifetime)
{
    Dram d(params(3.2));
    d.serve(0, 0, AccessType::kDemandLoad);
    DramCounters window = d.takeCounters();
    EXPECT_EQ(window.demandRequests, 1u);
    EXPECT_EQ(d.counters().demandRequests, 0u);
    EXPECT_EQ(d.lifetime().demandRequests, 1u);
}

TEST(Dram, ResetClearsState)
{
    Dram d(params(3.2));
    for (int i = 0; i < 5; ++i)
        d.serve(0, static_cast<Addr>(i) * 512,
                AccessType::kDemandLoad);
    d.reset();
    EXPECT_EQ(d.lifetime().totalRequests(), 0u);
    EXPECT_EQ(d.busBacklog(0), 0u);
}

/**
 * tCCD is specified in nanoseconds (DramParams::tCcdNs) and must
 * convert through the core clock: the regression this pins was a
 * hardcoded 4-*cycle* constant, which silently mistimed row-hit
 * streams at any coreGHz other than 4. Row-hit spacing on one bank
 * (bus made non-binding by a high provisioned bandwidth) is exactly
 * tCCD: 1 ns = 4 cycles at 4 GHz, 2 cycles at 2 GHz.
 */
TEST(Dram, TccdDerivesFromClock)
{
    auto row_hit_spacing = [](double ghz) {
        DramParams p;
        p.bandwidthGBps = 256.0; // 64 B line occupies ~1 cycle
        p.coreGHz = ghz;
        Dram d(p);
        d.serve(0, 0, AccessType::kDemandLoad); // opens the row
        Cycle a = d.serve(0, 1, AccessType::kDemandLoad); // row hit
        Cycle b = d.serve(0, 2, AccessType::kDemandLoad); // row hit
        return b - a;
    };
    EXPECT_EQ(row_hit_spacing(4.0), 4u);
    EXPECT_EQ(row_hit_spacing(2.0), 2u);
}

TEST(Dram, TccdNsParameterRespected)
{
    // Same clock, doubled tCcdNs: row-hit spacing doubles.
    DramParams p;
    p.bandwidthGBps = 256.0;
    p.tCcdNs = 2.0;
    Dram d(p);
    d.serve(0, 0, AccessType::kDemandLoad);
    Cycle a = d.serve(0, 1, AccessType::kDemandLoad);
    Cycle b = d.serve(0, 2, AccessType::kDemandLoad);
    EXPECT_EQ(b - a, 8u); // 2 ns at 4 GHz
}

/**
 * The shift/mask fast decode and the general division decode must
 * agree wherever both are defined. forceDivisionDecode pins the
 * general path on the default power-of-two geometry — every
 * completion and every counter must match the fast path exactly.
 */
TEST(Dram, DivisionDecodeMatchesShiftDecodeOnPow2Geometry)
{
    DramParams shift = params(3.2);
    DramParams div = shift;
    div.forceDivisionDecode = true;

    Dram a(shift);
    Dram b(div);
    std::uint64_t x = 0x9e3779b97f4a7c15ull;
    Cycle now = 0;
    for (int i = 0; i < 2000; ++i) {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17; // xorshift: deterministic scatter + streaks
        Addr line = (i % 3 == 0) ? x % (1ull << 28)
                                 : static_cast<Addr>(i) * 3;
        auto type = static_cast<AccessType>(x % 4);
        if (i % 5 == 0)
            now += x % 300;
        ASSERT_EQ(a.serve(now, line, type), b.serve(now, line, type))
            << "request " << i;
    }
    EXPECT_EQ(a.lifetime().rowHits, b.lifetime().rowHits);
    EXPECT_EQ(a.lifetime().rowMisses, b.lifetime().rowMisses);
    EXPECT_EQ(a.lifetime().busBusyCycles, b.lifetime().busBusyCycles);
}

/**
 * Non-power-of-two geometry exercises the division decode for
 * real: 1536 B rows (24 lines) x 6 banks. Row-hit/miss behaviour
 * must follow the odd geometry's bank/row mapping.
 */
TEST(Dram, NonPow2GeometryRowMapping)
{
    DramParams p = params(3.2);
    p.rowBytes = 1536; // 24 lines per row
    p.banks = 6;
    const std::uint64_t lines_per_row = 24;

    // Lines 0..23 live in row 0 of bank 0: one opening miss, then
    // all row hits.
    {
        Dram d(p);
        for (std::uint64_t i = 0; i < lines_per_row; ++i)
            d.serve(0, i, AccessType::kDemandLoad);
        EXPECT_EQ(d.lifetime().rowMisses, 1u);
        EXPECT_EQ(d.lifetime().rowHits, lines_per_row - 1);
    }
    // Line 24 is bank 1 (not a wrap into a new row of bank 0):
    // alternating between lines 0 and 24 keeps both rows open, so
    // after the two opening misses everything hits.
    {
        Dram d(p);
        for (int i = 0; i < 10; ++i) {
            d.serve(0, 0, AccessType::kDemandLoad);
            d.serve(0, lines_per_row, AccessType::kDemandLoad);
        }
        EXPECT_EQ(d.lifetime().rowMisses, 2u);
        EXPECT_EQ(d.lifetime().rowHits, 18u);
    }
    // Lines 0 and 24*6 share bank 0 but different rows: strict
    // alternation ping-pongs the open row, so every access misses.
    {
        Dram d(p);
        for (int i = 0; i < 10; ++i) {
            d.serve(0, 0, AccessType::kDemandLoad);
            d.serve(0, lines_per_row * p.banks,
                    AccessType::kDemandLoad);
        }
        EXPECT_EQ(d.lifetime().rowMisses, 20u);
        EXPECT_EQ(d.lifetime().rowHits, 0u);
    }
}

/**
 * Release-mode parameter validation: a bad geometry must throw at
 * construction instead of silently indexing out of the bank array
 * (the old check was a debug-only assert).
 */
TEST(Dram, InvalidParamsThrow)
{
    auto with = [](auto mutate) {
        DramParams p;
        mutate(p);
        return p;
    };
    EXPECT_THROW(Dram d(with([](DramParams &p) { p.banks = 0; })),
                 std::invalid_argument);
    EXPECT_THROW(
        Dram d(with([](DramParams &p) { p.banks = 33; })),
        std::invalid_argument);
    EXPECT_THROW(
        Dram d(with([](DramParams &p) { p.rowBytes = 0; })),
        std::invalid_argument);
    EXPECT_THROW(
        Dram d(with([](DramParams &p) { p.rowBytes = 100; })),
        std::invalid_argument);
    EXPECT_THROW(
        Dram d(with([](DramParams &p) { p.bandwidthGBps = 0.0; })),
        std::invalid_argument);
    EXPECT_THROW(
        Dram d(with([](DramParams &p) { p.coreGHz = -1.0; })),
        std::invalid_argument);
    // The boundary values are valid.
    EXPECT_NO_THROW(Dram d(with([](DramParams &p) {
        p.banks = 1;
        p.rowBytes = 64;
    })));
    EXPECT_NO_THROW(
        Dram d(with([](DramParams &p) { p.banks = 32; })));
}

/** Property: sustained throughput never exceeds the provisioned
 *  bandwidth, at any configuration. */
class DramBandwidth : public ::testing::TestWithParam<double>
{};

TEST_P(DramBandwidth, ThroughputBoundedByProvisionedBandwidth)
{
    double gbps = GetParam();
    Dram d(params(gbps));
    const int n = 500;
    Cycle done = 0;
    // Sequential lines: row-buffer-friendly traffic can approach
    // the provisioned bus bandwidth (random traffic is bank-bound
    // well below peak at high provisioned bandwidths).
    for (int i = 0; i < n; ++i) {
        done = std::max(done, d.serve(0, static_cast<Addr>(i),
                                      AccessType::kDemandLoad));
    }
    double bytes = static_cast<double>(n) * kLineBytes;
    double seconds = static_cast<double>(done) / (4.0e9);
    double achieved_gbps = bytes / seconds / 1.0e9;
    EXPECT_LE(achieved_gbps, gbps * 1.02);
    // And it should achieve at least 60% of peak under full load.
    EXPECT_GE(achieved_gbps, gbps * 0.6);
}

INSTANTIATE_TEST_SUITE_P(Bandwidths, DramBandwidth,
                         ::testing::Values(1.6, 3.2, 6.4, 12.8,
                                           25.6));

} // namespace
} // namespace athena

/**
 * @file
 * Tests for the trace file reader/writer: lossless round-trips
 * between the in-memory records and both on-disk formats, pinned
 * checks on the checked-in sample traces (so the formats cannot
 * drift silently), the mmap-backed TraceFile batch API, and
 * malformed-input diagnostics.
 */

#include <cstdio>
#include <fstream>
#include <gtest/gtest.h>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "trace/trace_file.hh"
#include "trace/workload.hh"

namespace athena
{
namespace
{

#ifndef ATHENA_TEST_DATA_DIR
#error "ATHENA_TEST_DATA_DIR must be defined by the build"
#endif

std::string
dataPath(const std::string &name)
{
    return std::string(ATHENA_TEST_DATA_DIR) + "/" + name;
}

/** A scratch file deleted at scope exit. */
class TempPath
{
  public:
    explicit TempPath(const std::string &suffix)
        : path_(std::string(::testing::TempDir()) +
                "athena_trace_test_" + suffix)
    {
    }
    ~TempPath() { std::remove(path_.c_str()); }
    const std::string &str() const { return path_; }

  private:
    std::string path_;
};

bool
sameRecord(const TraceRecord &a, const TraceRecord &b)
{
    return a.pc == b.pc && a.addr == b.addr && a.kind == b.kind &&
           a.taken == b.taken &&
           a.dependsOnPrevLoad == b.dependsOnPrevLoad &&
           a.criticalConsumer == b.criticalConsumer;
}

/** Records exercising every kind and flag combination. */
std::vector<TraceRecord>
exhaustiveRecords()
{
    std::vector<TraceRecord> recs;
    TraceRecord r;
    r.kind = InstrKind::kAlu;
    r.pc = 0x700000;
    recs.push_back(r);
    for (bool dep : {false, true}) {
        for (bool crit : {false, true}) {
            TraceRecord l;
            l.kind = InstrKind::kLoad;
            l.pc = 0x400010;
            l.addr = 0x7f0000400040ull + recs.size() * 64;
            l.dependsOnPrevLoad = dep;
            l.criticalConsumer = crit;
            recs.push_back(l);
        }
    }
    TraceRecord s;
    s.kind = InstrKind::kStore;
    s.pc = 0x500000;
    s.addr = 0xffffffffffffffc0ull; // top-of-range address survives
    recs.push_back(s);
    for (bool taken : {false, true}) {
        TraceRecord b;
        b.kind = InstrKind::kBranch;
        b.pc = 0x600008;
        b.taken = taken;
        recs.push_back(b);
    }
    return recs;
}

TEST(TraceFileFormat, TextRoundTripsLosslessly)
{
    auto recs = exhaustiveRecords();
    std::stringstream ss;
    writeTrace(ss, recs.data(), recs.size(), TraceFormat::kText);
    auto back = readTrace(ss);
    ASSERT_EQ(back.size(), recs.size());
    for (std::size_t i = 0; i < recs.size(); ++i)
        EXPECT_TRUE(sameRecord(recs[i], back[i])) << "record " << i;
}

TEST(TraceFileFormat, BinaryRoundTripsLosslessly)
{
    auto recs = exhaustiveRecords();
    std::stringstream ss;
    writeTrace(ss, recs.data(), recs.size(), TraceFormat::kBinary);
    auto back = readTrace(ss);
    ASSERT_EQ(back.size(), recs.size());
    for (std::size_t i = 0; i < recs.size(); ++i)
        EXPECT_TRUE(sameRecord(recs[i], back[i])) << "record " << i;
}

TEST(TraceFileFormat, CrossFormatConversionIsExact)
{
    // text -> records -> binary -> records: the two decodes agree,
    // which is what the converter script relies on.
    auto text_recs = readTraceFile(dataPath("sample_loop.txt"));
    TempPath bin("conv.bin");
    writeTraceFile(bin.str(), text_recs, TraceFormat::kBinary);
    auto bin_recs = readTraceFile(bin.str());
    ASSERT_EQ(bin_recs.size(), text_recs.size());
    for (std::size_t i = 0; i < text_recs.size(); ++i)
        EXPECT_TRUE(sameRecord(text_recs[i], bin_recs[i]))
            << "record " << i;
}

TEST(TraceFileFormat, CheckedInTextSamplePinned)
{
    TraceFile trace(dataPath("sample_loop.txt"));
    EXPECT_EQ(trace.format(), TraceFormat::kText);
    ASSERT_EQ(trace.size(), 400u);
    // First record of the committed sample (regenerate with
    // scripts/gen_sample_trace.py if the format ever changes).
    TraceRecord first = trace.at(0);
    EXPECT_EQ(first.kind, InstrKind::kLoad);
    EXPECT_EQ(first.pc, 0x400020u);
    EXPECT_EQ(first.addr, 0x7f0000012b82ull);
    EXPECT_FALSE(first.dependsOnPrevLoad);
    EXPECT_TRUE(first.criticalConsumer);
    // The sample contains every record kind.
    bool kinds[4] = {};
    std::vector<TraceRecord> all(trace.size());
    EXPECT_EQ(trace.copy(0, all.data(), all.size()), all.size());
    for (const TraceRecord &r : all)
        kinds[static_cast<int>(r.kind)] = true;
    EXPECT_TRUE(kinds[0] && kinds[1] && kinds[2] && kinds[3]);
}

TEST(TraceFileFormat, CheckedInBinarySamplePinned)
{
    TraceFile trace(dataPath("sample_mix.bin"));
    EXPECT_EQ(trace.format(), TraceFormat::kBinary);
    ASSERT_EQ(trace.size(), 512u);
    // Round-trip the committed binary through text and back.
    std::vector<TraceRecord> all(trace.size());
    ASSERT_EQ(trace.copy(0, all.data(), all.size()), all.size());
    TempPath txt("roundtrip.txt");
    writeTraceFile(txt.str(), all, TraceFormat::kText);
    auto back = readTraceFile(txt.str());
    ASSERT_EQ(back.size(), all.size());
    for (std::size_t i = 0; i < all.size(); ++i)
        EXPECT_TRUE(sameRecord(all[i], back[i])) << "record " << i;
}

TEST(TraceFileFormat, CopyClampsAndAt)
{
    TraceFile trace(dataPath("sample_mix.bin"));
    TraceRecord buf[64];
    // Mid-file batch.
    EXPECT_EQ(trace.copy(100, buf, 64), 64u);
    EXPECT_TRUE(sameRecord(buf[0], trace.at(100)));
    // Ragged tail.
    EXPECT_EQ(trace.copy(trace.size() - 10, buf, 64), 10u);
    // Past the end.
    EXPECT_EQ(trace.copy(trace.size(), buf, 64), 0u);
    EXPECT_THROW(trace.at(trace.size()), std::out_of_range);
}

TEST(TraceFileFormat, TextParseErrorsAreDiagnosed)
{
    auto parse = [](const std::string &text) {
        std::stringstream ss(text);
        return readTrace(ss);
    };
    EXPECT_NO_THROW(parse("# comment only\n\n"));
    // Inline comments (as in the README examples) are valid.
    {
        auto recs =
            parse("A 0x700000  # plain ALU op\n"
                  "B 0x600008 T # branch taken\n");
        ASSERT_EQ(recs.size(), 2u);
        EXPECT_EQ(recs[0].kind, InstrKind::kAlu);
        EXPECT_TRUE(recs[1].taken);
    }
    EXPECT_THROW(parse("X 0x1\n"), std::runtime_error);
    EXPECT_THROW(parse("L 0x1\n"), std::runtime_error);        // no addr
    EXPECT_THROW(parse("L 0x1 zzz\n"), std::runtime_error);    // bad hex
    EXPECT_THROW(parse("L 0x1 -5\n"), std::runtime_error);     // signed
    EXPECT_THROW(parse("L -1 0x2\n"), std::runtime_error);     // signed pc
    EXPECT_THROW(parse("L 0x1 0x2 q\n"), std::runtime_error);  // bad flag
    EXPECT_THROW(parse("B 0x1 maybe\n"), std::runtime_error);
    EXPECT_THROW(parse("A 0x1 junk\n"), std::runtime_error);
    // The diagnostic names the offending line.
    try {
        parse("A 0x1\nB 0x2 maybe\n");
        FAIL() << "expected parse error";
    } catch (const std::runtime_error &e) {
        EXPECT_NE(std::string(e.what()).find("line 2"),
                  std::string::npos)
            << e.what();
    }
}

TEST(TraceFileFormat, TruncatedBinaryIsRejected)
{
    auto recs = exhaustiveRecords();
    std::stringstream ss;
    writeTrace(ss, recs.data(), recs.size(), TraceFormat::kBinary);
    std::string bytes = ss.str();

    TempPath cut("truncated.bin");
    std::ofstream os(cut.str(), std::ios::binary);
    os.write(bytes.data(),
             static_cast<std::streamsize>(bytes.size() - 5));
    os.close();
    EXPECT_THROW(TraceFile trace(cut.str()), std::runtime_error);
    EXPECT_THROW(readTraceFile(cut.str()), std::runtime_error);
}

TEST(TraceFileFormat, ReadTraceHonoursStreamPosition)
{
    // A text trace embedded after a preamble in one stream: the
    // sniff must rewind to the caller's position, not offset 0.
    std::stringstream ss("PREAMBLE\nA 0x700000\nB 0x600000 T\n");
    std::string preamble;
    std::getline(ss, preamble);
    ASSERT_EQ(preamble, "PREAMBLE");
    auto recs = readTrace(ss);
    ASSERT_EQ(recs.size(), 2u);
    EXPECT_EQ(recs[0].kind, InstrKind::kAlu);
    EXPECT_EQ(recs[1].kind, InstrKind::kBranch);
}

TEST(TraceFileFormat, HugeClaimedCountIsRejected)
{
    // A corrupt header whose record count makes
    // header + count * record wrap 2^64 must fail validation, not
    // pass it and read out of bounds in copy().
    TempPath evil("overflow.bin");
    std::ofstream os(evil.str(), std::ios::binary);
    unsigned char header[16] = {'A', 'T', 'R', 'C', 1, 17, 0, 0};
    // count = 0x0f0f0f0f0f0f0f10: 16 + count * 17 == 32 mod 2^64.
    for (int i = 0; i < 8; ++i)
        header[8 + i] = i == 7 ? 0x0f : (i == 0 ? 0x10 : 0x0f);
    os.write(reinterpret_cast<const char *>(header), 16);
    const char padding[64] = {};
    os.write(padding, sizeof(padding));
    os.close();
    EXPECT_THROW(TraceFile trace(evil.str()), std::runtime_error);
    EXPECT_THROW(readTraceFile(evil.str()), std::runtime_error);
}

TEST(TraceFileFormat, MissingFileIsDiagnosed)
{
    EXPECT_THROW(TraceFile trace("/nonexistent/trace.bin"),
                 std::runtime_error);
    EXPECT_THROW(readTraceFile("/nonexistent/trace.bin"),
                 std::runtime_error);
}

} // namespace
} // namespace athena

/**
 * @file
 * Prefetcher tests: pattern-specific learning for each of the six
 * implementations plus generic interface properties checked
 * parameterized across all kinds.
 */


#include <cstdint>
#include <gtest/gtest.h>
#include <set>
#include <vector>

#include "common/rng.hh"
#include "prefetch/berti.hh"
#include "prefetch/ipcp.hh"
#include "prefetch/mlop.hh"
#include "prefetch/next_line.hh"
#include "prefetch/prefetcher.hh"
#include "prefetch/sms.hh"
#include "prefetch/spp_ppf.hh"
#include "prefetch/stride.hh"

namespace athena
{
namespace
{

std::vector<PrefetchCandidate>
feed(Prefetcher &pf, std::uint64_t pc, Addr addr, Cycle cycle)
{
    std::vector<PrefetchCandidate> out;
    pf.observe({pc, addr, false, cycle}, out);
    return out;
}

TEST(NextLine, EmitsSequentialLines)
{
    NextLinePrefetcher pf(CacheLevel::kL2C, 4);
    auto out = feed(pf, 1, 64 * 100, 0);
    ASSERT_EQ(out.size(), 4u);
    for (unsigned d = 0; d < 4; ++d)
        EXPECT_EQ(out[d].lineNum, 100u + d + 1);
}

TEST(Stride, DetectsConstantStride)
{
    StridePrefetcher pf;
    std::vector<PrefetchCandidate> out;
    for (int i = 0; i < 16; ++i)
        out = feed(pf, 0x400, 0x10000 + i * 256, i);
    ASSERT_FALSE(out.empty());
    // Stride of 4 lines: next candidates are +4, +8, ...
    Addr line = lineNumber(0x10000 + 15 * 256);
    EXPECT_EQ(out[0].lineNum, line + 4);
}

TEST(Stride, NoPrefetchOnRandomAddresses)
{
    StridePrefetcher pf;
    Rng rng(3);
    unsigned issued = 0;
    for (int i = 0; i < 200; ++i) {
        auto out = feed(pf, 0x400, rng.next() % (1 << 30), i);
        issued += out.size();
    }
    EXPECT_LT(issued, 60u);
}

TEST(Ipcp, ClassifiesConstantStrideIp)
{
    IpcpPrefetcher pf;
    std::vector<PrefetchCandidate> out;
    // Same page, stride 2 lines.
    for (int i = 0; i < 20; ++i)
        out = feed(pf, 0x400, 0x40000 + i * 128, i);
    ASSERT_FALSE(out.empty());
    Addr line = lineNumber(0x40000 + 19 * 128);
    EXPECT_EQ(out[0].lineNum, line + 2);
}

TEST(Ipcp, GlobalStreamEngagesOnSequentialLines)
{
    IpcpPrefetcher pf;
    std::vector<PrefetchCandidate> out;
    for (int i = 0; i < 32; ++i)
        out = feed(pf, 0x400 + (i % 3) * 8, 64 * i, i);
    EXPECT_FALSE(out.empty());
}

TEST(Berti, LearnsTimelyDelta)
{
    BertiPrefetcher pf;
    std::vector<PrefetchCandidate> out;
    // Constant +3-line delta with generous inter-access time so
    // the delta is timely.
    for (int i = 0; i < 120; ++i)
        out = feed(pf, 0x400, 0x80000 + i * 3 * 64,
                   static_cast<Cycle>(i) * 100);
    ASSERT_FALSE(out.empty());
    Addr line = lineNumber(0x80000 + 119 * 3 * 64);
    EXPECT_EQ(out[0].lineNum, line + 3);
}

TEST(Berti, RejectsUntimelyDeltas)
{
    BertiPrefetcher pf;
    std::vector<PrefetchCandidate> out;
    // Accesses 1 cycle apart: no delta can be timely.
    for (int i = 0; i < 120; ++i)
        out = feed(pf, 0x400, 0x80000 + i * 3 * 64,
                   static_cast<Cycle>(i));
    EXPECT_TRUE(out.empty());
}

TEST(Mlop, ConvergesOnDominantOffset)
{
    MlopPrefetcher pf;
    // Page-local pattern: every access at offset o follows one at
    // o - 5 (within pages).
    for (int page = 0; page < 80; ++page) {
        for (unsigned o = 0; o + 5 < 64; o += 5) {
            feed(pf, 0x400,
                 (static_cast<Addr>(page) << kPageShift) + o * 64,
                 page * 100 + o);
        }
    }
    auto offsets = pf.activeOffsets();
    ASSERT_FALSE(offsets.empty());
    EXPECT_EQ(offsets[0], 5);
}

TEST(Sms, ReplaysLearnedFootprint)
{
    SmsPrefetcher pf;
    // Teach: trigger PC 0x77 at offset 0 touches offsets {0,3,9}.
    auto touch_region = [&](Addr region) {
        feed(pf, 0x77, region << kPageShift, 1);
        feed(pf, 0x78, (region << kPageShift) + 3 * 64, 2);
        feed(pf, 0x79, (region << kPageShift) + 9 * 64, 3);
    };
    // Many regions so generations retire into the PHT (AGT is 32
    // entries; visiting 40 regions forces evictions).
    for (Addr r = 0; r < 40; ++r)
        touch_region(r);
    // A fresh region with the same trigger context should replay
    // offsets 3 and 9.
    std::vector<PrefetchCandidate> out;
    pf.observe({0x77, 100ull << kPageShift, false, 10}, out);
    std::set<Addr> lines;
    for (const auto &c : out)
        lines.insert(c.lineNum);
    Addr base = (100ull << kPageShift) >> kLineShift;
    EXPECT_TRUE(lines.count(base + 3));
    EXPECT_TRUE(lines.count(base + 9));
}

TEST(SppPpf, WalksSignatureChain)
{
    SppPpfPrefetcher pf;
    std::vector<PrefetchCandidate> out;
    // Steady +2 deltas within a page train the pattern table.
    for (int page = 0; page < 8; ++page) {
        for (unsigned o = 0; o < 60; o += 2) {
            out.clear();
            pf.observe({0x400,
                        (static_cast<Addr>(page) << kPageShift) +
                            o * 64,
                        false, o},
                       out);
        }
    }
    EXPECT_FALSE(out.empty());
}

TEST(SppPpf, PpfSuppressesAfterNegativeFeedback)
{
    SppPpfPrefetcher pf;
    std::vector<PrefetchCandidate> out;
    auto train_pass = [&] {
        unsigned issued = 0;
        for (int page = 100; page < 108; ++page) {
            for (unsigned o = 0; o < 60; o += 2) {
                out.clear();
                pf.observe({0x400,
                            (static_cast<Addr>(page) << kPageShift) +
                                o * 64,
                            false, o},
                           out);
                issued += out.size();
                for (const auto &c : out)
                    pf.onPrefetchUseless(c.meta);
            }
        }
        return issued;
    };
    unsigned first = train_pass();
    train_pass();
    unsigned later = train_pass();
    EXPECT_LT(later, first) << "PPF must learn to filter";
}

/** Generic interface properties across every prefetcher kind. */
class AnyPrefetcher
    : public ::testing::TestWithParam<PrefetcherKind>
{};

TEST_P(AnyPrefetcher, RespectsDegreeZero)
{
    auto pf = makePrefetcher(GetParam());
    ASSERT_NE(pf, nullptr);
    pf->setDegree(0);
    std::vector<PrefetchCandidate> out;
    for (int i = 0; i < 300; ++i)
        pf->observe({0x400, static_cast<Addr>(i) * 64, false,
                     static_cast<Cycle>(i) * 100},
                    out);
    // Degree 0 means at most stale-activation leakage; the
    // contract we enforce is "no candidates at degree 0" for the
    // chain-based generators.
    if (GetParam() != PrefetcherKind::kSms &&
        GetParam() != PrefetcherKind::kMlop &&
        GetParam() != PrefetcherKind::kBerti) {
        EXPECT_TRUE(out.empty());
    }
}

TEST_P(AnyPrefetcher, DegreeNeverExceedsMax)
{
    auto pf = makePrefetcher(GetParam());
    ASSERT_NE(pf, nullptr);
    pf->setDegree(1000);
    EXPECT_EQ(pf->degree(), pf->maxDegree());
}

TEST_P(AnyPrefetcher, ResetIsCleanSlate)
{
    auto pf = makePrefetcher(GetParam());
    ASSERT_NE(pf, nullptr);
    std::vector<PrefetchCandidate> a, b;
    for (int i = 0; i < 100; ++i)
        pf->observe({0x400, static_cast<Addr>(i) * 128, false,
                     static_cast<Cycle>(i) * 50},
                    a);
    pf->reset();
    for (int i = 0; i < 100; ++i)
        pf->observe({0x400, static_cast<Addr>(i) * 128, false,
                     static_cast<Cycle>(i) * 50},
                    b);
    EXPECT_EQ(a.size(), b.size())
        << "post-reset behaviour must match a fresh instance";
}

TEST_P(AnyPrefetcher, ReportsStorageAndLevel)
{
    auto pf = makePrefetcher(GetParam());
    ASSERT_NE(pf, nullptr);
    if (GetParam() != PrefetcherKind::kNextLine) {
        EXPECT_GT(pf->storageBits(), 0u);
    }
    CacheLevel lvl = pf->level();
    EXPECT_TRUE(lvl == CacheLevel::kL1D || lvl == CacheLevel::kL2C);
    EXPECT_GE(pf->maxDegree(), 1u);
}

TEST_P(AnyPrefetcher, FrontDoorMatchesVirtualKernel)
{
    // The devirtualized observe() front door must behave exactly
    // like a virtual call to observeImpl(): same candidates, same
    // internal state evolution, for every kind tag.
    auto front = makePrefetcher(GetParam());
    auto virt = makePrefetcher(GetParam());
    ASSERT_NE(front, nullptr);
    for (int i = 0; i < 400; ++i) {
        PrefetchTrigger trig{
            static_cast<std::uint64_t>(0x400 + (i % 7) * 8),
            static_cast<Addr>(i) * 192, false,
            static_cast<Cycle>(i) * 60};
        CandidateVec a, b;
        front->observe(trig, a);          // tag-dispatched
        virt->observeImpl(trig, b);       // virtual
        ASSERT_EQ(a.size(), b.size()) << "iter " << i;
        for (unsigned k = 0; k < a.size(); ++k) {
            EXPECT_EQ(a[k].lineNum, b[k].lineNum);
            EXPECT_EQ(a[k].meta, b[k].meta);
        }
    }
}

TEST(CandidateVec, DropsAppendsPastCapacity)
{
    CandidateVec vec;
    for (unsigned i = 0; i < CandidateVec::kCapacity + 10; ++i)
        vec.push_back({i, i});
    EXPECT_EQ(vec.size(), CandidateVec::kCapacity);
    EXPECT_TRUE(vec.full());
    EXPECT_EQ(vec[0].lineNum, 0u);
    EXPECT_EQ(vec[CandidateVec::kCapacity - 1].lineNum,
              CandidateVec::kCapacity - 1);
    vec.clear();
    EXPECT_TRUE(vec.empty());
}

TEST(Factory, TagsMatchKinds)
{
    // The dispatch tag must match the factory kind, or the front
    // door would route one prefetcher's triggers through another's
    // kernel.
    for (PrefetcherKind kind :
         {PrefetcherKind::kNextLine, PrefetcherKind::kStride,
          PrefetcherKind::kIpcp, PrefetcherKind::kBerti,
          PrefetcherKind::kPythia, PrefetcherKind::kSppPpf,
          PrefetcherKind::kMlop, PrefetcherKind::kSms}) {
        auto pf = makePrefetcher(kind);
        ASSERT_NE(pf, nullptr);
        EXPECT_EQ(pf->kind(), kind) << prefetcherKindName(kind);
    }
}

TEST(Factory, HonorsRequestedLevelForFlexibleKinds)
{
    // Regression: the L1D slot of a SystemConfig must produce an
    // L1D-level prefetcher even for the level-flexible kinds, or
    // the simulator triggers it on the wrong access stream and
    // TLP's level-scoped filter never sees its requests.
    auto nl = makePrefetcher(PrefetcherKind::kNextLine, 1,
                             CacheLevel::kL1D);
    EXPECT_EQ(nl->level(), CacheLevel::kL1D);
    auto st = makePrefetcher(PrefetcherKind::kStride, 1,
                             CacheLevel::kL1D);
    EXPECT_EQ(st->level(), CacheLevel::kL1D);
    // Fixed-level designs keep their published placement.
    auto ipcp = makePrefetcher(PrefetcherKind::kIpcp, 1,
                               CacheLevel::kL2C);
    EXPECT_EQ(ipcp->level(), CacheLevel::kL1D);
    auto pythia = makePrefetcher(PrefetcherKind::kPythia, 1,
                                 CacheLevel::kL1D);
    EXPECT_EQ(pythia->level(), CacheLevel::kL2C);
}

INSTANTIATE_TEST_SUITE_P(
    Kinds, AnyPrefetcher,
    ::testing::Values(PrefetcherKind::kNextLine,
                      PrefetcherKind::kStride, PrefetcherKind::kIpcp,
                      PrefetcherKind::kBerti,
                      PrefetcherKind::kPythia,
                      PrefetcherKind::kSppPpf, PrefetcherKind::kMlop,
                      PrefetcherKind::kSms),
    [](const ::testing::TestParamInfo<PrefetcherKind> &info) {
        return prefetcherKindName(info.param);
    });

} // namespace
} // namespace athena

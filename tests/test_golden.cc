/**
 * @file
 * Golden-result regression tests: for fixed seeds and fixed run
 * lengths, the simulator's measured counters must stay bit-identical
 * across engine refactors (devirtualized prefetch dispatch, fused
 * cache walks, QVStore row memoization, ...). Perf PRs may make the
 * engine faster, never different.
 *
 * The expected values were captured from the PR 1 engine. To
 * regenerate after an *intentional* semantic change, run with
 * ATHENA_GOLDEN_PRINT=1 and paste the printed table.
 */

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <gtest/gtest.h>
#include <vector>

#include "sim/simulator.hh"
#include "trace/zoo.hh"

namespace athena
{
namespace
{

constexpr std::uint64_t kInstr = 60000;
constexpr std::uint64_t kWarmup = 15000;

/** Integer fingerprint of one run; every field is exact. */
struct Golden
{
    std::uint64_t instructions;
    std::uint64_t cycles;
    std::uint64_t loads;
    std::uint64_t stores;
    std::uint64_t branchMispredicts;
    std::uint64_t llcMisses;
    std::uint64_t llcMissLatency;
    std::uint64_t pf0Issued;
    std::uint64_t pf0Used;
    std::uint64_t pf1Issued;
    std::uint64_t dramDemand;
    std::uint64_t dramPrefetch;
    std::uint64_t dramOcp;
};

bool
printMode()
{
    const char *v = std::getenv("ATHENA_GOLDEN_PRINT");
    return v && *v && *v != '0';
}

Golden
fingerprint(const SimResult &res, unsigned core = 0)
{
    const SimResult::PerCore &c = res.cores[core];
    return {c.instructions,      c.cycles,
            c.loads,             c.stores,
            c.branchMispredicts, c.llcMisses,
            c.llcMissLatency,    c.pf[0].issued,
            c.pf[0].used,        c.pf[1].issued,
            res.dram.demandRequests,
            res.dram.prefetchRequests,
            res.dram.ocpRequests};
}

void
checkOrPrint(const char *name, const Golden &got,
             const Golden &want)
{
    if (printMode()) {
        std::printf("    // %s\n"
                    "    {%lluu, %lluu, %lluu, %lluu, %lluu, %lluu, "
                    "%lluu, %lluu, %lluu, %lluu, %lluu, %lluu, "
                    "%lluu},\n",
                    name,
                    static_cast<unsigned long long>(got.instructions),
                    static_cast<unsigned long long>(got.cycles),
                    static_cast<unsigned long long>(got.loads),
                    static_cast<unsigned long long>(got.stores),
                    static_cast<unsigned long long>(
                        got.branchMispredicts),
                    static_cast<unsigned long long>(got.llcMisses),
                    static_cast<unsigned long long>(
                        got.llcMissLatency),
                    static_cast<unsigned long long>(got.pf0Issued),
                    static_cast<unsigned long long>(got.pf0Used),
                    static_cast<unsigned long long>(got.pf1Issued),
                    static_cast<unsigned long long>(got.dramDemand),
                    static_cast<unsigned long long>(got.dramPrefetch),
                    static_cast<unsigned long long>(got.dramOcp));
        return;
    }
    EXPECT_EQ(got.instructions, want.instructions) << name;
    EXPECT_EQ(got.cycles, want.cycles) << name;
    EXPECT_EQ(got.loads, want.loads) << name;
    EXPECT_EQ(got.stores, want.stores) << name;
    EXPECT_EQ(got.branchMispredicts, want.branchMispredicts) << name;
    EXPECT_EQ(got.llcMisses, want.llcMisses) << name;
    EXPECT_EQ(got.llcMissLatency, want.llcMissLatency) << name;
    EXPECT_EQ(got.pf0Issued, want.pf0Issued) << name;
    EXPECT_EQ(got.pf0Used, want.pf0Used) << name;
    EXPECT_EQ(got.pf1Issued, want.pf1Issued) << name;
    EXPECT_EQ(got.dramDemand, want.dramDemand) << name;
    EXPECT_EQ(got.dramPrefetch, want.dramPrefetch) << name;
    EXPECT_EQ(got.dramOcp, want.dramOcp) << name;
}

WorkloadSpec
pickWorkload(const char *substr)
{
    auto workloads = evalWorkloads();
    for (const WorkloadSpec &w : workloads) {
        if (w.name.find(substr) != std::string::npos)
            return w;
    }
    return workloads.front();
}

Golden
runSingle(CacheDesign design, PolicyKind policy, const char *wl)
{
    SystemConfig cfg = makeDesignConfig(design, policy);
    Simulator sim(cfg, {pickWorkload(wl)});
    return fingerprint(sim.run({kInstr, kWarmup}));
}

// Expected fingerprints, captured from the PR 1 engine (seeds and
// run lengths fixed above). Order matches the Golden struct.
constexpr Golden kCd1NaiveStream = {
    60000u, 86530u, 21580u, 3015u, 743u, 3u, 3074u, 1386u, 1353u,
    0u, 3u, 1074u, 0u};
constexpr Golden kCd1NaiveChase = {
    60000u, 1195260u, 13408u, 2394u, 1493u, 3200u, 8844916u, 12407u,
    238u, 0u, 579u, 8551u, 3191u};
constexpr Golden kCd1AthenaStream = {
    60000u, 125395u, 21580u, 3015u, 743u, 160u, 34442u, 1184u, 1179u,
    0u, 112u, 878u, 72u};
constexpr Golden kCd4AthenaChase = {
    60000u, 1103223u, 13408u, 2394u, 1493u, 3203u, 7831901u, 14u, 8u,
    9852u, 1368u, 7318u, 2394u};
constexpr Golden kCd3TlpStream = {
    60000u, 86879u, 21580u, 3015u, 743u, 2u, 1848u, 0u, 0u, 1377u,
    2u, 1067u, 0u};

TEST(GoldenResult, Cd1NaiveStream)
{
    checkOrPrint("kCd1NaiveStream",
                 runSingle(CacheDesign::kCd1, PolicyKind::kNaive,
                           "bwaves"),
                 kCd1NaiveStream);
}

TEST(GoldenResult, Cd1NaiveChase)
{
    checkOrPrint("kCd1NaiveChase",
                 runSingle(CacheDesign::kCd1, PolicyKind::kNaive,
                           "mcf"),
                 kCd1NaiveChase);
}

TEST(GoldenResult, Cd1AthenaStream)
{
    checkOrPrint("kCd1AthenaStream",
                 runSingle(CacheDesign::kCd1, PolicyKind::kAthena,
                           "bwaves"),
                 kCd1AthenaStream);
}

TEST(GoldenResult, Cd4AthenaChase)
{
    checkOrPrint("kCd4AthenaChase",
                 runSingle(CacheDesign::kCd4, PolicyKind::kAthena,
                           "mcf"),
                 kCd4AthenaChase);
}

TEST(GoldenResult, Cd3TlpStream)
{
    checkOrPrint("kCd3TlpStream",
                 runSingle(CacheDesign::kCd3, PolicyKind::kTlp,
                           "bwaves"),
                 kCd3TlpStream);
}

TEST(GoldenResult, RepeatRunsAreBitIdentical)
{
    // The golden values above are only meaningful if a single build
    // reproduces itself exactly.
    Golden a = runSingle(CacheDesign::kCd1, PolicyKind::kAthena,
                         "bwaves");
    Golden b = runSingle(CacheDesign::kCd1, PolicyKind::kAthena,
                         "bwaves");
    checkOrPrint("repeat", a, b);
}

} // namespace
} // namespace athena

/**
 * @file
 * Pythia-specific tests: the RL loop must learn to prefetch an
 * accurate pattern, learn to hold back on random traffic, and — the
 * regression that mattered for Athena integration — dropped
 * (gated/filtered) decisions must not erase learned Q-values.
 */

#include <cstdint>
#include <gtest/gtest.h>
#include <vector>

#include "common/rng.hh"
#include "prefetch/pythia.hh"

namespace athena
{
namespace
{

/**
 * Feed a sequential line stream; reward candidates that match the
 * next lines as used, others as useless.
 */
unsigned
runStream(PythiaPrefetcher &pf, unsigned triggers, bool reward_used)
{
    unsigned issued = 0;
    std::vector<PrefetchCandidate> out;
    for (unsigned i = 0; i < triggers; ++i) {
        out.clear();
        pf.observe({0x400, static_cast<Addr>(i) * kLineBytes, false,
                    static_cast<Cycle>(i) * 40},
                   out);
        issued += out.size();
        for (const auto &c : out) {
            // A stream demands every line shortly: any small
            // positive offset lands on a future demand.
            bool accurate =
                c.lineNum > i && c.lineNum < i + 40;
            if (!reward_used)
                continue;
            if (accurate)
                pf.onPrefetchUsed(c.meta, true);
            else
                pf.onPrefetchUseless(c.meta);
        }
    }
    return issued;
}

TEST(Pythia, LearnsToPrefetchStream)
{
    PythiaPrefetcher pf(1);
    runStream(pf, 3000, true);
    // After training, a window of triggers should mostly issue.
    unsigned late = runStream(pf, 500, true);
    EXPECT_GT(late, 300u)
        << "trained Pythia must keep prefetching a stream";
}

TEST(Pythia, LearnsToThrottleOnUselessTraffic)
{
    PythiaPrefetcher pf(2);
    pf.onEpochEnd(0.9); // high bandwidth pressure
    std::vector<PrefetchCandidate> out;
    Rng rng(9);
    // Random addresses: every issued prefetch is useless.
    for (int i = 0; i < 6000; ++i) {
        out.clear();
        pf.observe({0x400, rng.next() % (1ull << 34), false,
                    static_cast<Cycle>(i) * 10},
                   out);
        for (const auto &c : out)
            pf.onPrefetchUseless(c.meta);
    }
    unsigned tail = 0;
    for (int i = 0; i < 500; ++i) {
        out.clear();
        pf.observe({0x400, rng.next() % (1ull << 34), false,
                    static_cast<Cycle>(i) * 10},
                   out);
        tail += out.size();
    }
    EXPECT_LT(tail, 600u)
        << "Pythia must mostly stop prefetching useless traffic";
}

TEST(Pythia, DroppedDecisionsPreserveLearnedPolicy)
{
    PythiaPrefetcher pf(3);
    runStream(pf, 3000, true);
    unsigned before = runStream(pf, 300, true);

    // Simulate a long gated period: decisions made, all dropped.
    std::vector<PrefetchCandidate> out;
    for (int i = 0; i < 4000; ++i) {
        out.clear();
        pf.observe({0x400, static_cast<Addr>(10000 + i) * kLineBytes,
                    false, static_cast<Cycle>(i) * 40},
                   out);
        for (const auto &c : out)
            pf.onPrefetchDropped(c.meta);
    }

    unsigned after = runStream(pf, 300, true);
    EXPECT_GT(after * 3, before)
        << "gating must not erase the learned prefetch policy";
}

TEST(Pythia, MetaTokensSurviveQueueWrap)
{
    PythiaPrefetcher pf(4);
    std::vector<PrefetchCandidate> out;
    std::vector<std::uint64_t> metas;
    for (int i = 0; i < 2000; ++i) {
        out.clear();
        pf.observe({0x400, static_cast<Addr>(i) * kLineBytes, false,
                    static_cast<Cycle>(i) * 40},
                   out);
        for (const auto &c : out)
            metas.push_back(c.meta);
    }
    // Late feedback for long-expired metas must be ignored, not
    // crash or corrupt.
    for (std::uint64_t m : metas)
        pf.onPrefetchUsed(m, true);
    SUCCEED();
}

TEST(Pythia, DeterministicForFixedSeed)
{
    PythiaPrefetcher a(7), b(7);
    unsigned ia = runStream(a, 1000, true);
    unsigned ib = runStream(b, 1000, true);
    EXPECT_EQ(ia, ib);
}

TEST(Pythia, ActionListContainsNoPrefetch)
{
    PythiaPrefetcher pf;
    bool has_zero = false;
    for (unsigned a = 0; a < PythiaPrefetcher::numActions(); ++a) {
        if (pf.actionOffset(a) == 0)
            has_zero = true;
    }
    EXPECT_TRUE(has_zero);
}

TEST(Pythia, ResetClearsQValues)
{
    PythiaPrefetcher pf(5);
    runStream(pf, 2000, true);
    pf.reset();
    PythiaPrefetcher fresh(5);
    unsigned after_reset = runStream(pf, 500, true);
    unsigned from_fresh = runStream(fresh, 500, true);
    EXPECT_EQ(after_reset, from_fresh);
}

} // namespace
} // namespace athena

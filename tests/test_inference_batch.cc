/**
 * @file
 * Batched SoA inference plane oracle: every batch kernel must be
 * bit-identical to the scalar path it accelerates.
 *
 * Three layers of evidence:
 *  - Component kernels: QVStore lookupBatch/updateBatch vs scalar
 *    q()/update() over ragged randomized batches (float and
 *    quantized storage, row memo on and off), POPET
 *    featureIndicesBatch history-carry across ragged batch edges vs
 *    the batch-of-1 sequencing, predictPrepared vs predict over
 *    randomized interleaved predict/train streams, and Pythia's
 *    deltaSeqHash vs a manual fold with memo hit/miss mixes.
 *    Twin-component state equality is asserted on the serialized
 *    snapshot bytes, so hidden state (weights, RNG, history) cannot
 *    silently diverge.
 *  - Whole-simulation: SystemConfig::batchedInference on vs off
 *    must produce byte-equal SimResults across pinned configs,
 *    including the policy-heavy epoch500 shapes whose epochs close
 *    mid record-window, and a 4-core mix.
 *  - Snapshot interaction: a batched run snapshotted mid-window
 *    (warmup not a multiple of the record-batch size) must resume
 *    bit-identically — the collected plane is a pure cache, so the
 *    restored run re-collects and replays the same results.
 */

#include <array>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <gtest/gtest.h>
#include <string>
#include <vector>

#include "athena/qvstore.hh"
#include "common/hashing.hh"
#include "common/rng.hh"
#include "ocp/popet.hh"
#include "prefetch/pythia.hh"
#include "sim/simulator.hh"
#include "sim/system_config.hh"
#include "snapshot/snapshot.hh"
#include "trace/zoo.hh"

namespace athena
{
namespace
{

std::string
tmpPath(const std::string &name)
{
    return testing::TempDir() + "infbatch_" + name + ".asnp";
}

WorkloadSpec
pickWorkload(const char *substr)
{
    auto workloads = evalWorkloads();
    for (const WorkloadSpec &w : workloads) {
        if (w.name.find(substr) != std::string::npos)
            return w;
    }
    return workloads.front();
}

/** Serialized component state (exact twin-equality witness). */
template <typename Component>
std::vector<std::uint8_t>
stateBytes(const Component &c)
{
    SnapshotWriter w;
    w.beginSection("s");
    c.saveState(w);
    w.endSection();
    return w.serialize();
}

/** Full-SimResult equality: every counter, every core, exact. */
void
expectResultsIdentical(const SimResult &a, const SimResult &b,
                       const char *ctx)
{
    ASSERT_EQ(a.cores.size(), b.cores.size()) << ctx;
    for (unsigned c = 0; c < a.cores.size(); ++c) {
        const SimResult::PerCore &x = a.cores[c];
        const SimResult::PerCore &y = b.cores[c];
        EXPECT_EQ(x.instructions, y.instructions) << ctx << " c" << c;
        EXPECT_EQ(x.cycles, y.cycles) << ctx << " c" << c;
        EXPECT_EQ(x.ipc, y.ipc) << ctx << " c" << c;
        EXPECT_EQ(x.loads, y.loads) << ctx << " c" << c;
        EXPECT_EQ(x.stores, y.stores) << ctx << " c" << c;
        EXPECT_EQ(x.branchMispredicts, y.branchMispredicts)
            << ctx << " c" << c;
        EXPECT_EQ(x.llcMisses, y.llcMisses) << ctx << " c" << c;
        EXPECT_EQ(x.llcMissLatency, y.llcMissLatency)
            << ctx << " c" << c;
        EXPECT_EQ(x.ocpPredictions, y.ocpPredictions)
            << ctx << " c" << c;
        EXPECT_EQ(x.ocpCorrect, y.ocpCorrect) << ctx << " c" << c;
        EXPECT_EQ(x.actionHistogram, y.actionHistogram)
            << ctx << " c" << c;
        for (unsigned s = 0; s < x.pf.size(); ++s) {
            EXPECT_EQ(x.pf[s].issued, y.pf[s].issued)
                << ctx << " c" << c << " pf" << s;
            EXPECT_EQ(x.pf[s].used, y.pf[s].used)
                << ctx << " c" << c << " pf" << s;
        }
    }
    EXPECT_EQ(a.dram.demandRequests, b.dram.demandRequests) << ctx;
    EXPECT_EQ(a.dram.prefetchRequests, b.dram.prefetchRequests)
        << ctx;
    EXPECT_EQ(a.dram.rowHits, b.dram.rowHits) << ctx;
    EXPECT_EQ(a.dram.busBusyCycles, b.dram.busBusyCycles) << ctx;
    EXPECT_EQ(a.busUtilization, b.busUtilization) << ctx;
}

// ------------------------------------------------- QVStore kernels

/** Ragged sizes covering empty, singleton, odd, and full batches. */
constexpr std::array<unsigned, 6> kRaggedSizes = {0, 1, 3, 17, 64,
                                                  129};

void
qvLookupBatchMatchesScalar(QVStoreParams params)
{
    QVStore qv(params);
    // Teach it something first so the entries are not uniform.
    Rng rng(0xabcdef);
    for (int i = 0; i < 500; ++i) {
        auto s = static_cast<std::uint32_t>(rng.next());
        auto s2 = static_cast<std::uint32_t>(rng.next());
        qv.update(s, s & 3, (rng.next() % 7) - 3.0, s2, s2 & 3);
    }
    const unsigned actions = qv.params().actions;
    for (unsigned n : kRaggedSizes) {
        std::vector<std::uint32_t> states(n);
        for (std::uint32_t &s : states) {
            // Mix in-memo (packed-space) and out-of-memo states.
            s = static_cast<std::uint32_t>(rng.next());
            if (rng.next() & 1)
                s &= 0xfff;
        }
        std::vector<double> got(n * actions, -1.0);
        qv.lookupBatch(states.data(), n, got.data());
        for (unsigned i = 0; i < n; ++i) {
            for (unsigned a = 0; a < actions; ++a) {
                EXPECT_EQ(got[i * actions + a], qv.q(states[i], a))
                    << "n=" << n << " i=" << i << " a=" << a;
            }
        }
        // qRowsBatch is pure in (state, geometry): equal rows for
        // equal states regardless of memoization.
        QVStoreParams nomemo = params;
        nomemo.memoizeRows = false;
        QVStore plain(nomemo);
        std::vector<std::uint32_t> r1(n * params.planes);
        std::vector<std::uint32_t> r2(n * params.planes);
        qv.qRowsBatch(states.data(), n, r1.data());
        plain.qRowsBatch(states.data(), n, r2.data());
        EXPECT_EQ(r1, r2) << "n=" << n;
    }
}

TEST(QVStoreBatch, LookupBatchMatchesScalarFloat)
{
    qvLookupBatchMatchesScalar(QVStoreParams{});
}

TEST(QVStoreBatch, LookupBatchMatchesScalarQuantized)
{
    QVStoreParams p;
    p.quantized = true;
    qvLookupBatchMatchesScalar(p);
}

TEST(QVStoreBatch, LookupBatchMatchesScalarNoMemo)
{
    QVStoreParams p;
    p.memoizeRows = false;
    qvLookupBatchMatchesScalar(p);
}

void
qvUpdateBatchMatchesScalar(QVStoreParams params)
{
    QVStore scalar(params);
    QVStore batched(params);
    Rng rng(0x5eed);
    for (unsigned n : kRaggedSizes) {
        std::vector<QVStore::TrainTriple> triples(n);
        for (QVStore::TrainTriple &t : triples) {
            t.s = static_cast<std::uint32_t>(rng.next());
            t.a = static_cast<unsigned>(rng.next() %
                                        params.actions);
            t.reward = static_cast<double>(
                           static_cast<std::int64_t>(rng.next() %
                                                     17) -
                           8) /
                       2.0;
            t.sNext = static_cast<std::uint32_t>(rng.next());
            t.aNext = static_cast<unsigned>(rng.next() %
                                            params.actions);
        }
        for (const QVStore::TrainTriple &t : triples)
            scalar.update(t.s, t.a, t.reward, t.sNext, t.aNext);
        batched.updateBatch(triples.data(), n);
        // Serialized-state equality: every entry byte and (in
        // quantized mode) the stochastic-rounding RNG state match.
        EXPECT_EQ(stateBytes(scalar), stateBytes(batched))
            << "after batch of " << n;
        // Interleave a read between batches — the batch boundary
        // must not be observable.
        auto probe = static_cast<std::uint32_t>(rng.next());
        EXPECT_EQ(scalar.argmax(probe), batched.argmax(probe));
    }
}

TEST(QVStoreBatch, UpdateBatchMatchesScalarFloat)
{
    qvUpdateBatchMatchesScalar(QVStoreParams{});
}

TEST(QVStoreBatch, UpdateBatchMatchesScalarQuantized)
{
    QVStoreParams p;
    p.quantized = true;
    qvUpdateBatchMatchesScalar(p);
}

TEST(QVStoreBatch, UpdateBatchMatchesScalarNoMemo)
{
    QVStoreParams p;
    p.memoizeRows = false;
    qvUpdateBatchMatchesScalar(p);
}

// --------------------------------------------------- POPET kernels

/** A randomized (pc, addr) demand stream with PC/page reuse (the
 *  regime the scalar path's memos were built for). */
void
fillAccessStream(Rng &rng, std::vector<std::uint64_t> &pcs,
                 std::vector<Addr> &addrs, unsigned n)
{
    pcs.resize(n);
    addrs.resize(n);
    for (unsigned i = 0; i < n; ++i) {
        pcs[i] = 0x400000 + (rng.next() % 24) * 4;
        addrs[i] = (rng.next() % 64) * 4096 + (rng.next() & 0xfff);
    }
}

TEST(PopetBatch, FeatureIndicesBatchCarriesHistoryAcrossEdges)
{
    // Chunked featureIndicesBatch over ragged windows must equal
    // the batch-of-1 sequencing, with the rolling PC-history hash
    // carried across every batch edge by the real predict() calls
    // in between.
    PopetPredictor chunked;
    PopetPredictor oracle;
    Rng rng(0x90be7);
    std::vector<std::uint64_t> pcs;
    std::vector<Addr> addrs;
    for (unsigned n : kRaggedSizes) {
        fillAccessStream(rng, pcs, addrs, n);
        std::vector<std::uint16_t> got(n * 5, 0xffff);
        std::vector<std::uint16_t> want(n * 5, 0xeeee);
        chunked.featureIndicesBatch(pcs.data(), addrs.data(), n,
                                    got.data());
        for (unsigned i = 0; i < n; ++i) {
            oracle.featureIndicesBatch(&pcs[i], &addrs[i], 1,
                                       &want[i * 5]);
            // Advance both twins' live history identically.
            chunked.predict(pcs[i], addrs[i]);
            oracle.predict(pcs[i], addrs[i]);
        }
        EXPECT_EQ(got, want) << "window of " << n;
        EXPECT_EQ(stateBytes(chunked), stateBytes(oracle));
    }
}

TEST(PopetBatch, MemoizedPureBatchMatchesMemoFree)
{
    // The persistent collect memo is a pure cache: outputs must be
    // bit-identical to the memo-free kernel with ANY memo contents.
    // Streams are crafted to alias in the direct-mapped tables
    // (same low bits, different pc/arg) so the key-validation path
    // is exercised, and one memo instance persists across batches
    // so stale entries from earlier batches are probed.
    PopetPredictor::PureBatchMemo memo;
    Rng rng(0xcafe);
    std::vector<std::uint64_t> pcs;
    std::vector<Addr> addrs;
    for (unsigned round = 0; round < 6; ++round) {
        const unsigned n = 1 + static_cast<unsigned>(rng.next() % 200);
        pcs.resize(n);
        addrs.resize(n);
        for (unsigned i = 0; i < n; ++i) {
            // PCs collide in the 16-entry pc memo ((pc>>4)&15):
            // vary only bits above bit 8.
            pcs[i] = 0x400000 + ((rng.next() % 7) << 8);
            // Mix streaming pages (arg reuse across pages) with
            // random addresses (forced evictions).
            addrs[i] = (rng.next() & 1)
                           ? (round * 4096 + i * 64)
                           : static_cast<Addr>(rng.next());
        }
        std::vector<std::uint16_t> with_memo(
            n * PopetPredictor::kPureFeatures, 0xaaaa);
        std::vector<std::uint16_t> memo_free(
            n * PopetPredictor::kPureFeatures, 0xbbbb);
        PopetPredictor::pureFeatureIndicesBatch(
            pcs.data(), addrs.data(), n, with_memo.data(), memo);
        PopetPredictor::pureFeatureIndicesBatch(
            pcs.data(), addrs.data(), n, memo_free.data());
        EXPECT_EQ(with_memo, memo_free) << "round " << round;
    }
}

TEST(PopetBatch, PredictPreparedMatchesPredict)
{
    // Randomized interleaved predict/train streams: twin A serves
    // predictions from window-collected pure rows, twin B runs the
    // scalar path; predictions, training effects, and final
    // serialized state must be identical.
    PopetPredictor prepared;
    PopetPredictor scalar;
    Rng rng(0x9a9a);
    std::vector<std::uint64_t> pcs;
    std::vector<Addr> addrs;
    for (unsigned round = 0; round < 8; ++round) {
        const unsigned n = 1 + static_cast<unsigned>(rng.next() % 96);
        fillAccessStream(rng, pcs, addrs, n);
        std::vector<std::uint16_t> pure(
            n * PopetPredictor::kPureFeatures);
        PopetPredictor::pureFeatureIndicesBatch(
            pcs.data(), addrs.data(), n, pure.data());
        for (unsigned i = 0; i < n; ++i) {
            bool a = prepared.predictPrepared(
                pcs[i], addrs[i],
                &pure[i * PopetPredictor::kPureFeatures]);
            bool b = scalar.predict(pcs[i], addrs[i]);
            ASSERT_EQ(a, b) << "round " << round << " i " << i;
            // Mostly paired trains (the demand path's shape), with
            // occasional skips and unpaired re-trains mixed in.
            std::uint64_t roll = rng.next() % 8;
            if (roll == 0)
                continue; // no train for this access
            bool went = (rng.next() & 1) != 0;
            prepared.train(pcs[i], addrs[i], went);
            scalar.train(pcs[i], addrs[i], went);
            if (roll == 1) {
                // Unpaired second train (memo already consumed).
                prepared.train(pcs[i], addrs[i], went);
                scalar.train(pcs[i], addrs[i], went);
            }
        }
        EXPECT_EQ(stateBytes(prepared), stateBytes(scalar))
            << "round " << round;
    }
}

// -------------------------------------------------- Pythia kernels

TEST(PythiaBatch, DeltaSeqHashMatchesManualFold)
{
    Rng rng(0x77);
    for (int trial = 0; trial < 200; ++trial) {
        // Oldest-first history of four clamped deltas.
        std::array<int, 4> hist;
        std::uint32_t key = 0;
        for (int &d : hist) {
            d = static_cast<int>(rng.next() % 129) - 64;
            key = (key << 8) |
                  (static_cast<std::uint32_t>(d) & 0xffu);
        }
        std::uint64_t want = 0;
        for (int d : hist) {
            want = hashCombine(want,
                               static_cast<std::uint64_t>(
                                   static_cast<std::int64_t>(d)));
        }
        EXPECT_EQ(PythiaPrefetcher::deltaSeqHash(key), want)
            << "trial " << trial;
    }
}

TEST(PythiaBatch, DeltaSeqHashBatchMemoHitMissMix)
{
    PythiaPrefetcher pythia(7);
    Rng rng(0x1234);
    // A key stream with heavy repeats (memo hits), fresh keys
    // (misses), and aliasing keys (same memo slot, different key —
    // forced evictions).
    std::vector<std::uint32_t> keys;
    for (int i = 0; i < 400; ++i) {
        switch (rng.next() % 3) {
          case 0:
            keys.push_back(0x01020304); // repeat: memo hit
            break;
          case 1:
            keys.push_back(
                static_cast<std::uint32_t>(rng.next()));
            break;
          default:
            // Same low byte as the repeat key: direct-mapped alias.
            keys.push_back((static_cast<std::uint32_t>(rng.next())
                            << 8) |
                           0x04);
            break;
        }
    }
    std::vector<std::uint64_t> got(keys.size());
    pythia.deltaSeqHashBatch(keys.data(),
                             static_cast<unsigned>(keys.size()),
                             got.data());
    for (std::size_t i = 0; i < keys.size(); ++i) {
        EXPECT_EQ(got[i], PythiaPrefetcher::deltaSeqHash(keys[i]))
            << "i=" << i;
    }
}

// --------------------------------------------- whole-sim A/B oracle

SimResult
runSim(SystemConfig cfg, const std::vector<WorkloadSpec> &specs,
       bool batched, const RunPlan &plan)
{
    cfg.batchedInference = batched;
    Simulator sim(cfg, specs);
    return sim.run(plan);
}

void
expectBatchedScalarIdentical(SystemConfig cfg,
                             const std::vector<WorkloadSpec> &specs,
                             const RunPlan &plan, const char *ctx)
{
    SimResult batched = runSim(cfg, specs, true, plan);
    SimResult scalar = runSim(cfg, specs, false, plan);
    expectResultsIdentical(batched, scalar, ctx);
}

TEST(InferenceBatchSim, Cd1NaiveIdentical)
{
    expectBatchedScalarIdentical(
        makeDesignConfig(CacheDesign::kCd1, PolicyKind::kNaive),
        {pickWorkload("bwaves")}, {60000, 5000}, "cd1_naive");
}

TEST(InferenceBatchSim, Cd1AthenaEpoch500Identical)
{
    SystemConfig cfg =
        makeDesignConfig(CacheDesign::kCd1, PolicyKind::kAthena);
    cfg.epochInstructions = 500; // epochs close mid record-window
    expectBatchedScalarIdentical(cfg, {pickWorkload("bwaves")},
                                 {60000, 5000},
                                 "cd1_athena_epoch500");
}

TEST(InferenceBatchSim, Cd4AthenaChaseIdentical)
{
    expectBatchedScalarIdentical(
        makeDesignConfig(CacheDesign::kCd4, PolicyKind::kAthena),
        {pickWorkload("mcf")}, {60000, 5000}, "cd4_athena_chase");
}

TEST(InferenceBatchSim, Mc4AthenaEpoch500Identical)
{
    SystemConfig cfg =
        makeDesignConfig(CacheDesign::kCd1, PolicyKind::kAthena);
    cfg.cores = 4;
    cfg.epochInstructions = 500;
    auto workloads = evalWorkloads();
    std::vector<WorkloadSpec> mix;
    for (unsigned i = 0; i < 4; ++i)
        mix.push_back(workloads[(i * workloads.size()) / 4]);
    expectBatchedScalarIdentical(cfg, mix, {20000, 2000},
                                 "mc4_athena_epoch500");
}

TEST(InferenceBatchSim, EnvKillSwitchIsObservationallyInert)
{
    // The ATHENA_INFERENCE_BATCH latch is read once per process, so
    // whichever value it latched at the first simulator
    // construction in this binary, a run with the knob on and a run
    // with it off must agree — the kill switch can only ever select
    // between two bit-identical engines. (Scalar-path forcing
    // itself is covered by every knob-off oracle run above; the CI
    // smoke exercises the env var from a fresh process.)
    ::setenv("ATHENA_INFERENCE_BATCH", "0", 1);
    SystemConfig cfg =
        makeDesignConfig(CacheDesign::kCd1, PolicyKind::kAthena);
    SimResult env_set = runSim(cfg, {pickWorkload("bwaves")}, true,
                               {30000, 2000});
    ::unsetenv("ATHENA_INFERENCE_BATCH");
    SimResult knob_off = runSim(cfg, {pickWorkload("bwaves")},
                                false, {30000, 2000});
    expectResultsIdentical(env_set, knob_off, "env_kill_switch");
}

// ------------------------------------------- snapshot mid-window

TEST(InferenceBatchSnapshot, MidWindowResumeIsBitIdentical)
{
    // Warmup 1300 is not a multiple of the 256-record batch, so the
    // snapshot lands mid record-window: the restored core holds a
    // partial buffer and the batch plane must re-collect from it
    // (scalar-fallback-free only after the next refill; either way
    // bit-identical). The straight-through batched run is the
    // oracle; the scalar straight-through run cross-checks both.
    SystemConfig cfg =
        makeDesignConfig(CacheDesign::kCd1, PolicyKind::kAthena);
    cfg.epochInstructions = 500;
    const WorkloadSpec wl = pickWorkload("bwaves");
    RunPlan plan(40000, 1300);

    SimResult straight = runSim(cfg, {wl}, true, plan);
    SimResult scalar = runSim(cfg, {wl}, false, plan);
    expectResultsIdentical(straight, scalar, "straight_vs_scalar");

    const std::string path = tmpPath("mid_window");
    RunPlan snap_plan = plan;
    snap_plan.snapshotAfterWarmup = path;
    runSim(cfg, {wl}, true, snap_plan);

    SystemConfig bcfg = cfg;
    bcfg.batchedInference = true;
    Simulator resumed(bcfg, {wl}, path);
    SimResult from_snap = resumed.run(plan);
    expectResultsIdentical(straight, from_snap,
                           "straight_vs_resumed");

    // Cross-engine: a scalar simulator must also resume the batched
    // run's snapshot bit-identically (the snapshot format carries
    // no batching state — the plane is a pure cache).
    SystemConfig scfg = cfg;
    scfg.batchedInference = false;
    Simulator resumed_scalar(scfg, {wl}, path);
    SimResult from_snap_scalar = resumed_scalar.run(plan);
    expectResultsIdentical(straight, from_snap_scalar,
                           "straight_vs_scalar_resumed");
    std::remove(path.c_str());
}

} // namespace
} // namespace athena

/**
 * @file
 * End-to-end integration tests reproducing the paper's directional
 * claims at reduced scale: coordination beats naive combination on
 * adverse workloads, Athena adapts across cache designs, and the
 * prefetcher-only mode works without an OCP.
 *
 * Thresholds are deliberately loose — these tests check *signs and
 * orderings*, not absolute numbers; the benches report the full
 * figures.
 */


#include <cstdlib>
#include <gtest/gtest.h>
#include <string>

#include "sim/runner.hh"

namespace athena
{
namespace
{

class IntegrationTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        setenv("ATHENA_SIM_INSTR", "200000", 1);
        setenv("ATHENA_WARMUP_INSTR", "50000", 1);
    }

    void
    TearDown() override
    {
        unsetenv("ATHENA_SIM_INSTR");
        unsetenv("ATHENA_WARMUP_INSTR");
    }

    double
    speedup(PolicyKind policy, const std::string &workload,
            CacheDesign design = CacheDesign::kCd1)
    {
        ExperimentRunner runner;
        auto workloads = evalWorkloads();
        const WorkloadSpec &spec = findWorkload(workloads, workload);
        SystemConfig cfg = makeDesignConfig(design, policy);
        double base = runner.baselineIpc(cfg, spec);
        return runner.runOne(cfg, spec).ipc() / base;
    }
};

TEST_F(IntegrationTest, PrefetchHelpsStreamHurtsChase)
{
    EXPECT_GT(speedup(PolicyKind::kPfOnly, "462.libquantum-714B"),
              1.3);
    EXPECT_LT(speedup(PolicyKind::kPfOnly, "605.mcf_s-1554B"), 1.02);
}

TEST_F(IntegrationTest, OcpHelpsChase)
{
    EXPECT_GT(speedup(PolicyKind::kOcpOnly, "605.mcf_s-1554B"),
              1.03);
}

TEST_F(IntegrationTest, AthenaProtectsAdverseWorkload)
{
    double naive = speedup(PolicyKind::kNaive, "429.mcf-184B");
    double athena = speedup(PolicyKind::kAthena, "429.mcf-184B");
    EXPECT_GT(athena, naive - 0.02)
        << "Athena must not lose to naive on an adverse workload";
    EXPECT_GT(athena, 0.95)
        << "Athena must roughly hold the no-speculation baseline";
}

TEST_F(IntegrationTest, AthenaExploitsFriendlyWorkload)
{
    double athena =
        speedup(PolicyKind::kAthena, "462.libquantum-714B");
    EXPECT_GT(athena, 1.25)
        << "Athena must capture most of the prefetching gain";
}

TEST_F(IntegrationTest, AthenaWorksInCd4)
{
    double naive =
        speedup(PolicyKind::kNaive, "605.mcf_s-1554B",
                CacheDesign::kCd4);
    double athena =
        speedup(PolicyKind::kAthena, "605.mcf_s-1554B",
                CacheDesign::kCd4);
    EXPECT_GT(athena, naive - 0.06)
        << "small-scale learning transient must stay bounded";
}

TEST_F(IntegrationTest, PrefetcherOnlyModeRunsWithoutOcp)
{
    ExperimentRunner runner;
    auto workloads = evalWorkloads();
    const WorkloadSpec &spec =
        findWorkload(workloads, "429.mcf-184B");
    SystemConfig cfg =
        makeDesignConfig(CacheDesign::kCd3, PolicyKind::kAthena);
    cfg.ocp = OcpKind::kNone;
    cfg.athena.prefetcherOnlyMode = true;
    double base = runner.baselineIpc(cfg, spec);
    SimResult res = runner.runOne(cfg, spec);
    EXPECT_EQ(res.cores[0].ocpPredictions, 0u);
    EXPECT_GT(res.ipc() / base, 0.88)
        << "prefetcher-only Athena must hold near baseline on an "
           "adverse workload";
}

TEST_F(IntegrationTest, QuantizedQVStoreStillLearns)
{
    ExperimentRunner runner;
    auto workloads = evalWorkloads();
    const WorkloadSpec &spec =
        findWorkload(workloads, "462.libquantum-714B");
    SystemConfig cfg =
        makeDesignConfig(CacheDesign::kCd1, PolicyKind::kAthena);
    cfg.athena.qv.quantized = true;
    double base = runner.baselineIpc(cfg, spec);
    double s = runner.runOne(cfg, spec).ipc() / base;
    EXPECT_GT(s, 1.15) << "the 8-bit QVStore path must still learn "
                          "to enable prefetching";
}

TEST_F(IntegrationTest, HigherBandwidthFavorsNaive)
{
    ExperimentRunner runner;
    auto workloads = evalWorkloads();
    const WorkloadSpec &spec =
        findWorkload(workloads, "605.mcf_s-1554B");
    SystemConfig narrow =
        makeDesignConfig(CacheDesign::kCd1, PolicyKind::kNaive);
    narrow.bandwidthGBps = 1.6;
    SystemConfig wide = narrow;
    wide.bandwidthGBps = 12.8;
    double s_narrow = runner.runOne(narrow, spec).ipc() /
                      runner.baselineIpc(narrow, spec);
    double s_wide = runner.runOne(wide, spec).ipc() /
                    runner.baselineIpc(wide, spec);
    EXPECT_GT(s_wide, s_narrow)
        << "bandwidth headroom must soften the naive penalty";
}

} // namespace
} // namespace athena

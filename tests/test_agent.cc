/**
 * @file
 * AthenaAgent tests: convergence on synthetic environments where
 * the correct coordination is known, Algorithm 1's Q-driven degree
 * control, the prefetcher-only action space, and ablation flags.
 */

#include <array>
#include <cstdint>
#include <gtest/gtest.h>

#include "athena/agent.hh"

namespace athena
{
namespace
{

/**
 * A synthetic coordination environment: the epoch stats are a
 * deterministic function of the decision the agent chose, with
 * configurable per-combination IPC and small deterministic noise.
 */
class FakeSystem
{
  public:
    /** cycles(pf, ocp) table, indexed [pf][ocp]. */
    std::array<std::array<std::uint64_t, 2>, 2> cycles = {
        {{16000, 13000}, {12000, 10000}}};

    EpochStats
    run(const CoordDecision &d, int tick)
    {
        EpochStats s;
        s.instructions = 8000;
        bool pf = d.pfEnabled(0) && d.degreeScale[0] > 0.0;
        s.cycles = cycles[pf][d.ocpEnable] +
                   static_cast<std::uint64_t>((tick * 37) % 200);
        s.loads = 2400;
        s.branches = 640;
        s.branchMispredicts = 30 + (tick % 5);
        s.pfIssued[0] = pf ? 160 : 0;
        s.pfUsed[0] = pf ? 120 : 0;
        s.ocpPredictions = d.ocpEnable ? 90 : 0;
        s.ocpCorrect = d.ocpEnable ? 80 : 0;
        s.bandwidthUsage = pf ? 0.6 : 0.3;
        s.llcMisses = pf ? 30 : 90;
        s.llcMissLatency = s.llcMisses * 260;
        s.dramDemand = 60;
        s.dramPrefetch = pf ? 50 : 0;
        s.dramOcp = d.ocpEnable ? 25 : 0;
        return s;
    }
};

/** Run the agent against the fake system for n epochs; return the
 *  fraction of the last half spent on the optimal combination. */
double
convergence(AthenaAgent &agent, FakeSystem &system, unsigned optimal,
            unsigned epochs = 600)
{
    CoordDecision d = agent.onEpochEnd(EpochStats{});
    unsigned optimal_picks = 0, counted = 0;
    for (unsigned t = 0; t < epochs; ++t) {
        EpochStats stats = system.run(d, static_cast<int>(t));
        d = agent.onEpochEnd(stats);
        if (t >= epochs / 2) {
            ++counted;
            bool pf = d.pfEnabled(0) && d.degreeScale[0] > 0.0;
            unsigned combo =
                (pf ? 2u : 0u) | (d.ocpEnable ? 1u : 0u);
            if (combo == optimal)
                ++optimal_picks;
        }
    }
    return static_cast<double>(optimal_picks) / counted;
}

TEST(Agent, ConvergesToBothWhenBothHelp)
{
    AthenaAgent agent;
    FakeSystem system; // both-on is fastest by construction
    EXPECT_GT(convergence(agent, system, 3u), 0.6);
}

TEST(Agent, ConvergesToOcpOnlyWhenPrefetchHurts)
{
    AthenaAgent agent;
    FakeSystem system;
    system.cycles = {{{16000, 11000}, {20000, 18000}}};
    EXPECT_GT(convergence(agent, system, 1u), 0.6);
}

TEST(Agent, ConvergesToNoneWhenEverythingHurts)
{
    AthenaAgent agent;
    FakeSystem system;
    system.cycles = {{{10000, 15000}, {16000, 21000}}};
    EXPECT_GT(convergence(agent, system, 0u), 0.55);
}

TEST(Agent, DegreeScaleFullWhenConfident)
{
    AthenaAgent agent;
    FakeSystem system;
    CoordDecision d = agent.onEpochEnd(EpochStats{});
    for (int t = 0; t < 600; ++t)
        d = agent.onEpochEnd(system.run(d, t));
    // Converged to "both" with a large Q separation: Algorithm 1
    // should run the prefetcher at (nearly) full aggressiveness in
    // most late epochs.
    unsigned full = 0, pf_epochs = 0;
    for (int t = 600; t < 700; ++t) {
        d = agent.onEpochEnd(system.run(d, t));
        if (d.pfEnabled(0)) {
            ++pf_epochs;
            if (d.degreeScale[0] > 0.9)
                ++full;
        }
    }
    ASSERT_GT(pf_epochs, 50u);
    EXPECT_GT(full * 10, pf_epochs * 7);
}

TEST(Agent, PrefetcherOnlyModeMapsActionsToMask)
{
    AthenaConfig cfg;
    cfg.prefetcherOnlyMode = true;
    AthenaAgent agent(cfg);
    for (unsigned a = 0; a < 4; ++a) {
        CoordDecision d = agent.decisionFor(a, 1.0);
        EXPECT_FALSE(d.ocpEnable);
        EXPECT_EQ(d.pfEnableMask, a);
    }
}

TEST(Agent, StandardModeActionSemantics)
{
    AthenaAgent agent;
    CoordDecision none = agent.decisionFor(0, 0.0);
    EXPECT_FALSE(none.ocpEnable);
    EXPECT_EQ(none.pfEnableMask, 0u);
    CoordDecision ocp = agent.decisionFor(1, 0.0);
    EXPECT_TRUE(ocp.ocpEnable);
    EXPECT_EQ(ocp.pfEnableMask, 0u);
    CoordDecision pf = agent.decisionFor(2, 1.0);
    EXPECT_FALSE(pf.ocpEnable);
    EXPECT_NE(pf.pfEnableMask, 0u);
    CoordDecision both = agent.decisionFor(3, 1.0);
    EXPECT_TRUE(both.ocpEnable);
    EXPECT_NE(both.pfEnableMask, 0u);
}

TEST(Agent, ActionHistogramAccumulates)
{
    AthenaAgent agent;
    FakeSystem system;
    CoordDecision d = agent.onEpochEnd(EpochStats{});
    for (int t = 0; t < 100; ++t)
        d = agent.onEpochEnd(system.run(d, t));
    std::uint64_t total = 0;
    for (auto v : agent.actionHistogram())
        total += v;
    EXPECT_EQ(total, 101u);
}

TEST(Agent, StatelessModeStillActs)
{
    AthenaConfig cfg;
    cfg.stateless = true;
    cfg.ipcRewardOnly = true;
    AthenaAgent agent(cfg);
    FakeSystem system;
    // Stateless Athena should still find a decent combo eventually,
    // just less reliably (Fig. 18's SA bar).
    double frac = convergence(agent, system, 3u, 800);
    EXPECT_GT(frac, 0.3);
}

TEST(Agent, ResetClearsLearning)
{
    AthenaAgent agent;
    FakeSystem system;
    convergence(agent, system, 3u, 200);
    agent.reset();
    for (auto v : agent.actionHistogram())
        EXPECT_EQ(v, 0u);
}

TEST(Agent, StorageBudgetIs3KB)
{
    AthenaAgent agent;
    EXPECT_EQ(agent.storageBits(), 3u * 1024 * 8);
}

} // namespace
} // namespace athena

/**
 * @file
 * Bloom filter tests: no false negatives, bounded false positives
 * at the paper's sizing point, clearing, and the analytic FPR
 * helper used by the Table 4 sizing argument.
 */

#include <cstdint>
#include <gtest/gtest.h>
#include <vector>

#include "athena/bloom.hh"
#include "common/rng.hh"

namespace athena
{
namespace
{

TEST(Bloom, NoFalseNegatives)
{
    BloomFilter bloom(4096, 2);
    Rng rng(1);
    std::vector<std::uint64_t> keys;
    for (int i = 0; i < 199; ++i)
        keys.push_back(rng.next());
    for (auto k : keys)
        bloom.insert(k);
    for (auto k : keys)
        EXPECT_TRUE(bloom.mayContain(k));
}

TEST(Bloom, FalsePositiveRateNearPaperSizing)
{
    // Table 4 sizes 4096 bits / 2 hashes for ~1% FPR at 199
    // insertions (3 SD above the mean prefetches per epoch).
    BloomFilter bloom(4096, 2);
    Rng rng(2);
    for (int i = 0; i < 199; ++i)
        bloom.insert(rng.next());
    unsigned fp = 0;
    const unsigned probes = 20000;
    for (unsigned i = 0; i < probes; ++i) {
        if (bloom.mayContain(rng.next() | (1ull << 63)))
            ++fp;
    }
    double rate = static_cast<double>(fp) / probes;
    EXPECT_LT(rate, 0.03);
    EXPECT_NEAR(rate, bloom.falsePositiveRate(199), 0.01);
}

TEST(Bloom, ClearEmptiesFilter)
{
    BloomFilter bloom(4096, 2);
    bloom.insert(42);
    ASSERT_TRUE(bloom.mayContain(42));
    bloom.clear();
    EXPECT_FALSE(bloom.mayContain(42));
    EXPECT_EQ(bloom.insertions(), 0u);
}

TEST(Bloom, InsertionCounterTracks)
{
    BloomFilter bloom(4096, 2);
    for (int i = 0; i < 17; ++i)
        bloom.insert(i);
    EXPECT_EQ(bloom.insertions(), 17u);
}

TEST(Bloom, StorageMatchesConfiguration)
{
    BloomFilter bloom(4096, 2);
    EXPECT_EQ(bloom.storageBits(), 4096u);
}

TEST(Bloom, AnalyticFprMonotoneInLoad)
{
    BloomFilter bloom(4096, 2);
    EXPECT_LT(bloom.falsePositiveRate(50),
              bloom.falsePositiveRate(500));
    EXPECT_LT(bloom.falsePositiveRate(500),
              bloom.falsePositiveRate(5000));
}

class BloomGeometry
    : public ::testing::TestWithParam<std::pair<unsigned, unsigned>>
{};

TEST_P(BloomGeometry, NoFalseNegativesAnyGeometry)
{
    auto [bits, hashes] = GetParam();
    BloomFilter bloom(bits, hashes);
    Rng rng(3);
    std::vector<std::uint64_t> keys;
    for (int i = 0; i < 64; ++i)
        keys.push_back(rng.next());
    for (auto k : keys)
        bloom.insert(k);
    for (auto k : keys)
        EXPECT_TRUE(bloom.mayContain(k));
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, BloomGeometry,
    ::testing::Values(std::make_pair(256u, 1u),
                      std::make_pair(1024u, 2u),
                      std::make_pair(4096u, 2u),
                      std::make_pair(4096u, 4u),
                      std::make_pair(16384u, 3u)));

} // namespace
} // namespace athena

/**
 * @file
 * Core timing model tests: branch predictor learning, dispatch
 * width, ROB occupancy stalls, load-dependency serialization,
 * critical-consumer stalls, and MSHR-bounded MLP.
 */

#include <cstddef>
#include <cstdint>
#include <gtest/gtest.h>
#include <vector>

#include "common/rng.hh"
#include "cpu/core_model.hh"

namespace athena
{
namespace
{

/** Scripted workload: replays a fixed record sequence. */
class ScriptedWorkload : public WorkloadGenerator
{
  public:
    explicit ScriptedWorkload(std::vector<TraceRecord> records)
        : records(std::move(records))
    {}

    void reset() override { pos = 0; }

    TraceRecord
    next() override
    {
        TraceRecord r = records[pos % records.size()];
        ++pos;
        return r;
    }

  private:
    std::vector<TraceRecord> records;
    std::size_t pos = 0;
};

/** Memory with a fixed load latency and hit/miss script. */
class FixedLatencyMemory : public MemoryInterface
{
  public:
    explicit FixedLatencyMemory(Cycle latency, bool miss = false)
        : latency(latency), miss(miss)
    {}

    Cycle
    load(std::uint64_t, Addr, Cycle issue, bool &l1_miss) override
    {
        ++loads;
        l1_miss = miss;
        return issue + latency;
    }

    void store(std::uint64_t, Addr, Cycle) override { ++stores; }

    Cycle latency;
    bool miss;
    std::uint64_t loads = 0;
    std::uint64_t stores = 0;
};

TraceRecord
alu()
{
    TraceRecord r;
    r.kind = InstrKind::kAlu;
    r.pc = 0x1000;
    return r;
}

TraceRecord
load(Addr addr, bool dep = false, bool critical = false)
{
    TraceRecord r;
    r.kind = InstrKind::kLoad;
    r.pc = 0x2000;
    r.addr = addr;
    r.dependsOnPrevLoad = dep;
    r.criticalConsumer = critical;
    return r;
}

TraceRecord
branch(std::uint64_t pc, bool taken)
{
    TraceRecord r;
    r.kind = InstrKind::kBranch;
    r.pc = pc;
    r.taken = taken;
    return r;
}

TEST(BranchPredictor, LearnsBiasedBranch)
{
    BranchPredictor bp(10);
    for (int i = 0; i < 2000; ++i)
        bp.predictAndTrain(0x400, true);
    double rate = static_cast<double>(bp.statMispredicts) /
                  static_cast<double>(bp.statLookups);
    EXPECT_LT(rate, 0.02);
}

TEST(BranchPredictor, LearnsAlternatingPattern)
{
    BranchPredictor bp(12);
    for (int i = 0; i < 4000; ++i)
        bp.predictAndTrain(0x400, i % 2 == 0);
    // gshare captures period-2 patterns via history.
    double rate = static_cast<double>(bp.statMispredicts) /
                  static_cast<double>(bp.statLookups);
    EXPECT_LT(rate, 0.10);
}

TEST(BranchPredictor, ResetClearsStats)
{
    BranchPredictor bp(8);
    bp.predictAndTrain(1, true);
    bp.reset();
    EXPECT_EQ(bp.statLookups, 0u);
    EXPECT_EQ(bp.statMispredicts, 0u);
}

TEST(CoreModel, DispatchWidthBoundsIpc)
{
    ScriptedWorkload w({alu()});
    FixedLatencyMemory mem(1);
    CoreParams cfg;
    cfg.width = 6;
    CoreModel core(cfg, w, mem);
    for (int i = 0; i < 6000; ++i)
        core.step();
    EXPECT_LE(core.ipc(), 6.05);
    EXPECT_GT(core.ipc(), 5.0); // pure ALU should run near width
}

TEST(CoreModel, RobLimitsInFlightLatency)
{
    // Every load misses with a 400-cycle latency; with a 64-entry
    // ROB and loads every 4 instructions, only ~16 loads can be in
    // flight, so IPC is bounded by ROB/(latency) * spacing.
    ScriptedWorkload w({load(0x1000000), alu(), alu(), alu()});
    FixedLatencyMemory mem(400, true);
    CoreParams cfg;
    cfg.robSize = 64;
    cfg.l1Mshrs = 64;
    CoreModel core(cfg, w, mem);
    for (int i = 0; i < 40000; ++i)
        core.step();
    double ipc_rob = core.ipc();

    ScriptedWorkload w2({load(0x1000000), alu(), alu(), alu()});
    FixedLatencyMemory mem2(400, true);
    CoreParams cfg2;
    cfg2.robSize = 512;
    cfg2.l1Mshrs = 64;
    CoreModel core2(cfg2, w2, mem2);
    for (int i = 0; i < 40000; ++i)
        core2.step();
    EXPECT_GT(core2.ipc(), ipc_rob * 2.0)
        << "a larger ROB must expose more MLP";
}

TEST(CoreModel, DependentLoadsSerialize)
{
    ScriptedWorkload indep({load(0), alu()});
    FixedLatencyMemory mem(200, true);
    CoreModel core_indep(CoreParams{}, indep, mem);
    for (int i = 0; i < 20000; ++i)
        core_indep.step();

    ScriptedWorkload dep({load(0, true), alu()});
    FixedLatencyMemory mem2(200, true);
    CoreModel core_dep(CoreParams{}, dep, mem2);
    for (int i = 0; i < 20000; ++i)
        core_dep.step();

    EXPECT_GT(core_indep.ipc(), core_dep.ipc() * 5.0)
        << "pointer chasing must destroy MLP";
}

TEST(CoreModel, CriticalConsumerStallsDispatch)
{
    ScriptedWorkload normal({load(0), alu(), alu(), alu()});
    FixedLatencyMemory mem(300, true);
    CoreModel core_normal(CoreParams{}, normal, mem);
    for (int i = 0; i < 20000; ++i)
        core_normal.step();

    ScriptedWorkload crit({load(0, false, true), alu(), alu(),
                           alu()});
    FixedLatencyMemory mem2(300, true);
    CoreModel core_crit(CoreParams{}, crit, mem2);
    for (int i = 0; i < 20000; ++i)
        core_crit.step();

    EXPECT_GT(core_normal.ipc(), core_crit.ipc() * 3.0)
        << "critical consumers must expose load latency";
}

TEST(CoreModel, MshrLimitThrottlesMissParallelism)
{
    ScriptedWorkload w({load(0)});
    FixedLatencyMemory mem(400, true);
    CoreParams few;
    few.l1Mshrs = 2;
    CoreModel core_few(few, w, mem);
    for (int i = 0; i < 20000; ++i)
        core_few.step();

    ScriptedWorkload w2({load(0)});
    FixedLatencyMemory mem2(400, true);
    CoreParams many;
    many.l1Mshrs = 64;
    CoreModel core_many(many, w2, mem2);
    for (int i = 0; i < 20000; ++i)
        core_many.step();

    EXPECT_GT(core_many.ipc(), core_few.ipc() * 2.0);
}

TEST(CoreModel, MispredictsInjectBubbles)
{
    // Truly random branch outcomes (a finite scripted replay would
    // be *learnable* by gshare): ~50% mispredicts, each a 17-cycle
    // redirect.
    class RandomBranches : public WorkloadGenerator
    {
      public:
        void reset() override { rng = Rng(5); }
        TraceRecord
        next() override
        {
            return branch(0x600, rng.chance(0.5));
        }

      private:
        Rng rng{5};
    };
    RandomBranches w;
    FixedLatencyMemory mem(1);
    CoreModel core(CoreParams{}, w, mem);
    for (int i = 0; i < 30000; ++i)
        core.step();
    EXPECT_LT(core.ipc(), 0.5);
    EXPECT_GT(core.counters().branchMispredicts, 5000u);
}

TEST(CoreModel, CountersTrackKinds)
{
    ScriptedWorkload w({load(0), alu(), branch(0x600, true),
                        [] {
                            TraceRecord r;
                            r.kind = InstrKind::kStore;
                            r.pc = 0x3000;
                            r.addr = 64;
                            return r;
                        }()});
    FixedLatencyMemory mem(1);
    CoreModel core(CoreParams{}, w, mem);
    for (int i = 0; i < 400; ++i)
        core.step();
    EXPECT_EQ(core.counters().instructions, 400u);
    EXPECT_EQ(core.counters().loads, 100u);
    EXPECT_EQ(core.counters().stores, 100u);
    EXPECT_EQ(core.counters().branches, 100u);
    EXPECT_EQ(mem.loads, 100u);
    EXPECT_EQ(mem.stores, 100u);
}

TEST(CoreModel, ResetRestoresInitialState)
{
    ScriptedWorkload w({load(0), alu()});
    FixedLatencyMemory mem(10);
    CoreModel core(CoreParams{}, w, mem);
    for (int i = 0; i < 100; ++i)
        core.step();
    core.reset();
    EXPECT_EQ(core.retired(), 0u);
    EXPECT_EQ(core.now(), 0u);
}

} // namespace
} // namespace athena

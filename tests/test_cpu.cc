/**
 * @file
 * Core timing model tests: branch predictor learning, dispatch
 * width, ROB occupancy stalls, load-dependency serialization,
 * critical-consumer stalls, and MSHR-bounded MLP.
 */

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <gtest/gtest.h>
#include <vector>

#include "common/hashing.hh"
#include "common/rng.hh"
#include "common/sat_counter.hh"
#include "cpu/core_model.hh"

namespace athena
{
namespace
{

/** Scripted workload: replays a fixed record sequence. */
class ScriptedWorkload : public WorkloadGenerator
{
  public:
    explicit ScriptedWorkload(std::vector<TraceRecord> records)
        : records(std::move(records))
    {}

    void reset() override { pos = 0; }

    TraceRecord
    next() override
    {
        TraceRecord r = records[pos % records.size()];
        ++pos;
        return r;
    }

  private:
    std::vector<TraceRecord> records;
    std::size_t pos = 0;
};

/** Memory with a fixed load latency and hit/miss script. */
class FixedLatencyMemory : public MemoryInterface
{
  public:
    explicit FixedLatencyMemory(Cycle latency, bool miss = false)
        : latency(latency), miss(miss)
    {}

    Cycle
    load(std::uint64_t, Addr, Cycle issue, bool &l1_miss) override
    {
        ++loads;
        l1_miss = miss;
        return issue + latency;
    }

    void store(std::uint64_t, Addr, Cycle) override { ++stores; }

    Cycle latency;
    bool miss;
    std::uint64_t loads = 0;
    std::uint64_t stores = 0;
};

/**
 * Transcription of the pre-rewrite SatCounter<2> gshare, kept
 * independent of the production BranchPredictor so the oracle also
 * validates the byte-PHT rewrite (reset value, taken threshold,
 * saturation) instead of sharing it with the unit under test.
 */
class ReferenceGshare
{
  public:
    explicit ReferenceGshare(unsigned table_bits = 14)
        : tableBits(table_bits),
          table(1ull << table_bits, SatCounter<2>())
    {}

    bool
    predictAndTrain(std::uint64_t pc, bool taken)
    {
        std::uint64_t mask = (1ull << tableBits) - 1;
        std::uint64_t idx = (mix64(pc) ^ history) & mask;
        bool prediction = table[idx].taken();
        table[idx].update(taken);
        history = ((history << 1) | (taken ? 1 : 0)) & mask;
        return prediction == taken;
    }

  private:
    unsigned tableBits;
    std::uint64_t history = 0;
    std::vector<SatCounter<2>> table;
};

/**
 * Direct transcription of the pre-SoA pull-one-instruction-at-a-time
 * CoreModel::step() (ring-vector ROB, unsorted-vector MSHRs,
 * SatCounter gshare): the bit-equivalence oracle for the batched/SoA
 * stepping pipeline. Any divergence in a completion cycle, a
 * counter, or a memory-call sequence is a regression in the rewrite,
 * not a tolerance.
 */
class ReferenceCore
{
  public:
    ReferenceCore(const CoreParams &params, WorkloadGenerator &wl,
                  MemoryInterface &mem)
        : cfg(params), workload(wl), memory(mem)
    {
        rob.resize(cfg.robSize ? cfg.robSize : 1, 0);
    }

    Cycle
    step()
    {
        if (robCount >= cfg.robSize) {
            Cycle freed = retireHead();
            if (freed > dispatchCycle) {
                dispatchCycle = freed;
                dispatchSlots = 0;
            }
        }
        if (dispatchSlots >= cfg.width) {
            ++dispatchCycle;
            dispatchSlots = 0;
        }
        ++dispatchSlots;
        Cycle disp = dispatchCycle;

        TraceRecord rec = workload.next();
        ++instructions;

        Cycle completion = disp + cfg.aluLatency;
        switch (rec.kind) {
          case InstrKind::kAlu:
            break;
          case InstrKind::kBranch:
            {
                bool correct =
                    predictor.predictAndTrain(rec.pc, rec.taken);
                if (!correct) {
                    Cycle resume =
                        completion + cfg.mispredictPenalty;
                    if (resume > dispatchCycle) {
                        dispatchCycle = resume;
                        dispatchSlots = 0;
                    }
                }
                break;
            }
          case InstrKind::kStore:
            memory.store(rec.pc, rec.addr, disp);
            break;
          case InstrKind::kLoad:
            {
                Cycle issue = disp;
                if (rec.dependsOnPrevLoad)
                    issue = std::max(issue, prevLoadComplete);
                for (std::size_t k = 0; k < misses.size();) {
                    if (misses[k] <= issue) {
                        misses[k] = misses.back();
                        misses.pop_back();
                    } else {
                        ++k;
                    }
                }
                if (misses.size() >= cfg.l1Mshrs) {
                    std::size_t m = 0;
                    for (std::size_t k = 1; k < misses.size(); ++k) {
                        if (misses[k] < misses[m])
                            m = k;
                    }
                    issue = misses[m];
                    misses[m] = misses.back();
                    misses.pop_back();
                }
                bool l1_miss = false;
                completion =
                    memory.load(rec.pc, rec.addr, issue, l1_miss);
                if (l1_miss)
                    misses.push_back(completion);
                prevLoadComplete = completion;
                if (rec.criticalConsumer &&
                    completion > dispatchCycle) {
                    dispatchCycle = completion;
                    dispatchSlots = 0;
                }
                break;
            }
        }

        std::size_t tail = robHead + robCount;
        if (tail >= rob.size())
            tail -= rob.size();
        rob[tail] = completion;
        ++robCount;
        frontier = std::max(frontier, completion);
        return completion;
    }

    Cycle now() const { return frontier; }
    std::uint64_t retired() const { return instructions; }

  private:
    Cycle
    retireHead()
    {
        Cycle completion = rob[robHead];
        robHead = robHead + 1 == rob.size() ? 0 : robHead + 1;
        --robCount;
        Cycle t = std::max(completion, lastRetireCycle);
        if (t == lastRetireCycle) {
            if (retireSlots >= cfg.width) {
                ++t;
                retireSlots = 1;
            } else {
                ++retireSlots;
            }
        } else {
            retireSlots = 1;
        }
        lastRetireCycle = t;
        return t;
    }

    CoreParams cfg;
    WorkloadGenerator &workload;
    MemoryInterface &memory;
    ReferenceGshare predictor;
    std::vector<Cycle> rob;
    std::vector<Cycle> misses;
    unsigned robHead = 0;
    unsigned robCount = 0;
    Cycle dispatchCycle = 0;
    unsigned dispatchSlots = 0;
    Cycle lastRetireCycle = 0;
    unsigned retireSlots = 0;
    Cycle prevLoadComplete = 0;
    Cycle frontier = 0;
    std::uint64_t instructions = 0;
};

/**
 * Deterministic mixed-kind stream with random dependency/critical
 * flags; exercises every execute() path including MSHR pressure.
 * Uses the default nextBatch() shim, so batched consumers replay
 * the exact next() sequence.
 */
class RandomKindWorkload : public WorkloadGenerator
{
  public:
    explicit RandomKindWorkload(std::uint64_t seed)
        : seed(seed), rng(seed)
    {}

    void reset() override { rng = Rng(seed); }

    TraceRecord
    next() override
    {
        TraceRecord r;
        std::uint64_t roll = rng.next() % 100;
        if (roll < 35) {
            r.kind = InstrKind::kLoad;
            r.addr = (rng.next() % (1ull << 24)) * 8;
            r.dependsOnPrevLoad = rng.chance(0.2);
            r.criticalConsumer = rng.chance(0.3);
            r.pc = 0x2000 + (rng.next() % 8) * 0x10;
        } else if (roll < 45) {
            r.kind = InstrKind::kStore;
            r.addr = (rng.next() % (1ull << 24)) * 8;
            r.pc = 0x3000;
        } else if (roll < 60) {
            r.kind = InstrKind::kBranch;
            r.pc = 0x600 + 0x8 * (rng.next() % 16);
            r.taken = rng.chance(0.5);
        } else {
            r.kind = InstrKind::kAlu;
            r.pc = 0x1000;
        }
        return r;
    }

  private:
    std::uint64_t seed;
    Rng rng;
};

/**
 * Memory whose latency and miss flag are pure hashes of (pc, addr)
 * and that fingerprints every call (order, issue cycles, results),
 * so two identically driven cores can be compared exactly.
 */
class HashLatencyMemory : public MemoryInterface
{
  public:
    Cycle
    load(std::uint64_t pc, Addr addr, Cycle issue,
         bool &l1_miss) override
    {
        std::uint64_t h = mix64(addr ^ (pc << 1));
        l1_miss = (h & 3) != 0; // 75% L1 miss
        Cycle latency = l1_miss ? 50 + (h % 400) : 4;
        ++loads;
        signature = mix64(signature ^ (issue * 31 + addr));
        return issue + latency;
    }

    void
    store(std::uint64_t, Addr addr, Cycle cycle) override
    {
        ++stores;
        signature = mix64(signature ^ (cycle + addr));
    }

    std::uint64_t loads = 0;
    std::uint64_t stores = 0;
    std::uint64_t signature = 0;
};

TraceRecord
alu()
{
    TraceRecord r;
    r.kind = InstrKind::kAlu;
    r.pc = 0x1000;
    return r;
}

TraceRecord
load(Addr addr, bool dep = false, bool critical = false)
{
    TraceRecord r;
    r.kind = InstrKind::kLoad;
    r.pc = 0x2000;
    r.addr = addr;
    r.dependsOnPrevLoad = dep;
    r.criticalConsumer = critical;
    return r;
}

TraceRecord
branch(std::uint64_t pc, bool taken)
{
    TraceRecord r;
    r.kind = InstrKind::kBranch;
    r.pc = pc;
    r.taken = taken;
    return r;
}

TEST(BranchPredictor, LearnsBiasedBranch)
{
    BranchPredictor bp(10);
    for (int i = 0; i < 2000; ++i)
        bp.predictAndTrain(0x400, true);
    double rate = static_cast<double>(bp.statMispredicts) /
                  static_cast<double>(bp.statLookups);
    EXPECT_LT(rate, 0.02);
}

TEST(BranchPredictor, LearnsAlternatingPattern)
{
    BranchPredictor bp(12);
    for (int i = 0; i < 4000; ++i)
        bp.predictAndTrain(0x400, i % 2 == 0);
    // gshare captures period-2 patterns via history.
    double rate = static_cast<double>(bp.statMispredicts) /
                  static_cast<double>(bp.statLookups);
    EXPECT_LT(rate, 0.10);
}

TEST(BranchPredictor, ResetClearsStats)
{
    BranchPredictor bp(8);
    bp.predictAndTrain(1, true);
    bp.reset();
    EXPECT_EQ(bp.statLookups, 0u);
    EXPECT_EQ(bp.statMispredicts, 0u);
}

TEST(CoreModel, DispatchWidthBoundsIpc)
{
    ScriptedWorkload w({alu()});
    FixedLatencyMemory mem(1);
    CoreParams cfg;
    cfg.width = 6;
    CoreModel core(cfg, w, mem);
    for (int i = 0; i < 6000; ++i)
        core.step();
    EXPECT_LE(core.ipc(), 6.05);
    EXPECT_GT(core.ipc(), 5.0); // pure ALU should run near width
}

TEST(CoreModel, RobLimitsInFlightLatency)
{
    // Every load misses with a 400-cycle latency; with a 64-entry
    // ROB and loads every 4 instructions, only ~16 loads can be in
    // flight, so IPC is bounded by ROB/(latency) * spacing.
    ScriptedWorkload w({load(0x1000000), alu(), alu(), alu()});
    FixedLatencyMemory mem(400, true);
    CoreParams cfg;
    cfg.robSize = 64;
    cfg.l1Mshrs = 64;
    CoreModel core(cfg, w, mem);
    for (int i = 0; i < 40000; ++i)
        core.step();
    double ipc_rob = core.ipc();

    ScriptedWorkload w2({load(0x1000000), alu(), alu(), alu()});
    FixedLatencyMemory mem2(400, true);
    CoreParams cfg2;
    cfg2.robSize = 512;
    cfg2.l1Mshrs = 64;
    CoreModel core2(cfg2, w2, mem2);
    for (int i = 0; i < 40000; ++i)
        core2.step();
    EXPECT_GT(core2.ipc(), ipc_rob * 2.0)
        << "a larger ROB must expose more MLP";
}

TEST(CoreModel, DependentLoadsSerialize)
{
    ScriptedWorkload indep({load(0), alu()});
    FixedLatencyMemory mem(200, true);
    CoreModel core_indep(CoreParams{}, indep, mem);
    for (int i = 0; i < 20000; ++i)
        core_indep.step();

    ScriptedWorkload dep({load(0, true), alu()});
    FixedLatencyMemory mem2(200, true);
    CoreModel core_dep(CoreParams{}, dep, mem2);
    for (int i = 0; i < 20000; ++i)
        core_dep.step();

    EXPECT_GT(core_indep.ipc(), core_dep.ipc() * 5.0)
        << "pointer chasing must destroy MLP";
}

TEST(CoreModel, CriticalConsumerStallsDispatch)
{
    ScriptedWorkload normal({load(0), alu(), alu(), alu()});
    FixedLatencyMemory mem(300, true);
    CoreModel core_normal(CoreParams{}, normal, mem);
    for (int i = 0; i < 20000; ++i)
        core_normal.step();

    ScriptedWorkload crit({load(0, false, true), alu(), alu(),
                           alu()});
    FixedLatencyMemory mem2(300, true);
    CoreModel core_crit(CoreParams{}, crit, mem2);
    for (int i = 0; i < 20000; ++i)
        core_crit.step();

    EXPECT_GT(core_normal.ipc(), core_crit.ipc() * 3.0)
        << "critical consumers must expose load latency";
}

TEST(CoreModel, MshrLimitThrottlesMissParallelism)
{
    ScriptedWorkload w({load(0)});
    FixedLatencyMemory mem(400, true);
    CoreParams few;
    few.l1Mshrs = 2;
    CoreModel core_few(few, w, mem);
    for (int i = 0; i < 20000; ++i)
        core_few.step();

    ScriptedWorkload w2({load(0)});
    FixedLatencyMemory mem2(400, true);
    CoreParams many;
    many.l1Mshrs = 64;
    CoreModel core_many(many, w2, mem2);
    for (int i = 0; i < 20000; ++i)
        core_many.step();

    EXPECT_GT(core_many.ipc(), core_few.ipc() * 2.0);
}

TEST(CoreModel, MispredictsInjectBubbles)
{
    // Truly random branch outcomes (a finite scripted replay would
    // be *learnable* by gshare): ~50% mispredicts, each a 17-cycle
    // redirect.
    class RandomBranches : public WorkloadGenerator
    {
      public:
        void reset() override { rng = Rng(5); }
        TraceRecord
        next() override
        {
            return branch(0x600, rng.chance(0.5));
        }

      private:
        Rng rng{5};
    };
    RandomBranches w;
    FixedLatencyMemory mem(1);
    CoreModel core(CoreParams{}, w, mem);
    for (int i = 0; i < 30000; ++i)
        core.step();
    EXPECT_LT(core.ipc(), 0.5);
    EXPECT_GT(core.counters().branchMispredicts, 5000u);
}

TEST(CoreModel, CountersTrackKinds)
{
    ScriptedWorkload w({load(0), alu(), branch(0x600, true),
                        [] {
                            TraceRecord r;
                            r.kind = InstrKind::kStore;
                            r.pc = 0x3000;
                            r.addr = 64;
                            return r;
                        }()});
    FixedLatencyMemory mem(1);
    CoreModel core(CoreParams{}, w, mem);
    for (int i = 0; i < 400; ++i)
        core.step();
    EXPECT_EQ(core.counters().instructions, 400u);
    EXPECT_EQ(core.counters().loads, 100u);
    EXPECT_EQ(core.counters().stores, 100u);
    EXPECT_EQ(core.counters().branches, 100u);
    EXPECT_EQ(mem.loads, 100u);
    EXPECT_EQ(mem.stores, 100u);
}

TEST(CoreModel, BitEquivalentToReferenceOracle)
{
    // The SoA/batched pipeline against the pre-refactor oracle,
    // across configs that hit the interesting boundaries: tiny
    // window + single MSHR, window an exact multiple of the width,
    // non-multiple window, and the Table 5 default.
    struct Cfg
    {
        unsigned rob, width, mshrs;
    };
    const Cfg cfgs[] = {
        {8, 2, 1}, {12, 6, 2}, {13, 6, 2}, {64, 4, 64}, {512, 6, 16}};
    for (const Cfg &c : cfgs) {
        CoreParams params;
        params.robSize = c.rob;
        params.width = c.width;
        params.l1Mshrs = c.mshrs;

        RandomKindWorkload w1(99), w2(99);
        HashLatencyMemory m1, m2;
        CoreModel core(params, w1, m1);
        ReferenceCore ref(params, w2, m2);
        for (int i = 0; i < 30000; ++i) {
            Cycle a = core.step();
            Cycle b = ref.step();
            ASSERT_EQ(a, b) << "rob=" << c.rob << " width="
                            << c.width << " mshrs=" << c.mshrs
                            << " step " << i;
        }
        EXPECT_EQ(core.now(), ref.now());
        EXPECT_EQ(m1.signature, m2.signature)
            << "memory call sequence diverged";
        EXPECT_EQ(m1.loads, m2.loads);
        EXPECT_EQ(m1.stores, m2.stores);
    }
}

TEST(CoreModel, StepNMatchesStepExactly)
{
    // stepN's span loop and step()'s one-at-a-time path must be the
    // same machine; drive two cores through irregular chunk sizes.
    CoreParams params;
    params.robSize = 48;
    params.l1Mshrs = 4;
    RandomKindWorkload w1(7), w2(7);
    HashLatencyMemory m1, m2;
    CoreModel a(params, w1, m1);
    CoreModel b(params, w2, m2);

    std::uint64_t total = 20000;
    for (std::uint64_t i = 0; i < total; ++i)
        a.step();
    std::uint64_t chunks[] = {1, 7, 300, 256, 3, 9000, 64};
    std::uint64_t done = 0;
    for (std::uint64_t c : chunks) {
        b.stepN(c);
        done += c;
    }
    b.stepN(total - done);

    EXPECT_EQ(a.now(), b.now());
    EXPECT_EQ(a.retired(), b.retired());
    EXPECT_EQ(a.counters().loads, b.counters().loads);
    EXPECT_EQ(a.counters().branchMispredicts,
              b.counters().branchMispredicts);
    EXPECT_EQ(m1.signature, m2.signature);
}

TEST(CoreModel, MshrExactlyFullStallSchedule)
{
    // All-miss loads with 2 MSHRs and a 100-cycle latency: loads
    // 2k and 2k+1 complete at 100 * (k + 1) — the (2k)-th load
    // finds the MSHRs exactly full and must inherit the earliest
    // outstanding completion as its issue cycle.
    ScriptedWorkload w({load(0x1000000)});
    FixedLatencyMemory mem(100, true);
    CoreParams cfg;
    cfg.l1Mshrs = 2;
    CoreModel core(cfg, w, mem);
    for (int i = 0; i < 60; ++i) {
        Cycle completion = core.step();
        EXPECT_EQ(completion,
                  100u * (static_cast<Cycle>(i) / 2 + 1))
            << "load " << i;
    }
}

TEST(CoreModel, RetireWidthBurstAtWindowBoundary)
{
    // ALU-only with the window full from step robSize onward: every
    // step retires exactly one head under the commit-width
    // constraint, so occupancy pins at robSize and IPC converges to
    // the width.
    ScriptedWorkload w({alu()});
    FixedLatencyMemory mem(1);
    CoreParams cfg;
    cfg.robSize = 12;
    cfg.width = 2;
    CoreModel core(cfg, w, mem);
    for (int i = 0; i < 6000; ++i) {
        core.step();
        ASSERT_LE(core.robOccupancy(), cfg.robSize);
    }
    EXPECT_EQ(core.robOccupancy(), cfg.robSize);
    EXPECT_NEAR(core.ipc(), 2.0, 0.05);
}

TEST(CoreModel, RobOccupancyNeverExceedsWindow)
{
    // Property sweep: at most one head retires per dispatched
    // instruction when the window is full, so occupancy can never
    // exceed robSize — across widths that divide the window evenly
    // and ones that do not, under miss-heavy random traffic, for
    // both stepping APIs.
    struct Cfg
    {
        unsigned rob, width, mshrs;
    };
    const Cfg cfgs[] = {{6, 6, 2}, {8, 3, 1}, {32, 5, 4},
                        {48, 6, 16}};
    for (const Cfg &c : cfgs) {
        CoreParams params;
        params.robSize = c.rob;
        params.width = c.width;
        params.l1Mshrs = c.mshrs;

        RandomKindWorkload w(c.rob * 31 + c.width);
        HashLatencyMemory mem;
        CoreModel core(params, w, mem);
        for (int i = 0; i < 8000; ++i) {
            core.step();
            ASSERT_LE(core.robOccupancy(), c.rob)
                << "rob=" << c.rob << " width=" << c.width
                << " step " << i;
        }

        RandomKindWorkload wb(c.rob * 31 + c.width);
        HashLatencyMemory memb;
        CoreModel burst(params, wb, memb);
        for (int i = 0; i < 100; ++i) {
            burst.stepN(80);
            ASSERT_LE(burst.robOccupancy(), c.rob);
        }
        EXPECT_EQ(core.now(), burst.now());
    }
}

TEST(CoreModel, ResetRestoresInitialState)
{
    ScriptedWorkload w({load(0), alu()});
    FixedLatencyMemory mem(10);
    CoreModel core(CoreParams{}, w, mem);
    for (int i = 0; i < 100; ++i)
        core.step();
    core.reset();
    EXPECT_EQ(core.retired(), 0u);
    EXPECT_EQ(core.now(), 0u);
}

} // namespace
} // namespace athena

/**
 * @file
 * Tests for finite-stream stepping and trace replay: the
 * TraceReplayWorkload end-of-stream contract, CoreModel's terminal
 * retired-all state, and golden-style determinism of replaying the
 * checked-in sample traces through single-core and 4-core
 * Simulator::run — exact completed-instruction counts, bit-identical
 * counters across repeated runs, and deterministic retirement when
 * cores exhaust at different times (including simultaneous ties).
 */

#include <cstdint>
#include <cstdlib>
#include <gtest/gtest.h>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "cpu/core_model.hh"
#include "sim/runner.hh"
#include "sim/simulator.hh"
#include "sim/system_config.hh"
#include "trace/trace_file.hh"
#include "trace/workload.hh"
#include "trace/zoo.hh"

namespace athena
{
namespace
{

std::string
dataPath(const std::string &name)
{
    return std::string(ATHENA_TEST_DATA_DIR) + "/" + name;
}

std::string
textSample()
{
    return dataPath("sample_loop.txt");
}

std::string
binarySample()
{
    return dataPath("sample_mix.bin");
}

// ------------------------------------------------- replay workload

TEST(TraceReplay, EmitsFileRecordsThenExhausts)
{
    auto file = std::make_shared<const TraceFile>(textSample());
    const std::size_t len = file->size();
    TraceReplayWorkload replay(file, 2);

    // Two full passes via ragged batch sizes.
    std::vector<TraceRecord> got;
    std::vector<TraceRecord> buf(600);
    const std::size_t sizes[] = {1, 7, 256, 99, 600, 3};
    std::size_t si = 0;
    for (;;) {
        std::size_t n = sizes[si++ % 6];
        std::size_t filled = replay.nextBatch(buf.data(), n);
        got.insert(got.end(), buf.begin(),
                   buf.begin() + static_cast<std::ptrdiff_t>(filled));
        if (filled < n)
            break;
    }
    ASSERT_EQ(got.size(), 2 * len);
    for (std::size_t i = 0; i < got.size(); ++i) {
        TraceRecord want = file->at(i % len);
        EXPECT_EQ(got[i].pc, want.pc) << "record " << i;
        EXPECT_EQ(got[i].addr, want.addr) << "record " << i;
        EXPECT_EQ(static_cast<int>(got[i].kind),
                  static_cast<int>(want.kind))
            << "record " << i;
    }
    // Exhausted: every further call returns 0; next() throws.
    EXPECT_EQ(replay.nextBatch(buf.data(), 10), 0u);
    EXPECT_EQ(replay.nextBatch(buf.data(), 0), 0u);
    EXPECT_THROW(replay.next(), std::runtime_error);
    // reset() rewinds to a fresh first pass.
    replay.reset();
    EXPECT_EQ(replay.nextBatch(buf.data(), 5), 5u);
    EXPECT_EQ(buf[0].pc, file->at(0).pc);
}

TEST(TraceReplay, LoopZeroIsInfinite)
{
    TraceReplayWorkload replay(binarySample(), 0);
    const std::size_t len = replay.trace().size();
    std::vector<TraceRecord> buf(len * 3 + 17);
    // Far more than one pass, never short.
    EXPECT_EQ(replay.nextBatch(buf.data(), buf.size()), buf.size());
    EXPECT_EQ(replay.nextBatch(buf.data(), 100), 100u);
    // next() keeps streaming across the wrap too.
    for (int i = 0; i < 2000; ++i)
        (void)replay.next();
}

TEST(TraceReplay, MakeWorkloadDispatchesOnTracePath)
{
    WorkloadSpec spec =
        traceWorkloadSpec("replay", textSample(), 1, Suite::kCvp);
    auto gen = makeWorkload(spec);
    auto *replay = dynamic_cast<TraceReplayWorkload *>(gen.get());
    ASSERT_NE(replay, nullptr);
    EXPECT_EQ(replay->totalRecords(), replay->trace().size());
    EXPECT_EQ(spec.suite, Suite::kCvp);

    // Synthetic specs still produce synthetic generators.
    auto synth = makeWorkload(evalWorkloads().front());
    EXPECT_EQ(dynamic_cast<TraceReplayWorkload *>(synth.get()),
              nullptr);
}

TEST(TraceReplay, PathOpensShareOneTraceFile)
{
    // Fleet runs replay one trace through many Simulators; path
    // opens must share a single parsed/mmapped instance instead of
    // re-reading the file per workload.
    TraceReplayWorkload a(textSample()), b(textSample());
    EXPECT_EQ(&a.trace(), &b.trace());
    auto shared = openTraceShared(textSample());
    EXPECT_EQ(shared.get(), &a.trace());
    // Different paths stay distinct.
    TraceReplayWorkload c(binarySample());
    EXPECT_NE(&a.trace(), &c.trace());
}

// ------------------------------------------------ core model state

/** Fixed-latency memory stub. */
class FlatMemory : public MemoryInterface
{
  public:
    Cycle
    load(std::uint64_t, Addr, Cycle issue, bool &l1_miss) override
    {
        l1_miss = false;
        ++loads;
        return issue + 4;
    }

    void store(std::uint64_t, Addr, Cycle) override { ++stores; }

    std::uint64_t loads = 0;
    std::uint64_t stores = 0;
};

TEST(CoreModelFinite, StepNStopsAtExhaustionAndReportsCount)
{
    TraceReplayWorkload replay(textSample(), 3);
    const std::uint64_t total = replay.totalRecords();
    FlatMemory mem;
    CoreModel core(CoreParams{}, replay, mem);

    EXPECT_FALSE(core.finished());
    EXPECT_EQ(core.stepN(1000000), total);
    EXPECT_TRUE(core.finished());
    EXPECT_EQ(core.retired(), total);
    Cycle end = core.now();
    std::uint64_t loads = mem.loads;

    // Terminal state: both stepping APIs are no-ops now.
    EXPECT_EQ(core.stepN(100), 0u);
    EXPECT_EQ(core.step(), end);
    EXPECT_EQ(core.retired(), total);
    EXPECT_EQ(core.now(), end);
    EXPECT_EQ(mem.loads, loads);

    // reset() rewinds the stream along with the core.
    core.reset();
    EXPECT_FALSE(core.finished());
    EXPECT_EQ(core.stepN(10), 10u);
}

TEST(CoreModelFinite, StepMatchesStepNOnFiniteStream)
{
    TraceReplayWorkload w1(binarySample(), 2), w2(binarySample(), 2);
    FlatMemory m1, m2;
    CoreModel a(CoreParams{}, w1, m1);
    CoreModel b(CoreParams{}, w2, m2);

    std::uint64_t a_steps = 0;
    while (!a.finished()) {
        a.step();
        ++a_steps;
        ASSERT_LE(a_steps, w1.totalRecords() + 1) << "runaway";
    }
    // The final step() is the no-op that discovers exhaustion when
    // the stream length is a batch multiple; retired() is exact
    // either way.
    EXPECT_EQ(a.retired(), w1.totalRecords());

    EXPECT_EQ(b.stepN(w2.totalRecords() + 500), w2.totalRecords());
    EXPECT_EQ(a.now(), b.now());
    EXPECT_EQ(a.counters().loads, b.counters().loads);
    EXPECT_EQ(a.counters().branchMispredicts,
              b.counters().branchMispredicts);
    EXPECT_EQ(m1.loads, m2.loads);
    EXPECT_EQ(m1.stores, m2.stores);
}

// ------------------------------------------- simulator golden runs

void
expectSameResult(const SimResult &a, const SimResult &b)
{
    ASSERT_EQ(a.cores.size(), b.cores.size());
    for (std::size_t c = 0; c < a.cores.size(); ++c) {
        const auto &x = a.cores[c];
        const auto &y = b.cores[c];
        EXPECT_EQ(x.completedInstructions, y.completedInstructions)
            << "core " << c;
        EXPECT_EQ(x.streamExhausted, y.streamExhausted) << c;
        EXPECT_EQ(x.instructions, y.instructions) << c;
        EXPECT_EQ(x.cycles, y.cycles) << c;
        EXPECT_EQ(x.loads, y.loads) << c;
        EXPECT_EQ(x.stores, y.stores) << c;
        EXPECT_EQ(x.branchMispredicts, y.branchMispredicts) << c;
        EXPECT_EQ(x.llcMisses, y.llcMisses) << c;
        EXPECT_EQ(x.llcMissLatency, y.llcMissLatency) << c;
        EXPECT_EQ(x.ipc, y.ipc) << c;
    }
    EXPECT_EQ(a.dram.demandRequests, b.dram.demandRequests);
    EXPECT_EQ(a.dram.prefetchRequests, b.dram.prefetchRequests);
    EXPECT_EQ(a.dram.ocpRequests, b.dram.ocpRequests);
    EXPECT_EQ(a.dram.rowHits, b.dram.rowHits);
    EXPECT_EQ(a.dram.busBusyCycles, b.dram.busBusyCycles);
}

TEST(TraceReplaySim, SingleCoreTerminatesWithExactCounts)
{
    WorkloadSpec spec =
        traceWorkloadSpec("sample_loop.x2", textSample(), 2);
    SystemConfig cfg =
        makeDesignConfig(CacheDesign::kCd1, PolicyKind::kNaive);

    auto run_once = [&] {
        Simulator sim(cfg, {spec});
        // Budget far beyond the trace: termination must come from
        // the exhausted-stream contract, not the budget.
        return sim.run({1000000, 100});
    };
    SimResult a = run_once();
    ASSERT_EQ(a.cores.size(), 1u);
    EXPECT_TRUE(a.cores[0].streamExhausted);
    EXPECT_EQ(a.cores[0].completedInstructions, 800u);
    // Measured window = everything after the warmup snapshot.
    EXPECT_EQ(a.cores[0].instructions, 800u - 100u);
    EXPECT_GT(a.cores[0].cycles, 0u);

    SimResult b = run_once();
    expectSameResult(a, b);
}

TEST(TraceReplaySim, SingleCoreExhaustsBeforeWarmup)
{
    // Warmup larger than the stream: the run still terminates and
    // reports the whole stream as the measured window.
    WorkloadSpec spec =
        traceWorkloadSpec("sample_loop.x1", textSample(), 1);
    SystemConfig cfg =
        makeDesignConfig(CacheDesign::kCd1, PolicyKind::kNaive);
    Simulator sim(cfg, {spec});
    SimResult res = sim.run({1000, 5000});
    EXPECT_TRUE(res.cores[0].streamExhausted);
    EXPECT_EQ(res.cores[0].completedInstructions, 400u);
    EXPECT_EQ(res.cores[0].instructions, 400u);
}

TEST(TraceReplaySim, FourCoreStaggeredExhaustionIsDeterministic)
{
    // Cores exhaust at different times (400, 1200, 512, 512): the
    // two loops=1 binary replays tie exactly — simultaneous
    // exhaustion must resolve deterministically too.
    std::vector<WorkloadSpec> specs = {
        traceWorkloadSpec("t.a", textSample(), 1),
        traceWorkloadSpec("t.b", textSample(), 3),
        traceWorkloadSpec("t.c", binarySample(), 1),
        traceWorkloadSpec("t.d", binarySample(), 1),
    };
    SystemConfig cfg =
        makeDesignConfig(CacheDesign::kCd1, PolicyKind::kNaive);
    cfg.cores = 4;

    auto run_once = [&] {
        Simulator sim(cfg, specs);
        return sim.run({1000000, 0});
    };
    SimResult a = run_once();
    ASSERT_EQ(a.cores.size(), 4u);
    EXPECT_EQ(a.cores[0].completedInstructions, 400u);
    EXPECT_EQ(a.cores[1].completedInstructions, 1200u);
    EXPECT_EQ(a.cores[2].completedInstructions, 512u);
    EXPECT_EQ(a.cores[3].completedInstructions, 512u);
    for (const auto &core : a.cores)
        EXPECT_TRUE(core.streamExhausted);

    SimResult b = run_once();
    expectSameResult(a, b);
}

TEST(TraceReplaySim, FiniteAndInfiniteCoresMix)
{
    // One finite replay next to an infinite synthetic stream: the
    // replay core retires from the pick set early, the synthetic
    // core still runs to its full budget.
    std::vector<WorkloadSpec> specs = {
        traceWorkloadSpec("t.fin", binarySample(), 1),
        evalWorkloads().front(),
    };
    SystemConfig cfg =
        makeDesignConfig(CacheDesign::kCd1, PolicyKind::kNaive);
    cfg.cores = 2;
    Simulator sim(cfg, specs);
    SimResult res = sim.run({2000, 0});
    EXPECT_TRUE(res.cores[0].streamExhausted);
    EXPECT_EQ(res.cores[0].completedInstructions, 512u);
    EXPECT_FALSE(res.cores[1].streamExhausted);
    EXPECT_EQ(res.cores[1].completedInstructions, 2000u);
}

TEST(TraceReplaySim, LoopedReplayFeedsFixedInstructionRuns)
{
    // loops = 0 turns the capture into an infinite stream: the run
    // terminates on the instruction budget like any synthetic
    // workload, and twice the budget means twice the instructions.
    WorkloadSpec spec =
        traceWorkloadSpec("sample.loop", binarySample(), 0);
    SystemConfig cfg =
        makeDesignConfig(CacheDesign::kCd1, PolicyKind::kNaive);
    Simulator sim(cfg, {spec});
    SimResult res = sim.run({20000, 1000});
    EXPECT_FALSE(res.cores[0].streamExhausted);
    EXPECT_EQ(res.cores[0].completedInstructions, 21000u);
    EXPECT_EQ(res.cores[0].instructions, 20000u);
}

TEST(TraceReplaySim, RunnerFleetAcceptsTraceSpecs)
{
    // Trace specs flow through the same ExperimentRunner machinery
    // as the zoo (baseline caching, parallel fleet, speedup rows).
    setenv("ATHENA_SIM_INSTR", "20000", 1);
    setenv("ATHENA_WARMUP_INSTR", "2000", 1);
    ExperimentRunner runner;
    unsetenv("ATHENA_SIM_INSTR");
    unsetenv("ATHENA_WARMUP_INSTR");

    std::vector<WorkloadSpec> specs = {
        traceWorkloadSpec("trace.loop", binarySample(), 0,
                          Suite::kSpec06),
        traceWorkloadSpec("trace.finite", textSample(), 2,
                          Suite::kCvp),
    };
    SystemConfig cfg =
        makeDesignConfig(CacheDesign::kCd1, PolicyKind::kNaive);
    auto rows = runner.speedups(cfg, specs);
    ASSERT_EQ(rows.size(), 2u);
    for (const auto &row : rows) {
        EXPECT_GT(row.baselineIpc, 0.0) << row.workload;
        EXPECT_GT(row.speedup, 0.0) << row.workload;
        EXPECT_FALSE(row.result.cores.empty());
    }
    EXPECT_TRUE(rows[1].result.cores[0].streamExhausted);
    EXPECT_EQ(rows[1].result.cores[0].completedInstructions, 800u);
}

} // namespace
} // namespace athena

/**
 * @file
 * Simulator integration tests at small scale: policy knobs actually
 * gate traffic, prefetching/off-chip prediction move performance in
 * the right direction on the right patterns, determinism, and
 * multi-core bandwidth contention.
 */

#include <cstdint>
#include <gtest/gtest.h>
#include <vector>

#include "sim/simulator.hh"
#include "trace/zoo.hh"

namespace athena
{
namespace
{

constexpr std::uint64_t kInstr = 60000;
constexpr std::uint64_t kWarmup = 15000;

WorkloadSpec
streamSpec()
{
    WorkloadSpec spec;
    spec.name = "stream";
    spec.seed = 11;
    PhaseParams p;
    p.pattern = Pattern::kStream;
    p.instructions = 1u << 20;
    p.footprintBytes = 256ull << 20;
    p.hotFrac = 0.6;
    p.criticalFrac = 0.3;
    p.loadFrac = 0.33;
    spec.phases = {p};
    return spec;
}

WorkloadSpec
chaseSpec()
{
    WorkloadSpec spec;
    spec.name = "chase";
    spec.seed = 13;
    PhaseParams p;
    p.pattern = Pattern::kChase;
    p.instructions = 1u << 20;
    p.footprintBytes = 256ull << 20;
    p.hotFrac = 0.6;
    p.criticalFrac = 0.1;
    p.loadFrac = 0.25;
    spec.phases = {p};
    return spec;
}

SimResult
run(SystemConfig cfg, const WorkloadSpec &spec)
{
    Simulator sim(cfg, {spec});
    return sim.run({kInstr, kWarmup});
}

TEST(Simulator, AllOffIssuesNoSpeculativeTraffic)
{
    SystemConfig cfg =
        makeDesignConfig(CacheDesign::kCd1, PolicyKind::kAllOff);
    SimResult res = run(cfg, streamSpec());
    EXPECT_EQ(res.dram.prefetchRequests, 0u);
    EXPECT_EQ(res.dram.ocpRequests, 0u);
    EXPECT_EQ(res.cores[0].pf[0].issued, 0u);
    EXPECT_EQ(res.cores[0].ocpPredictions, 0u);
    EXPECT_GT(res.cores[0].llcMisses, 100u);
}

TEST(Simulator, PrefetchingSpeedsUpStreams)
{
    SystemConfig base =
        makeDesignConfig(CacheDesign::kCd1, PolicyKind::kAllOff);
    SystemConfig pf =
        makeDesignConfig(CacheDesign::kCd1, PolicyKind::kPfOnly);
    double ipc_base = run(base, streamSpec()).ipc();
    SimResult res_pf = run(pf, streamSpec());
    EXPECT_GT(res_pf.ipc(), ipc_base * 1.15);
    EXPECT_GT(res_pf.cores[0].pf[0].accuracy(), 0.8);
}

TEST(Simulator, OcpSpeedsUpPointerChase)
{
    SystemConfig base =
        makeDesignConfig(CacheDesign::kCd1, PolicyKind::kAllOff);
    SystemConfig ocp =
        makeDesignConfig(CacheDesign::kCd1, PolicyKind::kOcpOnly);
    double ipc_base = run(base, chaseSpec()).ipc();
    SimResult res = run(ocp, chaseSpec());
    EXPECT_GT(res.ipc(), ipc_base * 1.03);
    EXPECT_GT(res.cores[0].ocpAccuracy(), 0.8);
}

TEST(Simulator, DeterministicAcrossRuns)
{
    SystemConfig cfg =
        makeDesignConfig(CacheDesign::kCd1, PolicyKind::kAthena);
    SimResult a = run(cfg, streamSpec());
    SimResult b = run(cfg, streamSpec());
    EXPECT_EQ(a.cores[0].cycles, b.cores[0].cycles);
    EXPECT_EQ(a.cores[0].llcMisses, b.cores[0].llcMisses);
    EXPECT_EQ(a.dram.totalRequests(), b.dram.totalRequests());
}

TEST(Simulator, OcpLatencyMattersForChase)
{
    SystemConfig fast =
        makeDesignConfig(CacheDesign::kCd1, PolicyKind::kOcpOnly);
    fast.ocpIssueLatency = 6;
    SystemConfig slow = fast;
    slow.ocpIssueLatency = 60;
    double ipc_fast = run(fast, chaseSpec()).ipc();
    double ipc_slow = run(slow, chaseSpec()).ipc();
    EXPECT_GT(ipc_fast, ipc_slow);
}

TEST(Simulator, BandwidthScalesPerformance)
{
    SystemConfig narrow =
        makeDesignConfig(CacheDesign::kCd1, PolicyKind::kNaive);
    narrow.bandwidthGBps = 1.6;
    SystemConfig wide = narrow;
    wide.bandwidthGBps = 12.8;
    double ipc_narrow = run(narrow, streamSpec()).ipc();
    double ipc_wide = run(wide, streamSpec()).ipc();
    EXPECT_GT(ipc_wide, ipc_narrow * 1.3);
}

TEST(Simulator, Cd4HasTwoPrefetcherSlots)
{
    SystemConfig cfg =
        makeDesignConfig(CacheDesign::kCd4, PolicyKind::kNaive);
    EXPECT_EQ(cfg.numPrefetchers(), 2u);
    SimResult res = run(cfg, streamSpec());
    EXPECT_GT(res.cores[0].pf[0].issued, 0u) << "L1D slot idle";
    EXPECT_GT(res.cores[0].pf[1].issued, 0u) << "L2C slot idle";
}

TEST(Simulator, TlpFiltersL1dPrefetchesOnChase)
{
    // Use an unconditional next-line L1D prefetcher so there is
    // prefetch traffic for TLP to filter (IPCP correctly finds no
    // pattern in a chase and stays quiet).
    SystemConfig naive =
        makeDesignConfig(CacheDesign::kCd2, PolicyKind::kNaive);
    naive.l1dPf = PrefetcherKind::kNextLine;
    SystemConfig tlp = naive;
    tlp.policy = PolicyKind::kTlp;
    // A pure chase (no hot set) makes every demand load off-chip,
    // so TLP's perceptron unambiguously learns to predict off-chip
    // for these PCs and filters their L1D prefetches.
    WorkloadSpec spec = chaseSpec();
    spec.phases[0].hotFrac = 0.0;
    SimResult res_naive = run(naive, spec);
    SimResult res_tlp = run(tlp, spec);
    // On a chase, TLP's perceptron predicts off-chip and drops L1D
    // prefetches, so fewer prefetches reach DRAM.
    EXPECT_LT(res_tlp.dram.prefetchRequests,
              res_naive.dram.prefetchRequests);
}

TEST(Simulator, MulticoreContendsForBandwidth)
{
    SystemConfig solo =
        makeDesignConfig(CacheDesign::kCd1, PolicyKind::kAllOff);
    double ipc_solo = run(solo, streamSpec()).ipc();

    SystemConfig quad = solo;
    quad.cores = 4;
    std::vector<WorkloadSpec> specs(4, streamSpec());
    Simulator sim(quad, specs);
    SimResult res = sim.run({kInstr / 2, kWarmup / 2});
    ASSERT_EQ(res.cores.size(), 4u);
    for (const auto &core : res.cores) {
        EXPECT_LT(core.ipc, ipc_solo * 1.02)
            << "sharing one channel cannot be faster than solo";
    }
    EXPECT_GT(res.busUtilization, 0.4);
}

TEST(Simulator, WorkloadCountMustMatchCores)
{
    SystemConfig cfg =
        makeDesignConfig(CacheDesign::kCd1, PolicyKind::kNaive);
    cfg.cores = 2;
    std::vector<WorkloadSpec> one = {streamSpec()};
    EXPECT_THROW(Simulator(cfg, one), std::invalid_argument);
}

TEST(Simulator, AthenaHistogramExported)
{
    SystemConfig cfg =
        makeDesignConfig(CacheDesign::kCd1, PolicyKind::kAthena);
    SimResult res = run(cfg, streamSpec());
    std::uint64_t total = 0;
    for (auto v : res.cores[0].actionHistogram)
        total += v;
    EXPECT_GT(total, 5u) << "epochs should have elapsed";
}

TEST(Simulator, PollutionMeasuredOnAdversePrefetching)
{
    // Force an always-on dumb next-line prefetcher on a chase: its
    // fills evict useful lines, and the pollution tracker must see
    // some of the resulting demand misses.
    SystemConfig cfg =
        makeDesignConfig(CacheDesign::kCd1, PolicyKind::kNaive);
    cfg.l2cPf = PrefetcherKind::kNextLine;
    SimResult res = run(cfg, chaseSpec());
    EXPECT_GT(res.dram.prefetchRequests, 1000u);
}

} // namespace
} // namespace athena

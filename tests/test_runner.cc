/**
 * @file
 * ExperimentRunner tests: baseline caching, category reduction,
 * adverse-set classification, parallel determinism, and the
 * multi-core mix speedup metric.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdlib>

#include "sim/runner.hh"

namespace athena
{
namespace
{

class RunnerTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        // Keep runner-level tests fast regardless of the ambient
        // environment.
        setenv("ATHENA_SIM_INSTR", "40000", 1);
        setenv("ATHENA_WARMUP_INSTR", "10000", 1);
        setenv("ATHENA_MC_INSTR", "20000", 1);
        setenv("ATHENA_MC_WARMUP", "5000", 1);
    }

    void
    TearDown() override
    {
        unsetenv("ATHENA_SIM_INSTR");
        unsetenv("ATHENA_WARMUP_INSTR");
        unsetenv("ATHENA_MC_INSTR");
        unsetenv("ATHENA_MC_WARMUP");
    }
};

TEST_F(RunnerTest, EnvControlsInstructionCounts)
{
    ExperimentRunner runner;
    EXPECT_EQ(runner.simInstructions, 40000u);
    EXPECT_EQ(runner.warmupInstructions, 10000u);
}

TEST_F(RunnerTest, BaselineCacheIsConsistent)
{
    ExperimentRunner runner;
    auto workloads = evalWorkloads();
    SystemConfig cfg =
        makeDesignConfig(CacheDesign::kCd1, PolicyKind::kNaive);
    double a = runner.baselineIpc(cfg, workloads[0]);
    double b = runner.baselineIpc(cfg, workloads[0]);
    EXPECT_DOUBLE_EQ(a, b);
    EXPECT_GT(a, 0.0);
}

TEST_F(RunnerTest, BaselineDiffersAcrossBandwidths)
{
    ExperimentRunner runner;
    auto workloads = evalWorkloads();
    SystemConfig narrow =
        makeDesignConfig(CacheDesign::kCd1, PolicyKind::kNaive);
    narrow.bandwidthGBps = 1.6;
    SystemConfig wide = narrow;
    wide.bandwidthGBps = 12.8;
    double ipc_n = runner.baselineIpc(narrow, workloads[0]);
    double ipc_w = runner.baselineIpc(wide, workloads[0]);
    EXPECT_NE(ipc_n, ipc_w) << "cache key must include bandwidth";
}

TEST_F(RunnerTest, SpeedupsCoverAllWorkloads)
{
    ExperimentRunner runner;
    auto workloads = evalWorkloads();
    std::vector<WorkloadSpec> subset(workloads.begin(),
                                     workloads.begin() + 8);
    SystemConfig cfg =
        makeDesignConfig(CacheDesign::kCd1, PolicyKind::kOcpOnly);
    auto rows = runner.speedups(cfg, subset);
    ASSERT_EQ(rows.size(), subset.size());
    for (std::size_t i = 0; i < rows.size(); ++i) {
        EXPECT_EQ(rows[i].workload, subset[i].name);
        EXPECT_GT(rows[i].speedup, 0.2);
        EXPECT_LT(rows[i].speedup, 5.0);
    }
}

TEST_F(RunnerTest, SummarizeSplitsCategories)
{
    std::vector<SpeedupRow> rows;
    auto add = [&](const char *name, Suite suite, double speedup) {
        SpeedupRow row;
        row.workload = name;
        row.suite = suite;
        row.speedup = speedup;
        rows.push_back(row);
    };
    add("a", Suite::kSpec06, 2.0);
    add("b", Suite::kParsec, 1.0);
    add("c", Suite::kLigra, 0.5);
    add("d", Suite::kCvp, 1.0);
    std::set<std::string> adverse = {"c"};
    CategorySummary s = ExperimentRunner::summarize(rows, adverse);
    EXPECT_DOUBLE_EQ(s.spec, 2.0);
    EXPECT_DOUBLE_EQ(s.parsec, 1.0);
    EXPECT_DOUBLE_EQ(s.ligra, 0.5);
    EXPECT_DOUBLE_EQ(s.adverse, 0.5);
    EXPECT_NEAR(s.friendly, std::pow(2.0, 1.0 / 3.0), 1e-9);
    EXPECT_NEAR(s.overall, 1.0, 1e-9);
}

TEST_F(RunnerTest, AdverseSetIsCachedAndSane)
{
    ExperimentRunner runner;
    auto workloads = evalWorkloads();
    std::vector<WorkloadSpec> subset(workloads.begin(),
                                     workloads.begin() + 12);
    SystemConfig cfg =
        makeDesignConfig(CacheDesign::kCd1, PolicyKind::kPfOnly);
    auto a = runner.adverseSet(cfg, subset);
    auto b = runner.adverseSet(cfg, subset);
    EXPECT_EQ(a, b);
    EXPECT_LE(a.size(), subset.size());
}

TEST_F(RunnerTest, MixSpeedupIsPositive)
{
    ExperimentRunner runner;
    auto workloads = evalWorkloads();
    SystemConfig cfg =
        makeDesignConfig(CacheDesign::kCd1, PolicyKind::kOcpOnly);
    cfg.cores = 2;
    std::vector<WorkloadSpec> mix = {workloads[0], workloads[15]};
    double s = runner.mixSpeedup(cfg, mix);
    EXPECT_GT(s, 0.3);
    EXPECT_LT(s, 4.0);
}

TEST(ParallelFor, CoversAllIndicesOnce)
{
    std::vector<std::atomic<int>> hits(257);
    parallelFor(hits.size(), [&](std::size_t i) { ++hits[i]; });
    for (const auto &h : hits)
        EXPECT_EQ(h.load(), 1);
}

TEST(ParallelFor, HandlesEmptyAndSingle)
{
    parallelFor(0, [](std::size_t) { FAIL(); });
    int count = 0;
    parallelFor(1, [&](std::size_t) { ++count; });
    EXPECT_EQ(count, 1);
}

} // namespace
} // namespace athena

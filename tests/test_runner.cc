/**
 * @file
 * ExperimentRunner tests: baseline caching, category reduction,
 * adverse-set classification, parallel determinism, and the
 * multi-core mix speedup metric.
 */


#include <atomic>
#include <cmath>
#include <cstddef>
#include <cstdlib>
#include <gtest/gtest.h>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "sim/runner.hh"
#include "sim/thread_pool.hh"

namespace athena
{
namespace
{

class RunnerTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        // Keep runner-level tests fast regardless of the ambient
        // environment.
        setenv("ATHENA_SIM_INSTR", "40000", 1);
        setenv("ATHENA_WARMUP_INSTR", "10000", 1);
        setenv("ATHENA_MC_INSTR", "20000", 1);
        setenv("ATHENA_MC_WARMUP", "5000", 1);
    }

    void
    TearDown() override
    {
        unsetenv("ATHENA_SIM_INSTR");
        unsetenv("ATHENA_WARMUP_INSTR");
        unsetenv("ATHENA_MC_INSTR");
        unsetenv("ATHENA_MC_WARMUP");
    }
};

TEST_F(RunnerTest, EnvControlsInstructionCounts)
{
    ExperimentRunner runner;
    EXPECT_EQ(runner.budget.simInstructions, 40000u);
    EXPECT_EQ(runner.budget.warmupInstructions, 10000u);
    EXPECT_EQ(runner.budget.mcSimInstructions, 20000u);
    EXPECT_EQ(runner.budget.mcWarmupInstructions, 5000u);
}

TEST_F(RunnerTest, ExplicitBudgetOverridesEnv)
{
    RunBudget b;
    b.simInstructions = 123;
    b.warmupInstructions = 45;
    ExperimentRunner runner(b);
    EXPECT_EQ(runner.budget.simInstructions, 123u);
    EXPECT_EQ(runner.budget.warmupInstructions, 45u);
}

TEST_F(RunnerTest, BaselineCacheIsConsistent)
{
    ExperimentRunner runner;
    auto workloads = evalWorkloads();
    SystemConfig cfg =
        makeDesignConfig(CacheDesign::kCd1, PolicyKind::kNaive);
    double a = runner.baselineIpc(cfg, workloads[0]);
    double b = runner.baselineIpc(cfg, workloads[0]);
    EXPECT_DOUBLE_EQ(a, b);
    EXPECT_GT(a, 0.0);
}

TEST_F(RunnerTest, BaselineDiffersAcrossBandwidths)
{
    ExperimentRunner runner;
    auto workloads = evalWorkloads();
    SystemConfig narrow =
        makeDesignConfig(CacheDesign::kCd1, PolicyKind::kNaive);
    narrow.bandwidthGBps = 1.6;
    SystemConfig wide = narrow;
    wide.bandwidthGBps = 12.8;
    double ipc_n = runner.baselineIpc(narrow, workloads[0]);
    double ipc_w = runner.baselineIpc(wide, workloads[0]);
    EXPECT_NE(ipc_n, ipc_w) << "cache key must include bandwidth";
}

TEST_F(RunnerTest, SpeedupsCoverAllWorkloads)
{
    ExperimentRunner runner;
    auto workloads = evalWorkloads();
    std::vector<WorkloadSpec> subset(workloads.begin(),
                                     workloads.begin() + 8);
    SystemConfig cfg =
        makeDesignConfig(CacheDesign::kCd1, PolicyKind::kOcpOnly);
    auto rows = runner.speedups(cfg, subset);
    ASSERT_EQ(rows.size(), subset.size());
    for (std::size_t i = 0; i < rows.size(); ++i) {
        EXPECT_EQ(rows[i].workload, subset[i].name);
        EXPECT_GT(rows[i].speedup, 0.2);
        EXPECT_LT(rows[i].speedup, 5.0);
    }
}

TEST_F(RunnerTest, SummarizeSplitsCategories)
{
    std::vector<SpeedupRow> rows;
    auto add = [&](const char *name, Suite suite, double speedup) {
        SpeedupRow row;
        row.workload = name;
        row.suite = suite;
        row.speedup = speedup;
        rows.push_back(row);
    };
    add("a", Suite::kSpec06, 2.0);
    add("b", Suite::kParsec, 1.0);
    add("c", Suite::kLigra, 0.5);
    add("d", Suite::kCvp, 1.0);
    std::set<std::string> adverse = {"c"};
    CategorySummary s = ExperimentRunner::summarize(rows, adverse);
    EXPECT_DOUBLE_EQ(s.spec, 2.0);
    EXPECT_DOUBLE_EQ(s.parsec, 1.0);
    EXPECT_DOUBLE_EQ(s.ligra, 0.5);
    EXPECT_DOUBLE_EQ(s.adverse, 0.5);
    EXPECT_NEAR(s.friendly, std::pow(2.0, 1.0 / 3.0), 1e-9);
    EXPECT_NEAR(s.overall, 1.0, 1e-9);
}

TEST_F(RunnerTest, AdverseSetIsCachedAndSane)
{
    ExperimentRunner runner;
    auto workloads = evalWorkloads();
    std::vector<WorkloadSpec> subset(workloads.begin(),
                                     workloads.begin() + 12);
    SystemConfig cfg =
        makeDesignConfig(CacheDesign::kCd1, PolicyKind::kPfOnly);
    auto a = runner.adverseSet(cfg, subset);
    auto b = runner.adverseSet(cfg, subset);
    EXPECT_EQ(a, b);
    EXPECT_LE(a.size(), subset.size());
}

TEST_F(RunnerTest, MixSpeedupIsPositive)
{
    ExperimentRunner runner;
    auto workloads = evalWorkloads();
    SystemConfig cfg =
        makeDesignConfig(CacheDesign::kCd1, PolicyKind::kOcpOnly);
    cfg.cores = 2;
    std::vector<WorkloadSpec> mix = {workloads[0], workloads[15]};
    double s = runner.mixSpeedup(cfg, mix);
    EXPECT_GT(s, 0.3);
    EXPECT_LT(s, 4.0);
}

TEST_F(RunnerTest, BaselineCacheSafeUnderConcurrentCalls)
{
    // Hammer the baseline cache from many threads with a mix of
    // repeated and distinct keys: every call must return the same
    // value a cold sequential runner computes, with no torn reads
    // or lost inserts.
    ExperimentRunner runner;
    auto workloads = evalWorkloads();
    SystemConfig cfg =
        makeDesignConfig(CacheDesign::kCd1, PolicyKind::kNaive);

    const std::size_t kWorkloads = 4;
    const std::size_t kRepeats = 8;
    std::vector<double> got(kWorkloads * kRepeats, 0.0);
    parallelFor(got.size(), [&](std::size_t i) {
        got[i] = runner.baselineIpc(cfg, workloads[i % kWorkloads]);
    });

    ExperimentRunner fresh;
    for (std::size_t w = 0; w < kWorkloads; ++w) {
        double expect = fresh.baselineIpc(cfg, workloads[w]);
        EXPECT_GT(expect, 0.0);
        for (std::size_t r = 0; r < kRepeats; ++r)
            EXPECT_DOUBLE_EQ(got[r * kWorkloads + w], expect)
                << "workload " << workloads[w].name;
    }
}

TEST_F(RunnerTest, SpeedupsDeterministicRegardlessOfThreading)
{
    // speedups() fans the workloads out over hardware threads; each
    // simulation is self-contained, so the result must be exactly
    // the serial reference no matter how the indices interleave.
    ExperimentRunner runner;
    auto workloads = evalWorkloads();
    std::vector<WorkloadSpec> subset(workloads.begin(),
                                     workloads.begin() + 6);
    SystemConfig cfg =
        makeDesignConfig(CacheDesign::kCd1, PolicyKind::kOcpOnly);

    auto rows = runner.speedups(cfg, subset);
    ASSERT_EQ(rows.size(), subset.size());

    ExperimentRunner serial;
    for (std::size_t i = 0; i < subset.size(); ++i) {
        double base = serial.baselineIpc(cfg, subset[i]);
        SimResult res = serial.runOne(cfg, subset[i]);
        double expect = base > 0.0 ? res.ipc() / base : 1.0;
        EXPECT_DOUBLE_EQ(rows[i].speedup, expect)
            << subset[i].name;
    }

    // And a second parallel pass reproduces the first exactly.
    auto again = runner.speedups(cfg, subset);
    for (std::size_t i = 0; i < subset.size(); ++i)
        EXPECT_DOUBLE_EQ(rows[i].speedup, again[i].speedup);
}

TEST(ParallelFor, CoversAllIndicesOnce)
{
    std::vector<std::atomic<int>> hits(257);
    parallelFor(hits.size(), [&](std::size_t i) { ++hits[i]; });
    for (const auto &h : hits)
        EXPECT_EQ(h.load(), 1);
}

TEST(ParallelFor, HandlesEmptyAndSingle)
{
    parallelFor(0, [](std::size_t) { FAIL(); });
    int count = 0;
    parallelFor(1, [&](std::size_t) { ++count; });
    EXPECT_EQ(count, 1);
}

TEST(ParallelFor, PoolIsPersistentAcrossCalls)
{
    // parallelFor is backed by a lazily-created persistent pool:
    // back-to-back calls must reuse the same worker threads rather
    // than spawning fresh ones per call.
    ThreadPool &pool = ThreadPool::instance();
    unsigned workers_before = pool.workerCount();

    std::mutex mtx;
    std::set<std::thread::id> seen;
    for (int round = 0; round < 8; ++round) {
        parallelFor(64, [&](std::size_t) {
            std::lock_guard<std::mutex> lock(mtx);
            seen.insert(std::this_thread::get_id());
        });
    }
    // Every executing thread across all rounds is either a pool
    // worker or the caller.
    EXPECT_LE(seen.size(), static_cast<std::size_t>(
                               pool.workerCount() + 1));
    EXPECT_EQ(pool.workerCount(), workers_before)
        << "repeated calls must not grow the pool";
}

TEST(ParallelFor, NestedCallsRunInlineWithoutDeadlock)
{
    // A parallelFor issued from inside a pool worker must complete
    // (it runs serially inline on that worker) and still cover
    // every index exactly once.
    const std::size_t outer = 6, inner = 17;
    std::vector<std::atomic<int>> hits(outer * inner);
    parallelFor(outer, [&](std::size_t i) {
        parallelFor(inner, [&](std::size_t j) {
            ++hits[i * inner + j];
        });
    });
    for (const auto &h : hits)
        ASSERT_EQ(h.load(), 1);
}

TEST(ParallelFor, SequentialCallsSeeAllPriorWrites)
{
    // The completion handshake must publish worker writes to the
    // caller before run() returns.
    std::vector<int> data(1000, 0);
    parallelFor(data.size(), [&](std::size_t i) {
        data[i] = static_cast<int>(i) + 1;
    });
    long long sum = 0;
    for (int v : data)
        sum += v;
    EXPECT_EQ(sum, 1000LL * 1001 / 2);
}

TEST_F(RunnerTest, ConcurrentWarmBaselineReadsAreSharedLockFast)
{
    // After one cold miss fills the cache, a storm of concurrent
    // readers (shared_lock path) must all observe the same value.
    ExperimentRunner runner;
    auto workloads = evalWorkloads();
    SystemConfig cfg =
        makeDesignConfig(CacheDesign::kCd1, PolicyKind::kNaive);
    double expect = runner.baselineIpc(cfg, workloads[0]);
    std::vector<double> got(128, 0.0);
    parallelFor(got.size(), [&](std::size_t i) {
        got[i] = runner.baselineIpc(cfg, workloads[0]);
    });
    for (double v : got)
        EXPECT_DOUBLE_EQ(v, expect);
}

TEST(ParallelFor, ManyMoreIndicesThanThreads)
{
    // Work-stealing via the shared atomic counter must cover a range
    // far larger than the pool exactly once, and the call must not
    // return before every index ran.
    const std::size_t n = 10007;
    std::vector<std::atomic<int>> hits(n);
    std::atomic<std::size_t> done{0};
    parallelFor(n, [&](std::size_t i) {
        ++hits[i];
        ++done;
    });
    EXPECT_EQ(done.load(), n);
    for (const auto &h : hits)
        ASSERT_EQ(h.load(), 1);
}

} // namespace
} // namespace athena

/**
 * @file
 * Parallel stepping engine oracle: the multi-threaded engine must be
 * bit-identical to the sequential StepPicker engine — same SimResult
 * to the last counter, and the same shared-commit schedule.
 *
 * Both engines can record a SharedStepLog (one (core, pre-step now)
 * entry per instruction that touches the shared LLC/DRAM, in commit
 * order). The sequential engine's log is the ground truth: the
 * StepPicker's argmin-over-(now, core) order. The parallel engine's
 * log is whatever order its turn protocol actually granted. The
 * suites below assert the two are equal element-for-element across
 * 2/4/8-core mixes, OCP-heavy chase workloads, epoch-rotation-heavy
 * configs, staggered finite-trace exhaustion, thread-count
 * variations, and snapshot/resume — i.e. the parallel engine is not
 * just statistically equivalent but executes the exact sequential
 * schedule.
 *
 * Note: plan.stepThreads is pinned explicitly in every run. The
 * default (0 = auto) resolves from the host's hardware concurrency,
 * so on a small CI box these tests would silently collapse to
 * sequential-vs-sequential and prove nothing.
 */

#include <cstdint>
#include <cstdio>
#include <gtest/gtest.h>
#include <string>
#include <utility>
#include <vector>

#include "sim/simulator.hh"
#include "sim/system_config.hh"
#include "trace/trace_file.hh"
#include "trace/workload.hh"
#include "trace/zoo.hh"

namespace athena
{
namespace
{

std::string
dataPath(const std::string &name)
{
    return std::string(ATHENA_TEST_DATA_DIR) + "/" + name;
}

std::string
tmpPath(const std::string &name)
{
    return testing::TempDir() + "parstep_" + name + ".asnp";
}

WorkloadSpec
pickWorkload(const char *substr)
{
    auto workloads = evalWorkloads();
    for (const WorkloadSpec &w : workloads) {
        if (w.name.find(substr) != std::string::npos)
            return w;
    }
    return workloads.front();
}

/** An n-core mix striding across the synthetic workload zoo. */
std::vector<WorkloadSpec>
stridedMix(unsigned n)
{
    auto workloads = evalWorkloads();
    std::vector<WorkloadSpec> mix;
    for (unsigned i = 0; i < n; ++i)
        mix.push_back(workloads[(i * workloads.size()) / n]);
    return mix;
}

void
expectSlotEqual(const PrefetcherSlotStats &a,
                const PrefetcherSlotStats &b, const char *ctx,
                unsigned core, unsigned slot)
{
    EXPECT_EQ(a.issued, b.issued)
        << ctx << " c" << core << " pf" << slot;
    EXPECT_EQ(a.used, b.used) << ctx << " c" << core << " pf" << slot;
    EXPECT_EQ(a.usedTimely, b.usedTimely)
        << ctx << " c" << core << " pf" << slot;
    EXPECT_EQ(a.uselessEvictions, b.uselessEvictions)
        << ctx << " c" << core << " pf" << slot;
    EXPECT_EQ(a.fillsFromDram, b.fillsFromDram)
        << ctx << " c" << core << " pf" << slot;
    EXPECT_EQ(a.fillsFromDramUnused, b.fillsFromDramUnused)
        << ctx << " c" << core << " pf" << slot;
}

/** Full-SimResult equality: every counter, every core, exact. */
void
expectResultsIdentical(const SimResult &a, const SimResult &b,
                       const char *ctx)
{
    ASSERT_EQ(a.cores.size(), b.cores.size()) << ctx;
    for (unsigned c = 0; c < a.cores.size(); ++c) {
        const SimResult::PerCore &x = a.cores[c];
        const SimResult::PerCore &y = b.cores[c];
        EXPECT_EQ(x.workload, y.workload) << ctx << " c" << c;
        EXPECT_EQ(x.instructions, y.instructions) << ctx << " c" << c;
        EXPECT_EQ(x.cycles, y.cycles) << ctx << " c" << c;
        EXPECT_EQ(x.completedInstructions, y.completedInstructions)
            << ctx << " c" << c;
        EXPECT_EQ(x.streamExhausted, y.streamExhausted)
            << ctx << " c" << c;
        EXPECT_EQ(x.ipc, y.ipc) << ctx << " c" << c;
        EXPECT_EQ(x.loads, y.loads) << ctx << " c" << c;
        EXPECT_EQ(x.stores, y.stores) << ctx << " c" << c;
        EXPECT_EQ(x.branchMispredicts, y.branchMispredicts)
            << ctx << " c" << c;
        EXPECT_EQ(x.llcMisses, y.llcMisses) << ctx << " c" << c;
        EXPECT_EQ(x.llcMissLatency, y.llcMissLatency)
            << ctx << " c" << c;
        for (unsigned s = 0; s < x.pf.size(); ++s)
            expectSlotEqual(x.pf[s], y.pf[s], ctx, c, s);
        EXPECT_EQ(x.ocpPredictions, y.ocpPredictions)
            << ctx << " c" << c;
        EXPECT_EQ(x.ocpCorrect, y.ocpCorrect) << ctx << " c" << c;
        EXPECT_EQ(x.actionHistogram, y.actionHistogram)
            << ctx << " c" << c;
    }
    EXPECT_EQ(a.dram.demandRequests, b.dram.demandRequests) << ctx;
    EXPECT_EQ(a.dram.prefetchRequests, b.dram.prefetchRequests) << ctx;
    EXPECT_EQ(a.dram.ocpRequests, b.dram.ocpRequests) << ctx;
    EXPECT_EQ(a.dram.rowHits, b.dram.rowHits) << ctx;
    EXPECT_EQ(a.dram.rowMisses, b.dram.rowMisses) << ctx;
    EXPECT_EQ(a.dram.busBusyCycles, b.dram.busBusyCycles) << ctx;
    EXPECT_EQ(a.busUtilization, b.busUtilization) << ctx;
}

/**
 * Per-shard commit-schedule equality with a useful failure message:
 * on divergence, report the shard and first differing index rather
 * than dumping two hundred-thousand-entry vectors.
 */
void
expectLogsIdentical(const SharedStepLog &want,
                    const SharedStepLog &got, const char *ctx)
{
    ASSERT_EQ(want.shards.size(), got.shards.size())
        << ctx << ": shard counts differ";
    bool touched = false;
    for (std::size_t sh = 0; sh < want.shards.size(); ++sh) {
        const auto &w = want.shards[sh];
        const auto &g = got.shards[sh];
        touched = touched || !w.empty();
        const std::size_t n = std::min(w.size(), g.size());
        for (std::size_t i = 0; i < n; ++i) {
            if (w[i] == g[i])
                continue;
            ADD_FAILURE()
                << ctx << ": shard " << sh
                << " commit schedules diverge at entry " << i
                << ": sequential committed core " << w[i].first
                << " @ cycle " << w[i].second
                << ", parallel committed core " << g[i].first
                << " @ cycle " << g[i].second;
            return;
        }
        EXPECT_EQ(w.size(), g.size())
            << ctx << ": shard " << sh << " schedules agree on the "
            << "common prefix but have different lengths";
    }
    EXPECT_TRUE(touched) << ctx << ": oracle log is empty — the run "
                         << "never touched shared state";
}

struct EngineRun
{
    SimResult res;
    SharedStepLog log;
};

EngineRun
runEngine(const SystemConfig &cfg,
          const std::vector<WorkloadSpec> &specs,
          std::uint64_t measured, std::uint64_t warmup,
          unsigned step_threads)
{
    EngineRun out;
    RunPlan plan(measured, warmup);
    plan.stepThreads = step_threads;
    Simulator sim(cfg, specs);
    sim.setSharedStepLog(&out.log);
    out.res = sim.run(plan);
    return out;
}

/**
 * The core contract: sequential (stepThreads = 1) vs parallel
 * (stepThreads = cores) must agree on the full result and on the
 * shared-commit schedule.
 */
void
checkEngineEquivalence(const SystemConfig &cfg,
                       const std::vector<WorkloadSpec> &specs,
                       std::uint64_t measured, std::uint64_t warmup,
                       const char *ctx)
{
    EngineRun seq = runEngine(cfg, specs, measured, warmup, 1);
    EngineRun par =
        runEngine(cfg, specs, measured, warmup, cfg.cores);
    expectResultsIdentical(seq.res, par.res, ctx);
    expectLogsIdentical(seq.log, par.log, ctx);
}

// ------------------------------------------------ schedule oracle

TEST(ParallelStep, TwoCoreAthenaMix)
{
    SystemConfig cfg =
        makeDesignConfig(CacheDesign::kCd1, PolicyKind::kAthena);
    cfg.cores = 2;
    checkEngineEquivalence(
        cfg, {pickWorkload("bwaves"), pickWorkload("mcf")}, 20000,
        6000, "2c_athena");
}

TEST(ParallelStep, FourCoreAthenaMix)
{
    SystemConfig cfg =
        makeDesignConfig(CacheDesign::kCd1, PolicyKind::kAthena);
    cfg.cores = 4;
    checkEngineEquivalence(cfg, stridedMix(4), 20000, 6000,
                           "4c_athena");
}

TEST(ParallelStep, EightCoreAthenaMix)
{
    // The Fig. 16 shape. Smaller budget: eight cores of chase-y
    // workloads are the slowest thing in this file.
    SystemConfig cfg =
        makeDesignConfig(CacheDesign::kCd1, PolicyKind::kAthena);
    cfg.cores = 8;
    checkEngineEquivalence(cfg, stridedMix(8), 8000, 2000,
                           "8c_athena");
}

TEST(ParallelStep, TwoCoreNaiveChaseOcpHeavy)
{
    // Chase workloads under the naive policy maximize OCP traffic
    // (see kCd1NaiveChase in test_golden.cc) — every OCP
    // false-positive takes the dram->serve shared path, the gate
    // most easily missed by a racy engine.
    SystemConfig cfg =
        makeDesignConfig(CacheDesign::kCd1, PolicyKind::kNaive);
    cfg.cores = 2;
    checkEngineEquivalence(
        cfg, {pickWorkload("mcf"), pickWorkload("mcf")}, 12000, 3000,
        "2c_naive_chase");
}

TEST(ParallelStep, FourCoreShortEpochs)
{
    // Epoch rotation ends with a dram->lifetime() read — a shared
    // touch that happens outside the load/store paths. Shrink the
    // epoch so it fires hundreds of times inside the budget.
    SystemConfig cfg =
        makeDesignConfig(CacheDesign::kCd1, PolicyKind::kAthena);
    cfg.cores = 4;
    cfg.epochInstructions = 500;
    checkEngineEquivalence(cfg, stridedMix(4), 16000, 4000,
                           "4c_short_epochs");
}

// ------------------------------------------- thread-count knob

TEST(ParallelStep, ThreadCountInvariance)
{
    // Any stepThreads value must produce the same bits: 1 and
    // mid-range values fall back to the sequential engine, while
    // cores and anything above run the parallel engine with exactly
    // one stepping context per core.
    SystemConfig cfg =
        makeDesignConfig(CacheDesign::kCd1, PolicyKind::kAthena);
    cfg.cores = 4;
    std::vector<WorkloadSpec> mix = stridedMix(4);

    EngineRun want = runEngine(cfg, mix, 16000, 4000, 1);
    for (unsigned threads : {2u, 4u, 16u}) {
        EngineRun got = runEngine(cfg, mix, 16000, 4000, threads);
        std::string ctx = "threads=" + std::to_string(threads);
        expectResultsIdentical(want.res, got.res, ctx.c_str());
        expectLogsIdentical(want.log, got.log, ctx.c_str());
    }
}

TEST(ParallelStep, RepeatParallelRunsBitIdentical)
{
    // Scheduling noise between runs (thread start order, preemption)
    // must not leak into results: two parallel runs of the same mix
    // reproduce each other exactly.
    SystemConfig cfg =
        makeDesignConfig(CacheDesign::kCd1, PolicyKind::kAthena);
    cfg.cores = 4;
    std::vector<WorkloadSpec> mix = stridedMix(4);
    EngineRun a = runEngine(cfg, mix, 16000, 4000, cfg.cores);
    EngineRun b = runEngine(cfg, mix, 16000, 4000, cfg.cores);
    expectResultsIdentical(a.res, b.res, "repeat");
    expectLogsIdentical(a.log, b.log, "repeat");
}

// ------------------------------------- finite-stream exhaustion

TEST(ParallelStep, StaggeredFiniteTraceExhaustion)
{
    // Four trace-replay cores with staggered loop counts: streams
    // exhaust one after another, so the engine must keep committing
    // in sequential order while the set of live cores shrinks (the
    // `done` path of the turn protocol).
    SystemConfig cfg =
        makeDesignConfig(CacheDesign::kCd1, PolicyKind::kNaive);
    cfg.cores = 4;
    std::vector<WorkloadSpec> mix = {
        traceWorkloadSpec("t.a", dataPath("sample_loop.txt"), 1),
        traceWorkloadSpec("t.b", dataPath("sample_loop.txt"), 3),
        traceWorkloadSpec("t.c", dataPath("sample_mix.bin"), 1),
        traceWorkloadSpec("t.d", dataPath("sample_mix.bin"), 4)};

    EngineRun seq = runEngine(cfg, mix, 50000, 1000, 1);
    EngineRun par = runEngine(cfg, mix, 50000, 1000, cfg.cores);
    expectResultsIdentical(seq.res, par.res, "staggered");
    expectLogsIdentical(seq.log, par.log, "staggered");

    // The case is only meaningful if exhaustion actually staggers:
    // every stream must end before its budget, at distinct counts.
    for (unsigned c = 0; c < 4; ++c)
        EXPECT_TRUE(par.res.cores[c].streamExhausted) << "c" << c;
    EXPECT_NE(par.res.cores[0].completedInstructions,
              par.res.cores[1].completedInstructions);
    EXPECT_NE(par.res.cores[2].completedInstructions,
              par.res.cores[3].completedInstructions);
}

// ------------------------------------------- snapshot / resume

TEST(ParallelStep, SnapshotResumeUnderParallelEngine)
{
    // Snapshot-at-warmup while the parallel engine runs the
    // measured window, then a parallel resume: both must equal the
    // sequential straight-through run.
    SystemConfig cfg =
        makeDesignConfig(CacheDesign::kCd1, PolicyKind::kAthena);
    cfg.cores = 4;
    std::vector<WorkloadSpec> mix = stridedMix(4);
    constexpr std::uint64_t kMeasured = 16000;
    constexpr std::uint64_t kWarm = 4000;

    EngineRun want = runEngine(cfg, mix, kMeasured, kWarm, 1);

    const std::string path = tmpPath("mc4");
    RunPlan snap_plan(kMeasured, kWarm);
    snap_plan.stepThreads = cfg.cores;
    snap_plan.snapshotAfterWarmup = path;
    Simulator source(cfg, mix);
    SimResult via_snapshot = source.run(snap_plan);
    expectResultsIdentical(want.res, via_snapshot, "snap_source");

    RunPlan resume_plan(kMeasured, kWarm);
    resume_plan.stepThreads = cfg.cores;
    Simulator resumed(cfg, mix, path);
    SimResult got = resumed.run(resume_plan);
    expectResultsIdentical(want.res, got, "snap_resume");
    std::remove(path.c_str());
}

} // namespace
} // namespace athena

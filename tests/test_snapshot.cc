/**
 * @file
 * Snapshot format and robustness tests: ASNP header/section-table
 * validation, typed SnapshotError reporting that names the offending
 * section, geometry guards, and save -> restore -> save byte
 * identity of the full simulator state under randomized
 * configurations.
 */

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <gtest/gtest.h>
#include <string>
#include <vector>

#include "common/rng.hh"
#include "mem/cache.hh"
#include "sim/simulator.hh"
#include "sim/system_config.hh"
#include "snapshot/snapshot.hh"
#include "trace/zoo.hh"

namespace athena
{
namespace
{

std::string
tmpPath(const std::string &name)
{
    return testing::TempDir() + "asnp_" + name;
}

std::vector<std::uint8_t>
readFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    return std::vector<std::uint8_t>(
        std::istreambuf_iterator<char>(in),
        std::istreambuf_iterator<char>());
}

WorkloadSpec
pickWorkload(const char *substr)
{
    auto workloads = evalWorkloads();
    for (const WorkloadSpec &w : workloads) {
        if (w.name.find(substr) != std::string::npos)
            return w;
    }
    return workloads.front();
}

// ---------------------------------------------------- writer/reader

TEST(SnapshotFormat, PrimitiveRoundTrip)
{
    SnapshotWriter w;
    w.beginSection("prims");
    w.u8(0xab);
    w.u16(0xbeef);
    w.u32(0xdeadbeefu);
    w.u64(0x0123456789abcdefull);
    w.i64(-42);
    w.i32(-7);
    w.f64(3.25);
    w.boolean(true);
    w.boolean(false);
    const std::uint8_t raw[4] = {1, 2, 3, 4};
    w.bytes(raw, sizeof(raw));
    w.vecU64({5, 6, 7});
    w.endSection();

    SnapshotReader r(w.serialize());
    EXPECT_TRUE(r.hasSection("prims"));
    EXPECT_FALSE(r.hasSection("absent"));
    r.openSection("prims");
    EXPECT_EQ(r.u8(), 0xab);
    EXPECT_EQ(r.u16(), 0xbeef);
    EXPECT_EQ(r.u32(), 0xdeadbeefu);
    EXPECT_EQ(r.u64(), 0x0123456789abcdefull);
    EXPECT_EQ(r.i64(), -42);
    EXPECT_EQ(r.i32(), -7);
    EXPECT_EQ(r.f64(), 3.25);
    EXPECT_TRUE(r.boolean());
    EXPECT_FALSE(r.boolean());
    std::uint8_t back[4] = {};
    r.bytes(back, sizeof(back));
    EXPECT_EQ(back[0], 1);
    EXPECT_EQ(back[3], 4);
    EXPECT_EQ(r.vecU64(), (std::vector<std::uint64_t>{5, 6, 7}));
    EXPECT_EQ(r.remaining(), 0u);
}

TEST(SnapshotFormat, MultipleSectionsReadInAnyOrder)
{
    SnapshotWriter w;
    w.beginSection("a");
    w.u32(1);
    w.endSection();
    w.beginSection("b");
    w.u32(2);
    w.endSection();

    SnapshotReader r(w.serialize());
    r.openSection("b");
    EXPECT_EQ(r.u32(), 2u);
    r.openSection("a");
    EXPECT_EQ(r.u32(), 1u);
}

TEST(SnapshotFormat, FileRoundTrip)
{
    const std::string path = tmpPath("file_round_trip");
    SnapshotWriter w;
    w.beginSection("s");
    w.u64(77);
    w.endSection();
    w.writeFile(path);

    SnapshotReader r(path);
    r.openSection("s");
    EXPECT_EQ(r.u64(), 77u);
    std::remove(path.c_str());
}

// ------------------------------------------------------- robustness

TEST(SnapshotRobustness, MissingFileIsTypedError)
{
    EXPECT_THROW(SnapshotReader("/nonexistent/path/x.asnp"),
                 SnapshotError);
}

TEST(SnapshotRobustness, BadMagicIsFileLevelError)
{
    SnapshotWriter w;
    w.beginSection("s");
    w.u64(1);
    w.endSection();
    auto bytes = w.serialize();
    bytes[0] = 'X';
    try {
        SnapshotReader r(std::move(bytes));
        FAIL() << "expected SnapshotError";
    } catch (const SnapshotError &e) {
        EXPECT_TRUE(e.section().empty());
    }
}

TEST(SnapshotRobustness, WrongVersionIsRejected)
{
    SnapshotWriter w;
    w.beginSection("s");
    w.u64(1);
    w.endSection();
    auto bytes = w.serialize();
    bytes[4] = static_cast<std::uint8_t>(kSnapshotVersion + 1);
    EXPECT_THROW(SnapshotReader r(std::move(bytes)), SnapshotError);
}

TEST(SnapshotRobustness, TruncatedPayloadNamesSection)
{
    SnapshotWriter w;
    w.beginSection("tail");
    for (int i = 0; i < 32; ++i)
        w.u64(static_cast<std::uint64_t>(i));
    w.endSection();
    auto bytes = w.serialize();
    bytes.resize(bytes.size() - 40); // chop into the payload
    try {
        SnapshotReader r(std::move(bytes));
        r.openSection("tail");
        FAIL() << "expected SnapshotError";
    } catch (const SnapshotError &e) {
        EXPECT_EQ(e.section(), "tail");
    }
}

TEST(SnapshotRobustness, CorruptedByteNamesSection)
{
    SnapshotWriter w;
    w.beginSection("good");
    w.u64(123);
    w.endSection();
    w.beginSection("bad");
    for (int i = 0; i < 8; ++i)
        w.u64(static_cast<std::uint64_t>(i) * 1000003u);
    w.endSection();
    auto bytes = w.serialize();
    bytes.back() ^= 0x5a; // flip a bit inside section "bad"
    SnapshotReader r(std::move(bytes));
    r.openSection("good"); // untouched section still verifies
    EXPECT_EQ(r.u64(), 123u);
    try {
        r.openSection("bad");
        FAIL() << "expected SnapshotError";
    } catch (const SnapshotError &e) {
        EXPECT_EQ(e.section(), "bad");
    }
}

TEST(SnapshotRobustness, ReadPastSectionEndNamesSection)
{
    SnapshotWriter w;
    w.beginSection("short");
    w.u32(9);
    w.endSection();
    SnapshotReader r(w.serialize());
    r.openSection("short");
    EXPECT_EQ(r.u32(), 9u);
    try {
        (void)r.u64();
        FAIL() << "expected SnapshotError";
    } catch (const SnapshotError &e) {
        EXPECT_EQ(e.section(), "short");
    }
}

TEST(SnapshotRobustness, MissingSectionNamesIt)
{
    SnapshotWriter w;
    w.beginSection("present");
    w.u8(1);
    w.endSection();
    SnapshotReader r(w.serialize());
    try {
        r.openSection("absent");
        FAIL() << "expected SnapshotError";
    } catch (const SnapshotError &e) {
        EXPECT_EQ(e.section(), "absent");
    }
}

TEST(SnapshotRobustness, GeometryGuardNamesSectionAndQuantity)
{
    // A cache snapshotted at one geometry must refuse to restore
    // into another, naming the offending section.
    Cache small({"L1D", 16 << 10, 8, 5});
    SnapshotWriter w;
    w.beginSection("c0/l1");
    small.saveState(w);
    w.endSection();

    Cache other({"L1D", 32 << 10, 8, 5});
    SnapshotReader r(w.serialize());
    r.openSection("c0/l1");
    try {
        other.restoreState(r);
        FAIL() << "expected SnapshotError";
    } catch (const SnapshotError &e) {
        EXPECT_EQ(e.section(), "c0/l1");
        EXPECT_NE(std::string(e.what()).find("mismatch"),
                  std::string::npos);
    }
}

TEST(SnapshotRobustness, ConfigMismatchIsRejectedAtMeta)
{
    const std::string path = tmpPath("config_mismatch");
    SystemConfig cfg =
        makeDesignConfig(CacheDesign::kCd1, PolicyKind::kNaive);
    Simulator sim(cfg, {pickWorkload("bwaves")});
    RunPlan plan;
    plan.measured = 0;
    plan.warmup = 2000;
    plan.snapshotAfterWarmup = path;
    sim.run(plan);

    SystemConfig other = cfg;
    other.bandwidthGBps = 12.8;
    try {
        Simulator resume(other, {pickWorkload("bwaves")}, path);
        FAIL() << "expected SnapshotError";
    } catch (const SnapshotError &e) {
        EXPECT_EQ(e.section(), "meta");
    }
    std::remove(path.c_str());
}

TEST(SnapshotRobustness, ResumedRunRequiresMatchingWarmup)
{
    const std::string path = tmpPath("warmup_mismatch");
    SystemConfig cfg =
        makeDesignConfig(CacheDesign::kCd1, PolicyKind::kNaive);
    Simulator sim(cfg, {pickWorkload("bwaves")});
    RunPlan plan;
    plan.measured = 1000;
    plan.warmup = 2000;
    plan.snapshotAfterWarmup = path;
    sim.run(plan);

    Simulator resume(cfg, {pickWorkload("bwaves")}, path);
    RunPlan bad;
    bad.measured = 1000;
    bad.warmup = 999;
    EXPECT_THROW(resume.run(bad), std::invalid_argument);
    std::remove(path.c_str());
}

// -------------------------------------------- randomized round-trip

/**
 * Property: for a randomized configuration, snapshotting after
 * warmup and immediately re-snapshotting the restored simulator
 * yields byte-identical files — i.e. restore loses nothing that
 * save records, across every component the config instantiates.
 */
TEST(SnapshotProperty, SaveRestoreSaveIsByteIdentical)
{
    Rng rng(20260807);
    auto workloads = evalWorkloads();
    constexpr PolicyKind kPolicies[] = {
        PolicyKind::kNaive, PolicyKind::kTlp,  PolicyKind::kHpac,
        PolicyKind::kMab,   PolicyKind::kAthena};
    constexpr CacheDesign kDesigns[] = {
        CacheDesign::kCd1, CacheDesign::kCd2, CacheDesign::kCd3,
        CacheDesign::kCd4};
    constexpr OcpKind kOcps[] = {OcpKind::kNone, OcpKind::kPopet,
                                 OcpKind::kHmp, OcpKind::kTtp};

    for (int trial = 0; trial < 8; ++trial) {
        SystemConfig cfg = makeDesignConfig(
            kDesigns[rng.below(4)],
            kPolicies[rng.below(5)]);
        cfg.ocp = kOcps[rng.below(4)];
        cfg.seed = 7 + rng.below(1000);
        cfg.bandwidthGBps = 1.6 * static_cast<double>(
            1 + rng.below(4));
        const WorkloadSpec &wl =
            workloads[rng.below(workloads.size())];

        const std::string p1 = tmpPath("prop_a");
        const std::string p2 = tmpPath("prop_b");

        Simulator sim(cfg, {wl});
        RunPlan plan;
        plan.measured = 0;
        plan.warmup = 4000 + 1000 * rng.below(4);
        plan.snapshotAfterWarmup = p1;
        sim.run(plan);

        Simulator restored(cfg, {wl}, p1);
        restored.snapshot(p2);

        EXPECT_EQ(readFile(p1), readFile(p2))
            << "trial " << trial << " policy "
            << static_cast<int>(cfg.policy) << " wl " << wl.name;
        std::remove(p1.c_str());
        std::remove(p2.c_str());
    }
}

} // namespace
} // namespace athena

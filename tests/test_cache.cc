/**
 * @file
 * Cache model tests: hit/miss behaviour, LRU victim selection,
 * prefetch metadata (first-touch, useless-eviction, off-chip fill
 * provenance), and a parameterized capacity property over several
 * geometries.
 */

#include <cstdint>
#include <gtest/gtest.h>

#include "mem/cache.hh"

namespace athena
{
namespace
{

CacheParams
tinyCache(unsigned sets, unsigned ways)
{
    CacheParams p;
    p.name = "tiny";
    p.sizeBytes = static_cast<std::uint64_t>(sets) * ways *
                  kLineBytes;
    p.ways = ways;
    p.latency = 5;
    return p;
}

TEST(Cache, MissThenHit)
{
    Cache c(tinyCache(4, 2));
    EXPECT_FALSE(c.access(100, 1).hit);
    c.fill(100, 1, 1, false);
    EXPECT_TRUE(c.access(100, 2).hit);
    EXPECT_EQ(c.statMisses, 1u);
    EXPECT_EQ(c.statHits, 1u);
}

TEST(Cache, LruEvictsOldest)
{
    Cache c(tinyCache(1, 2)); // one set, two ways
    c.fill(0, 1, 1, false);
    c.fill(1, 2, 2, false);
    c.access(0, 3); // touch line 0 -> line 1 becomes LRU
    CacheEviction ev = c.fill(2, 4, 4, false);
    EXPECT_TRUE(ev.evictedValid);
    EXPECT_EQ(ev.evictedLine, 1u);
    EXPECT_TRUE(c.contains(0));
    EXPECT_TRUE(c.contains(2));
    EXPECT_FALSE(c.contains(1));
}

TEST(Cache, SetIndexingSeparatesSets)
{
    Cache c(tinyCache(4, 1));
    // Lines 0..3 map to different sets; filling all evicts nothing.
    for (Addr line = 0; line < 4; ++line) {
        CacheEviction ev = c.fill(line, line, line, false);
        EXPECT_FALSE(ev.evictedValid);
    }
    for (Addr line = 0; line < 4; ++line)
        EXPECT_TRUE(c.contains(line));
}

TEST(Cache, PrefetchFirstTouchSemantics)
{
    Cache c(tinyCache(4, 2));
    c.fill(8, 1, 50, true, 1, 0xbeef, true);
    CacheLookup first = c.access(8, 60);
    EXPECT_TRUE(first.hit);
    EXPECT_TRUE(first.firstPrefetchTouch);
    EXPECT_EQ(first.pfSlot, 1);
    EXPECT_EQ(first.pfMeta, 0xbeefu);
    EXPECT_TRUE(first.pfFromDram);
    EXPECT_EQ(first.readyAt, 50u);
    // Second demand touch is an ordinary hit.
    CacheLookup second = c.access(8, 70);
    EXPECT_TRUE(second.hit);
    EXPECT_FALSE(second.firstPrefetchTouch);
}

TEST(Cache, PrefetchTouchDoesNotClearPrefetchBit)
{
    Cache c(tinyCache(4, 2));
    c.fill(8, 1, 1, true, 0, 7, false);
    EXPECT_TRUE(c.touch(8));
    CacheLookup res = c.access(8, 2);
    EXPECT_TRUE(res.firstPrefetchTouch) << "touch() must not count "
                                           "as a demand use";
}

TEST(Cache, UnusedPrefetchEvictionReported)
{
    Cache c(tinyCache(1, 1));
    c.fill(0, 1, 1, true, 1, 42, true);
    CacheEviction ev = c.fill(1, 2, 2, false);
    EXPECT_TRUE(ev.evictedValid);
    EXPECT_TRUE(ev.evictedUnusedPrefetch);
    EXPECT_EQ(ev.evictedPfMeta, 42u);
    EXPECT_EQ(ev.evictedPfSlot, 1);
    EXPECT_TRUE(ev.evictedPfFromDram);
    EXPECT_EQ(c.statUnusedPrefetchEvictions, 1u);
}

TEST(Cache, UsedPrefetchEvictionNotReportedUnused)
{
    Cache c(tinyCache(1, 1));
    c.fill(0, 1, 1, true, 0, 42, false);
    c.access(0, 2); // demand use clears the prefetch bit
    CacheEviction ev = c.fill(1, 3, 3, false);
    EXPECT_TRUE(ev.evictedValid);
    EXPECT_FALSE(ev.evictedUnusedPrefetch);
}

TEST(Cache, EvictionCausedByPrefetchFlag)
{
    Cache c(tinyCache(1, 1));
    c.fill(0, 1, 1, false);
    CacheEviction ev = c.fill(1, 2, 2, true, 0, 0, true);
    EXPECT_TRUE(ev.causedByPrefetch);
    EXPECT_TRUE(ev.evictedValid);
}

TEST(Cache, RefillOfResidentLineEvictsNothing)
{
    Cache c(tinyCache(1, 2));
    c.fill(0, 1, 1, false);
    CacheEviction ev = c.fill(0, 2, 2, false);
    EXPECT_FALSE(ev.evictedValid);
}

TEST(Cache, InvalidateRemovesLine)
{
    Cache c(tinyCache(4, 2));
    c.fill(5, 1, 1, false);
    ASSERT_TRUE(c.contains(5));
    c.invalidate(5);
    EXPECT_FALSE(c.contains(5));
}

TEST(Cache, ResetClearsEverything)
{
    Cache c(tinyCache(4, 2));
    c.fill(3, 1, 1, false);
    c.access(3, 2);
    c.reset();
    EXPECT_FALSE(c.contains(3));
    EXPECT_EQ(c.statHits, 0u);
    EXPECT_EQ(c.statMisses, 0u);
}

TEST(Cache, LateReadyAtVisibleToDemand)
{
    Cache c(tinyCache(4, 2));
    c.fill(9, 10, 500, true, 0, 0, true); // data arrives at 500
    CacheLookup res = c.access(9, 100);   // demand at 100: late pf
    EXPECT_TRUE(res.hit);
    EXPECT_EQ(res.readyAt, 500u);
}

/**
 * Deferred-completion protocol of the batched DRAM path: fill with
 * a provisional readyAt, patch the real one in by the fill's
 * coordinates (set base + CacheEviction::filledWay + key).
 */
TEST(Cache, PatchReadyAtDeliversDeferredCompletion)
{
    Cache c(tinyCache(4, 2));
    const CacheRef r = c.ref(9);
    CacheEviction ev = c.fill(r, 10, ~0ull, true, 0, 0, true);
    c.patchReadyAt(r.base, ev.filledWay, r.key, 500);
    CacheLookup res = c.access(r, 100);
    EXPECT_TRUE(res.hit);
    EXPECT_EQ(res.readyAt, 500u);
}

TEST(Cache, PatchReadyAtSkipsEvictedLine)
{
    Cache c(tinyCache(1, 2)); // one set, two ways
    const CacheRef a = c.ref(1);
    CacheEviction eva = c.fill(a, 1, ~0ull, true, 0, 0, true);
    c.fill(2, 2, 2, false);
    CacheEviction evc = c.fill(3, 3, 3, false); // evicts line 1
    EXPECT_TRUE(evc.evictedValid);
    EXPECT_EQ(evc.evictedLine, 1u);
    // Patching the dead fill must not corrupt whichever line now
    // owns the way (the key check fails).
    c.patchReadyAt(a.base, eva.filledWay, a.key, 500);
    EXPECT_FALSE(c.access(a, 10).hit);
    Addr survivor = evc.filledWay == eva.filledWay ? 3 : 2;
    CacheLookup res = c.access(survivor, 1);
    EXPECT_TRUE(res.hit);
    EXPECT_LT(res.readyAt, 500u);
}

TEST(Cache, FilledWayReportsResidentWay)
{
    Cache c(tinyCache(1, 4));
    for (Addr line = 0; line < 4; ++line) {
        CacheEviction ev = c.fill(line, 1, 1, false);
        // A refill of the resident line reports the same way.
        CacheEviction again = c.fill(line, 2, 2, false);
        EXPECT_EQ(again.filledWay, ev.filledWay);
        // And the reported way answers an indexed patch.
        const CacheRef r = c.ref(line);
        c.patchReadyAt(r.base, ev.filledWay, r.key, 900 + line);
        EXPECT_EQ(c.access(r, 5).readyAt, 900 + line);
    }
}

/** Property: capacity is sets x ways distinct lines per set. */
class CacheGeometry
    : public ::testing::TestWithParam<std::pair<unsigned, unsigned>>
{};

TEST_P(CacheGeometry, CapacityProperty)
{
    auto [sets, ways] = GetParam();
    Cache c(tinyCache(sets, ways));
    ASSERT_EQ(c.numSets(), sets);
    // Fill one set to capacity with same-set lines: no eviction
    // until ways + 1 fills.
    for (unsigned i = 0; i < ways; ++i) {
        CacheEviction ev =
            c.fill(static_cast<Addr>(i) * sets, i, i, false);
        EXPECT_FALSE(ev.evictedValid) << "premature eviction";
    }
    CacheEviction ev =
        c.fill(static_cast<Addr>(ways) * sets, ways, ways, false);
    EXPECT_TRUE(ev.evictedValid) << "capacity not enforced";
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, CacheGeometry,
    ::testing::Values(std::make_pair(1u, 1u), std::make_pair(4u, 2u),
                      std::make_pair(64u, 12u),
                      std::make_pair(512u, 20u),
                      std::make_pair(4096u, 12u)));

} // namespace
} // namespace athena

/**
 * @file
 * Sharded shared-memory plane oracles: banked LLC + channeled DRAM
 * under the parallel stepping engine.
 *
 * Four contracts are pinned here:
 *
 *  1. Per-shard commit order. On any geometry, the parallel engine's
 *     per-shard commit logs must equal the sequential engine's
 *     per-shard projection entry-for-entry — across 4/8/16/32-core
 *     mixes including the Fig. 16-style many-core presets.
 *
 *  2. Bank-count bit-invariance. With a power-of-two bank count the
 *     interleave is a pure re-labeling of the monolithic set index
 *     (bank bits + bank-local set bits = monolithic set index, tags
 *     coincide), so {1, 2, 4, 8} banks produce the same SimResult to
 *     the last counter. Note there is NO analogous invariance across
 *     channel counts: bandwidthGBps is per channel, so adding
 *     channels adds aggregate bandwidth by design.
 *
 *  3. Exact decode for any shard count: odd / non-power-of-two bank
 *     and channel counts run through the reciprocal-division path
 *     and must still satisfy the seq-vs-par oracle.
 *
 *  4. Snapshot/resume on sharded geometry, including the named
 *     geometry-mismatch errors a wrong-shaped restore must raise.
 */

#include <cstdint>
#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "mem/shard.hh"
#include "sim/simulator.hh"
#include "sim/system_config.hh"
#include "snapshot/snapshot.hh"
#include "trace/workload.hh"
#include "trace/zoo.hh"

namespace athena
{
namespace
{

std::string
tmpPath(const std::string &name)
{
    return testing::TempDir() + "shardord_" + name + ".asnp";
}

/** An n-core mix striding across the synthetic workload zoo. */
std::vector<WorkloadSpec>
stridedMix(unsigned n)
{
    auto workloads = evalWorkloads();
    std::vector<WorkloadSpec> mix;
    for (unsigned i = 0; i < n; ++i)
        mix.push_back(workloads[(i * workloads.size()) / n]);
    return mix;
}

void
expectSlotEqual(const PrefetcherSlotStats &a,
                const PrefetcherSlotStats &b, const char *ctx,
                unsigned core, unsigned slot)
{
    EXPECT_EQ(a.issued, b.issued)
        << ctx << " c" << core << " pf" << slot;
    EXPECT_EQ(a.used, b.used) << ctx << " c" << core << " pf" << slot;
    EXPECT_EQ(a.usedTimely, b.usedTimely)
        << ctx << " c" << core << " pf" << slot;
    EXPECT_EQ(a.uselessEvictions, b.uselessEvictions)
        << ctx << " c" << core << " pf" << slot;
    EXPECT_EQ(a.fillsFromDram, b.fillsFromDram)
        << ctx << " c" << core << " pf" << slot;
    EXPECT_EQ(a.fillsFromDramUnused, b.fillsFromDramUnused)
        << ctx << " c" << core << " pf" << slot;
}

/** Full-SimResult equality: every counter, every core, exact. */
void
expectResultsIdentical(const SimResult &a, const SimResult &b,
                       const char *ctx)
{
    ASSERT_EQ(a.cores.size(), b.cores.size()) << ctx;
    for (unsigned c = 0; c < a.cores.size(); ++c) {
        const SimResult::PerCore &x = a.cores[c];
        const SimResult::PerCore &y = b.cores[c];
        EXPECT_EQ(x.workload, y.workload) << ctx << " c" << c;
        EXPECT_EQ(x.instructions, y.instructions) << ctx << " c" << c;
        EXPECT_EQ(x.cycles, y.cycles) << ctx << " c" << c;
        EXPECT_EQ(x.completedInstructions, y.completedInstructions)
            << ctx << " c" << c;
        EXPECT_EQ(x.streamExhausted, y.streamExhausted)
            << ctx << " c" << c;
        EXPECT_EQ(x.ipc, y.ipc) << ctx << " c" << c;
        EXPECT_EQ(x.loads, y.loads) << ctx << " c" << c;
        EXPECT_EQ(x.stores, y.stores) << ctx << " c" << c;
        EXPECT_EQ(x.branchMispredicts, y.branchMispredicts)
            << ctx << " c" << c;
        EXPECT_EQ(x.llcMisses, y.llcMisses) << ctx << " c" << c;
        EXPECT_EQ(x.llcMissLatency, y.llcMissLatency)
            << ctx << " c" << c;
        for (unsigned s = 0; s < x.pf.size(); ++s)
            expectSlotEqual(x.pf[s], y.pf[s], ctx, c, s);
        EXPECT_EQ(x.ocpPredictions, y.ocpPredictions)
            << ctx << " c" << c;
        EXPECT_EQ(x.ocpCorrect, y.ocpCorrect) << ctx << " c" << c;
        EXPECT_EQ(x.actionHistogram, y.actionHistogram)
            << ctx << " c" << c;
    }
    EXPECT_EQ(a.dram.demandRequests, b.dram.demandRequests) << ctx;
    EXPECT_EQ(a.dram.prefetchRequests, b.dram.prefetchRequests) << ctx;
    EXPECT_EQ(a.dram.ocpRequests, b.dram.ocpRequests) << ctx;
    EXPECT_EQ(a.dram.rowHits, b.dram.rowHits) << ctx;
    EXPECT_EQ(a.dram.rowMisses, b.dram.rowMisses) << ctx;
    EXPECT_EQ(a.dram.busBusyCycles, b.dram.busBusyCycles) << ctx;
    EXPECT_EQ(a.busUtilization, b.busUtilization) << ctx;
}

/** Per-shard commit-schedule equality with first-divergence info. */
void
expectLogsIdentical(const SharedStepLog &want,
                    const SharedStepLog &got, const char *ctx)
{
    ASSERT_EQ(want.shards.size(), got.shards.size())
        << ctx << ": shard counts differ";
    bool touched = false;
    for (std::size_t sh = 0; sh < want.shards.size(); ++sh) {
        const auto &w = want.shards[sh];
        const auto &g = got.shards[sh];
        touched = touched || !w.empty();
        const std::size_t n = std::min(w.size(), g.size());
        for (std::size_t i = 0; i < n; ++i) {
            if (w[i] == g[i])
                continue;
            ADD_FAILURE()
                << ctx << ": shard " << sh
                << " commit schedules diverge at entry " << i
                << ": sequential committed core " << w[i].first
                << " @ cycle " << w[i].second
                << ", parallel committed core " << g[i].first
                << " @ cycle " << g[i].second;
            return;
        }
        EXPECT_EQ(w.size(), g.size())
            << ctx << ": shard " << sh << " schedules agree on the "
            << "common prefix but have different lengths";
    }
    EXPECT_TRUE(touched) << ctx << ": oracle log is empty — the run "
                         << "never touched shared state";
}

struct EngineRun
{
    SimResult res;
    SharedStepLog log;
};

EngineRun
runEngine(const SystemConfig &cfg,
          const std::vector<WorkloadSpec> &specs,
          std::uint64_t measured, std::uint64_t warmup,
          unsigned step_threads)
{
    EngineRun out;
    RunPlan plan(measured, warmup);
    plan.stepThreads = step_threads;
    Simulator sim(cfg, specs);
    sim.setSharedStepLog(&out.log);
    out.res = sim.run(plan);
    return out;
}

/** Seq-vs-par bit-equality: full result + per-shard commit logs. */
void
checkShardedEquivalence(const SystemConfig &cfg,
                        const std::vector<WorkloadSpec> &specs,
                        std::uint64_t measured, std::uint64_t warmup,
                        const char *ctx)
{
    EngineRun seq = runEngine(cfg, specs, measured, warmup, 1);
    EngineRun par =
        runEngine(cfg, specs, measured, warmup, cfg.cores);
    expectResultsIdentical(seq.res, par.res, ctx);
    expectLogsIdentical(seq.log, par.log, ctx);
}

// ----------------------------------------------- decode algebra

TEST(ShardDecode, DivisionMatchesShiftOnPow2Counts)
{
    // The reciprocal-division path must agree with the shift/mask
    // path everywhere it can be cross-checked: every pow2 count.
    const std::uint64_t lines[] = {
        0,       1,        2,          3,          63,
        64,      65,       1000003,    (1ull << 32) - 1,
        1ull << 32,        (1ull << 52) + 12345,
        ~std::uint64_t{0} >> 6};
    for (std::uint64_t count : {1u, 2u, 4u, 8u, 16u, 64u}) {
        ShardDecode fast(count);
        ShardDecode slow(count, /*force_division=*/true);
        for (std::uint64_t line : lines) {
            EXPECT_EQ(fast.shardOf(line), slow.shardOf(line))
                << "count=" << count << " line=" << line;
            EXPECT_EQ(fast.localLine(line), slow.localLine(line))
                << "count=" << count << " line=" << line;
        }
    }
}

TEST(ShardDecode, ExactPartitionForAnyCount)
{
    // shardOf/localLine must be a true divmod (exact partition of
    // the line space) and globalLine its exact inverse — including
    // odd and composite non-pow2 counts.
    const std::uint64_t lines[] = {
        0,  1,  2,  6,  7,  8,  41, 97, 1000000007ull,
        (1ull << 40) + 17, ~std::uint64_t{0} >> 8};
    for (std::uint64_t count : {1u, 3u, 5u, 6u, 7u, 12u, 33u}) {
        ShardDecode d(count);
        for (std::uint64_t line : lines) {
            const std::uint64_t shard = d.shardOf(line);
            const std::uint64_t local = d.localLine(line);
            EXPECT_LT(shard, count) << "count=" << count;
            EXPECT_EQ(local * count + shard, line)
                << "count=" << count << " line=" << line;
            EXPECT_EQ(d.globalLine(local, shard), line)
                << "count=" << count << " line=" << line;
        }
    }
}

// --------------------------------------- per-shard commit oracle

TEST(ShardOrder, FourCoreShardedGeometry)
{
    // Explicit small sharded geometry at 4 cores: 2 banks, 2
    // channels, so every shard class has more than one member.
    SystemConfig cfg =
        makeDesignConfig(CacheDesign::kCd1, PolicyKind::kAthena);
    cfg.cores = 4;
    cfg.llcBanks = 2;
    cfg.dramChannels = 2;
    checkShardedEquivalence(cfg, stridedMix(4), 16000, 4000,
                            "4c_b2ch2");
}

TEST(ShardOrder, EightCoreShardedGeometry)
{
    SystemConfig cfg =
        makeDesignConfig(CacheDesign::kCd1, PolicyKind::kAthena);
    cfg.cores = 8;
    cfg.llcBanks = 4;
    cfg.dramChannels = 2;
    checkShardedEquivalence(cfg, stridedMix(8), 8000, 2000,
                            "8c_b4ch2");
}

TEST(ShardOrder, SixteenCorePreset)
{
    // The 16-core Fig. 16-style preset (4 banks / 2 channels).
    SystemConfig cfg = makeManyCoreConfig(16);
    ASSERT_GE(cfg.llcBanks, 2u);
    ASSERT_GE(cfg.dramChannels, 2u);
    checkShardedEquivalence(cfg, stridedMix(16), 5000, 1200,
                            "16c_preset");
}

TEST(ShardOrder, ThirtyTwoCorePreset)
{
    // The 32-core preset (8 banks / 4 channels). Small budget: this
    // is the widest engine configuration in the test tree.
    SystemConfig cfg = makeManyCoreConfig(32);
    ASSERT_GE(cfg.llcBanks, 2u);
    ASSERT_GE(cfg.dramChannels, 2u);
    checkShardedEquivalence(cfg, stridedMix(32), 3000, 800,
                            "32c_preset");
}

TEST(ShardOrder, OddShardCountsDivisionDecode)
{
    // Non-pow2 bank and channel counts exercise the reciprocal
    // division decode on every shared access. The seq-vs-par oracle
    // must hold there exactly as on the shift/mask path.
    SystemConfig cfg =
        makeDesignConfig(CacheDesign::kCd1, PolicyKind::kAthena);
    cfg.cores = 4;
    cfg.llcBanks = 3;
    cfg.dramChannels = 3;
    checkShardedEquivalence(cfg, stridedMix(4), 12000, 3000,
                            "4c_b3ch3");
}

TEST(ShardOrder, GeometryMatrixSeqParEquality)
{
    // Every geometry in {1,2,4,8} banks x {1,2,4} channels must
    // satisfy the oracle. (Results differ ACROSS channel counts —
    // bandwidth is per channel — but seq and par must agree within
    // each geometry.)
    SystemConfig base =
        makeDesignConfig(CacheDesign::kCd1, PolicyKind::kAthena);
    base.cores = 4;
    std::vector<WorkloadSpec> mix = stridedMix(4);
    for (unsigned banks : {1u, 2u, 4u, 8u}) {
        for (unsigned channels : {1u, 2u, 4u}) {
            SystemConfig cfg = base;
            cfg.llcBanks = banks;
            cfg.dramChannels = channels;
            std::string ctx = "b" + std::to_string(banks) + "ch" +
                              std::to_string(channels);
            checkShardedEquivalence(cfg, mix, 6000, 1500,
                                    ctx.c_str());
        }
    }
}

// ------------------------------------- bank-count bit-invariance

TEST(ShardOrder, Pow2BankCountIsBitInvariant)
{
    // With pow2 banks the interleave re-labels the monolithic set
    // index without changing any lookup/victim decision, so the
    // entire SimResult is invariant in the bank count. Channels are
    // held fixed (channel count changes aggregate bandwidth).
    SystemConfig base =
        makeDesignConfig(CacheDesign::kCd1, PolicyKind::kAthena);
    base.cores = 4;
    base.dramChannels = 2;
    std::vector<WorkloadSpec> mix = stridedMix(4);

    base.llcBanks = 1;
    EngineRun want = runEngine(base, mix, 16000, 4000, 1);
    for (unsigned banks : {2u, 4u, 8u}) {
        SystemConfig cfg = base;
        cfg.llcBanks = banks;
        std::string ctx = "banks=" + std::to_string(banks);
        EngineRun seq = runEngine(cfg, mix, 16000, 4000, 1);
        expectResultsIdentical(want.res, seq.res, ctx.c_str());
        EngineRun par = runEngine(cfg, mix, 16000, 4000, cfg.cores);
        expectResultsIdentical(want.res, par.res,
                               (ctx + "_par").c_str());
    }
}

// ------------------------------------------- snapshot / resume

TEST(ShardOrder, SnapshotResumeOnShardedGeometry)
{
    // Snapshot-at-warmup under the parallel engine on a sharded
    // geometry, then a parallel resume: both must equal the
    // sequential straight-through run.
    SystemConfig cfg =
        makeDesignConfig(CacheDesign::kCd1, PolicyKind::kAthena);
    cfg.cores = 4;
    cfg.llcBanks = 4;
    cfg.dramChannels = 2;
    std::vector<WorkloadSpec> mix = stridedMix(4);
    constexpr std::uint64_t kMeasured = 16000;
    constexpr std::uint64_t kWarm = 4000;

    EngineRun want = runEngine(cfg, mix, kMeasured, kWarm, 1);

    const std::string path = tmpPath("b4ch2");
    RunPlan snap_plan(kMeasured, kWarm);
    snap_plan.stepThreads = cfg.cores;
    snap_plan.snapshotAfterWarmup = path;
    Simulator source(cfg, mix);
    SimResult via_snapshot = source.run(snap_plan);
    expectResultsIdentical(want.res, via_snapshot, "snap_source");

    RunPlan resume_plan(kMeasured, kWarm);
    resume_plan.stepThreads = cfg.cores;
    Simulator resumed(cfg, mix, path);
    SimResult got = resumed.run(resume_plan);
    expectResultsIdentical(want.res, got, "snap_resume");
    std::remove(path.c_str());
}

TEST(ShardOrder, GeometryMismatchRestoreIsNamedError)
{
    // Restoring a snapshot into a configuration with a different
    // shard geometry must fail with an error that names the
    // mismatched dimension, not a generic config-key complaint.
    SystemConfig cfg =
        makeDesignConfig(CacheDesign::kCd1, PolicyKind::kAthena);
    cfg.cores = 2;
    cfg.llcBanks = 2;
    cfg.dramChannels = 2;
    std::vector<WorkloadSpec> mix = stridedMix(2);

    const std::string path = tmpPath("geom_mismatch");
    RunPlan plan(4000, 1000);
    plan.stepThreads = 1;
    plan.snapshotAfterWarmup = path;
    Simulator source(cfg, mix);
    source.run(plan);

    SystemConfig wrong_banks = cfg;
    wrong_banks.llcBanks = 4;
    try {
        Simulator bad(wrong_banks, mix, path);
        FAIL() << "restore with wrong bank count did not throw";
    } catch (const SnapshotError &e) {
        EXPECT_NE(std::string(e.what()).find(
                      "LLC bank count mismatch"),
                  std::string::npos)
            << e.what();
    }

    SystemConfig wrong_channels = cfg;
    wrong_channels.dramChannels = 4;
    try {
        Simulator bad(wrong_channels, mix, path);
        FAIL() << "restore with wrong channel count did not throw";
    } catch (const SnapshotError &e) {
        EXPECT_NE(std::string(e.what()).find(
                      "DRAM channel count mismatch"),
                  std::string::npos)
            << e.what();
    }
    std::remove(path.c_str());
}

} // namespace
} // namespace athena

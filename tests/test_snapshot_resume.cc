/**
 * @file
 * Snapshot-resume equivalence: resuming from a post-warmup snapshot
 * must reproduce the straight-through run bit-identically — the
 * full SimResult, every counter — across the five pinned golden
 * configurations, finite trace replay that exhausts mid-stream, and
 * a 4-core mix combining synthetic and trace-replay cores.
 */

#include <cstdint>
#include <cstdio>
#include <gtest/gtest.h>
#include <string>
#include <vector>

#include "sim/simulator.hh"
#include "sim/system_config.hh"
#include "trace/trace_file.hh"
#include "trace/workload.hh"
#include "trace/zoo.hh"

namespace athena
{
namespace
{

constexpr std::uint64_t kInstr = 60000;
constexpr std::uint64_t kWarmup = 15000;

std::string
dataPath(const std::string &name)
{
    return std::string(ATHENA_TEST_DATA_DIR) + "/" + name;
}

std::string
tmpPath(const std::string &name)
{
    return testing::TempDir() + "resume_" + name + ".asnp";
}

WorkloadSpec
pickWorkload(const char *substr)
{
    auto workloads = evalWorkloads();
    for (const WorkloadSpec &w : workloads) {
        if (w.name.find(substr) != std::string::npos)
            return w;
    }
    return workloads.front();
}

void
expectSlotEqual(const PrefetcherSlotStats &a,
                const PrefetcherSlotStats &b, const char *ctx,
                unsigned core, unsigned slot)
{
    EXPECT_EQ(a.issued, b.issued) << ctx << " c" << core << " pf"
                                  << slot;
    EXPECT_EQ(a.used, b.used) << ctx << " c" << core << " pf" << slot;
    EXPECT_EQ(a.usedTimely, b.usedTimely)
        << ctx << " c" << core << " pf" << slot;
    EXPECT_EQ(a.uselessEvictions, b.uselessEvictions)
        << ctx << " c" << core << " pf" << slot;
    EXPECT_EQ(a.fillsFromDram, b.fillsFromDram)
        << ctx << " c" << core << " pf" << slot;
    EXPECT_EQ(a.fillsFromDramUnused, b.fillsFromDramUnused)
        << ctx << " c" << core << " pf" << slot;
}

/** Full-SimResult equality: every counter, every core, exact. */
void
expectResultsIdentical(const SimResult &a, const SimResult &b,
                       const char *ctx)
{
    ASSERT_EQ(a.cores.size(), b.cores.size()) << ctx;
    for (unsigned c = 0; c < a.cores.size(); ++c) {
        const SimResult::PerCore &x = a.cores[c];
        const SimResult::PerCore &y = b.cores[c];
        EXPECT_EQ(x.workload, y.workload) << ctx << " c" << c;
        EXPECT_EQ(x.instructions, y.instructions) << ctx << " c" << c;
        EXPECT_EQ(x.cycles, y.cycles) << ctx << " c" << c;
        EXPECT_EQ(x.completedInstructions, y.completedInstructions)
            << ctx << " c" << c;
        EXPECT_EQ(x.streamExhausted, y.streamExhausted)
            << ctx << " c" << c;
        EXPECT_EQ(x.ipc, y.ipc) << ctx << " c" << c;
        EXPECT_EQ(x.loads, y.loads) << ctx << " c" << c;
        EXPECT_EQ(x.stores, y.stores) << ctx << " c" << c;
        EXPECT_EQ(x.branchMispredicts, y.branchMispredicts)
            << ctx << " c" << c;
        EXPECT_EQ(x.llcMisses, y.llcMisses) << ctx << " c" << c;
        EXPECT_EQ(x.llcMissLatency, y.llcMissLatency)
            << ctx << " c" << c;
        for (unsigned s = 0; s < x.pf.size(); ++s)
            expectSlotEqual(x.pf[s], y.pf[s], ctx, c, s);
        EXPECT_EQ(x.ocpPredictions, y.ocpPredictions)
            << ctx << " c" << c;
        EXPECT_EQ(x.ocpCorrect, y.ocpCorrect) << ctx << " c" << c;
        EXPECT_EQ(x.actionHistogram, y.actionHistogram)
            << ctx << " c" << c;
    }
    EXPECT_EQ(a.dram.demandRequests, b.dram.demandRequests) << ctx;
    EXPECT_EQ(a.dram.prefetchRequests, b.dram.prefetchRequests)
        << ctx;
    EXPECT_EQ(a.dram.ocpRequests, b.dram.ocpRequests) << ctx;
    EXPECT_EQ(a.dram.rowHits, b.dram.rowHits) << ctx;
    EXPECT_EQ(a.dram.rowMisses, b.dram.rowMisses) << ctx;
    EXPECT_EQ(a.dram.busBusyCycles, b.dram.busBusyCycles) << ctx;
    EXPECT_EQ(a.busUtilization, b.busUtilization) << ctx;
}

/**
 * The contract under test: straight-through run vs. snapshot at the
 * warmup boundary + resume of the measured window.
 */
void
checkResumeEquivalence(const SystemConfig &cfg,
                       const std::vector<WorkloadSpec> &specs,
                       std::uint64_t measured, std::uint64_t warmup,
                       const char *ctx)
{
    RunPlan plan;
    plan.measured = measured;
    plan.warmup = warmup;

    Simulator straight(cfg, specs);
    SimResult want = straight.run(plan);

    const std::string path = tmpPath(ctx);
    RunPlan snap_plan = plan;
    snap_plan.snapshotAfterWarmup = path;
    Simulator source(cfg, specs);
    SimResult via_snapshot = source.run(snap_plan);
    // Taking the snapshot must not perturb the run that takes it.
    expectResultsIdentical(want, via_snapshot, ctx);

    Simulator resumed(cfg, specs, path);
    SimResult got = resumed.run(plan);
    expectResultsIdentical(want, got, ctx);
    std::remove(path.c_str());
}

void
checkGoldenConfig(CacheDesign design, PolicyKind policy,
                  const char *wl, const char *ctx)
{
    SystemConfig cfg = makeDesignConfig(design, policy);
    checkResumeEquivalence(cfg, {pickWorkload(wl)}, kInstr, kWarmup,
                           ctx);
}

// The same five pinned configurations as test_golden.cc.

TEST(SnapshotResume, Cd1NaiveStream)
{
    checkGoldenConfig(CacheDesign::kCd1, PolicyKind::kNaive,
                      "bwaves", "cd1_naive_stream");
}

TEST(SnapshotResume, Cd1NaiveChase)
{
    checkGoldenConfig(CacheDesign::kCd1, PolicyKind::kNaive, "mcf",
                      "cd1_naive_chase");
}

TEST(SnapshotResume, Cd1AthenaStream)
{
    checkGoldenConfig(CacheDesign::kCd1, PolicyKind::kAthena,
                      "bwaves", "cd1_athena_stream");
}

TEST(SnapshotResume, Cd4AthenaChase)
{
    checkGoldenConfig(CacheDesign::kCd4, PolicyKind::kAthena, "mcf",
                      "cd4_athena_chase");
}

TEST(SnapshotResume, Cd3TlpStream)
{
    checkGoldenConfig(CacheDesign::kCd3, PolicyKind::kTlp, "bwaves",
                      "cd3_tlp_stream");
}

// --------------------------------------------- finite trace replay

TEST(SnapshotResume, FiniteTraceExhaustsMidMeasurement)
{
    // Two looped passes over the checked-in sample: the stream
    // exhausts after the warmup boundary but before the measured
    // budget, so the resumed run must replay the partial window and
    // the exact completed-instruction count.
    SystemConfig cfg =
        makeDesignConfig(CacheDesign::kCd1, PolicyKind::kAthena);
    WorkloadSpec spec = traceWorkloadSpec(
        "sample_loop.x2", dataPath("sample_loop.txt"), 2);
    checkResumeEquivalence(cfg, {spec}, 1000000, 100,
                           "finite_mid_stream");
}

TEST(SnapshotResume, FiniteTraceExhaustsBeforeWarmup)
{
    // The stream ends inside the warmup span: the snapshot is taken
    // at the terminal state and the resumed run is a no-op that
    // must still report identical results.
    SystemConfig cfg =
        makeDesignConfig(CacheDesign::kCd1, PolicyKind::kNaive);
    WorkloadSpec spec = traceWorkloadSpec(
        "sample_loop.x1", dataPath("sample_loop.txt"), 1);
    checkResumeEquivalence(cfg, {spec}, 1000, 5000,
                           "finite_pre_warmup");
}

// --------------------------------------------------- 4-core mixes

TEST(SnapshotResume, FourCoreSyntheticMix)
{
    SystemConfig cfg =
        makeDesignConfig(CacheDesign::kCd1, PolicyKind::kAthena);
    cfg.cores = 4;
    auto workloads = evalWorkloads();
    std::vector<WorkloadSpec> mix = {
        pickWorkload("bwaves"), pickWorkload("mcf"),
        workloads[2 % workloads.size()],
        workloads[5 % workloads.size()]};
    checkResumeEquivalence(cfg, mix, 20000, 6000, "mc_synth");
}

TEST(SnapshotResume, FourCoreMixWithFiniteTraces)
{
    // Mixed synthetic + finite trace-replay cores: two cores
    // exhaust their streams at different times (one before, one
    // after its warmup crossing), exercising the picker-rebuild
    // path for already-retired cores.
    SystemConfig cfg =
        makeDesignConfig(CacheDesign::kCd1, PolicyKind::kNaive);
    cfg.cores = 4;
    std::vector<WorkloadSpec> mix = {
        traceWorkloadSpec("t.a", dataPath("sample_loop.txt"), 1),
        pickWorkload("bwaves"),
        traceWorkloadSpec("t.c", dataPath("sample_mix.bin"), 3),
        pickWorkload("mcf")};
    checkResumeEquivalence(cfg, mix, 20000, 1000, "mc_traces");
}

} // namespace
} // namespace athena

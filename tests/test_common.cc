/**
 * @file
 * Unit tests for the common utilities: types/address arithmetic,
 * RNG determinism, hashing, saturating counters, statistics, and
 * the table printer.
 */


#include <cstdint>
#include <gtest/gtest.h>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "common/fast_mod.hh"
#include "common/hashing.hh"
#include "common/rng.hh"
#include "common/sat_counter.hh"
#include "common/stats.hh"
#include "common/table.hh"
#include "common/types.hh"

namespace athena
{
namespace
{

TEST(Types, LineAndPageArithmetic)
{
    EXPECT_EQ(lineNumber(0), 0u);
    EXPECT_EQ(lineNumber(63), 0u);
    EXPECT_EQ(lineNumber(64), 1u);
    EXPECT_EQ(lineBase(lineNumber(0x12345)), 0x12345ull & ~63ull);
    EXPECT_EQ(pageNumber(4095), 0u);
    EXPECT_EQ(pageNumber(4096), 1u);
    EXPECT_EQ(kLinesPerPage, 64u);
}

TEST(Types, PageLineOffset)
{
    EXPECT_EQ(pageLineOffset(0), 0u);
    EXPECT_EQ(pageLineOffset(64), 1u);
    EXPECT_EQ(pageLineOffset(4096 - 1), 63u);
    EXPECT_EQ(pageLineOffset(4096), 0u);
}

TEST(Rng, DeterministicFromSeed)
{
    Rng a(42), b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1), b(2);
    int equal = 0;
    for (int i = 0; i < 100; ++i) {
        if (a.next() == b.next())
            ++equal;
    }
    EXPECT_LT(equal, 5);
}

TEST(Rng, UniformInUnitInterval)
{
    Rng rng(7);
    double sum = 0.0;
    for (int i = 0; i < 10000; ++i) {
        double u = rng.uniform();
        ASSERT_GE(u, 0.0);
        ASSERT_LT(u, 1.0);
        sum += u;
    }
    EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, BelowRespectsBound)
{
    Rng rng(9);
    for (int i = 0; i < 1000; ++i)
        EXPECT_LT(rng.below(17), 17u);
}

TEST(Rng, ZeroSeedRemapped)
{
    Rng rng(0);
    EXPECT_NE(rng.next(), 0u);
}

TEST(FastMod, MatchesHardwareModuloExactly)
{
    // Moduli mirroring the workload generators: powers of two,
    // odd sizes, footprint-style MB counts, and tiny divisors.
    const std::uint64_t moduli[] = {
        1,       2,          3,      24576,  32768,
        98304,   1u << 20,   4097,   (123ull << 20),
        (48ull << 20) - 1,   6,      999999937ull};
    Rng rng(77);
    for (std::uint64_t m : moduli) {
        FastMod fm(m);
        EXPECT_EQ(fm.divisor(), m);
        for (int i = 0; i < 20000; ++i) {
            std::uint64_t x = rng.next();
            ASSERT_EQ(fm.mod(x), x % m) << "m=" << m << " x=" << x;
        }
        // Edges.
        EXPECT_EQ(fm.mod(0), 0u);
        EXPECT_EQ(fm.mod(m), 0u);
        EXPECT_EQ(fm.mod(~0ull), ~0ull % m);
    }
}

TEST(Rng, ChanceThresholdMatchesChanceExactly)
{
    // chanceT(chanceThreshold(p)) must reproduce chance(p)
    // bit-for-bit from the same stream position for any p.
    const double ps[] = {0.0,  1e-9, 0.005, 0.25, 0.3333333,
                         0.5,  0.75, 0.999, 1.0};
    for (double p : ps) {
        Rng a(42), b(42);
        std::uint64_t t = Rng::chanceThreshold(p);
        for (int i = 0; i < 50000; ++i)
            ASSERT_EQ(a.chance(p), b.chanceT(t)) << "p=" << p;
    }
}

TEST(Zipf, SkewsTowardsHead)
{
    ZipfSampler zipf(100, 1.0);
    Rng rng(3);
    std::uint64_t head = 0;
    const int draws = 20000;
    for (int i = 0; i < draws; ++i) {
        if (zipf.sample(rng) < 10)
            ++head;
    }
    // With s=1.0 the first 10 of 100 ranks hold ~56% of the mass.
    EXPECT_GT(static_cast<double>(head) / draws, 0.40);
}

TEST(Zipf, CoversDomain)
{
    ZipfSampler zipf(8, 0.5);
    Rng rng(5);
    std::set<std::uint64_t> seen;
    for (int i = 0; i < 5000; ++i)
        seen.insert(zipf.sample(rng));
    EXPECT_EQ(seen.size(), 8u);
}

TEST(Hashing, Mix64Avalanche)
{
    // Flipping one input bit should flip roughly half the output
    // bits.
    std::uint64_t x = 0x123456789abcdefull;
    int total = 0;
    for (int bit = 0; bit < 64; ++bit) {
        std::uint64_t diff = mix64(x) ^ mix64(x ^ (1ull << bit));
        total += __builtin_popcountll(diff);
    }
    double avg = static_cast<double>(total) / 64.0;
    EXPECT_GT(avg, 24.0);
    EXPECT_LT(avg, 40.0);
}

TEST(Hashing, KeyedHashesIndependent)
{
    int collisions = 0;
    for (std::uint64_t x = 0; x < 1000; ++x) {
        if ((keyedHash(x, 0) & 0xfff) == (keyedHash(x, 1) & 0xfff))
            ++collisions;
    }
    // Expected collisions for 12-bit outputs: ~1000/4096.
    EXPECT_LT(collisions, 20);
}

TEST(SatCounter, SaturatesHigh)
{
    SatCounter<2> c(0);
    for (int i = 0; i < 10; ++i)
        c.increment();
    EXPECT_EQ(c.raw(), 3);
    EXPECT_TRUE(c.taken());
}

TEST(SatCounter, SaturatesLow)
{
    SatCounter<2> c(3);
    for (int i = 0; i < 10; ++i)
        c.decrement();
    EXPECT_EQ(c.raw(), 0);
    EXPECT_FALSE(c.taken());
}

TEST(SatCounter, WeaklyTakenBoundary)
{
    SatCounter<2> c(2);
    EXPECT_TRUE(c.taken());
    c.decrement();
    EXPECT_FALSE(c.taken());
}

TEST(SignedSatCounter, SaturatesBothEnds)
{
    SignedSatCounter<6> w;
    for (int i = 0; i < 100; ++i)
        w.add(1);
    EXPECT_EQ(w.raw(), 31);
    for (int i = 0; i < 200; ++i)
        w.add(-1);
    EXPECT_EQ(w.raw(), -32);
}

TEST(Stats, GeomeanBasic)
{
    EXPECT_DOUBLE_EQ(geomean({4.0, 1.0}), 2.0);
    EXPECT_DOUBLE_EQ(geomean({}), 1.0);
    EXPECT_NEAR(geomean({1.0, 1.0, 8.0}), 2.0, 1e-12);
}

TEST(Stats, MeanBasic)
{
    EXPECT_DOUBLE_EQ(mean({1.0, 2.0, 3.0}), 2.0);
    EXPECT_DOUBLE_EQ(mean({}), 0.0);
}

TEST(Stats, Quartiles)
{
    QuartileSummary s = quartiles({1, 2, 3, 4, 5});
    EXPECT_DOUBLE_EQ(s.min, 1.0);
    EXPECT_DOUBLE_EQ(s.median, 3.0);
    EXPECT_DOUBLE_EQ(s.max, 5.0);
    EXPECT_DOUBLE_EQ(s.q1, 2.0);
    EXPECT_DOUBLE_EQ(s.q3, 4.0);
    EXPECT_DOUBLE_EQ(s.mean, 3.0);
}

TEST(Stats, PercentileInterpolates)
{
    std::vector<double> v = {0.0, 10.0};
    EXPECT_DOUBLE_EQ(percentileSorted(v, 50.0), 5.0);
    EXPECT_DOUBLE_EQ(percentileSorted(v, 0.0), 0.0);
    EXPECT_DOUBLE_EQ(percentileSorted(v, 100.0), 10.0);
}

TEST(Table, PrintsAlignedColumns)
{
    TextTable t("demo");
    t.addRow({"name", "value"});
    t.addRow({"x", TextTable::num(1.5, 2)});
    std::ostringstream os;
    t.print(os);
    std::string out = os.str();
    EXPECT_NE(out.find("demo"), std::string::npos);
    EXPECT_NE(out.find("1.50"), std::string::npos);
}

} // namespace
} // namespace athena

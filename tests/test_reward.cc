/**
 * @file
 * Composite reward framework tests (section 4.3): sign conventions,
 * scale normalization, the uncorrelated subtraction that isolates
 * the agent's impact from workload phase behaviour, and the
 * IPC-only strawman.
 */

#include <cstdint>
#include <gtest/gtest.h>

#include "athena/reward.hh"

namespace athena
{
namespace
{

EpochStats
epoch(std::uint64_t cycles, std::uint64_t loads = 2400,
      std::uint64_t mispredicts = 40, std::uint64_t llc_misses = 80,
      std::uint64_t llc_lat = 20000)
{
    EpochStats s;
    s.instructions = 8000;
    s.cycles = cycles;
    s.loads = loads;
    s.branchMispredicts = mispredicts;
    s.llcMisses = llc_misses;
    s.llcMissLatency = llc_lat;
    return s;
}

TEST(ScaledDelta, SignConvention)
{
    // Fewer cycles than before -> positive (improvement).
    EXPECT_GT(CompositeReward::scaledDelta(10000, 8000, 9000, 8000,
                                           2000.0),
              0.0);
    EXPECT_LT(CompositeReward::scaledDelta(9000, 8000, 10000, 8000,
                                           2000.0),
              0.0);
    EXPECT_DOUBLE_EQ(
        CompositeReward::scaledDelta(9000, 8000, 9000, 8000, 2000.0),
        0.0);
}

TEST(ScaledDelta, NormalizesPerKiloInstruction)
{
    // Same per-KI values with different epoch lengths -> zero.
    EXPECT_DOUBLE_EQ(CompositeReward::scaledDelta(1000, 8000, 2000,
                                                  16000, 100.0),
                     0.0);
}

TEST(ScaledDelta, ClampsPathologicalEpochs)
{
    EXPECT_DOUBLE_EQ(CompositeReward::scaledDelta(
                         1000000, 8000, 0, 8000, 10.0),
                     2.0);
    EXPECT_DOUBLE_EQ(CompositeReward::scaledDelta(
                         0, 8000, 1000000, 8000, 10.0),
                     -2.0);
}

TEST(ScaledDelta, ZeroInstructionEpochsAreNeutral)
{
    EXPECT_DOUBLE_EQ(
        CompositeReward::scaledDelta(100, 0, 50, 8000, 10.0), 0.0);
}

TEST(CompositeReward, CycleImprovementIsPositiveReward)
{
    CompositeReward reward;
    EXPECT_GT(reward.compute(epoch(16000), epoch(12000)), 0.0);
    EXPECT_LT(reward.compute(epoch(12000), epoch(16000)), 0.0);
}

TEST(CompositeReward, PhaseChangeIsCancelledByUncorrelated)
{
    // A "lighter phase" epoch: fewer loads AND proportionally fewer
    // cycles. The uncorrelated component must absorb most of the
    // apparent gain.
    CompositeReward with_uncorr(RewardWeights{}, true);
    CompositeReward without_uncorr(RewardWeights{}, false);

    EpochStats heavy = epoch(16000, 3200, 80);
    EpochStats light = epoch(12000, 2400, 40);

    double r_with = with_uncorr.compute(heavy, light);
    double r_without = without_uncorr.compute(heavy, light);
    EXPECT_LT(r_with, r_without)
        << "the uncorrelated component must subtract the "
           "phase-driven part of the cycle change";
}

TEST(CompositeReward, WeightsScaleComponents)
{
    RewardWeights heavy_cycle;
    heavy_cycle.lambdaCycle = 3.2;
    CompositeReward a{RewardWeights{}, true};
    CompositeReward b{heavy_cycle, true};
    EpochStats prev = epoch(16000);
    EpochStats cur = epoch(12000);
    EXPECT_NEAR(b.correlated(prev, cur),
                2.0 * a.correlated(prev, cur), 1e-9);
}

TEST(CompositeReward, Table3WeightsZeroOutLlcTerms)
{
    // Default weights: lambda_LLCm = lambda_LLCt = 0 (Table 3), so
    // only cycles contribute to the correlated part.
    CompositeReward reward;
    EpochStats prev = epoch(12000, 2400, 40, 500, 90000);
    EpochStats cur = epoch(12000, 2400, 40, 50, 9000);
    EXPECT_DOUBLE_EQ(reward.correlated(prev, cur), 0.0);
}

TEST(CompositeReward, OverallIsCorrMinusUncorr)
{
    CompositeReward reward;
    EpochStats prev = epoch(16000, 3000, 60);
    EpochStats cur = epoch(12000, 2500, 30);
    EXPECT_NEAR(reward.compute(prev, cur),
                reward.correlated(prev, cur) -
                    reward.uncorrelated(prev, cur),
                1e-12);
}

TEST(IpcReward, RelativeIpcChange)
{
    IpcReward reward;
    EXPECT_GT(reward.compute(epoch(16000), epoch(12000)), 0.0);
    EXPECT_LT(reward.compute(epoch(12000), epoch(16000)), 0.0);
    EXPECT_DOUBLE_EQ(reward.compute(epoch(12000), epoch(12000)),
                     0.0);
}

} // namespace
} // namespace athena

/**
 * @file
 * SIMD backend equivalence oracles: every widened kernel must be
 * bit-identical to its scalar reference, and the dispatch rule
 * must degrade cleanly on hosts without AVX2.
 *
 * Layers:
 *  - Dispatch: parseRequest/resolve pinned as pure functions
 *    (auto -> AVX2 iff available, forced-AVX2 falls back to scalar
 *    when unavailable), plus the forceBackend override clamp.
 *  - Kernels: mix64Batch, keyedHashMaskBatch, the POPET pure
 *    four-feature kernel, Pythia's delta-sequence fold, both Q-row
 *    accumulators, and the strided kind-byte scan/collect pair —
 *    each AVX2 result compared element-wise against the scalar
 *    backend and an independent straight-from-the-formula
 *    reference, over ragged randomized batches.
 *  - Components: QVStore lookupBatch/qRowsBatch with a forced
 *    backend vs per-state q(), all storage modes; Pythia's batch
 *    fold vs per-key probes including final memo state.
 *  - Whole-sim: a forced-scalar and a forced-AVX2 run of the
 *    OCP-hot epoch500 config must produce byte-equal SimResults
 *    (skipped, like all AVX2 cases, where the CPU lacks AVX2).
 */

#include <array>
#include <cstdint>
#include <gtest/gtest.h>
#include <string>
#include <vector>

#include "athena/qvstore.hh"
#include "common/hashing.hh"
#include "common/rng.hh"
#include "common/simd.hh"
#include "common/types.hh"
#include "ocp/popet.hh"
#include "prefetch/pythia.hh"
#include "sim/simulator.hh"
#include "sim/system_config.hh"
#include "snapshot/snapshot.hh"
#include "trace/zoo.hh"

namespace athena
{
namespace
{

using simd::Backend;
using simd::Request;

/** Restore the env/CPU dispatch on scope exit, whatever happens. */
struct ForcedBackendGuard
{
    explicit ForcedBackendGuard(Backend b) { simd::forceBackend(b); }
    ~ForcedBackendGuard() { simd::clearForcedBackend(); }
};

bool
avx2()
{
    return simd::avx2Available();
}

// ------------------------------------------------- dispatch rule

TEST(SimdDispatch, ParseRequest)
{
    EXPECT_EQ(simd::parseRequest(nullptr), Request::kAuto);
    EXPECT_EQ(simd::parseRequest(""), Request::kAuto);
    EXPECT_EQ(simd::parseRequest("auto"), Request::kAuto);
    EXPECT_EQ(simd::parseRequest("scalar"), Request::kForceScalar);
    EXPECT_EQ(simd::parseRequest("0"), Request::kForceScalar);
    EXPECT_EQ(simd::parseRequest("avx2"), Request::kForceAvx2);
    EXPECT_EQ(simd::parseRequest("bogus"), Request::kAuto);
}

TEST(SimdDispatch, ResolveFallsBackCleanly)
{
    // auto picks AVX2 exactly when the CPU has it.
    EXPECT_EQ(simd::resolve(Request::kAuto, true), Backend::kAvx2);
    EXPECT_EQ(simd::resolve(Request::kAuto, false),
              Backend::kScalar);
    // Forcing scalar always wins; forcing AVX2 on a host without
    // it degrades to scalar instead of crashing.
    EXPECT_EQ(simd::resolve(Request::kForceScalar, true),
              Backend::kScalar);
    EXPECT_EQ(simd::resolve(Request::kForceAvx2, true),
              Backend::kAvx2);
    EXPECT_EQ(simd::resolve(Request::kForceAvx2, false),
              Backend::kScalar);
}

TEST(SimdDispatch, ForceBackendOverridesAndClamps)
{
    {
        ForcedBackendGuard guard(Backend::kScalar);
        EXPECT_EQ(simd::activeBackend(), Backend::kScalar);
    }
    {
        // Clamped to what the CPU can run.
        ForcedBackendGuard guard(Backend::kAvx2);
        EXPECT_EQ(simd::activeBackend(),
                  avx2() ? Backend::kAvx2 : Backend::kScalar);
    }
}

// ------------------------------------------------- hash kernels

/** Ragged sizes covering empty, singleton, odd, sub-vector-width,
 *  and multi-vector batches. */
constexpr std::array<unsigned, 6> kRaggedSizes = {0, 1, 3, 17, 64,
                                                  129};

std::vector<std::uint64_t>
randomWords(Rng &rng, unsigned n)
{
    std::vector<std::uint64_t> v(n);
    for (std::uint64_t &x : v)
        x = rng.next();
    // Pin the edge values where any backend drift would hide.
    if (n > 0)
        v[0] = 0;
    if (n > 1)
        v[1] = ~0ull;
    return v;
}

TEST(SimdKernels, Mix64BatchBackendsAgree)
{
    Rng rng(0x51bd1);
    for (unsigned n : kRaggedSizes) {
        auto in = randomWords(rng, n);
        std::vector<std::uint64_t> scalar(n), wide(n);
        simd::mix64Batch(Backend::kScalar, in.data(), n,
                         scalar.data());
        for (unsigned i = 0; i < n; ++i)
            EXPECT_EQ(scalar[i], mix64(in[i])) << "n=" << n;
        if (!avx2())
            continue;
        simd::mix64Batch(Backend::kAvx2, in.data(), n, wide.data());
        EXPECT_EQ(scalar, wide) << "n=" << n;
    }
}

TEST(SimdKernels, KeyedHashMaskBatchBackendsAgree)
{
    Rng rng(0x51bd2);
    for (unsigned n : kRaggedSizes) {
        std::vector<std::uint32_t> xs(n);
        for (std::uint32_t &x : xs)
            x = static_cast<std::uint32_t>(rng.next());
        for (std::uint64_t key : {0ull, 3ull, 64ull, 71ull}) {
            const std::uint32_t mask = 63;
            std::vector<std::uint32_t> scalar(n), wide(n);
            simd::keyedHashMaskBatch(Backend::kScalar, xs.data(), n,
                                     key, mask, scalar.data());
            for (unsigned i = 0; i < n; ++i) {
                EXPECT_EQ(scalar[i], keyedHash(xs[i], key) % 64)
                    << "n=" << n << " key=" << key;
            }
            if (!avx2())
                continue;
            simd::keyedHashMaskBatch(Backend::kAvx2, xs.data(), n,
                                     key, mask, wide.data());
            EXPECT_EQ(scalar, wide) << "n=" << n << " key=" << key;
        }
    }
}

TEST(SimdKernels, PopetPureIndicesBackendsAgree)
{
    Rng rng(0x51bd3);
    for (unsigned n : kRaggedSizes) {
        std::vector<std::uint64_t> pcs(n);
        std::vector<Addr> addrs(n);
        for (unsigned i = 0; i < n; ++i) {
            // PC/page reuse like a demand stream.
            pcs[i] = 0x400000 + (rng.next() % 24) * 4;
            addrs[i] = ((rng.next() % 5) << kPageShift) |
                       (rng.next() & (kPageBytes - 1));
        }
        std::vector<std::uint16_t> ref(n * 4), scalar(n * 4),
            wide(n * 4);
        // Memo-free reference kernel (PR 9 path).
        PopetPredictor::pureFeatureIndicesBatch(
            pcs.data(), addrs.data(), n, ref.data());
        PopetPredictor::pureFeatureIndicesBatch(
            Backend::kScalar, pcs.data(), addrs.data(), n,
            scalar.data());
        EXPECT_EQ(ref, scalar) << "n=" << n;
        // Memo + backend variant (the plane's production path):
        // same outputs for any backend and any memo state,
        // including a memo warmed by a different stream.
        for (bool warm : {false, true}) {
            PopetPredictor::PureBatchMemo ms, mw;
            if (warm && n > 0) {
                std::vector<std::uint16_t> junk(n * 4);
                PopetPredictor::pureFeatureIndicesBatch(
                    addrs.data(), pcs.data(), n, junk.data(), ms);
                PopetPredictor::pureFeatureIndicesBatch(
                    addrs.data(), pcs.data(), n, junk.data(), mw);
            }
            std::vector<std::uint16_t> memo_scalar(n * 4);
            PopetPredictor::pureFeatureIndicesBatch(
                Backend::kScalar, pcs.data(), addrs.data(), n,
                memo_scalar.data(), ms);
            EXPECT_EQ(ref, memo_scalar) << "n=" << n
                                        << " warm=" << warm;
            if (avx2()) {
                std::vector<std::uint16_t> memo_wide(n * 4);
                PopetPredictor::pureFeatureIndicesBatch(
                    Backend::kAvx2, pcs.data(), addrs.data(), n,
                    memo_wide.data(), mw);
                EXPECT_EQ(ref, memo_wide)
                    << "n=" << n << " warm=" << warm;
            }
        }
        if (!avx2())
            continue;
        PopetPredictor::pureFeatureIndicesBatch(
            Backend::kAvx2, pcs.data(), addrs.data(), n,
            wide.data());
        EXPECT_EQ(ref, wide) << "n=" << n;
    }
}

TEST(SimdKernels, DeltaSeqFoldBackendsAgree)
{
    Rng rng(0x51bd4);
    for (unsigned n : kRaggedSizes) {
        std::vector<std::uint32_t> keys(n);
        for (std::uint32_t &k : keys)
            k = static_cast<std::uint32_t>(rng.next());
        if (n > 0)
            keys[0] = 0;
        if (n > 1)
            keys[1] = ~0u; // all deltas -1
        std::vector<std::uint64_t> scalar(n), wide(n);
        simd::deltaSeqFoldBatch(Backend::kScalar, keys.data(), n,
                                scalar.data());
        for (unsigned i = 0; i < n; ++i) {
            EXPECT_EQ(scalar[i],
                      PythiaPrefetcher::deltaSeqHash(keys[i]))
                << "n=" << n << " i=" << i;
        }
        if (!avx2())
            continue;
        simd::deltaSeqFoldBatch(Backend::kAvx2, keys.data(), n,
                                wide.data());
        EXPECT_EQ(scalar, wide) << "n=" << n;
    }
}

// ------------------------------------------------- accumulators

TEST(SimdKernels, AccumulateRowsBackendsAgree)
{
    constexpr unsigned kRows = 64;
    Rng rng(0x51bd5);
    for (unsigned actions : {1u, 3u, 4u, 7u, 8u}) {
        std::vector<double> planeF(kRows * actions);
        std::vector<std::int8_t> planeI(kRows * actions);
        for (double &v : planeF)
            v = static_cast<double>(
                    static_cast<std::int64_t>(rng.next() % 2001) -
                    1000) /
                16.0;
        for (std::int8_t &v : planeI)
            v = static_cast<std::int8_t>(rng.next());
        for (unsigned n : kRaggedSizes) {
            std::vector<std::uint32_t> rows(n);
            for (std::uint32_t &r : rows)
                r = static_cast<std::uint32_t>(rng.next() % kRows);
            std::vector<double> accS(n * actions, 0.25);
            std::vector<double> accW = accS;
            simd::accumulateRowsF64(Backend::kScalar, planeF.data(),
                                    rows.data(), n, actions,
                                    accS.data());
            simd::accumulateRowsI8(Backend::kScalar, planeI.data(),
                                   rows.data(), n, actions, 16.0,
                                   accS.data());
            for (unsigned i = 0; i < n; ++i) {
                for (unsigned a = 0; a < actions; ++a) {
                    double want =
                        0.25 + planeF[rows[i] * actions + a] +
                        static_cast<double>(
                            planeI[rows[i] * actions + a]) /
                            16.0;
                    EXPECT_EQ(accS[i * actions + a], want)
                        << "n=" << n << " actions=" << actions;
                }
            }
            if (!avx2())
                continue;
            simd::accumulateRowsF64(Backend::kAvx2, planeF.data(),
                                    rows.data(), n, actions,
                                    accW.data());
            simd::accumulateRowsI8(Backend::kAvx2, planeI.data(),
                                   rows.data(), n, actions, 16.0,
                                   accW.data());
            EXPECT_EQ(accS, accW)
                << "n=" << n << " actions=" << actions;
        }
    }
}

// ------------------------------------------------- strided scans

TEST(SimdKernels, StridedScanAndCollectBackendsAgree)
{
    constexpr unsigned kStride = 24;
    constexpr unsigned kLen = 300;
    Rng rng(0x51bd6);
    for (int density = 0; density < 4; ++density) {
        std::vector<unsigned char> buf(kLen * kStride, 0);
        std::vector<unsigned> loads;
        for (unsigned i = 0; i < kLen; ++i) {
            // Vary the load density from sparse to every record;
            // non-kind bytes are noise the gather must mask off.
            bool is_load = (rng.next() & 3u) <=
                           static_cast<unsigned>(density);
            buf[i * kStride + 16] = is_load ? 1 : 2;
            buf[i * kStride + 17] =
                static_cast<unsigned char>(rng.next());
            if (is_load)
                loads.push_back(i);
        }
        const unsigned char *kinds = buf.data() + 16;
        for (Backend b : {Backend::kScalar, Backend::kAvx2}) {
            if (b == Backend::kAvx2 && !avx2())
                continue;
            // scan: first match from every starting point.
            for (unsigned start = 0; start < kLen; start += 7) {
                unsigned want = start;
                while (want < kLen &&
                       buf[want * kStride + 16] != 1)
                    ++want;
                EXPECT_EQ(simd::scanStridedByteEq(b, kinds, kStride,
                                                  start, kLen, 1),
                          want)
                    << "density=" << density << " start=" << start;
            }
            // collect: quota cuts mid-span, resume picks up the
            // remainder exactly where the scalar loop would.
            for (unsigned quota : {1u, 5u, 32u, 1000u}) {
                unsigned pos = 0;
                std::vector<std::uint16_t> got;
                std::array<std::uint16_t, 1000> out;
                while (pos < kLen) {
                    unsigned c = simd::collectStridedByteEq(
                        b, kinds, kStride, &pos, kLen, 1,
                        out.data(), quota);
                    for (unsigned i = 0; i < c; ++i)
                        got.push_back(out[i]);
                    if (c < quota)
                        break; // window exhausted
                    // Quota filled: pos must sit one past the last
                    // accepted match.
                    ASSERT_GT(c, 0u);
                    EXPECT_EQ(pos, out[c - 1] + 1u);
                }
                ASSERT_EQ(got.size(), loads.size())
                    << "density=" << density << " quota=" << quota;
                for (unsigned i = 0; i < got.size(); ++i)
                    EXPECT_EQ(got[i], loads[i]);
            }
        }
    }
}

// ------------------------------------------------- components

void
qvBackendMatrixMatchesScalar(QVStoreParams params)
{
    // The same teaching sequence lands the same entries in every
    // store (updates are backend-independent).
    auto teach = [&](QVStore &qv) {
        Rng rng(0xabcdef);
        for (int i = 0; i < 500; ++i) {
            auto s = static_cast<std::uint32_t>(rng.next());
            auto s2 = static_cast<std::uint32_t>(rng.next());
            qv.update(s, s & 3, (rng.next() % 7) - 3.0, s2, s2 & 3);
        }
    };
    for (Backend b : {Backend::kScalar, Backend::kAvx2}) {
        if (b == Backend::kAvx2 && !avx2())
            continue;
        ForcedBackendGuard guard(b);
        QVStore qv(params);
        EXPECT_EQ(qv.simdBackend(), b);
        teach(qv);
        Rng rng(0x77aa);
        const unsigned actions = qv.params().actions;
        for (unsigned n : kRaggedSizes) {
            std::vector<std::uint32_t> states(n);
            for (std::uint32_t &s : states) {
                s = static_cast<std::uint32_t>(rng.next());
                if (rng.next() & 1)
                    s &= 0xfff; // in-memo packed states too
            }
            std::vector<double> got(n * actions, -1.0);
            qv.lookupBatch(states.data(), n, got.data());
            for (unsigned i = 0; i < n; ++i) {
                for (unsigned a = 0; a < actions; ++a) {
                    EXPECT_EQ(got[i * actions + a],
                              qv.q(states[i], a))
                        << simd::backendName(b) << " n=" << n
                        << " i=" << i << " a=" << a;
                }
            }
            std::vector<std::uint32_t> rows(n * params.planes);
            qv.qRowsBatch(states.data(), n, rows.data());
            for (unsigned i = 0; i < n; ++i) {
                std::vector<double> onecol(actions);
                qv.qAllActions(states[i], onecol.data());
                for (unsigned a = 0; a < actions; ++a) {
                    EXPECT_EQ(onecol[a], qv.q(states[i], a));
                }
            }
            // Row indices are pure: batch rows must equal a
            // scalar-backend twin's.
            simd::forceBackend(Backend::kScalar);
            QVStore twin(params);
            simd::forceBackend(b);
            std::vector<std::uint32_t> ref(n * params.planes);
            twin.qRowsBatch(states.data(), n, ref.data());
            EXPECT_EQ(rows, ref)
                << simd::backendName(b) << " n=" << n;
        }
    }
}

TEST(SimdQVStore, LookupBatchBackendMatrixFloat)
{
    qvBackendMatrixMatchesScalar(QVStoreParams{});
}

TEST(SimdQVStore, LookupBatchBackendMatrixQuantized)
{
    QVStoreParams p;
    p.quantized = true;
    qvBackendMatrixMatchesScalar(p);
}

TEST(SimdQVStore, LookupBatchBackendMatrixNoMemo)
{
    QVStoreParams p;
    p.memoizeRows = false;
    qvBackendMatrixMatchesScalar(p);
}

TEST(SimdQVStore, NonPowerOfTwoRowsStayScalarAndCorrect)
{
    QVStoreParams p;
    p.rows = 48; // not a power of two: wide row path must not run
    for (Backend b : {Backend::kScalar, Backend::kAvx2}) {
        if (b == Backend::kAvx2 && !avx2())
            continue;
        ForcedBackendGuard guard(b);
        QVStore qv(p);
        Rng rng(0x9001);
        for (unsigned n : kRaggedSizes) {
            std::vector<std::uint32_t> states(n);
            for (std::uint32_t &s : states)
                s = static_cast<std::uint32_t>(rng.next());
            std::vector<double> got(n * p.actions, -1.0);
            qv.lookupBatch(states.data(), n, got.data());
            for (unsigned i = 0; i < n; ++i) {
                for (unsigned a = 0; a < p.actions; ++a) {
                    EXPECT_EQ(got[i * p.actions + a],
                              qv.q(states[i], a));
                }
            }
        }
    }
}

TEST(SimdPythia, DeltaSeqHashBatchBackendMatrix)
{
    Rng rng(0x51bd7);
    for (Backend b : {Backend::kScalar, Backend::kAvx2}) {
        if (b == Backend::kAvx2 && !avx2())
            continue;
        ForcedBackendGuard guard(b);
        PythiaPrefetcher wide(42);
        PythiaPrefetcher probe(42);
        // probe stays on the sequential per-key path regardless of
        // backend by feeding batches of one.
        for (unsigned n : kRaggedSizes) {
            std::vector<std::uint32_t> keys(n);
            for (std::uint32_t &k : keys) {
                // Heavy key reuse exercises memo hits.
                k = static_cast<std::uint32_t>(rng.next() % 37) *
                    0x01010101u;
            }
            std::vector<std::uint64_t> got(n), want(n);
            wide.deltaSeqHashBatch(keys.data(), n, got.data());
            for (unsigned i = 0; i < n; ++i)
                probe.deltaSeqHashBatch(&keys[i], 1, &want[i]);
            EXPECT_EQ(got, want)
                << simd::backendName(b) << " n=" << n;
            for (unsigned i = 0; i < n; ++i) {
                EXPECT_EQ(got[i],
                          PythiaPrefetcher::deltaSeqHash(keys[i]));
            }
        }
    }
}

// ------------------------------------------------- whole-sim A/B

WorkloadSpec
pickWorkload(const char *substr)
{
    auto workloads = evalWorkloads();
    for (const WorkloadSpec &w : workloads) {
        if (w.name.find(substr) != std::string::npos)
            return w;
    }
    return workloads.front();
}

SimResult
runForced(Backend b, const SystemConfig &cfg,
          const std::vector<WorkloadSpec> &specs,
          const RunPlan &plan)
{
    ForcedBackendGuard guard(b);
    Simulator sim(cfg, specs);
    return sim.run(plan);
}

void
expectResultsIdentical(const SimResult &a, const SimResult &b,
                       const char *ctx)
{
    ASSERT_EQ(a.cores.size(), b.cores.size()) << ctx;
    for (unsigned c = 0; c < a.cores.size(); ++c) {
        const SimResult::PerCore &x = a.cores[c];
        const SimResult::PerCore &y = b.cores[c];
        EXPECT_EQ(x.instructions, y.instructions) << ctx << " c" << c;
        EXPECT_EQ(x.cycles, y.cycles) << ctx << " c" << c;
        EXPECT_EQ(x.ipc, y.ipc) << ctx << " c" << c;
        EXPECT_EQ(x.loads, y.loads) << ctx << " c" << c;
        EXPECT_EQ(x.stores, y.stores) << ctx << " c" << c;
        EXPECT_EQ(x.branchMispredicts, y.branchMispredicts)
            << ctx << " c" << c;
        EXPECT_EQ(x.llcMisses, y.llcMisses) << ctx << " c" << c;
        EXPECT_EQ(x.llcMissLatency, y.llcMissLatency)
            << ctx << " c" << c;
        EXPECT_EQ(x.ocpPredictions, y.ocpPredictions)
            << ctx << " c" << c;
        EXPECT_EQ(x.ocpCorrect, y.ocpCorrect) << ctx << " c" << c;
        EXPECT_EQ(x.actionHistogram, y.actionHistogram)
            << ctx << " c" << c;
        for (unsigned s = 0; s < x.pf.size(); ++s) {
            EXPECT_EQ(x.pf[s].issued, y.pf[s].issued)
                << ctx << " c" << c << " pf" << s;
            EXPECT_EQ(x.pf[s].used, y.pf[s].used)
                << ctx << " c" << c << " pf" << s;
        }
    }
    EXPECT_EQ(a.dram.demandRequests, b.dram.demandRequests) << ctx;
    EXPECT_EQ(a.dram.prefetchRequests, b.dram.prefetchRequests)
        << ctx;
    EXPECT_EQ(a.dram.rowHits, b.dram.rowHits) << ctx;
    EXPECT_EQ(a.dram.busBusyCycles, b.dram.busBusyCycles) << ctx;
    EXPECT_EQ(a.busUtilization, b.busUtilization) << ctx;
}

TEST(SimdSim, Cd1AthenaEpoch500BackendsIdentical)
{
    if (!avx2())
        GTEST_SKIP() << "host lacks AVX2";
    SystemConfig cfg =
        makeDesignConfig(CacheDesign::kCd1, PolicyKind::kAthena);
    cfg.epochInstructions = 500;
    RunPlan plan(60000, 5000);
    SimResult scalar = runForced(Backend::kScalar, cfg,
                                 {pickWorkload("bwaves")}, plan);
    SimResult wide = runForced(Backend::kAvx2, cfg,
                               {pickWorkload("bwaves")}, plan);
    expectResultsIdentical(scalar, wide, "cd1_athena_epoch500");
}

TEST(SimdSim, Cd4AthenaChaseBackendsIdentical)
{
    // IPCP (L1D) + Pythia (L2C) + POPET: covers the prefetcher
    // trigger-path feed as well as the OCP plane.
    if (!avx2())
        GTEST_SKIP() << "host lacks AVX2";
    SystemConfig cfg =
        makeDesignConfig(CacheDesign::kCd4, PolicyKind::kAthena);
    RunPlan plan(60000, 5000);
    SimResult scalar = runForced(Backend::kScalar, cfg,
                                 {pickWorkload("mcf")}, plan);
    SimResult wide = runForced(Backend::kAvx2, cfg,
                               {pickWorkload("mcf")}, plan);
    expectResultsIdentical(scalar, wide, "cd4_athena_chase");
}

TEST(SimdSim, Cd3AthenaBackendsIdentical)
{
    // SMS (L2C) in the mix: region-key memo priming covered.
    if (!avx2())
        GTEST_SKIP() << "host lacks AVX2";
    SystemConfig cfg =
        makeDesignConfig(CacheDesign::kCd3, PolicyKind::kAthena);
    RunPlan plan(40000, 4000);
    SimResult scalar = runForced(Backend::kScalar, cfg,
                                 {pickWorkload("bwaves")}, plan);
    SimResult wide = runForced(Backend::kAvx2, cfg,
                               {pickWorkload("bwaves")}, plan);
    expectResultsIdentical(scalar, wide, "cd3_athena");
}

} // namespace
} // namespace athena

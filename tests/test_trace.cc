/**
 * @file
 * Tests for the workload substrate: determinism, zoo population
 * structure, pattern properties (including the regression tests for
 * the short-cycle pointer chase and the phase-state persistence
 * bugs), and a parameterized sanity sweep over all 100 evaluation
 * workloads.
 */


#include <cstddef>
#include <gtest/gtest.h>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "trace/mixes.hh"
#include "trace/workload.hh"
#include "trace/zoo.hh"

namespace athena
{
namespace
{

WorkloadSpec
simpleSpec(Pattern pattern, double hot_frac = 0.0)
{
    WorkloadSpec spec;
    spec.name = "test";
    spec.seed = 1234;
    PhaseParams p;
    p.pattern = pattern;
    p.instructions = 100000;
    p.footprintBytes = 128ull << 20;
    p.hotFrac = hot_frac;
    p.loadFrac = 0.5;
    spec.phases = {p};
    return spec;
}

TEST(Workload, DeterministicReplay)
{
    auto spec = simpleSpec(Pattern::kIrregular, 0.3);
    SyntheticWorkload a(spec), b(spec);
    for (int i = 0; i < 5000; ++i) {
        TraceRecord ra = a.next();
        TraceRecord rb = b.next();
        EXPECT_EQ(ra.pc, rb.pc);
        EXPECT_EQ(ra.addr, rb.addr);
        EXPECT_EQ(static_cast<int>(ra.kind),
                  static_cast<int>(rb.kind));
    }
}

TEST(Workload, NextBatchMatchesNextExactly)
{
    // The per-pattern batch kernels must replay the pull-at-a-time
    // stream record for record — across every pattern, with phase
    // boundaries landing inside batches (short phases below) and
    // ragged batch sizes.
    const Pattern patterns[] = {
        Pattern::kStream,    Pattern::kStride,
        Pattern::kChase,     Pattern::kIrregular,
        Pattern::kGraph,     Pattern::kCompute,
        Pattern::kRegionSpatial};
    for (Pattern pat : patterns) {
        auto spec = simpleSpec(pat, 0.4);
        spec.phases[0].instructions = 777; // boundary mid-batch
        PhaseParams second = spec.phases[0];
        second.pattern = pat == Pattern::kStream
                             ? Pattern::kIrregular
                             : Pattern::kStream;
        second.instructions = 501;
        spec.phases.push_back(second);

        SyntheticWorkload a(spec), b(spec);
        const std::size_t batch_sizes[] = {1, 3, 256, 64, 1000, 7};
        std::vector<TraceRecord> buf(1000);
        for (std::size_t n : batch_sizes) {
            ASSERT_EQ(b.nextBatch(buf.data(), n), n);
            for (std::size_t i = 0; i < n; ++i) {
                TraceRecord ra = a.next();
                const TraceRecord &rb = buf[i];
                ASSERT_EQ(static_cast<int>(ra.kind),
                          static_cast<int>(rb.kind));
                ASSERT_EQ(ra.pc, rb.pc);
                ASSERT_EQ(ra.addr, rb.addr);
                ASSERT_EQ(ra.taken, rb.taken);
                ASSERT_EQ(ra.dependsOnPrevLoad,
                          rb.dependsOnPrevLoad);
                ASSERT_EQ(ra.criticalConsumer, rb.criticalConsumer);
            }
        }
    }
}

TEST(Workload, NextBatchMatchesNextWithZeroInstructionPhase)
{
    // Degenerate spec: a zero-instruction phase. next() decrements
    // its counter through zero (the phase behaves as if it had 2^64
    // instructions); the batch path must mirror that wrap, not skip
    // the phase.
    auto spec = simpleSpec(Pattern::kStream, 0.2);
    spec.phases[0].instructions = 100;
    PhaseParams empty = spec.phases[0];
    empty.pattern = Pattern::kIrregular;
    empty.instructions = 0;
    spec.phases.push_back(empty);

    SyntheticWorkload a(spec), b(spec);
    std::vector<TraceRecord> buf(64);
    for (int r = 0; r < 10; ++r) {
        ASSERT_EQ(b.nextBatch(buf.data(), 64), 64u);
        for (std::size_t i = 0; i < 64; ++i) {
            TraceRecord ra = a.next();
            ASSERT_EQ(static_cast<int>(ra.kind),
                      static_cast<int>(buf[i].kind));
            ASSERT_EQ(ra.pc, buf[i].pc);
            ASSERT_EQ(ra.addr, buf[i].addr);
        }
    }
}

TEST(Workload, DefaultNextBatchShimFillsFromNext)
{
    // A generator that only implements next() batches through the
    // base-class shim.
    class Counting : public WorkloadGenerator
    {
      public:
        void reset() override { n = 0; }
        TraceRecord
        next() override
        {
            TraceRecord r;
            r.pc = ++n;
            return r;
        }
        std::uint64_t n = 0;
    };
    Counting gen;
    TraceRecord buf[10];
    ASSERT_EQ(gen.nextBatch(buf, 10), 10u);
    for (std::size_t i = 0; i < 10; ++i)
        EXPECT_EQ(buf[i].pc, i + 1);
}

TEST(Workload, DefaultNextBatchShimZeroRequestConsumesNothing)
{
    // n == 0 is defined for every generator: return 0, consume no
    // records — the shim must not touch next() (nor the output
    // pointer, which may legally be null for an empty request).
    class Counting : public WorkloadGenerator
    {
      public:
        void reset() override { n = 0; }
        TraceRecord
        next() override
        {
            TraceRecord r;
            r.pc = ++n;
            return r;
        }
        std::uint64_t n = 0;
    };
    Counting gen;
    EXPECT_EQ(gen.nextBatch(nullptr, 0), 0u);
    EXPECT_EQ(gen.n, 0u) << "shim consumed records for n == 0";
    // The stream continues exactly where it would have.
    TraceRecord buf[3];
    ASSERT_EQ(gen.nextBatch(buf, 3), 3u);
    EXPECT_EQ(buf[0].pc, 1u);
    EXPECT_EQ(gen.nextBatch(buf, 0), 0u);
    ASSERT_EQ(gen.nextBatch(buf, 2), 2u);
    EXPECT_EQ(buf[0].pc, 4u);
}

TEST(Workload, DefaultNextBatchShimRaggedRequestsStaySequential)
{
    // Back-to-back ragged request sizes through the shim splice
    // into one gapless stream — and an infinite generator's shim
    // never returns short (a short return is reserved for
    // end-of-stream by the nextBatch contract).
    class Counting : public WorkloadGenerator
    {
      public:
        void reset() override { n = 0; }
        TraceRecord
        next() override
        {
            TraceRecord r;
            r.pc = ++n;
            return r;
        }
        std::uint64_t n = 0;
    };
    Counting gen;
    TraceRecord buf[300];
    std::uint64_t expect = 1;
    for (std::size_t n : {1u, 3u, 0u, 256u, 7u, 300u, 2u}) {
        ASSERT_EQ(gen.nextBatch(buf, n), n);
        for (std::size_t i = 0; i < n; ++i, ++expect)
            ASSERT_EQ(buf[i].pc, expect);
    }
}

TEST(Workload, ResetRestartsStream)
{
    auto spec = simpleSpec(Pattern::kStream);
    SyntheticWorkload w(spec);
    std::vector<Addr> first;
    for (int i = 0; i < 100; ++i)
        first.push_back(w.next().addr);
    w.reset();
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(w.next().addr, first[i]);
}

TEST(Workload, StreamAdvancesMonotonically)
{
    auto spec = simpleSpec(Pattern::kStream);
    SyntheticWorkload w(spec);
    Addr last = 0;
    bool first = true;
    for (int i = 0; i < 2000; ++i) {
        TraceRecord r = w.next();
        if (r.kind != InstrKind::kLoad)
            continue;
        if (!first) {
            EXPECT_GT(r.addr, last);
        }
        last = r.addr;
        first = false;
    }
}

TEST(Workload, ChaseDoesNotCollapseIntoShortCycle)
{
    // Regression: a hash-of-current-address walk collapses into a
    // ~sqrt(N) cycle that fits in the L2. The LCG-permutation walk
    // must keep producing fresh lines.
    auto spec = simpleSpec(Pattern::kChase);
    SyntheticWorkload w(spec);
    std::set<Addr> lines;
    unsigned loads = 0;
    while (loads < 20000) {
        TraceRecord r = w.next();
        if (r.kind != InstrKind::kLoad)
            continue;
        ++loads;
        lines.insert(lineNumber(r.addr));
    }
    // At least 95% of chase targets must be distinct lines.
    EXPECT_GT(lines.size(), 19000u);
}

TEST(Workload, ChaseLoadsAreDependent)
{
    auto spec = simpleSpec(Pattern::kChase);
    SyntheticWorkload w(spec);
    unsigned dependent = 0, loads = 0;
    for (int i = 0; i < 10000; ++i) {
        TraceRecord r = w.next();
        if (r.kind == InstrKind::kLoad) {
            ++loads;
            if (r.dependsOnPrevLoad)
                ++dependent;
        }
    }
    EXPECT_EQ(dependent, loads); // hotFrac = 0 here
}

TEST(Workload, PhaseStatePersistsAcrossReentry)
{
    // Regression: with per-entry cursor resets, a re-entered stream
    // phase re-touches the same prefix and the caches warm up.
    WorkloadSpec spec;
    spec.name = "phased";
    spec.seed = 7;
    PhaseParams a;
    a.pattern = Pattern::kStream;
    a.instructions = 1000;
    a.footprintBytes = 512ull << 20;
    a.hotFrac = 0.0;
    a.loadFrac = 1.0;
    a.branchFrac = 0.0;
    a.storeFrac = 0.0;
    PhaseParams b = a;
    b.pattern = Pattern::kIrregular;
    spec.phases = {a, b};

    SyntheticWorkload w(spec);
    std::set<Addr> stream_lines;
    for (int i = 0; i < 8000; ++i) {
        TraceRecord r = w.next();
        if (r.kind == InstrKind::kLoad && (r.addr >> 40) ==
            [&] {
                static Addr base_hi = r.addr >> 40;
                return base_hi;
            }()) {
        }
    }
    // Directly verify: first phase visit touches N distinct lines;
    // the second visit continues, so total distinct ~2N.
    SyntheticWorkload w2(spec);
    auto count_phase_lines = [&](std::set<Addr> &acc) {
        for (int i = 0; i < 1000; ++i) {
            TraceRecord r = w2.next();
            if (r.kind == InstrKind::kLoad)
                acc.insert(lineNumber(r.addr));
        }
    };
    std::set<Addr> pass1, pass2;
    count_phase_lines(pass1); // phase a, first entry
    std::set<Addr> skip;
    count_phase_lines(skip);  // phase b
    count_phase_lines(pass2); // phase a, second entry
    // The second entry must touch (almost) entirely new addresses.
    unsigned overlap = 0;
    for (Addr line : pass2) {
        if (pass1.count(line))
            ++overlap;
    }
    EXPECT_LT(overlap, pass2.size() / 4);
}

TEST(Workload, BranchNoiseProducesBothOutcomes)
{
    auto spec = simpleSpec(Pattern::kCompute, 0.9);
    spec.phases[0].branchFrac = 0.5;
    spec.phases[0].loadFrac = 0.2;
    spec.phases[0].branchNoise = 1.0;
    SyntheticWorkload w(spec);
    unsigned taken = 0, branches = 0;
    for (int i = 0; i < 20000; ++i) {
        TraceRecord r = w.next();
        if (r.kind == InstrKind::kBranch) {
            ++branches;
            taken += r.taken ? 1 : 0;
        }
    }
    ASSERT_GT(branches, 1000u);
    double rate = static_cast<double>(taken) / branches;
    EXPECT_GT(rate, 0.4);
    EXPECT_LT(rate, 0.6);
}

TEST(Zoo, PopulationStructure)
{
    auto workloads = evalWorkloads();
    ASSERT_EQ(workloads.size(), 100u);
    std::map<Suite, unsigned> counts;
    std::set<std::string> names;
    for (const auto &spec : workloads) {
        counts[spec.suite]++;
        names.insert(spec.name);
    }
    EXPECT_EQ(names.size(), 100u) << "duplicate workload names";
    EXPECT_EQ(counts[Suite::kSpec06], 29u);
    EXPECT_EQ(counts[Suite::kSpec17], 20u);
    EXPECT_EQ(counts[Suite::kParsec], 13u);
    EXPECT_EQ(counts[Suite::kLigra], 13u);
    EXPECT_EQ(counts[Suite::kCvp], 25u);
}

TEST(Zoo, TuningSetDisjointFromEval)
{
    auto eval = evalWorkloads();
    auto tuning = tuningWorkloads();
    EXPECT_EQ(tuning.size(), 20u);
    std::set<std::string> eval_names;
    for (const auto &s : eval)
        eval_names.insert(s.name);
    for (const auto &s : tuning) {
        EXPECT_EQ(s.suite, Suite::kTuning);
        EXPECT_FALSE(eval_names.count(s.name)) << s.name;
    }
}

TEST(Zoo, Dpc4GroupsPresent)
{
    auto dpc4 = dpc4Workloads();
    EXPECT_EQ(dpc4.size(), 24u);
    for (const auto &s : dpc4)
        EXPECT_EQ(s.suite, Suite::kDpc4);
}

TEST(Zoo, FindWorkloadThrowsOnUnknown)
{
    auto workloads = evalWorkloads();
    EXPECT_THROW(findWorkload(workloads, "no_such_trace"),
                 std::out_of_range);
    EXPECT_EQ(findWorkload(workloads, "605.mcf_s-1554B").name,
              "605.mcf_s-1554B");
}

TEST(Zoo, FindWorkloadErrorNamesRequestAndNearestCandidates)
{
    // Benches are driven by workload-name strings; a typo'd name
    // must name itself and suggest the nearest real candidates
    // instead of surfacing a bare out_of_range.
    auto workloads = evalWorkloads();
    try {
        findWorkload(workloads, "605.mcf_s-1554");
        FAIL() << "expected out_of_range";
    } catch (const std::out_of_range &e) {
        std::string msg = e.what();
        EXPECT_NE(msg.find("'605.mcf_s-1554'"), std::string::npos)
            << msg;
        EXPECT_NE(msg.find("605.mcf_s-1554B"), std::string::npos)
            << msg;
        EXPECT_NE(msg.find("nearest"), std::string::npos) << msg;
    }
    // Empty candidate lists still produce a useful message.
    try {
        findWorkload({}, "anything");
        FAIL() << "expected out_of_range";
    } catch (const std::out_of_range &e) {
        EXPECT_NE(std::string(e.what()).find("'anything'"),
                  std::string::npos);
    }
}

TEST(Mixes, CategoriesAndDeterminism)
{
    std::vector<std::string> adverse = {"a1", "a2", "a3"};
    std::vector<std::string> friendly = {"f1", "f2"};
    std::vector<std::string> all = {"a1", "a2", "a3", "f1", "f2"};
    auto mixes = buildMixes(adverse, friendly, all, 4, 5, 99);
    ASSERT_EQ(mixes.size(), 15u);
    for (unsigned i = 0; i < 5; ++i) {
        for (const auto &w : mixes[i].workloads)
            EXPECT_EQ(w[0], 'a');
        for (const auto &w : mixes[5 + i].workloads)
            EXPECT_EQ(w[0], 'f');
        EXPECT_EQ(mixes[i].workloads.size(), 4u);
    }
    auto again = buildMixes(adverse, friendly, all, 4, 5, 99);
    for (std::size_t i = 0; i < mixes.size(); ++i)
        EXPECT_EQ(mixes[i].workloads, again[i].workloads);
}

/** Parameterized sanity sweep over the whole zoo. */
class ZooSweep : public ::testing::TestWithParam<WorkloadSpec>
{};

TEST_P(ZooSweep, GeneratorProducesSaneRecords)
{
    SyntheticWorkload w(GetParam());
    unsigned loads = 0, branches = 0;
    for (int i = 0; i < 5000; ++i) {
        TraceRecord r = w.next();
        EXPECT_NE(r.pc, 0u);
        if (r.kind == InstrKind::kLoad) {
            ++loads;
            EXPECT_NE(r.addr, 0u);
        } else if (r.kind == InstrKind::kBranch) {
            ++branches;
        }
    }
    // Every workload is load-bearing and branchy to some degree.
    EXPECT_GT(loads, 500u);
    EXPECT_GT(branches, 100u);
}

INSTANTIATE_TEST_SUITE_P(
    AllEvalWorkloads, ZooSweep,
    ::testing::ValuesIn(evalWorkloads()),
    [](const ::testing::TestParamInfo<WorkloadSpec> &info) {
        std::string name = info.param.name;
        for (char &c : name) {
            if (!std::isalnum(static_cast<unsigned char>(c)))
                c = '_';
        }
        return name;
    });

} // namespace
} // namespace athena

/**
 * @file
 * Coordination policy tests: static policies, HPAC's threshold
 * dynamics and OCP probing, MAB's DUCB arm selection, and TLP's
 * level-restricted filtering.
 */

#include <cstdint>
#include <gtest/gtest.h>

#include "coord/hpac.hh"
#include "coord/mab.hh"
#include "coord/simple.hh"
#include "coord/tlp.hh"

namespace athena
{
namespace
{

EpochStats
makeStats(double pf_acc, double ocp_acc, double bw,
          double pollution = 0.0, double ipc = 0.5)
{
    EpochStats s;
    s.instructions = 8000;
    s.cycles = static_cast<std::uint64_t>(8000 / ipc);
    s.loads = 2000;
    s.branches = 800;
    s.branchMispredicts = 10;
    s.pfIssued[0] = 200;
    s.pfUsed[0] =
        static_cast<std::uint64_t>(200 * pf_acc);
    s.pfIssued[1] = 200;
    s.pfUsed[1] =
        static_cast<std::uint64_t>(200 * pf_acc);
    s.ocpPredictions = 100;
    s.ocpCorrect = static_cast<std::uint64_t>(100 * ocp_acc);
    s.bandwidthUsage = bw;
    s.llcMisses = 100;
    s.pollutionMisses =
        static_cast<std::uint64_t>(100 * pollution);
    s.llcMissLatency = 25000;
    s.dramDemand = 80;
    s.dramPrefetch = 40;
    s.dramOcp = 30;
    return s;
}

TEST(StaticPolicies, ActionHistogramDefaultsToZeros)
{
    // The virtual actionHistogram() hook (which replaced the RTTI
    // probe in Simulator::run) must report all-zeros for policies
    // that do not select among discrete actions.
    auto naive = makeNaivePolicy();
    for (std::uint64_t v : naive->actionHistogram())
        EXPECT_EQ(v, 0u);
    TlpPolicy tlp;
    for (std::uint64_t v : tlp.actionHistogram())
        EXPECT_EQ(v, 0u);
}

TEST(StaticPolicies, DecisionsMatchTheirNames)
{
    auto naive = makeNaivePolicy();
    CoordDecision d = naive->onEpochEnd(EpochStats{});
    EXPECT_TRUE(d.pfEnabled(0));
    EXPECT_TRUE(d.pfEnabled(1));
    EXPECT_TRUE(d.ocpEnable);

    auto off = makeAllOffPolicy();
    d = off->onEpochEnd(EpochStats{});
    EXPECT_FALSE(d.pfEnabled(0));
    EXPECT_FALSE(d.ocpEnable);

    auto pf = makePfOnlyPolicy();
    d = pf->onEpochEnd(EpochStats{});
    EXPECT_TRUE(d.pfEnabled(0));
    EXPECT_FALSE(d.ocpEnable);

    auto ocp = makeOcpOnlyPolicy();
    d = ocp->onEpochEnd(EpochStats{});
    EXPECT_FALSE(d.pfEnabled(0));
    EXPECT_TRUE(d.ocpEnable);
}

TEST(Hpac, RampsDownOnLowAccuracy)
{
    HpacPolicy hpac;
    unsigned initial = hpac.level(0);
    for (int i = 0; i < 10; ++i)
        hpac.onEpochEnd(makeStats(0.1, 0.9, 0.3));
    EXPECT_LT(hpac.level(0), initial);
    EXPECT_EQ(hpac.level(0), 1u) << "should bottom out at min";
}

TEST(Hpac, RampsUpOnHighAccuracyLowPressure)
{
    HpacPolicy hpac;
    for (int i = 0; i < 10; ++i)
        hpac.onEpochEnd(makeStats(0.9, 0.9, 0.3));
    EXPECT_EQ(hpac.level(0), 5u);
    CoordDecision d = hpac.onEpochEnd(makeStats(0.9, 0.9, 0.3));
    EXPECT_DOUBLE_EQ(d.degreeScale[0], 1.0);
}

TEST(Hpac, ThrottlesUnderBandwidthPressureRegardlessOfAccuracy)
{
    HpacPolicy hpac;
    for (int i = 0; i < 10; ++i)
        hpac.onEpochEnd(makeStats(0.95, 0.9, 0.95));
    EXPECT_EQ(hpac.level(0), 1u)
        << "HPAC's global control is accuracy-blind under pressure";
}

TEST(Hpac, GatesOcpOnLowAccuracyAndProbes)
{
    HpacPolicy hpac;
    CoordDecision d = hpac.onEpochEnd(makeStats(0.5, 0.1, 0.3));
    EXPECT_FALSE(d.ocpEnable);
    // Probing re-enables within the probe period.
    bool probed = false;
    for (int i = 0; i < 20; ++i) {
        EpochStats s = makeStats(0.5, 0.0, 0.3);
        s.ocpPredictions = 0; // gated: no feedback
        s.ocpCorrect = 0;
        d = hpac.onEpochEnd(s);
        if (d.ocpEnable)
            probed = true;
    }
    EXPECT_TRUE(probed);
}

TEST(Hpac, HoldsLevelWithoutFeedback)
{
    HpacPolicy hpac;
    unsigned level = hpac.level(0);
    EpochStats s = makeStats(0.0, 0.9, 0.3);
    s.pfIssued[0] = 0;
    s.pfUsed[0] = 0;
    for (int i = 0; i < 5; ++i)
        hpac.onEpochEnd(s);
    EXPECT_EQ(hpac.level(0), level);
}

TEST(Mab, ArmCountMatchesPrefetcherCount)
{
    MabPolicy one(1);
    EXPECT_EQ(one.numArms(), 4u);
    MabPolicy two(2);
    EXPECT_EQ(two.numArms(), 8u);
}

TEST(Mab, ConvergesToBestArm)
{
    MabPolicy mab(1);
    // Synthetic bandit: arm decisions that enable the OCP get
    // higher IPC.
    std::map<bool, double> ipc = {{false, 0.3}, {true, 0.6}};
    CoordDecision current = mab.onEpochEnd(makeStats(0, 0, 0));
    unsigned ocp_picks = 0;
    const unsigned epochs = 3000;
    for (unsigned i = 0; i < epochs; ++i) {
        EpochStats s =
            makeStats(0.5, 0.9, 0.5, 0.0, ipc[current.ocpEnable]);
        current = mab.onEpochEnd(s);
        if (i > epochs / 2 && current.ocpEnable)
            ++ocp_picks;
    }
    EXPECT_GT(ocp_picks, epochs / 2 * 7 / 10)
        << "DUCB should exploit the better arms most of the time";
}

TEST(Mab, TriesEveryArmInitially)
{
    MabPolicy mab(2);
    std::set<unsigned> arms;
    for (int i = 0; i < 16; ++i) {
        mab.onEpochEnd(makeStats(0.5, 0.5, 0.5));
        arms.insert(mab.currentArm());
    }
    EXPECT_EQ(arms.size(), 8u);
}

TEST(Tlp, FiltersOnlyL1dPrefetches)
{
    TlpPolicy tlp;
    // Train: everything at PC 0xF00 goes off-chip.
    for (int i = 0; i < 4000; ++i) {
        tlp.onDemandResolved(0xF00,
                             static_cast<Addr>(i) << kLineShift,
                             true);
    }
    Addr addr = 0x9999000;
    EXPECT_TRUE(
        tlp.filterPrefetch(CacheLevel::kL1D, 0xF00, addr))
        << "predicted-off-chip L1D prefetch must be dropped";
    EXPECT_FALSE(
        tlp.filterPrefetch(CacheLevel::kL2C, 0xF00, addr))
        << "TLP has no control beyond L1D by design";
}

TEST(Tlp, DoesNotFilterOnChipPredictedPrefetches)
{
    TlpPolicy tlp;
    for (int i = 0; i < 4000; ++i) {
        tlp.onDemandResolved(0xE00,
                             static_cast<Addr>(i) << kLineShift,
                             false);
    }
    EXPECT_FALSE(
        tlp.filterPrefetch(CacheLevel::kL1D, 0xE00, 0x8888000));
}

TEST(Tlp, EpochDecisionKeepsEverythingOn)
{
    TlpPolicy tlp;
    CoordDecision d = tlp.onEpochEnd(makeStats(0.5, 0.5, 0.5));
    EXPECT_TRUE(d.pfEnabled(0));
    EXPECT_TRUE(d.ocpEnable);
}

} // namespace
} // namespace athena

/**
 * @file
 * Snapshot smoke check: snapshots a run at the warmup boundary,
 * resumes it, and diffs the full SimResult against the
 * straight-through run — exact counter equality, exit nonzero on
 * any mismatch. Covers a single-core Athena config and a 4-core
 * mix, then exercises the ExperimentRunner warmup-snapshot cache
 * (second sweep must simulate zero warmup instructions and
 * reproduce the first sweep's rows bit-identically).
 *
 * Knobs:
 *  - ATHENA_SIM_INSTR / ATHENA_WARMUP_INSTR  run lengths
 *  - ATHENA_BENCH_JSON   output path
 *                        (default BENCH_snapshot_smoke.json)
 *
 * The cache leg manages its own ATHENA_SNAPSHOT_DIR under the
 * system temp directory and removes it on exit.
 */

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "sim/runner.hh"
#include "sim/simulator.hh"
#include "sim/system_config.hh"
#include "trace/zoo.hh"

namespace
{

using namespace athena;

std::uint64_t
envOr(const char *name, std::uint64_t fallback)
{
    const char *v = std::getenv(name);
    if (!v || !*v)
        return fallback;
    return std::strtoull(v, nullptr, 10);
}

int mismatches = 0;

void
check(bool ok, const std::string &what)
{
    if (!ok) {
        ++mismatches;
        std::cerr << "MISMATCH: " << what << "\n";
    }
}

template <typename T>
void
checkEq(const T &a, const T &b, const std::string &what)
{
    check(a == b, what);
}

/** Exact equality of every counter in two SimResults. */
void
diffResults(const SimResult &a, const SimResult &b,
            const std::string &ctx)
{
    checkEq(a.cores.size(), b.cores.size(), ctx + " core count");
    if (a.cores.size() != b.cores.size())
        return;
    for (unsigned c = 0; c < a.cores.size(); ++c) {
        const SimResult::PerCore &x = a.cores[c];
        const SimResult::PerCore &y = b.cores[c];
        const std::string p = ctx + " c" + std::to_string(c) + " ";
        checkEq(x.instructions, y.instructions, p + "instructions");
        checkEq(x.cycles, y.cycles, p + "cycles");
        checkEq(x.completedInstructions, y.completedInstructions,
                p + "completedInstructions");
        checkEq(x.streamExhausted, y.streamExhausted,
                p + "streamExhausted");
        checkEq(x.ipc, y.ipc, p + "ipc");
        checkEq(x.loads, y.loads, p + "loads");
        checkEq(x.stores, y.stores, p + "stores");
        checkEq(x.branchMispredicts, y.branchMispredicts,
                p + "branchMispredicts");
        checkEq(x.llcMisses, y.llcMisses, p + "llcMisses");
        checkEq(x.llcMissLatency, y.llcMissLatency,
                p + "llcMissLatency");
        for (unsigned s = 0; s < x.pf.size(); ++s) {
            const std::string q = p + "pf" + std::to_string(s) + " ";
            checkEq(x.pf[s].issued, y.pf[s].issued, q + "issued");
            checkEq(x.pf[s].used, y.pf[s].used, q + "used");
            checkEq(x.pf[s].usedTimely, y.pf[s].usedTimely,
                    q + "usedTimely");
            checkEq(x.pf[s].uselessEvictions,
                    y.pf[s].uselessEvictions, q + "uselessEvictions");
            checkEq(x.pf[s].fillsFromDram, y.pf[s].fillsFromDram,
                    q + "fillsFromDram");
            checkEq(x.pf[s].fillsFromDramUnused,
                    y.pf[s].fillsFromDramUnused,
                    q + "fillsFromDramUnused");
        }
        checkEq(x.ocpPredictions, y.ocpPredictions,
                p + "ocpPredictions");
        checkEq(x.ocpCorrect, y.ocpCorrect, p + "ocpCorrect");
        checkEq(x.actionHistogram, y.actionHistogram,
                p + "actionHistogram");
    }
    checkEq(a.dram.demandRequests, b.dram.demandRequests,
            ctx + " dram.demandRequests");
    checkEq(a.dram.prefetchRequests, b.dram.prefetchRequests,
            ctx + " dram.prefetchRequests");
    checkEq(a.dram.ocpRequests, b.dram.ocpRequests,
            ctx + " dram.ocpRequests");
    checkEq(a.dram.rowHits, b.dram.rowHits, ctx + " dram.rowHits");
    checkEq(a.dram.rowMisses, b.dram.rowMisses,
            ctx + " dram.rowMisses");
    checkEq(a.dram.busBusyCycles, b.dram.busBusyCycles,
            ctx + " dram.busBusyCycles");
    checkEq(a.busUtilization, b.busUtilization,
            ctx + " busUtilization");
}

/** Straight-through vs. snapshot-at-warmup + resume. */
void
smokeResume(const SystemConfig &cfg,
            const std::vector<WorkloadSpec> &specs,
            std::uint64_t measured, std::uint64_t warmup,
            const std::string &ctx)
{
    const int before = mismatches;
    RunPlan plan;
    plan.measured = measured;
    plan.warmup = warmup;

    Simulator straight(cfg, specs);
    SimResult want = straight.run(plan);

    const std::string path =
        (std::filesystem::temp_directory_path() /
         ("smoke_" + ctx + ".asnp"))
            .string();
    RunPlan snap_plan = plan;
    snap_plan.snapshotAfterWarmup = path;
    Simulator source(cfg, specs);
    SimResult via = source.run(snap_plan);
    diffResults(want, via, ctx + " (snapshotting run)");

    Simulator resumed(cfg, specs, path);
    SimResult got = resumed.run(plan);
    diffResults(want, got, ctx + " (resumed run)");
    std::filesystem::remove(path);
    std::cout << ctx << ": ipc " << want.ipc() << " resume "
              << (mismatches > before ? "DIFFERS" : "identical")
              << "\n";
}

} // namespace

int
main()
{
    const std::uint64_t instr = envOr("ATHENA_SIM_INSTR", 60000);
    const std::uint64_t warm = envOr("ATHENA_WARMUP_INSTR", 15000);
    const char *json_env = std::getenv("ATHENA_BENCH_JSON");
    std::string json_path = json_env && *json_env
                                ? json_env
                                : "BENCH_snapshot_smoke.json";

    auto workloads = evalWorkloads();

    SystemConfig single =
        makeDesignConfig(CacheDesign::kCd1, PolicyKind::kAthena);
    smokeResume(single, {workloads.front()}, instr, warm, "single");

    SystemConfig quad =
        makeDesignConfig(CacheDesign::kCd1, PolicyKind::kNaive);
    quad.cores = 4;
    std::vector<WorkloadSpec> mix(workloads.begin(),
                                  workloads.begin() + 4);
    smokeResume(quad, mix, instr / 3, warm / 3, "quad");

    // Warmup-snapshot cache: a second identical sweep must resume
    // from the cached snapshots (zero warmup instructions) and
    // reproduce the first sweep's rows exactly.
    const std::string cache_dir =
        (std::filesystem::temp_directory_path() / "smoke_snap_cache")
            .string();
    std::filesystem::remove_all(cache_dir);
    std::filesystem::create_directories(cache_dir);
    setenv("ATHENA_SNAPSHOT_DIR", cache_dir.c_str(), 1);

    RunBudget budget;
    budget.simInstructions = instr;
    budget.warmupInstructions = warm;
    std::vector<WorkloadSpec> sweep(workloads.begin(),
                                    workloads.begin() + 3);

    ExperimentRunner cold(budget);
    auto cold_rows = cold.speedups(single, sweep);
    ExperimentRunner hot(budget);
    auto hot_rows = hot.speedups(single, sweep);
    checkEq(hot.warmupInstructionsSimulated(),
            std::uint64_t{0}, "cache: hot sweep warmup count");
    for (std::size_t i = 0; i < sweep.size(); ++i) {
        checkEq(cold_rows[i].result.ipc(), hot_rows[i].result.ipc(),
                "cache: " + sweep[i].name + " ipc");
        checkEq(cold_rows[i].baselineIpc, hot_rows[i].baselineIpc,
                "cache: " + sweep[i].name + " baselineIpc");
        checkEq(cold_rows[i].speedup, hot_rows[i].speedup,
                "cache: " + sweep[i].name + " speedup");
    }
    std::cout << "cache: cold warmup "
              << cold.warmupInstructionsSimulated() << ", hot warmup "
              << hot.warmupInstructionsSimulated() << "\n";
    unsetenv("ATHENA_SNAPSHOT_DIR");
    std::filesystem::remove_all(cache_dir);

    std::ofstream json(json_path);
    if (json) {
        json << "{\n  \"benchmark\": \"bench_snapshot_smoke\",\n"
             << "  \"sim_instructions\": " << instr
             << ",\n  \"warmup_instructions\": " << warm
             << ",\n  \"mismatches\": " << mismatches << "\n}\n";
        std::cout << "-> " << json_path << "\n";
    }

    if (mismatches) {
        std::cerr << mismatches
                  << " counter mismatch(es) between straight-through "
                     "and resumed runs\n";
        return 1;
    }
    std::cout << "snapshot smoke: all runs bit-identical\n";
    return 0;
}

/**
 * @file
 * Figure 7 — speedup in cache design 1 (CD1: POPET OCP + Pythia at
 * L2C, 3.2 GB/s) across the 100-workload zoo.
 *
 * Paper's finding: Athena outperforms Naive, HPAC and MAB by 5.7%,
 * 7.9% and 5.0% overall; on prefetcher-adverse workloads Athena
 * beats Naive by 14% and even surpasses POPET standalone, while on
 * prefetcher-friendly workloads it matches Naive. We reproduce the
 * *shape* (ordering and sign of the gaps), not the absolute
 * numbers.
 */

#include "bench_util.hh"

#include <vector>

using namespace athena;
using namespace athena::bench;

int
main()
{
    ExperimentRunner runner;
    auto workloads = evalWorkloads();
    auto adverse =
        runner.adverseSet(classificationConfig(), workloads);
    std::cout << "prefetcher-adverse workloads: " << adverse.size()
              << " / " << workloads.size() << "\n\n";

    auto cd1 = [](PolicyKind policy) {
        return makeDesignConfig(CacheDesign::kCd1, policy);
    };

    std::vector<NamedConfig> configs = {
        {"POPET", cd1(PolicyKind::kOcpOnly)},
        {"Pythia", cd1(PolicyKind::kPfOnly)},
        {"Naive<POPET,Pythia>", cd1(PolicyKind::kNaive)},
        {"HPAC<POPET,Pythia>", cd1(PolicyKind::kHpac)},
        {"MAB<POPET,Pythia>", cd1(PolicyKind::kMab)},
        {"Athena<POPET,Pythia>", cd1(PolicyKind::kAthena)},
    };

    runCategoryTable(runner,
                     "Fig. 7: speedup in CD1 "
                     "(geomean over no-pf/no-OCP baseline)",
                     configs, workloads, adverse);
    return 0;
}

/**
 * @file
 * Figure 15 — four-core workload mixes (CD1 per core, shared LLC
 * and DRAM channel), with hyperparameters tuned only on single-core
 * workloads.
 *
 * Paper's findings: Athena beats Naive/HPAC/MAB by 5.3/7.7/3.0%
 * overall; the margin is largest on prefetcher-adverse mixes.
 */

#include "bench_multicore_common.hh"

int
main()
{
    athena::bench::runMulticoreFigure(
        4, "Fig. 15: four-core mix speedups (CD1)");
    return 0;
}

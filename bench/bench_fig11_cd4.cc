/**
 * @file
 * Figure 11 — speedup in cache design 4 (CD4: POPET OCP + IPCP at
 * L1D + Pythia at L2C).
 *
 * Paper's findings: the uncoordinated triple combination is the
 * worst of all designs on adverse workloads (-26.8%); TLP cannot
 * throttle the L2C prefetcher and still degrades (-16.7%); Athena
 * coordinates both levels and beats Naive/TLP/HPAC/MAB by
 * 14.9/9.9/10.3/7.0%.
 */

#include "bench_util.hh"

#include <vector>

using namespace athena;
using namespace athena::bench;

int
main()
{
    ExperimentRunner runner;
    auto workloads = evalWorkloads();
    auto adverse =
        runner.adverseSet(classificationConfig(), workloads);

    auto cd4 = [](PolicyKind policy) {
        return makeDesignConfig(CacheDesign::kCd4, policy);
    };

    std::vector<NamedConfig> configs = {
        {"POPET", cd4(PolicyKind::kOcpOnly)},
        {"IPCP+Pythia", cd4(PolicyKind::kPfOnly)},
        {"Naive<POPET,IPCP,Pythia>", cd4(PolicyKind::kNaive)},
        {"TLP<POPET,IPCP>+Pythia", cd4(PolicyKind::kTlp)},
        {"HPAC<POPET,IPCP,Pythia>", cd4(PolicyKind::kHpac)},
        {"MAB<POPET,IPCP,Pythia>", cd4(PolicyKind::kMab)},
        {"Athena<POPET,IPCP,Pythia>", cd4(PolicyKind::kAthena)},
    };

    runCategoryTable(runner, "Fig. 11: speedup in CD4", configs,
                     workloads, adverse);
    return 0;
}

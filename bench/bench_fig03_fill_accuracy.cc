/**
 * @file
 * Figure 3 — fraction of prefetch fills *from off-chip main memory*
 * that are inaccurate, for an L1D prefetcher (IPCP) vs. an L2C
 * prefetcher (Pythia).
 *
 * Paper's observation: 50.6% of IPCP's off-chip fills into L1D are
 * never demanded, but only 28.1% of Pythia's off-chip fills into
 * L2C — the empirical premise of TLP holds at L1D and breaks at
 * L2C, which is why TLP cannot manage L2C prefetchers (CD3/CD4).
 */

#include "bench_util.hh"

#include <cstddef>
#include <vector>

using namespace athena;
using namespace athena::bench;

namespace
{

QuartileSummary
fillInaccuracy(ExperimentRunner &runner, const SystemConfig &cfg,
               const std::vector<WorkloadSpec> &workloads,
               unsigned slot)
{
    std::vector<double> fractions(workloads.size(), 0.0);
    parallelFor(workloads.size(), [&](std::size_t i) {
        SimResult res = runner.runOne(cfg, workloads[i]);
        fractions[i] = res.cores[0].pf[slot].offChipFillInaccuracy();
    });
    return quartiles(fractions);
}

} // namespace

int
main()
{
    ExperimentRunner runner;
    auto workloads = evalWorkloads();

    SystemConfig l1_cfg =
        makeDesignConfig(CacheDesign::kCd2, PolicyKind::kPfOnly);
    SystemConfig l2_cfg =
        makeDesignConfig(CacheDesign::kCd1, PolicyKind::kPfOnly);

    QuartileSummary ipcp =
        fillInaccuracy(runner, l1_cfg, workloads, 0);
    QuartileSummary pythia =
        fillInaccuracy(runner, l2_cfg, workloads, 0);

    TextTable t("Fig. 3: inaccurate fraction of off-chip prefetch "
                "fills (paper: IPCP@L1D mean 50.6%, "
                "Pythia@L2C mean 28.1%)");
    t.addRow({"prefetcher", "whiskerLo", "Q1", "median", "Q3",
              "whiskerHi", "mean"});
    auto row = [&](const char *name, const QuartileSummary &s) {
        t.addRow({name, TextTable::num(s.whiskerLo),
                  TextTable::num(s.q1), TextTable::num(s.median),
                  TextTable::num(s.q3), TextTable::num(s.whiskerHi),
                  TextTable::num(s.mean)});
    };
    row("IPCP @ L1D", ipcp);
    row("Pythia @ L2C", pythia);
    t.print(std::cout);

    std::cout << "\nExpected shape: the L1D mean is well above the "
                 "L2C mean.\n";
    return 0;
}

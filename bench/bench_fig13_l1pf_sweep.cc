/**
 * @file
 * Figure 13 — sensitivity to the L1D prefetcher type in CD4: IPCP
 * vs Berti (Pythia stays at L2C, POPET as the OCP).
 *
 * Paper's findings: Berti's higher accuracy makes it a stronger
 * standalone L1D prefetcher than IPCP; Athena beats the next-best
 * policy (MAB) by 7.0% (IPCP) and 5.0% (Berti).
 */

#include "bench_util.hh"

#include <string>
#include <vector>

using namespace athena;
using namespace athena::bench;

int
main()
{
    ExperimentRunner runner;
    auto workloads = evalWorkloads();

    const PrefetcherKind l1pfs[] = {PrefetcherKind::kIpcp,
                                    PrefetcherKind::kBerti};
    const PolicyKind policies[] = {
        PolicyKind::kPfOnly, PolicyKind::kNaive, PolicyKind::kTlp,
        PolicyKind::kHpac, PolicyKind::kMab, PolicyKind::kAthena};

    TextTable t("Fig. 13: overall speedup vs L1D prefetcher (CD4)");
    t.addRow({"policy", "IPCP", "Berti"});
    for (PolicyKind policy : policies) {
        std::vector<std::string> row = {policyKindName(policy)};
        for (PrefetcherKind pf : l1pfs) {
            SystemConfig cfg =
                makeDesignConfig(CacheDesign::kCd4, policy);
            cfg.l1dPf = pf;
            auto rows = runner.speedups(cfg, workloads);
            CategorySummary s =
                ExperimentRunner::summarize(rows, {});
            row.push_back(TextTable::num(s.overall));
        }
        t.addRow(std::move(row));
    }
    t.print(std::cout);

    std::cout << "\nExpected shape: athena dominates both columns; "
                 "berti's pf_only beats ipcp's pf_only.\n";
    return 0;
}

/**
 * @file
 * Figure 12(a) — sensitivity to the L2C prefetcher type in CD1:
 * Pythia, SPP+PPF, MLOP, SMS under Naive / HPAC / MAB / Athena.
 *
 * Paper's finding: Athena outperforms the next-best policy (MAB) by
 * 5.0/5.4/3.6/5.0% respectively, with no per-prefetcher retuning.
 */

#include "bench_util.hh"

#include <string>
#include <vector>

using namespace athena;
using namespace athena::bench;

int
main()
{
    ExperimentRunner runner;
    auto workloads = evalWorkloads();

    const PrefetcherKind prefetchers[] = {
        PrefetcherKind::kPythia, PrefetcherKind::kSppPpf,
        PrefetcherKind::kMlop, PrefetcherKind::kSms};
    const PolicyKind policies[] = {
        PolicyKind::kNaive, PolicyKind::kHpac, PolicyKind::kMab,
        PolicyKind::kAthena};

    TextTable t("Fig. 12a: overall speedup vs L2C prefetcher (CD1)");
    t.addRow({"policy", "Pythia", "SPP+PPF", "MLOP", "SMS"});
    for (PolicyKind policy : policies) {
        std::vector<std::string> row = {policyKindName(policy)};
        for (PrefetcherKind pf : prefetchers) {
            SystemConfig cfg =
                makeDesignConfig(CacheDesign::kCd1, policy);
            cfg.l2cPf = pf;
            auto rows = runner.speedups(cfg, workloads);
            CategorySummary s =
                ExperimentRunner::summarize(rows, {});
            row.push_back(TextTable::num(s.overall));
        }
        t.addRow(std::move(row));
    }
    t.print(std::cout);

    std::cout << "\nExpected shape: the athena row dominates every "
                 "column.\n";
    return 0;
}

/**
 * @file
 * Figure 4 — Naive vs HPAC vs MAB vs StaticBest in CD1 (section
 * 2.1.3): prior coordination policies leave a large part of the
 * StaticBest headroom unclaimed, on both workload categories.
 */

#include "bench_util.hh"

#include <vector>

using namespace athena;
using namespace athena::bench;

int
main()
{
    ExperimentRunner runner;
    auto workloads = evalWorkloads();
    auto adverse =
        runner.adverseSet(classificationConfig(), workloads);

    auto cd1 = [](PolicyKind policy) {
        return makeDesignConfig(CacheDesign::kCd1, policy);
    };

    std::vector<NamedConfig> configs = {
        {"POPET", cd1(PolicyKind::kOcpOnly)},
        {"Pythia", cd1(PolicyKind::kPfOnly)},
        {"Naive<POPET,Pythia>", cd1(PolicyKind::kNaive)},
        {"HPAC<POPET,Pythia>", cd1(PolicyKind::kHpac)},
        {"MAB<POPET,Pythia>", cd1(PolicyKind::kMab)},
    };

    auto rows = runCategoryTable(
        runner, "Fig. 4: prior coordination policies vs StaticBest",
        configs, workloads, adverse);

    auto best = staticBest(rows, {"POPET", "Pythia",
                                  "Naive<POPET,Pythia>"});
    printSummaryLine("StaticBest<POPET,Pythia>", best, adverse);
    return 0;
}

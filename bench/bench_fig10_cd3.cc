/**
 * @file
 * Figure 10 — speedup in cache design 3 (CD3: POPET OCP + SMS and
 * Pythia, both at L2C).
 *
 * Paper's findings: with two L2C prefetchers the uncoordinated
 * combination degrades adverse workloads badly; Athena reaches
 * +3.2% over baseline on them and matches Naive on friendly ones,
 * beating Naive/HPAC/MAB by 10.1/10.4/6.4% overall.
 */

#include "bench_util.hh"

#include <vector>

using namespace athena;
using namespace athena::bench;

int
main()
{
    ExperimentRunner runner;
    auto workloads = evalWorkloads();
    auto adverse =
        runner.adverseSet(classificationConfig(), workloads);

    auto cd3 = [](PolicyKind policy) {
        return makeDesignConfig(CacheDesign::kCd3, policy);
    };

    std::vector<NamedConfig> configs = {
        {"POPET", cd3(PolicyKind::kOcpOnly)},
        {"SMS+Pythia", cd3(PolicyKind::kPfOnly)},
        {"Naive<POPET,SMS+Pythia>", cd3(PolicyKind::kNaive)},
        {"HPAC<POPET,SMS+Pythia>", cd3(PolicyKind::kHpac)},
        {"MAB<POPET,SMS+Pythia>", cd3(PolicyKind::kMab)},
        {"Athena<POPET,SMS+Pythia>", cd3(PolicyKind::kAthena)},
    };

    runCategoryTable(runner, "Fig. 10: speedup in CD3", configs,
                     workloads, adverse);
    return 0;
}

/**
 * @file
 * google-benchmark microbenchmarks for Athena's timing-critical
 * hardware structures: QVStore lookup/update (section 5.4.2 argues
 * a 50-cycle update budget is ample) and Bloom filter
 * insert/query (section 5.2 trackers) — plus the simulation
 * engine's own hot path (Cache access/fill, workload generation,
 * and a full Simulator step) so engine-speed regressions show up
 * at component granularity before bench_throughput does. Snapshot
 * save/restore throughput rides along so checkpoint cost stays
 * visible as component state grows.
 */

#include <array>
#include <benchmark/benchmark.h>
#include <cstdint>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "athena/bloom.hh"
#include "athena/qvstore.hh"
#include "common/fast_mod.hh"
#include "common/rng.hh"
#include "mem/cache.hh"
#include "mem/dram.hh"
#include "ocp/popet.hh"
#include "prefetch/prefetcher.hh"
#include "sim/parallel_step.hh"
#include "sim/simulator.hh"
#include "sim/step_picker.hh"
#include "sim/system_config.hh"
#include "trace/workload.hh"
#include "trace/zoo.hh"

namespace
{

void
BM_QVStoreLookup(benchmark::State &state)
{
    athena::QVStore qv;
    athena::Rng rng(1);
    for (auto _ : state) {
        auto s = static_cast<std::uint32_t>(rng.next());
        benchmark::DoNotOptimize(qv.q(s, s & 3));
    }
}
BENCHMARK(BM_QVStoreLookup);

void
BM_QVStoreArgmax(benchmark::State &state)
{
    athena::QVStore qv;
    athena::Rng rng(2);
    for (auto _ : state) {
        auto s = static_cast<std::uint32_t>(rng.next());
        benchmark::DoNotOptimize(qv.argmax(s));
    }
}
BENCHMARK(BM_QVStoreArgmax);

void
BM_QVStoreSarsaUpdate(benchmark::State &state)
{
    athena::QVStore qv;
    athena::Rng rng(3);
    for (auto _ : state) {
        auto s = static_cast<std::uint32_t>(rng.next());
        auto s2 = static_cast<std::uint32_t>(rng.next());
        qv.update(s, s & 3, 0.5, s2, s2 & 3);
    }
}
BENCHMARK(BM_QVStoreSarsaUpdate);

void
BM_QVLookupBatch(benchmark::State &state)
{
    // The SoA batch kernel of the inference plane: all-action Q
    // columns for 64 states in one lookupBatch pass (compare
    // against BM_QVLookupScalarLoop, the same work as 64 x actions
    // scalar q() calls).
    athena::QVStore qv;
    athena::Rng rng(31);
    constexpr unsigned kBatch = 64;
    std::array<std::uint32_t, kBatch> states;
    std::vector<double> out(kBatch * qv.params().actions);
    for (auto _ : state) {
        for (std::uint32_t &s : states)
            s = static_cast<std::uint32_t>(rng.next());
        qv.lookupBatch(states.data(), kBatch, out.data());
        benchmark::DoNotOptimize(out.data());
        benchmark::ClobberMemory();
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) * kBatch);
}
BENCHMARK(BM_QVLookupBatch);

void
BM_QVLookupScalarLoop(benchmark::State &state)
{
    // Scalar baseline for BM_QVLookupBatch: the same 64 states
    // resolved one (state, action) q() call at a time.
    athena::QVStore qv;
    athena::Rng rng(31);
    constexpr unsigned kBatch = 64;
    std::array<std::uint32_t, kBatch> states;
    const unsigned actions = qv.params().actions;
    std::vector<double> out(kBatch * actions);
    for (auto _ : state) {
        for (std::uint32_t &s : states)
            s = static_cast<std::uint32_t>(rng.next());
        for (unsigned i = 0; i < kBatch; ++i) {
            for (unsigned a = 0; a < actions; ++a)
                out[i * actions + a] = qv.q(states[i], a);
        }
        benchmark::DoNotOptimize(out.data());
        benchmark::ClobberMemory();
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) * kBatch);
}
BENCHMARK(BM_QVLookupScalarLoop);

void
BM_PopetFeatureHashBatch(benchmark::State &state)
{
    // The window collector's kernel: five feature indices for 256
    // accesses, history threaded through the batch (compare against
    // BM_PopetFeatureHashScalar, the batch-of-1 loop).
    athena::PopetPredictor popet;
    athena::Rng rng(32);
    constexpr unsigned kBatch = 256;
    std::array<std::uint64_t, kBatch> pcs;
    std::array<athena::Addr, kBatch> addrs;
    std::vector<std::uint16_t> idx(kBatch * 5);
    for (auto _ : state) {
        for (unsigned i = 0; i < kBatch; ++i) {
            pcs[i] = 0x400000 + (rng.next() & 0xff) * 4;
            addrs[i] = rng.next() & ((1ull << 30) - 1);
        }
        popet.featureIndicesBatch(pcs.data(), addrs.data(), kBatch,
                                  idx.data());
        benchmark::DoNotOptimize(idx.data());
        benchmark::ClobberMemory();
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) * kBatch);
}
BENCHMARK(BM_PopetFeatureHashBatch);

void
BM_PopetFeatureHashScalar(benchmark::State &state)
{
    // Scalar baseline for BM_PopetFeatureHashBatch: the same 256
    // accesses through 256 batch-of-1 calls (per-call loop setup,
    // no cross-access vectorization).
    athena::PopetPredictor popet;
    athena::Rng rng(32);
    constexpr unsigned kBatch = 256;
    std::array<std::uint64_t, kBatch> pcs;
    std::array<athena::Addr, kBatch> addrs;
    std::vector<std::uint16_t> idx(kBatch * 5);
    for (auto _ : state) {
        for (unsigned i = 0; i < kBatch; ++i) {
            pcs[i] = 0x400000 + (rng.next() & 0xff) * 4;
            addrs[i] = rng.next() & ((1ull << 30) - 1);
        }
        for (unsigned i = 0; i < kBatch; ++i) {
            popet.featureIndicesBatch(&pcs[i], &addrs[i], 1,
                                      &idx[i * 5]);
        }
        benchmark::DoNotOptimize(idx.data());
        benchmark::ClobberMemory();
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) * kBatch);
}
BENCHMARK(BM_PopetFeatureHashScalar);

/**
 * Backend selector for the SIMD kernel pairs: Arg(0) = scalar,
 * Arg(1) = AVX2 (skipped with an error when the CPU lacks it, so
 * the pair reads cleanly on any host).
 */
bool
simdBenchBackend(benchmark::State &state, athena::simd::Backend &b)
{
    b = state.range(0) ? athena::simd::Backend::kAvx2
                       : athena::simd::Backend::kScalar;
    if (b == athena::simd::Backend::kAvx2 &&
        !athena::simd::avx2Available()) {
        state.SkipWithError("host lacks AVX2");
        return false;
    }
    return true;
}

void
BM_SimdMix64Batch(benchmark::State &state)
{
    athena::simd::Backend b;
    if (!simdBenchBackend(state, b))
        return;
    constexpr unsigned kBatch = 256;
    athena::Rng rng(41);
    std::array<std::uint64_t, kBatch> in, out;
    for (std::uint64_t &x : in)
        x = rng.next();
    for (auto _ : state) {
        athena::simd::mix64Batch(b, in.data(), kBatch, out.data());
        benchmark::DoNotOptimize(out.data());
        benchmark::ClobberMemory();
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) * kBatch);
}
BENCHMARK(BM_SimdMix64Batch)->Arg(0)->Arg(1);

void
BM_SimdKeyedHashMaskBatch(benchmark::State &state)
{
    // The QVStore plane-row materialization step: one plane's rows
    // for 64 states.
    athena::simd::Backend b;
    if (!simdBenchBackend(state, b))
        return;
    constexpr unsigned kBatch = 64;
    athena::Rng rng(42);
    std::array<std::uint32_t, kBatch> xs;
    std::array<std::uint32_t, kBatch> rows;
    for (std::uint32_t &x : xs)
        x = static_cast<std::uint32_t>(rng.next());
    for (auto _ : state) {
        for (unsigned p = 0; p < 8; ++p) {
            athena::simd::keyedHashMaskBatch(b, xs.data(), kBatch, p,
                                             63, rows.data());
            benchmark::DoNotOptimize(rows.data());
        }
        benchmark::ClobberMemory();
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) * kBatch * 8);
}
BENCHMARK(BM_SimdKeyedHashMaskBatch)->Arg(0)->Arg(1);

void
BM_SimdPopetPureIndices(benchmark::State &state)
{
    // The window collector's memo-free kernel: four pure feature
    // indices for 256 accesses.
    athena::simd::Backend b;
    if (!simdBenchBackend(state, b))
        return;
    constexpr unsigned kBatch = 256;
    athena::Rng rng(43);
    std::array<std::uint64_t, kBatch> pcs;
    std::array<athena::Addr, kBatch> addrs;
    std::vector<std::uint16_t> idx(kBatch * 4);
    for (unsigned i = 0; i < kBatch; ++i) {
        pcs[i] = 0x400000 + (rng.next() & 0xff) * 4;
        addrs[i] = rng.next() & ((1ull << 30) - 1);
    }
    for (auto _ : state) {
        athena::PopetPredictor::pureFeatureIndicesBatch(
            b, pcs.data(), addrs.data(), kBatch, idx.data());
        benchmark::DoNotOptimize(idx.data());
        benchmark::ClobberMemory();
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) * kBatch);
}
BENCHMARK(BM_SimdPopetPureIndices)->Arg(0)->Arg(1);

void
BM_SimdDeltaSeqFold(benchmark::State &state)
{
    // Pythia's four-step hashCombine fold over 256 packed history
    // keys.
    athena::simd::Backend b;
    if (!simdBenchBackend(state, b))
        return;
    constexpr unsigned kBatch = 256;
    athena::Rng rng(44);
    std::array<std::uint32_t, kBatch> keys;
    std::array<std::uint64_t, kBatch> out;
    for (std::uint32_t &k : keys)
        k = static_cast<std::uint32_t>(rng.next());
    for (auto _ : state) {
        athena::simd::deltaSeqFoldBatch(b, keys.data(), kBatch,
                                        out.data());
        benchmark::DoNotOptimize(out.data());
        benchmark::ClobberMemory();
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) * kBatch);
}
BENCHMARK(BM_SimdDeltaSeqFold)->Arg(0)->Arg(1);

void
BM_SimdAccumulateRows(benchmark::State &state)
{
    // The gather-free Q accumulation: 8 planes x 64 states x 4
    // actions into the batch Q columns (float storage).
    athena::simd::Backend b;
    if (!simdBenchBackend(state, b))
        return;
    constexpr unsigned kBatch = 64, kActions = 4, kRows = 64;
    athena::Rng rng(45);
    std::vector<double> plane(kRows * kActions);
    for (double &v : plane)
        v = static_cast<double>(rng.next() % 255) / 16.0;
    std::array<std::uint32_t, kBatch> rows;
    for (std::uint32_t &r : rows)
        r = static_cast<std::uint32_t>(rng.next() % kRows);
    std::vector<double> q(kBatch * kActions);
    for (auto _ : state) {
        std::fill(q.begin(), q.end(), 0.0);
        for (unsigned p = 0; p < 8; ++p) {
            athena::simd::accumulateRowsF64(b, plane.data(),
                                            rows.data(), kBatch,
                                            kActions, q.data());
        }
        benchmark::DoNotOptimize(q.data());
        benchmark::ClobberMemory();
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) * kBatch * 8);
}
BENCHMARK(BM_SimdAccumulateRows)->Arg(0)->Arg(1);

void
BM_SimdStridedCollect(benchmark::State &state)
{
    // The record-window load discovery scan: collect demand-load
    // positions from a 256-record window at trace-like density.
    athena::simd::Backend b;
    if (!simdBenchBackend(state, b))
        return;
    constexpr unsigned kLen = 256, kStride = 24;
    athena::Rng rng(46);
    std::vector<unsigned char> buf(kLen * kStride, 0);
    for (unsigned i = 0; i < kLen; ++i)
        buf[i * kStride + 16] = (rng.next() & 3) ? 1 : 2;
    std::array<std::uint16_t, kLen> out;
    for (auto _ : state) {
        unsigned pos = 0;
        unsigned total = 0;
        while (pos < kLen) {
            unsigned c = athena::simd::collectStridedByteEq(
                b, buf.data() + 16, kStride, &pos, kLen, 1,
                out.data(), 32);
            total += c;
            if (c < 32)
                break;
        }
        benchmark::DoNotOptimize(total);
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) * kLen);
}
BENCHMARK(BM_SimdStridedCollect)->Arg(0)->Arg(1);

void
BM_QVLookupBatchBackend(benchmark::State &state)
{
    // The whole lookupBatch plane with the backend pinned at
    // construction — the end-to-end effect of the SoA row
    // materialization + gather-free accumulate vs the PR 9 loop.
    athena::simd::Backend b;
    if (!simdBenchBackend(state, b))
        return;
    athena::simd::forceBackend(b);
    athena::QVStore qv;
    athena::simd::clearForcedBackend();
    athena::Rng rng(47);
    constexpr unsigned kBatch = 64;
    std::array<std::uint32_t, kBatch> states;
    std::vector<double> out(kBatch * qv.params().actions);
    for (auto _ : state) {
        for (std::uint32_t &s : states)
            s = static_cast<std::uint32_t>(rng.next());
        qv.lookupBatch(states.data(), kBatch, out.data());
        benchmark::DoNotOptimize(out.data());
        benchmark::ClobberMemory();
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) * kBatch);
}
BENCHMARK(BM_QVLookupBatchBackend)->Arg(0)->Arg(1);

void
BM_QVTrainEpochBatch(benchmark::State &state)
{
    // The per-epoch batch trainer: 32 buffered SARSA triples
    // applied in one updateBatch pass (compare against
    // BM_QVTrainEpochScalar).
    athena::QVStore qv;
    athena::Rng rng(33);
    constexpr unsigned kBatch = 32;
    std::array<athena::QVStore::TrainTriple, kBatch> triples;
    for (auto _ : state) {
        for (athena::QVStore::TrainTriple &t : triples) {
            t.s = static_cast<std::uint32_t>(rng.next());
            t.a = static_cast<unsigned>(rng.next() & 3);
            t.reward = 0.5;
            t.sNext = static_cast<std::uint32_t>(rng.next());
            t.aNext = static_cast<unsigned>(rng.next() & 3);
        }
        qv.updateBatch(triples.data(), kBatch);
        benchmark::ClobberMemory();
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) * kBatch);
}
BENCHMARK(BM_QVTrainEpochBatch);

void
BM_QVTrainEpochScalar(benchmark::State &state)
{
    // Scalar baseline for BM_QVTrainEpochBatch: the same 32
    // triples through one update() call each.
    athena::QVStore qv;
    athena::Rng rng(33);
    constexpr unsigned kBatch = 32;
    std::array<athena::QVStore::TrainTriple, kBatch> triples;
    for (auto _ : state) {
        for (athena::QVStore::TrainTriple &t : triples) {
            t.s = static_cast<std::uint32_t>(rng.next());
            t.a = static_cast<unsigned>(rng.next() & 3);
            t.reward = 0.5;
            t.sNext = static_cast<std::uint32_t>(rng.next());
            t.aNext = static_cast<unsigned>(rng.next() & 3);
        }
        for (const athena::QVStore::TrainTriple &t : triples)
            qv.update(t.s, t.a, t.reward, t.sNext, t.aNext);
        benchmark::ClobberMemory();
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) * kBatch);
}
BENCHMARK(BM_QVTrainEpochScalar);

void
BM_BloomInsert(benchmark::State &state)
{
    athena::BloomFilter bloom(4096, 2);
    athena::Rng rng(4);
    for (auto _ : state)
        bloom.insert(rng.next());
}
BENCHMARK(BM_BloomInsert);

void
BM_BloomQuery(benchmark::State &state)
{
    athena::BloomFilter bloom(4096, 2);
    athena::Rng rng(5);
    for (int i = 0; i < 199; ++i)
        bloom.insert(rng.next());
    for (auto _ : state)
        benchmark::DoNotOptimize(bloom.mayContain(rng.next()));
}
BENCHMARK(BM_BloomQuery);

void
BM_CacheAccessHit(benchmark::State &state)
{
    athena::Cache cache(athena::l1dParams());
    // Fill one set's worth of resident lines and hit them round-robin.
    const unsigned ways = cache.params().ways;
    for (unsigned w = 0; w < ways; ++w)
        cache.fill(w * cache.numSets(), w, w, false);
    athena::Cycle now = ways;
    unsigned w = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            cache.access(w * cache.numSets(), ++now));
        w = (w + 1) % ways;
    }
}
BENCHMARK(BM_CacheAccessHit);

void
BM_CacheAccessMiss(benchmark::State &state)
{
    athena::Cache cache(athena::l1dParams());
    athena::Rng rng(6);
    athena::Cycle now = 0;
    for (auto _ : state)
        benchmark::DoNotOptimize(cache.access(rng.next(), ++now));
}
BENCHMARK(BM_CacheAccessMiss);

void
BM_CacheFillEvict(benchmark::State &state)
{
    athena::Cache cache(athena::l2cParams());
    athena::Rng rng(7);
    athena::Cycle now = 0;
    for (auto _ : state) {
        ++now;
        benchmark::DoNotOptimize(
            cache.fill(rng.next(), now, now, (now & 1) != 0));
    }
}
BENCHMARK(BM_CacheFillEvict);

void
BM_TriggerDispatchFrontDoor(benchmark::State &state)
{
    // The devirtualized observe() front door on a learning
    // prefetcher — the per-access dispatch cost triggerLevel pays
    // per slot (tentpole item 1).
    auto pf = athena::makePrefetcher(
        athena::PrefetcherKind::kPythia, 11);
    athena::Rng rng(8);
    athena::CandidateVec out;
    athena::Cycle now = 0;
    for (auto _ : state) {
        out.clear();
        pf->observe({0x400, rng.next() % (1ull << 30), false, ++now},
                    out);
        benchmark::DoNotOptimize(out.size());
    }
}
BENCHMARK(BM_TriggerDispatchFrontDoor);

void
BM_TriggerDispatchVirtual(benchmark::State &state)
{
    // Reference: the same kernel through the virtual slot, for
    // eyeballing what the tag dispatch saves.
    auto pf = athena::makePrefetcher(
        athena::PrefetcherKind::kPythia, 11);
    athena::Rng rng(8);
    athena::CandidateVec out;
    athena::Cycle now = 0;
    for (auto _ : state) {
        out.clear();
        pf->observeImpl(
            {0x400, rng.next() % (1ull << 30), false, ++now}, out);
        benchmark::DoNotOptimize(out.size());
    }
}
BENCHMARK(BM_TriggerDispatchVirtual);

void
BM_StepPicker8Core(benchmark::State &state)
{
    // The multi-core scheduler's pick/advance cycle at fig16 scale
    // (tentpole item 2).
    athena::StepPicker picker(8);
    std::array<athena::Cycle, 8> now{};
    athena::Rng rng(9);
    for (auto _ : state) {
        unsigned pick = picker.top();
        now[pick] += 1 + (rng.next() & 31);
        picker.advance(pick, now[pick]);
        benchmark::DoNotOptimize(pick);
    }
}
BENCHMARK(BM_StepPicker8Core);

void
BM_QVStoreSeparation(benchmark::State &state)
{
    // Algorithm 1's q - meanOfOthers in one row resolution (the
    // Athena degree computation, tentpole item 4).
    athena::QVStore qv;
    athena::Rng rng(10);
    for (auto _ : state) {
        auto s = static_cast<std::uint32_t>(rng.next() & 0xfff);
        benchmark::DoNotOptimize(qv.qSeparation(s, s & 3));
    }
}
BENCHMARK(BM_QVStoreSeparation);

void
BM_FastMod(benchmark::State &state)
{
    athena::FastMod fm(123ull << 20); // non-pow2 footprint
    athena::Rng rng(12);
    for (auto _ : state)
        benchmark::DoNotOptimize(fm.mod(rng.next()));
}
BENCHMARK(BM_FastMod);

void
BM_HardwareMod(benchmark::State &state)
{
    volatile std::uint64_t m = 123ull << 20;
    athena::Rng rng(12);
    for (auto _ : state)
        benchmark::DoNotOptimize(rng.next() % m);
}
BENCHMARK(BM_HardwareMod);

void
BM_WorkloadNext(benchmark::State &state)
{
    auto workloads = athena::evalWorkloads();
    athena::SyntheticWorkload w(workloads.front());
    for (auto _ : state)
        benchmark::DoNotOptimize(w.next());
}
BENCHMARK(BM_WorkloadNext);

void
BM_WorkloadNextBatch(benchmark::State &state)
{
    // The batched pull the SoA stepping pipeline runs on: 256
    // records per call through the per-pattern emit kernels
    // (compare against 256x BM_WorkloadNext).
    auto workloads = athena::evalWorkloads();
    athena::SyntheticWorkload w(workloads.front());
    std::vector<athena::TraceRecord> buf(256);
    for (auto _ : state) {
        benchmark::DoNotOptimize(w.nextBatch(buf.data(), buf.size()));
        benchmark::ClobberMemory();
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) * 256);
}
BENCHMARK(BM_WorkloadNextBatch);

void
BM_CoreStepBatch(benchmark::State &state)
{
    // The core-side half of the batched pipeline: stepN over a
    // synthetic stream against a fixed-latency memory, isolating
    // dispatch/retire/ROB/MSHR bookkeeping from the cache model.
    class FixedMemory : public athena::MemoryInterface
    {
      public:
        athena::Cycle
        load(std::uint64_t, athena::Addr, athena::Cycle issue,
             bool &l1_miss) override
        {
            l1_miss = true;
            return issue + 40;
        }
        void store(std::uint64_t, athena::Addr,
                   athena::Cycle) override
        {}
    };
    auto workloads = athena::evalWorkloads();
    athena::SyntheticWorkload w(workloads.front());
    FixedMemory mem;
    athena::CoreModel core(athena::CoreParams{}, w, mem);
    const std::uint64_t chunk = 4096;
    for (auto _ : state) {
        core.stepN(chunk);
        benchmark::DoNotOptimize(core.now());
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations() * chunk));
}
BENCHMARK(BM_CoreStepBatch);

/**
 * Shared request stream for the DRAM service benchmarks: a
 * realistic mix of row-hit streaks, bank conflicts, and scattered
 * lines, replayed with arrival 0 (a saturated controller, the
 * regime the fig14/fig16 bandwidth sweeps live in).
 */
std::vector<athena::Addr>
dramBenchLines()
{
    std::vector<athena::Addr> lines;
    athena::Rng rng(21);
    athena::Addr cursor = 0;
    while (lines.size() < 4096) {
        switch (rng.next() % 3) {
          case 0: // row-hit streak
            for (unsigned k = 0; k < 8; ++k)
                lines.push_back(cursor++);
            break;
          case 1: // bank conflict
            lines.push_back(cursor + 4096);
            break;
          default: // scatter
            cursor = rng.next() % (1ull << 28);
            lines.push_back(cursor);
            break;
        }
    }
    lines.resize(4096);
    return lines;
}

void
BM_DramServeScalar(benchmark::State &state)
{
    // 32 requests per iteration through the scalar serve() shim
    // (enqueue + drain-of-1 each): the per-request service cost
    // the demand-miss path pays.
    athena::Dram dram{athena::DramParams{}};
    auto lines = dramBenchLines();
    std::size_t i = 0;
    for (auto _ : state) {
        for (unsigned k = 0; k < 32; ++k) {
            benchmark::DoNotOptimize(
                dram.serve(0, lines[i++ & 4095],
                           athena::AccessType::kPrefetch));
        }
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) * 32);
}
BENCHMARK(BM_DramServeScalar);

void
BM_DramDrainBatch(benchmark::State &state)
{
    // The same 32 requests enqueued and drained in one batched
    // kernel call — the trigger-window fast path.
    athena::Dram dram{athena::DramParams{}};
    auto lines = dramBenchLines();
    std::size_t i = 0;
    for (auto _ : state) {
        for (unsigned k = 0; k < 32; ++k) {
            dram.enqueue(0, lines[i++ & 4095],
                         athena::AccessType::kPrefetch);
        }
        benchmark::DoNotOptimize(dram.drain().back());
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) * 32);
}
BENCHMARK(BM_DramDrainBatch);

void
BM_SimulatorInstruction(benchmark::State &state)
{
    // End-to-end per-instruction cost of the whole engine: core
    // step -> doLoad -> cache chain -> prefetcher observe ->
    // policy/OCP, amortized over a long measured run.
    auto workloads = athena::evalWorkloads();
    athena::SystemConfig cfg = athena::makeDesignConfig(
        athena::CacheDesign::kCd1, athena::PolicyKind::kNaive);
    const std::uint64_t chunk = 100000;
    for (auto _ : state) {
        athena::Simulator sim(cfg, {workloads.front()});
        benchmark::DoNotOptimize(sim.run({chunk, 0}));
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations() * chunk));
}
BENCHMARK(BM_SimulatorInstruction)->Unit(benchmark::kMillisecond);

std::string
snapshotBenchPath(const char *name)
{
    return (std::filesystem::temp_directory_path() / name).string();
}

void
BM_SnapshotSave(benchmark::State &state)
{
    // Full-state serialization throughput of a warmed single-core
    // system (every component section + checksums + file write).
    auto workloads = athena::evalWorkloads();
    athena::SystemConfig cfg = athena::makeDesignConfig(
        athena::CacheDesign::kCd1, athena::PolicyKind::kAthena);
    athena::Simulator sim(cfg, {workloads.front()});
    sim.run({50000, 0});
    const std::string path = snapshotBenchPath("bench_save.asnp");
    for (auto _ : state)
        sim.snapshot(path);
    state.SetBytesProcessed(
        static_cast<std::int64_t>(state.iterations()) *
        static_cast<std::int64_t>(std::filesystem::file_size(path)));
    std::filesystem::remove(path);
}
BENCHMARK(BM_SnapshotSave)->Unit(benchmark::kMicrosecond);

void
BM_SnapshotRestore(benchmark::State &state)
{
    // Resume cost: construct the component tree and restore every
    // section (mmap read + checksum verify + field loads).
    auto workloads = athena::evalWorkloads();
    athena::SystemConfig cfg = athena::makeDesignConfig(
        athena::CacheDesign::kCd1, athena::PolicyKind::kAthena);
    athena::Simulator sim(cfg, {workloads.front()});
    sim.run({50000, 0});
    const std::string path = snapshotBenchPath("bench_restore.asnp");
    sim.snapshot(path);
    for (auto _ : state) {
        athena::Simulator restored(cfg, {workloads.front()}, path);
        benchmark::DoNotOptimize(&restored);
    }
    state.SetBytesProcessed(
        static_cast<std::int64_t>(state.iterations()) *
        static_cast<std::int64_t>(std::filesystem::file_size(path)));
    std::filesystem::remove(path);
}
BENCHMARK(BM_SnapshotRestore)->Unit(benchmark::kMicrosecond);

void
BM_SharedTurnSpin(benchmark::State &state)
{
    // Uncontended turn-grant cost: beginStep + first ensureTurn of
    // a step when the grant is immediately ready (all peers done),
    // i.e. the per-shared-touch overhead every load/store pays in
    // the parallel engine even without contention. The arg is the
    // slot-array width the grant test scans. Guards the
    // pause->yield->park escalation: the escalation only engages
    // on a failed grant test, so this single-threaded fast path —
    // the 1-bank/1-channel default geometry included — must not
    // regress.
    const auto cores = static_cast<unsigned>(state.range(0));
    athena::ParallelStepper stepper(cores, /*shard_count=*/2,
                                    /*log_sink=*/nullptr);
    for (unsigned c = 1; c < cores; ++c)
        stepper.finish(c);
    athena::Cycle now = 0;
    for (auto _ : state) {
        stepper.beginStep(0, now++);
        stepper.ensureTurn(0, 0);
        benchmark::DoNotOptimize(stepper.grantedThisStep(0));
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_SharedTurnSpin)->Arg(1)->Arg(4)->Arg(16)->Arg(32);

} // namespace

BENCHMARK_MAIN();

/**
 * @file
 * google-benchmark microbenchmarks for Athena's timing-critical
 * hardware structures: QVStore lookup/update (section 5.4.2 argues
 * a 50-cycle update budget is ample) and Bloom filter
 * insert/query (section 5.2 trackers).
 */

#include <benchmark/benchmark.h>

#include "athena/bloom.hh"
#include "athena/qvstore.hh"
#include "common/rng.hh"

namespace
{

void
BM_QVStoreLookup(benchmark::State &state)
{
    athena::QVStore qv;
    athena::Rng rng(1);
    for (auto _ : state) {
        auto s = static_cast<std::uint32_t>(rng.next());
        benchmark::DoNotOptimize(qv.q(s, s & 3));
    }
}
BENCHMARK(BM_QVStoreLookup);

void
BM_QVStoreArgmax(benchmark::State &state)
{
    athena::QVStore qv;
    athena::Rng rng(2);
    for (auto _ : state) {
        auto s = static_cast<std::uint32_t>(rng.next());
        benchmark::DoNotOptimize(qv.argmax(s));
    }
}
BENCHMARK(BM_QVStoreArgmax);

void
BM_QVStoreSarsaUpdate(benchmark::State &state)
{
    athena::QVStore qv;
    athena::Rng rng(3);
    for (auto _ : state) {
        auto s = static_cast<std::uint32_t>(rng.next());
        auto s2 = static_cast<std::uint32_t>(rng.next());
        qv.update(s, s & 3, 0.5, s2, s2 & 3);
    }
}
BENCHMARK(BM_QVStoreSarsaUpdate);

void
BM_BloomInsert(benchmark::State &state)
{
    athena::BloomFilter bloom(4096, 2);
    athena::Rng rng(4);
    for (auto _ : state)
        bloom.insert(rng.next());
}
BENCHMARK(BM_BloomInsert);

void
BM_BloomQuery(benchmark::State &state)
{
    athena::BloomFilter bloom(4096, 2);
    athena::Rng rng(5);
    for (int i = 0; i < 199; ++i)
        bloom.insert(rng.next());
    for (auto _ : state)
        benchmark::DoNotOptimize(bloom.mayContain(rng.next()));
}
BENCHMARK(BM_BloomQuery);

} // namespace

BENCHMARK_MAIN();

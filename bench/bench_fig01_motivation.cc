/**
 * @file
 * Figure 1 — performance line graph of POPET (OCP) vs. Pythia (L2C
 * prefetcher) across the 100 workloads, sorted by Pythia's speedup.
 *
 * Paper's observations: (1) Pythia degrades ~40/100 workloads even
 * with built-in throttling; (2) POPET often *improves* exactly the
 * workloads Pythia degrades; (3) on prefetcher-friendly workloads
 * Pythia's gains dwarf POPET's.
 */

#include <algorithm>
#include <cstddef>
#include <string>
#include <vector>

#include "bench_util.hh"

using namespace athena;
using namespace athena::bench;

int
main()
{
    ExperimentRunner runner;
    auto workloads = evalWorkloads();

    SystemConfig pf_cfg =
        makeDesignConfig(CacheDesign::kCd1, PolicyKind::kPfOnly);
    SystemConfig ocp_cfg =
        makeDesignConfig(CacheDesign::kCd1, PolicyKind::kOcpOnly);

    auto pf_rows = runner.speedups(pf_cfg, workloads);
    auto ocp_rows = runner.speedups(ocp_cfg, workloads);

    std::vector<std::size_t> order(workloads.size());
    for (std::size_t i = 0; i < order.size(); ++i)
        order[i] = i;
    std::sort(order.begin(), order.end(),
              [&](std::size_t a, std::size_t b) {
                  return pf_rows[a].speedup < pf_rows[b].speedup;
              });

    TextTable table("Fig. 1: POPET vs Pythia line graph "
                    "(sorted by Pythia speedup)");
    table.addRow({"#", "workload", "pythia", "popet"});
    unsigned adverse = 0;
    std::vector<double> adv_pf, adv_ocp, fri_pf, fri_ocp;
    for (std::size_t rank = 0; rank < order.size(); ++rank) {
        const auto &pf = pf_rows[order[rank]];
        const auto &ocp = ocp_rows[order[rank]];
        table.addRow({std::to_string(rank + 1), pf.workload,
                      TextTable::num(pf.speedup),
                      TextTable::num(ocp.speedup)});
        if (pf.speedup < 1.0) {
            ++adverse;
            adv_pf.push_back(pf.speedup);
            adv_ocp.push_back(ocp.speedup);
        } else {
            fri_pf.push_back(pf.speedup);
            fri_ocp.push_back(ocp.speedup);
        }
    }
    table.print(std::cout);

    TextTable summary("Fig. 1 summary (paper: Pythia degrades "
                      "40/100; adverse geomeans 0.884 vs 1.014)");
    summary.addRow({"metric", "value"});
    summary.addRow({"prefetcher-adverse count",
                    std::to_string(adverse)});
    summary.addRow({"Pythia geomean (adverse)",
                    TextTable::num(geomean(adv_pf))});
    summary.addRow({"POPET geomean (adverse)",
                    TextTable::num(geomean(adv_ocp))});
    summary.addRow({"Pythia geomean (friendly)",
                    TextTable::num(geomean(fri_pf))});
    summary.addRow({"POPET geomean (friendly)",
                    TextTable::num(geomean(fri_ocp))});
    summary.print(std::cout);
    return 0;
}

/**
 * @file
 * Figure 21 (Appendix B) — unseen workloads: DPC4-style Google
 * server traces in CD4, grouped by trace family. None of these
 * workloads (or anything like them) was used to tune Athena.
 *
 * Paper's findings: Athena improves performance by 2.8% on average
 * where MAB manages 0.1% and HPAC/Naive degrade.
 */

#include <map>
#include <string>
#include <vector>

#include "bench_util.hh"

using namespace athena;
using namespace athena::bench;

int
main()
{
    ExperimentRunner runner;
    auto workloads = dpc4Workloads();

    const PolicyKind policies[] = {
        PolicyKind::kOcpOnly, PolicyKind::kPfOnly,
        PolicyKind::kNaive, PolicyKind::kTlp, PolicyKind::kHpac,
        PolicyKind::kMab, PolicyKind::kAthena};

    // Group rows by trace family (name up to ".tN").
    auto family = [](const std::string &name) {
        auto pos = name.rfind(".t");
        return pos == std::string::npos ? name : name.substr(0, pos);
    };

    std::vector<std::string> families;
    for (const auto &spec : workloads) {
        std::string f = family(spec.name);
        if (families.empty() || families.back() != f)
            families.push_back(f);
    }

    TextTable t("Fig. 21: unseen DPC4-like workloads (CD4)");
    std::vector<std::string> header = {"policy"};
    header.insert(header.end(), families.begin(), families.end());
    header.push_back("overall");
    t.addRow(header);

    for (PolicyKind policy : policies) {
        SystemConfig cfg =
            makeDesignConfig(CacheDesign::kCd4, policy);
        auto rows = runner.speedups(cfg, workloads);
        std::map<std::string, std::vector<double>> by_family;
        std::vector<double> all;
        for (const auto &row : rows) {
            by_family[family(row.workload)].push_back(row.speedup);
            all.push_back(row.speedup);
        }
        std::vector<std::string> out = {policyKindName(policy)};
        for (const auto &f : families)
            out.push_back(TextTable::num(geomean(by_family[f])));
        out.push_back(TextTable::num(geomean(all)));
        t.addRow(std::move(out));
    }
    t.print(std::cout);

    std::cout << "\nExpected shape: athena has the best overall "
                 "column on workloads it was never tuned for.\n";
    return 0;
}

/**
 * @file
 * Figure 14 — sensitivity to main memory bandwidth in CD4:
 * 1.6 / 3.2 / 6.4 / 12.8 GB/s per core.
 *
 * Paper's findings: Naive swings from -18.9% (1.6 GB/s) to +33.5%
 * (12.8 GB/s); even POPET alone degrades slightly at 1.6 GB/s;
 * Athena wins at every point, with its largest margins in the
 * bandwidth-constrained configurations.
 *
 * Besides the text table, every sweep point is reported through the
 * bench_throughput JSON schema (BENCH_fig14_bandwidth.json, path
 * overridable via ATHENA_BENCH_JSON) with its overall speedup and
 * wall time, so bandwidth-sweep regressions are diffable in CI
 * artifacts case-by-case.
 */

#include "bench_util.hh"

#include <chrono>
#include <string>
#include <vector>

using namespace athena;
using namespace athena::bench;

int
main()
{
    ExperimentRunner runner;
    auto workloads = evalWorkloads();

    const double bandwidths[] = {1.6, 3.2, 6.4, 12.8};
    const PolicyKind policies[] = {
        PolicyKind::kOcpOnly, PolicyKind::kPfOnly,
        PolicyKind::kNaive, PolicyKind::kTlp, PolicyKind::kHpac,
        PolicyKind::kMab, PolicyKind::kAthena};

    JsonReport report("bench_fig14_bandwidth");
    TextTable t("Fig. 14: overall speedup vs main memory bandwidth "
                "(CD4)");
    t.addRow({"policy", "1.6 GB/s", "3.2 GB/s", "6.4 GB/s",
              "12.8 GB/s"});
    for (PolicyKind policy : policies) {
        std::vector<std::string> row = {policyKindName(policy)};
        for (double bw : bandwidths) {
            SystemConfig cfg =
                makeDesignConfig(CacheDesign::kCd4, policy);
            cfg.bandwidthGBps = bw;
            auto t0 = std::chrono::steady_clock::now();
            auto rows = runner.speedups(cfg, workloads);
            auto t1 = std::chrono::steady_clock::now();
            CategorySummary s =
                ExperimentRunner::summarize(rows, {});
            row.push_back(TextTable::num(s.overall));
            report.addCase(
                std::string("cd4_") + policyKindName(policy) +
                    "_bw" + TextTable::num(bw, 1),
                cfg.cores, 0, 0,
                std::chrono::duration<double>(t1 - t0).count(),
                "speedup", s.overall);
        }
        t.addRow(std::move(row));
    }
    t.print(std::cout);
    report.write("BENCH_fig14_bandwidth.json");

    std::cout << "\nExpected shape: naive/pf_only rise steeply with "
                 "bandwidth (degrading at 1.6); athena dominates "
                 "every column with its largest margin over naive "
                 "at 1.6 GB/s.\n";
    return 0;
}

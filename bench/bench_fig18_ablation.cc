/**
 * @file
 * Figure 18 — ablation study: the contribution of each state
 * feature and of the uncorrelated reward component.
 *
 * Configurations, cumulative:
 *   SA          stateless Athena, IPC-change-only reward
 *   SA+PA       + prefetcher accuracy (state-aware from here on)
 *   SA+PA+OA    + OCP accuracy
 *   ...+BW      + bandwidth usage
 *   ...+CP      + prefetch-induced cache pollution
 *   Athena      + uncorrelated reward (full composite reward)
 * plus the MAB reference.
 *
 * Paper's findings: stateless Athena slightly trails MAB; each
 * feature adds 1.4/1.7/0.8/0.1%; the uncorrelated reward adds a
 * further 1.0%.
 */

#include "bench_util.hh"

#include <cstddef>
#include <vector>

using namespace athena;
using namespace athena::bench;

namespace
{

SystemConfig
ablationConfig(bool stateless, std::size_t num_features,
               bool uncorrelated)
{
    SystemConfig cfg =
        makeDesignConfig(CacheDesign::kCd1, PolicyKind::kAthena);
    cfg.athena.stateless = stateless;
    cfg.athena.ipcRewardOnly = !uncorrelated && stateless;
    cfg.athena.useUncorrelatedReward = uncorrelated;
    auto all = defaultFeatureSet();
    cfg.athena.features.assign(all.begin(),
                               all.begin() + num_features);
    if (cfg.athena.features.empty()) {
        // The encoder needs at least one feature; stateless mode
        // ignores it anyway.
        cfg.athena.features = {StateFeature::kPrefetcherAccuracy};
    }
    return cfg;
}

} // namespace

int
main()
{
    ExperimentRunner runner;
    auto workloads = evalWorkloads();

    std::vector<NamedConfig> configs;
    configs.push_back(
        {"MAB", makeDesignConfig(CacheDesign::kCd1,
                                 PolicyKind::kMab)});
    configs.push_back({"SA (stateless, IPC reward)",
                       ablationConfig(true, 0, false)});
    configs.push_back({"SA+PA", ablationConfig(false, 1, false)});
    configs.push_back({"SA+PA+OA", ablationConfig(false, 2, false)});
    configs.push_back(
        {"SA+PA+OA+BW", ablationConfig(false, 3, false)});
    configs.push_back(
        {"SA+PA+OA+BW+CP", ablationConfig(false, 4, false)});
    configs.push_back(
        {"Athena (+uncorr reward)", ablationConfig(false, 4, true)});

    TextTable t("Fig. 18: feature & reward ablation (CD1, overall "
                "geomean)");
    t.addRow({"config", "overall"});
    for (const auto &nc : configs) {
        auto rows = runner.speedups(nc.cfg, workloads);
        CategorySummary s = ExperimentRunner::summarize(rows, {});
        t.addRow({nc.name, TextTable::num(s.overall)});
    }
    t.print(std::cout);

    std::cout << "\nExpected shape: mostly monotone increase from "
                 "SA to full Athena; the uncorrelated reward adds a "
                 "final increment.\n";
    return 0;
}

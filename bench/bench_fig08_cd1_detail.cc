/**
 * @file
 * Figure 8 — CD1 detail: (a) workload-category-wise quartile boxes
 * for every policy; (b) Athena vs. the StaticBest combination.
 *
 * Paper's findings: Athena raises the lower quartile on adverse
 * workloads and the upper quartile on friendly ones, and lands
 * within ~1% of StaticBest overall (10.3% vs 11.1%).
 */

#include "bench_util.hh"

#include <string>
#include <vector>

using namespace athena;
using namespace athena::bench;

int
main()
{
    ExperimentRunner runner;
    auto workloads = evalWorkloads();
    auto adverse =
        runner.adverseSet(classificationConfig(), workloads);

    auto cd1 = [](PolicyKind policy) {
        return makeDesignConfig(CacheDesign::kCd1, policy);
    };

    std::vector<NamedConfig> configs = {
        {"POPET", cd1(PolicyKind::kOcpOnly)},
        {"Pythia", cd1(PolicyKind::kPfOnly)},
        {"Naive", cd1(PolicyKind::kNaive)},
        {"HPAC", cd1(PolicyKind::kHpac)},
        {"MAB", cd1(PolicyKind::kMab)},
        {"Athena", cd1(PolicyKind::kAthena)},
    };

    std::map<std::string, std::vector<SpeedupRow>> rows;
    for (const auto &nc : configs)
        rows[nc.name] = runner.speedups(nc.cfg, workloads);

    // (a) category-wise box-and-whisker table.
    TextTable boxes("Fig. 8a: quartile boxes per category");
    boxes.addRow({"config", "category", "whLo", "Q1", "median", "Q3",
                  "whHi", "mean"});
    for (const auto &nc : configs) {
        auto split = [&](const char *category, bool want_adverse,
                         bool all) {
            std::vector<double> v;
            for (const auto &row : rows[nc.name]) {
                bool is_adverse = adverse.count(row.workload) > 0;
                if (all || is_adverse == want_adverse)
                    v.push_back(row.speedup);
            }
            QuartileSummary s = quartiles(v);
            boxes.addRow({nc.name, category,
                          TextTable::num(s.whiskerLo),
                          TextTable::num(s.q1),
                          TextTable::num(s.median),
                          TextTable::num(s.q3),
                          TextTable::num(s.whiskerHi),
                          TextTable::num(s.mean)});
        };
        split("adverse", true, false);
        split("friendly", false, false);
        split("overall", false, true);
    }
    boxes.print(std::cout);

    // (b) Athena vs StaticBest.
    auto best = staticBest(rows, {"POPET", "Pythia", "Naive"});
    TextTable cmp("Fig. 8b: Athena vs StaticBest");
    cmp.addRow({"config", "Adverse", "Friendly", "Overall"});
    auto add = [&](const char *name,
                   const std::vector<SpeedupRow> &r) {
        CategorySummary s = ExperimentRunner::summarize(r, adverse);
        cmp.addRow({name, TextTable::num(s.adverse),
                    TextTable::num(s.friendly),
                    TextTable::num(s.overall)});
    };
    add("Naive", rows["Naive"]);
    add("HPAC", rows["HPAC"]);
    add("MAB", rows["MAB"]);
    add("Athena", rows["Athena"]);
    add("StaticBest", best);
    cmp.print(std::cout);
    return 0;
}

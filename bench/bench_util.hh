/**
 * @file
 * Shared helpers for the per-figure bench binaries: named
 * configurations, the category table printer (SPEC / PARSEC /
 * Ligra / CVP / prefetcher-adverse / prefetcher-friendly /
 * overall), and the StaticBest reduction of section 2.1.2.
 *
 * Workload classification follows the paper: a workload is
 * prefetcher-adverse iff Pythia-only at L2C (CD1) degrades it
 * relative to the no-speculation baseline at 3.2 GB/s (Fig. 1).
 */

#ifndef ATHENA_BENCH_BENCH_UTIL_HH
#define ATHENA_BENCH_BENCH_UTIL_HH

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "common/stats.hh"
#include "common/table.hh"
#include "sim/runner.hh"

namespace athena::bench
{

/** A labelled system configuration (one bar group of a figure). */
struct NamedConfig
{
    std::string name;
    SystemConfig cfg;
};

/** The paper's reference classification config (Fig. 1). */
inline SystemConfig
classificationConfig()
{
    SystemConfig cfg =
        makeDesignConfig(CacheDesign::kCd1, PolicyKind::kPfOnly);
    cfg.bandwidthGBps = 3.2;
    return cfg;
}

/** Run each config over the workloads and print the category
 *  table; returns per-config rows for further reduction. */
inline std::map<std::string, std::vector<SpeedupRow>>
runCategoryTable(ExperimentRunner &runner, const std::string &title,
                 const std::vector<NamedConfig> &configs,
                 const std::vector<WorkloadSpec> &workloads,
                 const std::set<std::string> &adverse)
{
    TextTable table(title);
    table.addRow({"config", "SPEC", "PARSEC", "Ligra", "CVP",
                  "Adverse", "Friendly", "Overall"});

    std::map<std::string, std::vector<SpeedupRow>> all_rows;
    for (const NamedConfig &nc : configs) {
        auto rows = runner.speedups(nc.cfg, workloads);
        CategorySummary s = ExperimentRunner::summarize(rows, adverse);
        table.addRow({nc.name, TextTable::num(s.spec),
                      TextTable::num(s.parsec),
                      TextTable::num(s.ligra), TextTable::num(s.cvp),
                      TextTable::num(s.adverse),
                      TextTable::num(s.friendly),
                      TextTable::num(s.overall)});
        all_rows[nc.name] = std::move(rows);
    }
    table.print(std::cout);
    return all_rows;
}

/**
 * StaticBest (section 2.1.2): for each workload, the best of the
 * four static combos, selected retrospectively.
 */
inline std::vector<SpeedupRow>
staticBest(const std::map<std::string, std::vector<SpeedupRow>> &rows,
           const std::vector<std::string> &combo_names)
{
    std::vector<SpeedupRow> best;
    const auto &first = rows.at(combo_names.front());
    for (std::size_t i = 0; i < first.size(); ++i) {
        SpeedupRow row = first[i];
        for (const auto &name : combo_names) {
            const SpeedupRow &cand = rows.at(name)[i];
            if (cand.speedup > row.speedup)
                row = cand;
        }
        // "Both disabled" is always available: floor at 1.0.
        row.speedup = std::max(row.speedup, 1.0);
        best.push_back(std::move(row));
    }
    return best;
}

/**
 * Machine-readable report in the bench_throughput JSON schema: a
 * top-level "benchmark" name and "wall_seconds" aggregate plus a
 * "cases" array whose entries carry name / cores / instructions /
 * accesses / wall_seconds — so per-figure sweeps land in CI
 * artifacts diffable with the same tooling that reads
 * BENCH_throughput.json. Figure benches append their figure metric
 * (e.g. "speedup") as an extra per-case field.
 */
class JsonReport
{
  public:
    explicit JsonReport(std::string benchmark)
        : benchmark(std::move(benchmark))
    {}

    void
    addCase(const std::string &name, unsigned cores,
            std::uint64_t instructions, std::uint64_t accesses,
            double wall_seconds, const std::string &extra_key = "",
            double extra_value = 0.0)
    {
        cases.push_back({name, cores, instructions, accesses,
                         wall_seconds, extra_key, extra_value});
        totalWall += wall_seconds;
    }

    /**
     * Write to @p fallback_path, overridden by ATHENA_BENCH_JSON
     * (the same knob bench_throughput honours). Returns false when
     * the file cannot be opened.
     */
    bool
    write(const std::string &fallback_path) const
    {
        const char *env = std::getenv("ATHENA_BENCH_JSON");
        const std::string path =
            env && *env ? env : fallback_path;
        std::ofstream json(path);
        if (!json) {
            std::cerr << "cannot open " << path << "\n";
            return false;
        }
        json << "{\n"
             << "  \"benchmark\": \"" << benchmark << "\",\n"
             << "  \"wall_seconds\": " << totalWall << ",\n"
             << "  \"cases\": [\n";
        for (std::size_t i = 0; i < cases.size(); ++i) {
            const Case &c = cases[i];
            json << "    {\"name\": \"" << c.name << "\", "
                 << "\"cores\": " << c.cores << ", "
                 << "\"instructions\": " << c.instructions << ", "
                 << "\"accesses\": " << c.accesses << ", "
                 << "\"wall_seconds\": " << c.wallSeconds;
            if (!c.extraKey.empty()) {
                json << ", \"" << c.extraKey
                     << "\": " << c.extraValue;
            }
            json << "}" << (i + 1 < cases.size() ? "," : "") << "\n";
        }
        json << "  ]\n}\n";
        std::cout << "JSON -> " << path << "\n";
        return true;
    }

  private:
    struct Case
    {
        std::string name;
        unsigned cores;
        std::uint64_t instructions;
        std::uint64_t accesses;
        double wallSeconds;
        std::string extraKey;
        double extraValue;
    };

    std::string benchmark;
    std::vector<Case> cases;
    double totalWall = 0.0;
};

/** Print a one-line category summary for a labelled row set. */
inline void
printSummaryLine(const std::string &name,
                 const std::vector<SpeedupRow> &rows,
                 const std::set<std::string> &adverse)
{
    CategorySummary s = ExperimentRunner::summarize(rows, adverse);
    TextTable table;
    table.addRow({"config", "Adverse", "Friendly", "Overall"});
    table.addRow({name, TextTable::num(s.adverse),
                  TextTable::num(s.friendly),
                  TextTable::num(s.overall)});
    table.print(std::cout);
}

} // namespace athena::bench

#endif // ATHENA_BENCH_BENCH_UTIL_HH

/**
 * @file
 * Shared helpers for the per-figure bench binaries: named
 * configurations, the category table printer (SPEC / PARSEC /
 * Ligra / CVP / prefetcher-adverse / prefetcher-friendly /
 * overall), and the StaticBest reduction of section 2.1.2.
 *
 * Workload classification follows the paper: a workload is
 * prefetcher-adverse iff Pythia-only at L2C (CD1) degrades it
 * relative to the no-speculation baseline at 3.2 GB/s (Fig. 1).
 */

#ifndef ATHENA_BENCH_BENCH_UTIL_HH
#define ATHENA_BENCH_BENCH_UTIL_HH

#include <algorithm>
#include <cstddef>
#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "common/stats.hh"
#include "common/table.hh"
#include "sim/runner.hh"

namespace athena::bench
{

/** A labelled system configuration (one bar group of a figure). */
struct NamedConfig
{
    std::string name;
    SystemConfig cfg;
};

/** The paper's reference classification config (Fig. 1). */
inline SystemConfig
classificationConfig()
{
    SystemConfig cfg =
        makeDesignConfig(CacheDesign::kCd1, PolicyKind::kPfOnly);
    cfg.bandwidthGBps = 3.2;
    return cfg;
}

/** Run each config over the workloads and print the category
 *  table; returns per-config rows for further reduction. */
inline std::map<std::string, std::vector<SpeedupRow>>
runCategoryTable(ExperimentRunner &runner, const std::string &title,
                 const std::vector<NamedConfig> &configs,
                 const std::vector<WorkloadSpec> &workloads,
                 const std::set<std::string> &adverse)
{
    TextTable table(title);
    table.addRow({"config", "SPEC", "PARSEC", "Ligra", "CVP",
                  "Adverse", "Friendly", "Overall"});

    std::map<std::string, std::vector<SpeedupRow>> all_rows;
    for (const NamedConfig &nc : configs) {
        auto rows = runner.speedups(nc.cfg, workloads);
        CategorySummary s = ExperimentRunner::summarize(rows, adverse);
        table.addRow({nc.name, TextTable::num(s.spec),
                      TextTable::num(s.parsec),
                      TextTable::num(s.ligra), TextTable::num(s.cvp),
                      TextTable::num(s.adverse),
                      TextTable::num(s.friendly),
                      TextTable::num(s.overall)});
        all_rows[nc.name] = std::move(rows);
    }
    table.print(std::cout);
    return all_rows;
}

/**
 * StaticBest (section 2.1.2): for each workload, the best of the
 * four static combos, selected retrospectively.
 */
inline std::vector<SpeedupRow>
staticBest(const std::map<std::string, std::vector<SpeedupRow>> &rows,
           const std::vector<std::string> &combo_names)
{
    std::vector<SpeedupRow> best;
    const auto &first = rows.at(combo_names.front());
    for (std::size_t i = 0; i < first.size(); ++i) {
        SpeedupRow row = first[i];
        for (const auto &name : combo_names) {
            const SpeedupRow &cand = rows.at(name)[i];
            if (cand.speedup > row.speedup)
                row = cand;
        }
        // "Both disabled" is always available: floor at 1.0.
        row.speedup = std::max(row.speedup, 1.0);
        best.push_back(std::move(row));
    }
    return best;
}

/** Print a one-line category summary for a labelled row set. */
inline void
printSummaryLine(const std::string &name,
                 const std::vector<SpeedupRow> &rows,
                 const std::set<std::string> &adverse)
{
    CategorySummary s = ExperimentRunner::summarize(rows, adverse);
    TextTable table;
    table.addRow({"config", "Adverse", "Friendly", "Overall"});
    table.addRow({name, TextTable::num(s.adverse),
                  TextTable::num(s.friendly),
                  TextTable::num(s.overall)});
    table.print(std::cout);
}

} // namespace athena::bench

#endif // ATHENA_BENCH_BENCH_UTIL_HH

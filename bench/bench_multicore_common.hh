/**
 * @file
 * Shared driver for the multi-core figures (Fig. 15 and Fig. 16):
 * build the adverse/friendly/random mixes of section 6.1, run every
 * policy over them, and print per-category geomeans. The number of
 * mixes per category is ATHENA_MIXES (default 10; the paper uses
 * 30).
 */

#ifndef ATHENA_BENCH_BENCH_MULTICORE_COMMON_HH
#define ATHENA_BENCH_BENCH_MULTICORE_COMMON_HH

#include <cstddef>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench_util.hh"

namespace athena::bench
{

inline void
runMulticoreFigure(unsigned cores, const std::string &title)
{
    ExperimentRunner runner;
    auto workloads = evalWorkloads();
    auto adverse_set =
        runner.adverseSet(classificationConfig(), workloads);

    std::vector<std::string> adverse, friendly, all;
    for (const auto &spec : workloads) {
        all.push_back(spec.name);
        if (adverse_set.count(spec.name))
            adverse.push_back(spec.name);
        else
            friendly.push_back(spec.name);
    }

    unsigned per_category = 10;
    if (const char *v = std::getenv("ATHENA_MIXES")) {
        if (*v)
            per_category = static_cast<unsigned>(std::atoi(v));
    }
    auto mixes = buildMixes(adverse, friendly, all, cores,
                            per_category, 0xA11CE + cores);

    const PolicyKind policies[] = {
        PolicyKind::kOcpOnly, PolicyKind::kPfOnly,
        PolicyKind::kNaive, PolicyKind::kHpac, PolicyKind::kMab,
        PolicyKind::kAthena};

    TextTable t(title);
    t.addRow({"policy", "AdverseMix", "FriendlyMix", "RandomMix",
              "Overall"});
    for (PolicyKind policy : policies) {
        SystemConfig cfg =
            makeDesignConfig(CacheDesign::kCd1, policy);
        cfg.cores = cores;

        std::vector<double> per_mix(mixes.size());
        parallelFor(mixes.size(), [&](std::size_t i) {
            std::vector<WorkloadSpec> specs;
            for (const auto &name : mixes[i].workloads)
                specs.push_back(findWorkload(workloads, name));
            per_mix[i] = runner.mixSpeedup(cfg, specs);
        });

        std::vector<double> adv(per_mix.begin(),
                                per_mix.begin() + per_category);
        std::vector<double> fri(per_mix.begin() + per_category,
                                per_mix.begin() + 2 * per_category);
        std::vector<double> rnd(per_mix.begin() + 2 * per_category,
                                per_mix.end());
        t.addRow({policyKindName(policy),
                  TextTable::num(geomean(adv)),
                  TextTable::num(geomean(fri)),
                  TextTable::num(geomean(rnd)),
                  TextTable::num(geomean(per_mix))});
    }
    t.print(std::cout);

    std::cout << "\nExpected shape: athena leads every category; "
                 "its margin over naive is largest on the adverse "
                 "mixes.\n";
}

} // namespace athena::bench

#endif // ATHENA_BENCH_BENCH_MULTICORE_COMMON_HH

/**
 * @file
 * Simulation-engine throughput harness: drives Simulator end-to-end
 * over a matrix of configs x workloads x core counts and reports
 * simulated-accesses/sec (the engine's hot-path rate) plus
 * simulated-instructions/sec into a machine-readable
 * BENCH_throughput.json.
 *
 * This is the perf trajectory every engine-speed PR is judged
 * against. The matrix covers the distinct hot paths: cache-resident
 * streaming (prefetcher traffic dominates), DRAM-bound pointer
 * chasing (OCP + DRAM model dominate), the full learning stack
 * (Athena agent in the loop, including a short-epoch policy-heavy
 * case and a two-prefetcher CD3 case), and multi-core mixes — 4-core
 * synthetic, the 8-core Fig-16 shape, a 4-core trace-replay mix
 * (the multi-core stepping engines plus shared LLC/DRAM contention),
 * and the 16/32-core sharded presets (banked LLC + channeled DRAM
 * via makeManyCoreConfig — the scaled shared-memory plane).
 *
 * Measurement modes:
 *  - Repeats: every case runs ATHENA_BENCH_REPEATS times (default
 *    3) and reports the best (minimum-wall) run, which is robust to
 *    scheduler noise on shared hosts.
 *  - A/B interleave: when ATHENA_AB_BASELINE names a pinned
 *    baseline bench binary (e.g. built from the previous release),
 *    each of our repeats is interleaved with one baseline run —
 *    A B A B ... — so slow drift of the host (thermal, co-tenants)
 *    cancels out of the comparison. The JSON gains an "ab" block
 *    with the baseline rate and the measured speedup.
 *  - Parallel stepping A/B: every multi-core case additionally runs
 *    sequential-vs-parallel (RunPlan::stepThreads 1 vs cores) and
 *    the JSON gains a "parallel_stepping" block with per-case
 *    seq/par wall times and the speedup. Only meaningful on
 *    multi-core hosts; a 1-CPU box reports <= 1x by construction
 *    (results are bit-identical either way — see
 *    tests/test_parallel_step.cc).
 *  - Inference-batch A/B: the policy-heavy epoch500 cases (where
 *    the Athena/POPET decision loop dominates) additionally run
 *    batched-vs-scalar inference (SystemConfig::batchedInference
 *    on vs off, interleaved best-of) and the JSON gains an
 *    "inference_batch" block with per-case wall times and the
 *    speedup. Results are bit-identical either way — see
 *    tests/test_inference_batch.cc.
 *  - SIMD backend A/B: the same epoch500 cases run the batched
 *    plane with the auto-dispatched backend (AVX2 where available)
 *    vs the forced portable-scalar backend, and the JSON gains a
 *    "simd" block with per-case wall times and the speedup.
 *    Backends are bit-identical — see tests/test_simd_kernels.cc.
 *
 * Knobs:
 *  - ATHENA_SIM_INSTR      measured instructions per run (default 2M)
 *  - ATHENA_WARMUP_INSTR   warmup instructions per run (default 50k)
 *  - ATHENA_BENCH_REPEATS  repeats per case (default 3; 1 in CI)
 *  - ATHENA_AB_BASELINE    path to a pinned baseline bench binary
 *  - ATHENA_BENCH_JSON     output path (default BENCH_throughput.json)
 *  - ATHENA_BENCH_FILTER   comma-separated list of substrings: run
 *                          only cases whose name contains at least
 *                          one of them (CI smoke runs)
 */

#include <algorithm>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/simd.hh"
#include "sim/simulator.hh"
#include "sim/system_config.hh"
#include "trace/trace_file.hh"
#include "trace/zoo.hh"

namespace
{

using namespace athena;

std::uint64_t
envOr(const char *name, std::uint64_t fallback)
{
    const char *v = std::getenv(name);
    if (!v || !*v)
        return fallback;
    return std::strtoull(v, nullptr, 10);
}

struct Case
{
    std::string name;
    SystemConfig cfg;
    std::vector<WorkloadSpec> specs; ///< One per core.
    /** Per-core instruction scale (multi-core cases run shorter
     *  per core so total simulated work stays comparable). */
    unsigned instrDivisor = 1;
    /**
     * Part of the PR 1 regression-anchor quartet. The A/B speedup
     * is computed over anchor cases only, so a baseline binary
     * whose matrix predates the expansion is compared
     * like-for-like rather than against a different case mix.
     */
    bool abAnchor = false;
};

struct CaseResult
{
    std::string name;
    unsigned cores = 1;
    std::uint64_t instructions = 0;
    std::uint64_t accesses = 0;
    double wallSeconds = 0.0;
    double ipc = 0.0;
};

/**
 * Run one case. @p step_threads pins the stepping engine for the
 * sequential-vs-parallel A/B (0 = the auto default users get —
 * parallel for multi-core cases when the host is wide enough).
 */
CaseResult
runCase(const Case &c, std::uint64_t instr, std::uint64_t warmup,
        unsigned step_threads = 0)
{
    Simulator sim(c.cfg, c.specs);
    RunPlan plan(instr / c.instrDivisor, warmup / c.instrDivisor);
    plan.stepThreads = step_threads;
    auto t0 = std::chrono::steady_clock::now();
    SimResult res = sim.run(plan);
    auto t1 = std::chrono::steady_clock::now();

    CaseResult out;
    out.name = c.name;
    out.cores = c.cfg.cores;
    std::uint64_t cycles_max = 1;
    for (const auto &core : res.cores) {
        out.instructions += core.instructions;
        out.accesses += core.loads + core.stores;
        cycles_max = std::max(cycles_max, core.cycles);
    }
    out.wallSeconds =
        std::chrono::duration<double>(t1 - t0).count();
    out.ipc = static_cast<double>(out.instructions) /
              static_cast<double>(cycles_max);
    return out;
}

/** Best (min-wall) observation of one baseline case across the
 *  interleaved repeats. */
struct BaselineCase
{
    std::uint64_t accesses = 0;
    double wallSeconds = 0.0;
    unsigned cores = 1;
};

/**
 * Run a pinned baseline binary once and fold its per-case results
 * (minimum wall per case) into @p best_cases. Per-case best-of is
 * what our own matrix reports, so the two sides of the A/B stay
 * symmetric and equally robust to scheduler noise. Returns true if
 * the baseline emitted the expanded-matrix schema (has per-case
 * "cores"), false for the PR 1 schema (single-core quartet only).
 */
bool
runBaselineOnce(const std::string &binary, std::uint64_t instr,
                std::uint64_t warmup,
                std::map<std::string, BaselineCase> &best_cases)
{
    std::string tmp = "/tmp/athena_ab_baseline.json";
    std::ostringstream cmd;
    cmd << "ATHENA_BENCH_REPEATS=1"
        << " ATHENA_AB_BASELINE="
        << " ATHENA_SIM_INSTR=" << instr
        << " ATHENA_WARMUP_INSTR=" << warmup
        << " ATHENA_BENCH_JSON=" << tmp << " " << binary
        << " > /dev/null 2>&1";
    if (std::system(cmd.str().c_str()) != 0) {
        std::cerr << "A/B baseline run failed: " << binary << "\n";
        return false;
    }
    std::ifstream in(tmp);
    std::string line;
    bool new_schema = false;
    while (std::getline(in, line)) {
        auto field = [&line](const char *key, double fallback) {
            auto pos = line.find(key);
            if (pos == std::string::npos)
                return fallback;
            pos = line.find(':', pos);
            return pos == std::string::npos
                       ? fallback
                       : std::strtod(line.c_str() + pos + 1,
                                     nullptr);
        };
        auto name_pos = line.find("\"name\":");
        if (name_pos == std::string::npos)
            continue;
        auto q0 = line.find('"', name_pos + 7);
        auto q1 = line.find('"', q0 + 1);
        if (q0 == std::string::npos || q1 == std::string::npos)
            continue;
        std::string name = line.substr(q0 + 1, q1 - q0 - 1);
        BaselineCase c;
        c.accesses =
            static_cast<std::uint64_t>(field("\"accesses\"", 0.0));
        c.wallSeconds = field("\"wall_seconds\"", 0.0);
        double cores = field("\"cores\"", 0.0);
        if (cores > 0.0) {
            c.cores = static_cast<unsigned>(cores);
            new_schema = true;
        }
        if (c.wallSeconds <= 0.0)
            continue;
        auto it = best_cases.find(name);
        if (it == best_cases.end() ||
            c.wallSeconds < it->second.wallSeconds)
            best_cases[name] = c;
    }
    return new_schema;
}

} // namespace

int
main(int argc, char **argv)
{
    std::uint64_t instr = envOr("ATHENA_SIM_INSTR", 2000000);
    std::uint64_t warmup = envOr("ATHENA_WARMUP_INSTR", 50000);
    auto repeats =
        static_cast<unsigned>(envOr("ATHENA_BENCH_REPEATS", 3));
    if (repeats == 0)
        repeats = 1;
    const char *ab_env = std::getenv("ATHENA_AB_BASELINE");
    std::string ab_baseline = ab_env ? ab_env : "";
    const char *json_env = std::getenv("ATHENA_BENCH_JSON");
    std::string json_path =
        argc > 1 ? argv[1]
                 : (json_env && *json_env ? json_env
                                          : "BENCH_throughput.json");

    auto workloads = evalWorkloads();
    const WorkloadSpec &stream = workloads.front();
    const WorkloadSpec *chase = &workloads.front();
    for (const WorkloadSpec &w : workloads) {
        if (w.name.find("mcf") != std::string::npos ||
            w.name.find("chase") != std::string::npos) {
            chase = &w;
            break;
        }
    }
    // A 4-core mix of distinct workloads (fig15-style stepping).
    std::vector<WorkloadSpec> mix4;
    for (std::size_t i = 0; mix4.size() < 4 && i < workloads.size();
         i += workloads.size() / 4)
        mix4.push_back(workloads[i]);
    while (mix4.size() < 4)
        mix4.push_back(workloads.front());
    // An 8-core mix spread across the zoo (fig16-style stepping).
    std::vector<WorkloadSpec> mix8;
    for (std::size_t i = 0; i < 8; ++i)
        mix8.push_back(workloads[(i * workloads.size()) / 8]);

    std::vector<Case> cases;
    auto add_sc = [&](std::string name, SystemConfig cfg,
                      const WorkloadSpec &spec,
                      bool anchor = false) {
        cases.push_back(
            {std::move(name), std::move(cfg), {spec}, 1, anchor});
    };
    // Single-core: the PR 1 quartet (the regression anchor).
    add_sc("cd1_naive_" + stream.name,
           makeDesignConfig(CacheDesign::kCd1, PolicyKind::kNaive),
           stream, true);
    add_sc("cd1_naive_" + chase->name,
           makeDesignConfig(CacheDesign::kCd1, PolicyKind::kNaive),
           *chase, true);
    add_sc("cd1_athena_" + stream.name,
           makeDesignConfig(CacheDesign::kCd1, PolicyKind::kAthena),
           stream, true);
    add_sc("cd4_athena_" + chase->name,
           makeDesignConfig(CacheDesign::kCd4, PolicyKind::kAthena),
           *chase, true);
    // Athena-policy-heavy: 500-instruction epochs run the full
    // agent decision loop ~16x more often per simulated
    // instruction.
    {
        SystemConfig cfg =
            makeDesignConfig(CacheDesign::kCd1, PolicyKind::kAthena);
        cfg.epochInstructions = 500;
        add_sc("cd1_athena_epoch500_" + stream.name, cfg, stream);
    }
    // Two coordinated L2C prefetchers (CD3) under Athena.
    add_sc("cd3_athena_" + stream.name,
           makeDesignConfig(CacheDesign::kCd3, PolicyKind::kAthena),
           stream);
    // 4-core mixes: the multi-core step picker inner loop.
    {
        SystemConfig cfg =
            makeDesignConfig(CacheDesign::kCd1, PolicyKind::kNaive);
        cfg.cores = 4;
        cases.push_back({"mc4_cd1_naive_mix", cfg, mix4, 4});
        SystemConfig acfg =
            makeDesignConfig(CacheDesign::kCd1, PolicyKind::kAthena);
        acfg.cores = 4;
        cases.push_back({"mc4_cd1_athena_mix", acfg, mix4, 4});
        // Policy-heavy multi-core: 500-instruction epochs on every
        // core — the agent + predictor inference load the batched
        // SoA plane targets, under multi-core stepping.
        SystemConfig ecfg = acfg;
        ecfg.epochInstructions = 500;
        cases.push_back(
            {"mc4_cd1_athena_epoch500_mix", ecfg, mix4, 4});
    }
    // DRAM-pressure case: two L2C prefetchers (CD3) x 4 cores at a
    // bandwidth-starved 1.6 GB/s/core — prefetch bursts pile onto
    // the shared controller queue, so the batched drain kernel is
    // the dominant service path. This is the guard for the
    // request-queue refactor of the memory hierarchy.
    {
        SystemConfig cfg =
            makeDesignConfig(CacheDesign::kCd3, PolicyKind::kNaive);
        cfg.cores = 4;
        cfg.bandwidthGBps = 1.6;
        cases.push_back({"mc4_cd3_naive_lowbw_mix", cfg, mix4, 4});
    }
    // 8-core Fig-16-style case: the configuration the parallel
    // stepping engine exists for — eight private hierarchies
    // contending on the shared LLC/DRAM under the full Athena
    // learning stack.
    {
        SystemConfig cfg =
            makeDesignConfig(CacheDesign::kCd1, PolicyKind::kAthena);
        cfg.cores = 8;
        cases.push_back({"mc8_cd1_athena_fig16_mix", cfg, mix8, 8});
    }
    // 16/32-core sharded presets: the scaled shared-memory plane
    // (banked LLC + channeled DRAM). These are the configurations
    // the sharding refactor exists for — wide parallel stepping
    // with per-bank/per-channel shared state. Per-core budget
    // shrinks with the core count so total simulated work stays
    // comparable to the rest of the matrix.
    {
        auto strided = [&](std::size_t n) {
            std::vector<WorkloadSpec> mix;
            for (std::size_t i = 0; i < n; ++i)
                mix.push_back(workloads[(i * workloads.size()) / n]);
            return mix;
        };
        cases.push_back({"mc16_cd1_athena_sharded_mix",
                         makeManyCoreConfig(16, CacheDesign::kCd1,
                                            PolicyKind::kAthena),
                         strided(16), 16});
        cases.push_back({"mc32_cd1_naive_sharded_mix",
                         makeManyCoreConfig(32), strided(32), 32});
    }
    // Trace replay smoke: the checked-in sample looped infinitely,
    // so the TraceFile decode + replay refill path sits in the
    // guarded throughput aggregate alongside the synthetic kernels.
    // The sample resolves via ATHENA_TRACE_SMOKE, the working
    // directory, then the compiled-in source tree. An unresolvable
    // sample is a hard error: silently dropping the fastest case
    // would shrink the aggregate and trip the regression guard with
    // a phantom regression.
    {
        const char *trace_env = std::getenv("ATHENA_TRACE_SMOKE");
        std::string trace_path;
        if (trace_env && *trace_env) {
            trace_path = trace_env; // explicit choice: no fallback
        } else {
            trace_path = "tests/data/sample_mix.bin";
            if (!std::ifstream(trace_path).good()) {
                trace_path = std::string(ATHENA_SOURCE_DIR) +
                             "/tests/data/sample_mix.bin";
            }
        }
        if (!std::ifstream(trace_path).good()) {
            std::cerr << "cannot resolve trace smoke sample: "
                      << trace_path
                      << " (set ATHENA_TRACE_SMOKE)\n";
            return 1;
        }
        WorkloadSpec replay =
            traceWorkloadSpec("sample_mix.bin", trace_path, 0);
        add_sc("cd1_naive_trace_replay",
               makeDesignConfig(CacheDesign::kCd1,
                                PolicyKind::kNaive),
               replay);
        // 4-core trace-replay mix: the finite-stream replay refill
        // path under multi-core stepping. Cores alternate the
        // binary sample with its text sibling when that resolves
        // (distinct decode paths), else replay the same sample.
        {
            WorkloadSpec alt = replay;
            auto slash = trace_path.find_last_of('/');
            std::string loop_path =
                (slash == std::string::npos
                     ? std::string()
                     : trace_path.substr(0, slash + 1)) +
                "sample_loop.txt";
            if (std::ifstream(loop_path).good()) {
                alt = traceWorkloadSpec("sample_loop.txt",
                                        loop_path, 0);
            }
            SystemConfig cfg = makeDesignConfig(
                CacheDesign::kCd1, PolicyKind::kNaive);
            cfg.cores = 4;
            cases.push_back({"mc4_cd1_naive_trace_replay_mix", cfg,
                             {replay, alt, replay, alt}, 4});
        }
    }

    // Case filter (CI smoke): a comma-separated list of substrings;
    // keep cases whose name contains at least one of them. An empty
    // match is a hard error — a typo'd filter silently benchmarking
    // nothing would look like a perf miracle.
    const char *filter_env = std::getenv("ATHENA_BENCH_FILTER");
    if (filter_env && *filter_env) {
        std::vector<std::string> tokens;
        std::string filter = filter_env;
        for (std::size_t pos = 0; pos <= filter.size();) {
            std::size_t comma = filter.find(',', pos);
            if (comma == std::string::npos)
                comma = filter.size();
            if (comma > pos)
                tokens.push_back(filter.substr(pos, comma - pos));
            pos = comma + 1;
        }
        std::vector<Case> kept;
        for (Case &c : cases) {
            for (const std::string &t : tokens) {
                if (c.name.find(t) != std::string::npos) {
                    kept.push_back(std::move(c));
                    break;
                }
            }
        }
        if (kept.empty()) {
            std::cerr << "ATHENA_BENCH_FILTER='" << filter_env
                      << "' matches no case\n";
            return 1;
        }
        cases = std::move(kept);
    }

    // Interleaved repeats: A(all cases) B(baseline) A B ...
    std::vector<CaseResult> best(cases.size());
    std::map<std::string, BaselineCase> baseline_cases;
    bool baseline_new_schema = false;
    for (unsigned r = 0; r < repeats; ++r) {
        for (std::size_t i = 0; i < cases.size(); ++i) {
            CaseResult res = runCase(cases[i], instr, warmup);
            if (best[i].name.empty() ||
                res.wallSeconds < best[i].wallSeconds)
                best[i] = res;
        }
        if (!ab_baseline.empty())
            baseline_new_schema |= runBaselineOnce(
                ab_baseline, instr, warmup, baseline_cases);
    }

    // Sequential-vs-parallel stepping A/B over the multi-core
    // cases: each engine is pinned explicitly (stepThreads 1 vs
    // cores) and gets the same best-of-repeats treatment, so the
    // reported speedup is engine-vs-engine on this host rather
    // than engine-vs-committed-baseline across hosts. Both engines
    // produce bit-identical results (tests/test_parallel_step.cc);
    // only wall clock differs. On hosts narrower than the core
    // count the parallel engine time-slices and the "speedup" is
    // honestly below 1 — the number is still reported rather than
    // suppressed.
    struct ParAb
    {
        std::string name;
        unsigned cores = 1;
        double seqWall = 0.0;
        double parWall = 0.0;
    };
    std::vector<ParAb> par_ab;
    for (const Case &c : cases) {
        if (c.cfg.cores < 2)
            continue;
        ParAb row;
        row.name = c.name;
        row.cores = c.cfg.cores;
        for (unsigned r = 0; r < repeats; ++r) {
            double seq = runCase(c, instr, warmup, 1).wallSeconds;
            double par =
                runCase(c, instr, warmup, c.cfg.cores).wallSeconds;
            if (r == 0 || seq < row.seqWall)
                row.seqWall = seq;
            if (r == 0 || par < row.parWall)
                row.parWall = par;
        }
        std::cout << "parallel A/B " << row.name << ": seq "
                  << row.seqWall << " s, par " << row.parWall
                  << " s -> "
                  << (row.parWall > 0.0 ? row.seqWall / row.parWall
                                        : 0.0)
                  << "x\n";
        par_ab.push_back(row);
    }

    // Batched-vs-scalar inference A/B over the policy-heavy
    // epoch500 cases: the config knob is flipped directly
    // (batchedInference on vs off) and the two sides interleave —
    // batched, scalar, batched, scalar — with best-of-repeats per
    // side, so host drift cancels out. Both sides produce
    // bit-identical simulation results (the equivalence suite
    // enforces it); only wall clock differs.
    struct InfAb
    {
        std::string name;
        unsigned cores = 1;
        double batchedWall = 0.0;
        double scalarWall = 0.0;
    };
    std::vector<InfAb> inf_ab;
    for (const Case &c : cases) {
        if (c.name.find("epoch500") == std::string::npos)
            continue;
        Case batched = c;
        batched.cfg.batchedInference = true;
        Case scalar = c;
        scalar.cfg.batchedInference = false;
        InfAb row;
        row.name = c.name;
        row.cores = c.cfg.cores;
        // Alternate which side runs first in each interleaved pair:
        // the first run after a Simulator teardown sees colder
        // allocator/page state, and pinning one side to that slot
        // reads as a systematic (phantom) regression on hosts with
        // slow page reclaim.
        for (unsigned r = 0; r < repeats; ++r) {
            double b, s;
            if (r & 1) {
                s = runCase(scalar, instr, warmup).wallSeconds;
                b = runCase(batched, instr, warmup).wallSeconds;
            } else {
                b = runCase(batched, instr, warmup).wallSeconds;
                s = runCase(scalar, instr, warmup).wallSeconds;
            }
            if (r == 0 || b < row.batchedWall)
                row.batchedWall = b;
            if (r == 0 || s < row.scalarWall)
                row.scalarWall = s;
        }
        std::cout << "inference A/B " << row.name << ": batched "
                  << row.batchedWall << " s, scalar "
                  << row.scalarWall << " s -> "
                  << (row.batchedWall > 0.0
                          ? row.scalarWall / row.batchedWall
                          : 0.0)
                  << "x\n";
        inf_ab.push_back(row);
    }

    // SIMD backend A/B over the same epoch500 cases: both sides run
    // the batched plane; side A dispatches kernels through the
    // auto-resolved backend (AVX2 where the CPU has it), side B
    // forces the portable scalar backend via forceBackend() between
    // Simulator constructions. Same interleave/first-slot-alternation
    // discipline as the inference A/B; results are bit-identical
    // across backends (tests/test_simd_kernels.cc), only wall clock
    // differs. On pre-AVX2 hosts both sides resolve to scalar and
    // the block honestly reports ~1x.
    struct SimdAb
    {
        std::string name;
        unsigned cores = 1;
        double wideWall = 0.0;
        double scalarWall = 0.0;
    };
    std::vector<SimdAb> simd_ab;
    auto run_with_backend = [&](const Case &c, bool force_scalar) {
        if (force_scalar)
            simd::forceBackend(simd::Backend::kScalar);
        else
            simd::clearForcedBackend();
        double wall = runCase(c, instr, warmup).wallSeconds;
        simd::clearForcedBackend();
        return wall;
    };
    for (const Case &c : cases) {
        if (c.name.find("epoch500") == std::string::npos)
            continue;
        Case batched = c;
        batched.cfg.batchedInference = true;
        SimdAb row;
        row.name = c.name;
        row.cores = c.cfg.cores;
        for (unsigned r = 0; r < repeats; ++r) {
            double w, s;
            if (r & 1) {
                s = run_with_backend(batched, true);
                w = run_with_backend(batched, false);
            } else {
                w = run_with_backend(batched, false);
                s = run_with_backend(batched, true);
            }
            if (r == 0 || w < row.wideWall)
                row.wideWall = w;
            if (r == 0 || s < row.scalarWall)
                row.scalarWall = s;
        }
        std::cout << "simd A/B " << row.name << ": "
                  << simd::backendName(simd::activeBackend()) << " "
                  << row.wideWall << " s, scalar " << row.scalarWall
                  << " s -> "
                  << (row.wideWall > 0.0
                          ? row.scalarWall / row.wideWall
                          : 0.0)
                  << "x\n";
        simd_ab.push_back(row);
    }
    // A-side aggregates from per-case bests, mirroring what the
    // baseline side gets below. Like-for-like means intersecting
    // case *names*: a baseline binary whose matrix is smaller than
    // today's (e.g. predates the trace-replay case) contributes —
    // and is compared against — only the cases both sides ran.
    std::uint64_t anchor_accesses = 0, ab_sc_accesses = 0;
    double anchor_wall = 0.0, ab_sc_wall = 0.0;
    std::set<std::string> our_sc_names;
    for (std::size_t i = 0; i < cases.size(); ++i) {
        if (cases[i].abAnchor) {
            anchor_accesses += best[i].accesses;
            anchor_wall += best[i].wallSeconds;
        }
        if (cases[i].cfg.cores == 1) {
            our_sc_names.insert(cases[i].name);
            if (baseline_cases.count(cases[i].name)) {
                ab_sc_accesses += best[i].accesses;
                ab_sc_wall += best[i].wallSeconds;
            }
        }
    }
    double baseline_rate = 0.0;
    {
        std::uint64_t acc = 0;
        double wall = 0.0;
        for (const auto &[name, c] : baseline_cases) {
            if (c.cores != 1)
                continue; // compare single-core against single-core
            if (baseline_new_schema && !our_sc_names.count(name))
                continue; // intersect both directions
            acc += c.accesses;
            wall += c.wallSeconds;
        }
        if (wall > 0.0)
            baseline_rate = static_cast<double>(acc) / wall;
    }

    std::uint64_t total_instr = 0, total_accesses = 0;
    std::uint64_t sc_accesses = 0, mc_accesses = 0;
    double total_wall = 0.0, sc_wall = 0.0, mc_wall = 0.0;
    for (const CaseResult &res : best) {
        std::cout << res.name << ": "
                  << static_cast<std::uint64_t>(
                         static_cast<double>(res.accesses) /
                         res.wallSeconds)
                  << " accesses/sec (" << res.cores << " core, ipc "
                  << res.ipc << ", " << res.wallSeconds << " s)\n";
        total_instr += res.instructions;
        total_accesses += res.accesses;
        total_wall += res.wallSeconds;
        if (res.cores == 1) {
            sc_accesses += res.accesses;
            sc_wall += res.wallSeconds;
        } else {
            mc_accesses += res.accesses;
            mc_wall += res.wallSeconds;
        }
    }

    auto rate = [](std::uint64_t n, double wall) {
        return wall > 0.0 ? static_cast<double>(n) / wall : 0.0;
    };
    double accesses_per_sec = rate(total_accesses, total_wall);
    double instr_per_sec = rate(total_instr, total_wall);
    double sc_rate = rate(sc_accesses, sc_wall);
    double mc_rate = rate(mc_accesses, mc_wall);

    std::ofstream json(json_path);
    if (!json) {
        std::cerr << "cannot open " << json_path << "\n";
        return 1;
    }
    json << "{\n"
         << "  \"benchmark\": \"bench_throughput\",\n"
         << "  \"sim_instructions\": " << instr << ",\n"
         << "  \"warmup_instructions\": " << warmup << ",\n"
         << "  \"repeats\": " << repeats << ",\n"
         << "  \"accesses_per_sec\": " << accesses_per_sec << ",\n"
         << "  \"instructions_per_sec\": " << instr_per_sec << ",\n"
         << "  \"single_core_accesses_per_sec\": " << sc_rate
         << ",\n"
         << "  \"multi_core_accesses_per_sec\": " << mc_rate
         << ",\n"
         << "  \"wall_seconds\": " << total_wall << ",\n";
    if (!ab_baseline.empty() && baseline_rate > 0.0) {
        // Like-for-like: a new-schema baseline compares the
        // single-core cases both binaries ran (name intersection);
        // an old-schema baseline's matrix was exactly today's
        // anchor quartet.
        double ours =
            baseline_new_schema
                ? (ab_sc_wall > 0.0
                       ? static_cast<double>(ab_sc_accesses) /
                             ab_sc_wall
                       : 0.0)
                : (anchor_wall > 0.0
                       ? static_cast<double>(anchor_accesses) /
                             anchor_wall
                       : 0.0);
        const char *compared = baseline_new_schema
                                   ? "single_core"
                                   : "anchor_quartet";
        json << "  \"ab\": {\"baseline\": \"" << ab_baseline
             << "\", \"baseline_accesses_per_sec\": "
             << baseline_rate << ", \"compared\": \"" << compared
             << "\", \"single_core_speedup\": "
             << ours / baseline_rate << "},\n";
        std::cout << "A/B (" << compared << "): " << ours
                  << " vs baseline " << baseline_rate << " -> "
                  << ours / baseline_rate << "x\n";
    }
    // Field names chosen to not collide with the "accesses" /
    // "wall_seconds" keys the line-oriented A/B baseline parser
    // scans for, so this binary stays usable as a baseline.
    json << "  \"parallel_stepping\": {\"hw_concurrency\": "
         << std::thread::hardware_concurrency()
         << ", \"cases\": [\n";
    for (std::size_t i = 0; i < par_ab.size(); ++i) {
        const ParAb &p = par_ab[i];
        json << "    {\"name\": \"" << p.name << "\", "
             << "\"cores\": " << p.cores << ", "
             << "\"seq_wall_s\": " << p.seqWall << ", "
             << "\"par_wall_s\": " << p.parWall << ", "
             << "\"speedup\": "
             << (p.parWall > 0.0 ? p.seqWall / p.parWall : 0.0)
             << "}" << (i + 1 < par_ab.size() ? "," : "") << "\n";
    }
    json << "  ]},\n";
    // Same naming discipline as parallel_stepping: no "accesses" /
    // "wall_seconds" keys, so the baseline parser ignores the rows.
    json << "  \"inference_batch\": {\"cases\": [\n";
    for (std::size_t i = 0; i < inf_ab.size(); ++i) {
        const InfAb &p = inf_ab[i];
        json << "    {\"name\": \"" << p.name << "\", "
             << "\"cores\": " << p.cores << ", "
             << "\"batched_wall_s\": " << p.batchedWall << ", "
             << "\"scalar_wall_s\": " << p.scalarWall << ", "
             << "\"speedup\": "
             << (p.batchedWall > 0.0 ? p.scalarWall / p.batchedWall
                                     : 0.0)
             << "}" << (i + 1 < inf_ab.size() ? "," : "") << "\n";
    }
    json << "  ]},\n";
    // SIMD backend A/B rows, same naming discipline (no "accesses"
    // / "wall_seconds" keys). "backend" records what side A's auto
    // dispatch resolved to on this host.
    json << "  \"simd\": {\"backend\": \""
         << simd::backendName(simd::activeBackend())
         << "\", \"cases\": [\n";
    for (std::size_t i = 0; i < simd_ab.size(); ++i) {
        const SimdAb &p = simd_ab[i];
        json << "    {\"name\": \"" << p.name << "\", "
             << "\"cores\": " << p.cores << ", "
             << "\"wide_wall_s\": " << p.wideWall << ", "
             << "\"scalar_backend_wall_s\": " << p.scalarWall << ", "
             << "\"speedup\": "
             << (p.wideWall > 0.0 ? p.scalarWall / p.wideWall : 0.0)
             << "}" << (i + 1 < simd_ab.size() ? "," : "") << "\n";
    }
    json << "  ]},\n";
    json << "  \"cases\": [\n";
    for (std::size_t i = 0; i < best.size(); ++i) {
        const CaseResult &r = best[i];
        json << "    {\"name\": \"" << r.name << "\", "
             << "\"cores\": " << r.cores << ", "
             << "\"instructions\": " << r.instructions << ", "
             << "\"accesses\": " << r.accesses << ", "
             << "\"wall_seconds\": " << r.wallSeconds << ", "
             << "\"ipc\": " << r.ipc << "}"
             << (i + 1 < best.size() ? "," : "") << "\n";
    }
    json << "  ]\n}\n";

    std::cout << "TOTAL: "
              << static_cast<std::uint64_t>(accesses_per_sec)
              << " accesses/sec (sc "
              << static_cast<std::uint64_t>(sc_rate) << ", mc "
              << static_cast<std::uint64_t>(mc_rate) << ") over "
              << total_wall << " s -> " << json_path << "\n";
    return 0;
}

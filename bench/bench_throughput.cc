/**
 * @file
 * Simulation-engine throughput harness: drives Simulator end-to-end
 * over a small matrix of configs x workloads and reports
 * simulated-accesses/sec (the engine's hot-path rate) plus
 * simulated-instructions/sec into a machine-readable
 * BENCH_throughput.json.
 *
 * This is the perf trajectory every engine-speed PR is judged
 * against: run it before and after a hot-path change and compare
 * `accesses_per_sec`.
 *
 * Knobs:
 *  - ATHENA_SIM_INSTR    measured instructions per run (default 2M)
 *  - ATHENA_WARMUP_INSTR warmup instructions per run (default 50k)
 *  - ATHENA_BENCH_JSON   output path (default BENCH_throughput.json)
 */

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "sim/simulator.hh"
#include "sim/system_config.hh"
#include "trace/zoo.hh"

namespace
{

using namespace athena;

std::uint64_t
envOr(const char *name, std::uint64_t fallback)
{
    const char *v = std::getenv(name);
    if (!v || !*v)
        return fallback;
    return std::strtoull(v, nullptr, 10);
}

struct Case
{
    std::string name;
    SystemConfig cfg;
    WorkloadSpec spec;
};

struct CaseResult
{
    std::string name;
    std::uint64_t instructions = 0;
    std::uint64_t accesses = 0;
    double wallSeconds = 0.0;
    double ipc = 0.0;
};

CaseResult
runCase(const Case &c, std::uint64_t instr, std::uint64_t warmup)
{
    Simulator sim(c.cfg, {c.spec});
    auto t0 = std::chrono::steady_clock::now();
    SimResult res = sim.run(instr, warmup);
    auto t1 = std::chrono::steady_clock::now();

    CaseResult out;
    out.name = c.name;
    out.instructions = res.cores[0].instructions;
    out.accesses = res.cores[0].loads + res.cores[0].stores;
    out.wallSeconds =
        std::chrono::duration<double>(t1 - t0).count();
    out.ipc = res.ipc();
    return out;
}

} // namespace

int
main(int argc, char **argv)
{
    std::uint64_t instr = envOr("ATHENA_SIM_INSTR", 2000000);
    std::uint64_t warmup = envOr("ATHENA_WARMUP_INSTR", 50000);
    const char *json_env = std::getenv("ATHENA_BENCH_JSON");
    std::string json_path =
        argc > 1 ? argv[1]
                 : (json_env && *json_env ? json_env
                                          : "BENCH_throughput.json");

    // A throughput matrix that exercises the distinct hot paths:
    // cache-resident streaming (prefetcher traffic dominates),
    // DRAM-bound pointer chasing (OCP + DRAM model dominate), and
    // the full learning stack (Athena agent in the loop).
    auto workloads = evalWorkloads();
    const WorkloadSpec &stream = workloads.front();
    const WorkloadSpec *chase = &workloads.front();
    for (const WorkloadSpec &w : workloads) {
        if (w.name.find("mcf") != std::string::npos ||
            w.name.find("chase") != std::string::npos) {
            chase = &w;
            break;
        }
    }

    std::vector<Case> cases;
    cases.push_back({"cd1_naive_" + stream.name,
                     makeDesignConfig(CacheDesign::kCd1,
                                      PolicyKind::kNaive),
                     stream});
    cases.push_back({"cd1_naive_" + chase->name,
                     makeDesignConfig(CacheDesign::kCd1,
                                      PolicyKind::kNaive),
                     *chase});
    cases.push_back({"cd1_athena_" + stream.name,
                     makeDesignConfig(CacheDesign::kCd1,
                                      PolicyKind::kAthena),
                     stream});
    cases.push_back({"cd4_athena_" + chase->name,
                     makeDesignConfig(CacheDesign::kCd4,
                                      PolicyKind::kAthena),
                     *chase});

    std::vector<CaseResult> results;
    std::uint64_t total_instr = 0;
    std::uint64_t total_accesses = 0;
    double total_wall = 0.0;
    for (const Case &c : cases) {
        CaseResult r = runCase(c, instr, warmup);
        std::cout << r.name << ": "
                  << static_cast<std::uint64_t>(
                         static_cast<double>(r.accesses) /
                         r.wallSeconds)
                  << " accesses/sec, "
                  << static_cast<std::uint64_t>(
                         static_cast<double>(r.instructions) /
                         r.wallSeconds)
                  << " instr/sec (ipc " << r.ipc << ", "
                  << r.wallSeconds << " s)\n";
        total_instr += r.instructions;
        total_accesses += r.accesses;
        total_wall += r.wallSeconds;
        results.push_back(std::move(r));
    }

    double accesses_per_sec =
        total_wall > 0.0
            ? static_cast<double>(total_accesses) / total_wall
            : 0.0;
    double instr_per_sec =
        total_wall > 0.0
            ? static_cast<double>(total_instr) / total_wall
            : 0.0;

    std::ofstream json(json_path);
    if (!json) {
        std::cerr << "cannot open " << json_path << "\n";
        return 1;
    }
    json << "{\n"
         << "  \"benchmark\": \"bench_throughput\",\n"
         << "  \"sim_instructions\": " << instr << ",\n"
         << "  \"warmup_instructions\": " << warmup << ",\n"
         << "  \"accesses_per_sec\": " << accesses_per_sec << ",\n"
         << "  \"instructions_per_sec\": " << instr_per_sec << ",\n"
         << "  \"wall_seconds\": " << total_wall << ",\n"
         << "  \"cases\": [\n";
    for (std::size_t i = 0; i < results.size(); ++i) {
        const CaseResult &r = results[i];
        json << "    {\"name\": \"" << r.name << "\", "
             << "\"instructions\": " << r.instructions << ", "
             << "\"accesses\": " << r.accesses << ", "
             << "\"wall_seconds\": " << r.wallSeconds << ", "
             << "\"ipc\": " << r.ipc << "}"
             << (i + 1 < results.size() ? "," : "") << "\n";
    }
    json << "  ]\n}\n";

    std::cout << "TOTAL: "
              << static_cast<std::uint64_t>(accesses_per_sec)
              << " accesses/sec over " << total_wall
              << " s -> " << json_path << "\n";
    return 0;
}

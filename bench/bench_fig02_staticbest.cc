/**
 * @file
 * Figure 2 — POPET / Pythia alone vs. the Naive combination vs. the
 * retrospective StaticBest combination (section 2.1.2).
 *
 * Paper's finding: Naive degrades adverse workloads by ~11% and
 * masks POPET's standalone gains; StaticBest beats Naive by ~6.5%
 * overall — the headroom an intelligent coordinator can target.
 */

#include "bench_util.hh"

#include <vector>

using namespace athena;
using namespace athena::bench;

int
main()
{
    ExperimentRunner runner;
    auto workloads = evalWorkloads();
    auto adverse =
        runner.adverseSet(classificationConfig(), workloads);

    auto cd1 = [](PolicyKind policy) {
        return makeDesignConfig(CacheDesign::kCd1, policy);
    };

    std::vector<NamedConfig> configs = {
        {"POPET", cd1(PolicyKind::kOcpOnly)},
        {"Pythia", cd1(PolicyKind::kPfOnly)},
        {"Naive<POPET,Pythia>", cd1(PolicyKind::kNaive)},
    };

    auto rows = runCategoryTable(
        runner, "Fig. 2: static combinations (CD1)", configs,
        workloads, adverse);

    auto best = staticBest(rows, {"POPET", "Pythia",
                                  "Naive<POPET,Pythia>"});
    printSummaryLine("StaticBest<POPET,Pythia>", best, adverse);

    // Quartile error bars (the paper's Fig. 2 shows Q1..Q3 ranges).
    TextTable q("Fig. 2 quartiles (overall)");
    q.addRow({"config", "Q1", "median", "Q3"});
    for (const auto &[name, r] : rows) {
        std::vector<double> v;
        for (const auto &row : r)
            v.push_back(row.speedup);
        QuartileSummary s = quartiles(v);
        q.addRow({name, TextTable::num(s.q1),
                  TextTable::num(s.median), TextTable::num(s.q3)});
    }
    q.print(std::cout);
    return 0;
}

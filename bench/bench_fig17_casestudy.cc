/**
 * @file
 * Figure 17 — case study: Athena's action distribution on
 * compute_fp_78 (CVP) at 3.2 GB/s vs. 25.6 GB/s, against the four
 * static combinations.
 *
 * Paper's findings: at 3.2 GB/s Athena mostly disables both or
 * enables POPET only (82% of actions) and beats every static
 * combination; at 25.6 GB/s the distribution flips to
 * enabling both (61%) — the agent adapts to the system
 * configuration, not just the workload.
 */

#include "bench_util.hh"

#include <array>
#include <cstdint>
#include <string>

using namespace athena;
using namespace athena::bench;

namespace
{

void
caseStudy(ExperimentRunner &runner, const WorkloadSpec &spec,
          double bandwidth)
{
    TextTable t("Fig. 17 @ " + TextTable::num(bandwidth, 1) +
                " GB/s: " + spec.name);
    t.addRow({"quantity", "value"});

    const struct { const char *name; PolicyKind policy; } combos[] = {
        {"POPET-alone", PolicyKind::kOcpOnly},
        {"Pythia-alone", PolicyKind::kPfOnly},
        {"Naive<POPET,Pythia>", PolicyKind::kNaive},
        {"Athena<POPET,Pythia>", PolicyKind::kAthena},
    };

    std::array<std::uint64_t, 4> histogram{};
    for (const auto &combo : combos) {
        SystemConfig cfg =
            makeDesignConfig(CacheDesign::kCd1, combo.policy);
        cfg.bandwidthGBps = bandwidth;
        double base = runner.baselineIpc(cfg, spec);
        SimResult res = runner.runOne(cfg, spec);
        t.addRow({std::string("speedup ") + combo.name,
                  TextTable::num(res.ipc() / base)});
        if (combo.policy == PolicyKind::kAthena)
            histogram = res.cores[0].actionHistogram;
    }

    std::uint64_t total = 0;
    for (auto v : histogram)
        total += v;
    const char *labels[4] = {"enable none", "enable POPET",
                             "enable Pythia", "enable both"};
    for (unsigned a = 0; a < 4; ++a) {
        double pct = total ? 100.0 * static_cast<double>(
                                         histogram[a]) /
                                 static_cast<double>(total)
                           : 0.0;
        t.addRow({labels[a], TextTable::num(pct, 1) + "%"});
    }
    t.print(std::cout);
}

} // namespace

int
main()
{
    ExperimentRunner runner;
    auto workloads = evalWorkloads();
    const WorkloadSpec &spec =
        findWorkload(workloads, "compute_fp_78");

    caseStudy(runner, spec, 3.2);
    std::cout << "\n";
    caseStudy(runner, spec, 25.6);

    std::cout << "\nExpected shape: the 'enable both' share grows "
                 "dramatically from 3.2 to 25.6 GB/s.\n";
    return 0;
}

/**
 * @file
 * Figure 9 — speedup in cache design 2 (CD2: POPET OCP + IPCP at
 * L1D), including TLP, the only prior OCP-aware policy.
 *
 * Paper's findings: TLP beats Naive on adverse workloads (its L1D
 * filter works there) but underperforms Naive by ~12% on friendly
 * ones; Athena beats Naive/TLP/HPAC/MAB by 4.5/8.7/8.4/5.2%.
 */

#include "bench_util.hh"

#include <vector>

using namespace athena;
using namespace athena::bench;

int
main()
{
    ExperimentRunner runner;
    auto workloads = evalWorkloads();
    auto adverse =
        runner.adverseSet(classificationConfig(), workloads);

    auto cd2 = [](PolicyKind policy) {
        return makeDesignConfig(CacheDesign::kCd2, policy);
    };

    std::vector<NamedConfig> configs = {
        {"POPET", cd2(PolicyKind::kOcpOnly)},
        {"IPCP", cd2(PolicyKind::kPfOnly)},
        {"Naive<POPET,IPCP>", cd2(PolicyKind::kNaive)},
        {"TLP<POPET,IPCP>", cd2(PolicyKind::kTlp)},
        {"HPAC<POPET,IPCP>", cd2(PolicyKind::kHpac)},
        {"MAB<POPET,IPCP>", cd2(PolicyKind::kMab)},
        {"Athena<POPET,IPCP>", cd2(PolicyKind::kAthena)},
    };

    runCategoryTable(runner, "Fig. 9: speedup in CD2", configs,
                     workloads, adverse);
    return 0;
}

/**
 * @file
 * Figure 12(b) — sensitivity to the off-chip predictor type in CD1:
 * POPET, HMP, TTP under Naive / HPAC / MAB / Athena (Pythia at
 * L2C).
 *
 * Paper's finding: Athena outperforms the next-best policy (MAB) by
 * 5.0/4.7/8.2% with POPET/HMP/TTP respectively.
 */

#include "bench_util.hh"

#include <string>
#include <vector>

using namespace athena;
using namespace athena::bench;

int
main()
{
    ExperimentRunner runner;
    auto workloads = evalWorkloads();

    const OcpKind ocps[] = {OcpKind::kPopet, OcpKind::kHmp,
                            OcpKind::kTtp};
    const PolicyKind policies[] = {
        PolicyKind::kOcpOnly, PolicyKind::kNaive, PolicyKind::kHpac,
        PolicyKind::kMab, PolicyKind::kAthena};

    TextTable t("Fig. 12b: overall speedup vs OCP type (CD1)");
    t.addRow({"policy", "POPET", "HMP", "TTP"});
    for (PolicyKind policy : policies) {
        std::vector<std::string> row = {policyKindName(policy)};
        for (OcpKind ocp : ocps) {
            SystemConfig cfg =
                makeDesignConfig(CacheDesign::kCd1, policy);
            cfg.ocp = ocp;
            auto rows = runner.speedups(cfg, workloads);
            CategorySummary s =
                ExperimentRunner::summarize(rows, {});
            row.push_back(TextTable::num(s.overall));
        }
        t.addRow(std::move(row));
    }
    t.print(std::cout);

    std::cout << "\nExpected shape: the athena row dominates every "
                 "column for every OCP type.\n";
    return 0;
}

/**
 * @file
 * Figure 20 (Appendix B) — effect of coordination on (a) the number
 * of main-memory requests and (b) the average LLC load miss
 * latency, both normalized to the no-speculation baseline (CD1).
 *
 * Paper's findings: Naive inflates memory requests by 21.9% and
 * LLC miss latency by 28.3%; Athena holds the inflation to 5.8%
 * and 1.7%.
 */

#include "bench_util.hh"

#include <cstddef>
#include <vector>

using namespace athena;
using namespace athena::bench;

int
main()
{
    ExperimentRunner runner;
    auto workloads = evalWorkloads();
    auto adverse =
        runner.adverseSet(classificationConfig(), workloads);

    const PolicyKind policies[] = {
        PolicyKind::kOcpOnly, PolicyKind::kPfOnly,
        PolicyKind::kNaive, PolicyKind::kHpac, PolicyKind::kMab,
        PolicyKind::kAthena};

    // Baseline per-workload request counts and miss latencies.
    SystemConfig base_cfg =
        makeDesignConfig(CacheDesign::kCd1, PolicyKind::kAllOff);
    std::vector<double> base_reqs(workloads.size());
    std::vector<double> base_lat(workloads.size());
    parallelFor(workloads.size(), [&](std::size_t i) {
        SimResult res = runner.runOne(base_cfg, workloads[i]);
        base_reqs[i] =
            static_cast<double>(res.dram.totalRequests());
        base_lat[i] = res.cores[0].avgLlcMissLatency();
    });

    TextTable t("Fig. 20: DRAM requests / LLC miss latency "
                "normalized to baseline (CD1)");
    t.addRow({"policy", "reqs(adverse)", "reqs(overall)",
              "lat(adverse)", "lat(overall)"});
    for (PolicyKind policy : policies) {
        SystemConfig cfg =
            makeDesignConfig(CacheDesign::kCd1, policy);
        std::vector<double> rr(workloads.size()),
            rl(workloads.size());
        parallelFor(workloads.size(), [&](std::size_t i) {
            SimResult res = runner.runOne(cfg, workloads[i]);
            rr[i] = base_reqs[i] > 0
                        ? static_cast<double>(
                              res.dram.totalRequests()) /
                              base_reqs[i]
                        : 1.0;
            double lat = res.cores[0].avgLlcMissLatency();
            rl[i] = base_lat[i] > 0 ? lat / base_lat[i] : 1.0;
            if (rl[i] <= 0.0)
                rl[i] = 1.0;
        });
        std::vector<double> rr_adv, rl_adv;
        for (std::size_t i = 0; i < workloads.size(); ++i) {
            if (adverse.count(workloads[i].name)) {
                rr_adv.push_back(rr[i]);
                rl_adv.push_back(rl[i]);
            }
        }
        t.addRow({policyKindName(policy),
                  TextTable::num(geomean(rr_adv)),
                  TextTable::num(geomean(rr)),
                  TextTable::num(geomean(rl_adv)),
                  TextTable::num(geomean(rl))});
    }
    t.print(std::cout);

    std::cout << "\nExpected shape: naive has the largest request "
                 "and latency inflation; athena is the smallest "
                 "among the speculative policies.\n";
    return 0;
}

/**
 * @file
 * Figure 19 — Athena for prefetcher-only management (section 7.6):
 * SMS + Pythia at L2C, *no OCP*. Athena's action space becomes
 * {none, SMS, Pythia, both}.
 *
 * Paper's findings: without the complementary OCP, Athena holds
 * adverse workloads near the baseline (HPAC and MAB fall below it)
 * and beats HPAC/MAB by 5.1/7.8% on friendly workloads, 7.6/8.8%
 * overall.
 */

#include "bench_util.hh"

#include <vector>

using namespace athena;
using namespace athena::bench;

int
main()
{
    ExperimentRunner runner;
    auto workloads = evalWorkloads();
    auto adverse =
        runner.adverseSet(classificationConfig(), workloads);

    auto no_ocp = [](PolicyKind policy) {
        SystemConfig cfg =
            makeDesignConfig(CacheDesign::kCd3, policy);
        cfg.ocp = OcpKind::kNone;
        cfg.athena.prefetcherOnlyMode = true;
        return cfg;
    };

    std::vector<NamedConfig> configs = {
        {"SMS+Pythia (naive)", no_ocp(PolicyKind::kNaive)},
        {"HPAC<SMS,Pythia>", no_ocp(PolicyKind::kHpac)},
        {"MAB<SMS,Pythia>", no_ocp(PolicyKind::kMab)},
        {"Athena<SMS,Pythia>", no_ocp(PolicyKind::kAthena)},
    };

    runCategoryTable(runner,
                     "Fig. 19: prefetcher-only management (no OCP)",
                     configs, workloads, adverse);

    std::cout << "\nExpected shape: athena holds adverse workloads "
                 "near 1.0 (no OCP to gain from) and leads overall."
                 "\n";
    return 0;
}

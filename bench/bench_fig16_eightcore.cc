/**
 * @file
 * Figure 16 — eight-core workload mixes (CD1 per core, shared LLC
 * and DRAM channel).
 *
 * Paper's findings: Athena beats Naive/HPAC/MAB by 9.7/9.6/4.3%
 * overall, again without multi-core-specific tuning.
 */

#include "bench_multicore_common.hh"

int
main()
{
    athena::bench::runMulticoreFigure(
        8, "Fig. 16: eight-core mix speedups (CD1)");
    return 0;
}

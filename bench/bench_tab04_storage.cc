/**
 * @file
 * Tables 4 and 8 — storage overhead accounting of Athena and every
 * evaluated mechanism, computed from the live objects' own
 * storageBits() methods (not hard-coded constants), so the numbers
 * track the implementation.
 *
 * Paper's Table 4: QVStore 2 KB + two 0.5 KB Bloom trackers = 3 KB
 * per core. Table 8 budgets each prefetcher/OCP/policy.
 */

#include <cstddef>
#include <memory>
#include <string>

#include "athena/agent.hh"
#include "athena/bloom.hh"
#include "bench_util.hh"
#include "coord/tlp.hh"

using namespace athena;
using namespace athena::bench;

namespace
{

std::string
kb(std::size_t bits)
{
    return TextTable::num(static_cast<double>(bits) / 8.0 / 1024.0,
                          3) +
           " KB";
}

} // namespace

int
main()
{
    TextTable t4("Table 4: Athena storage overhead (paper: 3 KB)");
    t4.addRow({"structure", "size"});
    QVStore qv;
    BloomFilter accuracy(4096, 2), pollution(4096, 2);
    t4.addRow({"QVStore (8 planes x 64 rows x 4 actions x 8b)",
               kb(qv.storageBits())});
    t4.addRow({"Accuracy tracker (4096-bit Bloom, 2 hashes)",
               kb(accuracy.storageBits())});
    t4.addRow({"Pollution tracker (4096-bit Bloom, 2 hashes)",
               kb(pollution.storageBits())});
    AthenaAgent agent;
    t4.addRow({"Total (AthenaAgent::storageBits)",
               kb(agent.storageBits())});
    t4.print(std::cout);

    std::cout << "\nBloom sizing check (section 5.4.1): FPR at 3 SD "
              << "above the mean insertion rate:\n"
              << "  199 prefetches -> "
              << TextTable::num(accuracy.falsePositiveRate(199), 4)
              << " (paper: ~0.01)\n"
              << "  236 evictions  -> "
              << TextTable::num(pollution.falsePositiveRate(236), 4)
              << " (paper: ~0.01)\n\n";

    TextTable t8("Table 8: storage of all evaluated mechanisms "
                 "(modelled table geometry)");
    t8.addRow({"mechanism", "size"});
    for (PrefetcherKind kind :
         {PrefetcherKind::kIpcp, PrefetcherKind::kBerti,
          PrefetcherKind::kPythia, PrefetcherKind::kSppPpf,
          PrefetcherKind::kMlop, PrefetcherKind::kSms}) {
        auto pf = makePrefetcher(kind);
        t8.addRow({pf->name(), kb(pf->storageBits())});
    }
    for (OcpKind kind :
         {OcpKind::kPopet, OcpKind::kHmp, OcpKind::kTtp}) {
        auto ocp = makeOcp(kind);
        t8.addRow({ocp->name(), kb(ocp->storageBits())});
    }
    TlpPolicy tlp;
    HpacPolicy hpac;
    MabPolicy mab(1);
    t8.addRow({"tlp", kb(tlp.storageBits())});
    t8.addRow({"hpac", kb(hpac.storageBits())});
    t8.addRow({"mab", kb(mab.storageBits())});
    t8.addRow({"athena", kb(agent.storageBits())});
    t8.print(std::cout);
    return 0;
}

/**
 * @file
 * Trace replay bench: runs captured traces through the identical
 * fleet/bench/JSON machinery as the synthetic zoo (ExperimentRunner
 * speedups over the all-off baseline, per-workload rows).
 *
 * Usage:
 *     bench_trace_replay [trace files...]
 *
 * With no arguments the bench is self-contained: it captures short
 * traces from three representative zoo workloads (streaming,
 * pointer-chase, irregular) into ATHENA_TRACE_DIR (default /tmp),
 * one text and two binary, then replays them — exercising capture,
 * both formats, and replay end to end without external downloads.
 * Traces replay looped (traceLoops = 0) so the standard
 * fixed-instruction budgets apply regardless of capture length.
 *
 * Knobs:
 *  - ATHENA_SIM_INSTR / ATHENA_WARMUP_INSTR  run lengths
 *  - ATHENA_TRACE_DIR        where self-captured traces are written
 *  - ATHENA_CAPTURE_RECORDS  records per self-captured trace
 *                            (default 200000)
 *  - ATHENA_BENCH_JSON       output path
 *                            (default BENCH_trace_replay.json)
 */

#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "sim/runner.hh"
#include "sim/system_config.hh"
#include "trace/trace_file.hh"
#include "trace/zoo.hh"

namespace
{

using namespace athena;

std::uint64_t
envOr(const char *name, std::uint64_t fallback)
{
    const char *v = std::getenv(name);
    if (!v || !*v)
        return fallback;
    return std::strtoull(v, nullptr, 10);
}


/** Capture @p records instructions of a zoo workload to a file. */
std::string
captureTrace(const WorkloadSpec &spec, std::uint64_t records,
             const std::string &dir, TraceFormat format)
{
    auto gen = makeWorkload(spec);
    std::vector<TraceRecord> recs(records);
    std::size_t got = gen->nextBatch(recs.data(), recs.size());
    recs.resize(got);
    std::string path =
        dir + "/" + spec.name +
        (format == TraceFormat::kBinary ? ".atrc.bin" : ".atrc.txt");
    writeTraceFile(path, recs, format);
    return path;
}

} // namespace

int
main(int argc, char **argv)
{
    const char *json_env = std::getenv("ATHENA_BENCH_JSON");
    std::string json_path = json_env && *json_env
                                ? json_env
                                : "BENCH_trace_replay.json";
    const char *dir_env = std::getenv("ATHENA_TRACE_DIR");
    std::string trace_dir = dir_env && *dir_env ? dir_env : "/tmp";

    std::vector<std::string> paths;
    for (int i = 1; i < argc; ++i)
        paths.emplace_back(argv[i]);
    if (paths.empty()) {
        // Self-contained mode: capture representative archetypes.
        std::uint64_t records =
            envOr("ATHENA_CAPTURE_RECORDS", 200000);
        auto workloads = evalWorkloads();
        const WorkloadSpec *chase = &workloads.front();
        const WorkloadSpec *irreg = &workloads.front();
        for (const WorkloadSpec &w : workloads) {
            if (chase == &workloads.front() &&
                w.name.find("mcf") != std::string::npos)
                chase = &w;
            if (w.name.find("omnetpp") != std::string::npos)
                irreg = &w;
        }
        std::cout << "capturing " << records
                  << "-record traces to " << trace_dir << "\n";
        paths.push_back(captureTrace(workloads.front(), records,
                                     trace_dir,
                                     TraceFormat::kText));
        paths.push_back(captureTrace(*chase, records, trace_dir,
                                     TraceFormat::kBinary));
        paths.push_back(captureTrace(*irreg, records, trace_dir,
                                     TraceFormat::kBinary));
    }

    // Replay specs: looped, so fixed-instruction budgets apply.
    // Named by full path — the runner's baseline cache is keyed by
    // workload name, so two different traces sharing a basename
    // (or a trace named like a zoo workload) must not collide.
    std::vector<WorkloadSpec> specs;
    for (const std::string &path : paths)
        specs.push_back(traceWorkloadSpec(path, path, 0));

    ExperimentRunner runner;
    SystemConfig naive =
        makeDesignConfig(CacheDesign::kCd1, PolicyKind::kNaive);
    SystemConfig athena_cfg =
        makeDesignConfig(CacheDesign::kCd1, PolicyKind::kAthena);

    auto naive_rows = runner.speedups(naive, specs);
    auto athena_rows = runner.speedups(athena_cfg, specs);

    std::ofstream json(json_path);
    if (!json) {
        std::cerr << "cannot open " << json_path << "\n";
        return 1;
    }
    json << "{\n  \"benchmark\": \"bench_trace_replay\",\n"
         << "  \"sim_instructions\": " << runner.budget.simInstructions
         << ",\n  \"traces\": [\n";
    for (std::size_t i = 0; i < specs.size(); ++i) {
        const auto &nr = naive_rows[i];
        const auto &ar = athena_rows[i];
        std::cout << specs[i].name << ": baseline "
                  << nr.baselineIpc << " ipc, naive "
                  << nr.speedup << "x, athena " << ar.speedup
                  << "x\n";
        json << "    {\"trace\": \"" << specs[i].name
             << "\", \"baseline_ipc\": " << nr.baselineIpc
             << ", \"naive_speedup\": " << nr.speedup
             << ", \"athena_speedup\": " << ar.speedup << "}"
             << (i + 1 < specs.size() ? "," : "") << "\n";
    }
    json << "  ]\n}\n";
    std::cout << "-> " << json_path << "\n";
    return 0;
}

/**
 * @file
 * Figure 12(c) — sensitivity to the OCP request issue latency in
 * CD1: 6 / 18 / 30 cycles (modelling different on-chip network
 * designs).
 *
 * Paper's findings: POPET's standalone gain shrinks with the
 * latency (by ~2.5% from 6 to 30 cycles) while Athena loses only
 * ~0.8% and stays ahead of Naive/HPAC/MAB throughout.
 */

#include "bench_util.hh"

#include <string>
#include <vector>

using namespace athena;
using namespace athena::bench;

int
main()
{
    ExperimentRunner runner;
    auto workloads = evalWorkloads();

    const Cycle latencies[] = {6, 18, 30};
    const PolicyKind policies[] = {
        PolicyKind::kOcpOnly, PolicyKind::kNaive, PolicyKind::kHpac,
        PolicyKind::kMab, PolicyKind::kAthena};

    TextTable t("Fig. 12c: overall speedup vs OCP request issue "
                "latency (CD1)");
    t.addRow({"policy", "6 cycles", "18 cycles", "30 cycles"});
    for (PolicyKind policy : policies) {
        std::vector<std::string> row = {policyKindName(policy)};
        for (Cycle lat : latencies) {
            SystemConfig cfg =
                makeDesignConfig(CacheDesign::kCd1, policy);
            cfg.ocpIssueLatency = lat;
            auto rows = runner.speedups(cfg, workloads);
            CategorySummary s =
                ExperimentRunner::summarize(rows, {});
            row.push_back(TextTable::num(s.overall));
        }
        t.addRow(std::move(row));
    }
    t.print(std::cout);

    std::cout << "\nExpected shape: every row decays slowly with "
                 "latency; athena dominates each column.\n";
    return 0;
}

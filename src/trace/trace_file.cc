/**
 * @file
 * Trace file reader/writer and replay workload implementation.
 */

#include "trace/trace_file.hh"

#include <algorithm>
#include <cctype>
#include <cstring>
#include <fstream>
#include <istream>
#include <map>
#include <mutex>
#include <ostream>
#include <sstream>
#include <stdexcept>

#include "snapshot/snapshot.hh"

#if defined(__unix__) || defined(__APPLE__)
#define ATHENA_TRACE_HAVE_MMAP 1
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#endif

namespace athena
{

namespace
{

constexpr char kMagic[kTraceMagicBytes + 1] = "ATRC";

/** Packed flags byte: kind in bits 0-1, booleans above. */
constexpr unsigned kFlagTaken = 1u << 2;
constexpr unsigned kFlagDepends = 1u << 3;
constexpr unsigned kFlagCritical = 1u << 4;
constexpr unsigned kKindMask = 0x3;

void
putLe64(unsigned char *out, std::uint64_t v)
{
    for (unsigned i = 0; i < 8; ++i)
        out[i] = static_cast<unsigned char>(v >> (8 * i));
}

std::uint64_t
getLe64(const unsigned char *in)
{
    std::uint64_t v = 0;
    for (unsigned i = 0; i < 8; ++i)
        v |= static_cast<std::uint64_t>(in[i]) << (8 * i);
    return v;
}

void
encodeRecord(const TraceRecord &rec, unsigned char *out)
{
    putLe64(out, rec.pc);
    putLe64(out + 8, rec.addr);
    unsigned flags = static_cast<unsigned>(rec.kind) & kKindMask;
    if (rec.taken)
        flags |= kFlagTaken;
    if (rec.dependsOnPrevLoad)
        flags |= kFlagDepends;
    if (rec.criticalConsumer)
        flags |= kFlagCritical;
    out[16] = static_cast<unsigned char>(flags);
}

TraceRecord
decodeRecord(const unsigned char *in)
{
    TraceRecord rec;
    rec.pc = getLe64(in);
    rec.addr = getLe64(in + 8);
    unsigned flags = in[16];
    rec.kind = static_cast<InstrKind>(flags & kKindMask);
    rec.taken = (flags & kFlagTaken) != 0;
    rec.dependsOnPrevLoad = (flags & kFlagDepends) != 0;
    rec.criticalConsumer = (flags & kFlagCritical) != 0;
    return rec;
}

[[noreturn]] void
parseError(std::size_t line_no, const std::string &line,
           const std::string &what)
{
    std::ostringstream msg;
    msg << "trace parse error at line " << line_no << ": " << what
        << " (\"" << line << "\")";
    throw std::runtime_error(msg.str());
}

std::uint64_t
parseHex(const std::string &tok, std::size_t line_no,
         const std::string &line, const char *field)
{
    // stoull would accept a sign prefix and wrap negatives into
    // huge addresses; only bare hex digits (with optional 0x) are
    // valid here.
    if (tok.empty() || !std::isxdigit(
                           static_cast<unsigned char>(tok[0]))) {
        parseError(line_no, line,
                   std::string("bad ") + field + " '" + tok + "'");
    }
    std::size_t used = 0;
    std::uint64_t v = 0;
    try {
        v = std::stoull(tok, &used, 16);
    } catch (const std::exception &) {
        parseError(line_no, line,
                   std::string("bad ") + field + " '" + tok + "'");
    }
    if (used != tok.size())
        parseError(line_no, line,
                   std::string("trailing junk in ") + field + " '" +
                       tok + "'");
    return v;
}

std::vector<TraceRecord>
readTraceText(std::istream &is)
{
    std::vector<TraceRecord> recs;
    std::string line;
    std::size_t line_no = 0;
    while (std::getline(is, line)) {
        ++line_no;
        // '#' comments run to end of line, whole-line or inline
        // ('#' never occurs inside a valid token).
        std::istringstream ls(line.substr(0, line.find('#')));
        std::string kind_tok;
        if (!(ls >> kind_tok))
            continue;
        if (kind_tok.size() != 1)
            parseError(line_no, line,
                       "bad kind '" + kind_tok + "'");

        TraceRecord rec;
        std::string pc_tok;
        if (!(ls >> pc_tok))
            parseError(line_no, line, "missing pc");
        rec.pc = parseHex(pc_tok, line_no, line, "pc");

        std::string tok;
        switch (kind_tok[0]) {
          case 'A':
          case 'a':
            rec.kind = InstrKind::kAlu;
            break;
          case 'L':
          case 'l':
          case 'S':
          case 's':
            rec.kind = (kind_tok[0] == 'L' || kind_tok[0] == 'l')
                           ? InstrKind::kLoad
                           : InstrKind::kStore;
            if (!(ls >> tok))
                parseError(line_no, line, "missing address");
            rec.addr = parseHex(tok, line_no, line, "address");
            if (rec.kind == InstrKind::kLoad && (ls >> tok)) {
                for (char c : tok) {
                    if (c == 'd')
                        rec.dependsOnPrevLoad = true;
                    else if (c == 'c')
                        rec.criticalConsumer = true;
                    else
                        parseError(line_no, line,
                                   std::string("bad load flag '") +
                                       c + "'");
                }
            }
            break;
          case 'B':
          case 'b':
            rec.kind = InstrKind::kBranch;
            if (!(ls >> tok) || (tok != "T" && tok != "N"))
                parseError(line_no, line,
                           "branch outcome must be T or N");
            rec.taken = tok == "T";
            break;
          default:
            parseError(line_no, line,
                       "bad kind '" + kind_tok + "'");
        }
        if (ls >> tok)
            parseError(line_no, line,
                       "trailing junk '" + tok + "'");
        recs.push_back(rec);
    }
    return recs;
}

void
writeTraceText(std::ostream &os, const TraceRecord *recs,
               std::size_t n)
{
    os << "# athena trace v1\n";
    os << std::hex;
    for (std::size_t i = 0; i < n; ++i) {
        const TraceRecord &rec = recs[i];
        switch (rec.kind) {
          case InstrKind::kAlu:
            os << "A 0x" << rec.pc << "\n";
            break;
          case InstrKind::kLoad:
            os << "L 0x" << rec.pc << " 0x" << rec.addr;
            if (rec.dependsOnPrevLoad || rec.criticalConsumer) {
                os << ' ';
                if (rec.dependsOnPrevLoad)
                    os << 'd';
                if (rec.criticalConsumer)
                    os << 'c';
            }
            os << "\n";
            break;
          case InstrKind::kStore:
            os << "S 0x" << rec.pc << " 0x" << rec.addr << "\n";
            break;
          case InstrKind::kBranch:
            os << "B 0x" << rec.pc << (rec.taken ? " T" : " N")
               << "\n";
            break;
        }
    }
    os << std::dec;
}

void
writeTraceBinary(std::ostream &os, const TraceRecord *recs,
                 std::size_t n)
{
    unsigned char header[kTraceHeaderBytes] = {};
    std::memcpy(header, kMagic, kTraceMagicBytes);
    header[4] = kTraceVersion;
    header[5] = static_cast<unsigned char>(kTraceRecordBytes);
    putLe64(header + 8, n);
    os.write(reinterpret_cast<const char *>(header),
             kTraceHeaderBytes);
    unsigned char buf[kTraceRecordBytes];
    for (std::size_t i = 0; i < n; ++i) {
        encodeRecord(recs[i], buf);
        os.write(reinterpret_cast<const char *>(buf),
                 kTraceRecordBytes);
    }
}

/** Validate a binary header; returns the record count. */
std::size_t
checkBinaryHeader(const unsigned char *data, std::size_t len,
                  const std::string &what)
{
    if (len < kTraceHeaderBytes)
        throw std::runtime_error(what + ": truncated trace header");
    if (data[4] != kTraceVersion) {
        throw std::runtime_error(
            what + ": unsupported trace version " +
            std::to_string(data[4]));
    }
    if (data[5] != kTraceRecordBytes) {
        throw std::runtime_error(
            what + ": unexpected record size " +
            std::to_string(data[5]));
    }
    std::uint64_t n = getLe64(data + 8);
    // Overflow-safe form of len < header + n * record: a huge
    // claimed count in a corrupt header must not wrap the product
    // and pass validation (copy() would then read far out of
    // bounds).
    if (n > (len - kTraceHeaderBytes) / kTraceRecordBytes)
        throw std::runtime_error(what +
                                 ": trace shorter than its header "
                                 "claims");
    return static_cast<std::size_t>(n);
}

} // namespace

void
writeTrace(std::ostream &os, const TraceRecord *recs, std::size_t n,
           TraceFormat format)
{
    if (format == TraceFormat::kBinary)
        writeTraceBinary(os, recs, n);
    else
        writeTraceText(os, recs, n);
}

void
writeTraceFile(const std::string &path, const TraceRecord *recs,
               std::size_t n, TraceFormat format)
{
    std::ofstream os(path, format == TraceFormat::kBinary
                               ? std::ios::binary | std::ios::out
                               : std::ios::out);
    if (!os)
        throw std::runtime_error("cannot open trace for writing: " +
                                 path);
    writeTrace(os, recs, n, format);
    os.flush();
    if (!os)
        throw std::runtime_error("error writing trace: " + path);
}

std::vector<TraceRecord>
readTrace(std::istream &is)
{
    std::istream::pos_type start = is.tellg();
    char magic[kTraceMagicBytes] = {};
    is.read(magic, kTraceMagicBytes);
    std::size_t got = static_cast<std::size_t>(is.gcount());
    if (got == kTraceMagicBytes &&
        std::memcmp(magic, kMagic, kTraceMagicBytes) == 0) {
        // Binary: slurp the rest and decode.
        std::vector<unsigned char> data(magic, magic + got);
        char buf[4096];
        while (is.read(buf, sizeof(buf)) || is.gcount() > 0) {
            data.insert(data.end(), buf, buf + is.gcount());
            if (!is)
                break;
        }
        std::size_t n =
            checkBinaryHeader(data.data(), data.size(), "stream");
        std::vector<TraceRecord> recs;
        recs.reserve(n);
        const unsigned char *p = data.data() + kTraceHeaderBytes;
        for (std::size_t i = 0; i < n; ++i, p += kTraceRecordBytes)
            recs.push_back(decodeRecord(p));
        return recs;
    }
    // Text: un-read the sniffed prefix (back to where the caller
    // positioned the stream, not offset 0) and line-parse.
    is.clear();
    is.seekg(start == std::istream::pos_type(-1)
                 ? std::istream::pos_type(0)
                 : start);
    if (!is) {
        // Non-seekable stream: reconstruct via a buffer.
        throw std::runtime_error(
            "text trace stream must be seekable");
    }
    return readTraceText(is);
}

std::vector<TraceRecord>
readTraceFile(const std::string &path)
{
    std::ifstream is(path, std::ios::binary);
    if (!is)
        throw std::runtime_error("cannot open trace: " + path);
    return readTrace(is);
}

TraceFile::TraceFile(const std::string &path) : source(path)
{
    // Sniff the magic to pick the decode strategy.
    std::ifstream is(path, std::ios::binary);
    if (!is)
        throw std::runtime_error("cannot open trace: " + path);
    char magic[kTraceMagicBytes] = {};
    is.read(magic, kTraceMagicBytes);
    bool binary =
        static_cast<std::size_t>(is.gcount()) == kTraceMagicBytes &&
        std::memcmp(magic, kMagic, kTraceMagicBytes) == 0;

    if (!binary) {
        fmt = TraceFormat::kText;
        is.clear();
        is.seekg(0);
        records = readTraceText(is);
        count = records.size();
        return;
    }

    fmt = TraceFormat::kBinary;
    is.close();

#ifdef ATHENA_TRACE_HAVE_MMAP
    int fd = ::open(path.c_str(), O_RDONLY);
    if (fd >= 0) {
        struct stat st;
        if (::fstat(fd, &st) == 0 && st.st_size > 0) {
            void *base =
                ::mmap(nullptr, static_cast<std::size_t>(st.st_size),
                       PROT_READ, MAP_PRIVATE, fd, 0);
            if (base != MAP_FAILED) {
                mapBase = base;
                mapLen = static_cast<std::size_t>(st.st_size);
            }
        }
        ::close(fd);
    }
#endif
    if (mapBase == nullptr) {
        // Portable fallback: buffered read of the whole file.
        std::ifstream bin(path, std::ios::binary);
        owned.assign(std::istreambuf_iterator<char>(bin),
                     std::istreambuf_iterator<char>());
    }
    const unsigned char *data =
        mapBase != nullptr
            ? static_cast<const unsigned char *>(mapBase)
            : owned.data();
    std::size_t len = mapBase != nullptr ? mapLen : owned.size();
    try {
        count = checkBinaryHeader(data, len, path);
    } catch (...) {
#ifdef ATHENA_TRACE_HAVE_MMAP
        if (mapBase != nullptr)
            ::munmap(mapBase, mapLen);
        mapBase = nullptr;
#endif
        throw;
    }
    packed = data + kTraceHeaderBytes;
}

TraceFile::~TraceFile()
{
#ifdef ATHENA_TRACE_HAVE_MMAP
    if (mapBase != nullptr)
        ::munmap(mapBase, mapLen);
#endif
}

std::size_t
TraceFile::copy(std::size_t pos, TraceRecord *out, std::size_t n) const
{
    if (pos >= count)
        return 0;
    n = std::min(n, count - pos);
    if (packed != nullptr) {
        const unsigned char *p = packed + pos * kTraceRecordBytes;
        for (std::size_t i = 0; i < n; ++i, p += kTraceRecordBytes)
            out[i] = decodeRecord(p);
    } else {
        std::copy_n(records.begin() +
                        static_cast<std::ptrdiff_t>(pos),
                    n, out);
    }
    return n;
}

TraceRecord
TraceFile::at(std::size_t pos) const
{
    TraceRecord rec;
    if (copy(pos, &rec, 1) != 1)
        throw std::out_of_range("trace record index out of range");
    return rec;
}

TraceReplayWorkload::TraceReplayWorkload(
    std::shared_ptr<const TraceFile> file_, std::uint64_t loops)
    : file(std::move(file_)), loopCount(loops)
{
    if (!file)
        throw std::invalid_argument("null trace file");
}

std::shared_ptr<const TraceFile>
openTraceShared(const std::string &path)
{
    static std::mutex mutex;
    static std::map<std::string, std::weak_ptr<const TraceFile>>
        cache;
    std::lock_guard<std::mutex> lock(mutex);
    auto it = cache.find(path);
    if (it != cache.end()) {
        if (auto shared = it->second.lock())
            return shared;
    }
    // Cold open: prune every expired entry (not just this path's),
    // so a sweep over many distinct traces never accumulates dead
    // nodes. Opens are rare; the O(entries) sweep is noise next to
    // reading the file.
    for (auto e = cache.begin(); e != cache.end();) {
        if (e->second.expired())
            e = cache.erase(e);
        else
            ++e;
    }
    auto shared = std::make_shared<const TraceFile>(path);
    cache[path] = shared;
    return shared;
}

TraceReplayWorkload::TraceReplayWorkload(const std::string &path,
                                         std::uint64_t loops)
    : TraceReplayWorkload(openTraceShared(path), loops)
{
}

void
TraceReplayWorkload::reset()
{
    pos = 0;
    passesDone = 0;
}

TraceRecord
TraceReplayWorkload::next()
{
    TraceRecord rec;
    if (nextBatch(&rec, 1) != 1) {
        throw std::runtime_error(
            "TraceReplayWorkload::next(): stream exhausted (" +
            file->path() + ")");
    }
    return rec;
}

std::size_t
TraceReplayWorkload::nextBatch(TraceRecord *out, std::size_t n)
{
    const std::size_t len = file->size();
    if (len == 0)
        return 0;
    std::size_t filled = 0;
    while (filled < n) {
        if (pos == len) {
            ++passesDone;
            if (loopCount != 0 && passesDone >= loopCount)
                break; // end-of-stream: short (or zero) return
            pos = 0;
        }
        std::size_t take =
            file->copy(pos, out + filled,
                       std::min(n - filled, len - pos));
        pos += take;
        filled += take;
    }
    return filled;
}

void
TraceReplayWorkload::saveState(SnapshotWriter &w) const
{
    w.u64(file->size());
    w.u64(loopCount);
    w.u64(pos);
    w.u64(passesDone);
}

void
TraceReplayWorkload::restoreState(SnapshotReader &r)
{
    r.expectU64(file->size(), "trace record count");
    r.expectU64(loopCount, "trace loop count");
    std::uint64_t new_pos = r.u64();
    if (new_pos > file->size()) {
        throw SnapshotError(r.currentSection(),
                            "trace cursor past end of trace "
                            "(corrupted snapshot)");
    }
    pos = static_cast<std::size_t>(new_pos);
    passesDone = r.u64();
}

WorkloadSpec
traceWorkloadSpec(const std::string &name, const std::string &path,
                  std::uint64_t loops, Suite suite)
{
    WorkloadSpec spec;
    spec.name = name;
    spec.suite = suite;
    spec.tracePath = path;
    spec.traceLoops = loops;
    return spec;
}

} // namespace athena

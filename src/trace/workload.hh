/**
 * @file
 * Trace record format and the synthetic workload generator.
 *
 * The Athena paper evaluates on 100 captured traces (SPEC CPU
 * 2006/2017, PARSEC, Ligra, CVP). Those traces are tens of gigabytes
 * and not redistributable here, so this module synthesizes
 * deterministic instruction streams whose *memory-system behaviour*
 * spans the same population: regular streaming/striding code
 * (prefetcher-friendly), dependent pointer chasing and hashed
 * irregular access (prefetcher-adverse but easy for an off-chip
 * predictor), Ligra-style scan/gather graph phases, and CVP-style
 * branchy compute. See DESIGN.md section 4 for the substitution
 * argument.
 */

#ifndef ATHENA_TRACE_WORKLOAD_HH
#define ATHENA_TRACE_WORKLOAD_HH

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/fast_mod.hh"
#include "common/rng.hh"
#include "common/types.hh"

namespace athena
{

class SnapshotReader;
class SnapshotWriter;

/** Instruction classes the timing model distinguishes. */
enum class InstrKind : std::uint8_t
{
    kAlu,
    kLoad,
    kStore,
    kBranch,
};

/**
 * One instruction of a workload trace. The wide fields lead and the
 * kind/flag bytes pack into the tail word, so a record is 24 bytes —
 * batched generation streams these through a reused buffer, and the
 * core's stepping loop reads them back; 3 cache lines per 8 records
 * instead of 4.
 */
struct TraceRecord
{
    std::uint64_t pc = 0;
    Addr addr = 0;               ///< Effective address (load/store).
    InstrKind kind = InstrKind::kAlu;
    bool taken = false;          ///< Branch outcome.
    /**
     * True when this load consumes the value of the previous load
     * (pointer chasing); the core serializes such loads, which is
     * what destroys memory-level parallelism in mcf-like workloads.
     */
    bool dependsOnPrevLoad = false;
    /**
     * True when near-term work depends on this load's value
     * (a consumer within the issue window): the front end cannot
     * make progress until it completes. This is what makes miss
     * *latency* — and therefore prefetching and off-chip
     * prediction — matter at all in an out-of-order core with a
     * deep ROB; without it every miss is absorbed by MLP.
     */
    bool criticalConsumer = false;
};

/**
 * Abstract instruction stream.
 *
 * Streams may be infinite (the synthetic zoo) or finite (trace
 * replay). End-of-stream is signalled exclusively through
 * nextBatch()'s return value — there is no separate "done" probe,
 * so a consumer learns a stream ended by asking for records and
 * receiving fewer than requested.
 */
class WorkloadGenerator
{
  public:
    virtual ~WorkloadGenerator() = default;

    /** Restart the stream from the beginning (deterministic). */
    virtual void reset() = 0;

    /**
     * Produce the next instruction. Calling next() past the end of
     * a finite stream is a contract violation (finite generators
     * throw); consumers that must handle finite streams use
     * nextBatch(), whose short return is the end-of-stream signal.
     */
    virtual TraceRecord next() = 0;

    /**
     * Fill out[0..n) with the next @p n instructions and return the
     * count produced.
     *
     * Contract:
     *  - @p n == 0 returns 0 and consumes nothing (defined for
     *    every generator; the shim below asserts it never touches
     *    next()).
     *  - A return < @p n is legal *only* at end-of-stream: the
     *    records returned are the stream's last, and every
     *    subsequent call returns 0. Infinite streams (all synthetic
     *    generators) always return exactly @p n.
     *
     * The default is a compatibility shim over next(), so every
     * infinite generator batches correctly; SyntheticWorkload
     * overrides it with a kernel that hoists the per-phase state
     * lookups out of the per-instruction loop, and finite
     * generators (TraceReplayWorkload) override it to report
     * exhaustion. Overrides must produce the exact record sequence
     * next() would.
     */
    virtual std::size_t
    nextBatch(TraceRecord *out, std::size_t n)
    {
        if (n == 0)
            return 0;
        assert(out != nullptr);
        for (std::size_t i = 0; i < n; ++i)
            out[i] = next();
        return n;
    }

    /**
     * Snapshot contract: serialize the stream cursor so a restored
     * generator resumes emitting the exact record sequence a
     * straight-through run would see. The default is a no-op for
     * stateless generators; every stateful generator overrides both.
     */
    virtual void saveState(SnapshotWriter &) const {}
    virtual void restoreState(SnapshotReader &) {}
};

/** Memory access pattern of a workload phase. */
enum class Pattern : std::uint8_t
{
    kStream,        ///< Sequential lines over the footprint.
    kStride,        ///< Constant stride (possibly > 1 line).
    kChase,         ///< Dependent pointer chase over the footprint.
    kIrregular,     ///< Hashed accesses, hot-set + cold tail.
    kGraph,         ///< Ligra-like alternating scan / zipf gather.
    kCompute,       ///< Mostly cache-resident, branchy (CVP-like).
    kRegionSpatial, ///< Recurring per-region line bitmaps (SMS bait).
};

/** Parameters of one execution phase. */
struct PhaseParams
{
    Pattern pattern = Pattern::kStream;
    std::uint64_t instructions = 100000; ///< Phase length.
    std::uint64_t footprintBytes = 64ull << 20;
    unsigned strideBytes = kLineBytes;   ///< For kStride.
    /** kStream advance per access (8 B elements -> ~8 accesses per
     *  line, giving realistic L1 spatial locality). */
    unsigned elementBytes = 8;
    double loadFrac = 0.30;
    double storeFrac = 0.05;
    double branchFrac = 0.10;
    /** Fraction of loads with a near-term dependent consumer. */
    double criticalFrac = 0.30;
    /** Probability a (predictable) branch is taken. */
    double branchBias = 0.85;
    /** Fraction of branches whose outcome is 50/50 random. */
    double branchNoise = 0.02;
    /**
     * Fraction of data accesses that hit a small hot set
     * (cache-resident operands: locals, stack, node payloads). This
     * is the memory-intensity dial: the remaining accesses follow
     * the phase's pattern over the large footprint.
     */
    double hotFrac = 0.55;
    std::uint64_t hotBytes = 512 << 10;
    /** kGraph: zipf skew of the gather target distribution. */
    double zipfS = 0.75;
    /** kGraph: scan / gather burst lengths (accesses). */
    unsigned scanBurst = 48;
    unsigned gatherBurst = 24;
    /** kRegionSpatial: distinct lines touched per 4 KB region. */
    unsigned regionLines = 12;
    /** Number of distinct load PCs the phase rotates through. */
    unsigned loadPcs = 4;
};

/** Benchmark suite tags mirroring Table 6 of the paper. */
enum class Suite : std::uint8_t
{
    kSpec06,
    kSpec17,
    kParsec,
    kLigra,
    kCvp,
    kDpc4,   ///< Unseen Google-like traces (Fig. 21).
    kTuning, ///< 20-workload DSE set (never in the 100).
};

/** Printable suite name. */
const char *suiteName(Suite suite);

/**
 * Full description of a workload: either a synthetic phase program
 * (tracePath empty) or a captured trace to replay (tracePath set —
 * makeWorkload() then builds a TraceReplayWorkload and ignores
 * phases/seed).
 */
struct WorkloadSpec
{
    std::string name;
    Suite suite = Suite::kSpec06;
    std::uint64_t seed = 1;
    std::vector<PhaseParams> phases;
    /** Trace file (text or binary, see trace/trace_file.hh). */
    std::string tracePath;
    /** Times the trace is replayed end to end; 0 = loop forever
     *  (lets finite traces feed fixed-instruction benches). */
    std::uint64_t traceLoops = 1;
};

/**
 * The synthetic workload generator.
 *
 * Cycles deterministically through the spec's phases. Address
 * streams live in disjoint virtual regions per phase so that
 * different phases do not alias in the caches.
 */
class SyntheticWorkload : public WorkloadGenerator
{
  public:
    explicit SyntheticWorkload(WorkloadSpec spec);

    void reset() override;
    TraceRecord next() override;
    std::size_t nextBatch(TraceRecord *out, std::size_t n) override;

    /** Snapshot contract: RNG state, phase cursor, and the mutable
     *  per-phase pattern cursors; derived reducers, thresholds and
     *  zipf tables are rebuilt from the spec. */
    void saveState(SnapshotWriter &w) const override;
    void restoreState(SnapshotReader &r) override;

    const WorkloadSpec &workloadSpec() const { return spec; }

  private:
    /**
     * Pattern state of one phase. Persistent across phase
     * re-entries: when execution returns to a phase, its cursors
     * resume where they left off, so a large footprint keeps being
     * toured instead of re-touching the same warm prefix.
     */
    struct PhaseState
    {
        Addr base = 0;            ///< Disjoint region base.
        std::uint64_t cursor = 0; ///< Stream/stride/LCG position.
        Addr chasePtr = 0;        ///< Current pointer-chase node.
        std::unique_ptr<ZipfSampler> zipf;
        bool inScan = true;       ///< kGraph mode flag.
        unsigned burstLeft = 0;
        std::uint64_t scanCursor = 0;
        Addr regionBase = 0;      ///< kRegionSpatial current region.
        unsigned regionStep = 0;
        std::uint64_t regionPattern = 0; ///< Region line bitmap.
        unsigned pcRotor = 0;
        // Precomputed reducers for the per-access RNG -> range
        // mappings (the raw 64-bit modulo was a top-five hot-path
        // cost); results are bit-identical to `%`.
        FastMod hotMod;       ///< % hotBytes.
        FastMod footprintMod; ///< % footprintBytes.
        FastMod chaseMod;     ///< % (footprint lines), kChase.
        FastMod scanMod;      ///< % (footprintBytes / 4), kGraph.
        FastMod regionMod;    ///< % (footprint pages), kRegion*.
        // Precomputed Rng::chanceThreshold values for the per-
        // instruction Bernoulli rolls (bit-identical outcomes, no
        // per-roll float conversion). tLoad/tLoadStore/tLSB are the
        // cumulative kind-roll boundaries.
        std::uint64_t tLoad = 0;
        std::uint64_t tLoadStore = 0;
        std::uint64_t tLSB = 0;
        std::uint64_t tCritical = 0;
        std::uint64_t tHot = 0;
        std::uint64_t tNoise = 0;
        std::uint64_t tBias = 0;
    };

    /** Switch to a phase (state persists across entries). */
    void enterPhase(std::size_t index);

    /**
     * Template parameter selecting the runtime-dispatch pattern
     * kernel — the compatibility shim next() uses; nextBatch()
     * instead instantiates one emitRun per concrete Pattern so the
     * per-access pattern switch hoists out of the batch loop.
     */
    static constexpr int kGenericPattern = -1;

    /**
     * Produce the next data address of phase (p, st) with the
     * pattern fixed at compile time (P = static_cast<int>(Pattern)).
     */
    template <int P>
    Addr patternAddr(const PhaseParams &p, PhaseState &st,
                     bool &depends_on_prev);

    /** Runtime-dispatch shim over the patternAddr kernels. */
    Addr nextDataAddr(const PhaseParams &p, PhaseState &st,
                      bool &depends_on_prev);

    /**
     * Emit one record of phase (p, st): the kind roll plus all
     * record fields, the shared kernel of next() and nextBatch().
     * The callers own the phase-boundary bookkeeping.
     */
    template <int P>
    void emitOne(const PhaseParams &p, PhaseState &st,
                 std::uint64_t pc_region, TraceRecord &rec);

    /** Emit a span of records with the pattern kernel fixed. */
    template <int P>
    void emitRun(const PhaseParams &p, PhaseState &st,
                 std::uint64_t pc_region, TraceRecord *out,
                 std::size_t run);

    WorkloadSpec spec;
    Rng rng;
    std::size_t phaseIndex = 0;
    std::uint64_t phaseInstrsLeft = 0;
    std::vector<PhaseState> phaseStates;
    std::uint64_t globalInstr = 0;
};

/**
 * Convenience factory: a SyntheticWorkload for phase-program specs,
 * a TraceReplayWorkload when spec.tracePath is set.
 */
std::unique_ptr<WorkloadGenerator> makeWorkload(const WorkloadSpec &spec);

/**
 * Stable content hash of a workload spec: every field that affects
 * the emitted record stream (name, suite, seed, all phase
 * parameters, trace path and loop count). Used to key the
 * warmup-snapshot cache — two specs with equal keys produce
 * identical streams.
 */
std::uint64_t workloadKey(const WorkloadSpec &spec);

} // namespace athena

#endif // ATHENA_TRACE_WORKLOAD_HH

/**
 * @file
 * The workload zoo: named, seeded workload specs mirroring the
 * population of Table 6 in the paper.
 *
 *  - evalWorkloads():   the 100 memory-intensive evaluation traces
 *                       (29 SPEC06 + 20 SPEC17 + 13 PARSEC +
 *                        13 Ligra + 25 CVP)
 *  - tuningWorkloads(): the disjoint 20-trace set used only for
 *                       design-space exploration (section 5.3)
 *  - dpc4Workloads():   unseen Google-like traces for Fig. 21
 *
 * Archetypes (stream / stride / chase / irregular / graph / compute /
 * region-spatial / phased) are assigned so that, on the default
 * 3.2 GB/s configuration, roughly 40 of the 100 are
 * prefetcher-adverse, matching Fig. 1.
 */

#ifndef ATHENA_TRACE_ZOO_HH
#define ATHENA_TRACE_ZOO_HH

#include <string>
#include <vector>

#include "trace/workload.hh"

namespace athena
{

/** The 100 evaluation workloads. */
std::vector<WorkloadSpec> evalWorkloads();

/** The 20 tuning workloads (disjoint from the 100). */
std::vector<WorkloadSpec> tuningWorkloads();

/** Unseen DPC4-like workloads, grouped a la Fig. 21. */
std::vector<WorkloadSpec> dpc4Workloads();

/** Find a spec by name in a list; throws std::out_of_range. */
const WorkloadSpec &findWorkload(const std::vector<WorkloadSpec> &list,
                                 const std::string &name);

} // namespace athena

#endif // ATHENA_TRACE_ZOO_HH

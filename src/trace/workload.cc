/**
 * @file
 * SyntheticWorkload implementation.
 */

#include "trace/workload.hh"

#include <cstddef>
#include <cstdint>
#include <memory>

#include "common/hashing.hh"

namespace athena
{

namespace
{

/** Rng::chanceThreshold(0.5): a fair coin for branch noise. */
constexpr std::uint64_t kHalfThreshold = 1ull << 52;

} // namespace

const char *
suiteName(Suite suite)
{
    switch (suite) {
      case Suite::kSpec06: return "SPEC06";
      case Suite::kSpec17: return "SPEC17";
      case Suite::kParsec: return "PARSEC";
      case Suite::kLigra:  return "Ligra";
      case Suite::kCvp:    return "CVP";
      case Suite::kDpc4:   return "DPC4";
      case Suite::kTuning: return "Tuning";
    }
    return "?";
}

SyntheticWorkload::SyntheticWorkload(WorkloadSpec spec_)
    : spec(std::move(spec_)), rng(spec.seed)
{
    reset();
}

void
SyntheticWorkload::reset()
{
    rng = Rng(spec.seed);
    globalInstr = 0;
    phaseStates.clear();
    phaseStates.resize(spec.phases.size());
    for (std::size_t i = 0; i < spec.phases.size(); ++i) {
        const PhaseParams &p = spec.phases[i];
        PhaseState &st = phaseStates[i];
        // Disjoint 1 TB-aligned virtual region per phase keeps
        // phases from aliasing; the seed salt keeps workloads
        // disjoint too.
        st.base = (mix64(spec.seed * 1315423911ull + i) & 0xfffull)
                  << 40;
        st.chasePtr = st.base;
        st.burstLeft = p.scanBurst;
        st.regionBase = st.base;
        st.hotMod.init(p.hotBytes);
        st.footprintMod.init(p.footprintBytes);
        st.chaseMod.init(p.footprintBytes >> kLineShift);
        st.scanMod.init(p.footprintBytes / 4);
        st.regionMod.init(p.footprintBytes >> kPageShift);
        // Thresholds mirror the original double comparisons,
        // including the cumulative kind-roll boundaries.
        st.tLoad = Rng::chanceThreshold(p.loadFrac);
        st.tLoadStore =
            Rng::chanceThreshold(p.loadFrac + p.storeFrac);
        st.tLSB = Rng::chanceThreshold(p.loadFrac + p.storeFrac +
                                       p.branchFrac);
        st.tCritical = Rng::chanceThreshold(p.criticalFrac);
        st.tHot = Rng::chanceThreshold(p.hotFrac);
        st.tNoise = Rng::chanceThreshold(p.branchNoise);
        st.tBias = Rng::chanceThreshold(p.branchBias);
        if (p.pattern == Pattern::kGraph) {
            // Zipf over destination *pages* keeps the table small
            // while preserving a heavy-tailed reuse distribution.
            std::uint64_t pages = p.footprintBytes >> kPageShift;
            if (pages < 2)
                pages = 2;
            if (pages > 16384)
                pages = 16384;
            st.zipf = std::make_unique<ZipfSampler>(pages, p.zipfS);
        }
    }
    enterPhase(0);
}

void
SyntheticWorkload::enterPhase(std::size_t index)
{
    phaseIndex = index % spec.phases.size();
    phaseInstrsLeft = spec.phases[phaseIndex].instructions;
}

Addr
SyntheticWorkload::nextDataAddr(bool &depends_on_prev)
{
    const PhaseParams &p = spec.phases[phaseIndex];
    PhaseState &st = phaseStates[phaseIndex];
    depends_on_prev = false;

    // The hot-set roll models cache-resident operand traffic
    // (stack, locals, node payloads) shared by all patterns; the
    // remaining accesses follow the pattern over the big footprint.
    if (p.pattern != Pattern::kGraph && p.hotFrac > 0.0 &&
        rng.chanceT(st.tHot)) {
        return st.base + (1ull << 38) + st.hotMod.mod(rng.next());
    }

    switch (p.pattern) {
      case Pattern::kStream:
        {
            Addr a = st.base + st.cursor;
            // Wrap by conditional subtract — free of the 64-bit
            // division a modulo would cost on every access. The
            // rare-path modulo keeps user-supplied steps >= the
            // footprint exact.
            st.cursor += p.elementBytes;
            if (st.cursor >= p.footprintBytes) {
                st.cursor -= p.footprintBytes;
                if (st.cursor >= p.footprintBytes)
                    st.cursor %= p.footprintBytes;
            }
            return a;
        }
      case Pattern::kStride:
        {
            Addr a = st.base + st.cursor;
            st.cursor += p.strideBytes;
            if (st.cursor >= p.footprintBytes) {
                st.cursor -= p.footprintBytes;
                if (st.cursor >= p.footprintBytes)
                    st.cursor %= p.footprintBytes;
            }
            return a;
        }
      case Pattern::kChase:
        {
            // Walk an implicit permutation: the node index advances
            // through a full-period LCG and is scattered over the
            // footprint by a hash. The address sequence is
            // unpredictable for an address prefetcher and never
            // collapses into a short cycle (a naive
            // "next = hash(current)" walk would close a ~sqrt(N)
            // loop that fits in the L2). The core serializes these
            // loads.
            Addr a = st.chasePtr;
            st.cursor = st.cursor * 6364136223846793005ull +
                        1442695040888963407ull;
            st.chasePtr =
                st.base +
                st.chaseMod.mod(mix64(st.cursor ^ spec.seed)) *
                    kLineBytes;
            depends_on_prev = true;
            return a;
        }
      case Pattern::kIrregular:
        // Hashed cold accesses over the whole footprint: hard for
        // an address prefetcher, easy for an off-chip predictor
        // (the miss PCs are stable).
        return st.base + (1ull << 36) +
               st.footprintMod.mod(rng.next());
      case Pattern::kGraph:
        {
            if (st.burstLeft == 0) {
                st.inScan = !st.inScan;
                st.burstLeft =
                    st.inScan ? p.scanBurst : p.gatherBurst;
            }
            --st.burstLeft;
            if (st.inScan) {
                Addr a = st.base + st.scanCursor;
                st.scanCursor =
                    st.scanMod.mod(st.scanCursor + p.elementBytes);
                return a;
            }
            std::uint64_t page = st.zipf->sample(rng);
            std::uint64_t off = rng.next() % kPageBytes;
            return st.base + (1ull << 36) + page * kPageBytes + off;
        }
      case Pattern::kCompute:
        // Cold random tail past the shared hot-set roll; supplies
        // the >= 3 MPKI the paper's selection criterion requires.
        return st.base + (1ull << 36) +
               st.footprintMod.mod(rng.next());
      case Pattern::kRegionSpatial:
        {
            if (st.regionStep == 0) {
                // Pick a fresh region; its line bitmap is a pure
                // function of the region id, so SMS-style pattern
                // history is profitable.
                std::uint64_t region =
                    st.regionMod.mod(rng.next());
                st.regionBase = st.base + region * kPageBytes;
                st.regionPattern = mix64(region ^ (spec.seed << 1));
            }
            unsigned line =
                (st.regionPattern >> ((st.regionStep * 6) % 58)) &
                (kLinesPerPage - 1);
            // Conditional wrap (regionStep < regionLines invariant).
            st.regionStep = st.regionStep + 1 == p.regionLines
                                ? 0
                                : st.regionStep + 1;
            return st.regionBase +
                   static_cast<Addr>(line) * kLineBytes;
        }
    }
    return st.base;
}

TraceRecord
SyntheticWorkload::next()
{
    if (phaseInstrsLeft == 0)
        enterPhase(phaseIndex + 1);
    --phaseInstrsLeft;
    ++globalInstr;

    const PhaseParams &p = spec.phases[phaseIndex];
    PhaseState &st = phaseStates[phaseIndex];
    TraceRecord rec;

    // One draw for the kind roll, compared against the precomputed
    // cumulative thresholds (bit-identical to the double compares).
    std::uint64_t roll = rng.next() >> 11;
    std::uint64_t pc_region = (spec.seed << 20) ^ (phaseIndex << 12);

    if (roll < st.tLoad) {
        rec.kind = InstrKind::kLoad;
        rec.addr = nextDataAddr(rec.dependsOnPrevLoad);
        rec.criticalConsumer = rng.chanceT(st.tCritical);
        // Conditional wrap instead of a per-load 64-bit modulo;
        // pcRotor < loadPcs is invariant, so the result is the same.
        st.pcRotor = st.pcRotor + 1 == p.loadPcs ? 0
                                                 : st.pcRotor + 1;
        rec.pc = 0x400000 + pc_region + 0x10 * st.pcRotor;
    } else if (roll < st.tLoadStore) {
        rec.kind = InstrKind::kStore;
        bool dep = false;
        rec.addr = nextDataAddr(dep);
        rec.pc = 0x500000 + pc_region;
    } else if (roll < st.tLSB) {
        rec.kind = InstrKind::kBranch;
        // A small family of static branches; most follow their
        // bias, a noise fraction flips a fair coin (the gshare
        // predictor in the core turns that into real
        // mispredictions).
        rec.pc = 0x600000 + pc_region + 0x8 * (rng.next() % 16);
        if (rng.chanceT(st.tNoise))
            rec.taken = rng.chanceT(kHalfThreshold);
        else
            rec.taken = rng.chanceT(st.tBias);
    } else {
        rec.kind = InstrKind::kAlu;
        rec.pc = 0x700000 + pc_region;
    }
    return rec;
}

std::unique_ptr<WorkloadGenerator>
makeWorkload(const WorkloadSpec &spec)
{
    return std::make_unique<SyntheticWorkload>(spec);
}

} // namespace athena

/**
 * @file
 * SyntheticWorkload implementation.
 */

#include "trace/workload.hh"

#include <cstddef>
#include <cstdint>
#include <memory>

#include "common/hashing.hh"
#include "snapshot/snapshot.hh"
#include "trace/trace_file.hh"

namespace athena
{

namespace
{

/** Rng::chanceThreshold(0.5): a fair coin for branch noise. */
constexpr std::uint64_t kHalfThreshold = 1ull << 52;

} // namespace

const char *
suiteName(Suite suite)
{
    switch (suite) {
      case Suite::kSpec06: return "SPEC06";
      case Suite::kSpec17: return "SPEC17";
      case Suite::kParsec: return "PARSEC";
      case Suite::kLigra:  return "Ligra";
      case Suite::kCvp:    return "CVP";
      case Suite::kDpc4:   return "DPC4";
      case Suite::kTuning: return "Tuning";
    }
    return "?";
}

SyntheticWorkload::SyntheticWorkload(WorkloadSpec spec_)
    : spec(std::move(spec_)), rng(spec.seed)
{
    reset();
}

void
SyntheticWorkload::reset()
{
    rng = Rng(spec.seed);
    globalInstr = 0;
    phaseStates.clear();
    phaseStates.resize(spec.phases.size());
    for (std::size_t i = 0; i < spec.phases.size(); ++i) {
        const PhaseParams &p = spec.phases[i];
        PhaseState &st = phaseStates[i];
        // Disjoint 1 TB-aligned virtual region per phase keeps
        // phases from aliasing; the seed salt keeps workloads
        // disjoint too.
        st.base = (mix64(spec.seed * 1315423911ull + i) & 0xfffull)
                  << 40;
        st.chasePtr = st.base;
        st.burstLeft = p.scanBurst;
        st.regionBase = st.base;
        st.hotMod.init(p.hotBytes);
        st.footprintMod.init(p.footprintBytes);
        st.chaseMod.init(p.footprintBytes >> kLineShift);
        st.scanMod.init(p.footprintBytes / 4);
        st.regionMod.init(p.footprintBytes >> kPageShift);
        // Thresholds mirror the original double comparisons,
        // including the cumulative kind-roll boundaries.
        st.tLoad = Rng::chanceThreshold(p.loadFrac);
        st.tLoadStore =
            Rng::chanceThreshold(p.loadFrac + p.storeFrac);
        st.tLSB = Rng::chanceThreshold(p.loadFrac + p.storeFrac +
                                       p.branchFrac);
        st.tCritical = Rng::chanceThreshold(p.criticalFrac);
        st.tHot = Rng::chanceThreshold(p.hotFrac);
        st.tNoise = Rng::chanceThreshold(p.branchNoise);
        st.tBias = Rng::chanceThreshold(p.branchBias);
        if (p.pattern == Pattern::kGraph) {
            // Zipf over destination *pages* keeps the table small
            // while preserving a heavy-tailed reuse distribution.
            std::uint64_t pages = p.footprintBytes >> kPageShift;
            if (pages < 2)
                pages = 2;
            if (pages > 16384)
                pages = 16384;
            st.zipf = std::make_unique<ZipfSampler>(pages, p.zipfS);
        }
    }
    enterPhase(0);
}

void
SyntheticWorkload::enterPhase(std::size_t index)
{
    phaseIndex = index % spec.phases.size();
    phaseInstrsLeft = spec.phases[phaseIndex].instructions;
}

template <int P>
inline Addr
SyntheticWorkload::patternAddr(const PhaseParams &p, PhaseState &st,
                               bool &depends_on_prev)
{
    static_assert(P >= 0, "use nextDataAddr for runtime dispatch");
    constexpr Pattern kPat = static_cast<Pattern>(P);
    depends_on_prev = false;

    // The hot-set roll models cache-resident operand traffic
    // (stack, locals, node payloads) shared by all patterns; the
    // remaining accesses follow the pattern over the big footprint.
    if constexpr (kPat != Pattern::kGraph) {
        if (p.hotFrac > 0.0 && rng.chanceT(st.tHot))
            return st.base + (1ull << 38) + st.hotMod.mod(rng.next());
    }

    if constexpr (kPat == Pattern::kStream) {
        Addr a = st.base + st.cursor;
        // Wrap by conditional subtract — free of the 64-bit
        // division a modulo would cost on every access. The
        // rare-path modulo keeps user-supplied steps >= the
        // footprint exact.
        st.cursor += p.elementBytes;
        if (st.cursor >= p.footprintBytes) {
            st.cursor -= p.footprintBytes;
            if (st.cursor >= p.footprintBytes)
                st.cursor %= p.footprintBytes;
        }
        return a;
    } else if constexpr (kPat == Pattern::kStride) {
        Addr a = st.base + st.cursor;
        st.cursor += p.strideBytes;
        if (st.cursor >= p.footprintBytes) {
            st.cursor -= p.footprintBytes;
            if (st.cursor >= p.footprintBytes)
                st.cursor %= p.footprintBytes;
        }
        return a;
    } else if constexpr (kPat == Pattern::kChase) {
        // Walk an implicit permutation: the node index advances
        // through a full-period LCG and is scattered over the
        // footprint by a hash. The address sequence is
        // unpredictable for an address prefetcher and never
        // collapses into a short cycle (a naive
        // "next = hash(current)" walk would close a ~sqrt(N)
        // loop that fits in the L2). The core serializes these
        // loads.
        Addr a = st.chasePtr;
        st.cursor = st.cursor * 6364136223846793005ull +
                    1442695040888963407ull;
        st.chasePtr =
            st.base +
            st.chaseMod.mod(mix64(st.cursor ^ spec.seed)) *
                kLineBytes;
        depends_on_prev = true;
        return a;
    } else if constexpr (kPat == Pattern::kIrregular) {
        // Hashed cold accesses over the whole footprint: hard for
        // an address prefetcher, easy for an off-chip predictor
        // (the miss PCs are stable).
        return st.base + (1ull << 36) +
               st.footprintMod.mod(rng.next());
    } else if constexpr (kPat == Pattern::kGraph) {
        if (st.burstLeft == 0) {
            st.inScan = !st.inScan;
            st.burstLeft = st.inScan ? p.scanBurst : p.gatherBurst;
        }
        --st.burstLeft;
        if (st.inScan) {
            Addr a = st.base + st.scanCursor;
            st.scanCursor =
                st.scanMod.mod(st.scanCursor + p.elementBytes);
            return a;
        }
        std::uint64_t page = st.zipf->sample(rng);
        std::uint64_t off = rng.next() % kPageBytes;
        return st.base + (1ull << 36) + page * kPageBytes + off;
    } else if constexpr (kPat == Pattern::kCompute) {
        // Cold random tail past the shared hot-set roll; supplies
        // the >= 3 MPKI the paper's selection criterion requires.
        return st.base + (1ull << 36) +
               st.footprintMod.mod(rng.next());
    } else {
        static_assert(kPat == Pattern::kRegionSpatial);
        if (st.regionStep == 0) {
            // Pick a fresh region; its line bitmap is a pure
            // function of the region id, so SMS-style pattern
            // history is profitable.
            std::uint64_t region = st.regionMod.mod(rng.next());
            st.regionBase = st.base + region * kPageBytes;
            st.regionPattern = mix64(region ^ (spec.seed << 1));
        }
        unsigned line =
            (st.regionPattern >> ((st.regionStep * 6) % 58)) &
            (kLinesPerPage - 1);
        // Conditional wrap (regionStep < regionLines invariant).
        st.regionStep =
            st.regionStep + 1 == p.regionLines ? 0
                                               : st.regionStep + 1;
        return st.regionBase + static_cast<Addr>(line) * kLineBytes;
    }
}

Addr
SyntheticWorkload::nextDataAddr(const PhaseParams &p, PhaseState &st,
                                bool &depends_on_prev)
{
    switch (p.pattern) {
      case Pattern::kStream:
        return patternAddr<static_cast<int>(Pattern::kStream)>(
            p, st, depends_on_prev);
      case Pattern::kStride:
        return patternAddr<static_cast<int>(Pattern::kStride)>(
            p, st, depends_on_prev);
      case Pattern::kChase:
        return patternAddr<static_cast<int>(Pattern::kChase)>(
            p, st, depends_on_prev);
      case Pattern::kIrregular:
        return patternAddr<static_cast<int>(Pattern::kIrregular)>(
            p, st, depends_on_prev);
      case Pattern::kGraph:
        return patternAddr<static_cast<int>(Pattern::kGraph)>(
            p, st, depends_on_prev);
      case Pattern::kCompute:
        return patternAddr<static_cast<int>(Pattern::kCompute)>(
            p, st, depends_on_prev);
      case Pattern::kRegionSpatial:
        return patternAddr<static_cast<int>(
            Pattern::kRegionSpatial)>(p, st, depends_on_prev);
    }
    depends_on_prev = false;
    return st.base;
}

template <int P>
inline void
SyntheticWorkload::emitOne(const PhaseParams &p, PhaseState &st,
                           std::uint64_t pc_region, TraceRecord &rec)
{
    // One draw for the kind roll, compared against the precomputed
    // cumulative thresholds (bit-identical to the double compares).
    // Every field is written on every path so callers can hand in
    // an uninitialized record (the batch path fills a reused
    // buffer).
    std::uint64_t roll = rng.next() >> 11;

    if (roll < st.tLoad) {
        rec.kind = InstrKind::kLoad;
        rec.taken = false;
        if constexpr (P == kGenericPattern)
            rec.addr = nextDataAddr(p, st, rec.dependsOnPrevLoad);
        else
            rec.addr = patternAddr<P>(p, st, rec.dependsOnPrevLoad);
        rec.criticalConsumer = rng.chanceT(st.tCritical);
        // Conditional wrap instead of a per-load 64-bit modulo;
        // pcRotor < loadPcs is invariant, so the result is the same.
        st.pcRotor = st.pcRotor + 1 == p.loadPcs ? 0
                                                 : st.pcRotor + 1;
        rec.pc = 0x400000 + pc_region + 0x10 * st.pcRotor;
    } else if (roll < st.tLoadStore) {
        rec.kind = InstrKind::kStore;
        rec.taken = false;
        rec.dependsOnPrevLoad = false;
        rec.criticalConsumer = false;
        bool dep = false;
        if constexpr (P == kGenericPattern)
            rec.addr = nextDataAddr(p, st, dep);
        else
            rec.addr = patternAddr<P>(p, st, dep);
        rec.pc = 0x500000 + pc_region;
    } else if (roll < st.tLSB) {
        rec.kind = InstrKind::kBranch;
        rec.addr = 0;
        rec.dependsOnPrevLoad = false;
        rec.criticalConsumer = false;
        // A small family of static branches; most follow their
        // bias, a noise fraction flips a fair coin (the gshare
        // predictor in the core turns that into real
        // mispredictions).
        rec.pc = 0x600000 + pc_region + 0x8 * (rng.next() % 16);
        if (rng.chanceT(st.tNoise))
            rec.taken = rng.chanceT(kHalfThreshold);
        else
            rec.taken = rng.chanceT(st.tBias);
    } else {
        rec.kind = InstrKind::kAlu;
        rec.addr = 0;
        rec.taken = false;
        rec.dependsOnPrevLoad = false;
        rec.criticalConsumer = false;
        rec.pc = 0x700000 + pc_region;
    }
}

template <int P>
void
SyntheticWorkload::emitRun(const PhaseParams &p, PhaseState &st,
                           std::uint64_t pc_region, TraceRecord *out,
                           std::size_t run)
{
    for (std::size_t i = 0; i < run; ++i)
        emitOne<P>(p, st, pc_region, out[i]);
}

TraceRecord
SyntheticWorkload::next()
{
    if (phaseInstrsLeft == 0)
        enterPhase(phaseIndex + 1);
    --phaseInstrsLeft;
    ++globalInstr;

    TraceRecord rec;
    emitOne<kGenericPattern>(spec.phases[phaseIndex],
                             phaseStates[phaseIndex],
                             (spec.seed << 20) ^ (phaseIndex << 12),
                             rec);
    return rec;
}

std::size_t
SyntheticWorkload::nextBatch(TraceRecord *out, std::size_t n)
{
    // Chunk by phase boundary so the phase lookups, the pc_region
    // computation, the per-instruction counters, and — through the
    // per-pattern emitRun instantiations — the pattern dispatch all
    // hoist out of the inner loop. Record-for-record identical to
    // next().
    std::size_t filled = 0;
    while (filled < n) {
        if (phaseInstrsLeft == 0)
            enterPhase(phaseIndex + 1);
        std::size_t run = n - filled;
        if (phaseInstrsLeft == 0) {
            // Degenerate zero-instruction phase: next() decrements
            // the counter through zero, so the phase behaves as if
            // it had 2^64 instructions — mirror that wrap exactly
            // rather than skipping ahead (the two APIs must emit
            // identical streams for any spec).
            phaseInstrsLeft -= run;
        } else {
            if (run > phaseInstrsLeft)
                run = static_cast<std::size_t>(phaseInstrsLeft);
            phaseInstrsLeft -= run;
        }
        globalInstr += run;

        const PhaseParams &p = spec.phases[phaseIndex];
        PhaseState &st = phaseStates[phaseIndex];
        const std::uint64_t pc_region =
            (spec.seed << 20) ^ (phaseIndex << 12);
        TraceRecord *dst = out + filled;
        switch (p.pattern) {
          case Pattern::kStream:
            emitRun<static_cast<int>(Pattern::kStream)>(
                p, st, pc_region, dst, run);
            break;
          case Pattern::kStride:
            emitRun<static_cast<int>(Pattern::kStride)>(
                p, st, pc_region, dst, run);
            break;
          case Pattern::kChase:
            emitRun<static_cast<int>(Pattern::kChase)>(
                p, st, pc_region, dst, run);
            break;
          case Pattern::kIrregular:
            emitRun<static_cast<int>(Pattern::kIrregular)>(
                p, st, pc_region, dst, run);
            break;
          case Pattern::kGraph:
            emitRun<static_cast<int>(Pattern::kGraph)>(
                p, st, pc_region, dst, run);
            break;
          case Pattern::kCompute:
            emitRun<static_cast<int>(Pattern::kCompute)>(
                p, st, pc_region, dst, run);
            break;
          case Pattern::kRegionSpatial:
            emitRun<static_cast<int>(Pattern::kRegionSpatial)>(
                p, st, pc_region, dst, run);
            break;
          default:
            emitRun<kGenericPattern>(p, st, pc_region, dst, run);
            break;
        }
        filled += run;
    }
    return n;
}

void
SyntheticWorkload::saveState(SnapshotWriter &w) const
{
    w.u64(phaseStates.size());
    w.u64(rng.rawState());
    w.u64(phaseIndex);
    w.u64(phaseInstrsLeft);
    w.u64(globalInstr);
    for (const PhaseState &st : phaseStates) {
        w.u64(st.cursor);
        w.u64(st.chasePtr);
        w.boolean(st.inScan);
        w.u32(st.burstLeft);
        w.u64(st.scanCursor);
        w.u64(st.regionBase);
        w.u32(st.regionStep);
        w.u64(st.regionPattern);
        w.u32(st.pcRotor);
    }
}

void
SyntheticWorkload::restoreState(SnapshotReader &r)
{
    // Rebuild the derived per-phase state (region bases, reducers,
    // thresholds, zipf tables) from the spec, then overwrite the
    // mutable cursors with the snapshotted values.
    reset();
    r.expectU64(phaseStates.size(), "workload phase count");
    rng.setRawState(r.u64());
    phaseIndex = r.u64();
    if (phaseIndex >= phaseStates.size()) {
        throw SnapshotError(r.currentSection(),
                            "workload phase index out of range "
                            "(corrupted snapshot)");
    }
    phaseInstrsLeft = r.u64();
    globalInstr = r.u64();
    for (PhaseState &st : phaseStates) {
        st.cursor = r.u64();
        st.chasePtr = r.u64();
        st.inScan = r.boolean();
        st.burstLeft = r.u32();
        st.scanCursor = r.u64();
        st.regionBase = r.u64();
        st.regionStep = r.u32();
        st.regionPattern = r.u64();
        st.pcRotor = r.u32();
    }
}

std::unique_ptr<WorkloadGenerator>
makeWorkload(const WorkloadSpec &spec)
{
    if (!spec.tracePath.empty()) {
        return std::make_unique<TraceReplayWorkload>(spec.tracePath,
                                                     spec.traceLoops);
    }
    return std::make_unique<SyntheticWorkload>(spec);
}

namespace
{

/** FNV-1a accumulator for the spec content hash. */
struct SpecHash
{
    std::uint64_t h = 0xcbf29ce484222325ull;

    void
    bytes(const void *p, std::size_t n)
    {
        const unsigned char *b = static_cast<const unsigned char *>(p);
        for (std::size_t i = 0; i < n; ++i) {
            h ^= b[i];
            h *= 0x100000001b3ull;
        }
    }

    void u64(std::uint64_t v) { bytes(&v, sizeof(v)); }

    void
    f64(double v)
    {
        std::uint64_t bits;
        static_assert(sizeof(bits) == sizeof(v));
        __builtin_memcpy(&bits, &v, sizeof(bits));
        u64(bits);
    }

    void str(const std::string &s)
    {
        u64(s.size());
        bytes(s.data(), s.size());
    }
};

} // namespace

std::uint64_t
workloadKey(const WorkloadSpec &spec)
{
    SpecHash h;
    h.str(spec.name);
    h.u64(static_cast<std::uint64_t>(spec.suite));
    h.u64(spec.seed);
    h.u64(spec.phases.size());
    for (const PhaseParams &p : spec.phases) {
        h.u64(static_cast<std::uint64_t>(p.pattern));
        h.u64(p.instructions);
        h.u64(p.footprintBytes);
        h.u64(p.strideBytes);
        h.u64(p.elementBytes);
        h.f64(p.loadFrac);
        h.f64(p.storeFrac);
        h.f64(p.branchFrac);
        h.f64(p.criticalFrac);
        h.f64(p.branchBias);
        h.f64(p.branchNoise);
        h.f64(p.hotFrac);
        h.u64(p.hotBytes);
        h.f64(p.zipfS);
        h.u64(p.scanBurst);
        h.u64(p.gatherBurst);
        h.u64(p.regionLines);
        h.u64(p.loadPcs);
    }
    h.str(spec.tracePath);
    h.u64(spec.traceLoops);
    return h.h;
}

} // namespace athena

/**
 * @file
 * Workload zoo construction.
 *
 * Each archetype builder takes a per-workload seed and applies small
 * seed-derived jitter to footprints and instruction fractions so no
 * two workloads are identical. The archetype assignment below is
 * calibrated (see tests/test_zoo_calibration.cc) so the friendly /
 * adverse split at 3.2 GB/s approximates Fig. 1.
 */

#include "trace/zoo.hh"

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "common/hashing.hh"

namespace athena
{

namespace
{

/** Deterministic jitter in [lo, hi] derived from (seed, salt). */
double
jitter(std::uint64_t seed, std::uint64_t salt, double lo, double hi)
{
    double u = static_cast<double>(mix64(seed ^ (salt * 0x9e37ull)) >> 11) *
               0x1.0p-53;
    return lo + u * (hi - lo);
}

std::uint64_t
seedOf(const std::string &name)
{
    std::uint64_t h = 1469598103934665603ull;
    for (char c : name)
        h = (h ^ static_cast<unsigned char>(c)) * 1099511628211ull;
    return h | 1;
}

WorkloadSpec
streamy(const std::string &name, Suite suite)
{
    std::uint64_t s = seedOf(name);
    PhaseParams p;
    p.pattern = Pattern::kStream;
    p.instructions = 400000;
    p.footprintBytes =
        static_cast<std::uint64_t>(jitter(s, 1, 48, 160)) << 20;
    p.hotFrac = jitter(s, 5, 0.55, 0.70);
    p.hotBytes = 24 << 10;
    p.criticalFrac = jitter(s, 6, 0.22, 0.34);
    p.loadFrac = jitter(s, 2, 0.28, 0.38);
    p.storeFrac = 0.05;
    p.branchFrac = jitter(s, 3, 0.06, 0.12);
    p.branchNoise = jitter(s, 4, 0.005, 0.02);
    return {name, suite, s, {p}, {}, 1};
}

WorkloadSpec
stridey(const std::string &name, Suite suite, unsigned stride_lines)
{
    std::uint64_t s = seedOf(name);
    PhaseParams p;
    p.pattern = Pattern::kStride;
    p.instructions = 400000;
    p.strideBytes = stride_lines * kLineBytes;
    p.footprintBytes =
        static_cast<std::uint64_t>(jitter(s, 1, 64, 192)) << 20;
    p.hotFrac = jitter(s, 5, 0.84, 0.92);
    p.hotBytes = 24 << 10;
    p.criticalFrac = jitter(s, 6, 0.25, 0.38);
    p.loadFrac = jitter(s, 2, 0.26, 0.36);
    p.storeFrac = 0.05;
    p.branchFrac = 0.08;
    p.branchNoise = 0.01;
    return {name, suite, s, {p}, {}, 1};
}

WorkloadSpec
chasey(const std::string &name, Suite suite)
{
    std::uint64_t s = seedOf(name);
    PhaseParams p;
    p.pattern = Pattern::kChase;
    p.instructions = 400000;
    p.footprintBytes =
        static_cast<std::uint64_t>(jitter(s, 1, 96, 256)) << 20;
    p.hotFrac = jitter(s, 5, 0.70, 0.80);
    p.hotBytes = 32 << 10;
    p.criticalFrac = 0.10; // the chase itself already serializes
    p.loadFrac = jitter(s, 2, 0.22, 0.30);
    p.storeFrac = 0.04;
    p.branchFrac = jitter(s, 3, 0.10, 0.16);
    p.branchNoise = jitter(s, 4, 0.03, 0.08);
    return {name, suite, s, {p}, {}, 1};
}

WorkloadSpec
irregular(const std::string &name, Suite suite)
{
    std::uint64_t s = seedOf(name);
    PhaseParams p;
    p.pattern = Pattern::kIrregular;
    p.instructions = 400000;
    p.footprintBytes =
        static_cast<std::uint64_t>(jitter(s, 1, 96, 224)) << 20;
    p.hotFrac = jitter(s, 2, 0.74, 0.84);
    p.hotBytes = 96 << 10;
    p.criticalFrac = jitter(s, 6, 0.28, 0.40);
    p.loadFrac = jitter(s, 3, 0.26, 0.36);
    p.storeFrac = 0.05;
    p.branchFrac = 0.14;
    p.branchNoise = jitter(s, 4, 0.04, 0.09);
    return {name, suite, s, {p}, {}, 1};
}

WorkloadSpec
graphy(const std::string &name, Suite suite)
{
    std::uint64_t s = seedOf(name);
    PhaseParams p;
    p.pattern = Pattern::kGraph;
    p.instructions = 400000;
    p.footprintBytes =
        static_cast<std::uint64_t>(jitter(s, 1, 64, 192)) << 20;
    p.zipfS = jitter(s, 2, 0.55, 0.95);
    p.criticalFrac = jitter(s, 6, 0.30, 0.42);
    p.scanBurst = static_cast<unsigned>(jitter(s, 3, 48, 160));
    p.gatherBurst = static_cast<unsigned>(jitter(s, 4, 8, 24));
    p.loadFrac = 0.30;
    p.storeFrac = 0.05;
    p.branchFrac = 0.12;
    p.branchNoise = 0.04;
    return {name, suite, s, {p}, {}, 1};
}

WorkloadSpec
computey(const std::string &name, Suite suite)
{
    std::uint64_t s = seedOf(name);
    PhaseParams p;
    p.pattern = Pattern::kCompute;
    p.instructions = 400000;
    p.footprintBytes =
        static_cast<std::uint64_t>(jitter(s, 1, 48, 128)) << 20;
    p.hotFrac = jitter(s, 2, 0.88, 0.95);
    p.hotBytes = 384 << 10;
    p.criticalFrac = jitter(s, 6, 0.30, 0.42);
    p.loadFrac = jitter(s, 3, 0.24, 0.34);
    p.storeFrac = 0.06;
    p.branchFrac = jitter(s, 4, 0.14, 0.22);
    p.branchNoise = jitter(s, 5, 0.05, 0.12);
    return {name, suite, s, {p}, {}, 1};
}

WorkloadSpec
regiony(const std::string &name, Suite suite)
{
    std::uint64_t s = seedOf(name);
    PhaseParams p;
    p.pattern = Pattern::kRegionSpatial;
    p.instructions = 400000;
    p.footprintBytes =
        static_cast<std::uint64_t>(jitter(s, 1, 64, 160)) << 20;
    p.regionLines = static_cast<unsigned>(jitter(s, 2, 8, 16));
    p.hotFrac = jitter(s, 3, 0.82, 0.90);
    p.hotBytes = 24 << 10;
    p.criticalFrac = jitter(s, 6, 0.25, 0.35);
    p.loadFrac = 0.30;
    p.storeFrac = 0.05;
    p.branchFrac = 0.10;
    p.branchNoise = 0.02;
    return {name, suite, s, {p}, {}, 1};
}

/** Two-phase workload alternating friendly and adverse behaviour. */
WorkloadSpec
phased(const std::string &name, Suite suite)
{
    std::uint64_t s = seedOf(name);
    PhaseParams a;
    a.pattern = Pattern::kStream;
    a.instructions =
        static_cast<std::uint64_t>(jitter(s, 1, 40000, 90000));
    a.footprintBytes = 96ull << 20;
    a.hotFrac = 0.62;
    a.hotBytes = 24 << 10;
    a.criticalFrac = 0.28;
    a.loadFrac = 0.32;
    a.branchFrac = 0.08;
    a.branchNoise = 0.01;

    PhaseParams b;
    b.pattern = Pattern::kChase;
    b.instructions =
        static_cast<std::uint64_t>(jitter(s, 2, 40000, 90000));
    b.footprintBytes = 160ull << 20;
    b.hotFrac = 0.80;
    b.hotBytes = 32 << 10;
    b.criticalFrac = 0.10;
    b.loadFrac = 0.24;
    b.branchFrac = 0.15;
    b.branchNoise = 0.07;
    return {name, suite, s, {a, b}, {}, 1};
}

} // namespace

std::vector<WorkloadSpec>
evalWorkloads()
{
    std::vector<WorkloadSpec> w;
    w.reserve(100);

    // ---- SPEC CPU 2006: 29 traces -------------------------------
    // Friendly (streaming / strided FP codes).
    w.push_back(streamy("410.bwaves-1963B", Suite::kSpec06));
    w.push_back(streamy("433.milc-127B", Suite::kSpec06));
    w.push_back(streamy("434.zeusmp-10B", Suite::kSpec06));
    w.push_back(streamy("437.leslie3d-134B", Suite::kSpec06));
    w.push_back(streamy("459.GemsFDTD-765B", Suite::kSpec06));
    w.push_back(streamy("462.libquantum-714B", Suite::kSpec06));
    w.push_back(streamy("470.lbm-1274B", Suite::kSpec06));
    w.push_back(stridey("436.cactusADM-732B", Suite::kSpec06, 2));
    w.push_back(stridey("481.wrf-816B", Suite::kSpec06, 3));
    w.push_back(stridey("454.calculix-104B", Suite::kSpec06, 2));
    w.push_back(regiony("435.gromacs-111B", Suite::kSpec06));
    w.push_back(regiony("447.dealII-3B", Suite::kSpec06));
    w.push_back(streamy("482.sphinx3-1100B", Suite::kSpec06));
    w.push_back(phased("450.soplex-247B", Suite::kSpec06));
    w.push_back(phased("453.povray-252B", Suite::kSpec06));
    // Adverse (irregular integer codes).
    w.push_back(chasey("429.mcf-184B", Suite::kSpec06));
    w.push_back(chasey("429.mcf-217B", Suite::kSpec06));
    w.push_back(chasey("471.omnetpp-188B", Suite::kSpec06));
    w.push_back(irregular("483.xalancbmk-127B", Suite::kSpec06));
    w.push_back(irregular("483.xalancbmk-736B", Suite::kSpec06));
    w.push_back(chasey("473.astar-153B", Suite::kSpec06));
    w.push_back(irregular("403.gcc-17B", Suite::kSpec06));
    w.push_back(irregular("445.gobmk-17B", Suite::kSpec06));
    w.push_back(irregular("458.sjeng-767B", Suite::kSpec06));
    w.push_back(irregular("464.h264ref-97B", Suite::kSpec06));
    w.push_back(computey("400.perlbench-50B", Suite::kSpec06));
    w.push_back(computey("401.bzip2-38B", Suite::kSpec06));
    w.push_back(computey("456.hmmer-88B", Suite::kSpec06));
    w.push_back(graphy("465.tonto-1914B", Suite::kSpec06));

    // ---- SPEC CPU 2017: 20 traces -------------------------------
    w.push_back(streamy("603.bwaves_s-2609B", Suite::kSpec17));
    w.push_back(streamy("619.lbm_s-2676B", Suite::kSpec17));
    w.push_back(streamy("621.wrf_s-6673B", Suite::kSpec17));
    w.push_back(streamy("654.roms_s-1007B", Suite::kSpec17));
    w.push_back(stridey("607.cactuBSSN_s-2421B", Suite::kSpec17, 2));
    w.push_back(stridey("628.pop2_s-17B", Suite::kSpec17, 4));
    w.push_back(streamy("649.fotonik3d_s-1176B", Suite::kSpec17));
    w.push_back(regiony("638.imagick_s-10316B", Suite::kSpec17));
    w.push_back(phased("627.cam4_s-573B", Suite::kSpec17));
    w.push_back(phased("644.nab_s-5853B", Suite::kSpec17));
    w.push_back(chasey("605.mcf_s-1554B", Suite::kSpec17));
    w.push_back(chasey("605.mcf_s-472B", Suite::kSpec17));
    w.push_back(chasey("620.omnetpp_s-874B", Suite::kSpec17));
    w.push_back(irregular("623.xalancbmk_s-700B", Suite::kSpec17));
    w.push_back(irregular("602.gcc_s-734B", Suite::kSpec17));
    w.push_back(irregular("631.deepsjeng_s-928B", Suite::kSpec17));
    w.push_back(irregular("641.leela_s-800B", Suite::kSpec17));
    w.push_back(computey("600.perlbench_s-210B", Suite::kSpec17));
    w.push_back(computey("657.xz_s-3167B", Suite::kSpec17));
    w.push_back(graphy("648.exchange2_s-1699B", Suite::kSpec17));

    // ---- PARSEC: 13 traces --------------------------------------
    w.push_back(streamy("streamcluster-10B", Suite::kParsec));
    w.push_back(streamy("blackscholes-2B", Suite::kParsec));
    w.push_back(streamy("fluidanimate-7B", Suite::kParsec));
    w.push_back(stridey("facesim-14B", Suite::kParsec, 2));
    w.push_back(regiony("bodytrack-4B", Suite::kParsec));
    w.push_back(regiony("vips-5B", Suite::kParsec));
    w.push_back(streamy("swaptions-3B", Suite::kParsec));
    w.push_back(phased("ferret-6B", Suite::kParsec));
    w.push_back(phased("x264-9B", Suite::kParsec));
    w.push_back(chasey("canneal-18B", Suite::kParsec));
    w.push_back(irregular("dedup-8B", Suite::kParsec));
    w.push_back(irregular("raytrace-11B", Suite::kParsec));
    w.push_back(computey("freqmine-12B", Suite::kParsec));

    // ---- Ligra: 13 traces ---------------------------------------
    w.push_back(graphy("BC-20B", Suite::kLigra));
    w.push_back(graphy("BFS-15B", Suite::kLigra));
    w.push_back(graphy("BFSCC-26B", Suite::kLigra));
    w.push_back(graphy("BellmanFord-17B", Suite::kLigra));
    w.push_back(graphy("CF-11B", Suite::kLigra));
    w.push_back(graphy("Components-21B", Suite::kLigra));
    w.push_back(chasey("KCore-33B", Suite::kLigra));
    w.push_back(chasey("MIS-12B", Suite::kLigra));
    w.push_back(graphy("PageRank-14B", Suite::kLigra));
    w.push_back(phased("PageRankDelta-24B", Suite::kLigra));
    w.push_back(graphy("Radii-23B", Suite::kLigra));
    w.push_back(chasey("Triangle-44B", Suite::kLigra));
    w.push_back(streamy("CFSweep-9B", Suite::kLigra));

    // ---- CVP: 25 traces -----------------------------------------
    // The CVP suite in Fig. 1 contains both friendly and adverse
    // members; compute_fp_78 is the Fig. 17 case-study workload.
    const struct { const char *name; int kind; } cvp[] = {
        {"compute_fp_1", 0},   {"compute_fp_11", 0},
        {"compute_fp_34", 1},  {"compute_fp_45", 0},
        {"compute_fp_78", 5},  {"compute_fp_92", 1},
        {"compute_int_4", 2},  {"compute_int_12", 3},
        {"compute_int_19", 2}, {"compute_int_23", 4},
        {"compute_int_37", 3}, {"compute_int_41", 2},
        {"compute_int_52", 3}, {"compute_int_68", 4},
        {"compute_int_77", 2}, {"compute_int_84", 4},
        {"srv_64", 3},         {"srv_127", 2},
        {"srv_233", 4},        {"srv_301", 3},
        {"srv_402", 0},        {"srv_480", 1},
        {"srv_516", 4},        {"srv_559", 2},
        {"srv_620", 5},
    };
    for (const auto &c : cvp) {
        switch (c.kind) {
          case 0: w.push_back(streamy(c.name, Suite::kCvp)); break;
          case 1: w.push_back(stridey(c.name, Suite::kCvp, 2)); break;
          case 2: w.push_back(computey(c.name, Suite::kCvp)); break;
          case 3: w.push_back(irregular(c.name, Suite::kCvp)); break;
          case 4: w.push_back(chasey(c.name, Suite::kCvp)); break;
          case 5: w.push_back(phased(c.name, Suite::kCvp)); break;
        }
    }
    return w;
}

std::vector<WorkloadSpec>
tuningWorkloads()
{
    std::vector<WorkloadSpec> w;
    w.reserve(20);
    const char *names[20] = {
        "tune_stream_a", "tune_stream_b", "tune_stream_c",
        "tune_stride_a", "tune_stride_b",
        "tune_chase_a", "tune_chase_b", "tune_chase_c", "tune_chase_d",
        "tune_irr_a", "tune_irr_b", "tune_irr_c",
        "tune_graph_a", "tune_graph_b", "tune_graph_c",
        "tune_compute_a", "tune_compute_b",
        "tune_phased_a", "tune_phased_b", "tune_region_a",
    };
    for (int i = 0; i < 3; ++i)
        w.push_back(streamy(names[i], Suite::kTuning));
    for (int i = 3; i < 5; ++i)
        w.push_back(stridey(names[i], Suite::kTuning, 2 + (i - 3)));
    for (int i = 5; i < 9; ++i)
        w.push_back(chasey(names[i], Suite::kTuning));
    for (int i = 9; i < 12; ++i)
        w.push_back(irregular(names[i], Suite::kTuning));
    for (int i = 12; i < 15; ++i)
        w.push_back(graphy(names[i], Suite::kTuning));
    for (int i = 15; i < 17; ++i)
        w.push_back(computey(names[i], Suite::kTuning));
    for (int i = 17; i < 19; ++i)
        w.push_back(phased(names[i], Suite::kTuning));
    w.push_back(regiony(names[19], Suite::kTuning));
    return w;
}

std::vector<WorkloadSpec>
dpc4Workloads()
{
    // 12 groups a la Fig. 21; two traces per group. Google server
    // workloads are front-end bound with moderate, irregular data
    // footprints — modelled as compute/irregular blends.
    std::vector<WorkloadSpec> w;
    const struct { const char *group; int kind; } groups[] = {
        {"sierra.a.3", 2}, {"sierra.a.4", 3}, {"sierra.a.6", 2},
        {"bravo.a", 4},    {"arizona", 3},    {"charlie", 2},
        {"delta", 5},      {"merced", 3},     {"tahoe", 0},
        {"tango", 2},      {"whiskey", 3},    {"yankee", 4},
    };
    for (const auto &g : groups) {
        for (int t = 0; t < 2; ++t) {
            std::string name =
                std::string(g.group) + ".t" + std::to_string(t);
            switch (g.kind) {
              case 0: w.push_back(streamy(name, Suite::kDpc4)); break;
              case 2: w.push_back(computey(name, Suite::kDpc4)); break;
              case 3: w.push_back(irregular(name, Suite::kDpc4)); break;
              case 4: w.push_back(chasey(name, Suite::kDpc4)); break;
              case 5: w.push_back(phased(name, Suite::kDpc4)); break;
            }
        }
    }
    return w;
}

namespace
{

/** Levenshtein distance, for did-you-mean suggestions. */
std::size_t
editDistance(const std::string &a, const std::string &b)
{
    std::vector<std::size_t> row(b.size() + 1);
    for (std::size_t j = 0; j <= b.size(); ++j)
        row[j] = j;
    for (std::size_t i = 1; i <= a.size(); ++i) {
        std::size_t diag = row[0];
        row[0] = i;
        for (std::size_t j = 1; j <= b.size(); ++j) {
            std::size_t sub =
                diag + (a[i - 1] == b[j - 1] ? 0 : 1);
            diag = row[j];
            row[j] = std::min({row[j] + 1, row[j - 1] + 1, sub});
        }
    }
    return row[b.size()];
}

} // namespace

const WorkloadSpec &
findWorkload(const std::vector<WorkloadSpec> &list, const std::string &name)
{
    for (const auto &spec : list) {
        if (spec.name == name)
            return spec;
    }
    // Benches are driven by workload-name strings from scripts and
    // env vars; a typo used to surface as a bare out_of_range.
    // Name the request and the nearest candidates instead.
    std::vector<std::pair<std::size_t, const std::string *>> ranked;
    for (const auto &spec : list)
        ranked.emplace_back(editDistance(name, spec.name),
                            &spec.name);
    std::sort(ranked.begin(), ranked.end(),
              [](const auto &a, const auto &b) {
                  return a.first != b.first ? a.first < b.first
                                            : *a.second < *b.second;
              });
    std::string msg = "no such workload: '" + name + "' (" +
                      std::to_string(list.size()) +
                      " candidates in list";
    if (!ranked.empty()) {
        msg += "; nearest:";
        for (std::size_t i = 0; i < ranked.size() && i < 3; ++i)
            msg += std::string(i == 0 ? " " : ", ") + "'" +
                   *ranked[i].second + "'";
    }
    msg += ")";
    throw std::out_of_range(msg);
}

} // namespace athena

/**
 * @file
 * Multi-core workload mix construction (section 6.1 of the paper).
 *
 * Three categories per core count: mixes drawn only from
 * prefetcher-adverse workloads, only from prefetcher-friendly
 * workloads, and uniformly at random from the whole set. The
 * adverse/friendly classification itself is produced at run time by
 * the experiment runner (Pythia-only vs. baseline, as in Fig. 1).
 */

#ifndef ATHENA_TRACE_MIXES_HH
#define ATHENA_TRACE_MIXES_HH

#include <cstdint>
#include <string>
#include <vector>

namespace athena
{

/** One multi-core mix: a workload name per core. */
struct WorkloadMix
{
    std::string name;
    std::vector<std::string> workloads;
};

/**
 * Build the three mix categories.
 *
 * @param adverse   names of prefetcher-adverse workloads
 * @param friendly  names of prefetcher-friendly workloads
 * @param all       all workload names
 * @param cores     workloads per mix (4 or 8)
 * @param per_category number of mixes in each of the 3 categories
 * @param seed      RNG seed for reproducible selection
 * @return mixes ordered [adverse..., friendly..., random...]
 */
std::vector<WorkloadMix>
buildMixes(const std::vector<std::string> &adverse,
           const std::vector<std::string> &friendly,
           const std::vector<std::string> &all,
           unsigned cores, unsigned per_category, std::uint64_t seed);

} // namespace athena

#endif // ATHENA_TRACE_MIXES_HH

/**
 * @file
 * ChampSim-style trace files: a record-level reader/writer pair for
 * captured instruction streams, and the TraceReplayWorkload that
 * feeds them through the stepping pipeline.
 *
 * The paper's evaluation replays published traces (SPEC CPU
 * 2006/2017, PARSEC, Ligra, CVP) through ChampSim; this module is
 * the equivalent attach point for this simulator. Two on-disk
 * formats share the same TraceRecord in-memory representation.
 * Binary preserves every record verbatim; text spells only the
 * fields meaningful for each record's kind (a load's addr and
 * d/c flags, a branch's outcome), so it is lossless for canonical
 * records — which is everything the readers, the capture path, and
 * the synthetic generators produce — and canonicalizing for
 * hand-built records carrying kind-irrelevant fields:
 *
 *  - Text ("athena trace v1"): one record per line, '#' comments.
 *        A <pc>              plain ALU op
 *        L <pc> <addr> [d][c]  load; d = depends on previous load,
 *                              c = critical consumer
 *        S <pc> <addr>       store
 *        B <pc> T|N          branch taken / not taken
 *    Human-editable; the unit of exchange for tiny checked-in
 *    samples and converter scripts.
 *
 *  - Binary ("ATRC"): a 16-byte header (magic, version, record
 *    size, record count) followed by packed fixed-width
 *    little-endian records (pc u64, addr u64, flags u8 = 17 bytes).
 *    Fixed-size records and an up-front count make the format
 *    mmap-friendly: TraceFile maps the file read-only and decodes
 *    records into TraceRecord batches on demand, so a multi-GB
 *    trace costs address space, not RSS.
 *
 * TraceReplayWorkload implements the finite-stream side of the
 * WorkloadGenerator contract: nextBatch() returns short exactly at
 * end-of-stream (after the configured number of loops), and next()
 * past the end throws.
 */

#ifndef ATHENA_TRACE_TRACE_FILE_HH
#define ATHENA_TRACE_TRACE_FILE_HH

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

#include "trace/workload.hh"

namespace athena
{

/** On-disk trace encodings. */
enum class TraceFormat : std::uint8_t
{
    kText,
    kBinary,
};

/** Binary layout constants (little-endian on disk). */
constexpr std::size_t kTraceMagicBytes = 4;    ///< "ATRC"
constexpr std::size_t kTraceHeaderBytes = 16;
constexpr std::size_t kTraceRecordBytes = 17;  ///< pc + addr + flags.
constexpr std::uint8_t kTraceVersion = 1;

/** Serialize records to a stream in the given format. */
void writeTrace(std::ostream &os, const TraceRecord *recs,
                std::size_t n, TraceFormat format);

/** Serialize records to a file; throws std::runtime_error on I/O
 *  failure. */
void writeTraceFile(const std::string &path, const TraceRecord *recs,
                    std::size_t n, TraceFormat format);

inline void
writeTraceFile(const std::string &path,
               const std::vector<TraceRecord> &recs, TraceFormat format)
{
    writeTraceFile(path, recs.data(), recs.size(), format);
}

/**
 * Parse an entire trace stream (format sniffed from the first
 * bytes: "ATRC" magic = binary, anything else = text). Throws
 * std::runtime_error with a line/offset diagnostic on malformed
 * input.
 */
std::vector<TraceRecord> readTrace(std::istream &is);

/** Parse an entire trace file into memory. */
std::vector<TraceRecord> readTraceFile(const std::string &path);

/**
 * An open trace, servable as TraceRecord batches.
 *
 * Binary files are mmap()ed read-only and decoded per copy() call
 * (falling back to a buffered read where mmap is unavailable); text
 * files are parsed once into a record vector. Immutable after
 * construction, so one TraceFile can back many concurrent replay
 * workloads (the fleet runner constructs one Simulator per thread).
 */
class TraceFile
{
  public:
    /** Open and validate; throws std::runtime_error on malformed
     *  files. */
    explicit TraceFile(const std::string &path);
    ~TraceFile();

    TraceFile(const TraceFile &) = delete;
    TraceFile &operator=(const TraceFile &) = delete;

    /** Number of records in the trace. */
    std::size_t size() const { return count; }

    /** The on-disk encoding this file used. */
    TraceFormat format() const { return fmt; }

    /** Path the file was opened from. */
    const std::string &path() const { return source; }

    /**
     * Decode records [pos, pos + n) into @p out; @p n is clamped to
     * the records remaining. Returns the count copied.
     */
    std::size_t copy(std::size_t pos, TraceRecord *out,
                     std::size_t n) const;

    /** Decode one record. @p pos must be < size(). */
    TraceRecord at(std::size_t pos) const;

  private:
    std::string source;
    TraceFormat fmt = TraceFormat::kText;
    std::size_t count = 0;

    /** Text path (and binary fallback): decoded records. */
    std::vector<TraceRecord> records;

    /** Binary path: packed record bytes (past the header). */
    const unsigned char *packed = nullptr;
    /** mmap bookkeeping; base is null when not mapped. */
    void *mapBase = nullptr;
    std::size_t mapLen = 0;
    /** Owned buffer when the binary file was read, not mapped. */
    std::vector<unsigned char> owned;
};

/**
 * Open @p path through the process-wide trace cache: repeated opens
 * of the same path share one parsed/mmapped TraceFile for as long
 * as any user holds it (entries are weak, so closing the last
 * replayer releases the file). Thread-safe — fleet runs construct
 * Simulators concurrently, each replaying the same trace.
 */
std::shared_ptr<const TraceFile>
openTraceShared(const std::string &path);

/**
 * Replays a TraceFile through the WorkloadGenerator contract.
 *
 * The trace is emitted loops() times end to end (loops == 0 loops
 * forever, turning any capture into an infinite stream for the
 * fixed-instruction benches); after the final pass nextBatch()
 * returns short, then 0 — the exhausted-stream signal the stepping
 * pipeline terminates on.
 */
class TraceReplayWorkload : public WorkloadGenerator
{
  public:
    TraceReplayWorkload(std::shared_ptr<const TraceFile> file,
                        std::uint64_t loops = 1);
    /** Convenience: open @p path via openTraceShared(). */
    explicit TraceReplayWorkload(const std::string &path,
                                 std::uint64_t loops = 1);

    void reset() override;
    /** Throws std::runtime_error once the stream is exhausted. */
    TraceRecord next() override;
    std::size_t nextBatch(TraceRecord *out, std::size_t n) override;

    /** Snapshot contract: replay cursor + pass count, guarded by
     *  the trace's record count and loop configuration. */
    void saveState(SnapshotWriter &w) const override;
    void restoreState(SnapshotReader &r) override;

    const TraceFile &trace() const { return *file; }
    /** Configured pass count (0 = infinite). */
    std::uint64_t loops() const { return loopCount; }
    /** Total records this stream will emit (0 when infinite). */
    std::uint64_t totalRecords() const
    {
        return loopCount * static_cast<std::uint64_t>(file->size());
    }

  private:
    std::shared_ptr<const TraceFile> file;
    std::uint64_t loopCount;
    std::size_t pos = 0;        ///< Cursor within the current pass.
    std::uint64_t passesDone = 0;
};

/**
 * Build a WorkloadSpec that replays @p path (the trace-spec
 * counterpart of the zoo's synthetic spec builders, accepted
 * everywhere a WorkloadSpec is — Simulator, ExperimentRunner
 * fleets, benches).
 */
WorkloadSpec traceWorkloadSpec(const std::string &name,
                               const std::string &path,
                               std::uint64_t loops = 1,
                               Suite suite = Suite::kSpec06);

} // namespace athena

#endif // ATHENA_TRACE_TRACE_FILE_HH

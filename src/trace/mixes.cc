/**
 * @file
 * Multi-core mix construction.
 */

#include "trace/mixes.hh"

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.hh"

namespace athena
{

namespace
{

WorkloadMix
drawMix(const std::string &name, const std::vector<std::string> &pool,
        unsigned cores, Rng &rng)
{
    WorkloadMix mix;
    mix.name = name;
    mix.workloads.reserve(cores);
    for (unsigned c = 0; c < cores; ++c)
        mix.workloads.push_back(pool[rng.below(pool.size())]);
    return mix;
}

} // namespace

std::vector<WorkloadMix>
buildMixes(const std::vector<std::string> &adverse,
           const std::vector<std::string> &friendly,
           const std::vector<std::string> &all,
           unsigned cores, unsigned per_category, std::uint64_t seed)
{
    Rng rng(seed);
    std::vector<WorkloadMix> mixes;
    mixes.reserve(3 * per_category);
    for (unsigned i = 0; i < per_category; ++i) {
        mixes.push_back(drawMix("adverse_" + std::to_string(i),
                                adverse.empty() ? all : adverse, cores,
                                rng));
    }
    for (unsigned i = 0; i < per_category; ++i) {
        mixes.push_back(drawMix("friendly_" + std::to_string(i),
                                friendly.empty() ? all : friendly, cores,
                                rng));
    }
    for (unsigned i = 0; i < per_category; ++i) {
        mixes.push_back(
            drawMix("random_" + std::to_string(i), all, cores, rng));
    }
    return mixes;
}

} // namespace athena

/**
 * @file
 * MAB (DUCB) implementation.
 */

#include "coord/mab.hh"

#include <algorithm>
#include <cmath>

#include "snapshot/snapshot.hh"

namespace athena
{

MabPolicy::MabPolicy(unsigned num_prefetchers, const MabParams &params)
    : cfg(params)
{
    unsigned pf_combos = num_prefetchers >= 2 ? 4 : 2;
    arms.resize(pf_combos * 2);
    for (unsigned pf = 0; pf < pf_combos; ++pf) {
        for (unsigned ocp = 0; ocp < 2; ++ocp) {
            Arm &arm = arms[pf * 2 + ocp];
            arm.decision.pfEnableMask = pf_combos == 2
                                            ? (pf ? ~0u : 0u)
                                            : pf;
            arm.decision.ocpEnable = ocp != 0;
        }
    }
    reset();
}

unsigned
MabPolicy::selectArm() const
{
    double total = 0.0;
    for (const Arm &arm : arms)
        total += arm.count;
    // Untried arms first.
    for (unsigned a = 0; a < arms.size(); ++a) {
        if (arms[a].count < 1e-9)
            return a;
    }
    unsigned best = 0;
    double best_score = -1e300;
    for (unsigned a = 0; a < arms.size(); ++a) {
        const Arm &arm = arms[a];
        double mean = arm.sum / arm.count;
        double bonus = cfg.explorationC *
                       std::sqrt(std::log(std::max(total, 2.0)) /
                                 arm.count);
        double score = mean + bonus;
        if (score > best_score) {
            best_score = score;
            best = a;
        }
    }
    return best;
}

CoordDecision
MabPolicy::onEpochEnd(const EpochStats &stats)
{
    // Reward the arm that ran during the finished epoch.
    double ipc = stats.ipc();
    rewardScale = std::max(rewardScale, ipc);
    double reward = rewardScale > 0.0 ? ipc / rewardScale : 0.0;

    for (Arm &arm : arms) {
        arm.count *= cfg.discount;
        arm.sum *= cfg.discount;
    }
    arms[current].count += 1.0;
    arms[current].sum += reward;

    current = selectArm();
    return arms[current].decision;
}

void
MabPolicy::reset()
{
    for (Arm &arm : arms) {
        arm.count = 0.0;
        arm.sum = 0.0;
    }
    current = 0;
    rewardScale = 0.0;
}

void
MabPolicy::saveState(SnapshotWriter &w) const
{
    w.u64(arms.size());
    for (const Arm &arm : arms) {
        w.f64(arm.count);
        w.f64(arm.sum);
    }
    w.u32(current);
    w.f64(rewardScale);
}

void
MabPolicy::restoreState(SnapshotReader &r)
{
    r.expectU64(arms.size(), "MAB arm count");
    for (Arm &arm : arms) {
        arm.count = r.f64();
        arm.sum = r.f64();
    }
    current = r.u32();
    if (current >= arms.size()) {
        throw SnapshotError(r.currentSection(),
                            "MAB current arm out of range "
                            "(corrupted snapshot)");
    }
    rewardScale = r.f64();
}

} // namespace athena

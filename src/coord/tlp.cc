/**
 * @file
 * TLP implementation.
 */

#include "coord/tlp.hh"

#include <array>
#include <cstdint>

#include "common/hashing.hh"
#include "snapshot/snapshot.hh"

namespace athena
{

std::array<std::uint16_t, TlpPolicy::kFeatures>
TlpPolicy::featureIndices(std::uint64_t pc, Addr addr) const
{
    unsigned line_off = pageLineOffset(addr);
    Addr page = pageNumber(addr);
    return {
        static_cast<std::uint16_t>(mix64(pc) % kTableSize),
        static_cast<std::uint16_t>(hashCombine(pc, line_off) %
                                   kTableSize),
        static_cast<std::uint16_t>(mix64(page) % kTableSize),
        static_cast<std::uint16_t>(mix64(lastPcsHash) % kTableSize),
    };
}

int
TlpPolicy::sum(const std::array<std::uint16_t, kFeatures> &idx) const
{
    int s = 0;
    for (unsigned f = 0; f < kFeatures; ++f)
        s += weights[f][idx[f]].raw();
    return s;
}

CoordDecision
TlpPolicy::onEpochEnd(const EpochStats &stats)
{
    (void)stats;
    return CoordDecision{}; // everything on; filtering is per-request
}

void
TlpPolicy::onDemandResolved(std::uint64_t pc, Addr addr,
                            bool went_offchip)
{
    auto idx = featureIndices(pc, addr);
    int s = sum(idx);
    bool predicted = s >= kTauHigh;
    if (predicted != went_offchip || (s < kTauHigh && s > kTauLow)) {
        int dir = went_offchip ? 1 : -1;
        for (unsigned f = 0; f < kFeatures; ++f)
            weights[f][idx[f]].add(dir);
    }
    lastPcsHash = hashCombine(lastPcsHash, pc);
}

bool
TlpPolicy::filterPrefetch(CacheLevel level, std::uint64_t pc,
                          Addr addr)
{
    // TLP only filters L1D prefetches; it has, by design, no
    // control over prefetchers at L2C or beyond.
    if (level != CacheLevel::kL1D)
        return false;
    auto idx = featureIndices(pc, addr);
    return sum(idx) >= kTauPref;
}

void
TlpPolicy::reset()
{
    for (auto &table : weights) {
        for (auto &w : table)
            w = SignedSatCounter<6>{};
    }
    lastPcsHash = 0;
}

void
TlpPolicy::saveState(SnapshotWriter &w) const
{
    for (const auto &table : weights) {
        for (const SignedSatCounter<6> &c : table)
            w.i32(c.raw());
    }
    w.u64(lastPcsHash);
}

void
TlpPolicy::restoreState(SnapshotReader &r)
{
    for (auto &table : weights) {
        for (SignedSatCounter<6> &c : table)
            c = SignedSatCounter<6>(r.i32());
    }
    lastPcsHash = r.u64();
}

} // namespace athena

/**
 * @file
 * Coordination policy interface: the decision layer that enables /
 * disables the prefetcher(s) and the off-chip predictor and sets
 * prefetcher aggressiveness at epoch granularity.
 *
 * The memory system collects EpochStats over each fixed-length
 * epoch (2 K retired instructions by default, Table 3) and hands
 * them to the policy, which returns a CoordDecision applied for the
 * next epoch. Policies that filter individual prefetch requests
 * (TLP) additionally implement the per-request hook.
 */

#ifndef ATHENA_COORD_POLICY_HH
#define ATHENA_COORD_POLICY_HH

#include <array>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>

#include "common/types.hh"

namespace athena
{

class SnapshotReader;
class SnapshotWriter;

/** Maximum prefetchers per core across the evaluated designs. */
constexpr unsigned kMaxPrefetchers = 2;

/** System-level telemetry for one epoch. */
struct EpochStats
{
    std::uint64_t instructions = 0;
    std::uint64_t cycles = 0;
    std::uint64_t loads = 0;
    std::uint64_t branches = 0;
    std::uint64_t branchMispredicts = 0;

    /** LLC demand misses and their total latency (cycles). */
    std::uint64_t llcMisses = 0;
    std::uint64_t llcMissLatency = 0;
    std::uint64_t llcDemandAccesses = 0;

    /** Per-prefetcher issue/use counters. */
    std::array<std::uint64_t, kMaxPrefetchers> pfIssued{};
    std::array<std::uint64_t, kMaxPrefetchers> pfUsed{};

    std::uint64_t ocpPredictions = 0;
    std::uint64_t ocpCorrect = 0;

    /** DRAM request mix during the epoch. */
    std::uint64_t dramDemand = 0;
    std::uint64_t dramPrefetch = 0;
    std::uint64_t dramOcp = 0;

    /** Data-bus occupancy fraction in [0, 1]. */
    double bandwidthUsage = 0.0;

    /** Demand misses that hit the pollution filter (section 5.2.3) */
    std::uint64_t pollutionMisses = 0;

    /** Prefetcher accuracy per slot in [0, 1] (0 when idle). */
    double
    pfAccuracy(unsigned slot) const
    {
        return pfIssued[slot] == 0
                   ? 0.0
                   : static_cast<double>(pfUsed[slot]) /
                         static_cast<double>(pfIssued[slot]);
    }

    /** OCP accuracy in [0, 1] (0 when idle). */
    double
    ocpAccuracy() const
    {
        return ocpPredictions == 0
                   ? 0.0
                   : static_cast<double>(ocpCorrect) /
                         static_cast<double>(ocpPredictions);
    }

    /** Pollution fraction of demand misses. */
    double
    pollutionFraction() const
    {
        std::uint64_t misses = llcMisses ? llcMisses : 1;
        return static_cast<double>(pollutionMisses) /
               static_cast<double>(misses);
    }

    double
    ipc() const
    {
        return cycles == 0 ? 0.0
                           : static_cast<double>(instructions) /
                                 static_cast<double>(cycles);
    }
};

/** The knob settings applied for the next epoch. */
struct CoordDecision
{
    /** Bit i enables prefetcher slot i. */
    std::uint32_t pfEnableMask = ~0u;
    bool ocpEnable = true;
    /**
     * Degree scale per prefetcher slot in [0, 1]; the memory system
     * sets each prefetcher's degree to floor(scale * dmax)
     * (Algorithm 1's output r).
     */
    std::array<double, kMaxPrefetchers> degreeScale = {1.0, 1.0};

    bool
    pfEnabled(unsigned slot) const
    {
        return (pfEnableMask >> slot) & 1u;
    }
};

/**
 * Base class of all coordination policies.
 */
class CoordinationPolicy
{
  public:
    virtual ~CoordinationPolicy() = default;

    virtual const char *name() const = 0;

    /** Epoch boundary: observe stats, decide the next epoch. */
    virtual CoordDecision onEpochEnd(const EpochStats &stats) = 0;

    /**
     * Per-demand-load observation hook: the resolved outcome of
     * every demand load (TLP trains its internal perceptron here).
     * A policy that overrides this must also override
     * observesDemandStream() to return true, or the memory system
     * skips the call on the access path.
     */
    virtual void
    onDemandResolved(std::uint64_t pc, Addr addr, bool went_offchip)
    {
        (void)pc;
        (void)addr;
        (void)went_offchip;
    }

    /** Capability flag gating the per-load onDemandResolved call. */
    virtual bool observesDemandStream() const { return false; }

    /**
     * Per-request prefetch filter hook (TLP). Return true to DROP
     * the prefetch to @p addr triggered at @p level. A policy that
     * overrides this must also override filtersPrefetches() to
     * return true, or the memory system never consults the filter.
     */
    virtual bool
    filterPrefetch(CacheLevel level, std::uint64_t pc, Addr addr)
    {
        (void)level;
        (void)pc;
        (void)addr;
        return false;
    }

    /** Capability flag gating the per-prefetch filter call. */
    virtual bool filtersPrefetches() const { return false; }

    /** Clear learned state. */
    virtual void reset() = 0;

    /**
     * Snapshot contract: serialize learned state and decision
     * history so a restored policy decides bit-identically. No-op
     * defaults cover the stateless fixed policies (naive, all-off,
     * pf-only, ocp-only); learning policies override both.
     */
    virtual void saveState(SnapshotWriter &) const {}
    virtual void restoreState(SnapshotReader &) {}

    /** Metadata budget in bits (Table 8 accounting). */
    virtual std::size_t storageBits() const = 0;

    /**
     * Per-action selection counts for policies that choose among
     * discrete actions (Fig. 17 reporting). Default: all zeros.
     * Virtual so the result path needs no RTTI probe for specific
     * policy types.
     */
    virtual std::array<std::uint64_t, 4>
    actionHistogram() const
    {
        return {};
    }
};

/** Built-in policy kinds. */
enum class PolicyKind : std::uint8_t
{
    kNaive,     ///< Everything always on, full degree.
    kAllOff,    ///< Baseline: no prefetch, no OCP.
    kPfOnly,    ///< Prefetchers on, OCP off.
    kOcpOnly,   ///< OCP on, prefetchers off.
    kTlp,
    kHpac,
    kMab,
    kAthena,
};

const char *policyKindName(PolicyKind kind);

/**
 * Serialize / restore an EpochStats block (fixed field order).
 * Shared by the simulator's epoch-window section and policies that
 * keep a previous-epoch copy (the Athena agent).
 */
void writeEpochStats(SnapshotWriter &w, const EpochStats &s);
void readEpochStats(SnapshotReader &r, EpochStats &s);

/** Serialize / restore a CoordDecision (fixed field order). */
void writeCoordDecision(SnapshotWriter &w, const CoordDecision &d);
void readCoordDecision(SnapshotReader &r, CoordDecision &d);

} // namespace athena

#endif // ATHENA_COORD_POLICY_HH

/**
 * @file
 * HPAC implementation.
 */

#include "coord/hpac.hh"

#include "snapshot/snapshot.hh"

namespace athena
{

CoordDecision
HpacPolicy::onEpochEnd(const EpochStats &stats)
{
    // --- local per-prefetcher aggressiveness control ------------
    for (unsigned slot = 0; slot < kMaxPrefetchers; ++slot) {
        if (stats.pfIssued[slot] == 0)
            continue; // no feedback this epoch; hold the level
        double acc = stats.pfAccuracy(slot);
        bool polluting = stats.pollutionFraction() > thr.pollutionHigh;
        bool bw_pressure = stats.bandwidthUsage > thr.bwHigh;

        // HPAC's global control throttles under bandwidth pressure
        // regardless of accuracy — its statically tuned thresholds
        // cannot tell "pressure from useful prefetches" apart from
        // "pressure from useless ones", which is exactly the
        // conservatism Fig. 4 of the Athena paper criticizes.
        if (acc < thr.accLow || bw_pressure || polluting) {
            if (levels[slot] > kMinLevel)
                --levels[slot];
        } else if (acc > thr.accHigh) {
            if (levels[slot] < kMaxLevel)
                ++levels[slot];
        }
    }

    // --- OCP gating with periodic probing ------------------------
    if (ocpOn) {
        if (stats.ocpPredictions > 8 &&
            stats.ocpAccuracy() < thr.ocpAccGate) {
            ocpOn = false;
            ocpOffEpochs = 0;
        }
    } else if (++ocpOffEpochs >= kOcpProbePeriod) {
        ocpOn = true; // probe epoch
    }

    CoordDecision d;
    d.pfEnableMask = ~0u; // HPAC throttles via degree, never to zero
    d.ocpEnable = ocpOn;
    for (unsigned slot = 0; slot < kMaxPrefetchers; ++slot) {
        d.degreeScale[slot] = static_cast<double>(levels[slot]) /
                              static_cast<double>(kMaxLevel);
    }
    return d;
}

void
HpacPolicy::reset()
{
    levels.fill(3); // start in the middle of the range
    ocpOn = true;
    ocpOffEpochs = 0;
}

void
HpacPolicy::saveState(SnapshotWriter &w) const
{
    for (unsigned l : levels)
        w.u32(l);
    w.boolean(ocpOn);
    w.u32(ocpOffEpochs);
}

void
HpacPolicy::restoreState(SnapshotReader &r)
{
    for (unsigned &l : levels)
        l = r.u32();
    ocpOn = r.boolean();
    ocpOffEpochs = r.u32();
}

} // namespace athena

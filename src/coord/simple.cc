/**
 * @file
 * Static policy factories and policy kind names.
 */

#include "coord/simple.hh"

#include <memory>

namespace athena
{

const char *
policyKindName(PolicyKind kind)
{
    switch (kind) {
      case PolicyKind::kNaive:   return "naive";
      case PolicyKind::kAllOff:  return "alloff";
      case PolicyKind::kPfOnly:  return "pf_only";
      case PolicyKind::kOcpOnly: return "ocp_only";
      case PolicyKind::kTlp:     return "tlp";
      case PolicyKind::kHpac:    return "hpac";
      case PolicyKind::kMab:     return "mab";
      case PolicyKind::kAthena:  return "athena";
    }
    return "?";
}

std::unique_ptr<CoordinationPolicy>
makeNaivePolicy()
{
    CoordDecision d;
    d.pfEnableMask = ~0u;
    d.ocpEnable = true;
    return std::make_unique<StaticPolicy>("naive", d);
}

std::unique_ptr<CoordinationPolicy>
makeAllOffPolicy()
{
    CoordDecision d;
    d.pfEnableMask = 0;
    d.ocpEnable = false;
    return std::make_unique<StaticPolicy>("alloff", d);
}

std::unique_ptr<CoordinationPolicy>
makePfOnlyPolicy()
{
    CoordDecision d;
    d.pfEnableMask = ~0u;
    d.ocpEnable = false;
    return std::make_unique<StaticPolicy>("pf_only", d);
}

std::unique_ptr<CoordinationPolicy>
makeOcpOnlyPolicy()
{
    CoordDecision d;
    d.pfEnableMask = 0;
    d.ocpEnable = true;
    return std::make_unique<StaticPolicy>("ocp_only", d);
}

} // namespace athena

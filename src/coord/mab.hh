/**
 * @file
 * MAB: Micro-Armed Bandit (Gerogiannis & Torrellas, MICRO 2023),
 * adapted for OCP coordination as in section 6.2.3 of the Athena
 * paper.
 *
 * A Discounted-UCB bandit over enable combinations: with one
 * prefetcher the arms are {none, PF, OCP, both} (4 arms); with two
 * prefetchers, all 8 combinations of {PF1, PF2, OCP}. The per-epoch
 * reward is the epoch IPC (normalized online). MAB is
 * state-agnostic by construction — it never looks at accuracy,
 * bandwidth, or pollution — which is the headroom Fig. 18's
 * "Stateless Athena" comparison isolates.
 */

#ifndef ATHENA_COORD_MAB_HH
#define ATHENA_COORD_MAB_HH

#include <cstddef>
#include <vector>

#include "coord/policy.hh"

namespace athena
{

/** DUCB hyperparameters (grid-searched on the tuning set). */
struct MabParams
{
    double discount = 0.992;     ///< Per-epoch decay of counts/sums.
    double explorationC = 0.35;  ///< UCB exploration coefficient.
};

class MabPolicy : public CoordinationPolicy
{
  public:
    /**
     * @param num_prefetchers 1 -> 4 arms, 2 -> 8 arms
     * @param params DUCB hyperparameters
     */
    explicit MabPolicy(unsigned num_prefetchers = 1,
                       const MabParams &params = MabParams{});

    const char *name() const override { return "mab"; }

    CoordDecision onEpochEnd(const EpochStats &stats) override;

    void reset() override;

    void saveState(SnapshotWriter &w) const override;
    void restoreState(SnapshotReader &r) override;

    std::size_t
    storageBits() const override
    {
        // Two fixed-point accumulators per arm; 0.1 KB class.
        return arms.size() * 2 * 32;
    }

    /** Currently selected arm (tests peek). */
    unsigned currentArm() const { return current; }
    unsigned numArms() const
    {
        return static_cast<unsigned>(arms.size());
    }

  private:
    struct Arm
    {
        CoordDecision decision;
        double count = 0.0; ///< Discounted pull count.
        double sum = 0.0;   ///< Discounted reward sum.
    };

    unsigned selectArm() const;

    MabParams cfg;
    std::vector<Arm> arms;
    unsigned current = 0;
    double rewardScale = 0.0; ///< Running max IPC for normalization.
};

} // namespace athena

#endif // ATHENA_COORD_MAB_HH

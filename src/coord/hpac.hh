/**
 * @file
 * HPAC: Hierarchical Prefetcher Aggressiveness Control (Ebrahimi et
 * al., MICRO 2009), adapted for OCP coordination as described in
 * section 6.2.2 of the Athena paper.
 *
 * Local control: each prefetcher's aggressiveness level (1..5,
 * mapped to a degree scale) moves up/down by comparing prefetcher
 * accuracy, pollution and bandwidth usage against static
 * thresholds. The OCP is gated by its accuracy against a static
 * threshold, with periodic probing so a disabled OCP can recover.
 * All thresholds were tuned by grid search on the 20-workload
 * tuning set (tools in bench_fig18's DSE helper), mirroring the
 * paper's methodology; their *static* nature is exactly the
 * weakness Fig. 4 demonstrates.
 */

#ifndef ATHENA_COORD_HPAC_HH
#define ATHENA_COORD_HPAC_HH

#include <array>
#include <cstddef>

#include "coord/policy.hh"

namespace athena
{

/** Tunable thresholds (defaults from our grid search). */
struct HpacThresholds
{
    double accHigh = 0.60;   ///< Accuracy above which to ramp up.
    double accLow = 0.30;    ///< Accuracy below which to ramp down.
    double bwHigh = 0.75;    ///< Bandwidth pressure threshold.
    double pollutionHigh = 0.10;
    double ocpAccGate = 0.50; ///< Min OCP accuracy to stay enabled.
};

class HpacPolicy : public CoordinationPolicy
{
  public:
    explicit HpacPolicy(const HpacThresholds &thresholds =
                            HpacThresholds{})
        : thr(thresholds)
    {
        reset();
    }

    const char *name() const override { return "hpac"; }

    CoordDecision onEpochEnd(const EpochStats &stats) override;

    void reset() override;

    void saveState(SnapshotWriter &w) const override;
    void restoreState(SnapshotReader &r) override;

    std::size_t
    storageBits() const override
    {
        // A handful of counters and 3-bit levels; 0.5 KB class.
        return 4096;
    }

    /** Aggressiveness level of a slot (tests peek). */
    unsigned level(unsigned slot) const { return levels[slot]; }

  private:
    static constexpr unsigned kMaxLevel = 5;
    static constexpr unsigned kMinLevel = 1;
    static constexpr unsigned kOcpProbePeriod = 16;

    HpacThresholds thr;
    std::array<unsigned, kMaxPrefetchers> levels{};
    bool ocpOn = true;
    unsigned ocpOffEpochs = 0;
};

} // namespace athena

#endif // ATHENA_COORD_HPAC_HH

/**
 * @file
 * Trivial static coordination policies: Naive (everything on), the
 * no-speculation baseline, and the two single-mechanism combos.
 * StaticBest (section 2.1.2) is not a policy — the experiment
 * runner computes it retrospectively from these four.
 */

#ifndef ATHENA_COORD_SIMPLE_HH
#define ATHENA_COORD_SIMPLE_HH

#include "coord/policy.hh"

#include <cstddef>
#include <memory>
#include <string>

namespace athena
{

/** A fixed decision applied every epoch. */
class StaticPolicy : public CoordinationPolicy
{
  public:
    StaticPolicy(std::string name, CoordDecision decision)
        : label(std::move(name)), decision(decision)
    {}

    const char *name() const override { return label.c_str(); }

    CoordDecision
    onEpochEnd(const EpochStats &stats) override
    {
        (void)stats;
        return decision;
    }

    void reset() override {}
    std::size_t storageBits() const override { return 0; }

  private:
    std::string label;
    CoordDecision decision;
};

/** Naive<OCP, PF...>: both mechanisms always on, full degree. */
std::unique_ptr<CoordinationPolicy> makeNaivePolicy();

/** Baseline: no prefetching and no OCP. */
std::unique_ptr<CoordinationPolicy> makeAllOffPolicy();

/** Prefetcher(s) only. */
std::unique_ptr<CoordinationPolicy> makePfOnlyPolicy();

/** OCP only. */
std::unique_ptr<CoordinationPolicy> makeOcpOnlyPolicy();

} // namespace athena

#endif // ATHENA_COORD_SIMPLE_HH

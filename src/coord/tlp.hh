/**
 * @file
 * TLP: a two-level perceptron approach combining off-chip
 * prediction with adaptive prefetch filtering (Jamet et al.,
 * HPCA 2024).
 *
 * Level 1 is a perceptron off-chip predictor over the demand
 * stream. Level 2 filters *L1D prefetch requests* that the
 * perceptron predicts would be filled from off-chip, based on the
 * empirical observation that off-chip prefetch fills into L1D are
 * usually inaccurate. Its key structural limitation — no control
 * over prefetchers beyond L1D — is what Fig. 11 of the Athena paper
 * exposes: in CD4 it cannot throttle the L2C prefetcher at all.
 *
 * Epoch-level knobs are untouched (everything enabled, full
 * degree); all the action is in the per-request filter.
 */

#ifndef ATHENA_COORD_TLP_HH
#define ATHENA_COORD_TLP_HH

#include <array>
#include <cstddef>
#include <cstdint>

#include "common/sat_counter.hh"
#include "coord/policy.hh"

namespace athena
{

class TlpPolicy : public CoordinationPolicy
{
  public:
    TlpPolicy() { reset(); }

    const char *name() const override { return "tlp"; }

    CoordDecision onEpochEnd(const EpochStats &stats) override;

    void onDemandResolved(std::uint64_t pc, Addr addr,
                          bool went_offchip) override;
    bool observesDemandStream() const override { return true; }

    bool filterPrefetch(CacheLevel level, std::uint64_t pc,
                        Addr addr) override;
    bool filtersPrefetches() const override { return true; }

    void reset() override;

    void saveState(SnapshotWriter &w) const override;
    void restoreState(SnapshotReader &r) override;

    std::size_t
    storageBits() const override
    {
        // 4 feature tables x 2048 x 6-bit weights + history; ~6.98
        // KB class budget in Table 8.
        return kFeatures * kTableSize * 6 + 64;
    }

    // Thresholds as specified in the TLP paper's configuration.
    static constexpr int kTauLow = -10;
    static constexpr int kTauHigh = 2;
    /** Filtering threshold tau_pref for L1D prefetches. */
    static constexpr int kTauPref = 0;

  private:
    static constexpr unsigned kFeatures = 4;
    static constexpr unsigned kTableSize = 2048;

    std::array<std::uint16_t, kFeatures>
    featureIndices(std::uint64_t pc, Addr addr) const;

    int sum(const std::array<std::uint16_t, kFeatures> &idx) const;

    std::array<std::array<SignedSatCounter<6>, kTableSize>, kFeatures>
        weights;
    std::uint64_t lastPcsHash = 0;
};

} // namespace athena

#endif // ATHENA_COORD_TLP_HH

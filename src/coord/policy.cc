/**
 * @file
 * Shared snapshot serializers for the coordination-layer value
 * types (kind-name helpers live in simple.cc alongside the static
 * policy factories).
 */

#include "coord/policy.hh"

#include "snapshot/snapshot.hh"

namespace athena
{

void
writeEpochStats(SnapshotWriter &w, const EpochStats &s)
{
    w.u64(s.instructions);
    w.u64(s.cycles);
    w.u64(s.loads);
    w.u64(s.branches);
    w.u64(s.branchMispredicts);
    w.u64(s.llcMisses);
    w.u64(s.llcMissLatency);
    w.u64(s.llcDemandAccesses);
    for (std::uint64_t v : s.pfIssued)
        w.u64(v);
    for (std::uint64_t v : s.pfUsed)
        w.u64(v);
    w.u64(s.ocpPredictions);
    w.u64(s.ocpCorrect);
    w.u64(s.dramDemand);
    w.u64(s.dramPrefetch);
    w.u64(s.dramOcp);
    w.f64(s.bandwidthUsage);
    w.u64(s.pollutionMisses);
}

void
readEpochStats(SnapshotReader &r, EpochStats &s)
{
    s.instructions = r.u64();
    s.cycles = r.u64();
    s.loads = r.u64();
    s.branches = r.u64();
    s.branchMispredicts = r.u64();
    s.llcMisses = r.u64();
    s.llcMissLatency = r.u64();
    s.llcDemandAccesses = r.u64();
    for (std::uint64_t &v : s.pfIssued)
        v = r.u64();
    for (std::uint64_t &v : s.pfUsed)
        v = r.u64();
    s.ocpPredictions = r.u64();
    s.ocpCorrect = r.u64();
    s.dramDemand = r.u64();
    s.dramPrefetch = r.u64();
    s.dramOcp = r.u64();
    s.bandwidthUsage = r.f64();
    s.pollutionMisses = r.u64();
}

void
writeCoordDecision(SnapshotWriter &w, const CoordDecision &d)
{
    w.u32(d.pfEnableMask);
    w.boolean(d.ocpEnable);
    for (double v : d.degreeScale)
        w.f64(v);
}

void
readCoordDecision(SnapshotReader &r, CoordDecision &d)
{
    d.pfEnableMask = r.u32();
    d.ocpEnable = r.boolean();
    for (double &v : d.degreeScale)
        v = r.f64();
}

} // namespace athena

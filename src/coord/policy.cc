/**
 * @file
 * Placeholder translation unit; kind-name helpers live in
 * simple.cc alongside the static policy factories.
 */

#include "coord/policy.hh"

/**
 * @file
 * StateEncoder implementation.
 */

#include "athena/features.hh"

#include <cstdint>
#include <vector>

namespace athena
{

const char *
stateFeatureName(StateFeature feature)
{
    switch (feature) {
      case StateFeature::kPrefetcherAccuracy:
        return "prefetcher_accuracy";
      case StateFeature::kOcpAccuracy:
        return "ocp_accuracy";
      case StateFeature::kBandwidthUsage:
        return "bandwidth_usage";
      case StateFeature::kCachePollution:
        return "cache_pollution";
      case StateFeature::kPrefetchBandwidthShare:
        return "prefetch_bandwidth_share";
      case StateFeature::kOcpBandwidthShare:
        return "ocp_bandwidth_share";
      case StateFeature::kDemandBandwidthShare:
        return "demand_bandwidth_share";
    }
    return "?";
}

std::vector<StateFeature>
defaultFeatureSet()
{
    return {
        StateFeature::kPrefetcherAccuracy,
        StateFeature::kOcpAccuracy,
        StateFeature::kBandwidthUsage,
        StateFeature::kCachePollution,
    };
}

double
StateEncoder::rawValue(StateFeature feature, const EpochStats &stats)
{
    auto share = [&](std::uint64_t part) {
        std::uint64_t total =
            stats.dramDemand + stats.dramPrefetch + stats.dramOcp;
        return total == 0 ? 0.0
                          : static_cast<double>(part) /
                                static_cast<double>(total);
    };

    switch (feature) {
      case StateFeature::kPrefetcherAccuracy:
        {
            // Aggregate over prefetcher slots, as the QVStore keys a
            // single prefetcher-accuracy feature.
            std::uint64_t issued = 0;
            std::uint64_t used = 0;
            for (unsigned s = 0; s < kMaxPrefetchers; ++s) {
                issued += stats.pfIssued[s];
                used += stats.pfUsed[s];
            }
            return issued == 0 ? 0.0
                               : static_cast<double>(used) /
                                     static_cast<double>(issued);
        }
      case StateFeature::kOcpAccuracy:
        return stats.ocpAccuracy();
      case StateFeature::kBandwidthUsage:
        return stats.bandwidthUsage;
      case StateFeature::kCachePollution:
        return stats.pollutionFraction();
      case StateFeature::kPrefetchBandwidthShare:
        return share(stats.dramPrefetch);
      case StateFeature::kOcpBandwidthShare:
        return share(stats.dramOcp);
      case StateFeature::kDemandBandwidthShare:
        return share(stats.dramDemand);
    }
    return 0.0;
}

std::uint32_t
StateEncoder::encode(const EpochStats &stats) const
{
    std::uint32_t state = 0;
    for (StateFeature f : features) {
        state = (state << kBitsPerFeature) |
                quantize(rawValue(f, stats));
    }
    return state;
}

} // namespace athena

/**
 * @file
 * AthenaAgent implementation.
 */

#include "athena/agent.hh"

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>

#include "snapshot/snapshot.hh"

namespace athena
{

namespace
{

/** Set ATHENA_AGENT_TRACE=1 to dump per-epoch agent decisions. */
bool
traceEnabled()
{
    static const bool enabled = [] {
        const char *v = std::getenv("ATHENA_AGENT_TRACE");
        return v && *v && *v != '0';
    }();
    return enabled;
}

} // namespace

AthenaAgent::AthenaAgent(const AthenaConfig &config)
    : cfg(config), encoder(config.features),
      qvstore([&] {
          QVStoreParams qp = config.qv;
          qp.stateFields =
              static_cast<unsigned>(config.features.size());
          qp.bitsPerField = StateEncoder::kBitsPerFeature;
          return qp;
      }()),
      compositeReward(config.rewardWeights,
                      config.useUncorrelatedReward),
      rng(config.seed)
{
    reset();
}

CoordDecision
AthenaAgent::decisionFor(unsigned action, double degree_scale) const
{
    CoordDecision d;
    if (cfg.prefetcherOnlyMode) {
        // Actions: {none, PF1, PF2, PF1+PF2}; OCP absent.
        d.pfEnableMask = action; // 2-bit mask by construction
        d.ocpEnable = false;
    } else {
        // Actions: {none, OCP, PF-group, PF-group + OCP}.
        bool pf = action == 2 || action == 3;
        bool ocp = action == 1 || action == 3;
        d.pfEnableMask = pf ? ~0u : 0u;
        d.ocpEnable = ocp;
    }
    d.degreeScale.fill(degree_scale);
    return d;
}

double
AthenaAgent::degreeScaleFor(std::uint32_t state, unsigned action) const
{
    bool enables_pf = cfg.prefetcherOnlyMode
                          ? action != 0
                          : (action == 2 || action == 3);
    if (!enables_pf)
        return 0.0;
    // Algorithm 1: confidence = separation of the selected action's
    // Q-value from the mean of the alternatives, normalized by tau.
    // Single-pass: the state's plane rows are resolved once for the
    // whole separation instead of once per q() term.
    double dq = qvstore.qSeparation(state, action);
    if (dq <= 0.0)
        return 0.0;
    return std::min(1.0, dq / cfg.tau);
}

CoordDecision
AthenaAgent::onEpochEnd(const EpochStats &stats)
{
    std::uint32_t state =
        cfg.stateless ? 0u : encoder.encode(stats);

    // Select the next action: epsilon-greedy over the QVStore.
    // Exploratory probes run at full prefetcher aggressiveness so
    // they measure the mechanism's real effect, not a throttled
    // shadow of it.
    unsigned action;
    bool exploratory = cfg.epsilon > 0.0 && rng.chance(cfg.epsilon);
    if (exploratory) {
        action = static_cast<unsigned>(
            rng.below(qvstore.params().actions));
    } else {
        // Greedy selection reads Q-values: drain any triples
        // buffered over preceding exploratory epochs first.
        flushTraining();
        action = qvstore.argmax(state);
    }

    // Reward the previous action and buffer its SARSA triple for
    // the batched update pass. The previous action ran during the
    // epoch summarized by `stats`, so the reward compares this
    // epoch against the one before it. The cold-start priming call
    // (empty stats) never rewards.
    if (havePrev && prevStats.instructions > 0 &&
        stats.instructions > 0) {
        double reward = cfg.ipcRewardOnly
                            ? ipcReward.compute(prevStats, stats)
                            : compositeReward.compute(prevStats,
                                                      stats);
        lastRewardValue = reward;
        pendingTrain.push_back(
            {prevState, prevAction, reward, state, action});
        if (!exploratory) {
            flushTraining();
            // Re-select in case the update changed the greedy
            // choice.
            action = qvstore.argmax(state);
        } else if (!cfg.batchedTraining) {
            // Scalar training plane: apply the triple immediately
            // (a batch of one) instead of carrying it to the next
            // greedy epoch.
            flushTraining();
        }
    }

    if (traceEnabled()) {
        flushTraining(); // the dump reads live Q-values
        std::fprintf(stderr,
                     "athena: s=%03x prev_a=%u r=%+.3f next_a=%u%s "
                     "q=[%+.2f %+.2f %+.2f %+.2f] cyc=%llu "
                     "pfI=%llu pfU=%llu dq=%.2f\n",
                     state, prevAction, lastRewardValue, action,
                     exploratory ? "*" : " ", qvstore.q(state, 0),
                     qvstore.q(state, 1), qvstore.q(state, 2),
                     qvstore.q(state, 3),
                     static_cast<unsigned long long>(stats.cycles),
                     static_cast<unsigned long long>(
                         stats.pfIssued[0]),
                     static_cast<unsigned long long>(
                         stats.pfUsed[0]),
                     degreeScaleFor(state, action));
    }

    prevStats = stats;
    prevState = state;
    prevAction = action;
    havePrev = true;
    ++actionCounts[action % actionCounts.size()];

    double scale = exploratory
                       ? 1.0
                       : degreeScaleFor(state, action);
    return decisionFor(action, scale);
}

void
AthenaAgent::flushTraining()
{
    if (pendingTrain.empty())
        return;
    qvstore.updateBatch(pendingTrain.data(), pendingTrain.size());
    pendingTrain.clear();
}

void
AthenaAgent::reset()
{
    qvstore.reset();
    pendingTrain.clear();
    rng = Rng(cfg.seed);
    havePrev = false;
    prevStats = EpochStats{};
    prevState = 0;
    prevAction = 0;
    lastRewardValue = 0.0;
    actionCounts.fill(0);
}

void
AthenaAgent::saveState(SnapshotWriter &w) const
{
    qvstore.saveState(w);
    w.u64(rng.rawState());
    w.boolean(havePrev);
    writeEpochStats(w, prevStats);
    w.u32(prevState);
    w.u32(prevAction);
    w.f64(lastRewardValue);
    for (std::uint64_t c : actionCounts)
        w.u64(c);
    // Triples still buffered for the next batched update pass
    // (non-empty only when the last epoch before the snapshot was
    // exploratory) — a resumed run must drain the same batch.
    w.u32(static_cast<std::uint32_t>(pendingTrain.size()));
    for (const QVStore::TrainTriple &t : pendingTrain) {
        w.u32(t.s);
        w.u32(t.a);
        w.f64(t.reward);
        w.u32(t.sNext);
        w.u32(t.aNext);
    }
}

void
AthenaAgent::restoreState(SnapshotReader &r)
{
    qvstore.restoreState(r);
    rng.setRawState(r.u64());
    havePrev = r.boolean();
    readEpochStats(r, prevStats);
    prevState = r.u32();
    prevAction = r.u32();
    lastRewardValue = r.f64();
    for (std::uint64_t &c : actionCounts)
        c = r.u64();
    pendingTrain.assign(r.u32(), QVStore::TrainTriple{});
    for (QVStore::TrainTriple &t : pendingTrain) {
        t.s = r.u32();
        t.a = r.u32();
        t.reward = r.f64();
        t.sNext = r.u32();
        t.aNext = r.u32();
    }
}

} // namespace athena

/**
 * @file
 * Athena's state representation (section 4.1).
 *
 * The state is a vector of quantized system-level features packed
 * into a 32-bit word. Table 1 lists seven candidates; the automated
 * design-space exploration of section 5.3.1 selects four
 * (Table 3): prefetcher accuracy, OCP accuracy, bandwidth usage,
 * and prefetch-induced cache pollution. The feature subset is
 * configurable here so the Fig. 18 ablation can add them one at a
 * time.
 */

#ifndef ATHENA_ATHENA_FEATURES_HH
#define ATHENA_ATHENA_FEATURES_HH

#include <cstdint>
#include <vector>

#include "coord/policy.hh"

namespace athena
{

/** The seven candidate features of Table 1. */
enum class StateFeature : std::uint8_t
{
    kPrefetcherAccuracy,
    kOcpAccuracy,
    kBandwidthUsage,
    kCachePollution,
    kPrefetchBandwidthShare,
    kOcpBandwidthShare,
    kDemandBandwidthShare,
};

const char *stateFeatureName(StateFeature feature);

/** The DSE-selected default subset (Table 3). */
std::vector<StateFeature> defaultFeatureSet();

/**
 * Packs selected features, quantized to kBitsPerFeature levels
 * each, into a state word.
 */
class StateEncoder
{
  public:
    static constexpr unsigned kBitsPerFeature = 2;
    static constexpr unsigned kLevels = 1u << kBitsPerFeature;

    explicit StateEncoder(std::vector<StateFeature> features =
                              defaultFeatureSet())
        : features(std::move(features))
    {}

    /** Extract a raw feature value in [0, 1] from epoch stats. */
    static double rawValue(StateFeature feature,
                           const EpochStats &stats);

    /** Quantize a [0, 1] value to a level in [0, kLevels). */
    static unsigned
    quantize(double v)
    {
        if (v <= 0.0)
            return 0;
        if (v >= 1.0)
            return kLevels - 1;
        return static_cast<unsigned>(v * kLevels);
    }

    /** Encode the packed state vector for this epoch. */
    std::uint32_t encode(const EpochStats &stats) const;

    const std::vector<StateFeature> &featureSet() const
    {
        return features;
    }

  private:
    std::vector<StateFeature> features;
};

} // namespace athena

#endif // ATHENA_ATHENA_FEATURES_HH

/**
 * @file
 * QVStore: Athena's partitioned Q-value storage (section 5.1,
 * Fig. 6).
 *
 * The Q-value of a (state, action) pair is the sum of k partial
 * Q-values, one per *plane*. Each plane is a small table indexed by
 * an independent hash of the packed state vector. Similar states
 * collide in some planes (generalization); dissimilar states are
 * de-aliased by the independent hashes (resolution). SARSA updates
 * distribute the TD error equally across planes.
 *
 * Table 4 geometry: 8 planes x 64 rows x 4 actions, 8-bit entries
 * (2 KB). Entries here are s3.4 fixed point when quantized mode is
 * on (the default, matching the storage claim) or double-precision
 * when off (used by tests to bound the quantization error).
 */

#ifndef ATHENA_ATHENA_QVSTORE_HH
#define ATHENA_ATHENA_QVSTORE_HH

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/simd.hh"
#include "common/types.hh"

namespace athena
{

class SnapshotReader;
class SnapshotWriter;

/** QVStore geometry and learning configuration. */
struct QVStoreParams
{
    unsigned planes = 8;
    unsigned rows = 64;
    unsigned actions = 4;
    /** Number of packed features in the state word and bits per
     *  feature (must match the StateEncoder). The second half of
     *  the planes index with each feature coarsened by one bit
     *  (tile-coding offsets), which is what makes *similar* states
     *  collide in some planes — the generalization/resolution
     *  balance section 5.1 describes. */
    unsigned stateFields = 4;
    unsigned bitsPerField = 3;
    /** Learning rate alpha (Table 3: 0.6). */
    double alpha = 0.6;
    /** Discount factor gamma (Table 3: 0.6). */
    double gamma = 0.6;
    /**
     * 8-bit s3.4 fixed-point entries with stochastic rounding
     * (matches Table 4's 8-bit storage claim) vs. double-precision
     * entries. Learning quality is nearly identical (see
     * tests/test_qvstore.cc); the float mode is the default so
     * results are bit-independent of rounding noise.
     */
    bool quantized = false;
    /** Optimistic initial Q-value (drives greedy exploration). */
    double initQ = 0.5;
    /** Seed for the stochastic-rounding RNG (quantized mode). */
    std::uint64_t roundingSeed = 0x51ed5eedull;
    /**
     * Memoize per-plane row indices across calls. Rows are a pure
     * function of (state, geometry), so the memo is exact — it only
     * trades a small lazily-allocated table for re-hashing every
     * plane on every q/argmax/update in the decision hot loop.
     * Tests disable this to cross-check bit-equivalence against the
     * per-call hashing path.
     */
    bool memoizeRows = true;
};

class QVStore
{
  public:
    explicit QVStore(const QVStoreParams &params = QVStoreParams{});

    /**
     * Largest action count served by the stack-resident column
     * kernels (argmax/qSeparation and the agent's decision loop
     * buffer one Q-column of this size). Geometries beyond it fall
     * back to the per-action scalar scans, bit-identically.
     */
    static constexpr unsigned kMaxActionColumns = 16;

    /** One buffered SARSA training triple (updateBatch). */
    struct TrainTriple
    {
        std::uint32_t s = 0;
        unsigned a = 0;
        double reward = 0.0;
        std::uint32_t sNext = 0;
        unsigned aNext = 0;
    };

    /** Summed Q-value of (state, action). */
    double q(std::uint32_t state, unsigned action) const;

    /**
     * All actions' summed Q-values for @p state in one column-wise
     * pass: the state's plane rows are resolved once and each
     * plane's contiguous action row accumulates into @p out
     * (vectorizable, like the DRAM drain kernel). out must hold
     * params().actions values; out[a] is bit-identical to
     * q(state, a) because each action's partials add in the same
     * plane order the per-action scan uses.
     */
    void qAllActions(std::uint32_t state, double *out) const;

    /**
     * Resolve every plane's row index for @p n states in one pass
     * over the row memo. rows_out is n x planes, row-major. Row
     * indices are a pure function of (state, geometry), so the
     * batch is exact by construction.
     */
    void qRowsBatch(const std::uint32_t *states, std::size_t n,
                    std::uint32_t *rows_out) const;

    /**
     * Batched lookup: q_out is n x actions, row-major; row i is
     * bit-identical to {q(states[i], a) for each action}.
     */
    void lookupBatch(const std::uint32_t *states, std::size_t n,
                     double *q_out) const;

    /** Action with the highest Q-value in @p state. */
    unsigned argmax(std::uint32_t state) const;

    /** Mean Q over all actions except @p excluded (Algorithm 1). */
    double meanOfOthers(std::uint32_t state, unsigned excluded) const;

    /**
     * Algorithm 1's confidence input in one pass:
     *   q(state, action) - meanOfOthers(state, action)
     * with the state's row indices resolved once instead of once
     * per q() term.
     */
    double qSeparation(std::uint32_t state, unsigned action) const;

    /**
     * SARSA update:
     *   Q(s,a) += alpha * (r + gamma * Q(s',a') - Q(s,a))
     * applied independently to each plane (each absorbs 1/k of the
     * scaled TD error).
     */
    void update(std::uint32_t s, unsigned a, double reward,
                std::uint32_t s_next, unsigned a_next);

    /**
     * Apply @p n SARSA updates in their given order as one batched
     * pass: phase 1 resolves both states' plane rows for every
     * triple up front (pure row hashing, amortized over the batch);
     * phase 2 applies the updates in the original order with
     * arithmetic identical to update() — same entry reads, same
     * per-plane write order, and in quantized mode the same
     * saturating int8 stochastic-rounding RNG sequence. Provably
     * order-equivalent to n update() calls (the hoisted phase-1
     * work touches only the pure row memo, never the entries).
     */
    void updateBatch(const TrainTriple *triples, std::size_t n);

    void reset();

    /**
     * Snapshot contract: geometry guard (planes/rows/actions/
     * storage mode), entry planes, and the stochastic-rounding
     * state. The row memo is a pure function of geometry and is
     * rebuilt lazily, not serialized.
     */
    void saveState(SnapshotWriter &w) const;
    void restoreState(SnapshotReader &r);

    const QVStoreParams &params() const { return cfg; }

    /** Backend captured at construction (simd::activeBackend()). */
    simd::Backend simdBackend() const { return backend; }

    /** Table 4 storage accounting: planes x rows x actions x 8 b. */
    std::size_t
    storageBits() const
    {
        return static_cast<std::size_t>(cfg.planes) * cfg.rows *
               cfg.actions * 8;
    }

  private:
    static constexpr double kFixedScale = 16.0; // s3.4
    static constexpr double kFixedMax = 127.0 / kFixedScale;
    static constexpr double kFixedMin = -128.0 / kFixedScale;

    /** Row index of @p state in plane @p p. */
    std::size_t rowOf(std::uint32_t state, unsigned p) const;

    /**
     * All planes' row indices for @p state, computed once per call
     * chain. Returns a pointer into the cross-call memo when the
     * state fits the packed state space (and memoization is on), or
     * into a per-store scratch array otherwise. The pointer is
     * invalidated by the next rowsFor() call on the scratch path —
     * callers extract everything they need before re-calling.
     */
    const std::uint32_t *rowsFor(std::uint32_t state) const;

    /** Summed Q over planes with pre-resolved row indices. */
    double qRows(const std::uint32_t *rows, unsigned action) const;

    /**
     * Fill batchRows with every plane's row index for @p n states,
     * laid out plane-major (batchRows[p * n + i] is state i's row
     * in plane p) so each plane's hash kernel streams one
     * contiguous lane — the gather-free layout the AVX2 batch path
     * reads. Recomputes memo-free (row hashing is pure, so results
     * match the memo path bit-for-bit); full-resolution planes
     * vector-hash the raw states, coarse planes hash the two
     * tile-offset coarsenings staged once in coarseScratch.
     */
    void materializeRowsSoA(const std::uint32_t *states,
                            std::size_t n) const;

    double entry(unsigned p, std::size_t row, unsigned a) const;
    void addToEntry(unsigned p, std::size_t row, unsigned a,
                    double delta);

    QVStoreParams cfg;
    /** Quantized storage: planes x rows x actions int8 entries. */
    std::vector<std::int8_t> fixedEntries;
    /** Float storage (quantized == false). */
    std::vector<double> floatEntries;
    /** xorshift state for stochastic rounding. */
    mutable std::uint64_t roundState = 1;

    /** Packed-state count covered by the memo (0 = disabled). */
    std::uint32_t memoStates = 0;
    /** Lazily-built memo: memoStates x planes row indices. */
    mutable std::vector<std::uint32_t> memoRows;
    mutable std::vector<std::uint8_t> memoValid;
    /** Fallback row buffer for out-of-range states. */
    mutable std::vector<std::uint32_t> rowScratch;
    /** updateBatch phase-1 row staging (reused across batches). */
    std::vector<std::uint32_t> trainRows;

    /** SIMD backend, latched once at construction. */
    simd::Backend backend = simd::Backend::kScalar;
    /** Wide row path requires a power-of-two row count (hash masks
     *  replace the scalar modulo); other geometries stay scalar. */
    bool vectorRows = false;
    /** materializeRowsSoA staging: planes x n, plane-major. */
    mutable std::vector<std::uint32_t> batchRows;
    /** Coarse tile-coded states, both offsets (2 x n). */
    mutable std::vector<std::uint32_t> coarseScratch;
};

} // namespace athena

#endif // ATHENA_ATHENA_QVSTORE_HH

/**
 * @file
 * QVStore implementation.
 */

#include "athena/qvstore.hh"

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <cstdint>

#include "common/hashing.hh"
#include "snapshot/snapshot.hh"

namespace athena
{

namespace
{

/** Memo covers packed states up to 16 bits (64 K x planes words). */
constexpr unsigned kMemoMaxStateBits = 16;

} // namespace

QVStore::QVStore(const QVStoreParams &params) : cfg(params)
{
    unsigned state_bits = cfg.stateFields * cfg.bitsPerField;
    if (cfg.memoizeRows && state_bits <= kMemoMaxStateBits)
        memoStates = 1u << state_bits;
    rowScratch.resize(cfg.planes);
    backend = simd::activeBackend();
    vectorRows =
        cfg.rows != 0 && (cfg.rows & (cfg.rows - 1)) == 0;
    reset();
}

std::size_t
QVStore::rowOf(std::uint32_t state, unsigned p) const
{
    // First half of the planes: full-resolution state, independent
    // hash per plane (de-aliasing). Second half: each feature is
    // coarsened by one bit after a per-plane tiling offset, so
    // nearby states (e.g. bandwidth level 3 vs. 4) land in the
    // same row and share learning (generalization).
    if (p < (cfg.planes + 1) / 2) {
        return static_cast<std::size_t>(keyedHash(state, p) %
                                        cfg.rows);
    }
    const std::uint32_t field_mask = (1u << cfg.bitsPerField) - 1;
    const std::uint32_t max_level = field_mask;
    std::uint32_t offset = (p - (cfg.planes + 1) / 2) & 1;
    std::uint32_t coarse = 0;
    for (unsigned f = 0; f < cfg.stateFields; ++f) {
        std::uint32_t level =
            (state >> (f * cfg.bitsPerField)) & field_mask;
        level = std::min(max_level, level + offset);
        coarse = (coarse << (cfg.bitsPerField - 1)) | (level >> 1);
    }
    return static_cast<std::size_t>(keyedHash(coarse, 64 + p) %
                                    cfg.rows);
}

double
QVStore::entry(unsigned p, std::size_t row, unsigned a) const
{
    std::size_t idx =
        (static_cast<std::size_t>(p) * cfg.rows + row) * cfg.actions +
        a;
    if (cfg.quantized)
        return static_cast<double>(fixedEntries[idx]) / kFixedScale;
    return floatEntries[idx];
}

void
QVStore::addToEntry(unsigned p, std::size_t row, unsigned a,
                    double delta)
{
    std::size_t idx =
        (static_cast<std::size_t>(p) * cfg.rows + row) * cfg.actions +
        a;
    if (cfg.quantized) {
        double v = static_cast<double>(fixedEntries[idx]) /
                       kFixedScale +
                   delta;
        v = std::clamp(v, kFixedMin, kFixedMax);
        // Stochastic rounding: a sub-LSB TD error moves the entry
        // with probability proportional to its magnitude, so small
        // rewards are not silently swallowed by the 8-bit grid.
        double scaled = v * kFixedScale;
        double lo = std::floor(scaled);
        double frac = scaled - lo;
        roundState ^= roundState << 13;
        roundState ^= roundState >> 7;
        roundState ^= roundState << 17;
        double u = static_cast<double>(roundState >> 11) * 0x1.0p-53;
        fixedEntries[idx] =
            static_cast<std::int8_t>(u < frac ? lo + 1.0 : lo);
    } else {
        floatEntries[idx] += delta;
    }
}

const std::uint32_t *
QVStore::rowsFor(std::uint32_t state) const
{
    if (state < memoStates) {
        if (memoRows.empty()) {
            memoRows.resize(static_cast<std::size_t>(memoStates) *
                            cfg.planes);
            memoValid.assign(memoStates, 0);
        }
        std::uint32_t *rows =
            &memoRows[static_cast<std::size_t>(state) * cfg.planes];
        if (!memoValid[state]) {
            for (unsigned p = 0; p < cfg.planes; ++p)
                rows[p] =
                    static_cast<std::uint32_t>(rowOf(state, p));
            memoValid[state] = 1;
        }
        return rows;
    }
    for (unsigned p = 0; p < cfg.planes; ++p)
        rowScratch[p] = static_cast<std::uint32_t>(rowOf(state, p));
    return rowScratch.data();
}

double
QVStore::qRows(const std::uint32_t *rows, unsigned action) const
{
    double sum = 0.0;
    for (unsigned p = 0; p < cfg.planes; ++p)
        sum += entry(p, rows[p], action);
    return sum;
}

double
QVStore::q(std::uint32_t state, unsigned action) const
{
    return qRows(rowsFor(state), action);
}

void
QVStore::qAllActions(std::uint32_t state, double *out) const
{
    const std::uint32_t *rows = rowsFor(state);
    for (unsigned a = 0; a < cfg.actions; ++a)
        out[a] = 0.0;
    // Column-wise accumulation: each plane contributes one
    // contiguous action row. Per action the partials still add in
    // plane order p = 0..k-1 — exactly the order qRows() uses — so
    // every out[a] is bit-identical to q(state, a); only the loop
    // nest is transposed to make the inner loop a contiguous,
    // auto-vectorizable span.
    if (cfg.quantized) {
        for (unsigned p = 0; p < cfg.planes; ++p) {
            const std::int8_t *row =
                &fixedEntries[(static_cast<std::size_t>(p) *
                                   cfg.rows +
                               rows[p]) *
                              cfg.actions];
            for (unsigned a = 0; a < cfg.actions; ++a)
                out[a] +=
                    static_cast<double>(row[a]) / kFixedScale;
        }
    } else {
        for (unsigned p = 0; p < cfg.planes; ++p) {
            const double *row =
                &floatEntries[(static_cast<std::size_t>(p) *
                                   cfg.rows +
                               rows[p]) *
                              cfg.actions];
            for (unsigned a = 0; a < cfg.actions; ++a)
                out[a] += row[a];
        }
    }
}

void
QVStore::materializeRowsSoA(const std::uint32_t *states,
                            std::size_t n) const
{
    batchRows.resize(static_cast<std::size_t>(cfg.planes) * n);
    const unsigned half = (cfg.planes + 1) / 2;
    const std::uint32_t row_mask = cfg.rows - 1;
    const auto count = static_cast<unsigned>(n);
    for (unsigned p = 0; p < half; ++p) {
        simd::keyedHashMaskBatch(backend, states, count, p,
                                 row_mask, &batchRows[p * n]);
    }
    if (half == cfg.planes)
        return;
    // Coarse planes differ only in the tiling offset's parity, so
    // both coarsened state streams are staged once and each plane
    // hashes its parity's lane with its own key — same per-state
    // math as rowOf(), batched.
    coarseScratch.resize(2 * n);
    const std::uint32_t field_mask = (1u << cfg.bitsPerField) - 1;
    const std::uint32_t max_level = field_mask;
    for (std::size_t i = 0; i < n; ++i) {
        std::uint32_t c0 = 0;
        std::uint32_t c1 = 0;
        for (unsigned f = 0; f < cfg.stateFields; ++f) {
            std::uint32_t level =
                (states[i] >> (f * cfg.bitsPerField)) & field_mask;
            c0 = (c0 << (cfg.bitsPerField - 1)) | (level >> 1);
            std::uint32_t shifted =
                std::min(max_level, level + 1);
            c1 = (c1 << (cfg.bitsPerField - 1)) | (shifted >> 1);
        }
        coarseScratch[i] = c0;
        coarseScratch[n + i] = c1;
    }
    for (unsigned p = half; p < cfg.planes; ++p) {
        unsigned offset = (p - half) & 1;
        simd::keyedHashMaskBatch(backend, &coarseScratch[offset * n],
                                 count, 64 + p, row_mask,
                                 &batchRows[p * n]);
    }
}

void
QVStore::qRowsBatch(const std::uint32_t *states, std::size_t n,
                    std::uint32_t *rows_out) const
{
    if (backend != simd::Backend::kScalar && vectorRows && n != 0) {
        materializeRowsSoA(states, n);
        // Transpose the plane-major staging into the documented
        // n x planes layout.
        for (std::size_t i = 0; i < n; ++i) {
            std::uint32_t *dst = rows_out + i * cfg.planes;
            for (unsigned p = 0; p < cfg.planes; ++p)
                dst[p] = batchRows[p * n + i];
        }
        return;
    }
    for (std::size_t i = 0; i < n; ++i) {
        // Copied out of the memo/scratch row: the scratch pointer
        // is invalidated by the next rowsFor() call.
        const std::uint32_t *rows = rowsFor(states[i]);
        std::uint32_t *dst = rows_out + i * cfg.planes;
        for (unsigned p = 0; p < cfg.planes; ++p)
            dst[p] = rows[p];
    }
}

void
QVStore::lookupBatch(const std::uint32_t *states, std::size_t n,
                     double *q_out) const
{
    if (backend != simd::Backend::kScalar && vectorRows && n != 0) {
        // Gather-free wide path: rows land plane-major, then each
        // plane accumulates its contiguous action rows into q_out
        // in plane order p = 0..k-1 — the same one-add-per-element
        // order qAllActions() uses, so every q_out value is
        // bit-identical to the scalar path.
        materializeRowsSoA(states, n);
        std::fill(q_out, q_out + n * cfg.actions, 0.0);
        const auto count = static_cast<unsigned>(n);
        for (unsigned p = 0; p < cfg.planes; ++p) {
            const std::uint32_t *rows = &batchRows[p * n];
            const std::size_t plane_base =
                static_cast<std::size_t>(p) * cfg.rows *
                cfg.actions;
            if (cfg.quantized) {
                simd::accumulateRowsI8(
                    backend, &fixedEntries[plane_base], rows, count,
                    cfg.actions, kFixedScale, q_out);
            } else {
                simd::accumulateRowsF64(
                    backend, &floatEntries[plane_base], rows, count,
                    cfg.actions, q_out);
            }
        }
        return;
    }
    for (std::size_t i = 0; i < n; ++i)
        qAllActions(states[i], q_out + i * cfg.actions);
}

unsigned
QVStore::argmax(std::uint32_t state) const
{
    // Scan from the highest action index down so that exact ties
    // (fresh optimistic entries) resolve to the most speculative
    // action — the agent starts from the Naive prior and learns to
    // pull back, rather than starting dark.
    if (cfg.actions <= kMaxActionColumns) {
        double col[kMaxActionColumns];
        qAllActions(state, col);
        unsigned best = cfg.actions - 1;
        double best_q = col[best];
        for (unsigned a = cfg.actions - 1; a-- > 0;) {
            if (col[a] > best_q) {
                best_q = col[a];
                best = a;
            }
        }
        return best;
    }
    const std::uint32_t *rows = rowsFor(state);
    unsigned best = cfg.actions - 1;
    double best_q = qRows(rows, best);
    for (unsigned a = cfg.actions - 1; a-- > 0;) {
        double v = qRows(rows, a);
        if (v > best_q) {
            best_q = v;
            best = a;
        }
    }
    return best;
}

double
QVStore::meanOfOthers(std::uint32_t state, unsigned excluded) const
{
    if (cfg.actions <= 1)
        return 0.0;
    const std::uint32_t *rows = rowsFor(state);
    double sum = 0.0;
    for (unsigned a = 0; a < cfg.actions; ++a) {
        if (a != excluded)
            sum += qRows(rows, a);
    }
    return sum / static_cast<double>(cfg.actions - 1);
}

double
QVStore::qSeparation(std::uint32_t state, unsigned action) const
{
    if (cfg.actions <= 1)
        return q(state, action);
    if (cfg.actions <= kMaxActionColumns) {
        double col[kMaxActionColumns];
        qAllActions(state, col);
        double sum = 0.0;
        for (unsigned a = 0; a < cfg.actions; ++a) {
            if (a != action)
                sum += col[a];
        }
        return col[action] -
               sum / static_cast<double>(cfg.actions - 1);
    }
    const std::uint32_t *rows = rowsFor(state);
    double q_a = qRows(rows, action);
    double sum = 0.0;
    for (unsigned a = 0; a < cfg.actions; ++a) {
        if (a != action)
            sum += qRows(rows, a);
    }
    return q_a - sum / static_cast<double>(cfg.actions - 1);
}

void
QVStore::update(std::uint32_t s, unsigned a, double reward,
                std::uint32_t s_next, unsigned a_next)
{
    // Extract q(s', a') before re-resolving rows for s: on the
    // scratch path the second rowsFor() invalidates the first.
    double q_next = qRows(rowsFor(s_next), a_next);
    const std::uint32_t *rows_s = rowsFor(s);
    double td_error =
        reward + cfg.gamma * q_next - qRows(rows_s, a);
    double per_plane = cfg.alpha * td_error /
                       static_cast<double>(cfg.planes);
    for (unsigned p = 0; p < cfg.planes; ++p)
        addToEntry(p, rows_s[p], a, per_plane);
}

void
QVStore::updateBatch(const TrainTriple *triples, std::size_t n)
{
    if (n == 0)
        return;
    // Phase 1: resolve both states' plane rows for every triple in
    // one pass. Row hashing is pure — it reads only the row memo,
    // never the entries — so hoisting it out of the apply loop
    // cannot change what any apply observes. Copied out because the
    // scratch-path pointer is invalidated per rowsFor() call.
    trainRows.resize(n * 2 * cfg.planes);
    for (std::size_t i = 0; i < n; ++i) {
        const std::uint32_t *rs = rowsFor(triples[i].s);
        std::uint32_t *dst = &trainRows[2 * i * cfg.planes];
        for (unsigned p = 0; p < cfg.planes; ++p)
            dst[p] = rs[p];
        const std::uint32_t *rn = rowsFor(triples[i].sNext);
        for (unsigned p = 0; p < cfg.planes; ++p)
            dst[cfg.planes + p] = rn[p];
    }
    // Phase 2: apply in the original order. Each iteration's entry
    // reads and writes — including the stochastic-rounding RNG
    // advance per quantized write — interleave exactly as n
    // update() calls would, so the batch is bit-identical to the
    // incremental sequence.
    for (std::size_t i = 0; i < n; ++i) {
        const TrainTriple &t = triples[i];
        const std::uint32_t *rows_s = &trainRows[2 * i * cfg.planes];
        const std::uint32_t *rows_n = rows_s + cfg.planes;
        double q_next = qRows(rows_n, t.aNext);
        double td_error =
            t.reward + cfg.gamma * q_next - qRows(rows_s, t.a);
        double per_plane = cfg.alpha * td_error /
                           static_cast<double>(cfg.planes);
        for (unsigned p = 0; p < cfg.planes; ++p)
            addToEntry(p, rows_s[p], t.a, per_plane);
    }
}

void
QVStore::reset()
{
    roundState = cfg.roundingSeed ? cfg.roundingSeed : 1;
    std::size_t n = static_cast<std::size_t>(cfg.planes) * cfg.rows *
                    cfg.actions;
    double per_plane_init = cfg.initQ / static_cast<double>(cfg.planes);
    if (cfg.quantized) {
        fixedEntries.assign(
            n, static_cast<std::int8_t>(
                   std::lround(std::clamp(per_plane_init, kFixedMin,
                                          kFixedMax) *
                               kFixedScale)));
        floatEntries.clear();
    } else {
        floatEntries.assign(n, per_plane_init);
        fixedEntries.clear();
    }
}

void
QVStore::saveState(SnapshotWriter &w) const
{
    w.u32(cfg.planes);
    w.u32(cfg.rows);
    w.u32(cfg.actions);
    w.boolean(cfg.quantized);
    w.u64(roundState);
    if (cfg.quantized) {
        w.bytes(fixedEntries.data(), fixedEntries.size());
    } else {
        for (double v : floatEntries)
            w.f64(v);
    }
}

void
QVStore::restoreState(SnapshotReader &r)
{
    r.expectU32(cfg.planes, "QVStore plane count");
    r.expectU32(cfg.rows, "QVStore row count");
    r.expectU32(cfg.actions, "QVStore action count");
    bool quantized = r.boolean();
    if (quantized != cfg.quantized) {
        throw SnapshotError(r.currentSection(),
                            "QVStore storage mode mismatch (wrong "
                            "geometry)");
    }
    roundState = r.u64();
    if (cfg.quantized) {
        r.bytes(fixedEntries.data(), fixedEntries.size());
    } else {
        for (double &v : floatEntries)
            v = r.f64();
    }
}

} // namespace athena

/**
 * @file
 * AthenaAgent: the paper's contribution — a SARSA agent that
 * coordinates the off-chip predictor with the prefetcher(s) and
 * simultaneously drives prefetcher aggressiveness from its own
 * Q-values (sections 4 and 5).
 *
 * Per epoch (2 K retired instructions, Table 3):
 *  1. encode the packed feature state from the epoch's telemetry,
 *  2. compute the composite reward for the *previous* action
 *     (R = R_corr - R_uncorr, section 4.3),
 *  3. SARSA-update QVStore[s_{t-1}, a_{t-1}] toward
 *     r + gamma * Q(s_t, a_t),
 *  4. epsilon-greedily select the next action among
 *     {none, OCP-only, PF-only, both},
 *  5. if the action enables prefetching, derive the prefetch degree
 *     from the Q-value separation (Algorithm 1):
 *         dQ = Q(a*) - mean(others);  r = min(1, dQ / tau);
 *         degree = floor(r * dmax).
 *
 * Ablation switches reproduce every bar of Fig. 18: stateless mode,
 * IPC-only reward, feature-subset selection, and disabling the
 * uncorrelated reward component.
 */

#ifndef ATHENA_ATHENA_AGENT_HH
#define ATHENA_ATHENA_AGENT_HH

#include <array>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "athena/features.hh"
#include "athena/qvstore.hh"
#include "athena/reward.hh"
#include "common/rng.hh"
#include "coord/policy.hh"

namespace athena
{

/** Athena configuration (Table 3 defaults). */
struct AthenaConfig
{
    QVStoreParams qv;                     ///< alpha=0.6, gamma=0.6.
    RewardWeights rewardWeights;          ///< Table 3 lambdas.
    std::vector<StateFeature> features = defaultFeatureSet();
    bool useUncorrelatedReward = true;
    /** Ablation: ignore state (single QVStore row) — the
     *  "Stateless Athena" bar of Fig. 18. */
    bool stateless = false;
    /** Ablation: IPC-change-only reward (prior work's signal). */
    bool ipcRewardOnly = false;
    /**
     * Exploration rate epsilon. Table 3 reports 0.0 (pure greedy
     * with optimistic initialization) over a 500 M-instruction
     * horizon where state churn alone re-probes every action; at
     * this repository's default horizons (~10^6 instructions) a
     * small epsilon substitutes for that re-probing. Set to 0.0 to
     * reproduce the paper's exact configuration on long runs.
     */
    double epsilon = 0.02;
    /** Q-separation normalizer tau (Table 3: 0.12). */
    double tau = 0.12;
    /** Coordinate two prefetchers instead of PF-group + OCP
     *  (prefetcher-only management, section 7.6). */
    bool prefetcherOnlyMode = false;
    /**
     * Buffer SARSA triples across consecutive exploratory epochs
     * and apply them in one QVStore::updateBatch pass (PR 9
     * inference plane). Off = apply each triple as it is produced
     * (a batch of one) — the pre-batching scalar behavior. Both
     * modes are bit-identical (updateBatch replays triples in
     * exact scalar order), so this is excluded from the config
     * key; the simulator slaves it to the plane knob so the bench
     * A/B compares the whole plane against the faithful scalar
     * engine.
     */
    bool batchedTraining = true;
    std::uint64_t seed = 42;
};

class AthenaAgent : public CoordinationPolicy
{
  public:
    explicit AthenaAgent(const AthenaConfig &config = AthenaConfig{});

    const char *name() const override { return "athena"; }

    CoordDecision onEpochEnd(const EpochStats &stats) override;

    void reset() override;

    /** Snapshot contract: the QVStore, RNG, previous-epoch SARSA
     *  context, the action histogram, and any training triples
     *  still buffered for the next batched update pass. */
    void saveState(SnapshotWriter &w) const override;
    void restoreState(SnapshotReader &r) override;

    /**
     * Table 4 accounting: QVStore (2 KB) + two 4096-bit Bloom
     * trackers (0.5 KB each) = 3 KB.
     */
    std::size_t
    storageBits() const override
    {
        return qvstore.storageBits() + 2 * 4096;
    }

    // --- introspection ----------------------------------------
    /** Per-action selection counts (Fig. 17 case study). */
    std::array<std::uint64_t, 4>
    actionHistogram() const override
    {
        return actionCounts;
    }
    const QVStore &qv() const { return qvstore; }
    const AthenaConfig &config() const { return cfg; }
    /** Last computed reward (tests). */
    double lastReward() const { return lastRewardValue; }

    /** Decision corresponding to an action index. */
    CoordDecision decisionFor(unsigned action, double degree_scale)
        const;

  private:
    /** Degree scale via Algorithm 1 for the chosen action. */
    double degreeScaleFor(std::uint32_t state, unsigned action) const;

    /** Apply the buffered SARSA triples in one batched QVStore
     *  pass. Called before every Q read, so deferring the updates
     *  is unobservable: reads and updates interleave exactly as
     *  the incremental path would. */
    void flushTraining();

    AthenaConfig cfg;
    StateEncoder encoder;
    QVStore qvstore;
    CompositeReward compositeReward;
    IpcReward ipcReward;
    Rng rng;

    /**
     * Per-epoch training buffer: each epoch close queues its SARSA
     * triple here; the buffer drains through QVStore::updateBatch
     * at the next Q read (immediately, on the greedy path — or
     * after a run of exploratory epochs, whose decisions read no
     * Q-values, as one multi-triple batch).
     */
    std::vector<QVStore::TrainTriple> pendingTrain;

    bool havePrev = false;
    EpochStats prevStats;
    std::uint32_t prevState = 0;
    unsigned prevAction = 0;
    double lastRewardValue = 0.0;

    std::array<std::uint64_t, 4> actionCounts{};
};

} // namespace athena

#endif // ATHENA_ATHENA_AGENT_HH

/**
 * @file
 * Bloom filter implementation.
 */

#include "athena/bloom.hh"

#include <cmath>
#include <cstdint>

#include "common/hashing.hh"
#include "snapshot/snapshot.hh"

namespace athena
{

BloomFilter::BloomFilter(unsigned bits, unsigned hashes)
    : bitCount(bits), hashCount(hashes), words((bits + 63) / 64, 0)
{
    if (bits && (bits & (bits - 1)) == 0)
        bitMask = bits - 1; // pow2: modulo is a mask (hot path)
}

std::uint64_t
BloomFilter::bitOf(std::uint64_t key, unsigned h) const
{
    std::uint64_t hash = keyedHash(key, h);
    return bitMask ? (hash & bitMask) : hash % bitCount;
}

void
BloomFilter::insert(std::uint64_t key)
{
    for (unsigned h = 0; h < hashCount; ++h) {
        std::uint64_t bit = bitOf(key, h);
        words[bit >> 6] |= 1ull << (bit & 63);
    }
    ++inserted;
}

bool
BloomFilter::mayContain(std::uint64_t key) const
{
    for (unsigned h = 0; h < hashCount; ++h) {
        std::uint64_t bit = bitOf(key, h);
        if (!(words[bit >> 6] & (1ull << (bit & 63))))
            return false;
    }
    return true;
}

void
BloomFilter::clear()
{
    for (auto &w : words)
        w = 0;
    inserted = 0;
}

void
BloomFilter::saveState(SnapshotWriter &w) const
{
    w.u64(words.size());
    w.u64(inserted);
    for (std::uint64_t word : words)
        w.u64(word);
}

void
BloomFilter::restoreState(SnapshotReader &r)
{
    r.expectU64(words.size(), "bloom filter word count");
    inserted = r.u64();
    for (std::uint64_t &word : words)
        word = r.u64();
}

double
BloomFilter::falsePositiveRate(std::uint64_t n) const
{
    double k = hashCount;
    double m = bitCount;
    double p_bit_set =
        1.0 - std::exp(-k * static_cast<double>(n) / m);
    return std::pow(p_bit_set, k);
}

} // namespace athena

/**
 * @file
 * Composite reward implementation.
 */

#include "athena/reward.hh"

#include <algorithm>
#include <cstdint>

namespace athena
{

double
CompositeReward::scaledDelta(std::uint64_t prev_value,
                             std::uint64_t prev_instr,
                             std::uint64_t cur_value,
                             std::uint64_t cur_instr, double ref)
{
    if (prev_instr == 0 || cur_instr == 0 || ref <= 0.0)
        return 0.0;
    double prev_ki = static_cast<double>(prev_value) * 1000.0 /
                     static_cast<double>(prev_instr);
    double cur_ki = static_cast<double>(cur_value) * 1000.0 /
                    static_cast<double>(cur_instr);
    return std::clamp((prev_ki - cur_ki) / ref, -2.0, 2.0);
}

double
CompositeReward::correlated(const EpochStats &prev,
                            const EpochStats &cur) const
{
    double r = 0.0;
    r += w.lambdaCycle *
         scaledDelta(prev.cycles, prev.instructions, cur.cycles,
                     cur.instructions, scales.cyclesPerKi);
    r += w.lambdaLlcMiss *
         scaledDelta(prev.llcMisses, prev.instructions,
                     cur.llcMisses, cur.instructions,
                     scales.llcMissesPerKi);
    r += w.lambdaLlcMissLatency *
         scaledDelta(prev.llcMissLatency, prev.instructions,
                     cur.llcMissLatency, cur.instructions,
                     scales.llcMissLatencyPerKi);
    return r;
}

double
CompositeReward::uncorrelated(const EpochStats &prev,
                              const EpochStats &cur) const
{
    double r = 0.0;
    r += w.lambdaLoad *
         scaledDelta(prev.loads, prev.instructions, cur.loads,
                     cur.instructions, scales.loadsPerKi);
    r += w.lambdaMispredBranch *
         scaledDelta(prev.branchMispredicts, prev.instructions,
                     cur.branchMispredicts, cur.instructions,
                     scales.mispredictsPerKi);
    return r;
}

double
CompositeReward::compute(const EpochStats &prev,
                         const EpochStats &cur) const
{
    double r = correlated(prev, cur);
    if (useUncorrelated)
        r -= uncorrelated(prev, cur);
    return r;
}

} // namespace athena

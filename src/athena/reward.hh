/**
 * @file
 * Athena's composite reward framework (section 4.3).
 *
 * The key idea of the paper: a change in IPC conflates (a) the
 * effect of the agent's coordination actions with (b) inherent
 * workload phase behaviour. The composite reward separates them:
 *
 *   R_t = R_corr_t - R_uncorr_t
 *   R_corr_t   = sum_i lambda_i * dM_corr_i   (cycles, LLC misses,
 *                                              LLC miss latency)
 *   R_uncorr_t = sum_j lambda_j * dM_uncorr_j (loads, mispredicted
 *                                              branches)
 *
 * Each delta is the per-kilo-instruction improvement of the metric
 * between consecutive epochs (previous minus current, so a drop in
 * cycles is positive), divided by a fixed reference magnitude that
 * makes the terms commensurate (a metric's typical per-KI scale).
 * Normalizing each metric by its own epoch-to-epoch value instead
 * would let a numerically tiny but *relatively* noisy metric (a
 * handful of mispredicted branches) drown the cycle signal — the
 * reference scales keep the Table 3 weights meaningful.
 *
 * Table 3 weights: lambda_cycle = 1.6, lambda_LLCm = 0,
 * lambda_LLCt = 0, lambda_load = 0.6, lambda_MBr = 1.0.
 */

#ifndef ATHENA_ATHENA_REWARD_HH
#define ATHENA_ATHENA_REWARD_HH

#include <algorithm>
#include <cstdint>

#include "coord/policy.hh"

namespace athena
{

/** Reward weights (Table 2 / Table 3). */
struct RewardWeights
{
    double lambdaCycle = 1.6;
    double lambdaLlcMiss = 0.0;
    double lambdaLlcMissLatency = 0.0;
    double lambdaLoad = 0.6;
    double lambdaMispredBranch = 1.0;
};

/** Per-KI reference magnitudes used to normalize metric deltas. */
struct RewardScales
{
    double cyclesPerKi = 2000.0;
    double llcMissesPerKi = 20.0;
    double llcMissLatencyPerKi = 5000.0;
    double loadsPerKi = 300.0;
    double mispredictsPerKi = 20.0;
};

class CompositeReward
{
  public:
    explicit CompositeReward(const RewardWeights &weights =
                                 RewardWeights{},
                             bool use_uncorrelated = true,
                             const RewardScales &scales =
                                 RewardScales{})
        : w(weights), scales(scales),
          useUncorrelated(use_uncorrelated)
    {}

    /**
     * Normalized improvement of a metric between epochs: the
     * per-KI delta (prev - cur), divided by @p ref. Clamped to
     * [-2, 2] so one pathological epoch cannot swamp the Q-values.
     */
    static double scaledDelta(std::uint64_t prev_value,
                              std::uint64_t prev_instr,
                              std::uint64_t cur_value,
                              std::uint64_t cur_instr, double ref);

    /** Correlated component R_corr (Eq. 3). */
    double correlated(const EpochStats &prev,
                      const EpochStats &cur) const;

    /** Uncorrelated component R_uncorr (Eq. 4). */
    double uncorrelated(const EpochStats &prev,
                        const EpochStats &cur) const;

    /** Overall reward R = R_corr - R_uncorr (Eq. 2). */
    double compute(const EpochStats &prev, const EpochStats &cur) const;

    const RewardWeights &weights() const { return w; }
    bool usesUncorrelated() const { return useUncorrelated; }

  private:
    RewardWeights w;
    RewardScales scales;
    /** Fig. 18 ablation: drop the uncorrelated component. */
    bool useUncorrelated;
};

/**
 * IPC-only reward used by prior RL controllers [30, 71, 85] — the
 * strawman the composite framework improves on (Fig. 18's
 * "Stateless Athena" starts from this).
 */
class IpcReward
{
  public:
    double
    compute(const EpochStats &prev, const EpochStats &cur) const
    {
        double prev_ipc = prev.ipc();
        double cur_ipc = cur.ipc();
        double denom = std::max(prev_ipc, cur_ipc);
        return denom <= 0.0 ? 0.0 : (cur_ipc - prev_ipc) / denom;
    }
};

} // namespace athena

#endif // ATHENA_ATHENA_REWARD_HH

/**
 * @file
 * Bloom filter used by Athena's state-measurement hardware
 * (section 5.2): one 4096-bit, 2-hash filter tracks issued prefetch
 * addresses (accuracy), another tracks prefetch-evicted LLC victims
 * (pollution). Both are cleared at every epoch boundary.
 */

#ifndef ATHENA_ATHENA_BLOOM_HH
#define ATHENA_ATHENA_BLOOM_HH

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/types.hh"

namespace athena
{

class SnapshotReader;
class SnapshotWriter;

class BloomFilter
{
  public:
    /**
     * @param bits   filter size in bits (power of two; 4096 in
     *               Table 4)
     * @param hashes number of hash functions (2 in Table 4)
     */
    explicit BloomFilter(unsigned bits = 4096, unsigned hashes = 2);

    /** Insert a key. */
    void insert(std::uint64_t key);

    /** Membership test (may report false positives, never false
     *  negatives). */
    bool mayContain(std::uint64_t key) const;

    /** Clear all bits (epoch boundary). */
    void clear();

    /** Number of insertions since the last clear. */
    std::uint64_t insertions() const { return inserted; }

    /** Storage in bits (Table 4 accounting). */
    std::size_t storageBits() const { return bitCount; }

    /**
     * Theoretical false-positive rate for @p n insertions with the
     * current geometry (used by the Table 4 sizing test).
     */
    double falsePositiveRate(std::uint64_t n) const;

    /** Snapshot contract: bit words + insertion count. */
    void saveState(SnapshotWriter &w) const;
    void restoreState(SnapshotReader &r);

  private:
    /** bit index for hash h of key (mask when bits is pow2). */
    std::uint64_t bitOf(std::uint64_t key, unsigned h) const;

    unsigned bitCount;
    unsigned hashCount;
    /** bitCount - 1 when bitCount is a power of two, else 0. */
    std::uint64_t bitMask = 0;
    std::vector<std::uint64_t> words;
    std::uint64_t inserted = 0;
};

} // namespace athena

#endif // ATHENA_ATHENA_BLOOM_HH

/**
 * @file
 * Out-of-order core timing model.
 *
 * A cycle-approximate Golden-Cove-like core (Table 5): 6-wide
 * dispatch/commit, 512-entry ROB occupancy limit, 17-cycle branch
 * misprediction redirect (driven by a real gshare predictor), and
 * MSHR-bounded memory-level parallelism. Loads flagged as dependent
 * on the previous load serialize, which is what gives pointer-chase
 * workloads their characteristic MLP of ~1.
 *
 * The model processes the trace in program order and computes a
 * completion cycle per instruction; commit is modelled through the
 * ROB-occupancy constraint (instruction i cannot dispatch before
 * instruction i - ROB_SIZE has retired).
 */

#ifndef ATHENA_CPU_CORE_MODEL_HH
#define ATHENA_CPU_CORE_MODEL_HH

#include <cstdint>
#include <vector>

#include "common/types.hh"
#include "cpu/branch_predictor.hh"
#include "trace/workload.hh"

namespace athena
{

/**
 * Interface the core uses to access the memory hierarchy. The
 * concrete implementation (sim::MemorySystem) runs caches,
 * prefetchers, the off-chip predictor and the coordination policy.
 */
class MemoryInterface
{
  public:
    virtual ~MemoryInterface() = default;

    /**
     * Timed demand load.
     *
     * @param pc          load instruction PC
     * @param addr        effective byte address
     * @param issue_cycle cycle the load issues from the core
     * @param[out] l1_miss true if the access missed the L1D
     * @return absolute cycle at which the load's data is available
     */
    virtual Cycle load(std::uint64_t pc, Addr addr, Cycle issue_cycle,
                       bool &l1_miss) = 0;

    /**
     * Demand store (write-allocate). Off the critical path; only
     * traffic and cache state are modelled.
     */
    virtual void store(std::uint64_t pc, Addr addr,
                       Cycle issue_cycle) = 0;
};

/** Core configuration (Table 5). */
struct CoreParams
{
    unsigned width = 6;             ///< Fetch/dispatch/commit width.
    unsigned robSize = 512;
    unsigned mispredictPenalty = 17;
    unsigned l1Mshrs = 16;          ///< Bound on outstanding L1 misses.
    unsigned aluLatency = 1;
};

/** Cumulative core counters (sampled by the epoch logic). */
struct CoreCounters
{
    std::uint64_t instructions = 0;
    std::uint64_t loads = 0;
    std::uint64_t stores = 0;
    std::uint64_t branches = 0;
    std::uint64_t branchMispredicts = 0;
};

/**
 * The core model. Pull one instruction at a time from the workload
 * generator via step().
 */
class CoreModel
{
  public:
    CoreModel(const CoreParams &params, WorkloadGenerator &workload,
              MemoryInterface &memory);

    /** Execute one instruction; returns its completion cycle. */
    Cycle step();

    /** Committed-frontier time: max completion cycle seen so far. */
    Cycle now() const { return frontier; }

    const CoreCounters &counters() const { return stats; }

    /** Retired instruction count. */
    std::uint64_t retired() const { return stats.instructions; }

    /** IPC over the whole run so far. */
    double ipc() const
    {
        return frontier == 0
                   ? 0.0
                   : static_cast<double>(stats.instructions) /
                         static_cast<double>(frontier);
    }

    void reset();

  private:
    /** Retire the ROB head and return the dispatch-unblock cycle. */
    Cycle retireHead();

    CoreParams cfg;
    WorkloadGenerator &workload;
    MemoryInterface &memory;
    BranchPredictor branchPredictor;

    Cycle dispatchCycle = 0;
    unsigned dispatchSlots = 0;

    /**
     * ROB: completion cycles in program order, as a fixed-capacity
     * ring (capacity robSize; occupancy never exceeds it because
     * step() retires the head before dispatching into a full
     * window). A deque here cost segment bookkeeping on every
     * instruction of every simulation.
     */
    std::vector<Cycle> rob;
    unsigned robHead = 0;  ///< Index of the oldest entry.
    unsigned robCount = 0; ///< Current occupancy.
    Cycle lastRetireCycle = 0;
    unsigned retireSlots = 0;

    /** Pop the oldest ROB entry. */
    Cycle
    robPopFront()
    {
        Cycle v = rob[robHead];
        robHead = robHead + 1 == rob.size()
                      ? 0
                      : robHead + 1;
        --robCount;
        return v;
    }

    /** Append to the ROB (capacity guaranteed by the caller). */
    void
    robPushBack(Cycle v)
    {
        std::size_t tail = robHead + robCount;
        if (tail >= rob.size())
            tail -= rob.size();
        rob[tail] = v;
        ++robCount;
    }

    /**
     * Outstanding L1-miss completions (MSHR occupancy). A small
     * unsorted array: the model only ever needs "drain everything
     * <= issue" and "extract the minimum when full", both linear
     * over at most l1Mshrs (16) entries — cheaper than heap
     * maintenance on the per-load path, with identical semantics
     * (the structure is a multiset; removal order is unobservable).
     */
    std::vector<Cycle> outstandingMisses;

    Cycle prevLoadComplete = 0;
    Cycle frontier = 0;

    CoreCounters stats;
};

} // namespace athena

#endif // ATHENA_CPU_CORE_MODEL_HH

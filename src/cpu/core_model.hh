/**
 * @file
 * Out-of-order core timing model.
 *
 * A cycle-approximate Golden-Cove-like core (Table 5): 6-wide
 * dispatch/commit, 512-entry ROB occupancy limit, 17-cycle branch
 * misprediction redirect (driven by a real gshare predictor), and
 * MSHR-bounded memory-level parallelism. Loads flagged as dependent
 * on the previous load serialize, which is what gives pointer-chase
 * workloads their characteristic MLP of ~1.
 *
 * The model processes the trace in program order and computes a
 * completion cycle per instruction; commit is modelled through the
 * ROB-occupancy constraint (instruction i cannot dispatch before
 * instruction i - ROB_SIZE has retired).
 *
 * Stepping is batched: records are pulled from the workload
 * generator a few hundred at a time (WorkloadGenerator::nextBatch)
 * into a contiguous buffer, and the ROB ring and MSHR slots live in
 * one contiguous arena, so the per-instruction loop touches three
 * flat arrays instead of bouncing between objects. step() executes
 * one instruction from the buffer (the multi-core interleaving
 * path); stepN() drains whole buffer spans in a tight loop (the
 * single-core path). Both orderings are bit-identical.
 *
 * Streams may be finite: a short nextBatch() return is the
 * generator's end-of-stream signal (never a refill hiccup — see the
 * WorkloadGenerator contract), after which the core executes the
 * records it already holds and enters a terminal retired-all state
 * (finished()). Every fetched instruction's completion is already
 * folded into now() and counters() at that point — the model
 * computes completion cycles at dispatch, so there is no separate
 * in-flight state left to drain — and further step()/stepN() calls
 * are no-ops.
 */

#ifndef ATHENA_CPU_CORE_MODEL_HH
#define ATHENA_CPU_CORE_MODEL_HH

#include <cstdint>
#include <vector>

#include "common/types.hh"
#include "cpu/branch_predictor.hh"
#include "trace/workload.hh"

namespace athena
{

class SnapshotReader;
class SnapshotWriter;

/**
 * Interface the core uses to access the memory hierarchy. The
 * concrete implementation (sim::MemorySystem) runs caches,
 * prefetchers, the off-chip predictor and the coordination policy.
 */
class MemoryInterface
{
  public:
    virtual ~MemoryInterface() = default;

    /**
     * Timed demand load.
     *
     * @param pc          load instruction PC
     * @param addr        effective byte address
     * @param issue_cycle cycle the load issues from the core
     * @param[out] l1_miss true if the access missed the L1D
     * @return absolute cycle at which the load's data is available
     */
    virtual Cycle load(std::uint64_t pc, Addr addr, Cycle issue_cycle,
                       bool &l1_miss) = 0;

    /**
     * Demand store (write-allocate). Off the critical path; only
     * traffic and cache state are modelled.
     */
    virtual void store(std::uint64_t pc, Addr addr,
                       Cycle issue_cycle) = 0;
};

/** Core configuration (Table 5). */
struct CoreParams
{
    unsigned width = 6;             ///< Fetch/dispatch/commit width.
    unsigned robSize = 512;
    unsigned mispredictPenalty = 17;
    unsigned l1Mshrs = 16;          ///< Bound on outstanding L1 misses.
    unsigned aluLatency = 1;
};

/** Cumulative core counters (sampled by the epoch logic). */
struct CoreCounters
{
    std::uint64_t instructions = 0;
    std::uint64_t loads = 0;
    std::uint64_t stores = 0;
    std::uint64_t branches = 0;
    std::uint64_t branchMispredicts = 0;
};

/**
 * The core model. Instructions come from the workload generator in
 * batches; execute them one at a time via step() or in bulk via
 * stepN().
 */
class CoreModel
{
  public:
    CoreModel(const CoreParams &params, WorkloadGenerator &workload,
              MemoryInterface &memory);

    // Not copyable: robArr/mshrArr point into the member arena, so
    // a copy's cursors would alias the source's allocation.
    CoreModel(const CoreModel &) = delete;
    CoreModel &operator=(const CoreModel &) = delete;

    /**
     * Execute one instruction; returns its completion cycle. On an
     * exhausted stream (finished()) this is a no-op returning the
     * current frontier.
     */
    Cycle step();

    /**
     * Execute up to @p n instructions in buffer-sized spans and
     * return the count executed. Identical semantics to calling
     * step() @p n times, without the per-instruction call and
     * refill checks; the return is short only when the workload
     * stream ended (after which finished() is true).
     */
    std::uint64_t stepN(std::uint64_t n);

    /**
     * Terminal retired-all state: the workload stream ended and
     * every record it produced has executed. now() and counters()
     * are final. Never true for infinite (synthetic) streams.
     */
    bool finished() const
    {
        return streamDone && batchPos == batchLen;
    }

    /** Committed-frontier time: max completion cycle seen so far. */
    Cycle now() const { return frontier; }

    const CoreCounters &counters() const { return stats; }

    /** Retired instruction count. */
    std::uint64_t retired() const { return stats.instructions; }

    /** Current ROB occupancy (invariant: <= params().robSize). */
    unsigned robOccupancy() const { return robCount; }

    /** Workload records pulled per nextBatch() refill (~8 KB). */
    static constexpr unsigned kBatchCapacity = 256;

    /**
     * Monotone count of record-buffer refills — the change key the
     * batched inference collectors watch: a new value means a new
     * window of records is available through windowRecords(). Not
     * serialized (a restored core restarts from 0; collectors key
     * off inequality, so they re-collect on first use either way).
     */
    std::uint64_t refillSequence() const { return refills; }

    /**
     * The current record window: windowRecords()[windowBase()
     * .. windowLen()) are the live records of the current buffer —
     * pending or mid-span; earlier positions have executed (and
     * after a snapshot restore were never materialized). Stable
     * until refillSequence() changes.
     */
    const TraceRecord *windowRecords() const { return batchBuf.data(); }
    unsigned windowBase() const { return batchBase; }
    unsigned windowLen() const { return batchLen; }

    /** IPC over the whole run so far. */
    double ipc() const
    {
        return frontier == 0
                   ? 0.0
                   : static_cast<double>(stats.instructions) /
                         static_cast<double>(frontier);
    }

    void reset();

    /**
     * Snapshot contract: geometry guard (robSize, l1Mshrs), the
     * pipeline cursors, the ROB/MSHR arena, the buffered (not yet
     * executed) trace records, the end-of-stream latch, counters,
     * and the nested branch predictor. The workload generator's
     * own cursor state is serialized separately by the simulator.
     */
    void saveState(SnapshotWriter &w) const;
    void restoreState(SnapshotReader &r);

  private:
    /**
     * The register-resident slice of the core state (dispatch,
     * retire, ring and MSHR cursors), loaded before a batch span
     * and stored back after so the kernel is not forced to spill
     * members around every opaque MemoryInterface call.
     */
    struct HotState;

    HotState loadHot() const;
    void storeHot(const HotState &h);

    /** Publish counters + frontier before a MemoryInterface call
     *  (the epoch logic reads them from inside doLoad/doStore). */
    void publishObservable(const HotState &h);

    /** Execute one trace record (the per-instruction kernel). */
    Cycle execute(const TraceRecord &rec, HotState &h);

    /**
     * Pull the next record batch from the workload generator.
     * Returns false when the stream is exhausted and no records
     * were produced (a short, non-empty batch still returns true;
     * exhaustion is latched so the generator is never re-entered
     * past its end).
     */
    bool refillBatch();

    CoreParams cfg;
    WorkloadGenerator &workload;
    MemoryInterface &memory;
    BranchPredictor branchPredictor;

    Cycle dispatchCycle = 0;
    unsigned dispatchSlots = 0;

    /**
     * SoA arena backing the two per-instruction cycle arrays:
     *   [0, robSize)                    ROB ring
     *   [robSize, robSize + mshrs + 1)  MSHR completion slots
     * One allocation, one cache-friendly span, no per-structure
     * vector headers on the hot path.
     */
    std::vector<Cycle> arena;
    Cycle *robArr = nullptr;  ///< Ring of completion cycles.
    Cycle *mshrArr = nullptr; ///< Unsorted outstanding-miss slots.

    /**
     * ROB: completion cycles in program order, as a fixed-capacity
     * ring (capacity robSize; occupancy never exceeds it because
     * execute() retires the head before dispatching into a full
     * window).
     */
    unsigned robHead = 0;  ///< Index of the oldest entry.
    unsigned robCount = 0; ///< Current occupancy.
    Cycle lastRetireCycle = 0;
    unsigned retireSlots = 0;

    /**
     * Outstanding L1-miss completions (MSHR occupancy). A small
     * unsorted array: the model only ever needs "drain everything
     * <= issue" and "extract the minimum when full", both linear
     * over at most l1Mshrs (16) entries — cheaper than heap
     * maintenance on the per-load path, with identical semantics
     * (the structure is a multiset; removal order is unobservable).
     */
    unsigned mshrCount = 0;

    Cycle prevLoadComplete = 0;
    Cycle frontier = 0;

    /** Prefetched workload records (refilled via nextBatch). */
    std::vector<TraceRecord> batchBuf;
    unsigned batchPos = 0;
    unsigned batchLen = 0;
    /** Latched once nextBatch() returns short: end-of-stream. */
    bool streamDone = false;

    /** Refill count (see refillSequence()). */
    std::uint64_t refills = 0;
    /**
     * First live record of the current buffer: 0 after a refill;
     * the restored batchPos after a snapshot restore (positions
     * before it were executed pre-snapshot and never rematerialize).
     */
    unsigned batchBase = 0;

    CoreCounters stats;
};

} // namespace athena

#endif // ATHENA_CPU_CORE_MODEL_HH

/**
 * @file
 * Core timing model implementation.
 *
 * The per-instruction kernel runs against a HotState of plain
 * locals (dispatch/retire/ring/MSHR cursors, counters, frontier)
 * rather than members: the memory-hierarchy callback is an opaque
 * virtual call, so member state would be reloaded and spilled
 * around every load and store the trace executes. The externally
 * observable pieces — the counters and the completion frontier,
 * which the simulator's epoch logic reads *during* the memory
 * callback — are published to the members immediately before each
 * MemoryInterface call, which is exactly when the one-at-a-time
 * model's updates were last visible.
 */

#include "cpu/core_model.hh"

#include <algorithm>
#include <cassert>

#include "snapshot/snapshot.hh"

namespace athena
{

CoreModel::CoreModel(const CoreParams &params, WorkloadGenerator &wl,
                     MemoryInterface &mem)
    : cfg(params), workload(wl), memory(mem)
{
    // Zero-entry windows are meaningless (the full-window retire
    // and the MSHR-full stall would both underflow empty arrays);
    // clamp both to their 1-entry minimum.
    if (cfg.robSize == 0)
        cfg.robSize = 1;
    if (cfg.l1Mshrs == 0)
        cfg.l1Mshrs = 1;
    arena.assign(cfg.robSize + cfg.l1Mshrs + 1, 0);
    robArr = arena.data();
    mshrArr = arena.data() + cfg.robSize;
    batchBuf.resize(kBatchCapacity);
}

bool
CoreModel::refillBatch()
{
    if (streamDone)
        return false;
    batchPos = 0;
    batchBase = 0;
    ++refills;
    batchLen = static_cast<unsigned>(
        workload.nextBatch(batchBuf.data(), kBatchCapacity));
    // A short return is the end-of-stream signal (only legal there,
    // per the WorkloadGenerator contract); latch it so the
    // generator is never re-entered past its end.
    if (batchLen < kBatchCapacity)
        streamDone = true;
    return batchLen > 0;
}

/**
 * The register-resident slice of the core state. Loaded from the
 * members before a batch span, stored back after; the kernel
 * mutates only this and the SoA arrays, publishing the observable
 * slice to the members at MemoryInterface call boundaries.
 */
struct CoreModel::HotState
{
    Cycle dispatchCycle;
    unsigned dispatchSlots;
    unsigned robHead;
    unsigned robCount;
    Cycle lastRetireCycle;
    unsigned retireSlots;
    unsigned mshrCount;
    Cycle prevLoadComplete;
    Cycle frontier;
    CoreCounters stats;
};

CoreModel::HotState
CoreModel::loadHot() const
{
    return {dispatchCycle, dispatchSlots, robHead,
            robCount,      lastRetireCycle, retireSlots,
            mshrCount,     prevLoadComplete, frontier, stats};
}

void
CoreModel::storeHot(const HotState &h)
{
    dispatchCycle = h.dispatchCycle;
    dispatchSlots = h.dispatchSlots;
    robHead = h.robHead;
    robCount = h.robCount;
    lastRetireCycle = h.lastRetireCycle;
    retireSlots = h.retireSlots;
    mshrCount = h.mshrCount;
    prevLoadComplete = h.prevLoadComplete;
    frontier = h.frontier;
    stats = h.stats;
}

/**
 * Publish the externally observable slice (counters + frontier)
 * before a MemoryInterface call: the simulator's epoch logic reads
 * retired(), counters() and now() from *inside* doLoad/doStore, at
 * which point they must be exactly what the one-at-a-time model
 * would show. Store-only — the hot loop never reloads them.
 */
void
CoreModel::publishObservable(const HotState &h)
{
    stats = h.stats;
    frontier = h.frontier;
}

inline Cycle
CoreModel::execute(const TraceRecord &rec, HotState &h)
{
    // ROB occupancy: dispatching a new instruction requires the
    // oldest one to have retired once the window is full. At most
    // one head retires per dispatched instruction, so occupancy
    // never exceeds robSize (asserted below).
    if (h.robCount >= cfg.robSize) {
        // Retire the ROB head under the commit-width constraint.
        Cycle completion = robArr[h.robHead];
        h.robHead =
            h.robHead + 1 == cfg.robSize ? 0 : h.robHead + 1;
        --h.robCount;
        Cycle freed = std::max(completion, h.lastRetireCycle);
        if (freed == h.lastRetireCycle) {
            if (h.retireSlots >= cfg.width) {
                ++freed;
                h.retireSlots = 1;
            } else {
                ++h.retireSlots;
            }
        } else {
            h.retireSlots = 1;
        }
        h.lastRetireCycle = freed;
        if (freed > h.dispatchCycle) {
            h.dispatchCycle = freed;
            h.dispatchSlots = 0;
        }
    }

    // Dispatch-width constraint.
    if (h.dispatchSlots >= cfg.width) {
        ++h.dispatchCycle;
        h.dispatchSlots = 0;
    }
    ++h.dispatchSlots;
    Cycle disp = h.dispatchCycle;

    ++h.stats.instructions;

    Cycle completion = disp + cfg.aluLatency;
    switch (rec.kind) {
      case InstrKind::kAlu:
        break;
      case InstrKind::kBranch:
        {
            ++h.stats.branches;
            bool correct =
                branchPredictor.predictAndTrain(rec.pc, rec.taken);
            if (!correct) {
                ++h.stats.branchMispredicts;
                // Redirect: no further dispatch until the branch
                // resolves plus the refill penalty.
                Cycle resume = completion + cfg.mispredictPenalty;
                if (resume > h.dispatchCycle) {
                    h.dispatchCycle = resume;
                    h.dispatchSlots = 0;
                }
            }
            break;
        }
      case InstrKind::kStore:
        {
            ++h.stats.stores;
            publishObservable(h);
            memory.store(rec.pc, rec.addr, disp);
            break;
        }
      case InstrKind::kLoad:
        {
            ++h.stats.loads;
            publishObservable(h);
            Cycle issue = disp;
            if (rec.dependsOnPrevLoad)
                issue = std::max(issue, h.prevLoadComplete);

            // MSHR occupancy: drain completed misses, then stall
            // issue until a slot frees (the earliest completion)
            // if still full.
            for (unsigned k = 0; k < h.mshrCount;) {
                if (mshrArr[k] <= issue)
                    mshrArr[k] = mshrArr[--h.mshrCount];
                else
                    ++k;
            }
            if (h.mshrCount >= cfg.l1Mshrs) {
                unsigned m = 0;
                for (unsigned k = 1; k < h.mshrCount; ++k) {
                    if (mshrArr[k] < mshrArr[m])
                        m = k;
                }
                issue = mshrArr[m];
                mshrArr[m] = mshrArr[--h.mshrCount];
            }

            bool l1_miss = false;
            completion = memory.load(rec.pc, rec.addr, issue, l1_miss);
            if (l1_miss)
                mshrArr[h.mshrCount++] = completion;
            h.prevLoadComplete = completion;
            // A near-term consumer gates the front end on this
            // load's value: dependent work cannot dispatch until
            // the data arrives.
            if (rec.criticalConsumer && completion > h.dispatchCycle) {
                h.dispatchCycle = completion;
                h.dispatchSlots = 0;
            }
            break;
        }
    }

    // Append to the ROB ring (capacity guaranteed by the retire
    // above).
    unsigned tail = h.robHead + h.robCount;
    if (tail >= cfg.robSize)
        tail -= cfg.robSize;
    robArr[tail] = completion;
    ++h.robCount;
    assert(h.robCount <= cfg.robSize);
    if (completion > h.frontier)
        h.frontier = completion;
    return completion;
}

Cycle
CoreModel::step()
{
    if (batchPos == batchLen && !refillBatch())
        return frontier; // exhausted stream: terminal no-op
    HotState h = loadHot();
    Cycle completion = execute(batchBuf[batchPos++], h);
    storeHot(h);
    return completion;
}

std::uint64_t
CoreModel::stepN(std::uint64_t n)
{
    HotState h = loadHot();
    std::uint64_t remaining = n;
    while (remaining > 0) {
        if (batchPos == batchLen && !refillBatch())
            break; // exhausted stream: report the short count
        unsigned span = batchLen - batchPos;
        std::uint64_t take = remaining < span ? remaining : span;
        const TraceRecord *rec = batchBuf.data() + batchPos;
        // batchPos is committed before the span runs: the records
        // are already buffered, and the kernel never re-enters the
        // workload generator.
        batchPos += static_cast<unsigned>(take);
        remaining -= take;
        for (std::uint64_t i = 0; i < take; ++i)
            execute(rec[i], h);
    }
    storeHot(h);
    return n - remaining;
}

void
CoreModel::reset()
{
    workload.reset();
    branchPredictor.reset();
    dispatchCycle = 0;
    dispatchSlots = 0;
    robHead = 0;
    robCount = 0;
    lastRetireCycle = 0;
    retireSlots = 0;
    mshrCount = 0;
    prevLoadComplete = 0;
    frontier = 0;
    batchPos = 0;
    batchLen = 0;
    streamDone = false;
    refills = 0;
    batchBase = 0;
    stats = CoreCounters{};
}

void
CoreModel::saveState(SnapshotWriter &w) const
{
    w.u32(cfg.robSize);
    w.u32(cfg.l1Mshrs);
    w.u64(dispatchCycle);
    w.u32(dispatchSlots);
    w.u32(robHead);
    w.u32(robCount);
    w.u64(lastRetireCycle);
    w.u32(retireSlots);
    w.u32(mshrCount);
    w.u64(prevLoadComplete);
    w.u64(frontier);
    w.u64(stats.instructions);
    w.u64(stats.loads);
    w.u64(stats.stores);
    w.u64(stats.branches);
    w.u64(stats.branchMispredicts);
    for (Cycle c : arena)
        w.u64(c);
    w.u32(batchPos);
    w.u32(batchLen);
    w.boolean(streamDone);
    // Buffered records that have been pulled from the generator but
    // not yet executed: the generator's cursor is already past them,
    // so they must travel with the core.
    for (unsigned i = batchPos; i < batchLen; ++i) {
        const TraceRecord &rec = batchBuf[i];
        w.u64(rec.pc);
        w.u64(rec.addr);
        w.u8(static_cast<std::uint8_t>(rec.kind));
        w.boolean(rec.taken);
        w.boolean(rec.dependsOnPrevLoad);
        w.boolean(rec.criticalConsumer);
    }
    branchPredictor.saveState(w);
}

void
CoreModel::restoreState(SnapshotReader &r)
{
    r.expectU32(cfg.robSize, "core ROB size");
    r.expectU32(cfg.l1Mshrs, "core MSHR count");
    dispatchCycle = r.u64();
    dispatchSlots = r.u32();
    robHead = r.u32();
    robCount = r.u32();
    lastRetireCycle = r.u64();
    retireSlots = r.u32();
    mshrCount = r.u32();
    prevLoadComplete = r.u64();
    frontier = r.u64();
    stats.instructions = r.u64();
    stats.loads = r.u64();
    stats.stores = r.u64();
    stats.branches = r.u64();
    stats.branchMispredicts = r.u64();
    for (Cycle &c : arena)
        c = r.u64();
    batchPos = r.u32();
    batchLen = r.u32();
    if (batchLen > kBatchCapacity || batchPos > batchLen) {
        throw SnapshotError(r.currentSection(),
                            "core batch cursors out of range "
                            "(corrupted snapshot)");
    }
    streamDone = r.boolean();
    // Only [batchPos, batchLen) travels with the snapshot; earlier
    // positions never rematerialize, so the collectible window
    // starts at the restored cursor. The refill sequence restarts
    // at 0 — collectors key off inequality, not absolute values.
    batchBase = batchPos;
    refills = 0;
    for (unsigned i = batchPos; i < batchLen; ++i) {
        TraceRecord &rec = batchBuf[i];
        rec.pc = r.u64();
        rec.addr = r.u64();
        rec.kind = static_cast<InstrKind>(r.u8());
        rec.taken = r.boolean();
        rec.dependsOnPrevLoad = r.boolean();
        rec.criticalConsumer = r.boolean();
    }
    branchPredictor.restoreState(r);
}

} // namespace athena

/**
 * @file
 * Core timing model implementation.
 */

#include "cpu/core_model.hh"

#include <algorithm>

namespace athena
{

CoreModel::CoreModel(const CoreParams &params, WorkloadGenerator &wl,
                     MemoryInterface &mem)
    : cfg(params), workload(wl), memory(mem)
{
    rob.resize(cfg.robSize ? cfg.robSize : 1, 0);
    outstandingMisses.reserve(cfg.l1Mshrs + 1);
}

Cycle
CoreModel::retireHead()
{
    Cycle completion = robPopFront();
    Cycle t = std::max(completion, lastRetireCycle);
    if (t == lastRetireCycle) {
        if (retireSlots >= cfg.width) {
            ++t;
            retireSlots = 1;
        } else {
            ++retireSlots;
        }
    } else {
        retireSlots = 1;
    }
    lastRetireCycle = t;
    return t;
}

Cycle
CoreModel::step()
{
    // ROB occupancy: dispatching a new instruction requires the
    // oldest one to have retired once the window is full.
    if (robCount >= cfg.robSize) {
        Cycle freed = retireHead();
        if (freed > dispatchCycle) {
            dispatchCycle = freed;
            dispatchSlots = 0;
        }
    }

    // Dispatch-width constraint.
    if (dispatchSlots >= cfg.width) {
        ++dispatchCycle;
        dispatchSlots = 0;
    }
    ++dispatchSlots;
    Cycle disp = dispatchCycle;

    TraceRecord rec = workload.next();
    ++stats.instructions;

    Cycle completion = disp + cfg.aluLatency;
    switch (rec.kind) {
      case InstrKind::kAlu:
        break;
      case InstrKind::kBranch:
        {
            ++stats.branches;
            bool correct =
                branchPredictor.predictAndTrain(rec.pc, rec.taken);
            if (!correct) {
                ++stats.branchMispredicts;
                // Redirect: no further dispatch until the branch
                // resolves plus the refill penalty.
                Cycle resume = completion + cfg.mispredictPenalty;
                if (resume > dispatchCycle) {
                    dispatchCycle = resume;
                    dispatchSlots = 0;
                }
            }
            break;
        }
      case InstrKind::kStore:
        {
            ++stats.stores;
            memory.store(rec.pc, rec.addr, disp);
            break;
        }
      case InstrKind::kLoad:
        {
            ++stats.loads;
            Cycle issue = disp;
            if (rec.dependsOnPrevLoad)
                issue = std::max(issue, prevLoadComplete);

            // MSHR occupancy: drain completed misses, then stall
            // issue until a slot frees (the earliest completion)
            // if still full.
            for (std::size_t k = 0; k < outstandingMisses.size();) {
                if (outstandingMisses[k] <= issue) {
                    outstandingMisses[k] = outstandingMisses.back();
                    outstandingMisses.pop_back();
                } else {
                    ++k;
                }
            }
            if (outstandingMisses.size() >= cfg.l1Mshrs) {
                std::size_t m = 0;
                for (std::size_t k = 1;
                     k < outstandingMisses.size(); ++k) {
                    if (outstandingMisses[k] < outstandingMisses[m])
                        m = k;
                }
                issue = outstandingMisses[m];
                outstandingMisses[m] = outstandingMisses.back();
                outstandingMisses.pop_back();
            }

            bool l1_miss = false;
            completion = memory.load(rec.pc, rec.addr, issue, l1_miss);
            if (l1_miss)
                outstandingMisses.push_back(completion);
            prevLoadComplete = completion;
            // A near-term consumer gates the front end on this
            // load's value: dependent work cannot dispatch until
            // the data arrives.
            if (rec.criticalConsumer && completion > dispatchCycle) {
                dispatchCycle = completion;
                dispatchSlots = 0;
            }
            break;
        }
    }

    robPushBack(completion);
    frontier = std::max(frontier, completion);
    return completion;
}

void
CoreModel::reset()
{
    workload.reset();
    branchPredictor.reset();
    dispatchCycle = 0;
    dispatchSlots = 0;
    robHead = 0;
    robCount = 0;
    lastRetireCycle = 0;
    retireSlots = 0;
    outstandingMisses.clear();
    prevLoadComplete = 0;
    frontier = 0;
    stats = CoreCounters{};
}

} // namespace athena

/**
 * @file
 * gshare conditional branch predictor.
 *
 * Table 5 of the paper uses a perceptron predictor with a 17-cycle
 * misprediction penalty; a well-sized gshare reproduces the relevant
 * property for Athena's reward framework — the misprediction *rate
 * varies with workload phase*, which is exactly the uncorrelated
 * signal the composite reward subtracts out.
 */

#ifndef ATHENA_CPU_BRANCH_PREDICTOR_HH
#define ATHENA_CPU_BRANCH_PREDICTOR_HH

#include <cstdint>
#include <vector>

#include "common/sat_counter.hh"

namespace athena
{

class BranchPredictor
{
  public:
    /** @param table_bits log2 of the PHT size (default 16K entries). */
    explicit BranchPredictor(unsigned table_bits = 14);

    /**
     * Predict and immediately train on the actual outcome.
     * @return true if the prediction was correct.
     */
    bool predictAndTrain(std::uint64_t pc, bool taken);

    void reset();

    std::uint64_t statLookups = 0;
    std::uint64_t statMispredicts = 0;

  private:
    unsigned tableBits;
    std::uint64_t history = 0;
    std::vector<SatCounter<2>> table;
};

} // namespace athena

#endif // ATHENA_CPU_BRANCH_PREDICTOR_HH

/**
 * @file
 * gshare conditional branch predictor.
 *
 * Table 5 of the paper uses a perceptron predictor with a 17-cycle
 * misprediction penalty; a well-sized gshare reproduces the relevant
 * property for Athena's reward framework — the misprediction *rate
 * varies with workload phase*, which is exactly the uncorrelated
 * signal the composite reward subtracts out.
 *
 * The PHT is a contiguous byte array (one 2-bit counter per byte,
 * half the footprint of the previous 16-bit SatCounter layout) and
 * predictAndTrain() is header-inline: it sits on the per-branch
 * path of CoreModel's batched stepping loop, where a cross-TU call
 * per branch is measurable.
 */

#ifndef ATHENA_CPU_BRANCH_PREDICTOR_HH
#define ATHENA_CPU_BRANCH_PREDICTOR_HH

#include <cstdint>
#include <vector>

#include "common/hashing.hh"

namespace athena
{

class SnapshotReader;
class SnapshotWriter;

class BranchPredictor
{
  public:
    /** @param table_bits log2 of the PHT size (default 16K entries). */
    explicit BranchPredictor(unsigned table_bits = 14);

    /**
     * Predict and immediately train on the actual outcome.
     * @return true if the prediction was correct.
     *
     * Each entry is a 2-bit saturating counter in [0, 3], weakly
     * taken (2) at reset; taken() is the upper half, exactly the
     * SatCounter<2> semantics this byte encoding replaces.
     */
    bool
    predictAndTrain(std::uint64_t pc, bool taken)
    {
        std::uint64_t idx = (mix64(pc) ^ history) & mask;
        std::uint8_t v = table[idx];
        bool prediction = v >= 2;
        if (taken) {
            if (v < 3)
                table[idx] = v + 1;
        } else {
            if (v > 0)
                table[idx] = v - 1;
        }
        history = ((history << 1) | (taken ? 1 : 0)) & mask;
        ++statLookups;
        if (prediction != taken)
            ++statMispredicts;
        return prediction == taken;
    }

    void reset();

    /** Snapshot contract: PHT, global history and stats. */
    void saveState(SnapshotWriter &w) const;
    void restoreState(SnapshotReader &r);

    std::uint64_t statLookups = 0;
    std::uint64_t statMispredicts = 0;

  private:
    std::uint64_t mask;
    std::uint64_t history = 0;
    std::vector<std::uint8_t> table;
};

} // namespace athena

#endif // ATHENA_CPU_BRANCH_PREDICTOR_HH

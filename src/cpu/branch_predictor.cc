/**
 * @file
 * gshare implementation (cold paths; the per-branch hot path is
 * header-inline).
 */

#include "cpu/branch_predictor.hh"

#include <algorithm>
#include <cstdint>

namespace athena
{

namespace
{

/** Weakly taken: SatCounter<2>'s historical reset value. */
constexpr std::uint8_t kWeaklyTaken = 2;

} // namespace

BranchPredictor::BranchPredictor(unsigned table_bits)
    : mask((1ull << table_bits) - 1),
      table(1ull << table_bits, kWeaklyTaken)
{}

void
BranchPredictor::reset()
{
    history = 0;
    std::fill(table.begin(), table.end(), kWeaklyTaken);
    statLookups = statMispredicts = 0;
}

} // namespace athena

/**
 * @file
 * gshare implementation (cold paths; the per-branch hot path is
 * header-inline).
 */

#include "cpu/branch_predictor.hh"

#include <algorithm>
#include <cstdint>

#include "snapshot/snapshot.hh"

namespace athena
{

namespace
{

/** Weakly taken: SatCounter<2>'s historical reset value. */
constexpr std::uint8_t kWeaklyTaken = 2;

} // namespace

BranchPredictor::BranchPredictor(unsigned table_bits)
    : mask((1ull << table_bits) - 1),
      table(1ull << table_bits, kWeaklyTaken)
{}

void
BranchPredictor::reset()
{
    history = 0;
    std::fill(table.begin(), table.end(), kWeaklyTaken);
    statLookups = statMispredicts = 0;
}

void
BranchPredictor::saveState(SnapshotWriter &w) const
{
    w.u64(table.size());
    w.u64(history);
    w.u64(statLookups);
    w.u64(statMispredicts);
    w.bytes(table.data(), table.size());
}

void
BranchPredictor::restoreState(SnapshotReader &r)
{
    r.expectU64(table.size(), "branch predictor PHT size");
    history = r.u64();
    statLookups = r.u64();
    statMispredicts = r.u64();
    r.bytes(table.data(), table.size());
}

} // namespace athena

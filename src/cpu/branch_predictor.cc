/**
 * @file
 * gshare implementation.
 */

#include "cpu/branch_predictor.hh"

#include <cstdint>

#include "common/hashing.hh"

namespace athena
{

BranchPredictor::BranchPredictor(unsigned table_bits)
    : tableBits(table_bits),
      table(1ull << table_bits, SatCounter<2>())
{}

bool
BranchPredictor::predictAndTrain(std::uint64_t pc, bool taken)
{
    std::uint64_t mask = (1ull << tableBits) - 1;
    std::uint64_t idx = (mix64(pc) ^ history) & mask;
    bool prediction = table[idx].taken();
    table[idx].update(taken);
    history = ((history << 1) | (taken ? 1 : 0)) & mask;
    ++statLookups;
    if (prediction != taken)
        ++statMispredicts;
    return prediction == taken;
}

void
BranchPredictor::reset()
{
    history = 0;
    for (auto &c : table)
        c = SatCounter<2>();
    statLookups = statMispredicts = 0;
}

} // namespace athena

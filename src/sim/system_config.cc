/**
 * @file
 * SystemConfig helpers.
 */

#include "sim/system_config.hh"

#include <cstdint>

namespace athena
{

const char *
cacheDesignName(CacheDesign design)
{
    switch (design) {
      case CacheDesign::kCd1: return "CD1";
      case CacheDesign::kCd2: return "CD2";
      case CacheDesign::kCd3: return "CD3";
      case CacheDesign::kCd4: return "CD4";
    }
    return "?";
}

unsigned
SystemConfig::numPrefetchers() const
{
    unsigned n = 0;
    if (l1dPf != PrefetcherKind::kNone)
        ++n;
    if (l2cPf != PrefetcherKind::kNone)
        ++n;
    if (l2cPf2 != PrefetcherKind::kNone)
        ++n;
    return n;
}

namespace
{

/** FNV-1a accumulator for the config content hash. */
struct ConfigHash
{
    std::uint64_t h = 0xcbf29ce484222325ull;

    void
    u64(std::uint64_t v)
    {
        for (unsigned i = 0; i < 8; ++i) {
            h ^= (v >> (8 * i)) & 0xff;
            h *= 0x100000001b3ull;
        }
    }

    void
    f64(double v)
    {
        std::uint64_t bits;
        static_assert(sizeof(bits) == sizeof(v));
        __builtin_memcpy(&bits, &v, sizeof(bits));
        u64(bits);
    }
};

} // namespace

std::uint64_t
SystemConfig::configKey() const
{
    ConfigHash h;
    h.u64(static_cast<std::uint64_t>(l1dPf));
    h.u64(static_cast<std::uint64_t>(l2cPf));
    h.u64(static_cast<std::uint64_t>(l2cPf2));
    h.u64(static_cast<std::uint64_t>(ocp));
    h.u64(static_cast<std::uint64_t>(policy));
    h.f64(bandwidthGBps);
    h.u64(dramBanks);
    h.u64(dramRowBytes);
    h.u64(llcBanks);
    h.u64(dramChannels);
    h.u64(ocpIssueLatency);
    h.u64(cores);
    h.u64(epochInstructions);
    h.u64(core.width);
    h.u64(core.robSize);
    h.u64(core.mispredictPenalty);
    h.u64(core.l1Mshrs);
    h.u64(core.aluLatency);
    h.u64(seed);
    // batchedInference is deliberately NOT hashed: the batched and
    // scalar paths are bit-identical by contract (enforced by the
    // equivalence suite), so results keyed either way are
    // interchangeable — exactly like the cosmetic label.
    // Policy-specific configuration only matters when that policy
    // runs — hashing it unconditionally would needlessly split
    // cache keys between sweeps that differ only in, say, Athena
    // hyperparameters while comparing the same kAllOff baseline.
    switch (policy) {
      case PolicyKind::kAthena:
        h.u64(athena.qv.planes);
        h.u64(athena.qv.rows);
        h.u64(athena.qv.actions);
        h.u64(athena.qv.stateFields);
        h.u64(athena.qv.bitsPerField);
        h.f64(athena.qv.alpha);
        h.f64(athena.qv.gamma);
        h.u64(athena.qv.quantized ? 1 : 0);
        h.f64(athena.qv.initQ);
        h.u64(athena.qv.roundingSeed);
        h.f64(athena.rewardWeights.lambdaCycle);
        h.f64(athena.rewardWeights.lambdaLlcMiss);
        h.f64(athena.rewardWeights.lambdaLlcMissLatency);
        h.f64(athena.rewardWeights.lambdaLoad);
        h.f64(athena.rewardWeights.lambdaMispredBranch);
        h.u64(athena.features.size());
        for (StateFeature f : athena.features)
            h.u64(static_cast<std::uint64_t>(f));
        h.u64(athena.useUncorrelatedReward ? 1 : 0);
        h.u64(athena.stateless ? 1 : 0);
        h.u64(athena.ipcRewardOnly ? 1 : 0);
        h.f64(athena.epsilon);
        h.f64(athena.tau);
        h.u64(athena.prefetcherOnlyMode ? 1 : 0);
        h.u64(athena.seed);
        break;
      case PolicyKind::kHpac:
        h.f64(hpac.accHigh);
        h.f64(hpac.accLow);
        h.f64(hpac.bwHigh);
        h.f64(hpac.pollutionHigh);
        h.f64(hpac.ocpAccGate);
        break;
      case PolicyKind::kMab:
        h.f64(mab.discount);
        h.f64(mab.explorationC);
        break;
      default:
        break;
    }
    return h.h;
}

SystemConfig
makeDesignConfig(CacheDesign design, PolicyKind policy)
{
    SystemConfig cfg;
    cfg.policy = policy;
    switch (design) {
      case CacheDesign::kCd1:
        cfg.label = "CD1";
        cfg.l2cPf = PrefetcherKind::kPythia;
        break;
      case CacheDesign::kCd2:
        cfg.label = "CD2";
        cfg.l1dPf = PrefetcherKind::kIpcp;
        cfg.l2cPf = PrefetcherKind::kNone;
        break;
      case CacheDesign::kCd3:
        cfg.label = "CD3";
        cfg.l2cPf = PrefetcherKind::kSms;
        cfg.l2cPf2 = PrefetcherKind::kPythia;
        break;
      case CacheDesign::kCd4:
        cfg.label = "CD4";
        cfg.l1dPf = PrefetcherKind::kIpcp;
        cfg.l2cPf = PrefetcherKind::kPythia;
        break;
    }
    return cfg;
}

SystemConfig
makeManyCoreConfig(unsigned cores, CacheDesign design,
                   PolicyKind policy)
{
    SystemConfig cfg = makeDesignConfig(design, policy);
    cfg.cores = cores;
    if (cores >= 32) {
        cfg.llcBanks = 8;
        cfg.dramChannels = 4;
    } else if (cores >= 16) {
        cfg.llcBanks = 4;
        cfg.dramChannels = 2;
    }
    cfg.label += "x" + std::to_string(cores);
    return cfg;
}

CacheParams
l1dParams()
{
    return {"L1D", 48 << 10, 12, 5};
}

CacheParams
l2cParams()
{
    return {"L2C", (1280u << 10), 20, 15};
}

CacheParams
llcParams(unsigned cores)
{
    return {"LLC", static_cast<std::uint64_t>(3) * cores << 20, 12,
            55};
}

DramParams
dramParams(double bandwidth_gbps)
{
    DramParams p;
    p.bandwidthGBps = bandwidth_gbps;
    return p;
}

DramParams
dramParams(const SystemConfig &cfg)
{
    DramParams p = dramParams(cfg.bandwidthGBps);
    p.banks = cfg.dramBanks;
    p.rowBytes = cfg.dramRowBytes;
    return p;
}

} // namespace athena

/**
 * @file
 * SystemConfig helpers.
 */

#include "sim/system_config.hh"

#include <cstdint>

namespace athena
{

const char *
cacheDesignName(CacheDesign design)
{
    switch (design) {
      case CacheDesign::kCd1: return "CD1";
      case CacheDesign::kCd2: return "CD2";
      case CacheDesign::kCd3: return "CD3";
      case CacheDesign::kCd4: return "CD4";
    }
    return "?";
}

unsigned
SystemConfig::numPrefetchers() const
{
    unsigned n = 0;
    if (l1dPf != PrefetcherKind::kNone)
        ++n;
    if (l2cPf != PrefetcherKind::kNone)
        ++n;
    if (l2cPf2 != PrefetcherKind::kNone)
        ++n;
    return n;
}

SystemConfig
makeDesignConfig(CacheDesign design, PolicyKind policy)
{
    SystemConfig cfg;
    cfg.policy = policy;
    switch (design) {
      case CacheDesign::kCd1:
        cfg.label = "CD1";
        cfg.l2cPf = PrefetcherKind::kPythia;
        break;
      case CacheDesign::kCd2:
        cfg.label = "CD2";
        cfg.l1dPf = PrefetcherKind::kIpcp;
        cfg.l2cPf = PrefetcherKind::kNone;
        break;
      case CacheDesign::kCd3:
        cfg.label = "CD3";
        cfg.l2cPf = PrefetcherKind::kSms;
        cfg.l2cPf2 = PrefetcherKind::kPythia;
        break;
      case CacheDesign::kCd4:
        cfg.label = "CD4";
        cfg.l1dPf = PrefetcherKind::kIpcp;
        cfg.l2cPf = PrefetcherKind::kPythia;
        break;
    }
    return cfg;
}

CacheParams
l1dParams()
{
    return {"L1D", 48 << 10, 12, 5};
}

CacheParams
l2cParams()
{
    return {"L2C", (1280u << 10), 20, 15};
}

CacheParams
llcParams(unsigned cores)
{
    return {"LLC", static_cast<std::uint64_t>(3) * cores << 20, 12,
            55};
}

DramParams
dramParams(double bandwidth_gbps)
{
    DramParams p;
    p.bandwidthGBps = bandwidth_gbps;
    return p;
}

DramParams
dramParams(const SystemConfig &cfg)
{
    DramParams p = dramParams(cfg.bandwidthGBps);
    p.banks = cfg.dramBanks;
    p.rowBytes = cfg.dramRowBytes;
    return p;
}

} // namespace athena

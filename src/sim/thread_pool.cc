/**
 * @file
 * ThreadPool implementation.
 */

#include "sim/thread_pool.hh"

#include <cstdint>

namespace athena
{

namespace
{

thread_local bool tls_on_worker = false;
/** True while THIS thread is inside a pooled run() submission —
 *  covers the submitting thread, which participates in draining
 *  and must not re-enter the pool from a nested call (it already
 *  holds the submission lock). */
thread_local bool tls_in_run = false;

} // namespace

bool
ThreadPool::onWorkerThread()
{
    return tls_on_worker;
}

bool
ThreadPool::inPooledRun()
{
    return tls_in_run;
}

ThreadPool &
ThreadPool::instance()
{
    static ThreadPool pool;
    return pool;
}

ThreadPool::ThreadPool()
{
    unsigned hw = std::thread::hardware_concurrency();
    // The calling thread always participates in run(), so the pool
    // holds hw - 1 workers (and none on a single-core host, where
    // extra threads only add scheduling noise).
    unsigned n = hw > 1 ? hw - 1 : 0;
    workers.reserve(n);
    for (unsigned i = 0; i < n; ++i)
        workers.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lock(mtx);
        stopping = true;
    }
    wake.notify_all();
    for (auto &t : workers)
        t.join();
}

void
ThreadPool::workerLoop()
{
    tls_on_worker = true;
    std::uint64_t seen = 0;
    for (;;) {
        std::shared_ptr<Job> job;
        {
            std::unique_lock<std::mutex> lock(mtx);
            wake.wait(lock, [&] {
                return stopping || (current && generation != seen);
            });
            if (stopping)
                return;
            job = current;
            seen = generation;
        }
        // Drain the shared cursor alongside the other workers and
        // the submitting thread.
        for (;;) {
            std::size_t i =
                job->next.fetch_add(1, std::memory_order_relaxed);
            if (i >= job->n)
                break;
            (*job->fn)(i);
            if (job->completed.fetch_add(
                    1, std::memory_order_acq_rel) +
                    1 ==
                job->n) {
                // Last index overall: wake the submitter.
                std::lock_guard<std::mutex> lock(mtx);
                done.notify_all();
            }
        }
    }
}

void
ThreadPool::run(std::size_t n,
                const std::function<void(std::size_t)> &fn)
{
    if (n == 0)
        return;
    jobCounter.fetch_add(1, std::memory_order_relaxed);
    if (n == 1 || workers.empty() || onWorkerThread() ||
        tls_in_run) {
        // Serial fast path: single index, no workers to share
        // with, or a nested call — from inside a pool worker OR
        // from the submitting thread while it drains its own job
        // (it holds the submission lock; re-entering would
        // self-deadlock).
        for (std::size_t i = 0; i < n; ++i)
            fn(i);
        return;
    }

    // One fleet-level job at a time; a second external submitter
    // queues here until the first drains (its indices still run at
    // full pool width, so nothing is lost).
    std::lock_guard<std::mutex> submit(submitMtx);
    struct InRunGuard
    {
        ~InRunGuard() { tls_in_run = false; }
    } in_run_guard;
    tls_in_run = true;

    auto job = std::make_shared<Job>();
    job->fn = &fn;
    job->n = n;
    {
        std::lock_guard<std::mutex> lock(mtx);
        current = job;
        ++generation;
    }
    wake.notify_all();

    // Participate: the submitting thread drains the same cursor.
    for (;;) {
        std::size_t i =
            job->next.fetch_add(1, std::memory_order_relaxed);
        if (i >= job->n)
            break;
        fn(i);
        job->completed.fetch_add(1, std::memory_order_acq_rel);
    }

    {
        std::unique_lock<std::mutex> lock(mtx);
        done.wait(lock, [&] {
            return job->completed.load(std::memory_order_acquire) ==
                   job->n;
        });
        current = nullptr;
    }
}

} // namespace athena

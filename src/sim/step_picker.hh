/**
 * @file
 * StepPicker: the multi-core scheduler's least-advanced-core picker.
 *
 * Loose synchronization requires stepping the globally
 * least-advanced unfinished core so shared-resource contention is
 * meaningful. The naive picker rescans all cores per step —
 * O(cores) in the inner loop of every multi-core run. StepPicker is
 * an indexed binary min-heap over (cycle, core) keys: top() is O(1),
 * and the single key that changes per step (the stepped core's new
 * frontier cycle, which never decreases) sifts down in O(log cores).
 *
 * Determinism: ties order strictly by core index, lowest first, so
 * stepping order is a pure function of the per-core cycle
 * trajectories (the previous scan preferred the *last* tied core, an
 * index-order artifact).
 */

#ifndef ATHENA_SIM_STEP_PICKER_HH
#define ATHENA_SIM_STEP_PICKER_HH

#include <cassert>
#include <cstdint>
#include <vector>

#include "common/types.hh"

namespace athena
{

class StepPicker
{
  public:
    /** All @p n cores start unfinished at cycle 0. */
    explicit StepPicker(unsigned n)
        : key(n, 0), heap(n), pos(n)
    {
        for (unsigned i = 0; i < n; ++i) {
            heap[i] = i;
            pos[i] = i;
        }
    }

    bool empty() const { return heap.empty(); }
    unsigned size() const { return static_cast<unsigned>(heap.size()); }

    /** Least-advanced unfinished core (lowest index on ties). */
    unsigned top() const { return heap.front(); }

    /** The top core's cycle. */
    Cycle topCycle() const { return key[heap.front()]; }

    /**
     * Record core @p idx's new frontier cycle. Cycles are
     * monotonically non-decreasing per core, so this only ever
     * sifts down.
     */
    void
    advance(unsigned idx, Cycle now)
    {
        assert(now >= key[idx]);
        key[idx] = now;
        siftDown(pos[idx]);
    }

    /**
     * Would the current top core @p idx still be picked next if its
     * frontier advanced to @p now? By the heap property the minimum
     * of the *other* cores is one of the root's two children, so
     * this is two lexicographic compares — the batch-boundary test
     * that lets the scheduler step the same core repeatedly without
     * a sift per instruction. The stepping order it produces is
     * exactly the one advance()+top() per instruction would.
     *
     * @pre idx is the current top() (its stored key may be stale;
     *      only @p now is compared).
     */
    bool
    stillTop(unsigned idx, Cycle now) const
    {
        assert(!heap.empty() && heap.front() == idx);
        const unsigned n = static_cast<unsigned>(heap.size());
        for (unsigned c = 1; c <= 2; ++c) {
            if (c >= n)
                break;
            unsigned other = heap[c];
            if (key[other] < now ||
                (key[other] == now && other < idx))
                return false;
        }
        return true;
    }

    /** Remove a finished core from the pick set. */
    void
    finish(unsigned idx)
    {
        unsigned p = pos[idx];
        unsigned last = heap.back();
        heap.pop_back();
        if (p < heap.size()) {
            heap[p] = last;
            pos[last] = p;
            // The moved element may violate either direction.
            if (!siftDown(p))
                siftUp(p);
        }
    }

  private:
    /** (cycle, index) lexicographic order. */
    bool
    less(unsigned a, unsigned b) const
    {
        return key[a] != key[b] ? key[a] < key[b] : a < b;
    }

    bool
    siftDown(unsigned p)
    {
        const unsigned n = static_cast<unsigned>(heap.size());
        bool moved = false;
        for (;;) {
            unsigned l = 2 * p + 1;
            if (l >= n)
                break;
            unsigned m = l;
            unsigned r = l + 1;
            if (r < n && less(heap[r], heap[l]))
                m = r;
            if (!less(heap[m], heap[p]))
                break;
            std::swap(heap[p], heap[m]);
            pos[heap[p]] = p;
            pos[heap[m]] = m;
            p = m;
            moved = true;
        }
        return moved;
    }

    void
    siftUp(unsigned p)
    {
        while (p > 0) {
            unsigned parent = (p - 1) / 2;
            if (!less(heap[p], heap[parent]))
                break;
            std::swap(heap[p], heap[parent]);
            pos[heap[p]] = p;
            pos[heap[parent]] = parent;
            p = parent;
        }
    }

    std::vector<Cycle> key;     ///< Per-core frontier cycle.
    std::vector<unsigned> heap; ///< Core indices, heap-ordered.
    std::vector<unsigned> pos;  ///< Core index -> heap position.
};

} // namespace athena

#endif // ATHENA_SIM_STEP_PICKER_HH

/**
 * @file
 * ParallelStepper: the deterministic parallel multi-core stepping
 * engine's coordination core (conservative-lookahead PDES), with
 * per-shard commit bookkeeping for the sharded shared-memory plane
 * (banked LLC + channeled DRAM).
 *
 * The sequential multi-core engine steps one instruction at a time
 * on the globally least-advanced core (StepPicker: argmin over
 * (now, core index)). The only cross-core coupling points are the
 * shared LLC banks and the DRAM channels — everything else a step
 * touches (core pipeline, L1/L2, branch predictor, prefetchers,
 * policy, workload cursor) is private to its core. So the stepping
 * schedule is only *observable* through the order in which steps
 * touch shared state, and that order is fully determined by each
 * shared-touching step's key: the core's frontier cycle immediately
 * before the step, tie-broken by core index — exactly the
 * StepPicker key the sequential engine picks by.
 *
 * The parallel engine exploits this: every core runs on its own
 * thread, publishing its pre-step frontier (`bound`) before each
 * instruction. Private work proceeds concurrently without any
 * synchronization. The first shared touch inside a step parks the
 * core until its (bound, index) pair is the global minimum over all
 * live cores — i.e. until every step the sequential schedule orders
 * before it has committed and no other core can still produce an
 * earlier-keyed shared access (each core's bound is a lower bound
 * on all its future step keys, because frontiers are monotone).
 * Once granted, the remainder of the step's shared accesses run
 * under exclusive ownership of the shared state; the grant is
 * released by the core's next bound publication (or its terminal
 * `done`), whose release-store is what hands shared-state
 * visibility to the next granted core.
 *
 * Sharding note: the grant is deliberately *global* — one turn
 * covers every bank and channel — even though the shared plane is
 * sharded. A genuinely per-shard grant (spin only until lex-min
 * *for the shard being touched*) is unsound under this protocol,
 * because a step's shard footprint is dynamic: the same step can
 * touch LLC bank b, then DRAM channel m, then bank b again (miss →
 * fill), prefetcher-generated addresses land in arbitrary shards,
 * and epoch-boundary sampling reads every channel — so a core
 * granted on one shard could still race an earlier-keyed core on a
 * shard it discovers mid-step. Without a declared-footprint
 * mechanism, the pre-step frontier is the tightest sound bound.
 * What sharding buys today: (1) only the *first* shared touch of a
 * step waits — subsequent same-step touches of any shard are free;
 * (2) each shard keeps its own commit log, so the per-shard commit
 * sequence is pinned to the sequential engine's per-shard
 * projection. That per-shard contract is exactly what any future
 * relaxed (footprint-declaring) grant protocol must preserve, and
 * the oracle that enforces it (tests/test_shard_order.cc) is
 * already in place.
 *
 * The result is bit-identical to the sequential engine by
 * construction: same per-core instruction streams, same shared
 * commit order (hence same per-shard projections), same values —
 * pinned by the golden suite and the shared-step order oracles
 * (tests/test_parallel_step.cc, tests/test_shard_order.cc).
 *
 * Progress: a parked core waits only on cores whose bound is below
 * its key. Every live core republishes its bound each instruction
 * (the heartbeat that makes the lookahead advance) and a finished
 * core's `done` flag removes it from everyone's wait condition, so
 * the minimum-key parked core is always eventually granted — no
 * barriers, no deadlock. The wait itself escalates pause → yield →
 * short park: a brief pause burst for the fast handoff, yields while
 * oversubscribed (stepping threads may outnumber hardware threads),
 * and a short timed sleep once the wait is clearly long (a stalled
 * or descheduled peer), so a high-shared-touch-rate mix does not
 * burn a full hardware thread per parked core.
 */

#ifndef ATHENA_SIM_PARALLEL_STEP_HH
#define ATHENA_SIM_PARALLEL_STEP_HH

#include <atomic>
#include <chrono>
#include <cstdint>
#include <thread>
#include <utility>
#include <vector>

#include "common/types.hh"

namespace athena
{

/**
 * Shared-step commit order, per shard: shards[s] holds one
 * (core, pre-step frontier) entry for every step that touched shard
 * s, in that shard's commit order. Shard ids follow the SharedShard
 * convention (LLC banks first, then DRAM channels); a step that
 * touches a shard several times logs there once, keyed by its first
 * touch. Recorded by both engines when attached via
 * Simulator::setSharedStepLog, so tests can assert the parallel
 * engine reproduces the sequential schedule's per-shard projection
 * verbatim.
 */
struct SharedStepLog
{
    std::vector<std::vector<std::pair<unsigned, Cycle>>> shards;

    void
    clear()
    {
        shards.clear();
    }
};

class ParallelStepper
{
  public:
    ParallelStepper(unsigned cores, unsigned shard_count,
                    SharedStepLog *log_sink)
        : slots(cores), log(log_sink), n(cores)
    {
        if (log)
            log->shards.resize(shard_count);
    }

    ParallelStepper(const ParallelStepper &) = delete;
    ParallelStepper &operator=(const ParallelStepper &) = delete;

    /**
     * Publish core @p core's pre-step frontier and open a new step.
     * The release-store doubles as the previous step's grant
     * release: it orders every shared-state write that step made
     * before any other core's grant that observes the new bound.
     */
    void
    beginStep(unsigned core, Cycle pre_step_now)
    {
        Slot &s = slots[core];
        s.granted = false;
        s.loggedMask = 0;
        s.bound.store(pre_step_now, std::memory_order_release);
    }

    /**
     * Block until core @p core owns the shared-state turn for its
     * current step (idempotent within a step; only the first call
     * of a step can block), and record the touch on shard
     * @p shard's commit log (once per shard per step). On return,
     * every shared access the sequential schedule orders before
     * this step has committed and is visible, and no other core
     * will touch shared state until this core's next
     * beginStep/finish.
     */
    void
    ensureTurn(unsigned core, unsigned shard)
    {
        Slot &s = slots[core];
        if (!s.granted) {
            const Cycle key =
                s.bound.load(std::memory_order_relaxed);
            unsigned spins = 0;
            while (!turnReady(core, key)) {
                if (++spins <= 128)
                    cpuRelax();
                else if (spins <= 4096)
                    std::this_thread::yield();
                else
                    std::this_thread::sleep_for(
                        std::chrono::microseconds(50));
            }
            s.granted = true;
        }
        if (log) {
            const std::uint64_t bit = std::uint64_t{1} << shard;
            if (!(s.loggedMask & bit)) {
                s.loggedMask |= bit;
                log->shards[shard].emplace_back(
                    core, s.bound.load(std::memory_order_relaxed));
            }
        }
    }

    /** True while the current step holds the turn (own thread). */
    bool grantedThisStep(unsigned core) const
    {
        return slots[core].granted;
    }

    /**
     * Remove a finished core (stream exhausted or budget reached)
     * from every other core's wait condition. The release-store
     * publishes the core's final shared-state writes.
     */
    void
    finish(unsigned core)
    {
        slots[core].done.store(true, std::memory_order_release);
    }

  private:
    /**
     * One cache line per core: `bound` is written once per
     * instruction by the owning thread and read only by parked
     * cores, so the line stays exclusive to its owner during
     * private stretches.
     */
    struct alignas(64) Slot
    {
        /** Pre-step frontier: a lower bound on every key this core
         *  can still produce (frontiers are monotone). */
        std::atomic<Cycle> bound{0};
        std::atomic<bool> done{false};
        /** Turn held for the current step. Owned by the core's own
         *  thread; never read across threads. */
        bool granted = false;
        /** Shards already logged this step (bit per shard id).
         *  Own-thread only, like `granted`. */
        std::uint64_t loggedMask = 0;
    };

    static void
    cpuRelax()
    {
#if defined(__x86_64__) || defined(__i386__)
        __builtin_ia32_pause();
#elif defined(__aarch64__)
        asm volatile("yield" ::: "memory");
#else
        std::this_thread::yield();
#endif
    }

    /**
     * Grant test: (key, core) must be the strict lexicographic
     * minimum over all live cores' (bound, index) pairs. Reading a
     * stale (smaller) bound is conservative — it can only delay the
     * grant, never mis-order it — and the acquire on the bound that
     * finally satisfies the test synchronizes with that core's
     * release, making all earlier-keyed shared writes visible.
     */
    bool
    turnReady(unsigned core, Cycle key) const
    {
        for (unsigned c = 0; c < n; ++c) {
            if (c == core)
                continue;
            const Slot &s = slots[c];
            if (s.done.load(std::memory_order_acquire))
                continue;
            Cycle b = s.bound.load(std::memory_order_acquire);
            if (b < key || (b == key && c < core))
                return false;
        }
        return true;
    }

    std::vector<Slot> slots;
    SharedStepLog *log;
    unsigned n;
};

} // namespace athena

#endif // ATHENA_SIM_PARALLEL_STEP_HH

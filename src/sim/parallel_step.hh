/**
 * @file
 * ParallelStepper: the deterministic parallel multi-core stepping
 * engine's coordination core (conservative-lookahead PDES).
 *
 * The sequential multi-core engine steps one instruction at a time
 * on the globally least-advanced core (StepPicker: argmin over
 * (now, core index)). The only cross-core coupling points are the
 * shared LLC and the DRAM channel — everything else a step touches
 * (core pipeline, L1/L2, branch predictor, prefetchers, policy,
 * workload cursor) is private to its core. So the stepping schedule
 * is only *observable* through the order in which steps touch
 * shared state, and that order is fully determined by each
 * shared-touching step's key: the core's frontier cycle immediately
 * before the step, tie-broken by core index — exactly the
 * StepPicker key the sequential engine picks by.
 *
 * The parallel engine exploits this: every core runs on its own
 * thread, publishing its pre-step frontier (`bound`) before each
 * instruction. Private work proceeds concurrently without any
 * synchronization. The first LLC/DRAM touch inside a step parks the
 * core until its (bound, index) pair is the global minimum over all
 * live cores — i.e. until every step the sequential schedule orders
 * before it has committed and no other core can still produce an
 * earlier-keyed shared access (each core's bound is a lower bound
 * on all its future step keys, because frontiers are monotone).
 * Once granted, the remainder of the step's shared accesses run
 * under exclusive ownership of the shared state; the grant is
 * released by the core's next bound publication (or its terminal
 * `done`), whose release-store is what hands shared-state
 * visibility to the next granted core.
 *
 * The result is bit-identical to the sequential engine by
 * construction: same per-core instruction streams, same shared
 * commit order, same values — pinned by the golden suite and the
 * shared-step order oracle (tests/test_parallel_step.cc).
 *
 * Progress: a parked core waits only on cores whose bound is below
 * its key. Every live core republishes its bound each instruction
 * (the heartbeat that makes the lookahead advance) and a finished
 * core's `done` flag removes it from everyone's wait condition, so
 * the minimum-key parked core is always eventually granted — no
 * barriers, no deadlock.
 */

#ifndef ATHENA_SIM_PARALLEL_STEP_HH
#define ATHENA_SIM_PARALLEL_STEP_HH

#include <atomic>
#include <cstdint>
#include <thread>
#include <utility>
#include <vector>

#include "common/types.hh"

namespace athena
{

/**
 * Shared-step commit order: one (core, pre-step frontier) entry per
 * step that touched shared state, in commit order. Recorded by both
 * engines when attached via Simulator::setSharedStepLog, so tests
 * can assert the parallel engine reproduces the sequential
 * schedule verbatim.
 */
using SharedStepLog = std::vector<std::pair<unsigned, Cycle>>;

class ParallelStepper
{
  public:
    explicit ParallelStepper(unsigned cores, SharedStepLog *log_sink)
        : slots(cores), log(log_sink), n(cores)
    {}

    ParallelStepper(const ParallelStepper &) = delete;
    ParallelStepper &operator=(const ParallelStepper &) = delete;

    /**
     * Publish core @p core's pre-step frontier and open a new step.
     * The release-store doubles as the previous step's grant
     * release: it orders every shared-state write that step made
     * before any other core's grant that observes the new bound.
     */
    void
    beginStep(unsigned core, Cycle pre_step_now)
    {
        Slot &s = slots[core];
        s.granted = false;
        s.bound.store(pre_step_now, std::memory_order_release);
    }

    /**
     * Block until core @p core owns the shared-state turn for its
     * current step (idempotent within a step). On return, every
     * shared access the sequential schedule orders before this
     * step has committed and is visible, and no other core will
     * touch shared state until this core's next beginStep/finish.
     */
    void
    ensureTurn(unsigned core)
    {
        Slot &s = slots[core];
        if (s.granted)
            return;
        const Cycle key = s.bound.load(std::memory_order_relaxed);
        unsigned spins = 0;
        while (!turnReady(core, key)) {
            // Brief pause burst for the fast handoff, then yield:
            // stepping threads may outnumber hardware threads (the
            // engine stays correct oversubscribed, e.g. under the
            // single-CPU CI sandbox), where only yielding lets the
            // turn holder run.
            if (++spins > 128)
                std::this_thread::yield();
            else
                cpuRelax();
        }
        s.granted = true;
        if (log)
            log->emplace_back(core, key);
    }

    /** True while the current step holds the turn (own thread). */
    bool grantedThisStep(unsigned core) const
    {
        return slots[core].granted;
    }

    /**
     * Remove a finished core (stream exhausted or budget reached)
     * from every other core's wait condition. The release-store
     * publishes the core's final shared-state writes.
     */
    void
    finish(unsigned core)
    {
        slots[core].done.store(true, std::memory_order_release);
    }

  private:
    /**
     * One cache line per core: `bound` is written once per
     * instruction by the owning thread and read only by parked
     * cores, so the line stays exclusive to its owner during
     * private stretches.
     */
    struct alignas(64) Slot
    {
        /** Pre-step frontier: a lower bound on every key this core
         *  can still produce (frontiers are monotone). */
        std::atomic<Cycle> bound{0};
        std::atomic<bool> done{false};
        /** Turn held for the current step. Owned by the core's own
         *  thread; never read across threads. */
        bool granted = false;
    };

    static void
    cpuRelax()
    {
#if defined(__x86_64__) || defined(__i386__)
        __builtin_ia32_pause();
#elif defined(__aarch64__)
        asm volatile("yield" ::: "memory");
#else
        std::this_thread::yield();
#endif
    }

    /**
     * Grant test: (key, core) must be the strict lexicographic
     * minimum over all live cores' (bound, index) pairs. Reading a
     * stale (smaller) bound is conservative — it can only delay the
     * grant, never mis-order it — and the acquire on the bound that
     * finally satisfies the test synchronizes with that core's
     * release, making all earlier-keyed shared writes visible.
     */
    bool
    turnReady(unsigned core, Cycle key) const
    {
        for (unsigned c = 0; c < n; ++c) {
            if (c == core)
                continue;
            const Slot &s = slots[c];
            if (s.done.load(std::memory_order_acquire))
                continue;
            Cycle b = s.bound.load(std::memory_order_acquire);
            if (b < key || (b == key && c < core))
                return false;
        }
        return true;
    }

    std::vector<Slot> slots;
    SharedStepLog *log;
    unsigned n;
};

} // namespace athena

#endif // ATHENA_SIM_PARALLEL_STEP_HH

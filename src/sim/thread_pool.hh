/**
 * @file
 * Lazily-initialized persistent worker pool behind parallelFor().
 *
 * The experiment fleet issues thousands of short parallelFor calls
 * (one simulation per index). Spawning hardware_concurrency threads
 * per call costs a clone/join round-trip per simulation; the pool
 * pays that once for the process lifetime. Work distribution stays
 * what it was: a shared atomic cursor that workers race on, so any
 * imbalance between simulations self-levels.
 *
 * Nested calls are safe: a parallelFor issued from inside a pool
 * worker runs inline on that worker (the pool never blocks one job
 * waiting for another, so there is no deadlock and no thread
 * explosion).
 */

#ifndef ATHENA_SIM_THREAD_POOL_HH
#define ATHENA_SIM_THREAD_POOL_HH

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace athena
{

class ThreadPool
{
  public:
    /** The process-wide pool, created on first use. */
    static ThreadPool &instance();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;
    ~ThreadPool();

    /**
     * Run fn(i) for i in [0, n), distributing indices over the pool
     * workers plus the calling thread. Returns when every index has
     * completed. Reentrant calls from a worker run serially inline.
     */
    void run(std::size_t n,
             const std::function<void(std::size_t)> &fn);

    /** Persistent worker threads (excludes the calling thread). */
    unsigned workerCount() const { return static_cast<unsigned>(workers.size()); }

    /** Total run() jobs executed (pool-reuse diagnostics/tests). */
    std::uint64_t jobsExecuted() const { return jobCounter.load(); }

    /** True when called from inside a pool worker. */
    static bool onWorkerThread();

    /**
     * True while THIS thread is draining its own run() submission
     * (between submit and completion). Together with
     * onWorkerThread() this identifies every thread that is already
     * part of a pooled fleet — the parallel stepping engine checks
     * both and falls back to sequential stepping there rather than
     * oversubscribing the host with per-core threads.
     */
    static bool inPooledRun();

  private:
    ThreadPool();

    void workerLoop();

    struct Job
    {
        /** Borrowed from run()'s caller; only dereferenced for
         *  indices < n, which run() outlives by construction. */
        const std::function<void(std::size_t)> *fn = nullptr;
        std::size_t n = 0;
        std::atomic<std::size_t> next{0};
        std::atomic<std::size_t> completed{0};
    };

    std::vector<std::thread> workers;

    /** Serializes whole run() submissions from external threads. */
    std::mutex submitMtx;
    std::mutex mtx;
    std::condition_variable wake;  ///< Workers wait for a new job.
    std::condition_variable done;  ///< run() waits for completion.
    /** Job being drained, or null. shared_ptr so a straggler
     *  worker's final empty cursor probe outlives run(). */
    std::shared_ptr<Job> current;
    std::uint64_t generation = 0;  ///< Bumped per job (wakeup token).
    bool stopping = false;

    std::atomic<std::uint64_t> jobCounter{0};
};

} // namespace athena

#endif // ATHENA_SIM_THREAD_POOL_HH

/**
 * @file
 * ExperimentRunner implementation.
 */

#include "sim/runner.hh"

#include <cmath>
#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <vector>

#include "common/stats.hh"
#include "sim/thread_pool.hh"

namespace athena
{

namespace
{

std::uint64_t
envOr(const char *name, std::uint64_t fallback)
{
    const char *v = std::getenv(name);
    if (!v || !*v)
        return fallback;
    return std::strtoull(v, nullptr, 10);
}

long
bandwidthKey(double gbps)
{
    return std::lround(gbps * 100.0);
}

} // namespace

void
parallelFor(std::size_t n, const std::function<void(std::size_t)> &fn)
{
    ThreadPool::instance().run(n, fn);
}

ExperimentRunner::ExperimentRunner()
{
    simInstructions = envOr("ATHENA_SIM_INSTR", 800000);
    warmupInstructions = envOr("ATHENA_WARMUP_INSTR", 200000);
    mcSimInstructions = envOr("ATHENA_MC_INSTR", 250000);
    mcWarmupInstructions = envOr("ATHENA_MC_WARMUP", 60000);
}

SimResult
ExperimentRunner::runOne(const SystemConfig &config,
                         const WorkloadSpec &spec) const
{
    Simulator sim(config, {spec});
    return sim.run(simInstructions, warmupInstructions);
}

double
ExperimentRunner::baselineIpc(const SystemConfig &config,
                              const WorkloadSpec &spec)
{
    auto key = std::make_pair(spec.name,
                              bandwidthKey(config.bandwidthGBps));
    {
        std::shared_lock<std::shared_mutex> lock(cacheMutex);
        auto it = baselineCache.find(key);
        if (it != baselineCache.end())
            return it->second;
    }
    SystemConfig base = config;
    base.policy = PolicyKind::kAllOff;
    double ipc = runOne(base, spec).ipc();
    std::unique_lock<std::shared_mutex> lock(cacheMutex);
    baselineCache[key] = ipc;
    return ipc;
}

std::vector<SpeedupRow>
ExperimentRunner::speedups(const SystemConfig &config,
                           const std::vector<WorkloadSpec> &specs)
{
    // Baseline and policy runs are *separate* work items (even
    // indices baseline, odd indices policy), so a worker never
    // serializes a workload's baseline behind its policy run:
    // cold baselines for some workloads overlap with policy runs
    // for others, and cached baselines cost one shared-lock lookup.
    std::vector<SpeedupRow> rows(specs.size());
    std::vector<double> base(specs.size(), 0.0);
    parallelFor(2 * specs.size(), [&](std::size_t k) {
        const std::size_t i = k >> 1;
        const WorkloadSpec &spec = specs[i];
        if ((k & 1) == 0) {
            base[i] = baselineIpc(config, spec);
            return;
        }
        SpeedupRow row;
        row.workload = spec.name;
        row.suite = spec.suite;
        row.result = runOne(config, spec);
        rows[i] = std::move(row);
    });
    for (std::size_t i = 0; i < specs.size(); ++i) {
        rows[i].baselineIpc = base[i];
        rows[i].speedup = base[i] > 0.0
                              ? rows[i].result.ipc() / base[i]
                              : 1.0;
    }
    return rows;
}

std::set<std::string>
ExperimentRunner::adverseSet(const SystemConfig &base_config,
                             const std::vector<WorkloadSpec> &specs)
{
    auto key = std::make_pair(base_config.label,
                              bandwidthKey(base_config.bandwidthGBps));
    {
        std::shared_lock<std::shared_mutex> lock(cacheMutex);
        auto it = adverseCache.find(key);
        if (it != adverseCache.end())
            return it->second;
    }
    SystemConfig pf_only = base_config;
    pf_only.policy = PolicyKind::kPfOnly;
    auto rows = speedups(pf_only, specs);
    std::set<std::string> adverse;
    for (const auto &row : rows) {
        if (row.speedup < 1.0)
            adverse.insert(row.workload);
    }
    std::unique_lock<std::shared_mutex> lock(cacheMutex);
    adverseCache[key] = adverse;
    return adverse;
}

CategorySummary
ExperimentRunner::summarize(const std::vector<SpeedupRow> &rows,
                            const std::set<std::string> &adverse)
{
    std::vector<double> spec, parsec, ligra, cvp, adv, fri, all;
    for (const auto &row : rows) {
        all.push_back(row.speedup);
        switch (row.suite) {
          case Suite::kSpec06:
          case Suite::kSpec17:
            spec.push_back(row.speedup);
            break;
          case Suite::kParsec:
            parsec.push_back(row.speedup);
            break;
          case Suite::kLigra:
            ligra.push_back(row.speedup);
            break;
          case Suite::kCvp:
            cvp.push_back(row.speedup);
            break;
          default:
            break;
        }
        if (adverse.count(row.workload))
            adv.push_back(row.speedup);
        else
            fri.push_back(row.speedup);
    }
    CategorySummary s;
    s.spec = geomean(spec);
    s.parsec = geomean(parsec);
    s.ligra = geomean(ligra);
    s.cvp = geomean(cvp);
    s.adverse = geomean(adv);
    s.friendly = geomean(fri);
    s.overall = geomean(all);
    return s;
}

double
ExperimentRunner::mixSpeedup(const SystemConfig &config,
                             const std::vector<WorkloadSpec> &mix_specs)
{
    SystemConfig base = config;
    base.policy = PolicyKind::kAllOff;

    Simulator base_sim(base, mix_specs);
    SimResult base_res =
        base_sim.run(mcSimInstructions, mcWarmupInstructions);

    Simulator sim(config, mix_specs);
    SimResult res = sim.run(mcSimInstructions, mcWarmupInstructions);

    std::vector<double> per_core;
    for (std::size_t c = 0; c < res.cores.size(); ++c) {
        double b = base_res.cores[c].ipc;
        per_core.push_back(b > 0.0 ? res.cores[c].ipc / b : 1.0);
    }
    return geomean(per_core);
}

} // namespace athena

/**
 * @file
 * ExperimentRunner implementation.
 */

#include "sim/runner.hh"

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <vector>

#include "common/stats.hh"
#include "sim/thread_pool.hh"
#include "snapshot/snapshot.hh"

namespace athena
{

namespace
{

std::uint64_t
envOr(const char *name, std::uint64_t fallback)
{
    const char *v = std::getenv(name);
    if (!v || !*v)
        return fallback;
    return std::strtoull(v, nullptr, 10);
}

/** Warmup-snapshot cache directory ("" = caching disabled). */
std::string
snapshotDir()
{
    const char *v = std::getenv("ATHENA_SNAPSHOT_DIR");
    return v && *v ? v : "";
}

std::string
hex64(std::uint64_t v)
{
    char buf[17];
    std::snprintf(buf, sizeof(buf), "%016llx",
                  static_cast<unsigned long long>(v));
    return buf;
}

} // namespace

void
parallelFor(std::size_t n, const std::function<void(std::size_t)> &fn)
{
    ThreadPool::instance().run(n, fn);
}

RunBudget
RunBudget::fromEnv()
{
    RunBudget b;
    b.simInstructions = envOr("ATHENA_SIM_INSTR", b.simInstructions);
    b.warmupInstructions =
        envOr("ATHENA_WARMUP_INSTR", b.warmupInstructions);
    b.mcSimInstructions =
        envOr("ATHENA_MC_INSTR", b.mcSimInstructions);
    b.mcWarmupInstructions =
        envOr("ATHENA_MC_WARMUP", b.mcWarmupInstructions);
    return b;
}

ExperimentRunner::ExperimentRunner(const RunBudget &run_budget)
    : budget(run_budget)
{}

SimResult
ExperimentRunner::runCached(const SystemConfig &config,
                            const std::vector<WorkloadSpec> &specs,
                            std::uint64_t measured,
                            std::uint64_t warm,
                            const std::string &cache_key) const
{
    const std::string dir = snapshotDir();
    if (!dir.empty() && warm > 0) {
        // Warmup-snapshot cache: keyed strictly by content (see
        // the callers' key construction) — a hit is guaranteed to
        // be the exact state a fresh run would reach at its warmup
        // boundary.
        const std::string path = dir + "/" + cache_key + ".asnp";
        std::error_code ec;
        if (std::filesystem::exists(path, ec)) {
            try {
                Simulator sim(config, specs, path);
                RunPlan plan;
                plan.measured = measured;
                plan.warmup = warm;
                return sim.run(plan);
            } catch (const SnapshotError &) {
                // Stale or corrupt cache entry (e.g. written by an
                // older format version): fall through to a fresh
                // run, which overwrites it.
            }
        }
        Simulator sim(config, specs);
        warmupSimulated.fetch_add(warm * specs.size(),
                                  std::memory_order_relaxed);
        // Write-to-temp + atomic rename so concurrent sweep workers
        // never observe (or resume from) a half-written snapshot.
        static std::atomic<std::uint64_t> tmpSeq{0};
        const std::string tmp =
            path + ".tmp" +
            std::to_string(
                tmpSeq.fetch_add(1, std::memory_order_relaxed));
        RunPlan plan;
        plan.measured = measured;
        plan.warmup = warm;
        plan.snapshotAfterWarmup = tmp;
        SimResult res = sim.run(plan);
        std::rename(tmp.c_str(), path.c_str());
        return res;
    }

    Simulator sim(config, specs);
    warmupSimulated.fetch_add(warm * specs.size(),
                              std::memory_order_relaxed);
    RunPlan plan;
    plan.measured = measured;
    plan.warmup = warm;
    return sim.run(plan);
}

SimResult
ExperimentRunner::runOne(const SystemConfig &config,
                         const WorkloadSpec &spec) const
{
    // Key: config hash, workload spec hash, warmup length
    // (unchanged from when runOne carried the cache inline, so
    // existing cache directories stay valid).
    const std::uint64_t warm = budget.warmupInstructions;
    return runCached(config, {spec}, budget.simInstructions, warm,
                     hex64(config.configKey()) + "-" +
                         hex64(workloadKey(spec)) + "-" +
                         std::to_string(warm));
}

SimResult
ExperimentRunner::runMix(const SystemConfig &config,
                         const std::vector<WorkloadSpec> &specs) const
{
    // Mix key: config hash plus an order-sensitive combination of
    // the per-core workload hashes (core assignment matters — the
    // mix [a,b] is not the mix [b,a]) plus the mix warmup length.
    std::uint64_t mix_key = 1469598103934665603ull;
    for (const WorkloadSpec &s : specs) {
        mix_key ^= workloadKey(s);
        mix_key *= 1099511628211ull;
    }
    const std::uint64_t warm = budget.mcWarmupInstructions;
    return runCached(config, specs, budget.mcSimInstructions, warm,
                     hex64(config.configKey()) + "-mix" +
                         std::to_string(specs.size()) + "-" +
                         hex64(mix_key) + "-" +
                         std::to_string(warm));
}

double
ExperimentRunner::baselineIpc(const SystemConfig &config,
                              const WorkloadSpec &spec)
{
    SystemConfig base = config;
    base.policy = PolicyKind::kAllOff;
    auto key = std::make_pair(workloadKey(spec), base.configKey());
    {
        std::shared_lock<std::shared_mutex> lock(cacheMutex);
        auto it = baselineCache.find(key);
        if (it != baselineCache.end())
            return it->second;
    }
    double ipc = runOne(base, spec).ipc();
    std::unique_lock<std::shared_mutex> lock(cacheMutex);
    baselineCache[key] = ipc;
    return ipc;
}

std::vector<SpeedupRow>
ExperimentRunner::speedups(const SystemConfig &config,
                           const std::vector<WorkloadSpec> &specs)
{
    // Baseline and policy runs are *separate* work items (even
    // indices baseline, odd indices policy), so a worker never
    // serializes a workload's baseline behind its policy run:
    // cold baselines for some workloads overlap with policy runs
    // for others, and cached baselines cost one shared-lock lookup.
    std::vector<SpeedupRow> rows(specs.size());
    std::vector<double> base(specs.size(), 0.0);
    parallelFor(2 * specs.size(), [&](std::size_t k) {
        const std::size_t i = k >> 1;
        const WorkloadSpec &spec = specs[i];
        if ((k & 1) == 0) {
            base[i] = baselineIpc(config, spec);
            return;
        }
        SpeedupRow row;
        row.workload = spec.name;
        row.suite = spec.suite;
        row.result = runOne(config, spec);
        rows[i] = std::move(row);
    });
    for (std::size_t i = 0; i < specs.size(); ++i) {
        rows[i].baselineIpc = base[i];
        rows[i].speedup = base[i] > 0.0
                              ? rows[i].result.ipc() / base[i]
                              : 1.0;
    }
    return rows;
}

std::set<std::string>
ExperimentRunner::adverseSet(const SystemConfig &base_config,
                             const std::vector<WorkloadSpec> &specs)
{
    SystemConfig pf_only = base_config;
    pf_only.policy = PolicyKind::kPfOnly;
    std::uint64_t key = pf_only.configKey();
    {
        std::shared_lock<std::shared_mutex> lock(cacheMutex);
        auto it = adverseCache.find(key);
        if (it != adverseCache.end())
            return it->second;
    }
    auto rows = speedups(pf_only, specs);
    std::set<std::string> adverse;
    for (const auto &row : rows) {
        if (row.speedup < 1.0)
            adverse.insert(row.workload);
    }
    std::unique_lock<std::shared_mutex> lock(cacheMutex);
    adverseCache[key] = adverse;
    return adverse;
}

CategorySummary
ExperimentRunner::summarize(const std::vector<SpeedupRow> &rows,
                            const std::set<std::string> &adverse)
{
    std::vector<double> spec, parsec, ligra, cvp, adv, fri, all;
    for (const auto &row : rows) {
        all.push_back(row.speedup);
        switch (row.suite) {
          case Suite::kSpec06:
          case Suite::kSpec17:
            spec.push_back(row.speedup);
            break;
          case Suite::kParsec:
            parsec.push_back(row.speedup);
            break;
          case Suite::kLigra:
            ligra.push_back(row.speedup);
            break;
          case Suite::kCvp:
            cvp.push_back(row.speedup);
            break;
          default:
            break;
        }
        if (adverse.count(row.workload))
            adv.push_back(row.speedup);
        else
            fri.push_back(row.speedup);
    }
    CategorySummary s;
    s.spec = geomean(spec);
    s.parsec = geomean(parsec);
    s.ligra = geomean(ligra);
    s.cvp = geomean(cvp);
    s.adverse = geomean(adv);
    s.friendly = geomean(fri);
    s.overall = geomean(all);
    return s;
}

double
ExperimentRunner::mixSpeedup(const SystemConfig &config,
                             const std::vector<WorkloadSpec> &mix_specs)
{
    SystemConfig base = config;
    base.policy = PolicyKind::kAllOff;

    SimResult base_res = runMix(base, mix_specs);
    SimResult res = runMix(config, mix_specs);

    std::vector<double> per_core;
    for (std::size_t c = 0; c < res.cores.size(); ++c) {
        double b = base_res.cores[c].ipc;
        per_core.push_back(b > 0.0 ? res.cores[c].ipc / b : 1.0);
    }
    return geomean(per_core);
}

} // namespace athena

/**
 * @file
 * ExperimentRunner: drives fleets of simulations and reduces them
 * into the paper's reporting format — geomean speedup over the
 * no-prefetching / no-OCP baseline, broken down by suite and by the
 * prefetcher-adverse / prefetcher-friendly split of Fig. 1.
 *
 * Baseline runs are cached (keyed by the baseline config's content
 * hash and the workload's spec hash) and independent workloads run
 * in parallel across hardware threads. Simulation length is
 * controlled by the ATHENA_SIM_INSTR / ATHENA_WARMUP_INSTR
 * environment variables (see RunBudget::fromEnv) so the benches
 * scale from smoke-test to full-fidelity.
 *
 * When ATHENA_SNAPSHOT_DIR names a writable directory, runs
 * additionally cache their post-warmup state as ASNP snapshots
 * keyed by (config hash, workload hash(es), warmup length): the
 * first run of a (config, workload) pair — or multi-core mix, via
 * runMix — simulates the warmup and snapshots it; every later run
 * — e.g. the same sweep at a new policy configuration that shares
 * the baseline — resumes from the snapshot and simulates only the
 * measured window.
 */

#ifndef ATHENA_SIM_RUNNER_HH
#define ATHENA_SIM_RUNNER_HH

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <map>
#include <set>
#include <shared_mutex>
#include <string>
#include <utility>
#include <vector>

#include "sim/simulator.hh"
#include "trace/mixes.hh"
#include "trace/zoo.hh"

namespace athena
{

/** One workload's speedup under some configuration. */
struct SpeedupRow
{
    std::string workload;
    Suite suite = Suite::kSpec06;
    double speedup = 1.0;
    SimResult result;     ///< Full diagnostics of the policy run.
    double baselineIpc = 0.0;
};

/** Geomean speedups per reporting category (Fig. 7 etc.). */
struct CategorySummary
{
    double spec = 1.0;
    double parsec = 1.0;
    double ligra = 1.0;
    double cvp = 1.0;
    double adverse = 1.0;
    double friendly = 1.0;
    double overall = 1.0;
};

/**
 * Run fn(i) for i in [0, n) across hardware threads.
 *
 * Backed by the process-wide persistent ThreadPool (see
 * sim/thread_pool.hh): no per-call thread spawning, safe under
 * nested and back-to-back calls.
 */
void parallelFor(std::size_t n,
                 const std::function<void(std::size_t)> &fn);

/**
 * Instruction budgets for runner-driven simulations: the
 * measured/warmup lengths of single-core runs and the reduced
 * lengths used for multi-core mixes.
 */
struct RunBudget
{
    std::uint64_t simInstructions = 800000;
    std::uint64_t warmupInstructions = 200000;
    std::uint64_t mcSimInstructions = 250000;
    std::uint64_t mcWarmupInstructions = 60000;

    /**
     * Budgets from the ATHENA_SIM_INSTR / ATHENA_WARMUP_INSTR /
     * ATHENA_MC_INSTR / ATHENA_MC_WARMUP environment variables,
     * with the defaults above where unset.
     */
    static RunBudget fromEnv();
};

class ExperimentRunner
{
  public:
    explicit ExperimentRunner(
        const RunBudget &run_budget = RunBudget::fromEnv());

    /** Instruction budgets applied to every simulation. */
    RunBudget budget;

    /** Run one workload under one configuration. */
    SimResult runOne(const SystemConfig &config,
                     const WorkloadSpec &spec) const;

    /**
     * Baseline (no prefetch, no OCP) IPC for a workload at the
     * config's bandwidth; cached across calls.
     */
    double baselineIpc(const SystemConfig &config,
                       const WorkloadSpec &spec);

    /** Speedups of a config across a workload list (parallel). */
    std::vector<SpeedupRow>
    speedups(const SystemConfig &config,
             const std::vector<WorkloadSpec> &specs);

    /**
     * Classify workloads by the sign of the prefetcher-only
     * speedup under @p base_config (Fig. 1's split). Cached.
     */
    std::set<std::string>
    adverseSet(const SystemConfig &base_config,
               const std::vector<WorkloadSpec> &specs);

    /** Reduce rows into the per-category geomeans. */
    static CategorySummary
    summarize(const std::vector<SpeedupRow> &rows,
              const std::set<std::string> &adverse);

    /**
     * Run one multi-core mix (one spec per core) at the mix
     * budget, through the same ATHENA_SNAPSHOT_DIR warmup cache as
     * runOne — keyed by (config hash, order-sensitive combination
     * of the per-core workload hashes, mix warmup length) — so the
     * per-figure multi-core benches stop re-simulating warmup on
     * every invocation.
     */
    SimResult runMix(const SystemConfig &config,
                     const std::vector<WorkloadSpec> &specs) const;

    /**
     * Multi-core mix speedup: geomean over cores of per-core IPC
     * relative to the same mix under the all-off policy. Both runs
     * go through the runMix warmup cache.
     */
    double mixSpeedup(const SystemConfig &config,
                      const std::vector<WorkloadSpec> &mix_specs);

    /**
     * Warmup instructions this runner actually simulated, summed
     * over cores (runOne counts its single core, runMix counts
     * every core of the mix). A run resumed from a warmup-snapshot
     * cache hit contributes nothing — which is how the tests
     * verify the cache really skips warmup simulation.
     */
    std::uint64_t
    warmupInstructionsSimulated() const
    {
        return warmupSimulated.load(std::memory_order_relaxed);
    }

  private:
    /** Shared warmup-snapshot-cache machinery behind runOne and
     *  runMix: resume from dir/cache_key.asnp when present, else
     *  simulate warmup and publish the snapshot (temp + rename). */
    SimResult runCached(const SystemConfig &config,
                        const std::vector<WorkloadSpec> &specs,
                        std::uint64_t measured, std::uint64_t warm,
                        const std::string &cache_key) const;

    /**
     * Reader-writer lock: cache hits (the overwhelmingly common
     * case in fleet sweeps) take a shared lock and proceed in
     * parallel; only the insert after a cold simulation takes the
     * exclusive side.
     */
    std::shared_mutex cacheMutex;
    /**
     * (workload spec hash, baseline config hash) -> baseline IPC.
     * Content hashes, not labels: two configs that differ in any
     * behavior-affecting field get distinct entries, while sweeps
     * differing only in policy hyperparameters share the kAllOff
     * baseline (SystemConfig::configKey hashes policy-specific
     * config only for the selected policy).
     */
    std::map<std::pair<std::uint64_t, std::uint64_t>, double>
        baselineCache;
    /** pf-only config hash -> adverse workload names. */
    std::map<std::uint64_t, std::set<std::string>> adverseCache;

    mutable std::atomic<std::uint64_t> warmupSimulated{0};
};

} // namespace athena

#endif // ATHENA_SIM_RUNNER_HH

/**
 * @file
 * ExperimentRunner: drives fleets of simulations and reduces them
 * into the paper's reporting format — geomean speedup over the
 * no-prefetching / no-OCP baseline, broken down by suite and by the
 * prefetcher-adverse / prefetcher-friendly split of Fig. 1.
 *
 * Baseline runs are cached (the baseline depends only on the
 * workload, bandwidth, and core count) and independent workloads
 * run in parallel across hardware threads. Simulation length is
 * controlled by the ATHENA_SIM_INSTR / ATHENA_WARMUP_INSTR
 * environment variables so the benches scale from smoke-test to
 * full-fidelity.
 */

#ifndef ATHENA_SIM_RUNNER_HH
#define ATHENA_SIM_RUNNER_HH

#include <cstddef>
#include <cstdint>
#include <functional>
#include <map>
#include <set>
#include <shared_mutex>
#include <string>
#include <vector>

#include "sim/simulator.hh"
#include "trace/mixes.hh"
#include "trace/zoo.hh"

namespace athena
{

/** One workload's speedup under some configuration. */
struct SpeedupRow
{
    std::string workload;
    Suite suite = Suite::kSpec06;
    double speedup = 1.0;
    SimResult result;     ///< Full diagnostics of the policy run.
    double baselineIpc = 0.0;
};

/** Geomean speedups per reporting category (Fig. 7 etc.). */
struct CategorySummary
{
    double spec = 1.0;
    double parsec = 1.0;
    double ligra = 1.0;
    double cvp = 1.0;
    double adverse = 1.0;
    double friendly = 1.0;
    double overall = 1.0;
};

/**
 * Run fn(i) for i in [0, n) across hardware threads.
 *
 * Backed by the process-wide persistent ThreadPool (see
 * sim/thread_pool.hh): no per-call thread spawning, safe under
 * nested and back-to-back calls.
 */
void parallelFor(std::size_t n,
                 const std::function<void(std::size_t)> &fn);

class ExperimentRunner
{
  public:
    ExperimentRunner();

    /** Measured / warmup instructions per core (env-overridable). */
    std::uint64_t simInstructions;
    std::uint64_t warmupInstructions;
    /** Reduced lengths used for multi-core sweeps. */
    std::uint64_t mcSimInstructions;
    std::uint64_t mcWarmupInstructions;

    /** Run one workload under one configuration. */
    SimResult runOne(const SystemConfig &config,
                     const WorkloadSpec &spec) const;

    /**
     * Baseline (no prefetch, no OCP) IPC for a workload at the
     * config's bandwidth; cached across calls.
     */
    double baselineIpc(const SystemConfig &config,
                       const WorkloadSpec &spec);

    /** Speedups of a config across a workload list (parallel). */
    std::vector<SpeedupRow>
    speedups(const SystemConfig &config,
             const std::vector<WorkloadSpec> &specs);

    /**
     * Classify workloads by the sign of the prefetcher-only
     * speedup under @p base_config (Fig. 1's split). Cached.
     */
    std::set<std::string>
    adverseSet(const SystemConfig &base_config,
               const std::vector<WorkloadSpec> &specs);

    /** Reduce rows into the per-category geomeans. */
    static CategorySummary
    summarize(const std::vector<SpeedupRow> &rows,
              const std::set<std::string> &adverse);

    /**
     * Multi-core mix speedup: geomean over cores of per-core IPC
     * relative to the same mix under the all-off policy.
     */
    double mixSpeedup(const SystemConfig &config,
                      const std::vector<WorkloadSpec> &mix_specs);

  private:
    /**
     * Reader-writer lock: cache hits (the overwhelmingly common
     * case in fleet sweeps) take a shared lock and proceed in
     * parallel; only the insert after a cold simulation takes the
     * exclusive side.
     */
    std::shared_mutex cacheMutex;
    /** (workload, bandwidth-key) -> baseline IPC. */
    std::map<std::pair<std::string, long>, double> baselineCache;
    /** (config label, bandwidth-key) -> adverse names. */
    std::map<std::pair<std::string, long>, std::set<std::string>>
        adverseCache;
};

} // namespace athena

#endif // ATHENA_SIM_RUNNER_HH

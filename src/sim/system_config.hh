/**
 * @file
 * SystemConfig: everything that defines one simulated system —
 * cache design (CD1-CD4, Table 7), prefetcher/OCP selection
 * (sections 6.4/6.5), coordination policy, memory bandwidth, core
 * count, and epoch length.
 */

#ifndef ATHENA_SIM_SYSTEM_CONFIG_HH
#define ATHENA_SIM_SYSTEM_CONFIG_HH

#include <cstdint>
#include <string>

#include "athena/agent.hh"
#include "coord/hpac.hh"
#include "coord/mab.hh"
#include "cpu/core_model.hh"
#include "mem/cache.hh"
#include "mem/dram.hh"
#include "ocp/ocp.hh"
#include "prefetch/prefetcher.hh"

namespace athena
{

/** The four evaluated cache designs (Table 7). */
enum class CacheDesign : std::uint8_t
{
    kCd1, ///< OCP + 1 L2C prefetcher (default: POPET + Pythia).
    kCd2, ///< OCP + 1 L1D prefetcher (default: POPET + IPCP).
    kCd3, ///< OCP + 2 L2C prefetchers (POPET + SMS + Pythia).
    kCd4, ///< OCP + 1 L1D + 1 L2C prefetcher (POPET+IPCP+Pythia).
};

const char *cacheDesignName(CacheDesign design);

struct SystemConfig
{
    std::string label = "cd1";

    // Component selection.
    PrefetcherKind l1dPf = PrefetcherKind::kNone;
    PrefetcherKind l2cPf = PrefetcherKind::kPythia;
    PrefetcherKind l2cPf2 = PrefetcherKind::kNone;
    OcpKind ocp = OcpKind::kPopet;
    PolicyKind policy = PolicyKind::kNaive;

    // Policy configurations (used when the matching policy is
    // selected).
    AthenaConfig athena;
    HpacThresholds hpac;
    MabParams mab;

    // System parameters (Table 5 defaults).
    double bandwidthGBps = 3.2;
    /**
     * DRAM geometry (Table 5 defaults). Non-power-of-two values are
     * fully supported — the controller falls back from the
     * shift/mask decode to the general division decode — and are
     * validated by the Dram constructor (release-mode throw).
     */
    unsigned dramBanks = 8;
    std::uint64_t dramRowBytes = 2048;
    /**
     * Shared-memory-plane shard geometry. The LLC splits into
     * `llcBanks` line-interleaved banks (`bank = line mod llcBanks`,
     * the bank sees `line / llcBanks`) and DRAM into `dramChannels`
     * independent channels (same interleave), each channel owning
     * its own request queue, bank state, and counters at the full
     * per-channel `bandwidthGBps` — so aggregate bandwidth scales
     * with the channel count. Defaults of 1/1 are bit-identical to
     * the pre-sharding monolithic plane; power-of-two LLC bank
     * counts up to the set count are bit-invariant among themselves
     * (the interleave is a pure re-labeling of the set index).
     * Non-power-of-two counts are supported via the division decode.
     * llcBanks + dramChannels must not exceed 64 (the per-step
     * shard-touch bitmask width).
     */
    unsigned llcBanks = 1;
    unsigned dramChannels = 1;
    Cycle ocpIssueLatency = 6;
    unsigned cores = 1;
    std::uint64_t epochInstructions = 8000;
    CoreParams core;
    std::uint64_t seed = 7;

    /**
     * Batched SoA inference plane: collect each pulled record
     * batch's demand-load rows into SoA columns and precompute the
     * (pc, addr)-pure POPET feature indices in one vectorizable
     * kernel, serving per-load predictions from the prepared
     * columns. Results are bit-identical to the scalar path by
     * construction (the knob exists for A/B perf comparison and as
     * a belt-and-braces escape hatch), so like `label` it is
     * excluded from configKey(). Env override:
     * ATHENA_INFERENCE_BATCH=0 forces it off process-wide.
     *
     * The plane's kernels are additionally SIMD-widened: the
     * backend (portable scalar vs. runtime-dispatched AVX2) is
     * selected once per construction via simd::activeBackend(),
     * overridable process-wide with ATHENA_SIMD=scalar|avx2|auto.
     * Backends are bit-identical (see tests/test_simd_kernels.cc);
     * this knob still governs whether the plane runs at all.
     */
    bool batchedInference = true;

    /** Number of prefetcher slots in use. */
    unsigned numPrefetchers() const;

    /**
     * Stable content hash over every behavior-affecting field.
     * The cosmetic label is excluded, and each policy-specific
     * configuration (athena/hpac/mab) is hashed only when that
     * policy is selected — so e.g. two sweeps that differ only in
     * their Athena hyperparameters share baseline (kAllOff) keys.
     * Used to key the ExperimentRunner result caches and the
     * warmup-snapshot cache.
     */
    std::uint64_t configKey() const;
};

/** Build the config for a given cache design with defaults. */
SystemConfig makeDesignConfig(CacheDesign design,
                              PolicyKind policy = PolicyKind::kNaive);

/**
 * Build a many-core Fig-16-style preset: a design config scaled to
 * `cores` with a sharded shared-memory plane sized for it (16 cores:
 * 4 LLC banks / 2 DRAM channels; 32 cores: 8 banks / 4 channels;
 * below 16: the legacy 1/1 monolithic plane). `cores` must be
 * 2..64.
 */
SystemConfig makeManyCoreConfig(unsigned cores,
                                CacheDesign design = CacheDesign::kCd1,
                                PolicyKind policy = PolicyKind::kNaive);

/** Cache parameters of Table 5 (LLC size scales with cores). */
CacheParams l1dParams();
CacheParams l2cParams();
CacheParams llcParams(unsigned cores);

/** DRAM parameters of Table 5 at a given bandwidth. */
DramParams dramParams(double bandwidth_gbps);

/** DRAM parameters from a full SystemConfig (bandwidth + geometry). */
DramParams dramParams(const SystemConfig &cfg);

} // namespace athena

#endif // ATHENA_SIM_SYSTEM_CONFIG_HH

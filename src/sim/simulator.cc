/**
 * @file
 * Simulator implementation.
 */

#include "sim/simulator.hh"

#include <algorithm>
#include <array>
#include <cassert>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <memory>
#include <span>
#include <stdexcept>
#include <string>
#include <thread>
#include <type_traits>
#include <vector>

#include "athena/agent.hh"
#include "common/simd.hh"
#include "coord/simple.hh"
#include "coord/tlp.hh"
#include "ocp/popet.hh"
#include "prefetch/ipcp.hh"
#include "prefetch/pythia.hh"
#include "prefetch/sms.hh"
#include "sim/step_picker.hh"
#include "sim/thread_pool.hh"
#include "snapshot/snapshot.hh"

namespace athena
{

namespace
{

/** Slot marker for fills that must not generate feedback. */
constexpr std::uint8_t kNoFeedbackSlot = 0xff;

/**
 * Process-wide batched-inference override: ATHENA_INFERENCE_BATCH=0
 * forces the scalar path regardless of
 * SystemConfig::batchedInference (the bench A/B driver flips the
 * config knob directly; the env knob is the operator's escape
 * hatch). Results are bit-identical either way.
 */
bool
inferenceBatchEnvEnabled()
{
    static const bool enabled = [] {
        const char *v = std::getenv("ATHENA_INFERENCE_BATCH");
        return !(v && *v == '0');
    }();
    return enabled;
}

/**
 * Provisional readyAt for lines filled while their DRAM request is
 * still pending on the controller queue. Never observable: the
 * trigger window's drain patches the real completion cycle in
 * before any lookup can read readyAt, and an eviction beforehand
 * discards it exactly as scalar service would have. The extreme
 * value makes any violation of that invariant loud in the golden
 * and equivalence suites rather than silently plausible.
 */
constexpr Cycle kPendingReady = ~0ull;

std::unique_ptr<CoordinationPolicy>
makePolicy(const SystemConfig &cfg, unsigned num_prefetchers)
{
    switch (cfg.policy) {
      case PolicyKind::kNaive:
        return makeNaivePolicy();
      case PolicyKind::kAllOff:
        return makeAllOffPolicy();
      case PolicyKind::kPfOnly:
        return makePfOnlyPolicy();
      case PolicyKind::kOcpOnly:
        return makeOcpOnlyPolicy();
      case PolicyKind::kTlp:
        return std::make_unique<TlpPolicy>();
      case PolicyKind::kHpac:
        return std::make_unique<HpacPolicy>(cfg.hpac);
      case PolicyKind::kMab:
        return std::make_unique<MabPolicy>(num_prefetchers, cfg.mab);
      case PolicyKind::kAthena: {
        // The plane knob governs the whole learning stack: with
        // batching off the agent applies SARSA triples one at a
        // time, the faithful pre-batching scalar engine.
        AthenaConfig ac = cfg.athena;
        ac.batchedTraining =
            cfg.batchedInference && inferenceBatchEnvEnabled();
        return std::make_unique<AthenaAgent>(ac);
      }
    }
    throw std::logic_error("unknown policy kind");
}

} // namespace

/** Adapter binding one core's memory traffic to the simulator. */
class CoreMemAdapter : public MemoryInterface
{
  public:
    CoreMemAdapter(Simulator &sim, unsigned core)
        : sim(sim), core(core)
    {}

    Cycle
    load(std::uint64_t pc, Addr addr, Cycle issue,
         bool &l1_miss) override
    {
        return sim.doLoad(core, pc, addr, issue, l1_miss);
    }

    void
    store(std::uint64_t pc, Addr addr, Cycle cycle) override
    {
        sim.doStore(core, pc, addr, cycle);
    }

  private:
    Simulator &sim;
    unsigned core;
};

/**
 * The DRAM-bound prefetch fills collected inside one trigger
 * window (one triggerLevel call): each entry remembers which cache
 * levels were eagerly filled with a provisional readyAt so the
 * window's single Dram::drain() can patch the real completion
 * cycles in, index-aligned with the controller queue. Lives on the
 * trigger path's stack — no heap traffic.
 */
struct Simulator::PrefetchFillBatch
{
    /**
     * One level's patch target: the coordinates of the eager fill
     * (set base + way from CacheEviction::filledWay + packed key),
     * so delivering the completion is one tag compare and a store.
     * No default member initializers: the batch lives on the stack
     * of every triggerLevel call, and value-initialized entries
     * would zero the whole buffer per access.
     */
    struct Target
    {
        std::size_t base;
        std::uint64_t key;
        std::uint8_t way;
    };

    struct Entry
    {
        Target l1; ///< Valid when fillsL1.
        Target l2;
        Target llc;
        /** Queue slot of the DRAM request (channel + index). */
        ChanneledDram::Ticket ticket;
        /** LLC bank the eager fill landed in. */
        std::uint16_t llcBank;
        bool fillsL1;
    };

    /** One trigger window is at most slots x CandidateVec capacity
     *  candidates; a full batch mid-window just drains early, which
     *  is semantics-preserving (patches commute and the controller
     *  services strictly in enqueue order either way). */
    static constexpr unsigned kCapacity = 48;

    Entry buf[kCapacity];
    unsigned count = 0;

    bool empty() const { return count == 0; }
    bool full() const { return count == kCapacity; }
    void clear() { count = 0; }

    static Target
    target(const CacheRef &r, std::uint8_t way)
    {
        return {r.base, r.key, way};
    }

    void push(const Entry &e) { buf[count++] = e; }
};

/**
 * Window-collected POPET feature columns — the batched SoA
 * inference plane of one core. The plane tracks the core's current
 * record batch (refillSequence()); on the first predicted load of
 * a fresh window one branchless pass builds the whole demand-load
 * position column (simd::collectStridedByteEq over the kind-byte
 * stream), and the four (pc, addr)-pure feature-table indices are
 * computed in SoA chunks (PopetPredictor::pureFeatureIndicesBatch
 * with the persistent memo) as the serve cursor advances. Windows
 * the predictor never touches (OCP gating off — Athena epochs can
 * gate whole windows) cost nothing, and hashing stays lazy: at
 * most one chunk of speculative feature work past the served
 * cursor. doLoad serves each load's prepared row by cursor +
 * (pc, addr) match against the record buffer and hashes only the
 * history feature at access time.
 *
 * The plane is a pure cache: a cursor mismatch (e.g. the first
 * window after a mid-buffer snapshot restore, or loads skipped
 * while OCP gating was off) scans forward for the next matching
 * row and falls back to the scalar predictDemand path when the
 * window runs dry — and because the indices are pure functions of
 * (pc, addr), even a coincidental match yields exact indices, so
 * every path is bit-identical to the scalar plane. Core-private
 * state: touched only from the owning core's stepping thread.
 */
struct OcpBatchPlane
{
    static constexpr unsigned kCapacity = CoreModel::kBatchCapacity;
    /** Lazy feature-compute granularity (SoA kernel batch size). */
    static constexpr unsigned kChunk = 32;
    std::uint64_t seq = ~0ull; ///< refillSequence() last seen.
    unsigned count = 0;        ///< Load rows in the window's column.
    unsigned cursor = 0;       ///< Next row to serve.
    unsigned computed = 0;     ///< Rows with feature indices ready.
    /** Record-buffer position of each discovered load (the rows'
     *  (pc, addr) live in the core's record window; no copies). */
    std::array<std::uint16_t, kCapacity> loadPos;
    std::array<std::uint16_t,
               kCapacity * PopetPredictor::kPureFeatures>
        idx;
    /** Persistent pure cache for the chunk kernel's hash work
     *  (pc/page terms repeat across windows); never affects
     *  results. */
    PopetPredictor::PureBatchMemo memo;
    /** SIMD backend for the chunk hash kernels, latched when the
     *  plane is (re)constructed (the load-column build always uses
     *  the branchless scalar collect — see popetPreparedRow). */
    simd::Backend backend = simd::activeBackend();
};

/** The plane's strided scans read TraceRecord::kind as a raw byte
 *  column; the AVX2 gather reads the 3 bytes after it, which the
 *  fixed 24-byte record layout keeps in-bounds for every row. */
static_assert(std::is_standard_layout_v<TraceRecord>,
              "kind-byte scans need a fixed record layout");
static_assert(offsetof(TraceRecord, kind) + 4 <=
                  sizeof(TraceRecord),
              "kind-byte scans read 4 bytes per record");

/** All per-core state. */
struct Simulator::CoreCtx
{
    std::unique_ptr<WorkloadGenerator> workload;
    std::unique_ptr<CoreMemAdapter> adapter;
    std::unique_ptr<CoreModel> core;

    Cache l1;
    Cache l2;

    /** Prefetcher slots (at most kMaxPrefetchers). */
    std::vector<std::unique_ptr<Prefetcher>> prefetchers;
    /**
     * Slot indices per trigger level (0 = L1D, 1 = L2C), computed
     * once at construction so the per-access trigger loop touches
     * only the prefetchers that actually observe that level instead
     * of virtual-dispatching level() on every slot.
     */
    std::array<std::vector<std::uint8_t>, 2> levelSlots;
    std::unique_ptr<OffChipPredictor> ocp;
    std::unique_ptr<CoordinationPolicy> policy;

    CoordDecision decision; ///< Applied for the current epoch.

    /** Capability flags cached off the policy at construction so
     *  the access path skips virtual no-op hook calls. */
    bool policyObservesDemands = false;
    bool policyFiltersPrefetches = false;

    /** Per-epoch window counters (policy telemetry). */
    EpochStats window;
    std::uint64_t epochStartInstr = 0;
    Cycle epochStartCycle = 0;
    CoreCounters epochStartCounters;
    std::uint64_t lastBusBusy = 0; ///< Global bus-busy snapshot.
    DramCounters lastDram;         ///< Global DRAM count snapshot.

    /**
     * Non-null iff the batched inference plane drives this core's
     * OCP: the concrete POPET behind `ocp`, resolved once at
     * construction (kind() tag check) when
     * SystemConfig::batchedInference and the env override allow it.
     * Null means doLoad takes the scalar predictDemand path.
     */
    PopetPredictor *popet = nullptr;
    OcpBatchPlane ocpPlane;

    /**
     * Non-null iff the plane also feeds the prefetcher trigger
     * path: when a chunk of load rows is materialized, the same
     * gathered (pc, addr) stream primes IPCP's signature memo and
     * SMS's region-key memo, so their per-trigger hashing becomes
     * a validated probe. Resolved at construction alongside popet.
     */
    IpcpPrefetcher *ipcp = nullptr;
    SmsPrefetcher *sms = nullptr;

    /** Prefetch-induced LLC pollution tracker (section 5.2.3). */
    BloomFilter pollutionBloom{4096, 2};

    /** Cumulative diagnostics. */
    std::array<PrefetcherSlotStats, kMaxPrefetchers> pfStats{};
    std::uint64_t ocpPredictions = 0;
    std::uint64_t ocpCorrect = 0;
    std::uint64_t llcMissesTotal = 0;
    std::uint64_t llcMissLatencyTotal = 0;

    std::string workloadName;

    CoreCtx(const CacheParams &l1p, const CacheParams &l2p)
        : l1(l1p), l2(l2p)
    {}
};

Simulator::Simulator(const SystemConfig &config,
                     const std::vector<WorkloadSpec> &workloads)
    : cfg(config)
{
    if (workloads.size() != cfg.cores) {
        throw std::invalid_argument(
            "workload count must equal core count");
    }

    if (cfg.llcBanks < 1 || cfg.dramChannels < 1 ||
        cfg.llcBanks + cfg.dramChannels > SharedShard::kMaxShards) {
        throw std::invalid_argument(
            "llcBanks and dramChannels must each be >= 1 and sum "
            "to at most " + std::to_string(SharedShard::kMaxShards));
    }

    llc = std::make_unique<BankedLlc>(llcParams(cfg.cores),
                                      cfg.llcBanks);
    dram = std::make_unique<ChanneledDram>(dramParams(cfg),
                                           cfg.dramChannels);

    latL1 = l1dParams().latency;
    latL2 = latL1 + l2cParams().latency;
    latLlc = latL2 + llc->params().latency;

    for (unsigned c = 0; c < cfg.cores; ++c) {
        auto ctx = std::make_unique<CoreCtx>(l1dParams(), l2cParams());
        ctx->workloadName = workloads[c].name;
        ctx->workload = makeWorkload(workloads[c]);

        // Prefetcher slots in a fixed order: L1D first, then L2Cs.
        if (cfg.l1dPf != PrefetcherKind::kNone) {
            ctx->prefetchers.push_back(makePrefetcher(
                cfg.l1dPf, cfg.seed + c, CacheLevel::kL1D));
        }
        if (cfg.l2cPf != PrefetcherKind::kNone) {
            ctx->prefetchers.push_back(
                makePrefetcher(cfg.l2cPf, cfg.seed + 17 * (c + 1),
                               CacheLevel::kL2C));
        }
        if (cfg.l2cPf2 != PrefetcherKind::kNone) {
            ctx->prefetchers.push_back(
                makePrefetcher(cfg.l2cPf2, cfg.seed + 31 * (c + 1),
                               CacheLevel::kL2C));
        }
        if (ctx->prefetchers.size() > kMaxPrefetchers)
            throw std::invalid_argument("too many prefetchers");
        const bool plane_on =
            cfg.batchedInference && inferenceBatchEnvEnabled();
        for (auto &pf : ctx->prefetchers) {
            if (auto *py =
                    dynamic_cast<PythiaPrefetcher *>(pf.get()))
                py->setBatchedHashing(plane_on);
            else if (auto *ip =
                         dynamic_cast<IpcpPrefetcher *>(pf.get()))
                ip->setBatchedHashing(plane_on);
            else if (auto *sm =
                         dynamic_cast<SmsPrefetcher *>(pf.get()))
                sm->setBatchedHashing(plane_on);
        }
        for (unsigned s = 0; s < ctx->prefetchers.size(); ++s) {
            unsigned lvl = ctx->prefetchers[s]->level() ==
                                   CacheLevel::kL1D
                               ? 0
                               : 1;
            ctx->levelSlots[lvl].push_back(
                static_cast<std::uint8_t>(s));
        }

        ctx->ocp = makeOcp(cfg.ocp);
        if (plane_on && ctx->ocp &&
            ctx->ocp->kind() == OcpKind::kPopet) {
            ctx->popet =
                static_cast<PopetPredictor *>(ctx->ocp.get());
            // The plane's chunk gather doubles as the prefetcher
            // trigger-path feed (prepareTriggerBatch).
            for (auto &pf : ctx->prefetchers) {
                if (auto *ip =
                        dynamic_cast<IpcpPrefetcher *>(pf.get()))
                    ctx->ipcp = ip;
                else if (auto *sm =
                             dynamic_cast<SmsPrefetcher *>(pf.get()))
                    ctx->sms = sm;
            }
        }
        ctx->policy = makePolicy(
            cfg, static_cast<unsigned>(ctx->prefetchers.size()));
        ctx->policyObservesDemands =
            ctx->policy->observesDemandStream();
        ctx->policyFiltersPrefetches =
            ctx->policy->filtersPrefetches();
        ctx->adapter = std::make_unique<CoreMemAdapter>(*this, c);
        ctx->core = std::make_unique<CoreModel>(
            cfg.core, *ctx->workload, *ctx->adapter);
        // Prime the knobs with the policy's decision for an empty
        // epoch so static policies (e.g. all-off) take effect from
        // cycle 0; learning policies treat the empty epoch as their
        // cold start.
        ctx->decision = ctx->policy->onEpochEnd(EpochStats{});
        coreCtxs.push_back(std::move(ctx));
    }

    measure.starts.assign(cfg.cores, MeasureStart{});
    measure.started.assign(cfg.cores, 0);
}

Simulator::Simulator(const SystemConfig &config,
                     const std::vector<WorkloadSpec> &workloads,
                     const std::string &resume_from)
    : Simulator(config, workloads)
{
    SnapshotReader r(resume_from);
    restoreFrom(r);
}

Simulator::~Simulator() = default;

CoordinationPolicy &
Simulator::policy(unsigned core)
{
    return *coreCtxs.at(core)->policy;
}

void
Simulator::dispatchPrefetchFeedbackUsed(unsigned core,
                                        const CacheLookup &res,
                                        Cycle demand_cycle)
{
    CoreCtx &cc = *coreCtxs[core];
    if (!res.firstPrefetchTouch || res.pfSlot == kNoFeedbackSlot)
        return;
    if (res.pfSlot >= cc.prefetchers.size())
        return;
    bool timely = res.readyAt <= demand_cycle;
    PrefetcherSlotStats &ps = cc.pfStats[res.pfSlot];
    ++ps.used;
    if (timely)
        ++ps.usedTimely;
    ++cc.window.pfUsed[res.pfSlot];
    cc.prefetchers[res.pfSlot]->onPrefetchUsed(res.pfMeta, timely);
}

void
Simulator::handleLlcEviction(unsigned core, const CacheEviction &ev)
{
    CoreCtx &cc = *coreCtxs[core];
    if (!ev.evictedValid)
        return;
    // A line leaving the LLC leaves the chip, as far as the OCP's
    // residency tracking is concerned.
    if (cc.ocp)
        cc.ocp->onEvict(ev.evictedLine);
    // Prefetch-caused evictions feed the pollution tracker of the
    // core whose prefetch caused the fill.
    if (ev.causedByPrefetch)
        cc.pollutionBloom.insert(ev.evictedLine);
}

void
Simulator::triggerLevel(unsigned core, CacheLevel level,
                        std::uint64_t pc, Addr addr, bool hit,
                        Cycle cycle)
{
    CoreCtx &cc = *coreCtxs[core];
    const auto &slots =
        cc.levelSlots[level == CacheLevel::kL1D ? 0 : 1];
    if (slots.empty())
        return;
    // The trigger window owns the DRAM controller queue: every
    // off-chip prefetch this window generates is enqueued and the
    // whole window drains in one batched call below. Outside
    // trigger windows the queue is empty (demand/OCP/store traffic
    // goes through the scalar serve() shim), so the global request
    // order is exactly the scalar issue order. Under the parallel
    // engine the queue may only be inspected while this core holds
    // the shared-state turn (another core's window owns it
    // otherwise).
    assert((par && !par->grantedThisStep(core)) ||
           dram->pendingRequests() == 0);
    PrefetchFillBatch batch;
    // Candidate buffer on the stack of the access path: no heap
    // traffic, and the tag-dispatched observe() below is a direct
    // call (see Prefetcher::observe).
    CandidateVec scratch;
    const PrefetchTrigger trigger{pc, addr, hit, cycle};
    for (unsigned slot : slots) {
        Prefetcher &pf = *cc.prefetchers[slot];
        // A gated prefetcher still *trains* on the demand stream
        // (its tables are hardware that observes lookups); only
        // issuing is suppressed. Without this, a learning
        // coordinator that disables a learning prefetcher starves
        // it of training and can never discover that re-enabling
        // it would help.
        bool gated = !cc.decision.pfEnabled(slot) || pf.degree() == 0;
        scratch.clear();
        pf.observe(trigger, scratch);
        for (const PrefetchCandidate &cand : scratch) {
            if (gated)
                pf.onPrefetchDropped(cand.meta);
            else
                issuePrefetch(core, slot, cand, pc, cycle, batch);
        }
    }
    if (!batch.empty())
        drainPrefetchFills(cc, batch);
}

void
Simulator::drainPrefetchFills(CoreCtx &cc, PrefetchFillBatch &batch)
{
    // One batched service per channel for the whole window:
    // bank/row decoded once per request, row-hit streaks resolved
    // bank-locally, counters published per batch (see Dram::drain).
    // Each channel's completions come back index-aligned with that
    // channel's enqueue order, which is exactly what the entries'
    // tickets recorded at enqueue time.
    std::span<const Cycle> spans[ChanneledDram::kMaxChannels];
    const unsigned channels = dram->channelCount();
#ifndef NDEBUG
    std::size_t drained = 0;
#endif
    for (unsigned ch = 0; ch < channels; ++ch) {
        spans[ch] = dram->drainChannel(ch);
#ifndef NDEBUG
        drained += spans[ch].size();
#endif
    }
    assert(drained == batch.count);
    for (unsigned i = 0; i < batch.count; ++i) {
        const PrefetchFillBatch::Entry &e = batch.buf[i];
        const Cycle at = spans[e.ticket.channel][e.ticket.index];
        llc->patchReadyAt(e.llcBank, e.llc.base, e.llc.way,
                          e.llc.key, at);
        cc.l2.patchReadyAt(e.l2.base, e.l2.way, e.l2.key, at);
        if (e.fillsL1)
            cc.l1.patchReadyAt(e.l1.base, e.l1.way, e.l1.key, at);
    }
    batch.clear();
}

void
Simulator::issuePrefetch(unsigned core, unsigned slot,
                         const PrefetchCandidate &cand,
                         std::uint64_t trigger_pc, Cycle cycle,
                         PrefetchFillBatch &batch)
{
    CoreCtx &cc = *coreCtxs[core];
    Prefetcher &pf = *cc.prefetchers[slot];
    Addr line = cand.lineNum;

    if (cc.policyFiltersPrefetches &&
        cc.policy->filterPrefetch(pf.level(), trigger_pc,
                                  lineBase(line))) {
        pf.onPrefetchDropped(cand.meta);
        return;
    }

    bool from_dram = false;
    Cycle ready;

    if (pf.level() == CacheLevel::kL1D) {
        // One ref per level, shared by the probe/touch and the fill.
        const CacheRef l1ref = cc.l1.ref(line);
        const CacheRef l2ref = cc.l2.ref(line);
        if (cc.l1.contains(l1ref)) {
            pf.onPrefetchDropped(cand.meta); // already resident
            return;
        }
        PrefetchFillBatch::Entry patch{};
        if (cc.l2.touch(l2ref)) {
            ready = cycle + latL2;
        } else {
            // First shared-resource touch on this path: the LLC
            // bank owning the line.
            const BankedRef llcref = llc->ref(line);
            sharedTurn(core, llcref.bank);
            if (llc->touch(llcref)) {
                ready = cycle + latLlc;
            } else {
                // Off-chip: enqueue on the owning channel's
                // controller queue and fill every level eagerly
                // with a provisional readyAt — the real completion
                // cycle is patched in when the trigger window
                // drains (drainPrefetchFills), addressed by the
                // enqueue ticket. Cache state otherwise evolves
                // exactly as under scalar service: same probe
                // order, same fills, same victims, same LRU stamps.
                if (batch.full())
                    drainPrefetchFills(cc, batch);
                patch.ticket = dram->enqueue(
                    cycle + latLlc, line, AccessType::kPrefetch);
                sharedTurn(core, dramShard(patch.ticket.channel));
                ready = kPendingReady;
                from_dram = true;
                CacheEviction ev =
                    llc->fill(llcref, cycle, ready, true,
                              kNoFeedbackSlot, 0, true);
                patch.llc = PrefetchFillBatch::target(
                    llcref.ref, ev.filledWay);
                patch.llcBank =
                    static_cast<std::uint16_t>(llcref.bank);
                handleLlcEviction(core, ev);
                if (cc.ocp)
                    cc.ocp->onFill(line);
            }
        }
        // Fill the intermediate L2 on an off-chip prefetch path.
        if (from_dram) {
            CacheEviction l2ev = cc.l2.fill(l2ref, cycle, ready,
                                            true, kNoFeedbackSlot,
                                            0, true);
            patch.l2 =
                PrefetchFillBatch::target(l2ref, l2ev.filledWay);
        }
        CacheEviction ev =
            cc.l1.fill(l1ref, cycle, ready, true,
                       static_cast<std::uint8_t>(slot), cand.meta,
                       from_dram);
        if (ev.evictedUnusedPrefetch &&
            ev.evictedPfSlot < cc.prefetchers.size()) {
            PrefetcherSlotStats &eps = cc.pfStats[ev.evictedPfSlot];
            ++eps.uselessEvictions;
            if (ev.evictedPfFromDram)
                ++eps.fillsFromDramUnused;
            cc.prefetchers[ev.evictedPfSlot]->onPrefetchUseless(
                ev.evictedPfMeta);
        }
        if (from_dram) {
            patch.l1 = PrefetchFillBatch::target(l1ref, ev.filledWay);
            patch.fillsL1 = true;
            batch.push(patch);
        }
    } else { // kL2C
        const CacheRef l2ref = cc.l2.ref(line);
        if (cc.l2.contains(l2ref)) {
            pf.onPrefetchDropped(cand.meta);
            return;
        }
        const BankedRef llcref = llc->ref(line);
        PrefetchFillBatch::Entry patch{};
        // First shared-resource touch on the L2C prefetch path:
        // the LLC bank owning the line.
        sharedTurn(core, llcref.bank);
        if (llc->touch(llcref)) {
            ready = cycle + latLlc;
        } else {
            // Off-chip: same deferred-completion protocol as the
            // L1 path above, without the L1 fill.
            if (batch.full())
                drainPrefetchFills(cc, batch);
            patch.ticket = dram->enqueue(cycle + latLlc, line,
                                         AccessType::kPrefetch);
            sharedTurn(core, dramShard(patch.ticket.channel));
            ready = kPendingReady;
            from_dram = true;
            CacheEviction ev = llc->fill(llcref, cycle, ready, true,
                                         kNoFeedbackSlot, 0, true);
            patch.llc = PrefetchFillBatch::target(llcref.ref,
                                                  ev.filledWay);
            patch.llcBank = static_cast<std::uint16_t>(llcref.bank);
            handleLlcEviction(core, ev);
            if (cc.ocp)
                cc.ocp->onFill(line);
        }
        CacheEviction ev =
            cc.l2.fill(l2ref, cycle, ready, true,
                       static_cast<std::uint8_t>(slot), cand.meta,
                       from_dram);
        if (ev.evictedUnusedPrefetch &&
            ev.evictedPfSlot < cc.prefetchers.size()) {
            PrefetcherSlotStats &eps = cc.pfStats[ev.evictedPfSlot];
            ++eps.uselessEvictions;
            if (ev.evictedPfFromDram)
                ++eps.fillsFromDramUnused;
            cc.prefetchers[ev.evictedPfSlot]->onPrefetchUseless(
                ev.evictedPfMeta);
        }
        if (from_dram) {
            patch.l2 = PrefetchFillBatch::target(l2ref, ev.filledWay);
            batch.push(patch);
        }
    }

    PrefetcherSlotStats &ps = cc.pfStats[slot];
    ++ps.issued;
    if (from_dram)
        ++ps.fillsFromDram;
    ++cc.window.pfIssued[slot];
}

const std::uint16_t *
Simulator::popetPreparedRow(CoreCtx &cc, std::uint64_t pc, Addr addr)
{
    OcpBatchPlane &pl = cc.ocpPlane;
    const TraceRecord *rec = cc.core->windowRecords();
    if (pl.seq != cc.core->refillSequence()) {
        // Fresh record batch: one branchless pass over the kind
        // bytes builds the window's whole load-position column.
        // Eager beats the lazy chunked scan here — per-chunk call
        // and resync overhead exceeded the ~1 op/record column
        // build, and windows the predictor never touches still pay
        // nothing (this runs on the first predicted load only).
        pl.seq = cc.core->refillSequence();
        pl.cursor = 0;
        pl.computed = 0;
        const auto *kinds =
            reinterpret_cast<const unsigned char *>(rec) +
            offsetof(TraceRecord, kind);
        unsigned scan = cc.core->windowBase();
        // Deliberately the scalar kernel regardless of pl.backend:
        // a stride-24 byte scan gives AVX2 nothing to chew on but a
        // gather, and BM_SimdStridedCollect measures the gather at
        // ~0.7x of the branchless loop on gather-slow hosts. Both
        // implementations stay dispatchable (tests and benches pin
        // their equivalence); the hash kernels below do honor the
        // plane's backend.
        pl.count = simd::collectStridedByteEq(
            simd::Backend::kScalar, kinds,
            static_cast<unsigned>(sizeof(TraceRecord)), &scan,
            cc.core->windowLen(),
            static_cast<unsigned char>(InstrKind::kLoad),
            pl.loadPos.data(), OcpBatchPlane::kCapacity);
    }
    // The demand stream visits the window's loads in order, so the
    // cursor row matches on the first probe in the steady state.
    // On mismatch (post-restore window, or loads skipped while OCP
    // gating was off) scan forward: skipped rows were either
    // already served or never will be, and any (pc, addr) match is
    // exact because the indices are pure.
    for (;;) {
        if (pl.cursor == pl.count)
            return nullptr;
        const unsigned i = pl.cursor++;
        const TraceRecord &r = rec[pl.loadPos[i]];
        if (r.pc != pc || r.addr != addr)
            continue;
        if (i >= pl.computed) {
            // Materialize the next chunk of pure feature rows in
            // one SoA pass: gather the rows' (pc, addr) once and
            // run the backend's hash kernel over the whole chunk.
            // Rows the cursor already skipped ([computed, i)) can
            // never be served — the cursor only advances — so the
            // chunk starts at i.
            const unsigned end =
                std::min(pl.count, i + OcpBatchPlane::kChunk);
            const unsigned cnt = end - i;
            std::uint64_t pcs[OcpBatchPlane::kChunk];
            Addr addrs[OcpBatchPlane::kChunk];
            for (unsigned j = 0; j < cnt; ++j) {
                const TraceRecord &c = rec[pl.loadPos[i + j]];
                pcs[j] = c.pc;
                addrs[j] = c.addr;
            }
            PopetPredictor::pureFeatureIndicesBatch(
                pl.backend, pcs, addrs, cnt,
                &pl.idx[i * PopetPredictor::kPureFeatures],
                pl.memo);
            // Same gathered stream primes the prefetcher trigger
            // path (pure memo feed; results unchanged).
            if (cc.ipcp)
                cc.ipcp->prepareTriggerBatch(pcs, cnt);
            if (cc.sms)
                cc.sms->prepareTriggerBatch(pcs, addrs, cnt);
            pl.computed = end;
        }
        return &pl.idx[i * PopetPredictor::kPureFeatures];
    }
}

Cycle
Simulator::doLoad(unsigned core, std::uint64_t pc, Addr addr,
                  Cycle issue, bool &l1_miss)
{
    CoreCtx &cc = *coreCtxs[core];
    Addr line = lineNumber(addr);

    // Off-chip prediction happens as soon as the address is known.
    // With the batched inference plane active (cc.popet non-null),
    // the four (pc, addr)-pure feature indices come precomputed
    // from the window-collected SoA columns; only the PC-history
    // feature is hashed here. Bit-identical to the scalar path.
    bool ocp_pred = false;
    if (cc.ocp && cc.decision.ocpEnable) {
        const std::uint16_t *prep = nullptr;
        if (cc.popet) {
            // Steady-state fast path, inline: the plane tracks the
            // current window, the cursor row is already
            // materialized, and it matches this access. Everything
            // else (stale window, chunk boundary, skipped rows)
            // takes the out-of-line scan in popetPreparedRow.
            OcpBatchPlane &pl = cc.ocpPlane;
            if (pl.seq == cc.core->refillSequence() &&
                pl.cursor < pl.computed) {
                const TraceRecord &r =
                    cc.core->windowRecords()[pl.loadPos[pl.cursor]];
                if (r.pc == pc && r.addr == addr) {
                    prep = &pl.idx[pl.cursor *
                                   PopetPredictor::kPureFeatures];
                    ++pl.cursor;
                } else {
                    prep = popetPreparedRow(cc, pc, addr);
                }
            } else {
                prep = popetPreparedRow(cc, pc, addr);
            }
        }
        ocp_pred = prep ? cc.popet->predictPrepared(pc, addr, prep)
                        : cc.ocp->predictDemand(pc, addr);
    }

    bool went_offchip = false;
    Cycle completion;

    // Fused L1 -> L2 -> LLC demand walk: each level's coordinates
    // are computed exactly once and feed both the lookup and any
    // fill on the refill path. The dominant outcome — an MRU-way L1
    // hit on a plain demand line — resolves through the inline fast
    // probe without the full lookup (identical state updates).
    const CacheRef l1ref = cc.l1.ref(line);
    Cycle fast_ready;
    if (cc.l1.accessHitFast(l1ref, issue, fast_ready)) {
        if (!cc.levelSlots[0].empty()) {
            triggerLevel(core, CacheLevel::kL1D, pc, addr, true,
                         issue);
        }
        l1_miss = false;
        completion = std::max(issue + latL1, fast_ready);
        // Falls through to the shared demand-resolution tail below
        // (OCP accounting/training, policy hook, epoch check) with
        // went_offchip == false.
    } else {
        CacheLookup l1res = cc.l1.access(l1ref, issue);
        triggerLevel(core, CacheLevel::kL1D, pc, addr, l1res.hit,
                     issue);
        l1_miss = !l1res.hit;
        if (l1res.hit) {
            dispatchPrefetchFeedbackUsed(core, l1res, issue);
            completion = std::max(issue + latL1, l1res.readyAt);
        } else {
            const CacheRef l2ref = cc.l2.ref(line);
            CacheLookup l2res = cc.l2.access(l2ref, issue);
            triggerLevel(core, CacheLevel::kL2C, pc, addr,
                         l2res.hit, issue);
            if (l2res.hit) {
                dispatchPrefetchFeedbackUsed(core, l2res, issue);
                completion = std::max(issue + latL2, l2res.readyAt);
                cc.l1.fill(l1ref, issue, completion, false);
            } else {
                const BankedRef llcref = llc->ref(line);
                // Leaving the private L1/L2 hierarchy: the LLC
                // bank lookup (and any DRAM service behind it)
                // must commit in the sequential schedule's order.
                sharedTurn(core, llcref.bank);
                CacheLookup llcres = llc->access(llcref, issue);
                if (llcres.hit) {
                    dispatchPrefetchFeedbackUsed(core, llcres,
                                                 issue);
                    completion =
                        std::max(issue + latLlc, llcres.readyAt);
                    cc.l2.fill(l2ref, issue, completion, false);
                    cc.l1.fill(l1ref, issue, completion, false);
                } else {
                    went_offchip = true;
                    if (cc.pollutionBloom.mayContain(line))
                        ++cc.window.pollutionMisses;

                    Cycle done;
                    sharedTurn(core,
                               dramShard(dram->channelOf(line)));
                    if (ocp_pred) {
                        // Hermes path: the speculative request
                        // reaches the controller after the OCP
                        // request issue latency, hiding the on-chip
                        // lookup from the off-chip critical path.
                        done =
                            dram->serve(issue + cfg.ocpIssueLatency,
                                        line, AccessType::kOcp);
                        completion = std::max(done, issue + latL1);
                    } else {
                        done = dram->serve(issue + latLlc, line,
                                           AccessType::kDemandLoad);
                        completion = done;
                    }

                    CacheEviction ev =
                        llc->fill(llcref, issue, completion, false);
                    handleLlcEviction(core, ev);
                    cc.l2.fill(l2ref, issue, completion, false);
                    cc.l1.fill(l1ref, issue, completion, false);
                    if (cc.ocp)
                        cc.ocp->onFill(line);

                    ++cc.window.llcMisses;
                    cc.window.llcMissLatency += completion - issue;
                    ++cc.llcMissesTotal;
                    cc.llcMissLatencyTotal += completion - issue;
                }
                ++cc.window.llcDemandAccesses;
            }
        }
    }

    // A false-positive OCP prediction wasted one DRAM transfer.
    // Reachable without a prior LLC touch (on-chip hit), so it
    // takes the shared-state turn itself.
    if (ocp_pred && !went_offchip) {
        sharedTurn(core, dramShard(dram->channelOf(line)));
        dram->serve(issue + cfg.ocpIssueLatency, line,
                    AccessType::kOcp);
    }

    if (ocp_pred) {
        ++cc.window.ocpPredictions;
        ++cc.ocpPredictions;
        if (went_offchip) {
            ++cc.window.ocpCorrect;
            ++cc.ocpCorrect;
        }
    }
    if (cc.ocp && cc.decision.ocpEnable)
        cc.ocp->trainDemand(pc, addr, went_offchip);
    if (cc.policyObservesDemands)
        cc.policy->onDemandResolved(pc, addr, went_offchip);

    maybeEndEpoch(core);
    return completion;
}

void
Simulator::doStore(unsigned core, std::uint64_t pc, Addr addr,
                   Cycle cycle)
{
    CoreCtx &cc = *coreCtxs[core];
    Addr line = lineNumber(addr);

    const CacheRef l1ref = cc.l1.ref(line);
    Cycle fast_ready;
    if (cc.l1.accessHitFast(l1ref, cycle, fast_ready)) {
        if (!cc.levelSlots[0].empty()) {
            triggerLevel(core, CacheLevel::kL1D, pc, addr, true,
                         cycle);
        }
        return;
    }
    CacheLookup l1res = cc.l1.access(l1ref, cycle);
    triggerLevel(core, CacheLevel::kL1D, pc, addr, l1res.hit, cycle);
    if (l1res.hit) {
        dispatchPrefetchFeedbackUsed(core, l1res, cycle);
        return;
    }
    const CacheRef l2ref = cc.l2.ref(line);
    CacheLookup l2res = cc.l2.access(l2ref, cycle);
    triggerLevel(core, CacheLevel::kL2C, pc, addr, l2res.hit, cycle);
    if (l2res.hit) {
        dispatchPrefetchFeedbackUsed(core, l2res, cycle);
        cc.l1.fill(l1ref, cycle, cycle + latL2, false);
        return;
    }
    const BankedRef llcref = llc->ref(line);
    // Leaving the private hierarchy (store walk).
    sharedTurn(core, llcref.bank);
    CacheLookup llcres = llc->access(llcref, cycle);
    if (llcres.hit) {
        dispatchPrefetchFeedbackUsed(core, llcres, cycle);
        cc.l2.fill(l2ref, cycle, cycle + latLlc, false);
        cc.l1.fill(l1ref, cycle, cycle + latLlc, false);
        return;
    }
    // Write-allocate from DRAM; off the critical path but the
    // traffic is real.
    sharedTurn(core, dramShard(dram->channelOf(line)));
    Cycle done =
        dram->serve(cycle + latLlc, line, AccessType::kDemandStore);
    CacheEviction ev = llc->fill(llcref, cycle, done, false);
    handleLlcEviction(core, ev);
    cc.l2.fill(l2ref, cycle, done, false);
    cc.l1.fill(l1ref, cycle, done, false);
    if (cc.ocp)
        cc.ocp->onFill(line);
}

void
Simulator::maybeEndEpoch(unsigned core)
{
    CoreCtx &cc = *coreCtxs[core];
    std::uint64_t retired = cc.core->retired();
    if (retired < cc.epochStartInstr + cfg.epochInstructions)
        return;

    Cycle now = cc.core->now();
    const CoreCounters &cs = cc.core->counters();

    EpochStats stats = cc.window;
    stats.instructions = retired - cc.epochStartInstr;
    stats.cycles = now > cc.epochStartCycle
                       ? now - cc.epochStartCycle
                       : 1;
    stats.loads = cs.loads - cc.epochStartCounters.loads;
    stats.branches = cs.branches - cc.epochStartCounters.branches;
    stats.branchMispredicts =
        cs.branchMispredicts - cc.epochStartCounters.branchMispredicts;

    // The epoch summary samples the aggregate DRAM counters across
    // every channel; that read must see exactly the traffic the
    // sequential schedule ordered before this step, on all of them.
    sharedTurnAllDram(core);
    const DramCounters &life = dram->lifetime();
    stats.dramDemand = life.demandRequests - cc.lastDram.demandRequests;
    stats.dramPrefetch =
        life.prefetchRequests - cc.lastDram.prefetchRequests;
    stats.dramOcp = life.ocpRequests - cc.lastDram.ocpRequests;
    double busy = static_cast<double>(life.busBusyCycles -
                                      cc.lastBusBusy);
    // Busy cycles are summed across channels, and each channel can
    // be busy for the whole window — normalize by the channel count
    // so the feature stays a fraction of provisioned bandwidth
    // (identical to the historical formula at 1 channel).
    stats.bandwidthUsage =
        std::min(1.0, busy / static_cast<double>(stats.cycles) /
                          static_cast<double>(cfg.cores) /
                          static_cast<double>(cfg.dramChannels));

    cc.decision = cc.policy->onEpochEnd(stats);

    // Apply the decision: prefetcher degrees (Algorithm 1's d) and
    // per-epoch bandwidth feedback for Pythia-style prefetchers.
    for (unsigned slot = 0; slot < cc.prefetchers.size(); ++slot) {
        Prefetcher &pf = *cc.prefetchers[slot];
        auto d = static_cast<unsigned>(
            std::floor(cc.decision.degreeScale[slot] *
                       static_cast<double>(pf.maxDegree())));
        // An *enabled* prefetcher runs at degree >= 1: throttling
        // to zero would both contradict the enable decision and
        // starve a learning policy of the evidence that prefetching
        // can help.
        if (cc.decision.pfEnabled(slot) && d == 0)
            d = 1;
        pf.setDegree(d);
        pf.onEpochEnd(stats.bandwidthUsage);
    }

    // Reset the epoch window (section 5.2: trackers cleared).
    cc.window = EpochStats{};
    cc.epochStartInstr = retired;
    cc.epochStartCycle = now;
    cc.epochStartCounters = cs;
    cc.lastDram = life;
    cc.lastBusBusy = life.busBusyCycles;
    cc.pollutionBloom.clear();
}

SimResult
Simulator::run(const RunPlan &plan)
{
    const std::uint64_t warmup_per_core = plan.warmup;
    std::uint64_t total = plan.measured + plan.warmup;

    if (resumed) {
        // The snapshot froze the measurement bookkeeping mid-plan;
        // continuing under a different warmup would splice two
        // different measurement windows together.
        if (plan.warmup != resumeWarmup) {
            throw std::invalid_argument(
                "resumed run must use the warmup length its "
                "snapshot was taken at");
        }
    } else {
        measure.starts.assign(cfg.cores, MeasureStart{});
        measure.started.assign(cfg.cores, 0);
        measure.dramAtStart = DramCounters{};
        measure.maxNowAtStart = 0;
        measure.anyStarted = false;
        resumeWarmup = plan.warmup;
    }

    bool want_snapshot = !plan.snapshotAfterWarmup.empty();

    auto check_warmup = [&](unsigned c) {
        checkWarmup(c, warmup_per_core);
    };

    // The warmup-snapshot cut: the first inter-step point at which
    // every core has either crossed the warmup boundary or
    // exhausted its stream. Any inter-step point would restore
    // bit-identically (the stepping schedule is a pure function of
    // the component state); this particular cut is the earliest one
    // at which the remaining work is exactly the measured window.
    auto all_past_warmup = [&]() {
        for (unsigned c = 0; c < cfg.cores; ++c) {
            if (!measure.started[c] && !coreCtxs[c]->core->finished())
                return false;
        }
        return true;
    };
    auto maybe_snapshot = [&]() {
        if (want_snapshot && all_past_warmup()) {
            snapshot(plan.snapshotAfterWarmup);
            want_snapshot = false;
        }
    };

    if (cfg.cores == 1) {
        CoreCtx &cc = *coreCtxs[0];
        // Batched stepping up to the warmup boundary, then in one
        // drain — preserving the post-step snapshot semantics of
        // the generic path (the measurement snapshot lands after
        // the step that crosses the warmup boundary; for
        // warmup == 0 it lands after the first step, hence the max
        // with 1). A finite stream may end inside either span
        // (stepN returns short exactly then); the measurement
        // start is only sampled if the boundary was actually
        // reached. On a resumed simulator the core is already at
        // (or past) the boundary, so the first span is empty.
        std::uint64_t boundary = std::min(
            total, std::max<std::uint64_t>(warmup_per_core, 1));
        if (cc.core->retired() < boundary) {
            cc.core->stepN(boundary - cc.core->retired());
            check_warmup(0);
        }
        maybe_snapshot();
        if (!cc.core->finished() && cc.core->retired() < total)
            cc.core->stepN(total - cc.core->retired());
    } else {
        // Size the per-shard oracle before either engine appends
        // (the parallel stepper sizes it too; this covers the
        // sequential engine and keeps both identically shaped).
        if (stepLog)
            stepLog->shards.resize(totalShards());

        const bool use_par = useParallelEngine(plan);

        // Sequential engine: step the globally least-advanced
        // unfinished core to keep the cores loosely synchronized so
        // shared-resource contention is meaningful. The picker is
        // an indexed min-heap: O(log cores) per step instead of an
        // O(cores) rescan, with deterministic lowest-index-first
        // ties. The inner loop keeps stepping the picked core while
        // it would be re-picked anyway (stillTop), so batch-pulled
        // cores pay one heap sift per *burst* rather than per
        // instruction — the stepping order is bit-identical to the
        // one-instruction-per-pick schedule.
        // A core retires from the pick set either at its
        // instruction budget or the moment its finite stream
        // exhausts (finished()); the survivors keep the exact
        // least-advanced ordering — StepPicker::finish preserves
        // the heap invariant — so finish order and all counters
        // are a pure function of the per-core trajectories.
        //
        // Resume: rebuilding the picker from the restored per-core
        // frontiers reproduces the original continuation exactly.
        // The effective schedule is argmin over (now, core index) —
        // stillTop's burst batching produces "exactly the order
        // advance()+top() per instruction would" — so the heap
        // holding every unfinished core at its current frontier is
        // the same scheduler state the straight-through run was in
        // at the cut. Cores that had already left the pick set
        // (stream exhausted, or budget reached under this plan) are
        // finished out before the loop starts.
        //
        // Under the parallel engine this loop still runs the
        // pre-snapshot span: the warmup snapshot must be cut at the
        // exact sequential inter-step boundary, which concurrently
        // running cores would overshoot. until_snapshot makes it
        // return at that boundary (any inter-step point resumes
        // bit-identically — the schedule is a pure function of the
        // component state), handing the remainder to the parallel
        // engine.
        auto seq_engine = [&](bool until_snapshot) {
            StepPicker picker(cfg.cores);
            for (unsigned c = 0; c < cfg.cores; ++c)
                picker.advance(c, coreCtxs[c]->core->now());
            for (unsigned c = 0; c < cfg.cores; ++c) {
                CoreCtx &cc = *coreCtxs[c];
                if (cc.core->finished() ||
                    cc.core->retired() >= total) {
                    picker.finish(c);
                }
            }
            const bool logging = stepLog != nullptr;
            while (!picker.empty()) {
                unsigned pick = picker.top();
                CoreCtx &cc = *coreCtxs[pick];
                for (;;) {
                    if (cc.core->finished()) {
                        picker.finish(pick);
                        maybe_snapshot();
                        break;
                    }
                    if (logging) {
                        // Open the oracle record for this step:
                        // its key is the pre-step frontier, the
                        // same (now, core) pair the picker ordered
                        // by and the parallel engine's bound. The
                        // step stays open across all its shared
                        // touches; each shard logs at most once.
                        seqLogKey = cc.core->now();
                        seqLogOpen = true;
                        seqLoggedMask = 0;
                    }
                    cc.core->step();
                    check_warmup(pick);
                    seqLogOpen = false;
                    maybe_snapshot();
                    if (until_snapshot && !want_snapshot)
                        return;
                    if (cc.core->retired() >= total) {
                        picker.finish(pick);
                        break;
                    }
                    if (!picker.stillTop(pick, cc.core->now())) {
                        picker.advance(pick, cc.core->now());
                        break;
                    }
                }
                if (until_snapshot && !want_snapshot)
                    return;
            }
            // All streams may exhaust before any warmup crossing;
            // the snapshot request is still honored at the
            // terminal state.
            maybe_snapshot();
        };

        if (!use_par)
            seq_engine(false);
        else if (want_snapshot)
            seq_engine(true);
        if (use_par)
            runMultiParallel(total, warmup_per_core);
        maybe_snapshot();
    }

    SimResult result;
    Cycle max_now = 0;
    for (unsigned c = 0; c < cfg.cores; ++c) {
        CoreCtx &cc = *coreCtxs[c];
        const MeasureStart &ms = measure.starts[c];
        SimResult::PerCore pc;
        pc.workload = cc.workloadName;
        pc.completedInstructions = cc.core->retired();
        pc.streamExhausted = cc.core->finished();
        pc.instructions = cc.core->retired() - ms.instr;
        Cycle cyc = cc.core->now() > ms.cycle
                        ? cc.core->now() - ms.cycle
                        : 1;
        pc.cycles = cyc;
        pc.ipc = static_cast<double>(pc.instructions) /
                 static_cast<double>(cyc);
        pc.loads = cc.core->counters().loads - ms.loads;
        pc.stores = cc.core->counters().stores - ms.stores;
        pc.branchMispredicts =
            cc.core->counters().branchMispredicts - ms.mispredicts;
        pc.llcMisses = cc.llcMissesTotal - ms.llcMisses;
        pc.llcMissLatency =
            cc.llcMissLatencyTotal - ms.llcMissLatency;
        pc.pf = cc.pfStats;
        pc.ocpPredictions = cc.ocpPredictions;
        pc.ocpCorrect = cc.ocpCorrect;
        pc.actionHistogram = cc.policy->actionHistogram();
        result.cores.push_back(std::move(pc));
        max_now = std::max(max_now, cc.core->now());
    }

    const DramCounters &life = dram->lifetime();
    const DramCounters &at0 = measure.dramAtStart;
    result.dram.demandRequests =
        life.demandRequests - at0.demandRequests;
    result.dram.prefetchRequests =
        life.prefetchRequests - at0.prefetchRequests;
    result.dram.ocpRequests = life.ocpRequests - at0.ocpRequests;
    result.dram.rowHits = life.rowHits - at0.rowHits;
    result.dram.rowMisses = life.rowMisses - at0.rowMisses;
    result.dram.busBusyCycles =
        life.busBusyCycles - at0.busBusyCycles;
    Cycle window = max_now > measure.maxNowAtStart
                       ? max_now - measure.maxNowAtStart
                       : 1;
    // Aggregate utilization across channels: busy cycles are summed
    // over every channel's bus, so the window is scaled by the
    // channel count (identical to the historical formula at 1
    // channel).
    result.busUtilization = std::min(
        1.0, static_cast<double>(result.dram.busBusyCycles) /
                 static_cast<double>(window) /
                 static_cast<double>(cfg.dramChannels));
    return result;
}

void
Simulator::checkWarmup(unsigned c, std::uint64_t warmup_per_core)
{
    CoreCtx &cc = *coreCtxs[c];
    if (measure.started[c] || cc.core->retired() < warmup_per_core)
        return;
    // The per-core start sample touches only this core's state and
    // needs no ordering.
    measure.started[c] = 1;
    measure.starts[c] = {cc.core->retired(), cc.core->now(),
                         cc.core->counters().loads,
                         cc.core->counters().stores,
                         cc.core->counters().branchMispredicts,
                         cc.llcMissesTotal,
                         cc.llcMissLatencyTotal};
    // The global measurement anchor (DRAM counters, wall-clock
    // frontier) is shared state: sample it in commit order so the
    // first core to cross warmup — first in the *schedule*, not in
    // wall-clock arrival — anchors the window, exactly as under
    // the sequential engine. The sample reads every channel's
    // counters.
    sharedTurnAllDram(c);
    if (!measure.anyStarted) {
        measure.anyStarted = true;
        measure.dramAtStart = dram->lifetime();
        measure.maxNowAtStart = cc.core->now();
    }
}

void
Simulator::seqLogCommit(unsigned core, unsigned shard)
{
    const std::uint64_t bit = std::uint64_t{1} << shard;
    if (seqLoggedMask & bit)
        return;
    seqLoggedMask |= bit;
    stepLog->shards[shard].emplace_back(core, seqLogKey);
}

unsigned
Simulator::resolveStepThreads(const RunPlan &plan)
{
    unsigned t = plan.stepThreads;
    if (t == 0) {
        if (const char *env = std::getenv("ATHENA_STEP_THREADS")) {
            char *end = nullptr;
            unsigned long v = std::strtoul(env, &end, 10);
            if (end != env && *end == '\0')
                t = static_cast<unsigned>(v);
        }
    }
    if (t == 0) {
        t = std::thread::hardware_concurrency();
        if (t == 0)
            t = 1;
    }
    return t;
}

bool
Simulator::useParallelEngine(const RunPlan &plan) const
{
    if (cfg.cores < 2)
        return false;
    // Never stack per-core stepping threads on top of a fleet of
    // concurrent simulations (ExperimentRunner::parallelFor): the
    // fleet already owns the host's parallelism, and a nested
    // ThreadPool::run would execute inline-serially and leave the
    // stepping cores parked forever.
    if (ThreadPool::onWorkerThread() || ThreadPool::inPooledRun())
        return false;
    return resolveStepThreads(plan) >= cfg.cores;
}

void
Simulator::runMultiParallel(std::uint64_t total_per_core,
                            std::uint64_t warmup_per_core)
{
    ParallelStepper stepper(cfg.cores, totalShards(), stepLog);
    par = &stepper;

    auto worker = [&](std::size_t idx) {
        const unsigned c = static_cast<unsigned>(idx);
        CoreCtx &cc = *coreCtxs[c];
        CoreModel &core = *cc.core;
        while (!core.finished() &&
               core.retired() < total_per_core) {
            // The bound publication is simultaneously this step's
            // park key, the other cores' lookahead heartbeat, and
            // the previous step's grant release.
            stepper.beginStep(c, core.now());
            core.step();
            checkWarmup(c, warmup_per_core);
        }
        stepper.finish(c);
    };

    // Vehicle: the persistent pool when it is wide enough for
    // thread-per-core stepping (its workers plus this thread),
    // dedicated threads otherwise — parked cores only spin/yield,
    // so correctness never depends on the host actually having
    // cores many hardware threads.
    ThreadPool &pool = ThreadPool::instance();
    if (pool.workerCount() + 1 >= cfg.cores) {
        pool.run(cfg.cores, worker);
    } else {
        std::vector<std::thread> threads;
        threads.reserve(cfg.cores - 1);
        for (unsigned c = 1; c < cfg.cores; ++c)
            threads.emplace_back(worker, c);
        worker(0);
        for (auto &t : threads)
            t.join();
    }
    par = nullptr;
}

namespace
{

void
writeDramCounterBlock(SnapshotWriter &w, const DramCounters &d)
{
    w.u64(d.demandRequests);
    w.u64(d.prefetchRequests);
    w.u64(d.ocpRequests);
    w.u64(d.rowHits);
    w.u64(d.rowMisses);
    w.u64(d.busBusyCycles);
}

void
readDramCounterBlock(SnapshotReader &r, DramCounters &d)
{
    d.demandRequests = r.u64();
    d.prefetchRequests = r.u64();
    d.ocpRequests = r.u64();
    d.rowHits = r.u64();
    d.rowMisses = r.u64();
    d.busBusyCycles = r.u64();
}

void
writeCoreCounterBlock(SnapshotWriter &w, const CoreCounters &c)
{
    w.u64(c.instructions);
    w.u64(c.loads);
    w.u64(c.stores);
    w.u64(c.branches);
    w.u64(c.branchMispredicts);
}

void
readCoreCounterBlock(SnapshotReader &r, CoreCounters &c)
{
    c.instructions = r.u64();
    c.loads = r.u64();
    c.stores = r.u64();
    c.branches = r.u64();
    c.branchMispredicts = r.u64();
}

/** Per-core section tag: "c<i>/<what>". */
std::string
coreTag(unsigned core, const char *what)
{
    return "c" + std::to_string(core) + "/" + what;
}

} // namespace

void
Simulator::snapshot(const std::string &path) const
{
    SnapshotWriter w;
    saveTo(w);
    w.writeFile(path);
}

/*
 * Section layout. Every component writes its own tagged section so
 * a corrupted or geometry-mismatched snapshot fails with an error
 * naming the component, and sections can evolve independently
 * behind the file-level version:
 *
 *   meta       config content hash + core count + shard geometry
 *   resume     plan warmup + measurement-window bookkeeping
 *   llc/b<i>   one section per LLC bank
 *   dram/ch<j> one section per DRAM channel
 *   c<i>/wl     workload generator cursors
 *   c<i>/core   core pipeline + branch predictor
 *   c<i>/l1, c<i>/l2
 *   c<i>/pf<s>  prefetcher slot s
 *   c<i>/ocp    off-chip predictor (present when configured)
 *   c<i>/policy coordination policy learned state
 *   c<i>/epoch  epoch window + decision + diagnostics counters
 */
void
Simulator::saveTo(SnapshotWriter &w) const
{
    w.beginSection("meta");
    w.u64(cfg.configKey());
    w.u32(cfg.cores);
    w.u32(cfg.llcBanks);
    w.u32(cfg.dramChannels);
    w.endSection();

    w.beginSection("resume");
    w.u64(resumeWarmup);
    w.boolean(measure.anyStarted);
    writeDramCounterBlock(w, measure.dramAtStart);
    w.u64(measure.maxNowAtStart);
    for (unsigned c = 0; c < cfg.cores; ++c) {
        const MeasureStart &ms = measure.starts[c];
        w.boolean(measure.started[c] != 0);
        w.u64(ms.instr);
        w.u64(ms.cycle);
        w.u64(ms.loads);
        w.u64(ms.stores);
        w.u64(ms.mispredicts);
        w.u64(ms.llcMisses);
        w.u64(ms.llcMissLatency);
    }
    w.endSection();

    for (unsigned b = 0; b < llc->bankCount(); ++b) {
        w.beginSection("llc/b" + std::to_string(b));
        llc->bank(b).saveState(w);
        w.endSection();
    }

    for (unsigned ch = 0; ch < dram->channelCount(); ++ch) {
        w.beginSection("dram/ch" + std::to_string(ch));
        dram->channel(ch).saveState(w);
        w.endSection();
    }

    for (unsigned c = 0; c < cfg.cores; ++c) {
        const CoreCtx &cc = *coreCtxs[c];

        w.beginSection(coreTag(c, "wl"));
        cc.workload->saveState(w);
        w.endSection();

        w.beginSection(coreTag(c, "core"));
        cc.core->saveState(w);
        w.endSection();

        w.beginSection(coreTag(c, "l1"));
        cc.l1.saveState(w);
        w.endSection();

        w.beginSection(coreTag(c, "l2"));
        cc.l2.saveState(w);
        w.endSection();

        for (unsigned s = 0; s < cc.prefetchers.size(); ++s) {
            w.beginSection(coreTag(c, "pf") + std::to_string(s));
            cc.prefetchers[s]->saveState(w);
            w.endSection();
        }

        if (cc.ocp) {
            w.beginSection(coreTag(c, "ocp"));
            cc.ocp->saveState(w);
            w.endSection();
        }

        w.beginSection(coreTag(c, "policy"));
        cc.policy->saveState(w);
        w.endSection();

        w.beginSection(coreTag(c, "epoch"));
        writeCoordDecision(w, cc.decision);
        writeEpochStats(w, cc.window);
        w.u64(cc.epochStartInstr);
        w.u64(cc.epochStartCycle);
        writeCoreCounterBlock(w, cc.epochStartCounters);
        w.u64(cc.lastBusBusy);
        writeDramCounterBlock(w, cc.lastDram);
        cc.pollutionBloom.saveState(w);
        for (const PrefetcherSlotStats &ps : cc.pfStats) {
            w.u64(ps.issued);
            w.u64(ps.used);
            w.u64(ps.usedTimely);
            w.u64(ps.uselessEvictions);
            w.u64(ps.fillsFromDram);
            w.u64(ps.fillsFromDramUnused);
        }
        w.u64(cc.ocpPredictions);
        w.u64(cc.ocpCorrect);
        w.u64(cc.llcMissesTotal);
        w.u64(cc.llcMissLatencyTotal);
        w.endSection();
    }
}

void
Simulator::restoreFrom(SnapshotReader &r)
{
    r.openSection("meta");
    const std::uint64_t key = r.u64();
    const std::uint32_t snap_cores = r.u32();
    const std::uint32_t snap_banks = r.u32();
    const std::uint32_t snap_channels = r.u32();
    // Shard-geometry guards run before the config-key comparison so
    // a cross-geometry snapshot fails with an error naming the
    // mismatched dimension (the key differs too — llcBanks and
    // dramChannels are hashed — but "config key mismatch" would
    // hide which knob moved).
    if (snap_banks != cfg.llcBanks) {
        throw SnapshotError(
            "meta", "LLC bank count mismatch: snapshot has " +
                        std::to_string(snap_banks) +
                        ", configuration wants " +
                        std::to_string(cfg.llcBanks));
    }
    if (snap_channels != cfg.dramChannels) {
        throw SnapshotError(
            "meta", "DRAM channel count mismatch: snapshot has " +
                        std::to_string(snap_channels) +
                        ", configuration wants " +
                        std::to_string(cfg.dramChannels));
    }
    if (snap_cores != cfg.cores) {
        throw SnapshotError(
            "meta", "core count mismatch: snapshot has " +
                        std::to_string(snap_cores) +
                        ", configuration wants " +
                        std::to_string(cfg.cores));
    }
    if (key != cfg.configKey()) {
        throw SnapshotError(
            "meta",
            "snapshot was taken under a different system "
            "configuration (config key mismatch)");
    }

    r.openSection("resume");
    resumeWarmup = r.u64();
    measure.anyStarted = r.boolean();
    readDramCounterBlock(r, measure.dramAtStart);
    measure.maxNowAtStart = r.u64();
    measure.starts.assign(cfg.cores, MeasureStart{});
    measure.started.assign(cfg.cores, 0);
    for (unsigned c = 0; c < cfg.cores; ++c) {
        MeasureStart &ms = measure.starts[c];
        measure.started[c] = r.boolean() ? 1 : 0;
        ms.instr = r.u64();
        ms.cycle = r.u64();
        ms.loads = r.u64();
        ms.stores = r.u64();
        ms.mispredicts = r.u64();
        ms.llcMisses = r.u64();
        ms.llcMissLatency = r.u64();
    }

    for (unsigned b = 0; b < llc->bankCount(); ++b) {
        r.openSection("llc/b" + std::to_string(b));
        llc->bank(b).restoreState(r);
    }

    for (unsigned ch = 0; ch < dram->channelCount(); ++ch) {
        r.openSection("dram/ch" + std::to_string(ch));
        dram->channel(ch).restoreState(r);
    }

    for (unsigned c = 0; c < cfg.cores; ++c) {
        CoreCtx &cc = *coreCtxs[c];

        r.openSection(coreTag(c, "wl"));
        cc.workload->restoreState(r);

        r.openSection(coreTag(c, "core"));
        cc.core->restoreState(r);

        r.openSection(coreTag(c, "l1"));
        cc.l1.restoreState(r);

        r.openSection(coreTag(c, "l2"));
        cc.l2.restoreState(r);

        for (unsigned s = 0; s < cc.prefetchers.size(); ++s) {
            r.openSection(coreTag(c, "pf") + std::to_string(s));
            cc.prefetchers[s]->restoreState(r);
        }

        if (cc.ocp) {
            r.openSection(coreTag(c, "ocp"));
            cc.ocp->restoreState(r);
        }

        r.openSection(coreTag(c, "policy"));
        cc.policy->restoreState(r);

        r.openSection(coreTag(c, "epoch"));
        readCoordDecision(r, cc.decision);
        readEpochStats(r, cc.window);
        cc.epochStartInstr = r.u64();
        cc.epochStartCycle = r.u64();
        readCoreCounterBlock(r, cc.epochStartCounters);
        cc.lastBusBusy = r.u64();
        readDramCounterBlock(r, cc.lastDram);
        cc.pollutionBloom.restoreState(r);
        for (PrefetcherSlotStats &ps : cc.pfStats) {
            ps.issued = r.u64();
            ps.used = r.u64();
            ps.usedTimely = r.u64();
            ps.uselessEvictions = r.u64();
            ps.fillsFromDram = r.u64();
            ps.fillsFromDramUnused = r.u64();
        }
        cc.ocpPredictions = r.u64();
        cc.ocpCorrect = r.u64();
        cc.llcMissesTotal = r.u64();
        cc.llcMissLatencyTotal = r.u64();
        // The OCP batch plane is a pure cache keyed by the core's
        // refill sequence (which restarts at 0 on restore); drop it
        // so the first post-resume load re-collects from the
        // restored record window.
        cc.ocpPlane = OcpBatchPlane{};
    }

    resumed = true;
}

} // namespace athena

/**
 * @file
 * The simulator: composes workload generators, core timing models,
 * the private L1D/L2 + shared LLC hierarchy, the DRAM channel, the
 * prefetchers, the off-chip predictor, and the coordination policy
 * into a runnable single- or multi-core system.
 *
 * This is the substitution for ChampSim (DESIGN.md section 3): a
 * cycle-approximate model that preserves the three first-order
 * effects the paper's results hinge on — prediction accuracy, DRAM
 * bandwidth occupancy, and the on-chip/off-chip latency split.
 */

#ifndef ATHENA_SIM_SIMULATOR_HH
#define ATHENA_SIM_SIMULATOR_HH

#include <array>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "athena/bloom.hh"
#include "coord/policy.hh"
#include "cpu/core_model.hh"
#include "mem/cache.hh"
#include "mem/dram.hh"
#include "ocp/ocp.hh"
#include "prefetch/prefetcher.hh"
#include "sim/parallel_step.hh"
#include "sim/system_config.hh"
#include "trace/workload.hh"

namespace athena
{

class SnapshotReader;
class SnapshotWriter;

/** Cumulative per-prefetcher-slot statistics. */
struct PrefetcherSlotStats
{
    std::uint64_t issued = 0;
    std::uint64_t used = 0;
    std::uint64_t usedTimely = 0;
    std::uint64_t uselessEvictions = 0;
    /** Fills into the prefetcher's level that came from DRAM. */
    std::uint64_t fillsFromDram = 0;
    /** Of those, evicted without any demand touch (Fig. 3). */
    std::uint64_t fillsFromDramUnused = 0;

    double
    accuracy() const
    {
        return issued == 0 ? 0.0
                           : static_cast<double>(used) /
                                 static_cast<double>(issued);
    }

    double
    offChipFillInaccuracy() const
    {
        return fillsFromDram == 0
                   ? 0.0
                   : static_cast<double>(fillsFromDramUnused) /
                         static_cast<double>(fillsFromDram);
    }
};

/** Results of one simulation run. */
struct SimResult
{
    struct PerCore
    {
        std::string workload;
        double ipc = 0.0;
        std::uint64_t instructions = 0;
        std::uint64_t cycles = 0;
        /**
         * Lifetime retired-instruction count (warmup included).
         * Equals warmup + measured instructions for infinite
         * synthetic streams; for finite trace replays it is the
         * exact record count the stream produced before
         * exhausting.
         */
        std::uint64_t completedInstructions = 0;
        /** True when the core's workload stream ended before the
         *  requested instruction budget (finite trace replay). */
        bool streamExhausted = false;
        std::uint64_t loads = 0;
        std::uint64_t stores = 0;
        std::uint64_t branchMispredicts = 0;
        std::uint64_t llcMisses = 0;
        std::uint64_t llcMissLatency = 0;
        std::array<PrefetcherSlotStats, kMaxPrefetchers> pf{};
        std::uint64_t ocpPredictions = 0;
        std::uint64_t ocpCorrect = 0;
        /** Athena's per-action selection counts (Fig. 17). */
        std::array<std::uint64_t, 4> actionHistogram{};

        double
        avgLlcMissLatency() const
        {
            return llcMisses == 0
                       ? 0.0
                       : static_cast<double>(llcMissLatency) /
                             static_cast<double>(llcMisses);
        }

        double
        ocpAccuracy() const
        {
            return ocpPredictions == 0
                       ? 0.0
                       : static_cast<double>(ocpCorrect) /
                             static_cast<double>(ocpPredictions);
        }
    };

    std::vector<PerCore> cores;
    /** DRAM traffic during the measurement window. */
    DramCounters dram;
    /** Data-bus utilization over the measurement window. */
    double busUtilization = 0.0;

    /** Single-core convenience accessor. */
    double ipc() const { return cores.empty() ? 0.0 : cores[0].ipc; }
};

/**
 * One run's per-core instruction budget. Measured instructions are
 * counted after the warmup boundary; a non-empty snapshotAfterWarmup
 * writes a full-state snapshot (see Simulator::snapshot) the moment
 * every core has crossed that boundary (or exhausted its stream),
 * so a later Simulator constructed with the resume overload replays
 * only the measured window — bit-identically to the straight-through
 * run.
 */
struct RunPlan
{
    RunPlan() = default;
    /** The common case: measured + warmup, defaults elsewhere. */
    RunPlan(std::uint64_t measured_instr, std::uint64_t warmup_instr)
        : measured(measured_instr), warmup(warmup_instr)
    {}

    std::uint64_t measured = 0;
    std::uint64_t warmup = 0;
    /** Snapshot destination path; empty = no snapshot. */
    std::string snapshotAfterWarmup;
    /**
     * Stepping thread budget for multi-core runs.
     *
     *   0       auto: honor ATHENA_STEP_THREADS if set, else use
     *           std::thread::hardware_concurrency() — i.e. the
     *           parallel engine is on by default for cores >= 2
     *           whenever the host has enough hardware threads.
     *   1       force the sequential StepPicker engine.
     *   >= cores  run the parallel engine (one stepping context
     *           per core).
     *
     * Values in (1, cores) fall back to sequential: the engine is
     * thread-per-core and does not multiplex cores onto fewer
     * threads. Either engine produces bit-identical results; the
     * knob only selects the execution strategy. The parallel
     * engine also self-disables inside ExperimentRunner fleets
     * (ThreadPool::onWorkerThread/inPooledRun) so fleet parallelism
     * is never oversubscribed, and for single-core runs.
     */
    unsigned stepThreads = 0;
};

/**
 * One simulated system instance. Construct, then run() once;
 * construct a fresh Simulator for each run (or resume one from a
 * snapshot).
 */
class Simulator
{
  public:
    /**
     * @param config    the system configuration
     * @param workloads one spec per core (size must equal
     *                  config.cores)
     */
    Simulator(const SystemConfig &config,
              const std::vector<WorkloadSpec> &workloads);

    /**
     * Resume a previously snapshotted system: constructs the
     * identical component tree and restores every section of the
     * snapshot at @p resume_from into it. The config/workloads must
     * match the ones the snapshot was taken under (checked via
     * SystemConfig::configKey and per-section geometry guards;
     * SnapshotError otherwise). The subsequent run() must use the
     * warmup length the snapshot was taken at and continues the
     * original schedule bit-identically.
     */
    Simulator(const SystemConfig &config,
              const std::vector<WorkloadSpec> &workloads,
              const std::string &resume_from);
    ~Simulator();

    Simulator(const Simulator &) = delete;
    Simulator &operator=(const Simulator &) = delete;

    /**
     * Run the plan's warmup + measured instructions per core and
     * return the measured-window results.
     *
     * A core whose workload stream ends early (finite trace
     * replay) retires from the stepping loop deterministically: it
     * leaves the multi-core pick set the moment it exhausts, the
     * remaining cores keep their exact least-advanced ordering,
     * and its PerCore result reports the exact completed
     * instruction count with streamExhausted set. A core that
     * exhausts before crossing the warmup boundary reports its
     * whole run as the measured window.
     *
     * On a resumed simulator the plan's warmup must equal the
     * snapshot's (std::invalid_argument otherwise); the warmup
     * instructions are already retired, so only the measured span
     * is simulated.
     */
    SimResult run(const RunPlan &plan);

    /**
     * Attach a per-shard shared-step commit-order log (test
     * oracle). Both engines append one (core, pre-step frontier)
     * entry to every shard (LLC bank / DRAM channel) a multi-core
     * step touches, in that shard's commit order; the parallel
     * engine must reproduce the sequential engine's per-shard
     * projections verbatim. Must be set before run(); the caller
     * owns the log. Single-core runs record nothing (there is no
     * cross-core schedule to verify).
     */
    void setSharedStepLog(SharedStepLog *log) { stepLog = log; }

    /**
     * Write the complete simulator state — every core, cache,
     * prefetcher, predictor, policy, workload cursor, the DRAM
     * channel, and the measurement bookkeeping — to @p path in the
     * versioned ASNP format (see snapshot/snapshot.hh). Only legal
     * between instruction steps (the DRAM request queue must be
     * empty; Dram::saveState enforces this). Throws SnapshotError
     * on I/O failure.
     */
    void snapshot(const std::string &path) const;

    /** The coordination policy of a core (tests introspect). */
    CoordinationPolicy &policy(unsigned core = 0);

  private:
    friend class CoreMemAdapter;

    struct CoreCtx;
    /** Deferred-completion targets of one trigger window's
     *  DRAM-bound prefetch fills (defined in simulator.cc). */
    struct PrefetchFillBatch;

    // Memory-path internals (called via the per-core adapter).
    Cycle doLoad(unsigned core, std::uint64_t pc, Addr addr,
                 Cycle issue, bool &l1_miss);
    void doStore(unsigned core, std::uint64_t pc, Addr addr,
                 Cycle cycle);

    void triggerLevel(unsigned core, CacheLevel level,
                      std::uint64_t pc, Addr addr, bool hit,
                      Cycle cycle);
    void issuePrefetch(unsigned core, unsigned slot,
                       const PrefetchCandidate &cand,
                       std::uint64_t trigger_pc, Cycle cycle,
                       PrefetchFillBatch &batch);
    void drainPrefetchFills(CoreCtx &cc, PrefetchFillBatch &batch);

    // Batched SoA inference plane (window-collected POPET feature
    // columns; see the OcpBatchPlane doc in simulator.cc).
    /** The prepared pure-feature row for this demand load, or null
     *  when the plane has no matching row (scalar fallback);
     *  discovers load rows and materializes feature chunks lazily
     *  (doLoad inlines the steady-state fast path). */
    const std::uint16_t *popetPreparedRow(CoreCtx &cc,
                                          std::uint64_t pc,
                                          Addr addr);

    void handleLlcEviction(unsigned core, const CacheEviction &ev);
    void dispatchPrefetchFeedbackUsed(unsigned core,
                                      const CacheLookup &res,
                                      Cycle demand_cycle);
    void maybeEndEpoch(unsigned core);

    // Parallel stepping engine (tentpole of PR 7; see
    // parallel_step.hh for the determinism argument).
    /** Effective stepping-thread budget for @p plan (knob doc on
     *  RunPlan::stepThreads). */
    static unsigned resolveStepThreads(const RunPlan &plan);
    /** True when this run should use the parallel engine. */
    bool useParallelEngine(const RunPlan &plan) const;
    /** Step all cores to completion concurrently, bit-identically
     *  to the sequential schedule. */
    void runMultiParallel(std::uint64_t total_per_core,
                          std::uint64_t warmup_per_core);
    /** Latch a core's measurement-window start once it crosses the
     *  warmup boundary (engine-agnostic; ordered via sharedTurn). */
    void checkWarmup(unsigned core, std::uint64_t warmup_per_core);

    /**
     * Shared-state gate, called at every shared touch point on the
     * memory path with the shard (LLC bank / DRAM channel in the
     * SharedShard id space) being touched. Under the parallel
     * engine it parks the core until its step's turn in the
     * sequential commit order (the wait is global — see
     * parallel_step.hh on why per-shard grants are unsound without
     * footprint declaration — so only the first shared touch of a
     * step can block) and records the touch on the shard's commit
     * log; under the sequential engine it only feeds the per-shard
     * commit-order oracle. No-op (one predicted branch) when
     * neither is active.
     */
    void
    sharedTurn(unsigned core, unsigned shard)
    {
        if (par)
            par->ensureTurn(core, shard);
        else if (stepLog && seqLogOpen)
            seqLogCommit(core, shard);
    }

    /** Shard id of DRAM channel @p ch (LLC banks occupy [0, B)). */
    unsigned dramShard(unsigned ch) const
    {
        return cfg.llcBanks + ch;
    }

    /** Total shard count: LLC banks + DRAM channels. */
    unsigned totalShards() const
    {
        return cfg.llcBanks + cfg.dramChannels;
    }

    /**
     * Order + log a read of every DRAM channel (epoch/warmup
     * lifetime sampling reads the aggregate counters): one global
     * wait, one commit-log entry per channel shard.
     */
    void
    sharedTurnAllDram(unsigned core)
    {
        for (unsigned ch = 0; ch < cfg.dramChannels; ++ch)
            sharedTurn(core, dramShard(ch));
    }

    void seqLogCommit(unsigned core, unsigned shard);

    // Snapshot plumbing (section layout in simulator.cc).
    void saveTo(SnapshotWriter &w) const;
    void restoreFrom(SnapshotReader &r);

    /** Measurement-window start sample of one core. */
    struct MeasureStart
    {
        std::uint64_t instr = 0;
        Cycle cycle = 0;
        std::uint64_t loads = 0;
        std::uint64_t stores = 0;
        std::uint64_t mispredicts = 0;
        std::uint64_t llcMisses = 0;
        std::uint64_t llcMissLatency = 0;
    };

    /**
     * The run's measurement bookkeeping. A member (not run()-local)
     * so a warmup snapshot captures it and a resumed run continues
     * the same measurement window.
     */
    struct MeasureState
    {
        std::vector<MeasureStart> starts;
        std::vector<std::uint8_t> started;
        DramCounters dramAtStart;
        Cycle maxNowAtStart = 0;
        bool anyStarted = false;
    };

    SystemConfig cfg;
    std::vector<std::unique_ptr<CoreCtx>> coreCtxs;

    MeasureState measure;
    /** Active parallel-stepping coordinator, or null (sequential). */
    ParallelStepper *par = nullptr;
    /** Commit-order oracle sink (tests), or null. */
    SharedStepLog *stepLog = nullptr;
    /** Sequential-engine oracle bookkeeping: the in-flight step's
     *  key, whether a step is open, and which shards the step has
     *  already logged (bit per shard id). */
    Cycle seqLogKey = 0;
    bool seqLogOpen = false;
    std::uint64_t seqLoggedMask = 0;
    /** True when this instance was restored from a snapshot. */
    bool resumed = false;
    /** Warmup length the snapshot (or current run) was taken at. */
    std::uint64_t resumeWarmup = 0;

    // Cumulative round-trip latencies (Table 5), hoisted out of the
    // per-access path: identical for every core and every access.
    Cycle latL1 = 0;  ///< L1 round trip.
    Cycle latL2 = 0;  ///< L1 + L2.
    Cycle latLlc = 0; ///< L1 + L2 + LLC.

    // Shared resources: the sharded shared-memory plane. With the
    // default 1-bank/1-channel geometry both behave bit-identically
    // to the former monolithic Cache/Dram singletons.
    std::unique_ptr<BankedLlc> llc;
    std::unique_ptr<ChanneledDram> dram;
};

} // namespace athena

#endif // ATHENA_SIM_SIMULATOR_HH

/**
 * @file
 * Versioned, mmap-loadable simulator snapshot format ("ASNP") and
 * the uniform save/restore component contract built on it.
 *
 * Layout (all little-endian fixed-width, in the spirit of the ATRC
 * binary trace format):
 *
 *   offset 0   magic "ASNP" (4 bytes)
 *          4   u16 version (kSnapshotVersion)
 *          6   u16 tag field width (kSnapshotTagBytes)
 *          8   u32 section count
 *         12   u32 reserved (0)
 *         16   section table: count x { char tag[24]; u64 offset;
 *              u64 length; u64 checksum }
 *              payload sections (offsets are absolute)
 *
 * Every component serializes into its own named section via
 * SnapshotWriter; SnapshotReader maps the file read-only (buffered
 * read fallback), verifies a per-section FNV-1a checksum when a
 * section is opened, and bounds-checks every primitive read against
 * the section extent. All failure modes — missing file, bad magic,
 * wrong version, truncated table or payload, corrupted bytes,
 * geometry mismatches — raise SnapshotError carrying the offending
 * section's tag, never UB.
 *
 * The component contract: each stateful component implements
 *   void saveState(SnapshotWriter &w) const;
 *   void restoreState(SnapshotReader &r);
 * writing/reading the *same* field sequence, geometry first (via
 * expectU32/expectU64 on restore), inside a section the owner
 * opened. Polymorphic hierarchies (Prefetcher, OffChipPredictor,
 * CoordinationPolicy, WorkloadGenerator) expose the pair as
 * virtuals with no-op defaults for stateless implementations.
 */

#ifndef ATHENA_SNAPSHOT_SNAPSHOT_HH
#define ATHENA_SNAPSHOT_SNAPSHOT_HH

#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

namespace athena
{

/** Format version: bump on any incompatible layout change.
 *  v2: sharded shared-memory plane — per-shard `llc/b<i>` /
 *  `dram/ch<j>` sections and shard geometry in `meta`. */
constexpr std::uint16_t kSnapshotVersion = 2;
/** Width of the section tag field (NUL-padded). */
constexpr std::size_t kSnapshotTagBytes = 24;
/** Snapshot file magic. */
constexpr char kSnapshotMagic[4] = {'A', 'S', 'N', 'P'};

/**
 * Typed snapshot failure: every load/validation error names the
 * section it occurred in (empty for file-level failures such as a
 * bad magic or a truncated header).
 */
class SnapshotError : public std::runtime_error
{
  public:
    SnapshotError(std::string section_tag, const std::string &message)
        : std::runtime_error(
              section_tag.empty()
                  ? message
                  : "section '" + section_tag + "': " + message),
          tag(std::move(section_tag))
    {}

    /** Tag of the offending section ("" = file-level error). */
    const std::string &section() const { return tag; }

  private:
    std::string tag;
};

/**
 * Accumulates named sections of little-endian fixed-width fields
 * and serializes them with the header + section table + checksums.
 */
class SnapshotWriter
{
  public:
    /** Open a new section; sections must not nest. */
    void beginSection(const std::string &tag);
    /** Close the current section (computes its checksum). */
    void endSection();

    void u8(std::uint8_t v) { payload.push_back(v); }
    void u16(std::uint16_t v);
    void u32(std::uint32_t v);
    void u64(std::uint64_t v);
    void i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }
    void i32(std::int32_t v) { u32(static_cast<std::uint32_t>(v)); }
    void f64(double v);
    void boolean(bool v) { u8(v ? 1 : 0); }
    void bytes(const void *p, std::size_t n);

    void
    vecU64(const std::vector<std::uint64_t> &v)
    {
        u64(v.size());
        for (std::uint64_t x : v)
            u64(x);
    }

    void
    vecU8(const std::vector<std::uint8_t> &v)
    {
        u64(v.size());
        bytes(v.data(), v.size());
    }

    /** Serialize header + table + payload into one buffer. */
    std::vector<std::uint8_t> serialize() const;

    /** Serialize to a file; throws SnapshotError on I/O failure. */
    void writeFile(const std::string &path) const;

  private:
    struct Section
    {
        std::string tag;
        std::size_t start = 0; ///< Payload-relative offset.
        std::size_t length = 0;
        std::uint64_t checksum = 0;
    };

    std::vector<std::uint8_t> payload;
    std::vector<Section> sections;
    bool inSection = false;
};

/**
 * Loads a snapshot file (mmap with buffered-read fallback) and
 * serves bounds-checked primitive reads from named sections.
 */
class SnapshotReader
{
  public:
    /** Open and validate header + table; throws SnapshotError. */
    explicit SnapshotReader(const std::string &path);
    /** In-memory snapshot (tests, benches). */
    explicit SnapshotReader(std::vector<std::uint8_t> buffer);
    ~SnapshotReader();

    SnapshotReader(const SnapshotReader &) = delete;
    SnapshotReader &operator=(const SnapshotReader &) = delete;

    /** True when the snapshot contains section @p tag. */
    bool hasSection(const std::string &tag) const;

    /**
     * Open section @p tag for reading (verifies its checksum;
     * throws SnapshotError when missing, truncated, or corrupt).
     * Subsequent reads consume the section front to back.
     */
    void openSection(const std::string &tag);

    std::uint8_t u8();
    std::uint16_t u16();
    std::uint32_t u32();
    std::uint64_t u64();
    std::int64_t i64() { return static_cast<std::int64_t>(u64()); }
    std::int32_t i32() { return static_cast<std::int32_t>(u32()); }
    double f64();
    bool boolean() { return u8() != 0; }
    void bytes(void *p, std::size_t n);

    std::vector<std::uint64_t> vecU64();
    std::vector<std::uint8_t> vecU8();

    /**
     * Geometry guards: read one value and require it to equal
     * @p want, throwing SnapshotError naming the current section
     * and @p what on mismatch.
     */
    void expectU32(std::uint32_t want, const char *what);
    void expectU64(std::uint64_t want, const char *what);

    /** Bytes left unread in the open section. */
    std::size_t remaining() const { return secEnd - cursor; }

    /** Tag of the currently open section (diagnostics). */
    const std::string &currentSection() const { return curTag; }

  private:
    struct Entry
    {
        std::string tag;
        std::size_t offset = 0;
        std::size_t length = 0;
        std::uint64_t checksum = 0;
        bool verified = false;
    };

    void parse();
    const Entry *find(const std::string &tag) const;
    /** Throw a truncation error for the open section. */
    [[noreturn]] void underflow(std::size_t need);

    const std::uint8_t *data = nullptr;
    std::size_t size = 0;

    /** mmap bookkeeping; base null when not mapped. */
    void *mapBase = nullptr;
    std::size_t mapLen = 0;
    /** Owned buffer (in-memory ctor or read fallback). */
    std::vector<std::uint8_t> owned;

    std::vector<Entry> entries;
    std::string curTag;
    std::size_t cursor = 0;
    std::size_t secEnd = 0;
};

/** FNV-1a 64-bit checksum used for section integrity. */
std::uint64_t snapshotChecksum(const std::uint8_t *p, std::size_t n);

} // namespace athena

#endif // ATHENA_SNAPSHOT_SNAPSHOT_HH

/**
 * @file
 * Snapshot writer/reader implementation.
 */

#include "snapshot/snapshot.hh"

#include <cstdio>
#include <cstring>

#ifdef __unix__
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#define ATHENA_SNAPSHOT_HAVE_MMAP 1
#endif

namespace athena
{

namespace
{

constexpr std::size_t kHeaderBytes = 16;
constexpr std::size_t kTableEntryBytes =
    kSnapshotTagBytes + 8 + 8 + 8;

void
putU16(std::vector<std::uint8_t> &out, std::uint16_t v)
{
    out.push_back(static_cast<std::uint8_t>(v));
    out.push_back(static_cast<std::uint8_t>(v >> 8));
}

void
putU32(std::vector<std::uint8_t> &out, std::uint32_t v)
{
    for (int i = 0; i < 4; ++i)
        out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void
putU64(std::vector<std::uint8_t> &out, std::uint64_t v)
{
    for (int i = 0; i < 8; ++i)
        out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void
putU16At(std::uint8_t *p, std::uint16_t v)
{
    p[0] = static_cast<std::uint8_t>(v);
    p[1] = static_cast<std::uint8_t>(v >> 8);
}

void
putU32At(std::uint8_t *p, std::uint32_t v)
{
    for (int i = 0; i < 4; ++i)
        p[i] = static_cast<std::uint8_t>(v >> (8 * i));
}

void
putU64At(std::uint8_t *p, std::uint64_t v)
{
    for (int i = 0; i < 8; ++i)
        p[i] = static_cast<std::uint8_t>(v >> (8 * i));
}

std::uint16_t
getU16(const std::uint8_t *p)
{
    return static_cast<std::uint16_t>(p[0] |
                                      (std::uint32_t{p[1]} << 8));
}

std::uint32_t
getU32(const std::uint8_t *p)
{
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i)
        v |= std::uint32_t{p[i]} << (8 * i);
    return v;
}

std::uint64_t
getU64(const std::uint8_t *p)
{
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i)
        v |= std::uint64_t{p[i]} << (8 * i);
    return v;
}

} // namespace

std::uint64_t
snapshotChecksum(const std::uint8_t *p, std::size_t n)
{
    std::uint64_t h = 0xcbf29ce484222325ull;
    for (std::size_t i = 0; i < n; ++i) {
        h ^= p[i];
        h *= 0x100000001b3ull;
    }
    return h;
}

// ---------------------------------------------------------------
// SnapshotWriter
// ---------------------------------------------------------------

void
SnapshotWriter::beginSection(const std::string &tag)
{
    if (inSection) {
        throw SnapshotError(tag, "beginSection inside open section '" +
                                     sections.back().tag + "'");
    }
    if (tag.empty() || tag.size() >= kSnapshotTagBytes)
        throw SnapshotError(tag, "section tag empty or too long");
    Section s;
    s.tag = tag;
    s.start = payload.size();
    sections.push_back(std::move(s));
    inSection = true;
}

void
SnapshotWriter::endSection()
{
    if (!inSection)
        throw SnapshotError("", "endSection with no open section");
    Section &s = sections.back();
    s.length = payload.size() - s.start;
    s.checksum = snapshotChecksum(payload.data() + s.start, s.length);
    inSection = false;
}

void
SnapshotWriter::u16(std::uint16_t v)
{
    putU16(payload, v);
}

void
SnapshotWriter::u32(std::uint32_t v)
{
    putU32(payload, v);
}

void
SnapshotWriter::u64(std::uint64_t v)
{
    putU64(payload, v);
}

void
SnapshotWriter::f64(double v)
{
    std::uint64_t bits;
    static_assert(sizeof(bits) == sizeof(v), "double width");
    std::memcpy(&bits, &v, sizeof(bits));
    u64(bits);
}

void
SnapshotWriter::bytes(const void *p, std::size_t n)
{
    const auto *b = static_cast<const std::uint8_t *>(p);
    payload.insert(payload.end(), b, b + n);
}

std::vector<std::uint8_t>
SnapshotWriter::serialize() const
{
    if (inSection) {
        throw SnapshotError(sections.back().tag,
                            "serialize with section still open");
    }
    const std::size_t payload_base =
        kHeaderBytes + sections.size() * kTableEntryBytes;
    // Pre-size the buffer and fill by offset (rather than growing
    // through insert) so the exact layout is explicit and GCC's LTO
    // alias analysis doesn't misjudge the allocation size.
    std::vector<std::uint8_t> out(payload_base + payload.size());
    std::uint8_t *p = out.data();
    std::memcpy(p, kSnapshotMagic, 4);
    putU16At(p + 4, kSnapshotVersion);
    putU16At(p + 6, static_cast<std::uint16_t>(kSnapshotTagBytes));
    putU32At(p + 8, static_cast<std::uint32_t>(sections.size()));
    putU32At(p + 12, 0);
    p += kHeaderBytes;
    for (const Section &s : sections) {
        std::memset(p, 0, kSnapshotTagBytes);
        std::memcpy(p, s.tag.data(), s.tag.size());
        putU64At(p + kSnapshotTagBytes, payload_base + s.start);
        putU64At(p + kSnapshotTagBytes + 8, s.length);
        putU64At(p + kSnapshotTagBytes + 16, s.checksum);
        p += kTableEntryBytes;
    }
    if (!payload.empty())
        std::memcpy(p, payload.data(), payload.size());
    return out;
}

void
SnapshotWriter::writeFile(const std::string &path) const
{
    std::vector<std::uint8_t> buf = serialize();
    std::FILE *f = std::fopen(path.c_str(), "wb");
    if (!f)
        throw SnapshotError("", "cannot open '" + path +
                                    "' for writing");
    std::size_t wrote = std::fwrite(buf.data(), 1, buf.size(), f);
    bool flush_ok = std::fclose(f) == 0;
    if (wrote != buf.size() || !flush_ok) {
        std::remove(path.c_str());
        throw SnapshotError("", "short write to '" + path + "'");
    }
}

// ---------------------------------------------------------------
// SnapshotReader
// ---------------------------------------------------------------

SnapshotReader::SnapshotReader(const std::string &path)
{
#ifdef ATHENA_SNAPSHOT_HAVE_MMAP
    int fd = ::open(path.c_str(), O_RDONLY);
    if (fd < 0)
        throw SnapshotError("", "cannot open snapshot '" + path + "'");
    struct stat st;
    if (::fstat(fd, &st) != 0 || st.st_size < 0) {
        ::close(fd);
        throw SnapshotError("", "cannot stat snapshot '" + path + "'");
    }
    mapLen = static_cast<std::size_t>(st.st_size);
    void *base = mapLen == 0
                     ? MAP_FAILED
                     : ::mmap(nullptr, mapLen, PROT_READ, MAP_PRIVATE,
                              fd, 0);
    if (base != MAP_FAILED) {
        mapBase = base;
        data = static_cast<const std::uint8_t *>(base);
        size = mapLen;
        ::close(fd);
    } else {
        // Read fallback (e.g. filesystems without mmap support).
        owned.resize(mapLen);
        std::size_t got = 0;
        while (got < mapLen) {
            ssize_t n = ::read(fd, owned.data() + got, mapLen - got);
            if (n <= 0)
                break;
            got += static_cast<std::size_t>(n);
        }
        ::close(fd);
        mapLen = 0;
        if (got != owned.size())
            throw SnapshotError("", "short read of '" + path + "'");
        data = owned.data();
        size = owned.size();
    }
#else
    std::FILE *f = std::fopen(path.c_str(), "rb");
    if (!f)
        throw SnapshotError("", "cannot open snapshot '" + path + "'");
    std::fseek(f, 0, SEEK_END);
    long len = std::ftell(f);
    std::fseek(f, 0, SEEK_SET);
    owned.resize(len > 0 ? static_cast<std::size_t>(len) : 0);
    std::size_t got = std::fread(owned.data(), 1, owned.size(), f);
    std::fclose(f);
    if (got != owned.size())
        throw SnapshotError("", "short read of '" + path + "'");
    data = owned.data();
    size = owned.size();
#endif
    parse();
}

SnapshotReader::SnapshotReader(std::vector<std::uint8_t> buffer)
    : owned(std::move(buffer))
{
    data = owned.data();
    size = owned.size();
    parse();
}

SnapshotReader::~SnapshotReader()
{
#ifdef ATHENA_SNAPSHOT_HAVE_MMAP
    if (mapBase)
        ::munmap(mapBase, mapLen);
#endif
}

void
SnapshotReader::parse()
{
    if (size < kHeaderBytes)
        throw SnapshotError("", "truncated snapshot header");
    if (std::memcmp(data, kSnapshotMagic, 4) != 0)
        throw SnapshotError("", "bad snapshot magic");
    std::uint16_t version = getU16(data + 4);
    if (version != kSnapshotVersion) {
        throw SnapshotError(
            "", "unsupported snapshot version " +
                    std::to_string(version) + " (expected " +
                    std::to_string(kSnapshotVersion) + ")");
    }
    std::uint16_t tag_bytes = getU16(data + 6);
    if (tag_bytes != kSnapshotTagBytes)
        throw SnapshotError("", "bad section tag width");
    std::uint32_t count = getU32(data + 8);
    std::size_t table_end =
        kHeaderBytes + std::size_t{count} * kTableEntryBytes;
    if (table_end > size)
        throw SnapshotError("", "truncated section table");
    entries.reserve(count);
    for (std::uint32_t i = 0; i < count; ++i) {
        const std::uint8_t *e =
            data + kHeaderBytes + std::size_t{i} * kTableEntryBytes;
        Entry entry;
        std::size_t tag_len = 0;
        while (tag_len < kSnapshotTagBytes && e[tag_len] != 0)
            ++tag_len;
        entry.tag.assign(reinterpret_cast<const char *>(e), tag_len);
        entry.offset = getU64(e + kSnapshotTagBytes);
        entry.length = getU64(e + kSnapshotTagBytes + 8);
        entry.checksum = getU64(e + kSnapshotTagBytes + 16);
        if (entry.offset < table_end ||
            entry.offset + entry.length > size ||
            entry.offset + entry.length < entry.offset) {
            throw SnapshotError(entry.tag,
                                "section extends past end of file "
                                "(truncated snapshot)");
        }
        entries.push_back(std::move(entry));
    }
}

const SnapshotReader::Entry *
SnapshotReader::find(const std::string &tag) const
{
    for (const Entry &e : entries) {
        if (e.tag == tag)
            return &e;
    }
    return nullptr;
}

bool
SnapshotReader::hasSection(const std::string &tag) const
{
    return find(tag) != nullptr;
}

void
SnapshotReader::openSection(const std::string &tag)
{
    const Entry *e = find(tag);
    if (!e)
        throw SnapshotError(tag, "missing section");
    auto *mutable_e = const_cast<Entry *>(e);
    if (!mutable_e->verified) {
        std::uint64_t sum =
            snapshotChecksum(data + e->offset, e->length);
        if (sum != e->checksum)
            throw SnapshotError(tag, "checksum mismatch (corrupted "
                                     "snapshot)");
        mutable_e->verified = true;
    }
    curTag = tag;
    cursor = e->offset;
    secEnd = e->offset + e->length;
}

void
SnapshotReader::underflow(std::size_t need)
{
    throw SnapshotError(
        curTag.empty() ? std::string("<none>") : curTag,
        "read of " + std::to_string(need) + " bytes past section "
        "end (truncated or mismatched layout)");
}

std::uint8_t
SnapshotReader::u8()
{
    if (cursor + 1 > secEnd)
        underflow(1);
    return data[cursor++];
}

std::uint16_t
SnapshotReader::u16()
{
    if (cursor + 2 > secEnd)
        underflow(2);
    std::uint16_t v = getU16(data + cursor);
    cursor += 2;
    return v;
}

std::uint32_t
SnapshotReader::u32()
{
    if (cursor + 4 > secEnd)
        underflow(4);
    std::uint32_t v = getU32(data + cursor);
    cursor += 4;
    return v;
}

std::uint64_t
SnapshotReader::u64()
{
    if (cursor + 8 > secEnd)
        underflow(8);
    std::uint64_t v = getU64(data + cursor);
    cursor += 8;
    return v;
}

double
SnapshotReader::f64()
{
    std::uint64_t bits = u64();
    double v;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
}

void
SnapshotReader::bytes(void *p, std::size_t n)
{
    if (cursor + n > secEnd || cursor + n < cursor)
        underflow(n);
    std::memcpy(p, data + cursor, n);
    cursor += n;
}

std::vector<std::uint64_t>
SnapshotReader::vecU64()
{
    std::uint64_t n = u64();
    if (n > remaining() / 8)
        underflow(static_cast<std::size_t>(n) * 8);
    std::vector<std::uint64_t> v;
    v.reserve(static_cast<std::size_t>(n));
    for (std::uint64_t i = 0; i < n; ++i)
        v.push_back(u64());
    return v;
}

std::vector<std::uint8_t>
SnapshotReader::vecU8()
{
    std::uint64_t n = u64();
    if (n > remaining())
        underflow(static_cast<std::size_t>(n));
    std::vector<std::uint8_t> v(static_cast<std::size_t>(n));
    bytes(v.data(), v.size());
    return v;
}

void
SnapshotReader::expectU32(std::uint32_t want, const char *what)
{
    std::uint32_t got = u32();
    if (got != want) {
        throw SnapshotError(curTag,
                            std::string(what) + " mismatch: snapshot "
                            "has " + std::to_string(got) +
                            ", expected " + std::to_string(want) +
                            " (wrong geometry)");
    }
}

void
SnapshotReader::expectU64(std::uint64_t want, const char *what)
{
    std::uint64_t got = u64();
    if (got != want) {
        throw SnapshotError(curTag,
                            std::string(what) + " mismatch: snapshot "
                            "has " + std::to_string(got) +
                            ", expected " + std::to_string(want) +
                            " (wrong geometry)");
    }
}

} // namespace athena

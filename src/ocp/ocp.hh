/**
 * @file
 * Off-chip predictor (OCP) interface.
 *
 * An OCP makes a *binary* prediction per demand load with a known
 * cacheline address: will this request miss every on-chip cache and
 * go to main memory? On a positive prediction, the memory system
 * launches a speculative request directly to the memory controller
 * (after the OCP request issue latency), hiding the on-chip lookup
 * latency from the off-chip critical path (Hermes, MICRO 2022).
 *
 * Predictors that need hierarchy visibility (TTP tracks resident
 * tags) receive fill/eviction callbacks.
 */

#ifndef ATHENA_OCP_OCP_HH
#define ATHENA_OCP_OCP_HH

#include <cstddef>
#include <cstdint>
#include <memory>

#include "common/types.hh"

namespace athena
{

class SnapshotReader;
class SnapshotWriter;

/** Known OCP kinds, for factory construction and tag dispatch. */
enum class OcpKind : std::uint8_t
{
    kNone,
    kPopet,
    kHmp,
    kTtp,
};

class OffChipPredictor
{
  public:
    /** @param kind dispatch tag for the devirtualized predict/train
     *  front doors; kNone routes through the virtuals (external
     *  subclasses). */
    explicit OffChipPredictor(OcpKind kind = OcpKind::kNone)
        : kindTag(kind)
    {}
    virtual ~OffChipPredictor() = default;

    virtual const char *name() const = 0;

    /** Predict whether the load at (pc, addr) will go off-chip. */
    virtual bool predict(std::uint64_t pc, Addr addr) = 0;

    /** Train with the resolved outcome of the load. */
    virtual void train(std::uint64_t pc, Addr addr,
                       bool went_offchip) = 0;

    /**
     * Non-virtual front doors over predict()/train(): both run once
     * per demand load, so the access path dispatches on the
     * construction-time kind tag to the concrete implementation
     * with a direct (LTO-inlinable) call, exactly like
     * Prefetcher::observe.
     */
    bool predictDemand(std::uint64_t pc, Addr addr);
    void trainDemand(std::uint64_t pc, Addr addr, bool went_offchip);

    /** Dispatch tag (kNone for external subclasses). */
    OcpKind kind() const { return kindTag; }

    /** A line became resident on-chip (any level). */
    virtual void onFill(Addr line_num) { (void)line_num; }

    /** A line left the chip (evicted from the LLC). */
    virtual void onEvict(Addr line_num) { (void)line_num; }

    virtual void reset() = 0;

    /**
     * Snapshot contract: serialize learned tables and history so a
     * restored predictor continues bit-identically. No-op defaults
     * for stateless external subclasses; every built-in kind
     * overrides both.
     */
    virtual void saveState(SnapshotWriter &) const {}
    virtual void restoreState(SnapshotReader &) {}

    /** Metadata budget in bits (Table 8 accounting). */
    virtual std::size_t storageBits() const = 0;

  private:
    OcpKind kindTag;
};

const char *ocpKindName(OcpKind kind);

/** Factory. kNone returns nullptr. */
std::unique_ptr<OffChipPredictor> makeOcp(OcpKind kind);

} // namespace athena

#endif // ATHENA_OCP_OCP_HH

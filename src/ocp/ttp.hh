/**
 * @file
 * TTP: tag-tracking based off-chip predictor (Jalili & Erez,
 * HPCA 2022; also evaluated in Hermes).
 *
 * TTP shadows the on-chip cache hierarchy with a partial-tag store
 * sized on the order of the L2 (Table 8 budgets it at 1.5 MB). A
 * load is predicted off-chip when its line's tag is absent. The
 * memory system feeds fills and LLC evictions so the shadow tracks
 * residency; partial tags introduce rare aliasing, exactly as in
 * hardware.
 */

#ifndef ATHENA_OCP_TTP_HH
#define ATHENA_OCP_TTP_HH

#include <cstddef>
#include <cstdint>
#include <vector>

#include "ocp/ocp.hh"

namespace athena
{

class TtpPredictor final : public OffChipPredictor
{
  public:
    /** @param entry_count shadow tag capacity (default covers a
     *  3 MB LLC plus L2: 64 K lines). */
    explicit TtpPredictor(std::size_t entry_count = 64 * 1024);

    const char *name() const override { return "ttp"; }

    bool predict(std::uint64_t pc, Addr addr) override;
    void train(std::uint64_t pc, Addr addr, bool went_offchip) override;

    void onFill(Addr line_num) override;
    void onEvict(Addr line_num) override;

    void reset() override;

    void saveState(SnapshotWriter &w) const override;
    void restoreState(SnapshotReader &r) override;

    std::size_t
    storageBits() const override
    {
        // 16-bit partial tags + valid bit per entry (~1.5 MB class
        // budget in the paper's configuration scales with entries).
        return entries.size() * 17;
    }

  private:
    struct Entry
    {
        std::uint16_t tag = 0;
        bool valid = false;
    };

    std::size_t indexOf(Addr line_num) const;
    std::uint16_t tagOf(Addr line_num) const;

    std::vector<Entry> entries;
};

} // namespace athena

#endif // ATHENA_OCP_TTP_HH

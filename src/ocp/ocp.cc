/**
 * @file
 * OCP factory and kind names.
 */

#include "ocp/ocp.hh"

#include <memory>

#include "ocp/hmp.hh"
#include "ocp/popet.hh"
#include "ocp/ttp.hh"

namespace athena
{

const char *
ocpKindName(OcpKind kind)
{
    switch (kind) {
      case OcpKind::kNone:  return "none";
      case OcpKind::kPopet: return "popet";
      case OcpKind::kHmp:   return "hmp";
      case OcpKind::kTtp:   return "ttp";
    }
    return "?";
}

std::unique_ptr<OffChipPredictor>
makeOcp(OcpKind kind)
{
    switch (kind) {
      case OcpKind::kNone:
        return nullptr;
      case OcpKind::kPopet:
        return std::make_unique<PopetPredictor>();
      case OcpKind::kHmp:
        return std::make_unique<HmpPredictor>();
      case OcpKind::kTtp:
        return std::make_unique<TtpPredictor>();
    }
    return nullptr;
}

} // namespace athena

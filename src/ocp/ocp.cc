/**
 * @file
 * OCP factory and kind names.
 */

#include "ocp/ocp.hh"

#include <memory>

#include "ocp/hmp.hh"
#include "ocp/popet.hh"
#include "ocp/ttp.hh"

namespace athena
{

bool
OffChipPredictor::predictDemand(std::uint64_t pc, Addr addr)
{
    switch (kind()) {
      case OcpKind::kPopet:
        return static_cast<PopetPredictor &>(*this)
            .PopetPredictor::predict(pc, addr);
      case OcpKind::kHmp:
        return static_cast<HmpPredictor &>(*this)
            .HmpPredictor::predict(pc, addr);
      case OcpKind::kTtp:
        return static_cast<TtpPredictor &>(*this)
            .TtpPredictor::predict(pc, addr);
      case OcpKind::kNone:
        break;
    }
    return predict(pc, addr);
}

void
OffChipPredictor::trainDemand(std::uint64_t pc, Addr addr,
                              bool went_offchip)
{
    switch (kind()) {
      case OcpKind::kPopet:
        static_cast<PopetPredictor &>(*this)
            .PopetPredictor::train(pc, addr, went_offchip);
        return;
      case OcpKind::kHmp:
        static_cast<HmpPredictor &>(*this)
            .HmpPredictor::train(pc, addr, went_offchip);
        return;
      case OcpKind::kTtp:
        static_cast<TtpPredictor &>(*this)
            .TtpPredictor::train(pc, addr, went_offchip);
        return;
      case OcpKind::kNone:
        break;
    }
    train(pc, addr, went_offchip);
}

const char *
ocpKindName(OcpKind kind)
{
    switch (kind) {
      case OcpKind::kNone:  return "none";
      case OcpKind::kPopet: return "popet";
      case OcpKind::kHmp:   return "hmp";
      case OcpKind::kTtp:   return "ttp";
    }
    return "?";
}

std::unique_ptr<OffChipPredictor>
makeOcp(OcpKind kind)
{
    switch (kind) {
      case OcpKind::kNone:
        return nullptr;
      case OcpKind::kPopet:
        return std::make_unique<PopetPredictor>();
      case OcpKind::kHmp:
        return std::make_unique<HmpPredictor>();
      case OcpKind::kTtp:
        return std::make_unique<TtpPredictor>();
    }
    return nullptr;
}

} // namespace athena

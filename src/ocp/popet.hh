/**
 * @file
 * POPET: perceptron-based off-chip predictor (Hermes; Bera et al.,
 * MICRO 2022).
 *
 * A hashed-perceptron over five program features. Each feature
 * indexes a dedicated table of signed weights; the prediction is
 * positive (off-chip) when the summed weights reach the activation
 * threshold. Training follows the standard perceptron rule: update
 * on misprediction or when the magnitude of the sum is below the
 * training threshold. This matches the configuration evaluated in
 * the Athena paper (4 KB, Table 8).
 */

#ifndef ATHENA_OCP_POPET_HH
#define ATHENA_OCP_POPET_HH

#include <array>
#include <cstddef>
#include <cstdint>

#include "common/hashing.hh"
#include "common/sat_counter.hh"
#include "common/simd.hh"
#include "ocp/ocp.hh"

namespace athena
{

class PopetPredictor final : public OffChipPredictor
{
  public:
    PopetPredictor() : OffChipPredictor(OcpKind::kPopet) { reset(); }

    const char *name() const override { return "popet"; }

    bool predict(std::uint64_t pc, Addr addr) override;
    void train(std::uint64_t pc, Addr addr, bool went_offchip) override;

    /** Feature-table indices that are pure in (pc, addr) — all but
     *  the PC-history feature. */
    static constexpr unsigned kPureFeatures = 4;

    /**
     * SoA batch kernel over the (pc, addr)-pure features: fills
     * idx[i * kPureFeatures + f] for the first four feature tables
     * of each of the @p n accesses. Straight-line branch-free
     * hashing (auto-vectorizable); recomputes the pc/page hash
     * terms instead of probing the scalar path's memos — pure
     * functions, so the results are bit-identical. The window
     * collector runs this once per pulled record batch.
     */
    static void pureFeatureIndicesBatch(const std::uint64_t *pcs,
                                        const Addr *addrs,
                                        unsigned n,
                                        std::uint16_t *idx);

    /**
     * Backend-dispatched variant: the scalar backend is the
     * memo-free loop above verbatim; the AVX2 backend hashes four
     * accesses per step through the widened mix64 (the kTableSize
     * modulo becomes a lane mask — identical, the table size is a
     * power of two). Bit-identical across backends.
     */
    static void pureFeatureIndicesBatch(simd::Backend backend,
                                        const std::uint64_t *pcs,
                                        const Addr *addrs,
                                        unsigned n,
                                        std::uint16_t *idx);

    /**
     * Caller-owned memo for the batched pure-feature kernel,
     * mirroring the scalar path's memos: a small key-validated
     * pc→(index, hash term) cache plus the last page's index.
     * Demand streams rotate through a handful of load PCs and
     * dwell on a page, so both hit nearly always. Pure cache:
     * every hit is validated against the full key, so results are
     * bit-identical to the memo-free kernel with any (even stale
     * or cross-run) memo contents. Reset it whenever convenient;
     * contents never affect results. (Finer-grained caching — e.g.
     * memoizing the per-access line/byte mix64 arguments — was
     * measured slower than hashing: a probe costs a load, compare,
     * and install store against mix64's handful of ALU ops.)
     */
    struct PureBatchMemo
    {
        static constexpr unsigned kPcEntries = 16; // power of two
        struct PcEntry
        {
            std::uint64_t pc = 0;
            std::uint64_t term = 0;
            std::uint16_t idx = 0;
            bool valid = false;
        };
        std::array<PcEntry, kPcEntries> pcs{};
        std::uint64_t page = ~0ull;
        std::uint16_t pageIdx = 0;
        bool pageValid = false;

        void reset() { *this = PureBatchMemo{}; }
    };

    /**
     * pureFeatureIndicesBatch with a persistent memo. Same outputs
     * as the memo-free kernel for any memo state.
     */
    static void pureFeatureIndicesBatch(const std::uint64_t *pcs,
                                        const Addr *addrs,
                                        unsigned n,
                                        std::uint16_t *idx,
                                        PureBatchMemo &memo);

    /**
     * Memo + backend variant — what the simulator's window
     * collector runs. The memo probes stay scalar (features 0 and
     * 3: a validated load beats re-mixing when demand streams
     * rotate through a handful of PCs and dwell on a page), while
     * the two per-access offset mixes (features 1 and 2), which no
     * memo can capture, run through the backend's widened mix64.
     * Bit-identical to the scalar memo loop for any backend and
     * memo state.
     */
    static void pureFeatureIndicesBatch(simd::Backend backend,
                                        const std::uint64_t *pcs,
                                        const Addr *addrs,
                                        unsigned n,
                                        std::uint16_t *idx,
                                        PureBatchMemo &memo);

    /**
     * One access's four pure feature indices through the batch
     * memo — the per-row body of the memoized batch kernel,
     * header-inline so a window collector can fuse it with its
     * record gather (no intermediate (pc, addr) copy arrays).
     */
    static void
    pureIndicesMemoInto(std::uint64_t pc, Addr addr,
                        PureBatchMemo &memo, std::uint16_t *out)
    {
        unsigned line_off = pageLineOffset(addr);
        unsigned byte_off =
            static_cast<unsigned>(addr & (kLineBytes - 1));
        Addr page = pageNumber(addr);

        auto &pe =
            memo.pcs[(pc >> 4) & (PureBatchMemo::kPcEntries - 1)];
        if (!pe.valid || pe.pc != pc) {
            pe.pc = pc;
            pe.valid = true;
            pe.term = pcHashTerm(pc);
            pe.idx =
                static_cast<std::uint16_t>(mix64(pc) % kTableSize);
        }
        if (!memo.pageValid || page != memo.page) {
            memo.page = page;
            memo.pageValid = true;
            memo.pageIdx = static_cast<std::uint16_t>(mix64(page) %
                                                      kTableSize);
        }

        out[0] = pe.idx;
        out[1] = static_cast<std::uint16_t>(
            mix64(pc ^ (line_off + pe.term)) % kTableSize);
        out[2] = static_cast<std::uint16_t>(
            mix64(pc ^ (byte_off + pe.term)) % kTableSize);
        out[3] = memo.pageIdx;
    }

    /**
     * All five feature-table indices for @p n accesses,
     * idx[i * 5 + f] row-major, with the PC-history rolling hash
     * threaded through the batch exactly as n predict() calls
     * would advance it: entry i's history index reflects the hash
     * after folding pcs[0..i-1] (the pre-fold hash predict() reads
     * for access i). Starts from the live lastPcsHash; does not
     * advance it — the caller owns when the real accesses happen.
     */
    void featureIndicesBatch(const std::uint64_t *pcs,
                             const Addr *addrs, unsigned n,
                             std::uint16_t *idx) const;

    /**
     * predict() with the four pure feature indices supplied from a
     * window-collected batch (pureFeatureIndicesBatch): only the
     * history feature is hashed at access time. Bit-identical to
     * predict(pc, addr) — including the train-pairing memo — for
     * matching (pc, addr); skipping the pc/page memo refresh is
     * exact because those memos are key-validated pure caches.
     */
    bool predictPrepared(std::uint64_t pc, Addr addr,
                         const std::uint16_t *pure_idx);

    void reset() override;

    /** Snapshot contract: weight tables + PC-history hash. The
     *  pc/page/one-deep memos are pure caches and are cleared on
     *  restore (every train is paired with a same-access predict,
     *  so the fallback path is bit-identical). */
    void saveState(SnapshotWriter &w) const override;
    void restoreState(SnapshotReader &r) override;

    std::size_t
    storageBits() const override
    {
        // 5 tables x 1024 entries x 6-bit weights + last-PCs reg.
        return kFeatures * kTableSize * 6 + 64;
    }

    /** Activation threshold tau_act (exposed for tests). */
    static constexpr int kActivationThreshold = 2;
    /** Training threshold tau_train. */
    static constexpr int kTrainingThreshold = 14;

  private:
    static constexpr unsigned kFeatures = 5;
    static constexpr unsigned kTableSize = 1024;

    /** Compute the five feature table indices for (pc, addr). */
    std::array<std::uint16_t, kFeatures>
    featureIndices(std::uint64_t pc, Addr addr) const;

    /** hashCombine's pc-only term (shared by the scalar memo path
     *  and the batch kernels so the formulas cannot drift). */
    static std::uint64_t
    pcHashTerm(std::uint64_t pc)
    {
        return 0x9e3779b97f4a7c15ull + (pc << 6) + (pc >> 2);
    }

    /** The four (pc, addr)-pure indices of one access, written to
     *  out[0..kPureFeatures) (no memo probes). */
    static void pureIndicesInto(std::uint64_t pc, Addr addr,
                                std::uint16_t *out);

    /**
     * Memos of the (pure) pc- and page-derived hash work inside
     * featureIndices. Demand streams rotate through a handful of
     * load PCs and dwell on a page for many accesses, so both hit
     * nearly always; results are bit-identical to recomputing.
     * mutable: featureIndices is logically const.
     */
    struct PcMemoEntry
    {
        std::uint64_t pc = 0;
        bool valid = false;
        std::uint16_t pcIdx = 0;     ///< mix64(pc) % kTableSize.
        std::uint64_t pcTerm = 0;    ///< hashCombine's pc-only term.
    };
    static constexpr unsigned kPcMemoSize = 16; // power of two
    mutable std::array<PcMemoEntry, kPcMemoSize> pcMemo{};
    mutable Addr memoPage = ~0ull;
    mutable std::uint16_t memoPageIdx = 0;

    int sum(const std::array<std::uint16_t, kFeatures> &idx) const;

    std::array<std::array<SignedSatCounter<6>, kTableSize>, kFeatures>
        weights;

    /** Rolling hash of the last four load PCs (feature 5). */
    std::uint64_t lastPcsHash = 0;

    /**
     * One-deep feature-index memo: every demand load runs
     * predict(pc, addr) then train(pc, addr, outcome) on the same
     * access, so predict pre-computes the indices train will need
     * (with the PC-history feature already advanced past this
     * load), saving half of the feature hashing on the access path.
     */
    std::uint64_t memoPc = 0;
    Addr memoAddr = 0;
    bool memoValid = false;
    std::array<std::uint16_t, kFeatures> memoIdx{};
    /**
     * Weight sum over the first four (pc, addr)-pure features,
     * captured at predict() time. No weight changes between a
     * load's predict and its train, so train only re-reads the
     * history feature's weight.
     */
    int memoPartialSum = 0;
};

} // namespace athena

#endif // ATHENA_OCP_POPET_HH

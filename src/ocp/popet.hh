/**
 * @file
 * POPET: perceptron-based off-chip predictor (Hermes; Bera et al.,
 * MICRO 2022).
 *
 * A hashed-perceptron over five program features. Each feature
 * indexes a dedicated table of signed weights; the prediction is
 * positive (off-chip) when the summed weights reach the activation
 * threshold. Training follows the standard perceptron rule: update
 * on misprediction or when the magnitude of the sum is below the
 * training threshold. This matches the configuration evaluated in
 * the Athena paper (4 KB, Table 8).
 */

#ifndef ATHENA_OCP_POPET_HH
#define ATHENA_OCP_POPET_HH

#include <array>
#include <cstddef>
#include <cstdint>

#include "common/sat_counter.hh"
#include "ocp/ocp.hh"

namespace athena
{

class PopetPredictor final : public OffChipPredictor
{
  public:
    PopetPredictor() : OffChipPredictor(OcpKind::kPopet) { reset(); }

    const char *name() const override { return "popet"; }

    bool predict(std::uint64_t pc, Addr addr) override;
    void train(std::uint64_t pc, Addr addr, bool went_offchip) override;

    void reset() override;

    /** Snapshot contract: weight tables + PC-history hash. The
     *  pc/page/one-deep memos are pure caches and are cleared on
     *  restore (every train is paired with a same-access predict,
     *  so the fallback path is bit-identical). */
    void saveState(SnapshotWriter &w) const override;
    void restoreState(SnapshotReader &r) override;

    std::size_t
    storageBits() const override
    {
        // 5 tables x 1024 entries x 6-bit weights + last-PCs reg.
        return kFeatures * kTableSize * 6 + 64;
    }

    /** Activation threshold tau_act (exposed for tests). */
    static constexpr int kActivationThreshold = 2;
    /** Training threshold tau_train. */
    static constexpr int kTrainingThreshold = 14;

  private:
    static constexpr unsigned kFeatures = 5;
    static constexpr unsigned kTableSize = 1024;

    /** Compute the five feature table indices for (pc, addr). */
    std::array<std::uint16_t, kFeatures>
    featureIndices(std::uint64_t pc, Addr addr) const;

    /**
     * Memos of the (pure) pc- and page-derived hash work inside
     * featureIndices. Demand streams rotate through a handful of
     * load PCs and dwell on a page for many accesses, so both hit
     * nearly always; results are bit-identical to recomputing.
     * mutable: featureIndices is logically const.
     */
    struct PcMemoEntry
    {
        std::uint64_t pc = 0;
        bool valid = false;
        std::uint16_t pcIdx = 0;     ///< mix64(pc) % kTableSize.
        std::uint64_t pcTerm = 0;    ///< hashCombine's pc-only term.
    };
    static constexpr unsigned kPcMemoSize = 16; // power of two
    mutable std::array<PcMemoEntry, kPcMemoSize> pcMemo{};
    mutable Addr memoPage = ~0ull;
    mutable std::uint16_t memoPageIdx = 0;

    int sum(const std::array<std::uint16_t, kFeatures> &idx) const;

    std::array<std::array<SignedSatCounter<6>, kTableSize>, kFeatures>
        weights;

    /** Rolling hash of the last four load PCs (feature 5). */
    std::uint64_t lastPcsHash = 0;

    /**
     * One-deep feature-index memo: every demand load runs
     * predict(pc, addr) then train(pc, addr, outcome) on the same
     * access, so predict pre-computes the indices train will need
     * (with the PC-history feature already advanced past this
     * load), saving half of the feature hashing on the access path.
     */
    std::uint64_t memoPc = 0;
    Addr memoAddr = 0;
    bool memoValid = false;
    std::array<std::uint16_t, kFeatures> memoIdx{};
    /**
     * Weight sum over the first four (pc, addr)-pure features,
     * captured at predict() time. No weight changes between a
     * load's predict and its train, so train only re-reads the
     * history feature's weight.
     */
    int memoPartialSum = 0;
};

} // namespace athena

#endif // ATHENA_OCP_POPET_HH

/**
 * @file
 * POPET implementation.
 */

#include "ocp/popet.hh"

#include <algorithm>
#include <array>
#include <cstdint>

#include "common/hashing.hh"
#include "snapshot/snapshot.hh"

namespace athena
{

std::array<std::uint16_t, PopetPredictor::kFeatures>
PopetPredictor::featureIndices(std::uint64_t pc, Addr addr) const
{
    unsigned line_off = pageLineOffset(addr);
    unsigned byte_off = static_cast<unsigned>(addr & (kLineBytes - 1));
    Addr page = pageNumber(addr);

    // pc-pure hash work, memoized across the handful of load PCs a
    // phase rotates through. hashCombine(pc, b) is
    // mix64(pc ^ (b + K + (pc << 6) + (pc >> 2))); the pc-only term
    // is captured once per PC.
    PcMemoEntry &pm = pcMemo[(pc >> 4) & (kPcMemoSize - 1)];
    if (!pm.valid || pm.pc != pc) {
        pm.pc = pc;
        pm.valid = true;
        pm.pcIdx = static_cast<std::uint16_t>(mix64(pc) % kTableSize);
        pm.pcTerm = pcHashTerm(pc);
    }
    if (page != memoPage) {
        memoPage = page;
        memoPageIdx =
            static_cast<std::uint16_t>(mix64(page) % kTableSize);
    }

    return {
        pm.pcIdx,
        static_cast<std::uint16_t>(mix64(pc ^ (line_off + pm.pcTerm)) %
                                   kTableSize),
        static_cast<std::uint16_t>(mix64(pc ^ (byte_off + pm.pcTerm)) %
                                   kTableSize),
        memoPageIdx,
        static_cast<std::uint16_t>(mix64(lastPcsHash) % kTableSize),
    };
}

void
PopetPredictor::pureIndicesInto(std::uint64_t pc, Addr addr,
                                std::uint16_t *out)
{
    unsigned line_off = pageLineOffset(addr);
    unsigned byte_off =
        static_cast<unsigned>(addr & (kLineBytes - 1));
    Addr page = pageNumber(addr);
    std::uint64_t pc_term = pcHashTerm(pc);
    out[0] = static_cast<std::uint16_t>(mix64(pc) % kTableSize);
    out[1] = static_cast<std::uint16_t>(
        mix64(pc ^ (line_off + pc_term)) % kTableSize);
    out[2] = static_cast<std::uint16_t>(
        mix64(pc ^ (byte_off + pc_term)) % kTableSize);
    out[3] = static_cast<std::uint16_t>(mix64(page) % kTableSize);
}

void
PopetPredictor::pureFeatureIndicesBatch(const std::uint64_t *pcs,
                                        const Addr *addrs,
                                        unsigned n,
                                        std::uint16_t *idx)
{
    for (unsigned i = 0; i < n; ++i)
        pureIndicesInto(pcs[i], addrs[i], idx + i * kPureFeatures);
}

void
PopetPredictor::pureFeatureIndicesBatch(simd::Backend backend,
                                        const std::uint64_t *pcs,
                                        const Addr *addrs,
                                        unsigned n,
                                        std::uint16_t *idx)
{
    static_assert(kPureFeatures == 4,
                  "the SIMD kernel packs four indices per access");
    static_assert((kTableSize & (kTableSize - 1)) == 0,
                  "lane masking requires a power-of-two table");
    if (backend == simd::Backend::kScalar) {
        pureFeatureIndicesBatch(pcs, addrs, n, idx);
        return;
    }
    simd::popetPureIndicesBatch(backend, pcs, addrs, n,
                                kTableSize - 1, idx);
}

void
PopetPredictor::pureFeatureIndicesBatch(const std::uint64_t *pcs,
                                        const Addr *addrs,
                                        unsigned n,
                                        std::uint16_t *idx,
                                        PureBatchMemo &memo)
{
    for (unsigned i = 0; i < n; ++i)
        pureIndicesMemoInto(pcs[i], addrs[i], memo,
                            idx + i * kPureFeatures);
}

void
PopetPredictor::pureFeatureIndicesBatch(simd::Backend backend,
                                        const std::uint64_t *pcs,
                                        const Addr *addrs,
                                        unsigned n,
                                        std::uint16_t *idx,
                                        PureBatchMemo &memo)
{
    if (backend == simd::Backend::kScalar) {
        pureFeatureIndicesBatch(pcs, addrs, n, idx, memo);
        return;
    }
    // Scalar memo pass fills features 0/3 and stages the offset-mix
    // arguments; the backend kernel then mixes features 1/2 four
    // lanes at a time. The span matches the plane's chunk size so
    // one plane chunk is one kernel call.
    constexpr unsigned kSpan = 32;
    std::uint64_t args[2 * kSpan];
    std::uint64_t mixed[2 * kSpan];
    for (unsigned base = 0; base < n; base += kSpan) {
        const unsigned cnt = std::min(n - base, kSpan);
        for (unsigned j = 0; j < cnt; ++j) {
            const std::uint64_t pc = pcs[base + j];
            const Addr addr = addrs[base + j];
            auto &pe = memo.pcs[(pc >> 4) &
                                (PureBatchMemo::kPcEntries - 1)];
            if (!pe.valid || pe.pc != pc) {
                pe.pc = pc;
                pe.valid = true;
                pe.term = pcHashTerm(pc);
                pe.idx = static_cast<std::uint16_t>(mix64(pc) %
                                                    kTableSize);
            }
            const Addr page = pageNumber(addr);
            if (!memo.pageValid || page != memo.page) {
                memo.page = page;
                memo.pageValid = true;
                memo.pageIdx = static_cast<std::uint16_t>(
                    mix64(page) % kTableSize);
            }
            std::uint16_t *out = idx + (base + j) * kPureFeatures;
            out[0] = pe.idx;
            out[3] = memo.pageIdx;
            const unsigned line_off = pageLineOffset(addr);
            const unsigned byte_off =
                static_cast<unsigned>(addr & (kLineBytes - 1));
            args[2 * j] = pc ^ (line_off + pe.term);
            args[2 * j + 1] = pc ^ (byte_off + pe.term);
        }
        simd::mix64Batch(backend, args, 2 * cnt, mixed);
        for (unsigned j = 0; j < cnt; ++j) {
            std::uint16_t *out = idx + (base + j) * kPureFeatures;
            out[1] = static_cast<std::uint16_t>(
                mixed[2 * j] & (kTableSize - 1));
            out[2] = static_cast<std::uint16_t>(
                mixed[2 * j + 1] & (kTableSize - 1));
        }
    }
}

void
PopetPredictor::featureIndicesBatch(const std::uint64_t *pcs,
                                    const Addr *addrs, unsigned n,
                                    std::uint16_t *idx) const
{
    std::uint64_t hist = lastPcsHash;
    for (unsigned i = 0; i < n; ++i) {
        std::uint16_t *out = idx + i * kFeatures;
        pureIndicesInto(pcs[i], addrs[i], out);
        out[kFeatures - 1] =
            static_cast<std::uint16_t>(mix64(hist) % kTableSize);
        // Advance the rolling hash past this access, exactly as
        // predict() folds it after each prediction.
        hist = hashCombine(hist, pcs[i]);
    }
}

bool
PopetPredictor::predictPrepared(std::uint64_t pc, Addr addr,
                                const std::uint16_t *pure_idx)
{
    int partial = 0;
    for (unsigned f = 0; f < kPureFeatures; ++f)
        partial += weights[f][pure_idx[f]].raw();
    std::uint16_t hist_idx = static_cast<std::uint16_t>(
        mix64(lastPcsHash) % kTableSize);
    int s = partial + weights[kFeatures - 1][hist_idx].raw();
    bool off_chip = s >= kActivationThreshold;
    lastPcsHash = hashCombine(lastPcsHash, pc);
    for (unsigned f = 0; f < kPureFeatures; ++f)
        memoIdx[f] = pure_idx[f];
    memoIdx[kFeatures - 1] = static_cast<std::uint16_t>(
        mix64(lastPcsHash) % kTableSize);
    memoPartialSum = partial;
    memoPc = pc;
    memoAddr = addr;
    memoValid = true;
    return off_chip;
}

int
PopetPredictor::sum(
    const std::array<std::uint16_t, kFeatures> &idx) const
{
    int s = 0;
    for (unsigned f = 0; f < kFeatures; ++f)
        s += weights[f][idx[f]].raw();
    return s;
}

bool
PopetPredictor::predict(std::uint64_t pc, Addr addr)
{
    auto idx = featureIndices(pc, addr);
    int partial = 0;
    for (unsigned f = 0; f + 1 < kFeatures; ++f)
        partial += weights[f][idx[f]].raw();
    int s = partial + weights[kFeatures - 1][idx[kFeatures - 1]].raw();
    bool off_chip = s >= kActivationThreshold;
    // Fold the PC into the history *after* prediction so the
    // prediction uses the preceding context, as in Hermes.
    lastPcsHash = hashCombine(lastPcsHash, pc);
    // Pre-compute what train() will recompute for this access: the
    // first four features are (pc, addr)-pure, and the history
    // feature now reflects the post-fold hash train() would see.
    memoIdx = idx;
    memoIdx[kFeatures - 1] = static_cast<std::uint16_t>(
        mix64(lastPcsHash) % kTableSize);
    memoPartialSum = partial;
    memoPc = pc;
    memoAddr = addr;
    memoValid = true;
    return off_chip;
}

void
PopetPredictor::train(std::uint64_t pc, Addr addr, bool went_offchip)
{
    std::array<std::uint16_t, kFeatures> idx;
    int s;
    if (memoValid && memoPc == pc && memoAddr == addr) {
        // Same access as the last predict(): indices and the
        // first-four-feature sum carry over unchanged.
        idx = memoIdx;
        s = memoPartialSum +
            weights[kFeatures - 1][idx[kFeatures - 1]].raw();
        memoValid = false;
    } else {
        // Unpaired train (not the access predict() last saw):
        // recompute, and drop the memo — its partial sum predates
        // any weight updates made since it was captured.
        memoValid = false;
        idx = featureIndices(pc, addr);
        s = sum(idx);
    }
    bool predicted = s >= kActivationThreshold;
    if (predicted != went_offchip ||
        (s < kTrainingThreshold && s > -kTrainingThreshold)) {
        int dir = went_offchip ? 1 : -1;
        for (unsigned f = 0; f < kFeatures; ++f)
            weights[f][idx[f]].add(dir);
    }
}

void
PopetPredictor::reset()
{
    for (auto &table : weights) {
        for (auto &w : table)
            w = SignedSatCounter<6>{};
    }
    lastPcsHash = 0;
    memoValid = false;
    pcMemo.fill(PcMemoEntry{});
    memoPage = ~0ull;
    memoPageIdx = 0;
}

void
PopetPredictor::saveState(SnapshotWriter &w) const
{
    for (const auto &table : weights) {
        for (const SignedSatCounter<6> &c : table)
            w.i32(c.raw());
    }
    w.u64(lastPcsHash);
}

void
PopetPredictor::restoreState(SnapshotReader &r)
{
    for (auto &table : weights) {
        for (SignedSatCounter<6> &c : table)
            c = SignedSatCounter<6>(r.i32());
    }
    lastPcsHash = r.u64();
    memoValid = false;
    pcMemo.fill(PcMemoEntry{});
    memoPage = ~0ull;
    memoPageIdx = 0;
}

} // namespace athena

/**
 * @file
 * POPET implementation.
 */

#include "ocp/popet.hh"

#include <array>
#include <cstdint>

#include "common/hashing.hh"

namespace athena
{

std::array<std::uint16_t, PopetPredictor::kFeatures>
PopetPredictor::featureIndices(std::uint64_t pc, Addr addr) const
{
    unsigned line_off = pageLineOffset(addr);
    unsigned byte_off = static_cast<unsigned>(addr & (kLineBytes - 1));
    Addr page = pageNumber(addr);

    return {
        static_cast<std::uint16_t>(mix64(pc) % kTableSize),
        static_cast<std::uint16_t>(hashCombine(pc, line_off) %
                                   kTableSize),
        static_cast<std::uint16_t>(hashCombine(pc, byte_off) %
                                   kTableSize),
        static_cast<std::uint16_t>(mix64(page) % kTableSize),
        static_cast<std::uint16_t>(mix64(lastPcsHash) % kTableSize),
    };
}

int
PopetPredictor::sum(
    const std::array<std::uint16_t, kFeatures> &idx) const
{
    int s = 0;
    for (unsigned f = 0; f < kFeatures; ++f)
        s += weights[f][idx[f]].raw();
    return s;
}

bool
PopetPredictor::predict(std::uint64_t pc, Addr addr)
{
    auto idx = featureIndices(pc, addr);
    bool off_chip = sum(idx) >= kActivationThreshold;
    // Fold the PC into the history *after* prediction so the
    // prediction uses the preceding context, as in Hermes.
    lastPcsHash = hashCombine(lastPcsHash, pc);
    return off_chip;
}

void
PopetPredictor::train(std::uint64_t pc, Addr addr, bool went_offchip)
{
    auto idx = featureIndices(pc, addr);
    int s = sum(idx);
    bool predicted = s >= kActivationThreshold;
    if (predicted != went_offchip ||
        (s < kTrainingThreshold && s > -kTrainingThreshold)) {
        int dir = went_offchip ? 1 : -1;
        for (unsigned f = 0; f < kFeatures; ++f)
            weights[f][idx[f]].add(dir);
    }
}

void
PopetPredictor::reset()
{
    for (auto &table : weights) {
        for (auto &w : table)
            w = SignedSatCounter<6>{};
    }
    lastPcsHash = 0;
}

} // namespace athena

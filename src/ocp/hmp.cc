/**
 * @file
 * HMP implementation.
 */

#include "ocp/hmp.hh"

#include <cstdint>

#include "common/hashing.hh"
#include "snapshot/snapshot.hh"

namespace athena
{

bool
HmpPredictor::localPredict(std::uint64_t pc) const
{
    std::uint64_t li = mix64(pc) % kLocalEntries;
    std::uint8_t hist = localHistory[li];
    std::uint64_t pi = hashCombine(pc, hist) % kPhtSize;
    return localPht[pi].taken();
}

bool
HmpPredictor::gsharePredict(std::uint64_t pc) const
{
    std::uint64_t idx = (mix64(pc) ^ globalHistory) % kPhtSize;
    return gsharePht[idx].taken();
}

bool
HmpPredictor::gskewPredict(std::uint64_t pc, Addr addr) const
{
    std::uint64_t key = hashCombine(pc, lineNumber(addr)) ^
                        globalHistory;
    int votes = 0;
    for (unsigned t = 0; t < 3; ++t) {
        if (gskewPht[t][keyedHash(key, t) % kPhtSize].taken())
            ++votes;
    }
    return votes >= 2;
}

bool
HmpPredictor::predict(std::uint64_t pc, Addr addr)
{
    int votes = 0;
    if (localPredict(pc))
        ++votes;
    if (gsharePredict(pc))
        ++votes;
    if (gskewPredict(pc, addr))
        ++votes;
    return votes >= 2;
}

void
HmpPredictor::train(std::uint64_t pc, Addr addr, bool went_offchip)
{
    std::uint64_t li = mix64(pc) % kLocalEntries;
    std::uint8_t hist = localHistory[li];
    localPht[hashCombine(pc, hist) % kPhtSize].update(went_offchip);
    localHistory[li] = static_cast<std::uint8_t>(
        ((hist << 1) | (went_offchip ? 1 : 0)) &
        ((1u << kHistBits) - 1));

    gsharePht[(mix64(pc) ^ globalHistory) % kPhtSize].update(
        went_offchip);

    std::uint64_t key = hashCombine(pc, lineNumber(addr)) ^
                        globalHistory;
    for (unsigned t = 0; t < 3; ++t)
        gskewPht[t][keyedHash(key, t) % kPhtSize].update(went_offchip);

    globalHistory = ((globalHistory << 1) | (went_offchip ? 1 : 0)) &
                    (kPhtSize - 1);
}

void
HmpPredictor::reset()
{
    localHistory.fill(0);
    for (auto &c : localPht)
        c = SatCounter<2>(0);
    for (auto &c : gsharePht)
        c = SatCounter<2>(0);
    for (auto &t : gskewPht) {
        for (auto &c : t)
            c = SatCounter<2>(0);
    }
    globalHistory = 0;
}

void
HmpPredictor::saveState(SnapshotWriter &w) const
{
    w.bytes(localHistory.data(), localHistory.size());
    for (const SatCounter<2> &c : localPht)
        w.u16(c.raw());
    for (const SatCounter<2> &c : gsharePht)
        w.u16(c.raw());
    for (const auto &t : gskewPht) {
        for (const SatCounter<2> &c : t)
            w.u16(c.raw());
    }
    w.u64(globalHistory);
}

void
HmpPredictor::restoreState(SnapshotReader &r)
{
    r.bytes(localHistory.data(), localHistory.size());
    for (SatCounter<2> &c : localPht)
        c = SatCounter<2>(r.u16());
    for (SatCounter<2> &c : gsharePht)
        c = SatCounter<2>(r.u16());
    for (auto &t : gskewPht) {
        for (SatCounter<2> &c : t)
            c = SatCounter<2>(r.u16());
    }
    globalHistory = r.u64();
}

} // namespace athena

/**
 * @file
 * TTP implementation.
 */

#include "ocp/ttp.hh"

#include <cstddef>
#include <cstdint>

#include "common/hashing.hh"
#include "snapshot/snapshot.hh"

namespace athena
{

TtpPredictor::TtpPredictor(std::size_t entry_count)
    : OffChipPredictor(OcpKind::kTtp), entries(entry_count)
{}

std::size_t
TtpPredictor::indexOf(Addr line_num) const
{
    return static_cast<std::size_t>(mix64(line_num) % entries.size());
}

std::uint16_t
TtpPredictor::tagOf(Addr line_num) const
{
    return static_cast<std::uint16_t>(mix64(line_num) >> 48);
}

bool
TtpPredictor::predict(std::uint64_t pc, Addr addr)
{
    (void)pc;
    Addr line = lineNumber(addr);
    const Entry &e = entries[indexOf(line)];
    return !(e.valid && e.tag == tagOf(line));
}

void
TtpPredictor::train(std::uint64_t pc, Addr addr, bool went_offchip)
{
    // TTP is structurally trained by fills/evictions; outcome
    // training is a no-op.
    (void)pc;
    (void)addr;
    (void)went_offchip;
}

void
TtpPredictor::onFill(Addr line_num)
{
    Entry &e = entries[indexOf(line_num)];
    e.valid = true;
    e.tag = tagOf(line_num);
}

void
TtpPredictor::onEvict(Addr line_num)
{
    Entry &e = entries[indexOf(line_num)];
    if (e.valid && e.tag == tagOf(line_num))
        e.valid = false;
}

void
TtpPredictor::reset()
{
    for (auto &e : entries)
        e = Entry{};
}

void
TtpPredictor::saveState(SnapshotWriter &w) const
{
    w.u64(entries.size());
    for (const Entry &e : entries) {
        w.u16(e.tag);
        w.boolean(e.valid);
    }
}

void
TtpPredictor::restoreState(SnapshotReader &r)
{
    r.expectU64(entries.size(), "TTP shadow tag count");
    for (Entry &e : entries) {
        e.tag = r.u16();
        e.valid = r.boolean();
    }
}

} // namespace athena

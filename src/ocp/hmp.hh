/**
 * @file
 * HMP: hit-miss predictor (Yoaz et al., ISCA 1999), used as an OCP
 * in the Athena paper. A hybrid of three component predictors,
 * analogous to hybrid branch prediction:
 *   - local:  per-PC history of off-chip outcomes -> PHT,
 *   - gshare: global off-chip history xor PC -> PHT,
 *   - gskew:  majority of three tables indexed by skewed hashes.
 * The final prediction is the majority vote of the components.
 */

#ifndef ATHENA_OCP_HMP_HH
#define ATHENA_OCP_HMP_HH

#include <array>
#include <cstddef>
#include <cstdint>

#include "common/sat_counter.hh"
#include "ocp/ocp.hh"

namespace athena
{

class HmpPredictor final : public OffChipPredictor
{
  public:
    HmpPredictor() : OffChipPredictor(OcpKind::kHmp) { reset(); }

    const char *name() const override { return "hmp"; }

    bool predict(std::uint64_t pc, Addr addr) override;
    void train(std::uint64_t pc, Addr addr, bool went_offchip) override;

    void reset() override;

    void saveState(SnapshotWriter &w) const override;
    void restoreState(SnapshotReader &r) override;

    std::size_t
    storageBits() const override
    {
        // local: 1024 x 8-bit histories + 4096 x 2-bit PHT;
        // gshare: 4096 x 2; gskew: 3 x 4096 x 2. ~11 KB with tags.
        return 1024 * 8 + 4096 * 2 + 4096 * 2 + 3 * 4096 * 2;
    }

  private:
    static constexpr unsigned kLocalEntries = 1024;
    static constexpr unsigned kPhtSize = 4096;
    static constexpr unsigned kHistBits = 8;

    bool localPredict(std::uint64_t pc) const;
    bool gsharePredict(std::uint64_t pc) const;
    bool gskewPredict(std::uint64_t pc, Addr addr) const;

    std::array<std::uint8_t, kLocalEntries> localHistory{};
    std::array<SatCounter<2>, kPhtSize> localPht;
    std::array<SatCounter<2>, kPhtSize> gsharePht;
    std::array<std::array<SatCounter<2>, kPhtSize>, 3> gskewPht;
    std::uint64_t globalHistory = 0;
};

} // namespace athena

#endif // ATHENA_OCP_HMP_HH

/**
 * @file
 * Set-associative cache model with LRU replacement and
 * prefetch-fill metadata.
 *
 * The model is functional + latency-annotated: lookups and fills are
 * instantaneous state updates; the timing contribution of each level
 * is the fixed round-trip latency from Table 5, applied by the
 * memory system that composes the levels. Lines carry prefetch
 * provenance so accuracy, timeliness, pollution (section 5.2.3) and
 * the Fig. 3 off-chip-fill statistics can be measured exactly.
 */

#ifndef ATHENA_MEM_CACHE_HH
#define ATHENA_MEM_CACHE_HH

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hh"
#include "mem/shard.hh"

namespace athena
{

class SnapshotReader;
class SnapshotWriter;

/** Static configuration of one cache level. */
struct CacheParams
{
    std::string name = "cache";
    std::uint64_t sizeBytes = 48 << 10;
    unsigned ways = 12;
    /** Round-trip latency of this level (cycles, cumulative model). */
    Cycle latency = 5;
};

/** Result of a lookup. */
struct CacheLookup
{
    bool hit = false;
    /** The line had been brought in by a prefetch and this is the
     *  first demand touch (prefetch "used"). */
    bool firstPrefetchTouch = false;
    /** Prefetcher credit token stored at fill time. */
    std::uint64_t pfMeta = 0;
    /** Which prefetcher (slot index) filled it. */
    std::uint8_t pfSlot = 0;
    /** Cycle at which the line's data is available (late prefetch). */
    Cycle readyAt = 0;
    /** The prefetch that brought the line was filled from DRAM. */
    bool pfFromDram = false;
};

/** Result of a fill (eviction information). */
struct CacheEviction
{
    bool evictedValid = false;
    Addr evictedLine = 0;
    /** Evicted line was a prefetch never touched by a demand. */
    bool evictedUnusedPrefetch = false;
    std::uint64_t evictedPfMeta = 0;
    std::uint8_t evictedPfSlot = 0;
    bool evictedPfFromDram = false;
    /** The fill that caused this eviction was itself a prefetch. */
    bool causedByPrefetch = false;
    /** Way the line landed in (or already occupied on a resident
     *  refill) — lets deferred-completion patches address the line
     *  by index instead of re-scanning the set (patchReadyAt). */
    std::uint8_t filledWay = 0;
};

/**
 * Precomputed lookup coordinates of one line in this cache level:
 * the set base offset, the packed tag key, and the line number.
 * The demand walk computes one CacheRef per level per access and
 * reuses it across the lookup -> fill sequence, so the set/tag
 * arithmetic runs once instead of once per cache operation.
 */
struct CacheRef
{
    std::size_t base = 0;  ///< setIndex * ways into the way arrays.
    std::uint64_t key = 0; ///< Packed (tag << 1) | valid.
    Addr line = 0;         ///< The line number (fill metadata).
};

/**
 * One cache level. Indexed by cache-line number (byte addr >> 6).
 */
class Cache
{
  public:
    explicit Cache(const CacheParams &params);

    /** Precompute the lookup coordinates of a line (pure). */
    CacheRef
    ref(Addr line_num) const
    {
        return {setBase(line_num), keyOf(line_num), line_num};
    }

    /**
     * Demand lookup: updates LRU and clears the prefetched bit on a
     * hit (first touch is reported).
     */
    CacheLookup access(const CacheRef &ref, Cycle now);
    CacheLookup
    access(Addr line_num, Cycle now)
    {
        return access(ref(line_num), now);
    }

    /**
     * Inline fast path of access() for the dominant case: the
     * MRU-way prediction hits and the line carries no prefetch
     * provenance. Performs exactly the state updates access() would
     * (hit counter, LRU stamp, readyAt refresh) and returns true
     * with the pre-refresh readyAt; returns false with NO state
     * changed when the case is anything else — the caller then runs
     * the full access() and gets an identical outcome.
     */
    bool
    accessHitFast(const CacheRef &r, Cycle now, Cycle &ready)
    {
        const std::size_t idx =
            r.base + mruWay[setIndex(r.line)];
        if (tagv[idx] != r.key)
            return false;
        Line &line = lines[idx];
        if (line.prefetched)
            return false;
        ++statHits;
        lru[idx] = ++lruClock;
        ready = line.readyAt;
        if (now > line.readyAt)
            line.readyAt = now;
        return true;
    }

    /** Probe without disturbing replacement or prefetch state. */
    bool
    contains(const CacheRef &r) const
    {
        return findWay(r.base, r.key) >= 0;
    }
    bool contains(Addr line_num) const
    {
        return contains(ref(line_num));
    }

    /**
     * Prefetch lookup: updates LRU but does NOT clear the
     * prefetched bit (a prefetch touching a prefetched line does
     * not count as a demand use).
     */
    bool touch(const CacheRef &ref);
    bool touch(Addr line_num) { return touch(ref(line_num)); }

    /**
     * Insert a line.
     *
     * @param ref        precomputed coordinates (see ref())
     * @param now        current cycle (LRU stamp)
     * @param ready_at   cycle the data actually arrives
     * @param is_prefetch fill caused by a prefetcher
     * @param pf_slot    prefetcher slot index
     * @param pf_meta    prefetcher credit token
     * @param pf_from_dram the prefetch data came from main memory
     */
    CacheEviction fill(const CacheRef &ref, Cycle now, Cycle ready_at,
                       bool is_prefetch, std::uint8_t pf_slot = 0,
                       std::uint64_t pf_meta = 0,
                       bool pf_from_dram = false);
    CacheEviction
    fill(Addr line_num, Cycle now, Cycle ready_at, bool is_prefetch,
         std::uint8_t pf_slot = 0, std::uint64_t pf_meta = 0,
         bool pf_from_dram = false)
    {
        return fill(ref(line_num), now, ready_at, is_prefetch,
                    pf_slot, pf_meta, pf_from_dram);
    }

    /**
     * Deliver the completion cycle of a fill whose data-arrival
     * time was not yet known at fill() time (batched DRAM service:
     * the line is inserted eagerly with a provisional readyAt, the
     * real cycle is patched in when the controller queue drains —
     * see Simulator's prefetch fill batching). Addressed by the
     * coordinates of the fill (set base + CacheEviction::filledWay
     * + packed key), so the patch is one tag compare and a store —
     * no set scan. Touches nothing but the line's readyAt: no LRU,
     * MRU-hint, or statistics change. A line evicted since the
     * fill fails the tag check and is skipped silently — its
     * readyAt would have died with the eviction under scalar
     * service too.
     */
    void
    patchReadyAt(std::size_t set_base, unsigned way,
                 std::uint64_t key, Cycle ready_at)
    {
        const std::size_t idx = set_base + way;
        if (tagv[idx] == key)
            lines[idx].readyAt = ready_at;
    }

    /** Invalidate a single line if present. */
    void invalidate(Addr line_num);

    /** Drop all contents. */
    void reset();

    /**
     * Snapshot contract: geometry guard (sets, ways) followed by
     * the full array state — tags, LRU stamps, MRU hints, per-line
     * prefetch attribution and readyAt — plus the stat counters.
     */
    void saveState(SnapshotWriter &w) const;
    void restoreState(SnapshotReader &r);

    const CacheParams &params() const { return cfg; }
    unsigned numSets() const { return sets; }

    // Cumulative statistics (never reset by epochs).
    std::uint64_t statHits = 0;
    std::uint64_t statMisses = 0;
    std::uint64_t statPrefetchFills = 0;
    std::uint64_t statUnusedPrefetchEvictions = 0;

  private:
    /**
     * Cold per-line metadata. The tag and valid bit live separately
     * in the packed #tagv array (lookup way-scan) and the LRU
     * stamps in the packed #lru array (victim way-scan), so both
     * hot scans stream through 8 bytes per way instead of pulling
     * in this struct.
     */
    struct Line
    {
        bool prefetched = false;
        bool pfFromDram = false;
        std::uint8_t pfSlot = 0;
        std::uint64_t pfMeta = 0;
        Cycle readyAt = 0;
    };

    unsigned setIndex(Addr line_num) const
    {
        return static_cast<unsigned>(line_num & (sets - 1));
    }
    Addr tagOf(Addr line_num) const { return line_num >> setBits; }
    /** Packed (tag << 1) | valid key a resident line matches. */
    std::uint64_t keyOf(Addr line_num) const
    {
        return (tagOf(line_num) << 1) | 1u;
    }

    /** Way holding @p line_num within its set, or -1. */
    int findWay(std::size_t set_base, std::uint64_t key) const
    {
        const std::uint64_t *tags = &tagv[set_base];
        for (unsigned w = 0; w < cfg.ways; ++w) {
            if (tags[w] == key)
                return static_cast<int>(w);
        }
        return -1;
    }

    std::size_t setBase(Addr line_num) const
    {
        return static_cast<std::size_t>(setIndex(line_num)) *
               cfg.ways;
    }

    CacheParams cfg;
    unsigned sets;
    unsigned setBits;
    std::uint64_t lruClock = 0;
    /**
     * Hot lookup keys, sets * ways row-major by set: packed
     * (tag << 1) | valid, 0 when invalid. This is the only array a
     * miss has to scan.
     */
    std::vector<std::uint64_t> tagv;
    /** LRU stamps, sets * ways row-major: the only array the
     *  victim scan of a fill has to read. */
    std::vector<std::uint64_t> lru;
    /**
     * Per-set most-recently-hit way — a way-prediction hint for the
     * demand lookup. Purely an optimization: the probe verifies the
     * full key, so a stale hint only costs the scan it would have
     * done anyway (results are unchanged). Demand streams re-touch
     * the same line often enough that the one-compare fast path
     * wins on every hit-heavy workload.
     */
    std::vector<std::uint8_t> mruWay;
    std::vector<Line> lines; ///< sets * ways, row-major by set.
};

/**
 * Precomputed lookup coordinates of one line in a banked LLC: the
 * bank-local CacheRef plus the owning bank. The embedded ref's
 * `line` field is the bank-local line number; callers that need the
 * global line keep it themselves (they computed it).
 */
struct BankedRef
{
    CacheRef ref;      ///< Bank-local coordinates.
    unsigned bank = 0; ///< Owning bank index.
};

/**
 * The shared LLC as N line-interleaved banks (`bank = line mod N`,
 * bank-local line = `line / N`), each a full Cache of 1/N the total
 * capacity. With a power-of-two bank count the interleave is a pure
 * re-labeling of the monolithic set index — bank bits + bank-local
 * set bits reassemble the monolithic set index and the tags
 * coincide — so lookup/fill/victim behavior is bit-identical across
 * {1, 2, 4, ...} banks (pinned by test_shard_order.cc). Non-pow2
 * counts decode through the exact reciprocal division and simply
 * define a different (still valid) geometry.
 *
 * Bank-local evictions are translated back to global line numbers
 * here, so downstream consumers (OCP eviction feed, pollution
 * tracking) never see bank-local addresses.
 */
class BankedLlc
{
  public:
    BankedLlc(const CacheParams &total, unsigned bank_count,
              bool force_division = false);

    unsigned bankCount() const
    {
        return static_cast<unsigned>(banks.size());
    }
    Cache &bank(unsigned i) { return banks[i]; }
    const Cache &bank(unsigned i) const { return banks[i]; }

    unsigned bankOf(Addr line_num) const
    {
        return static_cast<unsigned>(decode.shardOf(line_num));
    }

    /** Precompute the (bank, bank-local) coordinates of a line. */
    BankedRef
    ref(Addr line_num) const
    {
        const unsigned b = bankOf(line_num);
        return {banks[b].ref(decode.localLine(line_num)), b};
    }

    CacheLookup
    access(const BankedRef &r, Cycle now)
    {
        return banks[r.bank].access(r.ref, now);
    }

    bool
    accessHitFast(const BankedRef &r, Cycle now, Cycle &ready)
    {
        return banks[r.bank].accessHitFast(r.ref, now, ready);
    }

    bool touch(const BankedRef &r)
    {
        return banks[r.bank].touch(r.ref);
    }
    bool touch(Addr line_num) { return touch(ref(line_num)); }

    /** Insert a line; eviction addresses come back global. */
    CacheEviction
    fill(const BankedRef &r, Cycle now, Cycle ready_at,
         bool is_prefetch, std::uint8_t pf_slot = 0,
         std::uint64_t pf_meta = 0, bool pf_from_dram = false)
    {
        CacheEviction ev =
            banks[r.bank].fill(r.ref, now, ready_at, is_prefetch,
                               pf_slot, pf_meta, pf_from_dram);
        if (ev.evictedValid)
            ev.evictedLine =
                decode.globalLine(ev.evictedLine, r.bank);
        return ev;
    }

    void
    patchReadyAt(unsigned bank_idx, std::size_t set_base,
                 unsigned way, std::uint64_t key, Cycle ready_at)
    {
        banks[bank_idx].patchReadyAt(set_base, way, key, ready_at);
    }

    void reset();

    /** Total-LLC parameters (capacity, latency) as configured. */
    const CacheParams &params() const { return total; }

    // Aggregated statistics (sum over banks; each global line maps
    // to exactly one bank, so the sums equal the monolithic
    // counters).
    std::uint64_t statHits() const;
    std::uint64_t statMisses() const;
    std::uint64_t statPrefetchFills() const;
    std::uint64_t statUnusedPrefetchEvictions() const;

  private:
    CacheParams total;
    ShardDecode decode;
    std::vector<Cache> banks;
};

} // namespace athena

#endif // ATHENA_MEM_CACHE_HH

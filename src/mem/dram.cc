/**
 * @file
 * DRAM channel implementation.
 */

#include "mem/dram.hh"

#include <algorithm>
#include <bit>
#include <cassert>
#include <cmath>
#include <cstdint>

namespace athena
{

Dram::Dram(const DramParams &params) : cfg(params)
{
    assert(cfg.banks >= 1 && cfg.banks <= bankState.size());
    bankCount = cfg.banks;
    // cycles per 64 B line on the data bus: bytes / (GB/s) * GHz.
    lineCycles = static_cast<double>(kLineBytes) / cfg.bandwidthGBps *
                 cfg.coreGHz;
    tCycles = static_cast<Cycle>(std::llround(cfg.tNs * cfg.coreGHz));
    tCcdCycles =
        static_cast<Cycle>(std::llround(cfg.tCcdNs * cfg.coreGHz));
    lineOccupancy = static_cast<Cycle>(std::llround(lineCycles));
    const std::uint64_t lines_per_row = cfg.rowBytes / kLineBytes;
    if (std::has_single_bit(lines_per_row) &&
        std::has_single_bit(static_cast<std::uint64_t>(bankCount))) {
        shiftDecode = true;
        rowShift = static_cast<unsigned>(
            std::bit_width(lines_per_row) - 1);
        bankShift = static_cast<unsigned>(
            std::bit_width(static_cast<std::uint64_t>(bankCount)) -
            1);
        bankMask = bankCount - 1;
    }
    reset();
}

Cycle
Dram::serve(Cycle arrival, Addr line_num, AccessType type)
{
    unsigned bank;
    Addr row;
    if (shiftDecode) {
        bank =
            static_cast<unsigned>((line_num >> rowShift) & bankMask);
        row = line_num >> (rowShift + bankShift);
    } else {
        const std::uint64_t lines_per_row =
            cfg.rowBytes / kLineBytes;
        bank = static_cast<unsigned>((line_num / lines_per_row) %
                                     bankCount);
        row = line_num / (lines_per_row * bankCount);
    }

    Bank &b = bankState[bank];
    Cycle bank_free = std::max(arrival, b.busyUntil);
    Cycle column_ready;

    // Column accesses pipeline within an open row (tCCD), so
    // row-hit streams are limited only by the shared data bus. A
    // row *miss* must precharge + activate, and the bank cannot
    // open another row until the row cycle time tRC elapses — this
    // is what makes scattered (inaccurate-prefetch) traffic consume
    // far more bank time than sequential traffic, the asymmetry the
    // paper's bandwidth-constrained results rest on.
    if (b.openRow == row) {
        column_ready = bank_free;
        b.busyUntil = column_ready + tCcdCycles;
        ++window.rowHits;
        ++total.rowHits;
    } else {
        column_ready = bank_free + 2 * tCycles; // tRP + tRCD
        b.openRow = row;
        b.busyUntil = bank_free + 4 * tCycles;  // tRC
        ++window.rowMisses;
        ++total.rowMisses;
    }

    Cycle transfer_start =
        std::max(column_ready + tCycles, busNextFree);
    const Cycle occupancy = lineOccupancy;
    Cycle done = transfer_start + occupancy;
    busNextFree = done;

    window.busBusyCycles += occupancy;
    total.busBusyCycles += occupancy;
    switch (type) {
      case AccessType::kDemandLoad:
      case AccessType::kDemandStore:
        ++window.demandRequests;
        ++total.demandRequests;
        break;
      case AccessType::kPrefetch:
        ++window.prefetchRequests;
        ++total.prefetchRequests;
        break;
      case AccessType::kOcp:
        ++window.ocpRequests;
        ++total.ocpRequests;
        break;
    }
    return done;
}

DramCounters
Dram::takeCounters()
{
    DramCounters out = window;
    window = DramCounters{};
    return out;
}

void
Dram::reset()
{
    busNextFree = 0;
    for (auto &b : bankState)
        b = Bank{};
    window = DramCounters{};
    total = DramCounters{};
}

} // namespace athena

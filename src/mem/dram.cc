/**
 * @file
 * DRAM channel implementation: request-queue controller with a
 * batched drain kernel.
 */

#include "mem/dram.hh"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdint>
#include <stdexcept>
#include <string>

#include "snapshot/snapshot.hh"

namespace athena
{

namespace
{

void
writeDramCounters(SnapshotWriter &w, const DramCounters &c)
{
    w.u64(c.demandRequests);
    w.u64(c.prefetchRequests);
    w.u64(c.ocpRequests);
    w.u64(c.rowHits);
    w.u64(c.rowMisses);
    w.u64(c.busBusyCycles);
}

void
readDramCounters(SnapshotReader &r, DramCounters &c)
{
    c.demandRequests = r.u64();
    c.prefetchRequests = r.u64();
    c.ocpRequests = r.u64();
    c.rowHits = r.u64();
    c.rowMisses = r.u64();
    c.busBusyCycles = r.u64();
}

} // namespace

Dram::Dram(const DramParams &params) : cfg(params)
{
    if (cfg.banks < 1 || cfg.banks > kMaxBanks) {
        throw std::invalid_argument(
            "DramParams::banks must be in [1, " +
            std::to_string(kMaxBanks) + "], got " +
            std::to_string(cfg.banks));
    }
    if (cfg.rowBytes < kLineBytes || cfg.rowBytes % kLineBytes != 0) {
        throw std::invalid_argument(
            "DramParams::rowBytes must be a positive multiple of " +
            std::to_string(kLineBytes) + " bytes, got " +
            std::to_string(cfg.rowBytes));
    }
    if (!(cfg.bandwidthGBps > 0.0) || !(cfg.coreGHz > 0.0)) {
        throw std::invalid_argument(
            "DramParams bandwidthGBps and coreGHz must be > 0");
    }
    bankCount = cfg.banks;
    // cycles per 64 B line on the data bus: bytes / (GB/s) * GHz.
    lineCycles = static_cast<double>(kLineBytes) / cfg.bandwidthGBps *
                 cfg.coreGHz;
    tCycles = static_cast<Cycle>(std::llround(cfg.tNs * cfg.coreGHz));
    tCcdCycles =
        static_cast<Cycle>(std::llround(cfg.tCcdNs * cfg.coreGHz));
    lineOccupancy = static_cast<Cycle>(std::llround(lineCycles));
    linesPerRow = cfg.rowBytes / kLineBytes;
    if (!cfg.forceDivisionDecode &&
        std::has_single_bit(linesPerRow) &&
        std::has_single_bit(static_cast<std::uint64_t>(bankCount))) {
        shiftDecode = true;
        rowShift = static_cast<unsigned>(
            std::bit_width(linesPerRow) - 1);
        bankShift = static_cast<unsigned>(
            std::bit_width(static_cast<std::uint64_t>(bankCount)) -
            1);
        bankMask = bankCount - 1;
    }
    qArrival.resize(64);
    qLine.resize(64);
    qType.resize(64);
    qDone.resize(64);
    reset();
}

Cycle
Dram::serveOne(Cycle arrival, Addr line_num, AccessType type)
{
    unsigned bank;
    Addr row;
    if (shiftDecode) {
        bank =
            static_cast<unsigned>((line_num >> rowShift) & bankMask);
        row = line_num >> (rowShift + bankShift);
    } else {
        bank = static_cast<unsigned>((line_num / linesPerRow) %
                                     bankCount);
        row = line_num / (linesPerRow * bankCount);
    }

    Bank &b = bankState[bank];
    const Cycle bank_free = std::max(arrival, b.busyUntil);
    Cycle column_ready;
    if (b.openRow == row) {
        column_ready = bank_free;
        b.busyUntil = column_ready + tCcdCycles;
        ++window.rowHits;
        ++total.rowHits;
    } else {
        column_ready = bank_free + 2 * tCycles; // tRP + tRCD
        b.openRow = row;
        b.busyUntil = bank_free + 4 * tCycles;  // tRC
        ++window.rowMisses;
        ++total.rowMisses;
    }

    const Cycle transfer_start =
        std::max(column_ready + tCycles, busNextFree);
    const Cycle done = transfer_start + lineOccupancy;
    busNextFree = done;

    window.busBusyCycles += lineOccupancy;
    total.busBusyCycles += lineOccupancy;
    switch (type) {
      case AccessType::kDemandLoad:
      case AccessType::kDemandStore:
        ++window.demandRequests;
        ++total.demandRequests;
        break;
      case AccessType::kPrefetch:
        ++window.prefetchRequests;
        ++total.prefetchRequests;
        break;
      case AccessType::kOcp:
        ++window.ocpRequests;
        ++total.ocpRequests;
        break;
    }
    return done;
}

template <bool Shift>
void
Dram::serviceBatch(std::size_t n)
{
    // One fused pass in enqueue order: each request's bank/row is
    // decoded exactly once, inline (the decode mode selects the
    // loop instantiation, so the body is branchless on it). Bank
    // state is pulled into a local copy on first touch and written
    // back once per drain, so a row-hit streak (or any revisit of
    // a bank inside the batch) never re-touches the bank array;
    // the shared-bus cursor and all counters live in registers for
    // the whole batch.
    //
    // Column accesses pipeline within an open row (tCCD), so
    // row-hit streams are limited only by the shared data bus. A
    // row *miss* must precharge + activate, and the bank cannot
    // open another row until the row cycle time tRC elapses — this
    // is what makes scattered (inaccurate-prefetch) traffic consume
    // far more bank time than sequential traffic, the asymmetry the
    // paper's bandwidth-constrained results rest on.
    Cycle busy[kMaxBanks];
    Addr open[kMaxBanks];
    std::uint32_t touched = 0;
    Cycle bus = busNextFree;
    const Cycle occupancy = lineOccupancy;
    const Cycle t_cycles = tCycles;
    const Cycle t_ccd = tCcdCycles;
    std::uint64_t hits = 0, misses = 0;
    // Requester-class counts: demand (loads + stores), prefetch,
    // OCP — index derived from the AccessType value (loads and
    // stores share the demand bucket).
    std::uint64_t byClass[3] = {0, 0, 0};

    const Cycle *arrivals = qArrival.data();
    const Addr *lines = qLine.data();
    const std::uint8_t *types = qType.data();
    Cycle *out = qDone.data();
    const unsigned rs = rowShift;
    const unsigned bs = bankShift;
    const std::uint64_t bm = bankMask;
    const std::uint64_t lpr = linesPerRow;
    const std::uint64_t nb = bankCount;

    for (std::size_t i = 0; i < n; ++i) {
        const Addr line = lines[i];
        unsigned bank;
        Addr row;
        if constexpr (Shift) {
            bank = static_cast<unsigned>((line >> rs) & bm);
            row = line >> (rs + bs);
        } else {
            bank = static_cast<unsigned>((line / lpr) % nb);
            row = line / (lpr * nb);
        }

        const std::uint32_t bit = 1u << bank;
        if (!(touched & bit)) {
            touched |= bit;
            busy[bank] = bankState[bank].busyUntil;
            open[bank] = bankState[bank].openRow;
        }

        const Cycle bank_free = std::max(arrivals[i], busy[bank]);
        Cycle column_ready;
        if (open[bank] == row) {
            column_ready = bank_free;
            busy[bank] = column_ready + t_ccd;
            ++hits;
        } else {
            column_ready = bank_free + 2 * t_cycles; // tRP + tRCD
            open[bank] = row;
            busy[bank] = bank_free + 4 * t_cycles;   // tRC
            ++misses;
        }

        const Cycle transfer_start =
            std::max(column_ready + t_cycles, bus);
        bus = transfer_start + occupancy;
        out[i] = bus;

        const unsigned t = types[i];
        byClass[t >= 2 ? t - 1 : 0] += 1;
    }

    // Publish: per-bank state once per drain, then the bus cursor
    // and the batch-accumulated counters.
    while (touched != 0) {
        const unsigned bank = static_cast<unsigned>(
            std::countr_zero(touched));
        touched &= touched - 1;
        bankState[bank].busyUntil = busy[bank];
        bankState[bank].openRow = open[bank];
    }
    busNextFree = bus;

    const std::uint64_t bus_busy =
        static_cast<std::uint64_t>(n) * occupancy;
    window.demandRequests += byClass[0];
    window.prefetchRequests += byClass[1];
    window.ocpRequests += byClass[2];
    window.rowHits += hits;
    window.rowMisses += misses;
    window.busBusyCycles += bus_busy;
    total.demandRequests += byClass[0];
    total.prefetchRequests += byClass[1];
    total.ocpRequests += byClass[2];
    total.rowHits += hits;
    total.rowMisses += misses;
    total.busBusyCycles += bus_busy;
}

std::span<const Cycle>
Dram::drain()
{
    const std::size_t n = qSize;
    if (n == 0)
        return {};
    if (qDone.size() < n)
        qDone.resize(n);
    if (n == 1) {
        qDone[0] = serveOne(qArrival[0], qLine[0],
                            static_cast<AccessType>(qType[0]));
    } else if (shiftDecode) {
        serviceBatch<true>(n);
    } else {
        serviceBatch<false>(n);
    }
    qSize = 0;
    return {qDone.data(), n};
}

void
Dram::growQueue()
{
    const std::size_t cap = std::max<std::size_t>(
        64, 2 * qArrival.size());
    qArrival.resize(cap);
    qLine.resize(cap);
    qType.resize(cap);
    qDone.resize(cap);
}

DramCounters
Dram::takeCounters()
{
    DramCounters out = window;
    window = DramCounters{};
    return out;
}

void
Dram::reset()
{
    busNextFree = 0;
    for (auto &b : bankState)
        b = Bank{};
    window = DramCounters{};
    total = DramCounters{};
    qSize = 0;
}

void
Dram::saveState(SnapshotWriter &w) const
{
    if (qSize != 0) {
        throw SnapshotError("dram", "controller queue not empty at "
                                    "snapshot point");
    }
    w.u32(bankCount);
    w.u64(busNextFree);
    for (unsigned b = 0; b < bankCount; ++b) {
        w.u64(bankState[b].busyUntil);
        w.u64(bankState[b].openRow);
    }
    writeDramCounters(w, window);
    writeDramCounters(w, total);
}

void
Dram::restoreState(SnapshotReader &r)
{
    r.expectU32(bankCount, "DRAM bank count");
    busNextFree = r.u64();
    for (unsigned b = 0; b < bankCount; ++b) {
        bankState[b].busyUntil = r.u64();
        bankState[b].openRow = r.u64();
    }
    readDramCounters(r, window);
    readDramCounters(r, total);
    qSize = 0;
}

ChanneledDram::ChanneledDram(const DramParams &params,
                             unsigned channel_count)
    : decode(channel_count ? channel_count : 1,
             params.forceDivisionDecode)
{
    if (channel_count < 1 || channel_count > kMaxChannels) {
        throw std::invalid_argument(
            "ChanneledDram channel count must be in [1, " +
            std::to_string(kMaxChannels) + "], got " +
            std::to_string(channel_count));
    }
    chans.reserve(channel_count);
    for (unsigned ch = 0; ch < channel_count; ++ch)
        chans.emplace_back(params);
}

const DramCounters &
ChanneledDram::lifetime() const
{
    aggregate = DramCounters{};
    for (const Dram &d : chans) {
        const DramCounters &c = d.lifetime();
        aggregate.demandRequests += c.demandRequests;
        aggregate.prefetchRequests += c.prefetchRequests;
        aggregate.ocpRequests += c.ocpRequests;
        aggregate.rowHits += c.rowHits;
        aggregate.rowMisses += c.rowMisses;
        aggregate.busBusyCycles += c.busBusyCycles;
    }
    return aggregate;
}

void
ChanneledDram::reset()
{
    for (Dram &d : chans)
        d.reset();
}

} // namespace athena

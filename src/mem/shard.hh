/**
 * @file
 * Shard addressing for the shared-memory plane: line-address
 * interleaving across LLC banks and DRAM channels, plus the flat
 * shard-id convention the parallel engine's per-shard commit logs
 * use.
 *
 * A shard owns every Nth line: `shard = line mod N`, and the shard
 * sees the quotient `local = line / N` as its private line-address
 * space. Power-of-two shard counts decode with shift/mask (the
 * common case, zero-cost); any other count falls back to the same
 * Barrett-style reciprocal division FastMod uses, so odd shard
 * counts are first-class rather than asserted away. `globalLine`
 * inverts the split exactly: `local * N + shard` — needed when a
 * bank-local eviction address must be translated back before it
 * reaches the (global-line-keyed) OCP and pollution trackers.
 */

#ifndef ATHENA_MEM_SHARD_HH
#define ATHENA_MEM_SHARD_HH

#include <cassert>
#include <cstdint>

#include "common/types.hh"

namespace athena
{

/**
 * Splits a global line number into (shard, local line) for a fixed
 * shard count. The decode must be exact — shards partition the line
 * space — so the non-power-of-two path computes a true divmod via a
 * 128-bit reciprocal multiply with a one-step correction instead of
 * trusting the truncated estimate.
 */
class ShardDecode
{
  public:
    explicit ShardDecode(std::uint64_t count,
                         bool force_division = false)
        : n(count)
    {
        assert(count >= 1);
        const bool pow2 = (count & (count - 1)) == 0;
        if (pow2 && !force_division) {
            mask = count - 1;
            shift = 0;
            while ((std::uint64_t{1} << shift) < count)
                ++shift;
            magic = 0;
        } else {
            mask = 0;
            shift = 0;
            magic = ~std::uint64_t{0} / count;
        }
    }

    std::uint64_t count() const { return n; }

    /** shard = line mod count. */
    std::uint64_t
    shardOf(std::uint64_t line) const
    {
        if (magic == 0)
            return line & mask;
        return line - quotient(line) * n;
    }

    /** local = line / count. */
    std::uint64_t
    localLine(std::uint64_t line) const
    {
        if (magic == 0)
            return line >> shift;
        return quotient(line);
    }

    /** Exact inverse of (shardOf, localLine). */
    std::uint64_t
    globalLine(std::uint64_t local, std::uint64_t shard) const
    {
        return local * n + shard;
    }

  private:
    /**
     * floor(line / n) via reciprocal multiply. magic = floor(2^64/n)
     * underestimates the quotient by at most one for any n > 1, so a
     * single remainder check corrects it exactly.
     */
    std::uint64_t
    quotient(std::uint64_t line) const
    {
        std::uint64_t q = static_cast<std::uint64_t>(
            (static_cast<unsigned __int128>(line) * magic) >> 64);
        if (line - q * n >= n)
            ++q;
        return q;
    }

    std::uint64_t n;
    std::uint64_t mask;
    unsigned shift;
    std::uint64_t magic;
};

/**
 * Flat shard-id space for the parallel engine's per-shard commit
 * bookkeeping: LLC banks occupy ids [0, B), DRAM channels ids
 * [B, B + M). The total must fit the per-step logged bitmask.
 */
struct SharedShard
{
    static constexpr unsigned kMaxShards = 64;

    unsigned id = 0;

    static SharedShard
    llcBank(unsigned bank)
    {
        return {bank};
    }

    static SharedShard
    dramChannel(unsigned llc_banks, unsigned channel)
    {
        return {llc_banks + channel};
    }
};

} // namespace athena

#endif // ATHENA_MEM_SHARD_HH

/**
 * @file
 * Cache model implementation.
 */

#include "mem/cache.hh"

#include <bit>
#include <cassert>

namespace athena
{

Cache::Cache(const CacheParams &params) : cfg(params)
{
    std::uint64_t n_sets =
        cfg.sizeBytes / (static_cast<std::uint64_t>(kLineBytes) * cfg.ways);
    // Round down to a power of two for cheap indexing; the paper's
    // 12-way 48 KB L1 has 64 sets exactly.
    if (n_sets == 0)
        n_sets = 1;
    setBits = static_cast<unsigned>(std::bit_width(n_sets) - 1);
    sets = 1u << setBits;
    lines.resize(static_cast<std::size_t>(sets) * cfg.ways);
}

Cache::Line *
Cache::findLine(Addr line_num)
{
    Addr tag = tagOf(line_num);
    Line *set = &lines[static_cast<std::size_t>(setIndex(line_num)) *
                       cfg.ways];
    for (unsigned w = 0; w < cfg.ways; ++w) {
        if (set[w].valid && set[w].tag == tag)
            return &set[w];
    }
    return nullptr;
}

const Cache::Line *
Cache::findLine(Addr line_num) const
{
    return const_cast<Cache *>(this)->findLine(line_num);
}

CacheLookup
Cache::access(Addr line_num, Cycle now)
{
    CacheLookup res;
    Line *line = findLine(line_num);
    if (!line) {
        ++statMisses;
        return res;
    }
    ++statHits;
    res.hit = true;
    res.readyAt = line->readyAt;
    if (line->prefetched) {
        res.firstPrefetchTouch = true;
        res.pfMeta = line->pfMeta;
        res.pfSlot = line->pfSlot;
        res.pfFromDram = line->pfFromDram;
        line->prefetched = false;
    }
    line->lruStamp = ++lruClock;
    if (now > line->readyAt)
        line->readyAt = now;
    return res;
}

bool
Cache::contains(Addr line_num) const
{
    return findLine(line_num) != nullptr;
}

bool
Cache::touch(Addr line_num)
{
    Line *line = findLine(line_num);
    if (!line)
        return false;
    line->lruStamp = ++lruClock;
    return true;
}

CacheEviction
Cache::fill(Addr line_num, Cycle now, Cycle ready_at, bool is_prefetch,
            std::uint8_t pf_slot, std::uint64_t pf_meta,
            bool pf_from_dram)
{
    CacheEviction ev;
    ev.causedByPrefetch = is_prefetch;

    if (Line *existing = findLine(line_num)) {
        // Refill of a resident line: refresh metadata only.
        existing->lruStamp = ++lruClock;
        return ev;
    }

    Line *set = &lines[static_cast<std::size_t>(setIndex(line_num)) *
                       cfg.ways];
    Line *victim = &set[0];
    for (unsigned w = 0; w < cfg.ways; ++w) {
        if (!set[w].valid) {
            victim = &set[w];
            break;
        }
        if (set[w].lruStamp < victim->lruStamp)
            victim = &set[w];
    }

    if (victim->valid) {
        ev.evictedValid = true;
        ev.evictedLine = (victim->tag << setBits) | setIndex(line_num);
        if (victim->prefetched) {
            ev.evictedUnusedPrefetch = true;
            ev.evictedPfMeta = victim->pfMeta;
            ev.evictedPfSlot = victim->pfSlot;
            ev.evictedPfFromDram = victim->pfFromDram;
            ++statUnusedPrefetchEvictions;
        }
    }

    victim->valid = true;
    victim->tag = tagOf(line_num);
    victim->prefetched = is_prefetch;
    victim->pfSlot = pf_slot;
    victim->pfMeta = pf_meta;
    victim->pfFromDram = pf_from_dram;
    victim->readyAt = ready_at;
    victim->lruStamp = ++lruClock;
    if (is_prefetch)
        ++statPrefetchFills;
    (void)now;
    return ev;
}

void
Cache::invalidate(Addr line_num)
{
    if (Line *line = findLine(line_num))
        line->valid = false;
}

void
Cache::reset()
{
    for (auto &line : lines)
        line = Line{};
    lruClock = 0;
    statHits = statMisses = 0;
    statPrefetchFills = statUnusedPrefetchEvictions = 0;
}

} // namespace athena

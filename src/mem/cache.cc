/**
 * @file
 * Cache model implementation.
 *
 * Layout note: the lookup keys (tag + valid) are split out of the
 * per-line metadata into the packed `tagv` array. Lookups are the
 * hottest operation in the whole simulator — every load scans up to
 * `ways` entries per level — and the split keeps that scan inside
 * one or two cache lines of host memory instead of striding through
 * 40-byte metadata structs.
 */

#include "mem/cache.hh"

#include <bit>
#include <cassert>
#include <cstddef>
#include <cstdint>

#include "snapshot/snapshot.hh"

namespace athena
{

Cache::Cache(const CacheParams &params) : cfg(params)
{
    std::uint64_t n_sets =
        cfg.sizeBytes / (static_cast<std::uint64_t>(kLineBytes) * cfg.ways);
    // Round down to a power of two for cheap indexing; the paper's
    // 12-way 48 KB L1 has 64 sets exactly.
    if (n_sets == 0)
        n_sets = 1;
    setBits = static_cast<unsigned>(std::bit_width(n_sets) - 1);
    sets = 1u << setBits;
    tagv.resize(static_cast<std::size_t>(sets) * cfg.ways, 0);
    lru.resize(static_cast<std::size_t>(sets) * cfg.ways, 0);
    mruWay.resize(sets, 0);
    lines.resize(static_cast<std::size_t>(sets) * cfg.ways);
}

CacheLookup
Cache::access(const CacheRef &r, Cycle now)
{
    CacheLookup res;
    const std::size_t base = r.base;
    const unsigned set = setIndex(r.line);
    // Way prediction: probe the set's most-recently-hit way before
    // scanning. The key check makes this a pure shortcut.
    int w = mruWay[set];
    if (tagv[base + static_cast<std::size_t>(w)] != r.key) {
        w = findWay(base, r.key);
        if (w < 0) {
            ++statMisses;
            return res;
        }
        mruWay[set] = static_cast<std::uint8_t>(w);
    }
    ++statHits;
    Line &line = lines[base + static_cast<std::size_t>(w)];
    res.hit = true;
    res.readyAt = line.readyAt;
    if (line.prefetched) {
        res.firstPrefetchTouch = true;
        res.pfMeta = line.pfMeta;
        res.pfSlot = line.pfSlot;
        res.pfFromDram = line.pfFromDram;
        line.prefetched = false;
    }
    lru[base + static_cast<std::size_t>(w)] = ++lruClock;
    if (now > line.readyAt)
        line.readyAt = now;
    return res;
}

bool
Cache::touch(const CacheRef &r)
{
    const std::size_t base = r.base;
    int w = findWay(base, r.key);
    if (w < 0)
        return false;
    lru[base + static_cast<std::size_t>(w)] = ++lruClock;
    return true;
}

CacheEviction
Cache::fill(const CacheRef &r, Cycle now, Cycle ready_at,
            bool is_prefetch, std::uint8_t pf_slot,
            std::uint64_t pf_meta, bool pf_from_dram)
{
    CacheEviction ev;
    ev.causedByPrefetch = is_prefetch;

    const std::size_t base = r.base;
    std::uint64_t *tags = &tagv[base];
    std::uint64_t *stamps = &lru[base];
    Line *set = &lines[base];

    // Single fused way-scan: resident check and victim selection
    // (first invalid way, else LRU) in one pass over the tag array.
    // Fill is the second-hottest cache operation after access, and
    // the common case is a miss-fill that used to scan twice.
    unsigned victim_w = 0;
    bool have_invalid = false;
    for (unsigned w = 0; w < cfg.ways; ++w) {
        if (tags[w] == r.key) {
            // Refill of a resident line: refresh metadata only.
            stamps[w] = ++lruClock;
            ev.filledWay = static_cast<std::uint8_t>(w);
            return ev;
        }
        if (have_invalid)
            continue;
        if (!(tags[w] & 1)) {
            victim_w = w;
            have_invalid = true;
        } else if (stamps[w] < stamps[victim_w]) {
            victim_w = w;
        }
    }
    Line *victim = &set[victim_w];

    if (tags[victim_w] & 1) {
        ev.evictedValid = true;
        ev.evictedLine =
            ((tags[victim_w] >> 1) << setBits) | setIndex(r.line);
        if (victim->prefetched) {
            ev.evictedUnusedPrefetch = true;
            ev.evictedPfMeta = victim->pfMeta;
            ev.evictedPfSlot = victim->pfSlot;
            ev.evictedPfFromDram = victim->pfFromDram;
            ++statUnusedPrefetchEvictions;
        }
    }

    tags[victim_w] = r.key;
    victim->prefetched = is_prefetch;
    victim->pfSlot = pf_slot;
    victim->pfMeta = pf_meta;
    victim->pfFromDram = pf_from_dram;
    victim->readyAt = ready_at;
    stamps[victim_w] = ++lruClock;
    mruWay[setIndex(r.line)] = static_cast<std::uint8_t>(victim_w);
    ev.filledWay = static_cast<std::uint8_t>(victim_w);
    if (is_prefetch)
        ++statPrefetchFills;
    (void)now;
    return ev;
}

void
Cache::invalidate(Addr line_num)
{
    const std::size_t base = setBase(line_num);
    if (int w = findWay(base, keyOf(line_num)); w >= 0)
        tagv[base + static_cast<std::size_t>(w)] = 0;
}

void
Cache::reset()
{
    for (auto &t : tagv)
        t = 0;
    for (auto &s : lru)
        s = 0;
    for (auto &m : mruWay)
        m = 0;
    for (auto &line : lines)
        line = Line{};
    lruClock = 0;
    statHits = statMisses = 0;
    statPrefetchFills = statUnusedPrefetchEvictions = 0;
}

void
Cache::saveState(SnapshotWriter &w) const
{
    w.u32(sets);
    w.u32(cfg.ways);
    w.u64(lruClock);
    w.u64(statHits);
    w.u64(statMisses);
    w.u64(statPrefetchFills);
    w.u64(statUnusedPrefetchEvictions);
    for (std::uint64_t t : tagv)
        w.u64(t);
    for (std::uint64_t s : lru)
        w.u64(s);
    w.bytes(mruWay.data(), mruWay.size());
    for (const Line &line : lines) {
        w.boolean(line.prefetched);
        w.boolean(line.pfFromDram);
        w.u8(line.pfSlot);
        w.u64(line.pfMeta);
        w.u64(line.readyAt);
    }
}

void
Cache::restoreState(SnapshotReader &r)
{
    r.expectU32(sets, "cache set count");
    r.expectU32(cfg.ways, "cache way count");
    lruClock = r.u64();
    statHits = r.u64();
    statMisses = r.u64();
    statPrefetchFills = r.u64();
    statUnusedPrefetchEvictions = r.u64();
    for (std::uint64_t &t : tagv)
        t = r.u64();
    for (std::uint64_t &s : lru)
        s = r.u64();
    r.bytes(mruWay.data(), mruWay.size());
    for (Line &line : lines) {
        line.prefetched = r.boolean();
        line.pfFromDram = r.boolean();
        line.pfSlot = r.u8();
        line.pfMeta = r.u64();
        line.readyAt = r.u64();
    }
}

BankedLlc::BankedLlc(const CacheParams &total_params,
                     unsigned bank_count, bool force_division)
    : total(total_params), decode(bank_count ? bank_count : 1,
                                  force_division)
{
    assert(bank_count >= 1);
    CacheParams per_bank = total_params;
    per_bank.sizeBytes = total_params.sizeBytes / decode.count();
    banks.reserve(decode.count());
    for (std::uint64_t b = 0; b < decode.count(); ++b)
        banks.emplace_back(per_bank);
}

void
BankedLlc::reset()
{
    for (Cache &b : banks)
        b.reset();
}

std::uint64_t
BankedLlc::statHits() const
{
    std::uint64_t s = 0;
    for (const Cache &b : banks)
        s += b.statHits;
    return s;
}

std::uint64_t
BankedLlc::statMisses() const
{
    std::uint64_t s = 0;
    for (const Cache &b : banks)
        s += b.statMisses;
    return s;
}

std::uint64_t
BankedLlc::statPrefetchFills() const
{
    std::uint64_t s = 0;
    for (const Cache &b : banks)
        s += b.statPrefetchFills;
    return s;
}

std::uint64_t
BankedLlc::statUnusedPrefetchEvictions() const
{
    std::uint64_t s = 0;
    for (const Cache &b : banks)
        s += b.statUnusedPrefetchEvictions;
    return s;
}

} // namespace athena

/**
 * @file
 * Main memory model: DDR-like banks with an open-row policy behind a
 * shared data bus whose per-line occupancy encodes the provisioned
 * bandwidth (Table 5: 1 rank, 8 banks, 2 KB rows, tRCD = tRP = tCAS
 * = 12.5 ns, 3.2 GB/s per core by default, 4 GHz core clock).
 *
 * Queuing delay on the shared bus is the load-bearing mechanism of
 * the whole reproduction: inaccurate prefetch and OCP traffic
 * occupies the bus and pushes demand completions out, which is what
 * makes naive prefetching *degrade* performance on the adverse
 * workloads of Fig. 1/2 and what the coordination policies trade
 * off.
 */

#ifndef ATHENA_MEM_DRAM_HH
#define ATHENA_MEM_DRAM_HH

#include <array>
#include <cstdint>

#include "common/types.hh"

namespace athena
{

/** DRAM configuration. */
struct DramParams
{
    /** Provisioned bandwidth per channel in GB/s. */
    double bandwidthGBps = 3.2;
    /** Core clock in GHz (converts ns timings to cycles). */
    double coreGHz = 4.0;
    unsigned banks = 8;
    /** Row buffer size in bytes (2 KB -> 32 lines). */
    std::uint64_t rowBytes = 2048;
    /** tRCD = tRP = tCAS in nanoseconds. */
    double tNs = 12.5;
    /**
     * tCCD (column-to-column delay within an open row) in
     * nanoseconds. 1.0 ns is 4 cycles at the default 4 GHz core
     * clock, preserving the historical default-geometry timing
     * exactly; deriving it from time instead of a hardcoded cycle
     * count keeps row-hit spacing correct at every coreGHz.
     */
    double tCcdNs = 1.0;
};

/** Per-epoch-resettable DRAM counters. */
struct DramCounters
{
    std::uint64_t demandRequests = 0;
    std::uint64_t prefetchRequests = 0;
    std::uint64_t ocpRequests = 0;
    std::uint64_t rowHits = 0;
    std::uint64_t rowMisses = 0;
    /** Total cycles the data bus was occupied. */
    std::uint64_t busBusyCycles = 0;

    std::uint64_t totalRequests() const
    {
        return demandRequests + prefetchRequests + ocpRequests;
    }
};

/**
 * One DRAM channel.
 */
class Dram
{
  public:
    explicit Dram(const DramParams &params);

    /**
     * Service a 64 B line read/fill.
     *
     * @param arrival   cycle the request reaches the controller
     * @param line_num  cache-line number
     * @param type      requester class (for accounting)
     * @return cycle at which the data transfer completes
     */
    Cycle serve(Cycle arrival, Addr line_num, AccessType type);

    /**
     * Peek at the queueing headroom: cycles until the data bus is
     * free relative to @p now (0 when idle). Used by
     * bandwidth-aware components (Pythia's reward, HPAC features).
     */
    Cycle busBacklog(Cycle now) const
    {
        return busNextFree > now ? busNextFree - now : 0;
    }

    /** Data-bus occupancy per 64 B transfer, in cycles. */
    double cyclesPerLine() const { return lineCycles; }

    /** Counters accumulated since the last takeCounters(). */
    const DramCounters &counters() const { return window; }

    /** Return and reset the accumulation window (epoch sampling). */
    DramCounters takeCounters();

    /** Lifetime counters. */
    const DramCounters &lifetime() const { return total; }

    void reset();

    const DramParams &params() const { return cfg; }

  private:
    struct Bank
    {
        Cycle busyUntil = 0;
        Addr openRow = ~0ull;
    };

    DramParams cfg;
    double lineCycles;  ///< Bus occupancy per line.
    Cycle tCycles;      ///< tRCD = tRP = tCAS in cycles.
    Cycle tCcdCycles;   ///< tCCD in cycles (from tCcdNs x coreGHz).
    /** lineCycles rounded once at construction (serve hot path). */
    Cycle lineOccupancy = 0;
    /**
     * Power-of-two address decomposition, precomputed so serve()
     * runs shift/mask instead of two 64-bit divisions per request.
     * rowShift = log2(lines per row); bankShift/bankMask decode the
     * bank. Valid when shiftDecode is true (the Table 5 geometry —
     * 32-line rows x 8 banks — always qualifies).
     */
    unsigned rowShift = 0;
    unsigned bankShift = 0;
    std::uint64_t bankMask = 0;
    bool shiftDecode = false;
    Cycle busNextFree = 0;
    std::array<Bank, 32> bankState;
    unsigned bankCount;

    DramCounters window;
    DramCounters total;
};

} // namespace athena

#endif // ATHENA_MEM_DRAM_HH

/**
 * @file
 * Main memory model: DDR-like banks with an open-row policy behind a
 * shared data bus whose per-line occupancy encodes the provisioned
 * bandwidth (Table 5: 1 rank, 8 banks, 2 KB rows, tRCD = tRP = tCAS
 * = 12.5 ns, 3.2 GB/s per core by default, 4 GHz core clock).
 *
 * Queuing delay on the shared bus is the load-bearing mechanism of
 * the whole reproduction: inaccurate prefetch and OCP traffic
 * occupies the bus and pushes demand completions out, which is what
 * makes naive prefetching *degrade* performance on the adverse
 * workloads of Fig. 1/2 and what the coordination policies trade
 * off.
 *
 * The controller is request-queue based: producers enqueue()
 * requests and drain() services everything pending in one batched
 * kernel (bank/row decoded once per request, per-bank open-row and
 * busy-until state carried in registers across row-hit streaks and
 * published back to the bank array once per drain, counters
 * accumulated per batch). serve() remains as the scalar
 * enqueue+drain-of-1 shim — both paths run the same kernel, so the
 * completion cycles, counters, and busBacklog() are bit-identical
 * however requests are grouped into batches.
 */

#ifndef ATHENA_MEM_DRAM_HH
#define ATHENA_MEM_DRAM_HH

#include <array>
#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "common/types.hh"
#include "mem/shard.hh"

namespace athena
{

class SnapshotReader;
class SnapshotWriter;

/** DRAM configuration. */
struct DramParams
{
    /** Provisioned bandwidth per channel in GB/s. Must be > 0. */
    double bandwidthGBps = 3.2;
    /** Core clock in GHz (converts ns timings to cycles). > 0. */
    double coreGHz = 4.0;
    /** Bank count; must be in [1, kMaxBanks]. */
    unsigned banks = 8;
    /**
     * Row buffer size in bytes (2 KB -> 32 lines). Must be a
     * positive multiple of the 64 B line size.
     */
    std::uint64_t rowBytes = 2048;
    /** tRCD = tRP = tCAS in nanoseconds. */
    double tNs = 12.5;
    /**
     * tCCD (column-to-column delay within an open row) in
     * nanoseconds. 1.0 ns is 4 cycles at the default 4 GHz core
     * clock, preserving the historical default-geometry timing
     * exactly; deriving it from time instead of a hardcoded cycle
     * count keeps row-hit spacing correct at every coreGHz.
     */
    double tCcdNs = 1.0;
    /**
     * Validation/testing knob: run the general division/modulo
     * bank-row decode even when the geometry is power-of-two and
     * would qualify for the shift/mask fast decode. The two decodes
     * are required to agree bit-for-bit wherever both are defined —
     * this knob lets tests pin that equivalence on the same
     * geometry.
     */
    bool forceDivisionDecode = false;
};

/**
 * One request on the DRAM controller queue: a 64 B line read/fill.
 * The queue itself is stored as a structure of arrays inside Dram
 * (see Dram::enqueue); this struct is the element view used at API
 * boundaries and in tests.
 */
struct DramRequest
{
    Cycle arrival = 0;   ///< Cycle the request reaches the controller.
    Addr line = 0;       ///< Cache-line number.
    AccessType type = AccessType::kDemandLoad; ///< Requester class.
};

/** Per-epoch-resettable DRAM counters. */
struct DramCounters
{
    std::uint64_t demandRequests = 0;
    std::uint64_t prefetchRequests = 0;
    std::uint64_t ocpRequests = 0;
    std::uint64_t rowHits = 0;
    std::uint64_t rowMisses = 0;
    /** Total cycles the data bus was occupied. */
    std::uint64_t busBusyCycles = 0;

    std::uint64_t totalRequests() const
    {
        return demandRequests + prefetchRequests + ocpRequests;
    }
};

/**
 * One DRAM channel.
 */
class Dram
{
  public:
    /** Hard cap on DramParams::banks (size of the bank array). */
    static constexpr unsigned kMaxBanks = 32;

    /**
     * @throws std::invalid_argument when @p params violates the
     * stated contract: banks outside [1, kMaxBanks], rowBytes not a
     * positive multiple of the 64 B line size, or a non-positive
     * bandwidth/clock. Validation is release-mode: a bad geometry
     * must never silently index out of the bank array.
     */
    explicit Dram(const DramParams &params);

    /**
     * Append a request to the controller queue without servicing
     * it. Requests are serviced strictly in enqueue order by the
     * next drain(); nothing observable (counters, busBacklog)
     * changes until then.
     *
     * @param arrival   cycle the request reaches the controller
     * @param line_num  cache-line number
     * @param type      requester class (for accounting)
     */
    void
    enqueue(Cycle arrival, Addr line_num, AccessType type)
    {
        if (qSize == qArrival.size()) [[unlikely]]
            growQueue();
        qArrival[qSize] = arrival;
        qLine[qSize] = line_num;
        qType[qSize] = static_cast<std::uint8_t>(type);
        ++qSize;
    }

    /**
     * Service every pending request in enqueue order through the
     * batched kernel and return their completion cycles, index-
     * aligned with the enqueue order. The returned span points into
     * internal storage and is valid until the next enqueue/drain.
     * Draining an empty queue returns an empty span.
     */
    std::span<const Cycle> drain();

    /** Requests enqueued but not yet drained. */
    std::size_t pendingRequests() const { return qSize; }

    /**
     * Service a 64 B line read/fill: the scalar shim over the
     * queue, equivalent to enqueue() + drain()-of-1. Any requests
     * already pending are drained first (in order, ahead of this
     * one), so mixing serve() and enqueue() keeps the global
     * request order well defined. With an empty queue (the
     * demand-miss hot path) it runs the drain kernel's scalar
     * specialization directly, skipping the queue bookkeeping —
     * same kernel, same results.
     *
     * @return cycle at which this request's data transfer completes
     */
    Cycle
    serve(Cycle arrival, Addr line_num, AccessType type)
    {
        if (qSize == 0) [[likely]]
            return serveOne(arrival, line_num, type);
        enqueue(arrival, line_num, type);
        return drain().back();
    }

    /**
     * Peek at the queueing headroom: cycles until the data bus is
     * free relative to @p now (0 when idle). Used by
     * bandwidth-aware components (Pythia's reward, HPAC features).
     * Reflects drained requests only — enqueue() does not move it.
     */
    Cycle busBacklog(Cycle now) const
    {
        return busNextFree > now ? busNextFree - now : 0;
    }

    /** Data-bus occupancy per 64 B transfer, in cycles. */
    double cyclesPerLine() const { return lineCycles; }

    /** Counters accumulated since the last takeCounters(). */
    const DramCounters &counters() const { return window; }

    /** Return and reset the accumulation window (epoch sampling). */
    DramCounters takeCounters();

    /** Lifetime counters. */
    const DramCounters &lifetime() const { return total; }

    /** Clear bank/bus/counter state and any pending requests. */
    void reset();

    /**
     * Snapshot contract: bus cursor, per-bank open-row/busy state
     * and both counter windows. The controller queue must be empty
     * (snapshots are taken at instruction boundaries, where every
     * trigger window has drained); save throws SnapshotError
     * otherwise and restore leaves the queue empty.
     */
    void saveState(SnapshotWriter &w) const;
    void restoreState(SnapshotReader &r);

    const DramParams &params() const { return cfg; }

  private:
    struct Bank
    {
        Cycle busyUntil = 0;
        Addr openRow = ~0ull;
    };

    /**
     * Scalar specialization of the drain kernel for a batch of one
     * — the dominant case on the demand-miss path (serve() shim).
     * Identical math and counter updates to the batched loop;
     * pinned equivalent by test_dram_batch.cc for every grouping.
     */
    Cycle serveOne(Cycle arrival, Addr line_num, AccessType type);

    /** The batched service loop of drain(), instantiated once per
     *  decode mode so the bank/row decode is inline and branchless
     *  inside the loop. */
    template <bool Shift> void serviceBatch(std::size_t n);

    /** Double the SoA queue columns (enqueue slow path). */
    void growQueue();

    DramParams cfg;
    double lineCycles;  ///< Bus occupancy per line.
    Cycle tCycles;      ///< tRCD = tRP = tCAS in cycles.
    Cycle tCcdCycles;   ///< tCCD in cycles (from tCcdNs x coreGHz).
    /** lineCycles rounded once at construction (drain hot path). */
    Cycle lineOccupancy = 0;
    /** rowBytes / 64, precomputed for the division decode. */
    std::uint64_t linesPerRow = 1;
    /**
     * Power-of-two address decomposition, precomputed so the drain
     * kernel runs shift/mask instead of two 64-bit divisions per
     * request. rowShift = log2(lines per row); bankShift/bankMask
     * decode the bank. Valid when shiftDecode is true (the Table 5
     * geometry — 32-line rows x 8 banks — always qualifies unless
     * DramParams::forceDivisionDecode pins the general path).
     */
    unsigned rowShift = 0;
    unsigned bankShift = 0;
    std::uint64_t bankMask = 0;
    bool shiftDecode = false;
    Cycle busNextFree = 0;
    std::array<Bank, kMaxBanks> bankState;
    unsigned bankCount;

    // Controller queue, structure-of-arrays: parallel per-request
    // columns sized to capacity with qSize as the write cursor
    // (enqueue is a bounds check plus three stores), plus the
    // completion column the drain kernel fills in. Capacity is
    // retained across drains, so steady-state enqueue/drain cycles
    // never touch the allocator.
    std::vector<Cycle> qArrival;
    std::vector<Addr> qLine;
    std::vector<std::uint8_t> qType;
    std::vector<Cycle> qDone; ///< Completion cycles (drain output).
    std::size_t qSize = 0;    ///< Pending request count.

    DramCounters window;
    DramCounters total;
};

/**
 * Main memory as M line-interleaved independent channels
 * (`channel = line mod M`, channel-local line = `line / M`), each a
 * full Dram controller — own request queue, bank/row state, bus
 * cursor, and counters — at the full per-channel bandwidth, so
 * aggregate bandwidth scales with the channel count. One channel is
 * bit-identical to the monolithic controller (the decode is the
 * identity). Channel decode honors DramParams::forceDivisionDecode,
 * and non-pow2 channel counts take the exact division path
 * automatically.
 *
 * Enqueue returns a Ticket addressing the request's slot (channel +
 * queue index) so batched producers can patch completions from the
 * per-channel drain spans without assuming a single global queue.
 */
class ChanneledDram
{
  public:
    /** Hard cap on the channel count (shard-id budget). */
    static constexpr unsigned kMaxChannels = 32;

    /** Where an enqueued request landed: channel + queue index. */
    struct Ticket
    {
        std::uint16_t channel = 0;
        std::uint32_t index = 0;
    };

    /**
     * @throws std::invalid_argument when the channel count is
     * outside [1, kMaxChannels] (per-channel parameter validation
     * is the Dram constructor's).
     */
    ChanneledDram(const DramParams &params, unsigned channel_count);

    unsigned channelCount() const
    {
        return static_cast<unsigned>(chans.size());
    }
    Dram &channel(unsigned i) { return chans[i]; }
    const Dram &channel(unsigned i) const { return chans[i]; }

    unsigned channelOf(Addr line_num) const
    {
        return static_cast<unsigned>(decode.shardOf(line_num));
    }

    Ticket
    enqueue(Cycle arrival, Addr line_num, AccessType type)
    {
        const unsigned ch = channelOf(line_num);
        Dram &d = chans[ch];
        Ticket t{static_cast<std::uint16_t>(ch),
                 static_cast<std::uint32_t>(d.pendingRequests())};
        d.enqueue(arrival, decode.localLine(line_num), type);
        return t;
    }

    /** Drain one channel's queue (see Dram::drain). */
    std::span<const Cycle> drainChannel(unsigned ch)
    {
        return chans[ch].drain();
    }

    Cycle
    serve(Cycle arrival, Addr line_num, AccessType type)
    {
        const unsigned ch = channelOf(line_num);
        return chans[ch].serve(arrival, decode.localLine(line_num),
                               type);
    }

    /** Pending requests summed over channels. */
    std::size_t
    pendingRequests() const
    {
        std::size_t s = 0;
        for (const Dram &d : chans)
            s += d.pendingRequests();
        return s;
    }

    double cyclesPerLine() const
    {
        return chans.front().cyclesPerLine();
    }

    /**
     * Lifetime counters summed over channels (recomputed per call
     * into a cached aggregate; deterministic channel-order sum).
     */
    const DramCounters &lifetime() const;

    void reset();

    const DramParams &params() const
    {
        return chans.front().params();
    }

  private:
    ShardDecode decode;
    std::vector<Dram> chans;
    mutable DramCounters aggregate;
};

} // namespace athena

#endif // ATHENA_MEM_DRAM_HH

/**
 * @file
 * SMS implementation.
 */

#include "prefetch/sms.hh"

#include <algorithm>
#include <cstdint>
#include <vector>

#include "common/hashing.hh"
#include "snapshot/snapshot.hh"

namespace athena
{

void
SmsPrefetcher::commit(const AgtEntry &entry)
{
    std::uint64_t h = mix64(entry.key);
    PhtEntry &pe = pht[h % kPhtEntries];
    pe.valid = true;
    pe.tag = static_cast<std::uint16_t>(h >> 48);
    pe.bitmap = entry.bitmap;
}

void
SmsPrefetcher::observeImpl(const PrefetchTrigger &trigger,
                       CandidateVec &out)
{
    Addr region = pageNumber(trigger.addr);
    unsigned offset = pageLineOffset(trigger.addr);

    // Find the active generation for this region.
    AgtEntry *entry = nullptr;
    AgtEntry *victim = &agt[0];
    for (auto &e : agt) {
        if (e.valid && e.region == region) {
            entry = &e;
            break;
        }
        if (!e.valid || e.lruStamp < victim->lruStamp)
            victim = &e;
    }

    if (entry) {
        entry->bitmap |= 1ull << offset;
        entry->lruStamp = ++lruClock;
        return;
    }

    // New generation: retire the victim's footprint, then replay
    // any learned footprint for this (PC, offset) context.
    if (victim->valid)
        commit(*victim);

    std::uint64_t key = keyOf(trigger.pc, offset);
    victim->valid = true;
    victim->region = region;
    victim->key = key;
    victim->bitmap = 1ull << offset;
    victim->lruStamp = ++lruClock;

    std::uint64_t h = batchedHashing ? keyHashLookup(key)
                                     : mix64(key);
    const PhtEntry &pe = pht[h % kPhtEntries];
    if (!pe.valid || pe.tag != static_cast<std::uint16_t>(h >> 48))
        return;

    Addr region_line_base = region << (kPageShift - kLineShift);
    unsigned issued = 0;
    for (unsigned bit = 0; bit < kLinesPerPage && issued < degree();
         ++bit) {
        if (bit == offset || !(pe.bitmap & (1ull << bit)))
            continue;
        out.push_back({region_line_base + bit, 0});
        ++issued;
    }
}

std::uint64_t
SmsPrefetcher::keyHashLookup(std::uint64_t key)
{
    KeyMemoEntry &m = keyMemo[key & (kKeyMemoSize - 1)];
    if (m.valid && m.key == key)
        return m.hash;
    std::uint64_t h = mix64(key);
    m = {key, h, true};
    return h;
}

void
SmsPrefetcher::prepareTriggerBatch(const std::uint64_t *pcs,
                                   const Addr *addrs, unsigned n)
{
    if (!batchedHashing)
        return;
    std::uint64_t keys[32];
    std::uint64_t hashes[32];
    for (unsigned i = 0; i < n; i += 32) {
        unsigned chunk = std::min(32u, n - i);
        for (unsigned j = 0; j < chunk; ++j)
            keys[j] = keyOf(pcs[i + j],
                            pageLineOffset(addrs[i + j]));
        simd::mix64Batch(backend, keys, chunk, hashes);
        for (unsigned j = 0; j < chunk; ++j)
            keyMemo[keys[j] & (kKeyMemoSize - 1)] = {keys[j],
                                                     hashes[j],
                                                     true};
    }
}

void
SmsPrefetcher::reset()
{
    for (auto &e : agt)
        e = AgtEntry{};
    for (auto &e : pht)
        e = PhtEntry{};
    lruClock = 0;
    // Pure cache: clearing can never change results.
    keyMemo.fill(KeyMemoEntry{});
}

void
SmsPrefetcher::saveState(SnapshotWriter &w) const
{
    Prefetcher::saveState(w);
    for (const AgtEntry &e : agt) {
        w.u64(e.region);
        w.boolean(e.valid);
        w.u64(e.key);
        w.u64(e.bitmap);
        w.u64(e.lruStamp);
    }
    for (const PhtEntry &e : pht) {
        w.u16(e.tag);
        w.boolean(e.valid);
        w.u64(e.bitmap);
    }
    w.u64(lruClock);
}

void
SmsPrefetcher::restoreState(SnapshotReader &r)
{
    Prefetcher::restoreState(r);
    for (AgtEntry &e : agt) {
        e.region = r.u64();
        e.valid = r.boolean();
        e.key = r.u64();
        e.bitmap = r.u64();
        e.lruStamp = r.u64();
    }
    for (PhtEntry &e : pht) {
        e.tag = r.u16();
        e.valid = r.boolean();
        e.bitmap = r.u64();
    }
    lruClock = r.u64();
    // Not serialized: the key memo is a pure cache and is rebuilt
    // on demand after restore.
    keyMemo.fill(KeyMemoEntry{});
}

} // namespace athena

/**
 * @file
 * Berti: accurate local-delta data prefetcher (Navarro-Torres et
 * al., MICRO 2022). L1D prefetcher.
 *
 * Berti learns, per load IP, the set of *timely* deltas: deltas d
 * such that prefetching (X + d) when X was demanded would have
 * completed before (X + d) was itself demanded. It scores candidate
 * deltas against a small per-IP access history annotated with
 * cycles, and activates only deltas whose coverage exceeds a
 * threshold — which is what gives Berti its characteristic high
 * accuracy relative to IPCP (Fig. 13 discussion).
 */

#ifndef ATHENA_PREFETCH_BERTI_HH
#define ATHENA_PREFETCH_BERTI_HH

#include <array>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "prefetch/prefetcher.hh"

namespace athena
{

class BertiPrefetcher final : public Prefetcher
{
  public:
    BertiPrefetcher() : Prefetcher(4, PrefetcherKind::kBerti) { reset(); }

    const char *name() const override { return "berti"; }
    CacheLevel level() const override { return CacheLevel::kL1D; }

    void observeImpl(const PrefetchTrigger &trigger,
                 CandidateVec &out) override;

    void reset() override;

    void saveState(SnapshotWriter &w) const override;
    void restoreState(SnapshotReader &r) override;

    std::size_t
    storageBits() const override
    {
        // 64 IPs x (tag 10 + 8 history x (26 line + 16 cycle) +
        // 16 deltas x (7 delta + 4 score) + 4 active x 7).
        return 64 * (10 + 8 * 42 + 16 * 11 + 28);
    }

  private:
    static constexpr unsigned kEntries = 64;
    static constexpr unsigned kHistory = 8;
    static constexpr unsigned kDeltas = 16;
    static constexpr unsigned kRoundAccesses = 48;
    static constexpr unsigned kScoreThreshold = 10;
    /** Assumed fill latency used for the timeliness test (cycles). */
    static constexpr Cycle kFillLatency = 60;

    struct HistEntry
    {
        Addr line = 0;
        Cycle cycle = 0;
        bool valid = false;
    };

    struct DeltaScore
    {
        std::int32_t delta = 0;
        unsigned score = 0;
    };

    struct IpEntry
    {
        std::uint16_t tag = 0;
        bool valid = false;
        std::array<HistEntry, kHistory> hist;
        unsigned histHead = 0;
        std::array<DeltaScore, kDeltas> scores;
        unsigned accessesThisRound = 0;
        /** Activated deltas (best-of-round). */
        std::array<std::int32_t, 4> active{};
        unsigned activeCount = 0;
    };

    std::array<IpEntry, kEntries> table;
};

} // namespace athena

#endif // ATHENA_PREFETCH_BERTI_HH

/**
 * @file
 * Pythia implementation.
 */

#include "prefetch/pythia.hh"

#include <algorithm>
#include <array>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "common/hashing.hh"
#include "snapshot/snapshot.hh"

namespace athena
{

namespace
{

bool
pythiaTraceEnabled()
{
    static const bool enabled = [] {
        const char *v = std::getenv("ATHENA_PYTHIA_TRACE");
        return v && *v && *v != '0';
    }();
    return enabled;
}

} // namespace

PythiaPrefetcher::PythiaPrefetcher(std::uint64_t seed)
    : Prefetcher(4, PrefetcherKind::kPythia), rng(seed)
{
    reset();
}

double
PythiaPrefetcher::q(std::uint64_t f1, std::uint64_t f2,
                    unsigned a) const
{
    return plane1[f1 % kRows][a] + plane2[f2 % kRows][a];
}

double
PythiaPrefetcher::qValue(std::uint64_t f1, std::uint64_t f2,
                         unsigned action) const
{
    return q(f1, f2, action);
}

void
PythiaPrefetcher::update(const EqEntry &entry, std::uint64_t nf1,
                         std::uint64_t nf2, unsigned next_action)
{
    double q_sa = q(entry.f1, entry.f2, entry.action);
    double q_next = q(nf1, nf2, next_action);
    double delta = entry.reward + kGamma * q_next - q_sa;
    // Distribute the TD error across the two planes.
    plane1[entry.f1 % kRows][entry.action] += kAlpha * delta / 2.0;
    plane2[entry.f2 % kRows][entry.action] += kAlpha * delta / 2.0;
}

void
PythiaPrefetcher::drainOldest()
{
    if (eqCount == 0)
        return;
    EqEntry oldest = eqAt(0);
    eqHead = (eqHead + 1) & (kEqCapacity - 1);
    --eqCount;
    ++eqBase;
    // Untested decisions (gated / filtered / resident) carry no
    // learning signal — repeatedly grading them would erase the
    // learned policy while the prefetcher is gated.
    if (oldest.dropped)
        return;
    if (!oldest.rewarded) {
        // Issued but not demanded within the EQ window (~8 epochs):
        // grade as inaccurate, as the MICRO'21 design does.
        oldest.reward = highBandwidth ? kRewardInaccurateHigh
                                      : kRewardInaccurateLow;
    }
    if (eqCount != 0) {
        const EqEntry &next = eqAt(0);
        update(oldest, next.f1, next.f2, next.action);
    } else {
        update(oldest, oldest.f1, oldest.f2, oldest.action);
    }
}

std::uint64_t
PythiaPrefetcher::deltaSeqHash(std::uint32_t hist_key)
{
    // Bytes unpack oldest-first (high to low), matching the fold
    // order over the oldest-first deltaHistory array; the int8
    // cast recovers each clamped delta exactly (|delta| <= 64).
    std::uint64_t seq = 0;
    for (int shift = 24; shift >= 0; shift -= 8) {
        auto d = static_cast<std::int8_t>((hist_key >> shift) &
                                          0xffu);
        seq = hashCombine(seq,
                          static_cast<std::uint64_t>(
                              static_cast<std::int64_t>(d)));
    }
    return seq;
}

std::uint64_t
PythiaPrefetcher::seqHashLookup(std::uint32_t key)
{
    if (!batchedHashing)
        return deltaSeqHash(key);
    SeqMemoEntry &memo = seqMemo[key & (kSeqMemoSize - 1)];
    if (memo.valid && memo.key == key)
        return memo.seq;
    std::uint64_t seq = deltaSeqHash(key);
    memo = {key, true, seq};
    return seq;
}

void
PythiaPrefetcher::deltaSeqHashBatch(const std::uint32_t *keys,
                                    unsigned n, std::uint64_t *out)
{
    if (backend != simd::Backend::kScalar && batchedHashing &&
        n > 1) {
        // Wide path: fold every key four lanes at a time, then
        // install the memo entries in batch order. The fold is
        // pure, so out[] matches the probe path bitwise; the final
        // memo state matches too — each direct-mapped slot ends
        // with its last writer's {key, seq}, and on a would-be hit
        // the unconditional install rewrites the identical value.
        simd::deltaSeqFoldBatch(backend, keys, n, out);
        for (unsigned i = 0; i < n; ++i)
            seqMemo[keys[i] & (kSeqMemoSize - 1)] = {keys[i], true,
                                                     out[i]};
        return;
    }
    for (unsigned i = 0; i < n; ++i)
        out[i] = seqHashLookup(keys[i]);
}

void
PythiaPrefetcher::observeImpl(const PrefetchTrigger &trigger,
                          CandidateVec &out)
{
    Addr line = lineNumber(trigger.addr);
    auto delta = static_cast<int>(
        std::clamp<std::int64_t>(static_cast<std::int64_t>(line) -
                                     static_cast<std::int64_t>(lastLine),
                                 -64, 64));
    lastLine = line;

    // Feature 1: PC xor last delta. Feature 2: delta sequence —
    // a pure fold over the packed history key, served through the
    // shared memo + fold kernel (deltaSeqHashBatch's per-key step;
    // the key's bytes mirror the oldest-first deltaHistory array).
    std::uint64_t f1 =
        hashCombine(trigger.pc, static_cast<std::uint64_t>(
                                    static_cast<std::int64_t>(delta)));
    std::uint64_t f2 = seqHashLookup(histKey);
    std::rotate(deltaHistory.begin(), deltaHistory.begin() + 1,
                deltaHistory.end());
    deltaHistory.back() = delta;
    histKey = (histKey << 8) |
              (static_cast<std::uint32_t>(delta) & 0xffu);

    // Epsilon-greedy action selection (precomputed integer
    // threshold: bit-identical outcomes to chance(kEpsilon)). The
    // two plane rows are resolved once for the whole argmax scan.
    unsigned action = 0;
    if (rng.chanceT(epsilonThreshold)) {
        action = static_cast<unsigned>(rng.below(kActions));
    } else {
        const auto &row1 = plane1[f1 % kRows];
        const auto &row2 = plane2[f2 % kRows];
        double best = row1[0] + row2[0];
        for (unsigned a = 1; a < kActions; ++a) {
            double v = row1[a] + row2[a];
            if (v > best) {
                best = v;
                action = a;
            }
        }
    }

    if (pythiaTraceEnabled()) {
        static std::uint64_t observes = 0;
        static std::array<std::uint64_t, kActions> chosen{};
        ++chosen[action];
        if (++observes % 512 == 0) {
            std::fprintf(stderr, "pythia: obs=%llu delta=%d act=%u "
                                 "q0=%.2f q1=%.2f qa=%.2f top=[",
                         static_cast<unsigned long long>(observes),
                         delta, action, q(f1, f2, 0), q(f1, f2, 1),
                         q(f1, f2, action));
            for (unsigned a = 0; a < kActions; ++a) {
                if (chosen[a])
                    std::fprintf(stderr, "%d:%llu ", kOffsets[a],
                                 static_cast<unsigned long long>(
                                     chosen[a]));
            }
            std::fprintf(stderr, "]\n");
        }
    }

    // Push the decision into the EQ; retire the oldest if full.
    if (eqCount >= kEqCapacity)
        drainOldest();
    EqEntry &slot = eqAt(eqCount);
    slot = {f1, f2, action, false, false, 0.0};
    ++eqCount;
    std::uint64_t meta = eqBase + eqCount - 1;

    int offset = kOffsets[action];
    if (offset == 0) {
        // "No prefetch" receives its (bandwidth-dependent) reward
        // immediately.
        slot.rewarded = true;
        slot.reward = highBandwidth ? kRewardNoPrefetchHigh
                                    : kRewardNoPrefetchLow;
        return;
    }

    // Chain the selected offset up to the current degree — the
    // aggressiveness knob Athena drives via Algorithm 1.
    std::int64_t t = static_cast<std::int64_t>(line);
    for (unsigned d = 1; d <= degree(); ++d) {
        t += offset;
        if (t > 0)
            out.push_back({static_cast<Addr>(t), meta});
    }
}

void
PythiaPrefetcher::onPrefetchUsed(std::uint64_t meta, bool timely)
{
    if (meta < eqBase)
        return;
    std::uint64_t idx = meta - eqBase;
    if (idx >= eqCount)
        return;
    EqEntry &e = eqAt(static_cast<unsigned>(idx));
    if (!e.rewarded) {
        e.rewarded = true;
        e.reward =
            timely ? kRewardAccurateTimely : kRewardAccurateLate;
    }
}

void
PythiaPrefetcher::onPrefetchUseless(std::uint64_t meta)
{
    if (meta < eqBase)
        return;
    std::uint64_t idx = meta - eqBase;
    if (idx >= eqCount)
        return;
    EqEntry &e = eqAt(static_cast<unsigned>(idx));
    if (!e.rewarded) {
        e.rewarded = true;
        e.reward = highBandwidth ? kRewardInaccurateHigh
                                 : kRewardInaccurateLow;
    }
}

void
PythiaPrefetcher::onPrefetchDropped(std::uint64_t meta)
{
    if (meta < eqBase)
        return;
    std::uint64_t idx = meta - eqBase;
    if (idx >= eqCount)
        return;
    EqEntry &e = eqAt(static_cast<unsigned>(idx));
    if (!e.rewarded) {
        // Never issued: the prediction was not tested against the
        // demand stream, so it carries no learning signal.
        e.rewarded = true;
        e.dropped = true;
    }
}

void
PythiaPrefetcher::onEpochEnd(double bandwidth_usage)
{
    highBandwidth = bandwidth_usage > kHighBandwidthThreshold;
}

void
PythiaPrefetcher::reset()
{
    for (auto &row : plane1)
        row.fill(0.0);
    for (auto &row : plane2)
        row.fill(0.0);
    eqHead = 0;
    eqCount = 0;
    eqBase = 0;
    lastLine = 0;
    deltaHistory.fill(0);
    highBandwidth = false;
    seqMemo.fill(SeqMemoEntry{});
    histKey = 0;
}

void
PythiaPrefetcher::saveState(SnapshotWriter &w) const
{
    Prefetcher::saveState(w);
    for (const auto &row : plane1) {
        for (double v : row)
            w.f64(v);
    }
    for (const auto &row : plane2) {
        for (double v : row)
            w.f64(v);
    }
    for (const EqEntry &e : eqBuf) {
        w.u64(e.f1);
        w.u64(e.f2);
        w.u32(e.action);
        w.boolean(e.rewarded);
        w.boolean(e.dropped);
        w.f64(e.reward);
    }
    w.u32(eqHead);
    w.u32(eqCount);
    w.u64(eqBase);
    w.u64(lastLine);
    for (int d : deltaHistory)
        w.i32(d);
    w.boolean(highBandwidth);
    w.u64(rng.rawState());
    w.u32(histKey);
}

void
PythiaPrefetcher::restoreState(SnapshotReader &r)
{
    Prefetcher::restoreState(r);
    for (auto &row : plane1) {
        for (double &v : row)
            v = r.f64();
    }
    for (auto &row : plane2) {
        for (double &v : row)
            v = r.f64();
    }
    for (EqEntry &e : eqBuf) {
        e.f1 = r.u64();
        e.f2 = r.u64();
        e.action = r.u32();
        e.rewarded = r.boolean();
        e.dropped = r.boolean();
        e.reward = r.f64();
    }
    eqHead = r.u32();
    eqCount = r.u32();
    eqBase = r.u64();
    lastLine = r.u64();
    for (int &d : deltaHistory)
        d = r.i32();
    highBandwidth = r.boolean();
    rng.setRawState(r.u64());
    histKey = r.u32();
    // The memo is keyed by histKey and rebuilt lazily; clear it so
    // stale pre-restore entries cannot alias.
    seqMemo.fill(SeqMemoEntry{});
}

} // namespace athena

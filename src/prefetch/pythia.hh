/**
 * @file
 * Pythia: a customizable hardware prefetching framework using online
 * reinforcement learning (Bera et al., MICRO 2021). L2C prefetcher.
 *
 * Pythia is itself a SARSA agent: program features (PC xor last
 * delta; the sequence of recent deltas) form the state, the action
 * is a prefetch offset from a fixed list (including "no prefetch"),
 * and the reward grades the outcome of each issued prefetch
 * (accurate & timely / accurate but late / inaccurate / no-prefetch)
 * with *bandwidth-aware* reward levels — Pythia's built-in throttle
 * that the Athena paper notes is still insufficient on 40/100
 * workloads (Fig. 1).
 *
 * Q-values live in a two-plane hashed QVStore (the same structure
 * Athena later reuses at the coordination layer); delayed rewards
 * are propagated through an evaluation queue (EQ).
 */

#ifndef ATHENA_PREFETCH_PYTHIA_HH
#define ATHENA_PREFETCH_PYTHIA_HH

#include <array>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/rng.hh"
#include "common/simd.hh"
#include "prefetch/prefetcher.hh"

namespace athena
{

class PythiaPrefetcher final : public Prefetcher
{
  public:
    explicit PythiaPrefetcher(std::uint64_t seed = 1);

    const char *name() const override { return "pythia"; }
    CacheLevel level() const override { return CacheLevel::kL2C; }

    void observeImpl(const PrefetchTrigger &trigger,
                 CandidateVec &out) override;

    void onPrefetchUsed(std::uint64_t meta, bool timely) override;
    void onPrefetchUseless(std::uint64_t meta) override;
    void onPrefetchDropped(std::uint64_t meta) override;
    void onEpochEnd(double bandwidth_usage) override;

    void reset() override;

    /** Snapshot contract: Q planes, the EQ ring, the feature
     *  history and RNG. The delta-sequence memo is pure and is
     *  rebuilt on demand; epsilonThreshold is a constant. */
    void saveState(SnapshotWriter &w) const override;
    void restoreState(SnapshotReader &r) override;

    std::size_t
    storageBits() const override
    {
        // Two planes x 128 rows x 16 actions x 8-bit Q + EQ 64 x 40
        // + feature state; ~25.5 KB in the paper's configuration —
        // we account the reduced geometry actually modelled.
        return 2 * kRows * kActions * 8 + kEqCapacity * 40 + 128;
    }

    /**
     * Unpack a packed 4-delta history key (deltas clamped to
     * [-64, 64], one signed byte each, newest in the low byte) and
     * fold it into the delta-sequence feature hash (f2) —
     * bit-identical to the scalar fold over the oldest-first
     * deltaHistory array, whose order the key's byte order mirrors.
     */
    static std::uint64_t deltaSeqHash(std::uint32_t hist_key);

    /**
     * Batched delta-sequence probe: resolve @p n packed history
     * keys to their feature hashes through the direct-mapped memo
     * (hits) and the fold kernel (misses), filling memo entries
     * exactly as n sequential probes would. The live observe path
     * is the batch-of-1 shim over the same kernel (like
     * Dram::serve over the queue drain).
     */
    void deltaSeqHashBatch(const std::uint32_t *keys, unsigned n,
                           std::uint64_t *out);

    /**
     * Route the observe path's delta-sequence hashing through the
     * direct-mapped memo (on, the PR 9 inference-plane default) or
     * recompute the fold per trigger (off — the pre-batching
     * scalar behavior). Bit-identical either way (the memo is a
     * key-validated pure cache); the simulator slaves this to the
     * batched-inference knob so the bench A/B compares the whole
     * plane against the faithful scalar engine.
     */
    void setBatchedHashing(bool on) { batchedHashing = on; }

    // --- introspection for tests -----------------------------
    double qValue(std::uint64_t f1, std::uint64_t f2,
                  unsigned action) const;
    static constexpr unsigned numActions() { return kActions; }
    int actionOffset(unsigned a) const { return kOffsets[a]; }

  private:
    static constexpr unsigned kRows = 128;
    static constexpr unsigned kActions = 16;
    static constexpr unsigned kEqCapacity = 256;
    static constexpr double kAlpha = 0.0065 * 16; // scaled for table RL
    static constexpr double kGamma = 0.55;
    static constexpr double kEpsilon = 0.002;

    // Offset action list (0 = no prefetch), after the MICRO'21
    // artifact's default list.
    static constexpr std::array<int, kActions> kOffsets = {
        0, 1, 2, 3, 4, 5, 6, 8, 10, 12, 16, 24, 32, -1, -2, -4};

    // Reward levels (bandwidth-aware). The high/low split engages
    // only under heavy bus pressure — Pythia's built-in throttle,
    // which section 2.1.1 of the Athena paper shows is not enough
    // on 40/100 workloads.
    static constexpr double kRewardAccurateTimely = 20.0;
    static constexpr double kRewardAccurateLate = 12.0;
    static constexpr double kRewardInaccurateLow = -8.0;
    static constexpr double kRewardInaccurateHigh = -14.0;
    static constexpr double kRewardNoPrefetchLow = -5.0;
    static constexpr double kRewardNoPrefetchHigh = 6.0;
    static constexpr double kHighBandwidthThreshold = 0.70;

    struct EqEntry
    {
        std::uint64_t f1 = 0;
        std::uint64_t f2 = 0;
        unsigned action = 0;
        bool rewarded = false;
        /** Never issued (gated/filtered/resident): the decision was
         *  untested, so it must not update the Q-values at all —
         *  repeatedly feeding neutral rewards would erase learned
         *  preferences while the prefetcher is gated. */
        bool dropped = false;
        double reward = 0.0;
    };

    /** Summed two-plane Q lookup. */
    double q(std::uint64_t f1, std::uint64_t f2, unsigned a) const;

    /** SARSA update distributed over both planes. */
    void update(const EqEntry &entry, std::uint64_t nf1,
                std::uint64_t nf2, unsigned next_action);

    /** Retire the oldest EQ entry with its (possibly default)
     *  reward. */
    void drainOldest();

    /** One key through the memo + fold kernel (the observe path's
     *  shim over deltaSeqHashBatch's per-key step). */
    std::uint64_t seqHashLookup(std::uint32_t key);

    std::array<std::array<double, kActions>, kRows> plane1;
    std::array<std::array<double, kActions>, kRows> plane2;

    /**
     * Evaluation queue as a fixed ring (kEqCapacity is a power of
     * two): bounded FIFO + random access by (meta - eqBase), both
     * O(1) without deque segment bookkeeping on the observe path.
     */
    std::array<EqEntry, kEqCapacity> eqBuf{};
    unsigned eqHead = 0;  ///< Ring index of the oldest entry.
    unsigned eqCount = 0; ///< Occupancy.
    std::uint64_t eqBase = 0; ///< meta id of the oldest entry.

    /** i-th oldest EQ entry (i < eqCount, or the push slot). */
    EqEntry &
    eqAt(unsigned i)
    {
        return eqBuf[(eqHead + i) & (kEqCapacity - 1)];
    }

    Addr lastLine = 0;
    std::array<int, 4> deltaHistory{};
    bool highBandwidth = false;
    Rng rng;

    /**
     * Rng::chanceThreshold(kEpsilon), captured at construction so
     * the per-trigger roll pays neither a float conversion nor a
     * magic-static guard (and no static-init-order hazard).
     * Bit-identical outcomes to chance(kEpsilon).
     */
    std::uint64_t epsilonThreshold = Rng::chanceThreshold(kEpsilon);

    /**
     * Memo of the delta-sequence feature hash (f2), a pure fold
     * over the four history deltas. Deltas are clamped to [-64, 64],
     * so the whole history packs into one 32-bit key (4 signed
     * bytes) maintained incrementally; a small direct-mapped table
     * keyed by it skips the four-hash fold whenever the recent
     * delta pattern repeats — which is almost always on striding
     * workloads. Pure memoization: results are bit-identical.
     */
    struct SeqMemoEntry
    {
        std::uint32_t key = 0;
        bool valid = false;
        std::uint64_t seq = 0;
    };
    static constexpr unsigned kSeqMemoSize = 256; // power of two
    std::array<SeqMemoEntry, kSeqMemoSize> seqMemo{};
    /** See setBatchedHashing(). */
    bool batchedHashing = true;
    /** SIMD backend for the batch fold, latched at construction. */
    simd::Backend backend = simd::activeBackend();
    std::uint32_t histKey = 0; ///< Packed deltaHistory (newest low).
};

} // namespace athena

#endif // ATHENA_PREFETCH_PYTHIA_HH

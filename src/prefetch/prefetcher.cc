/**
 * @file
 * Prefetcher factory and kind names.
 */

#include "prefetch/prefetcher.hh"

#include <cstdint>
#include <memory>

#include "snapshot/snapshot.hh"

#include "prefetch/berti.hh"
#include "prefetch/ipcp.hh"
#include "prefetch/mlop.hh"
#include "prefetch/next_line.hh"
#include "prefetch/pythia.hh"
#include "prefetch/sms.hh"
#include "prefetch/spp_ppf.hh"
#include "prefetch/stride.hh"

namespace athena
{

void
Prefetcher::observe(const PrefetchTrigger &trigger, CandidateVec &out)
{
    // Tag dispatch to the concrete kernel. The qualified calls are
    // direct (no vtable load, no indirect branch) and LTO inlines
    // the small kernels straight into Simulator::triggerLevel.
    switch (kindTag) {
      case PrefetcherKind::kNextLine:
        static_cast<NextLinePrefetcher &>(*this)
            .NextLinePrefetcher::observeImpl(trigger, out);
        return;
      case PrefetcherKind::kStride:
        static_cast<StridePrefetcher &>(*this)
            .StridePrefetcher::observeImpl(trigger, out);
        return;
      case PrefetcherKind::kIpcp:
        static_cast<IpcpPrefetcher &>(*this)
            .IpcpPrefetcher::observeImpl(trigger, out);
        return;
      case PrefetcherKind::kBerti:
        static_cast<BertiPrefetcher &>(*this)
            .BertiPrefetcher::observeImpl(trigger, out);
        return;
      case PrefetcherKind::kPythia:
        static_cast<PythiaPrefetcher &>(*this)
            .PythiaPrefetcher::observeImpl(trigger, out);
        return;
      case PrefetcherKind::kSppPpf:
        static_cast<SppPpfPrefetcher &>(*this)
            .SppPpfPrefetcher::observeImpl(trigger, out);
        return;
      case PrefetcherKind::kMlop:
        static_cast<MlopPrefetcher &>(*this)
            .MlopPrefetcher::observeImpl(trigger, out);
        return;
      case PrefetcherKind::kSms:
        static_cast<SmsPrefetcher &>(*this)
            .SmsPrefetcher::observeImpl(trigger, out);
        return;
      case PrefetcherKind::kNone:
        break;
    }
    // Unknown tag (external subclass): virtual fallback.
    observeImpl(trigger, out);
}

void
Prefetcher::saveState(SnapshotWriter &w) const
{
    w.u32(currentDegree);
}

void
Prefetcher::restoreState(SnapshotReader &r)
{
    setDegree(r.u32());
}

const char *
prefetcherKindName(PrefetcherKind kind)
{
    switch (kind) {
      case PrefetcherKind::kNone:     return "none";
      case PrefetcherKind::kNextLine: return "next_line";
      case PrefetcherKind::kStride:   return "stride";
      case PrefetcherKind::kIpcp:     return "ipcp";
      case PrefetcherKind::kBerti:    return "berti";
      case PrefetcherKind::kPythia:   return "pythia";
      case PrefetcherKind::kSppPpf:   return "spp_ppf";
      case PrefetcherKind::kMlop:     return "mlop";
      case PrefetcherKind::kSms:      return "sms";
    }
    return "?";
}

std::unique_ptr<Prefetcher>
makePrefetcher(PrefetcherKind kind, std::uint64_t seed,
               CacheLevel level)
{
    switch (kind) {
      case PrefetcherKind::kNone:
        return nullptr;
      case PrefetcherKind::kNextLine:
        return std::make_unique<NextLinePrefetcher>(level);
      case PrefetcherKind::kStride:
        return std::make_unique<StridePrefetcher>(level);
      case PrefetcherKind::kIpcp:
        return std::make_unique<IpcpPrefetcher>();
      case PrefetcherKind::kBerti:
        return std::make_unique<BertiPrefetcher>();
      case PrefetcherKind::kPythia:
        return std::make_unique<PythiaPrefetcher>(seed);
      case PrefetcherKind::kSppPpf:
        return std::make_unique<SppPpfPrefetcher>();
      case PrefetcherKind::kMlop:
        return std::make_unique<MlopPrefetcher>();
      case PrefetcherKind::kSms:
        return std::make_unique<SmsPrefetcher>();
    }
    return nullptr;
}

} // namespace athena

/**
 * @file
 * Prefetcher factory and kind names.
 */

#include "prefetch/prefetcher.hh"

#include <cstdint>
#include <memory>

#include "prefetch/berti.hh"
#include "prefetch/ipcp.hh"
#include "prefetch/mlop.hh"
#include "prefetch/next_line.hh"
#include "prefetch/pythia.hh"
#include "prefetch/sms.hh"
#include "prefetch/spp_ppf.hh"
#include "prefetch/stride.hh"

namespace athena
{

const char *
prefetcherKindName(PrefetcherKind kind)
{
    switch (kind) {
      case PrefetcherKind::kNone:     return "none";
      case PrefetcherKind::kNextLine: return "next_line";
      case PrefetcherKind::kStride:   return "stride";
      case PrefetcherKind::kIpcp:     return "ipcp";
      case PrefetcherKind::kBerti:    return "berti";
      case PrefetcherKind::kPythia:   return "pythia";
      case PrefetcherKind::kSppPpf:   return "spp_ppf";
      case PrefetcherKind::kMlop:     return "mlop";
      case PrefetcherKind::kSms:      return "sms";
    }
    return "?";
}

std::unique_ptr<Prefetcher>
makePrefetcher(PrefetcherKind kind, std::uint64_t seed,
               CacheLevel level)
{
    switch (kind) {
      case PrefetcherKind::kNone:
        return nullptr;
      case PrefetcherKind::kNextLine:
        return std::make_unique<NextLinePrefetcher>(level);
      case PrefetcherKind::kStride:
        return std::make_unique<StridePrefetcher>(level);
      case PrefetcherKind::kIpcp:
        return std::make_unique<IpcpPrefetcher>();
      case PrefetcherKind::kBerti:
        return std::make_unique<BertiPrefetcher>();
      case PrefetcherKind::kPythia:
        return std::make_unique<PythiaPrefetcher>(seed);
      case PrefetcherKind::kSppPpf:
        return std::make_unique<SppPpfPrefetcher>();
      case PrefetcherKind::kMlop:
        return std::make_unique<MlopPrefetcher>();
      case PrefetcherKind::kSms:
        return std::make_unique<SmsPrefetcher>();
    }
    return nullptr;
}

} // namespace athena

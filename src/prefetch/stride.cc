/**
 * @file
 * Stride prefetcher implementation.
 */

#include "prefetch/stride.hh"

#include <cstdint>
#include <vector>

#include "common/hashing.hh"
#include "snapshot/snapshot.hh"

namespace athena
{

void
StridePrefetcher::observeImpl(const PrefetchTrigger &trigger,
                          CandidateVec &out)
{
    Addr line = lineNumber(trigger.addr);
    std::uint64_t idx = mix64(trigger.pc) % kEntries;
    Entry &e = table[idx];
    std::uint64_t tag = trigger.pc >> 6;

    if (!e.valid || e.tag != tag) {
        e = Entry{};
        e.valid = true;
        e.tag = tag;
        e.lastLine = line;
        return;
    }

    std::int64_t observed =
        static_cast<std::int64_t>(line) -
        static_cast<std::int64_t>(e.lastLine);
    if (observed == e.stride && observed != 0) {
        e.conf.increment();
    } else {
        e.conf.decrement();
        if (e.conf.raw() == 0)
            e.stride = observed;
    }
    e.lastLine = line;

    if (e.conf.taken() && e.stride != 0) {
        for (unsigned d = 1; d <= degree(); ++d) {
            std::int64_t target =
                static_cast<std::int64_t>(line) +
                e.stride * static_cast<std::int64_t>(d);
            if (target > 0)
                out.push_back({static_cast<Addr>(target), 0});
        }
    }
}

void
StridePrefetcher::reset()
{
    for (auto &e : table)
        e = Entry{};
}

void
StridePrefetcher::saveState(SnapshotWriter &w) const
{
    Prefetcher::saveState(w);
    for (const Entry &e : table) {
        w.u64(e.tag);
        w.u64(e.lastLine);
        w.i64(e.stride);
        w.u16(e.conf.raw());
        w.boolean(e.valid);
    }
}

void
StridePrefetcher::restoreState(SnapshotReader &r)
{
    Prefetcher::restoreState(r);
    for (Entry &e : table) {
        e.tag = r.u64();
        e.lastLine = r.u64();
        e.stride = r.i64();
        e.conf = SatCounter<2>(r.u16());
        e.valid = r.boolean();
    }
}

} // namespace athena

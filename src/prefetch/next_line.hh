/**
 * @file
 * Next-N-line prefetcher: the simplest possible reference
 * implementation, used by tests and the quickstart example as a
 * known-good baseline.
 */

#ifndef ATHENA_PREFETCH_NEXT_LINE_HH
#define ATHENA_PREFETCH_NEXT_LINE_HH

#include "prefetch/prefetcher.hh"

#include <cstddef>
#include <vector>

namespace athena
{

class NextLinePrefetcher final : public Prefetcher
{
  public:
    explicit NextLinePrefetcher(CacheLevel lvl = CacheLevel::kL2C,
                                unsigned max_degree = 4)
        : Prefetcher(max_degree, PrefetcherKind::kNextLine), lvl(lvl)
    {}

    const char *name() const override { return "next_line"; }
    CacheLevel level() const override { return lvl; }

    void observeImpl(const PrefetchTrigger &trigger,
                 CandidateVec &out) override;

    void reset() override {}
    std::size_t storageBits() const override { return 0; }

  private:
    CacheLevel lvl;
};

} // namespace athena

#endif // ATHENA_PREFETCH_NEXT_LINE_HH

/**
 * @file
 * Berti implementation.
 */

#include "prefetch/berti.hh"

#include <algorithm>
#include <array>
#include <cstdint>
#include <vector>

#include "common/hashing.hh"
#include "snapshot/snapshot.hh"

namespace athena
{

void
BertiPrefetcher::observeImpl(const PrefetchTrigger &trigger,
                         CandidateVec &out)
{
    Addr line = lineNumber(trigger.addr);
    std::uint64_t idx = mix64(trigger.pc) % kEntries;
    auto tag = static_cast<std::uint16_t>((trigger.pc >> 6) & 0x3ff);
    IpEntry &e = table[idx];

    if (!e.valid || e.tag != tag) {
        e = IpEntry{};
        e.valid = true;
        e.tag = tag;
    }

    // Score timely deltas: for each history entry H, delta =
    // line - H.line is *timely* if a prefetch launched at H.cycle
    // would have arrived by now.
    for (const HistEntry &h : e.hist) {
        if (!h.valid)
            continue;
        std::int64_t delta64 = static_cast<std::int64_t>(line) -
                               static_cast<std::int64_t>(h.line);
        if (delta64 == 0 || delta64 > 63 || delta64 < -63)
            continue;
        if (trigger.cycle < h.cycle + kFillLatency)
            continue; // would have been late
        auto delta = static_cast<std::int32_t>(delta64);
        // Find or allocate a score slot.
        DeltaScore *slot = nullptr;
        for (auto &s : e.scores) {
            if (s.score > 0 && s.delta == delta) {
                slot = &s;
                break;
            }
        }
        if (!slot) {
            slot = &*std::min_element(
                e.scores.begin(), e.scores.end(),
                [](const DeltaScore &a, const DeltaScore &b) {
                    return a.score < b.score;
                });
            if (slot->score > 0)
                slot->score /= 2; // decay the displaced candidate
            if (slot->score == 0) {
                slot->delta = delta;
            } else {
                slot = nullptr;
            }
        }
        if (slot && slot->delta == delta && slot->score < 63)
            ++slot->score;
    }

    // Record this access.
    e.hist[e.histHead] = {line, trigger.cycle, true};
    e.histHead = (e.histHead + 1) % kHistory;

    // End of a learning round: activate the best deltas.
    if (++e.accessesThisRound >= kRoundAccesses) {
        e.accessesThisRound = 0;
        std::array<DeltaScore, kDeltas> sorted = e.scores;
        std::sort(sorted.begin(), sorted.end(),
                  [](const DeltaScore &a, const DeltaScore &b) {
                      return a.score > b.score;
                  });
        e.activeCount = 0;
        for (const auto &s : sorted) {
            if (s.score >= kScoreThreshold && s.delta != 0 &&
                e.activeCount < e.active.size()) {
                e.active[e.activeCount++] = s.delta;
            }
        }
        for (auto &s : e.scores)
            s.score /= 2; // exponential decay between rounds
    }

    // Prefetch using the activated deltas.
    unsigned issued = 0;
    for (unsigned i = 0; i < e.activeCount && issued < degree(); ++i) {
        std::int64_t t = static_cast<std::int64_t>(line) + e.active[i];
        if (t > 0) {
            out.push_back({static_cast<Addr>(t), 0});
            ++issued;
        }
    }
}

void
BertiPrefetcher::reset()
{
    for (auto &e : table)
        e = IpEntry{};
}

void
BertiPrefetcher::saveState(SnapshotWriter &w) const
{
    Prefetcher::saveState(w);
    for (const IpEntry &e : table) {
        w.u16(e.tag);
        w.boolean(e.valid);
        for (const HistEntry &h : e.hist) {
            w.u64(h.line);
            w.u64(h.cycle);
            w.boolean(h.valid);
        }
        w.u32(e.histHead);
        for (const DeltaScore &s : e.scores) {
            w.i32(s.delta);
            w.u32(s.score);
        }
        w.u32(e.accessesThisRound);
        for (std::int32_t d : e.active)
            w.i32(d);
        w.u32(e.activeCount);
    }
}

void
BertiPrefetcher::restoreState(SnapshotReader &r)
{
    Prefetcher::restoreState(r);
    for (IpEntry &e : table) {
        e.tag = r.u16();
        e.valid = r.boolean();
        for (HistEntry &h : e.hist) {
            h.line = r.u64();
            h.cycle = r.u64();
            h.valid = r.boolean();
        }
        e.histHead = r.u32();
        for (DeltaScore &s : e.scores) {
            s.delta = r.i32();
            s.score = r.u32();
        }
        e.accessesThisRound = r.u32();
        for (std::int32_t &d : e.active)
            d = r.i32();
        e.activeCount = r.u32();
    }
}

} // namespace athena

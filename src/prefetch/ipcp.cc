/**
 * @file
 * IPCP implementation.
 */

#include "prefetch/ipcp.hh"

#include <algorithm>
#include <cstdint>
#include <vector>

#include "common/hashing.hh"
#include "snapshot/snapshot.hh"

namespace athena
{

void
IpcpPrefetcher::observeImpl(const PrefetchTrigger &trigger,
                        CandidateVec &out)
{
    Addr line = lineNumber(trigger.addr);
    Addr page = pageNumber(trigger.addr);
    unsigned offset = pageLineOffset(trigger.addr);

    // --- global stream detector -------------------------------
    std::int64_t gdelta = static_cast<std::int64_t>(line) -
                          static_cast<std::int64_t>(gsLastLine);
    if (gdelta == gsDirection) {
        if (gsRun < 16)
            ++gsRun;
    } else if (gdelta == -gsDirection) {
        gsDirection = -gsDirection;
        gsRun = 1;
    } else if (gdelta != 0) {
        gsRun = gsRun > 0 ? gsRun - 1 : 0;
    }
    gsLastLine = line;

    // --- per-IP classification --------------------------------
    std::uint64_t idx = ipIndexOf(trigger.pc);
    auto tag = static_cast<std::uint16_t>((trigger.pc >> 6) & 0x1ff);
    IpEntry &e = ipTable[idx];

    if (!e.valid || e.tag != tag) {
        e = IpEntry{};
        e.valid = true;
        e.tag = tag;
        e.lastPage = page;
        e.lastOffset = offset;
        return;
    }

    std::int32_t stride;
    if (page == e.lastPage) {
        stride = static_cast<std::int32_t>(offset) -
                 static_cast<std::int32_t>(e.lastOffset);
    } else {
        // Cross-page access: treat as a line-granularity stride so
        // large-stride streams still classify.
        stride = static_cast<std::int32_t>(
            static_cast<std::int64_t>(line) -
            static_cast<std::int64_t>((e.lastPage << (kPageShift -
                                                      kLineShift)) +
                                      e.lastOffset));
        if (stride > 63 || stride < -63)
            stride = 0;
    }

    if (stride != 0) {
        if (stride == e.stride) {
            e.csConf.increment();
        } else {
            e.csConf.decrement();
            if (e.csConf.raw() == 0)
                e.stride = stride;
        }
        // CSPT training: did the signature predict this stride?
        CsptEntry &ce = cspt[e.signature % kCsptEntries];
        if (ce.stride == stride)
            ce.conf.increment();
        else {
            ce.conf.decrement();
            if (ce.conf.raw() == 0)
                ce.stride = stride;
        }
        e.signature = updateSignature(e.signature, stride);
    }

    e.lastPage = page;
    e.lastOffset = offset;

    // Classify: GS > CS > CPLX (paper's priority order).
    if (gsRun >= 8)
        e.cls = IpClass::kGs;
    else if (e.csConf.taken() && e.stride != 0)
        e.cls = IpClass::kCs;
    else if (cspt[e.signature % kCsptEntries].conf.taken())
        e.cls = IpClass::kCplx;
    else
        e.cls = IpClass::kNone;

    // --- prefetch generation ----------------------------------
    switch (e.cls) {
      case IpClass::kGs:
        for (unsigned d = 1; d <= degree(); ++d) {
            std::int64_t t = static_cast<std::int64_t>(line) +
                             gsDirection * static_cast<int>(d);
            if (t > 0)
                out.push_back({static_cast<Addr>(t), 0});
        }
        break;
      case IpClass::kCs:
        for (unsigned d = 1; d <= degree(); ++d) {
            std::int64_t t =
                static_cast<std::int64_t>(line) +
                static_cast<std::int64_t>(e.stride) * d;
            if (t > 0)
                out.push_back({static_cast<Addr>(t), 0});
        }
        break;
      case IpClass::kCplx:
        {
            std::uint16_t sig = e.signature;
            std::int64_t t = static_cast<std::int64_t>(line);
            for (unsigned d = 1; d <= degree(); ++d) {
                const CsptEntry &ce = cspt[sig % kCsptEntries];
                if (!ce.conf.taken() || ce.stride == 0)
                    break;
                t += ce.stride;
                if (t > 0)
                    out.push_back({static_cast<Addr>(t), 0});
                sig = updateSignature(sig, ce.stride);
            }
            break;
        }
      case IpClass::kNone:
        break;
    }
}

void
IpcpPrefetcher::prepareTriggerBatch(const std::uint64_t *pcs,
                                    unsigned n)
{
    if (!batchedHashing)
        return;
    std::uint64_t hashes[32];
    for (unsigned i = 0; i < n; i += 32) {
        unsigned chunk = std::min(32u, n - i);
        simd::mix64Batch(backend, pcs + i, chunk, hashes);
        for (unsigned j = 0; j < chunk; ++j) {
            std::uint64_t pc = pcs[i + j];
            IdxMemoEntry &m =
                idxMemo[(pc >> 2) & (kIdxMemoSize - 1)];
            m.pc = pc;
            m.idx = static_cast<std::uint16_t>(hashes[j] %
                                               kIpEntries);
            m.valid = true;
        }
    }
}

void
IpcpPrefetcher::reset()
{
    for (auto &e : ipTable)
        e = IpEntry{};
    for (auto &c : cspt)
        c = CsptEntry{};
    // Pure cache: clearing can never change results, it just keeps
    // restored runs from carrying a previous run's working set.
    idxMemo.fill(IdxMemoEntry{});
    gsLastLine = 0;
    gsRun = 0;
    gsDirection = 1;
}

void
IpcpPrefetcher::saveState(SnapshotWriter &w) const
{
    Prefetcher::saveState(w);
    for (const IpEntry &e : ipTable) {
        w.u16(e.tag);
        w.boolean(e.valid);
        w.u64(e.lastPage);
        w.u32(e.lastOffset);
        w.i32(e.stride);
        w.u16(e.csConf.raw());
        w.u16(e.signature);
        w.u8(static_cast<std::uint8_t>(e.cls));
    }
    for (const CsptEntry &c : cspt) {
        w.i32(c.stride);
        w.u16(c.conf.raw());
    }
    w.u64(gsLastLine);
    w.i32(gsRun);
    w.i32(gsDirection);
}

void
IpcpPrefetcher::restoreState(SnapshotReader &r)
{
    Prefetcher::restoreState(r);
    for (IpEntry &e : ipTable) {
        e.tag = r.u16();
        e.valid = r.boolean();
        e.lastPage = r.u64();
        e.lastOffset = r.u32();
        e.stride = r.i32();
        e.csConf = SatCounter<2>(r.u16());
        e.signature = r.u16();
        e.cls = static_cast<IpClass>(r.u8());
    }
    for (CsptEntry &c : cspt) {
        c.stride = r.i32();
        c.conf = SatCounter<2>(r.u16());
    }
    gsLastLine = r.u64();
    gsRun = r.i32();
    gsDirection = r.i32();
    // Not serialized: the index memo is a pure cache and is
    // rebuilt on demand after restore.
    idxMemo.fill(IdxMemoEntry{});
}

} // namespace athena

/**
 * @file
 * IPCP: Instruction-Pointer Classifier based spatial Prefetching
 * (Pakalapati & Panda, ISCA 2020). L1D prefetcher.
 *
 * Each load IP is classified into one of three classes and the
 * class's specialized engine generates prefetches:
 *  - CS   (constant stride): per-IP stride with confidence,
 *  - CPLX (complex): signature of recent strides -> predicted next
 *         stride via the CSPT,
 *  - GS   (global stream): sequential-access density detector that
 *         streams ahead of the demand front.
 *
 * This reproduction keeps the published table geometry (64-entry IP
 * table, 128-entry CSPT) at a ~0.7 KB budget (Table 8).
 */

#ifndef ATHENA_PREFETCH_IPCP_HH
#define ATHENA_PREFETCH_IPCP_HH

#include <array>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/hashing.hh"
#include "common/sat_counter.hh"
#include "common/simd.hh"
#include "prefetch/prefetcher.hh"

namespace athena
{

class IpcpPrefetcher final : public Prefetcher
{
  public:
    IpcpPrefetcher() : Prefetcher(4, PrefetcherKind::kIpcp) { reset(); }

    const char *name() const override { return "ipcp"; }
    CacheLevel level() const override { return CacheLevel::kL1D; }

    void observeImpl(const PrefetchTrigger &trigger,
                 CandidateVec &out) override;

    /**
     * Route the trigger path's per-IP mix64 through the
     * direct-mapped index memo (on — the batched-inference plane's
     * mode, fed ahead of time by prepareTriggerBatch) or recompute
     * per trigger (off — the pre-batching scalar behavior). The
     * memo is a key-validated pure cache, so results are
     * bit-identical either way; the simulator slaves this to the
     * batched-inference knob, exactly like Pythia's fold memo.
     */
    void setBatchedHashing(bool on) { batchedHashing = on; }

    /**
     * Batched signature kernel: hash the window-collected load PCs
     * wide (mix64 over four lanes on the AVX2 backend) and install
     * their IP-table indices into the memo, so the per-trigger
     * observe path reduces to a validated probe. Pure priming —
     * never changes results, only where the hash work happens.
     */
    void prepareTriggerBatch(const std::uint64_t *pcs, unsigned n);

    void reset() override;

    void saveState(SnapshotWriter &w) const override;
    void restoreState(SnapshotReader &r) override;

    std::size_t
    storageBits() const override
    {
        // IP table: 64 x (tag 9 + last_off 6 + stride 7 + conf 2 +
        // sig 12 + class 2) = 64 x 38; CSPT: 128 x (stride 7 +
        // conf 2); stream detector ~64 bits.
        return 64 * 38 + 128 * 9 + 64;
    }

  private:
    static constexpr unsigned kIpEntries = 64;
    static constexpr unsigned kCsptEntries = 128;
    static constexpr unsigned kSigBits = 12;

    enum class IpClass : std::uint8_t { kNone, kCs, kCplx, kGs };

    struct IpEntry
    {
        std::uint16_t tag = 0;
        bool valid = false;
        Addr lastPage = 0;
        unsigned lastOffset = 0; ///< Line offset within page.
        std::int32_t stride = 0;
        SatCounter<2> csConf{0};
        std::uint16_t signature = 0;
        IpClass cls = IpClass::kNone;
    };

    struct CsptEntry
    {
        std::int32_t stride = 0;
        SatCounter<2> conf{0};
    };

    static std::uint16_t
    updateSignature(std::uint16_t sig, std::int32_t stride)
    {
        return static_cast<std::uint16_t>(
            ((sig << 3) ^ static_cast<std::uint16_t>(stride & 0x3f)) &
            ((1u << kSigBits) - 1));
    }

    std::array<IpEntry, kIpEntries> ipTable;
    std::array<CsptEntry, kCsptEntries> cspt;

    /** Key-validated pure cache of mix64(pc) % kIpEntries. */
    struct IdxMemoEntry
    {
        std::uint64_t pc = 0;
        std::uint16_t idx = 0;
        bool valid = false;
    };
    static constexpr unsigned kIdxMemoSize = 16; // power of two
    std::array<IdxMemoEntry, kIdxMemoSize> idxMemo{};
    /** See setBatchedHashing(). */
    bool batchedHashing = false;
    /** SIMD backend for prepareTriggerBatch, latched at
     *  construction. */
    simd::Backend backend = simd::activeBackend();

    /** The trigger path's IP-table index: memo probe when batched
     *  hashing is on, direct mix64 otherwise. */
    std::uint64_t
    ipIndexOf(std::uint64_t pc)
    {
        if (!batchedHashing)
            return mix64(pc) % kIpEntries;
        IdxMemoEntry &m = idxMemo[(pc >> 2) & (kIdxMemoSize - 1)];
        if (!m.valid || m.pc != pc) {
            m.pc = pc;
            m.idx = static_cast<std::uint16_t>(mix64(pc) %
                                               kIpEntries);
            m.valid = true;
        }
        return m.idx;
    }

    /** Global stream detector state. */
    Addr gsLastLine = 0;
    int gsRun = 0;       ///< Consecutive +1 line accesses.
    int gsDirection = 1;
};

} // namespace athena

#endif // ATHENA_PREFETCH_IPCP_HH

/**
 * @file
 * Hardware prefetcher interface.
 *
 * Prefetchers observe demand accesses at their cache level and emit
 * prefetch candidates. The memory system issues the candidates
 * (subject to the coordination policy's enable/degree decisions),
 * tags the filled lines with the prefetcher's credit token, and
 * feeds usage feedback back through onPrefetchUsed /
 * onPrefetchUseless — which is how Pythia's RL reward and PPF's
 * perceptron training close their loops.
 */

#ifndef ATHENA_PREFETCH_PREFETCHER_HH
#define ATHENA_PREFETCH_PREFETCHER_HH

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/types.hh"

namespace athena
{

class SnapshotReader;
class SnapshotWriter;

/**
 * One prefetch candidate emitted by a prefetcher. Deliberately
 * trivial (no default member initializers): CandidateVec keeps an
 * uninitialized array of these on the access path's stack, and
 * zero-filling it per trigger would cost more than the dispatch it
 * optimizes.
 */
struct PrefetchCandidate
{
    Addr lineNum;      ///< Target cache-line number.
    std::uint64_t meta; ///< Credit token echoed in feedback.
};

/**
 * Fixed-capacity inline candidate buffer used on the per-access hot
 * path. A hardware prefetcher emits at most degree() candidates per
 * trigger (degree <= 8 across every implemented design), so the
 * buffer lives on the stack of the access path instead of a heap
 * vector. Appends past capacity are dropped — which models a full
 * prefetch queue and keeps the type total.
 */
class CandidateVec
{
  public:
    static constexpr unsigned kCapacity = 32;

    void clear() { count = 0; }

    void
    push_back(const PrefetchCandidate &c)
    {
        if (count < kCapacity)
            buf[count++] = c;
    }

    unsigned size() const { return count; }
    bool empty() const { return count == 0; }
    bool full() const { return count == kCapacity; }

    const PrefetchCandidate &operator[](unsigned i) const
    {
        return buf[i];
    }

    const PrefetchCandidate *begin() const { return buf; }
    const PrefetchCandidate *end() const { return buf + count; }

  private:
    PrefetchCandidate buf[kCapacity];
    unsigned count = 0;
};

/** Known prefetcher kinds, for factory construction and for the
 *  devirtualized observe() dispatch tag. */
enum class PrefetcherKind : std::uint8_t
{
    kNone,
    kNextLine,
    kStride,
    kIpcp,
    kBerti,
    kPythia,
    kSppPpf,
    kMlop,
    kSms,
};

/** Context of the demand access that triggers training/prediction. */
struct PrefetchTrigger
{
    std::uint64_t pc = 0;
    Addr addr = 0;    ///< Byte address.
    bool hit = false; ///< Hit at the prefetcher's level.
    Cycle cycle = 0;
};

/**
 * Base class of all prefetchers.
 */
class Prefetcher
{
  public:
    /**
     * @param max_degree prefetches per trigger at full throttle.
     * @param kind       dispatch tag for the devirtualized observe()
     *                   front door; kNone routes through the virtual
     *                   observeImpl() (external subclasses).
     */
    explicit Prefetcher(unsigned max_degree,
                        PrefetcherKind kind = PrefetcherKind::kNone)
        : maxDeg(max_degree), currentDegree(max_degree), kindTag(kind)
    {}
    virtual ~Prefetcher() = default;

    virtual const char *name() const = 0;

    /** Cache level this prefetcher trains on and fills into. */
    virtual CacheLevel level() const = 0;

    /**
     * Observe a demand access; append up to degree() candidates.
     *
     * Non-virtual front door: dispatches on the construction-time
     * kind tag to the concrete observeImpl() with a direct
     * (devirtualized, LTO-inlinable) call. This is the hottest call
     * in the whole simulator — it runs once per prefetcher slot per
     * demand access.
     */
    void observe(const PrefetchTrigger &trigger, CandidateVec &out);

    /** Convenience overload for tests and offline tools: appends
     *  this trigger's candidates to a growable vector. */
    void
    observe(const PrefetchTrigger &trigger,
            std::vector<PrefetchCandidate> &out)
    {
        CandidateVec vec;
        observe(trigger, vec);
        out.insert(out.end(), vec.begin(), vec.end());
    }

    /**
     * Prediction kernel: append up to degree() candidates for this
     * trigger. Public so the tag-dispatched front door can reach the
     * concrete implementation; call observe() instead.
     */
    virtual void observeImpl(const PrefetchTrigger &trigger,
                             CandidateVec &out) = 0;

    /** Dispatch tag (kNone for external subclasses). */
    PrefetcherKind kind() const { return kindTag; }

    /** A demand touched a line this prefetcher brought in. */
    virtual void
    onPrefetchUsed(std::uint64_t meta, bool timely)
    {
        (void)meta;
        (void)timely;
    }

    /** A prefetched line was evicted without any demand touch. */
    virtual void onPrefetchUseless(std::uint64_t meta) { (void)meta; }

    /**
     * An emitted candidate was never issued (coordination gating,
     * per-request filtering, or already resident). Learning
     * prefetchers must treat this as a neutral outcome, not an
     * inaccuracy — the prediction was never tested.
     */
    virtual void onPrefetchDropped(std::uint64_t meta)
    {
        (void)meta;
    }

    /**
     * End-of-epoch notification with the observed DRAM bandwidth
     * utilization in [0, 1] (Pythia's bandwidth-aware reward).
     */
    virtual void onEpochEnd(double bandwidth_usage)
    {
        (void)bandwidth_usage;
    }

    /** Clear all learned state. */
    virtual void reset() = 0;

    /** Metadata budget in bits (Table 8 accounting). */
    virtual std::size_t storageBits() const = 0;

    /** dmax in Algorithm 1. */
    unsigned maxDegree() const { return maxDeg; }

    /** Current throttled degree (set by the coordination policy). */
    unsigned degree() const { return currentDegree; }

    void
    setDegree(unsigned d)
    {
        currentDegree = d > maxDeg ? maxDeg : d;
    }

    /**
     * Snapshot contract: the base serializes the throttled degree;
     * stateful prefetchers override both and call the base first,
     * so save/restore orders stay mirrored.
     */
    virtual void saveState(SnapshotWriter &w) const;
    virtual void restoreState(SnapshotReader &r);

  private:
    unsigned maxDeg;
    unsigned currentDegree;
    PrefetcherKind kindTag;
};

/** Printable name for a kind. */
const char *prefetcherKindName(PrefetcherKind kind);

/**
 * Factory. kNone returns nullptr. @p level is honored by the
 * level-flexible prefetchers (next-line, stride); the published
 * designs (IPCP/Berti at L1D, the rest at L2C) keep their fixed
 * level.
 */
std::unique_ptr<Prefetcher>
makePrefetcher(PrefetcherKind kind, std::uint64_t seed = 1,
               CacheLevel level = CacheLevel::kL2C);

} // namespace athena

#endif // ATHENA_PREFETCH_PREFETCHER_HH

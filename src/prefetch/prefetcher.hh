/**
 * @file
 * Hardware prefetcher interface.
 *
 * Prefetchers observe demand accesses at their cache level and emit
 * prefetch candidates. The memory system issues the candidates
 * (subject to the coordination policy's enable/degree decisions),
 * tags the filled lines with the prefetcher's credit token, and
 * feeds usage feedback back through onPrefetchUsed /
 * onPrefetchUseless — which is how Pythia's RL reward and PPF's
 * perceptron training close their loops.
 */

#ifndef ATHENA_PREFETCH_PREFETCHER_HH
#define ATHENA_PREFETCH_PREFETCHER_HH

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/types.hh"

namespace athena
{

/** One prefetch candidate emitted by a prefetcher. */
struct PrefetchCandidate
{
    Addr lineNum = 0;      ///< Target cache-line number.
    std::uint64_t meta = 0; ///< Credit token echoed in feedback.
};

/** Context of the demand access that triggers training/prediction. */
struct PrefetchTrigger
{
    std::uint64_t pc = 0;
    Addr addr = 0;    ///< Byte address.
    bool hit = false; ///< Hit at the prefetcher's level.
    Cycle cycle = 0;
};

/**
 * Base class of all prefetchers.
 */
class Prefetcher
{
  public:
    /** @param max_degree prefetches per trigger at full throttle. */
    explicit Prefetcher(unsigned max_degree)
        : maxDeg(max_degree), currentDegree(max_degree)
    {}
    virtual ~Prefetcher() = default;

    virtual const char *name() const = 0;

    /** Cache level this prefetcher trains on and fills into. */
    virtual CacheLevel level() const = 0;

    /**
     * Observe a demand access; append up to degree() candidates.
     */
    virtual void observe(const PrefetchTrigger &trigger,
                         std::vector<PrefetchCandidate> &out) = 0;

    /** A demand touched a line this prefetcher brought in. */
    virtual void
    onPrefetchUsed(std::uint64_t meta, bool timely)
    {
        (void)meta;
        (void)timely;
    }

    /** A prefetched line was evicted without any demand touch. */
    virtual void onPrefetchUseless(std::uint64_t meta) { (void)meta; }

    /**
     * An emitted candidate was never issued (coordination gating,
     * per-request filtering, or already resident). Learning
     * prefetchers must treat this as a neutral outcome, not an
     * inaccuracy — the prediction was never tested.
     */
    virtual void onPrefetchDropped(std::uint64_t meta)
    {
        (void)meta;
    }

    /**
     * End-of-epoch notification with the observed DRAM bandwidth
     * utilization in [0, 1] (Pythia's bandwidth-aware reward).
     */
    virtual void onEpochEnd(double bandwidth_usage)
    {
        (void)bandwidth_usage;
    }

    /** Clear all learned state. */
    virtual void reset() = 0;

    /** Metadata budget in bits (Table 8 accounting). */
    virtual std::size_t storageBits() const = 0;

    /** dmax in Algorithm 1. */
    unsigned maxDegree() const { return maxDeg; }

    /** Current throttled degree (set by the coordination policy). */
    unsigned degree() const { return currentDegree; }

    void
    setDegree(unsigned d)
    {
        currentDegree = d > maxDeg ? maxDeg : d;
    }

  private:
    unsigned maxDeg;
    unsigned currentDegree;
};

/** Known prefetcher kinds, for factory construction. */
enum class PrefetcherKind : std::uint8_t
{
    kNone,
    kNextLine,
    kStride,
    kIpcp,
    kBerti,
    kPythia,
    kSppPpf,
    kMlop,
    kSms,
};

/** Printable name for a kind. */
const char *prefetcherKindName(PrefetcherKind kind);

/**
 * Factory. kNone returns nullptr. @p level is honored by the
 * level-flexible prefetchers (next-line, stride); the published
 * designs (IPCP/Berti at L1D, the rest at L2C) keep their fixed
 * level.
 */
std::unique_ptr<Prefetcher>
makePrefetcher(PrefetcherKind kind, std::uint64_t seed = 1,
               CacheLevel level = CacheLevel::kL2C);

} // namespace athena

#endif // ATHENA_PREFETCH_PREFETCHER_HH

/**
 * @file
 * SMS: Spatial Memory Streaming (Somogyi et al., ISCA 2006). L2C
 * prefetcher.
 *
 * SMS learns the footprint (bitmap of lines) each code context
 * touches within a spatial region (here: a 4 KB page), keyed by
 * (trigger PC, trigger offset). Active regions accumulate their
 * footprints in the AGT; when a region's generation ends (AGT
 * eviction), the footprint is stored in the PHT. A later trigger
 * with the same key replays the stored footprint as prefetches.
 */

#ifndef ATHENA_PREFETCH_SMS_HH
#define ATHENA_PREFETCH_SMS_HH

#include <array>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/simd.hh"
#include "prefetch/prefetcher.hh"

namespace athena
{

class SmsPrefetcher final : public Prefetcher
{
  public:
    SmsPrefetcher() : Prefetcher(8, PrefetcherKind::kSms) { reset(); }

    const char *name() const override { return "sms"; }
    CacheLevel level() const override { return CacheLevel::kL2C; }

    void observeImpl(const PrefetchTrigger &trigger,
                 CandidateVec &out) override;

    /**
     * Route the trigger path's region-key mix64 through the
     * direct-mapped key memo (on — the batched-inference plane's
     * mode, fed ahead of time by prepareTriggerBatch) or recompute
     * per trigger (off — the pre-batching scalar behavior).
     * Key-validated pure cache: bit-identical either way. The
     * simulator slaves this to the batched-inference knob, exactly
     * like Pythia's fold memo.
     */
    void setBatchedHashing(bool on) { batchedHashing = on; }

    /**
     * Batched region-key kernel: form (pc, trigger-offset) keys for
     * the window-collected loads, hash them wide (mix64 over four
     * lanes on the AVX2 backend), and install {key, hash} into the
     * memo so per-trigger observes reduce to a validated probe.
     * Pure priming — never changes results.
     */
    void prepareTriggerBatch(const std::uint64_t *pcs,
                             const Addr *addrs, unsigned n);

    void reset() override;

    void saveState(SnapshotWriter &w) const override;
    void restoreState(SnapshotReader &r) override;

    std::size_t
    storageBits() const override
    {
        // AGT 32 x (region 36 + key 16 + bitmap 64) +
        // PHT 256 x (tag 16 + bitmap 64); ~20 KB full config.
        return 32 * 116 + 256 * 80;
    }

  private:
    static constexpr unsigned kAgtEntries = 32;
    static constexpr unsigned kPhtEntries = 256;

    struct AgtEntry
    {
        Addr region = 0;
        bool valid = false;
        std::uint64_t key = 0;
        std::uint64_t bitmap = 0;
        std::uint64_t lruStamp = 0;
    };

    struct PhtEntry
    {
        std::uint16_t tag = 0;
        bool valid = false;
        std::uint64_t bitmap = 0;
    };

    /** Commit a finished generation into the PHT. */
    void commit(const AgtEntry &entry);

    static std::uint64_t
    keyOf(std::uint64_t pc, unsigned trigger_offset)
    {
        return (pc << 6) ^ trigger_offset;
    }

    /** Key-validated pure cache of mix64(key) for trigger keys. */
    struct KeyMemoEntry
    {
        std::uint64_t key = 0;
        std::uint64_t hash = 0;
        bool valid = false;
    };
    static constexpr unsigned kKeyMemoSize = 32; // power of two

    /** One key through the memo (batched-hashing mode only). */
    std::uint64_t keyHashLookup(std::uint64_t key);

    std::array<AgtEntry, kAgtEntries> agt;
    std::array<PhtEntry, kPhtEntries> pht;
    std::uint64_t lruClock = 0;
    std::array<KeyMemoEntry, kKeyMemoSize> keyMemo{};
    /** See setBatchedHashing(). */
    bool batchedHashing = false;
    /** SIMD backend for prepareTriggerBatch, latched at
     *  construction. */
    simd::Backend backend = simd::activeBackend();
};

} // namespace athena

#endif // ATHENA_PREFETCH_SMS_HH

/**
 * @file
 * MLOP implementation.
 */

#include "prefetch/mlop.hh"

#include <algorithm>
#include <cstdint>
#include <vector>

#include "common/hashing.hh"
#include "snapshot/snapshot.hh"

namespace athena
{

void
MlopPrefetcher::observeImpl(const PrefetchTrigger &trigger,
                        CandidateVec &out)
{
    Addr page = pageNumber(trigger.addr);
    unsigned offset = pageLineOffset(trigger.addr);

    AmtEntry *entry = nullptr;
    AmtEntry *victim = &amt[0];
    for (auto &e : amt) {
        if (e.valid && e.pageTag == page) {
            entry = &e;
            break;
        }
        if (!e.valid || e.lruStamp < victim->lruStamp)
            victim = &e;
    }
    if (!entry) {
        entry = victim;
        entry->valid = true;
        entry->pageTag = page;
        entry->bitmap = 0;
    }
    entry->lruStamp = ++lruClock;

    // Score: for each candidate offset d, an access at
    // (offset - d) in this page means offset d would have
    // prefetched the current line accurately.
    for (int d = -kMaxOffset; d <= kMaxOffset; ++d) {
        if (d == 0)
            continue;
        int src = static_cast<int>(offset) - d;
        if (src < 0 || src >= static_cast<int>(kLinesPerPage))
            continue;
        if (entry->bitmap & (1ull << src))
            ++scores[static_cast<unsigned>(d + kMaxOffset)];
    }
    entry->bitmap |= 1ull << offset;

    // Periodic offset (re)selection.
    if (++roundAccesses >= kRoundLength) {
        roundAccesses = 0;
        activeCount = 0;
        auto remaining = scores;
        for (unsigned k = 0; k < active.size(); ++k) {
            auto it =
                std::max_element(remaining.begin(), remaining.end());
            if (*it < kScoreFloor)
                break;
            int d = static_cast<int>(it - remaining.begin()) -
                    kMaxOffset;
            active[activeCount++] = d;
            *it = 0;
        }
        scores.fill(0);
    }

    // Issue prefetches with the active offsets.
    Addr line = lineNumber(trigger.addr);
    unsigned issued = 0;
    for (unsigned i = 0; i < activeCount && issued < degree(); ++i) {
        std::int64_t t = static_cast<std::int64_t>(line) + active[i];
        if (t > 0) {
            out.push_back({static_cast<Addr>(t), 0});
            ++issued;
        }
    }
}

std::vector<int>
MlopPrefetcher::activeOffsets() const
{
    return {active.begin(), active.begin() + activeCount};
}

void
MlopPrefetcher::reset()
{
    for (auto &e : amt)
        e = AmtEntry{};
    scores.fill(0);
    active.fill(0);
    activeCount = 0;
    roundAccesses = 0;
    lruClock = 0;
}

void
MlopPrefetcher::saveState(SnapshotWriter &w) const
{
    Prefetcher::saveState(w);
    for (const AmtEntry &e : amt) {
        w.u64(e.pageTag);
        w.boolean(e.valid);
        w.u64(e.bitmap);
        w.u64(e.lruStamp);
    }
    for (unsigned s : scores)
        w.u32(s);
    for (int a : active)
        w.i32(a);
    w.u32(activeCount);
    w.u32(roundAccesses);
    w.u64(lruClock);
}

void
MlopPrefetcher::restoreState(SnapshotReader &r)
{
    Prefetcher::restoreState(r);
    for (AmtEntry &e : amt) {
        e.pageTag = r.u64();
        e.valid = r.boolean();
        e.bitmap = r.u64();
        e.lruStamp = r.u64();
    }
    for (unsigned &s : scores)
        s = r.u32();
    for (int &a : active)
        a = r.i32();
    activeCount = r.u32();
    roundAccesses = r.u32();
    lruClock = r.u64();
}

} // namespace athena

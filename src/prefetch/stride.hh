/**
 * @file
 * Classic per-PC stride prefetcher (Chen & Baer style reference
 * table with 2-bit confidence). Used as a secondary baseline and in
 * tests.
 */

#ifndef ATHENA_PREFETCH_STRIDE_HH
#define ATHENA_PREFETCH_STRIDE_HH

#include <array>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/sat_counter.hh"
#include "prefetch/prefetcher.hh"

namespace athena
{

class StridePrefetcher final : public Prefetcher
{
  public:
    explicit StridePrefetcher(CacheLevel lvl = CacheLevel::kL2C,
                              unsigned max_degree = 4)
        : Prefetcher(max_degree, PrefetcherKind::kStride), lvl(lvl)
    {
        reset();
    }

    const char *name() const override { return "stride"; }
    CacheLevel level() const override { return lvl; }

    void observeImpl(const PrefetchTrigger &trigger,
                 CandidateVec &out) override;

    void reset() override;

    void saveState(SnapshotWriter &w) const override;
    void restoreState(SnapshotReader &r) override;

    std::size_t
    storageBits() const override
    {
        // 64 entries x (tag 10 + last 32 + stride 16 + conf 2).
        return kEntries * 60;
    }

  private:
    static constexpr unsigned kEntries = 64;

    struct Entry
    {
        std::uint64_t tag = 0;
        Addr lastLine = 0;
        std::int64_t stride = 0;
        SatCounter<2> conf{0};
        bool valid = false;
    };

    CacheLevel lvl;
    std::array<Entry, kEntries> table;
};

} // namespace athena

#endif // ATHENA_PREFETCH_STRIDE_HH

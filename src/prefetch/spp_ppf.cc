/**
 * @file
 * SPP+PPF implementation.
 */

#include "prefetch/spp_ppf.hh"

#include <array>
#include <cstdint>
#include <vector>

#include "common/hashing.hh"
#include "snapshot/snapshot.hh"

namespace athena
{

int
SppPpfPrefetcher::ppfSum(const std::array<std::uint16_t, 3> &idx) const
{
    int sum = 0;
    for (unsigned t = 0; t < 3; ++t)
        sum += ppf[t][idx[t]].raw();
    return sum;
}

void
SppPpfPrefetcher::ppfTrain(const std::array<std::uint16_t, 3> &idx,
                           bool useful)
{
    for (unsigned t = 0; t < 3; ++t)
        ppf[t][idx[t]].add(useful ? 1 : -1);
}

void
SppPpfPrefetcher::observeImpl(const PrefetchTrigger &trigger,
                          CandidateVec &out)
{
    Addr page = pageNumber(trigger.addr);
    unsigned offset = pageLineOffset(trigger.addr);

    StEntry &se = st[mix64(page) % kStEntries];
    bool new_page = !se.valid || se.pageTag != page;
    std::uint16_t sig;
    if (new_page) {
        se.valid = true;
        se.pageTag = page;
        se.lastOffset = offset;
        se.signature = 0;
        return;
    }

    auto delta = static_cast<std::int32_t>(offset) -
                 static_cast<std::int32_t>(se.lastOffset);
    if (delta == 0)
        return;

    // Train the pattern table under the *old* signature.
    PtEntry &pe = pt[se.signature % kPtEntries];
    if (pe.sigCount < 255)
        ++pe.sigCount;
    bool found = false;
    for (auto &d : pe.deltas) {
        if (d.count > 0 && d.delta == delta) {
            if (d.count < 255)
                ++d.count;
            found = true;
            break;
        }
    }
    if (!found) {
        PtDelta *victim = &pe.deltas[0];
        for (auto &d : pe.deltas) {
            if (d.count < victim->count)
                victim = &d;
        }
        victim->delta = static_cast<std::int8_t>(delta);
        victim->count = 1;
    }

    sig = advanceSignature(se.signature, delta);
    se.signature = sig;
    se.lastOffset = offset;

    // Speculative signature walk with path confidence.
    double confidence = 1.0;
    std::int32_t cursor = static_cast<std::int32_t>(offset);
    std::uint16_t walk_sig = sig;
    unsigned issued = 0;
    for (unsigned depth = 0; depth < degree(); ++depth) {
        const PtEntry &cur = pt[walk_sig % kPtEntries];
        if (cur.sigCount == 0)
            break;
        const PtDelta *best = nullptr;
        for (const auto &d : cur.deltas) {
            if (d.count > 0 && (!best || d.count > best->count))
                best = &d;
        }
        if (!best)
            break;
        confidence *= static_cast<double>(best->count) /
                      static_cast<double>(cur.sigCount);
        if (confidence < kConfThreshold)
            break;
        cursor += best->delta;
        if (cursor < 0 ||
            cursor >= static_cast<std::int32_t>(kLinesPerPage)) {
            break; // SPP does not cross pages
        }
        Addr line = (page << (kPageShift - kLineShift)) +
                    static_cast<Addr>(cursor);

        // PPF gate.
        std::array<std::uint16_t, 3> fidx = {
            static_cast<std::uint16_t>(walk_sig % kPpfTableSize),
            static_cast<std::uint16_t>(
                hashCombine(static_cast<std::uint64_t>(
                                static_cast<std::int64_t>(best->delta)),
                            depth) %
                kPpfTableSize),
            static_cast<std::uint16_t>(
                hashCombine(page, static_cast<std::uint64_t>(cursor)) %
                kPpfTableSize),
        };
        if (ppfSum(fidx) < kPpfThreshold) {
            walk_sig = advanceSignature(walk_sig, best->delta);
            continue; // filtered out
        }

        std::uint64_t meta = ringHead % kRingSize;
        ring[meta] = {fidx, true};
        ++ringHead;
        out.push_back({line, meta});
        ++issued;
        walk_sig = advanceSignature(walk_sig, best->delta);
    }
    (void)issued;
}

void
SppPpfPrefetcher::onPrefetchUsed(std::uint64_t meta, bool timely)
{
    (void)timely;
    Record &r = ring[meta % kRingSize];
    if (r.open) {
        ppfTrain(r.featureIdx, true);
        r.open = false;
    }
}

void
SppPpfPrefetcher::onPrefetchUseless(std::uint64_t meta)
{
    Record &r = ring[meta % kRingSize];
    if (r.open) {
        ppfTrain(r.featureIdx, false);
        r.open = false;
    }
}

void
SppPpfPrefetcher::reset()
{
    for (auto &e : st)
        e = StEntry{};
    for (auto &e : pt)
        e = PtEntry{};
    for (auto &table : ppf) {
        for (auto &w : table)
            w = SignedSatCounter<6>{};
    }
    for (auto &r : ring)
        r = Record{};
    ringHead = 0;
}

void
SppPpfPrefetcher::saveState(SnapshotWriter &w) const
{
    Prefetcher::saveState(w);
    for (const StEntry &e : st) {
        w.u64(e.pageTag);
        w.boolean(e.valid);
        w.u32(e.lastOffset);
        w.u16(e.signature);
    }
    for (const PtEntry &e : pt) {
        for (const PtDelta &d : e.deltas) {
            w.u8(static_cast<std::uint8_t>(d.delta));
            w.u8(d.count);
        }
        w.u8(e.sigCount);
    }
    for (const auto &table : ppf) {
        for (const SignedSatCounter<6> &c : table)
            w.i32(c.raw());
    }
    for (const Record &rec : ring) {
        for (std::uint16_t idx : rec.featureIdx)
            w.u16(idx);
        w.boolean(rec.open);
    }
    w.u64(ringHead);
}

void
SppPpfPrefetcher::restoreState(SnapshotReader &r)
{
    Prefetcher::restoreState(r);
    for (StEntry &e : st) {
        e.pageTag = r.u64();
        e.valid = r.boolean();
        e.lastOffset = r.u32();
        e.signature = r.u16();
    }
    for (PtEntry &e : pt) {
        for (PtDelta &d : e.deltas) {
            d.delta = static_cast<std::int8_t>(r.u8());
            d.count = r.u8();
        }
        e.sigCount = r.u8();
    }
    for (auto &table : ppf) {
        for (SignedSatCounter<6> &c : table)
            c = SignedSatCounter<6>(r.i32());
    }
    for (Record &rec : ring) {
        for (std::uint16_t &idx : rec.featureIdx)
            idx = r.u16();
        rec.open = r.boolean();
    }
    ringHead = r.u64();
}

} // namespace athena

/**
 * @file
 * SPP+PPF implementation.
 */

#include "prefetch/spp_ppf.hh"

#include <array>
#include <cstdint>
#include <vector>

#include "common/hashing.hh"

namespace athena
{

int
SppPpfPrefetcher::ppfSum(const std::array<std::uint16_t, 3> &idx) const
{
    int sum = 0;
    for (unsigned t = 0; t < 3; ++t)
        sum += ppf[t][idx[t]].raw();
    return sum;
}

void
SppPpfPrefetcher::ppfTrain(const std::array<std::uint16_t, 3> &idx,
                           bool useful)
{
    for (unsigned t = 0; t < 3; ++t)
        ppf[t][idx[t]].add(useful ? 1 : -1);
}

void
SppPpfPrefetcher::observeImpl(const PrefetchTrigger &trigger,
                          CandidateVec &out)
{
    Addr page = pageNumber(trigger.addr);
    unsigned offset = pageLineOffset(trigger.addr);

    StEntry &se = st[mix64(page) % kStEntries];
    bool new_page = !se.valid || se.pageTag != page;
    std::uint16_t sig;
    if (new_page) {
        se.valid = true;
        se.pageTag = page;
        se.lastOffset = offset;
        se.signature = 0;
        return;
    }

    auto delta = static_cast<std::int32_t>(offset) -
                 static_cast<std::int32_t>(se.lastOffset);
    if (delta == 0)
        return;

    // Train the pattern table under the *old* signature.
    PtEntry &pe = pt[se.signature % kPtEntries];
    if (pe.sigCount < 255)
        ++pe.sigCount;
    bool found = false;
    for (auto &d : pe.deltas) {
        if (d.count > 0 && d.delta == delta) {
            if (d.count < 255)
                ++d.count;
            found = true;
            break;
        }
    }
    if (!found) {
        PtDelta *victim = &pe.deltas[0];
        for (auto &d : pe.deltas) {
            if (d.count < victim->count)
                victim = &d;
        }
        victim->delta = static_cast<std::int8_t>(delta);
        victim->count = 1;
    }

    sig = advanceSignature(se.signature, delta);
    se.signature = sig;
    se.lastOffset = offset;

    // Speculative signature walk with path confidence.
    double confidence = 1.0;
    std::int32_t cursor = static_cast<std::int32_t>(offset);
    std::uint16_t walk_sig = sig;
    unsigned issued = 0;
    for (unsigned depth = 0; depth < degree(); ++depth) {
        const PtEntry &cur = pt[walk_sig % kPtEntries];
        if (cur.sigCount == 0)
            break;
        const PtDelta *best = nullptr;
        for (const auto &d : cur.deltas) {
            if (d.count > 0 && (!best || d.count > best->count))
                best = &d;
        }
        if (!best)
            break;
        confidence *= static_cast<double>(best->count) /
                      static_cast<double>(cur.sigCount);
        if (confidence < kConfThreshold)
            break;
        cursor += best->delta;
        if (cursor < 0 ||
            cursor >= static_cast<std::int32_t>(kLinesPerPage)) {
            break; // SPP does not cross pages
        }
        Addr line = (page << (kPageShift - kLineShift)) +
                    static_cast<Addr>(cursor);

        // PPF gate.
        std::array<std::uint16_t, 3> fidx = {
            static_cast<std::uint16_t>(walk_sig % kPpfTableSize),
            static_cast<std::uint16_t>(
                hashCombine(static_cast<std::uint64_t>(
                                static_cast<std::int64_t>(best->delta)),
                            depth) %
                kPpfTableSize),
            static_cast<std::uint16_t>(
                hashCombine(page, static_cast<std::uint64_t>(cursor)) %
                kPpfTableSize),
        };
        if (ppfSum(fidx) < kPpfThreshold) {
            walk_sig = advanceSignature(walk_sig, best->delta);
            continue; // filtered out
        }

        std::uint64_t meta = ringHead % kRingSize;
        ring[meta] = {fidx, true};
        ++ringHead;
        out.push_back({line, meta});
        ++issued;
        walk_sig = advanceSignature(walk_sig, best->delta);
    }
    (void)issued;
}

void
SppPpfPrefetcher::onPrefetchUsed(std::uint64_t meta, bool timely)
{
    (void)timely;
    Record &r = ring[meta % kRingSize];
    if (r.open) {
        ppfTrain(r.featureIdx, true);
        r.open = false;
    }
}

void
SppPpfPrefetcher::onPrefetchUseless(std::uint64_t meta)
{
    Record &r = ring[meta % kRingSize];
    if (r.open) {
        ppfTrain(r.featureIdx, false);
        r.open = false;
    }
}

void
SppPpfPrefetcher::reset()
{
    for (auto &e : st)
        e = StEntry{};
    for (auto &e : pt)
        e = PtEntry{};
    for (auto &table : ppf) {
        for (auto &w : table)
            w = SignedSatCounter<6>{};
    }
    for (auto &r : ring)
        r = Record{};
    ringHead = 0;
}

} // namespace athena

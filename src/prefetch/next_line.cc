/**
 * @file
 * Next-line prefetcher implementation.
 */

#include "prefetch/next_line.hh"

#include <vector>

namespace athena
{

void
NextLinePrefetcher::observeImpl(const PrefetchTrigger &trigger,
                            CandidateVec &out)
{
    Addr line = lineNumber(trigger.addr);
    for (unsigned d = 1; d <= degree(); ++d)
        out.push_back({line + d, 0});
}

} // namespace athena

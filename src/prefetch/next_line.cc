/**
 * @file
 * Next-line prefetcher implementation.
 */

#include "prefetch/next_line.hh"

#include <vector>

namespace athena
{

void
NextLinePrefetcher::observe(const PrefetchTrigger &trigger,
                            std::vector<PrefetchCandidate> &out)
{
    Addr line = lineNumber(trigger.addr);
    for (unsigned d = 1; d <= degree(); ++d)
        out.push_back({line + d, 0});
}

} // namespace athena

/**
 * @file
 * SPP + PPF: Signature Path Prefetcher (Kim et al., MICRO 2016)
 * with Perceptron-based Prefetch Filtering (Bhatia et al.,
 * ISCA 2019). L2C prefetcher.
 *
 * SPP compresses the delta history within a page into a signature,
 * looks the signature up in a pattern table to predict the next
 * delta, and walks the signature chain speculatively while the
 * multiplied path confidence stays above a threshold. PPF is a
 * perceptron that inspects each candidate prefetch (signature,
 * delta, depth, offset features) and suppresses the ones it has
 * learned to distrust; it trains on per-prefetch usefulness
 * feedback.
 */

#ifndef ATHENA_PREFETCH_SPP_PPF_HH
#define ATHENA_PREFETCH_SPP_PPF_HH

#include <array>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <vector>

#include "common/sat_counter.hh"
#include "prefetch/prefetcher.hh"

namespace athena
{

class SppPpfPrefetcher final : public Prefetcher
{
  public:
    SppPpfPrefetcher() : Prefetcher(6, PrefetcherKind::kSppPpf) { reset(); }

    const char *name() const override { return "spp_ppf"; }
    CacheLevel level() const override { return CacheLevel::kL2C; }

    void observeImpl(const PrefetchTrigger &trigger,
                 CandidateVec &out) override;

    void onPrefetchUsed(std::uint64_t meta, bool timely) override;
    void onPrefetchUseless(std::uint64_t meta) override;

    void reset() override;

    void saveState(SnapshotWriter &w) const override;
    void restoreState(SnapshotReader &r) override;

    std::size_t
    storageBits() const override
    {
        // ST 64 x 28 + PT 512 x 4 x 12 + PPF 3 tables x 1024 x 6 +
        // record ring 128 x 36; ~39.3 KB in the paper's full config.
        return 64 * 28 + 512 * 4 * 12 + 3 * 1024 * 6 + 128 * 36;
    }

  private:
    static constexpr unsigned kStEntries = 64;
    static constexpr unsigned kPtEntries = 512;
    static constexpr unsigned kPtWays = 4;
    static constexpr unsigned kSigBits = 12;
    static constexpr double kConfThreshold = 0.30;
    static constexpr unsigned kPpfTableSize = 1024;
    static constexpr int kPpfThreshold = 0;
    static constexpr unsigned kRingSize = 128;

    struct StEntry
    {
        Addr pageTag = 0;
        bool valid = false;
        unsigned lastOffset = 0;
        std::uint16_t signature = 0;
    };

    struct PtDelta
    {
        std::int8_t delta = 0;
        std::uint8_t count = 0;
    };

    struct PtEntry
    {
        std::array<PtDelta, kPtWays> deltas;
        std::uint8_t sigCount = 0;
    };

    /** Per-issued-prefetch PPF training record. */
    struct Record
    {
        std::array<std::uint16_t, 3> featureIdx{};
        bool open = false;
    };

    static std::uint16_t
    advanceSignature(std::uint16_t sig, std::int32_t delta)
    {
        return static_cast<std::uint16_t>(
            ((sig << 3) ^ static_cast<std::uint16_t>(delta & 0x7f)) &
            ((1u << kSigBits) - 1));
    }

    int ppfSum(const std::array<std::uint16_t, 3> &idx) const;
    void ppfTrain(const std::array<std::uint16_t, 3> &idx, bool useful);

    std::array<StEntry, kStEntries> st;
    std::array<PtEntry, kPtEntries> pt;
    std::array<std::array<SignedSatCounter<6>, kPpfTableSize>, 3> ppf;

    std::array<Record, kRingSize> ring;
    std::uint64_t ringHead = 0;
};

} // namespace athena

#endif // ATHENA_PREFETCH_SPP_PPF_HH

/**
 * @file
 * MLOP: Multi-Lookahead Offset Prefetching (Shakerinava et al.,
 * DPC-3 2019). L2C prefetcher.
 *
 * MLOP keeps an access map of recently touched pages and scores
 * every candidate offset d by how often an access at line X was
 * preceded by an access at X - d within the same page (i.e., how
 * accurate prefetching with offset d *would have been*). Offsets
 * are (re)selected at the end of fixed evaluation rounds; multiple
 * best offsets approximate the multiple lookahead levels of the
 * original design.
 */

#ifndef ATHENA_PREFETCH_MLOP_HH
#define ATHENA_PREFETCH_MLOP_HH

#include <array>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "prefetch/prefetcher.hh"

namespace athena
{

class MlopPrefetcher final : public Prefetcher
{
  public:
    MlopPrefetcher() : Prefetcher(4, PrefetcherKind::kMlop) { reset(); }

    const char *name() const override { return "mlop"; }
    CacheLevel level() const override { return CacheLevel::kL2C; }

    void observeImpl(const PrefetchTrigger &trigger,
                 CandidateVec &out) override;

    void reset() override;

    void saveState(SnapshotWriter &w) const override;
    void restoreState(SnapshotReader &r) override;

    std::size_t
    storageBits() const override
    {
        // AMT 32 x (tag 36 + bitmap 64) + 62 x 10 score counters +
        // 4 active offsets; ~8 KB in the full configuration.
        return 32 * 100 + 62 * 10 + 4 * 7;
    }

    /** Currently activated offsets (tests peek at convergence). */
    std::vector<int> activeOffsets() const;

  private:
    static constexpr unsigned kAmtEntries = 32;
    static constexpr int kMaxOffset = 31;
    static constexpr unsigned kRoundLength = 512;
    static constexpr unsigned kScoreFloor = 48;

    struct AmtEntry
    {
        Addr pageTag = 0;
        bool valid = false;
        std::uint64_t bitmap = 0;
        std::uint64_t lruStamp = 0;
    };

    std::array<AmtEntry, kAmtEntries> amt;
    /** Scores for offsets -31..-1, 1..31 (index = offset + 31). */
    std::array<unsigned, 2 * kMaxOffset + 1> scores{};
    std::array<int, 4> active{};
    unsigned activeCount = 0;
    unsigned roundAccesses = 0;
    std::uint64_t lruClock = 0;
};

} // namespace athena

#endif // ATHENA_PREFETCH_MLOP_HH

/**
 * @file
 * Statistics helper implementations.
 */

#include "common/stats.hh"

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <vector>

namespace athena
{

double
geomean(const std::vector<double> &values)
{
    if (values.empty())
        return 1.0;
    double log_sum = 0.0;
    for (double v : values)
        log_sum += std::log(v);
    return std::exp(log_sum / static_cast<double>(values.size()));
}

double
mean(const std::vector<double> &values)
{
    if (values.empty())
        return 0.0;
    double sum = 0.0;
    for (double v : values)
        sum += v;
    return sum / static_cast<double>(values.size());
}

double
percentileSorted(const std::vector<double> &sorted, double p)
{
    if (sorted.empty())
        return 0.0;
    if (sorted.size() == 1)
        return sorted.front();
    double rank = p / 100.0 * static_cast<double>(sorted.size() - 1);
    auto lo = static_cast<std::size_t>(rank);
    std::size_t hi = std::min(lo + 1, sorted.size() - 1);
    double frac = rank - static_cast<double>(lo);
    return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

QuartileSummary
quartiles(std::vector<double> values)
{
    QuartileSummary s;
    if (values.empty())
        return s;
    std::sort(values.begin(), values.end());
    s.min = values.front();
    s.max = values.back();
    s.q1 = percentileSorted(values, 25.0);
    s.median = percentileSorted(values, 50.0);
    s.q3 = percentileSorted(values, 75.0);
    s.mean = mean(values);
    double iqr = s.q3 - s.q1;
    s.whiskerLo = std::max(s.min, s.q1 - 1.5 * iqr);
    s.whiskerHi = std::min(s.max, s.q3 + 1.5 * iqr);
    return s;
}

} // namespace athena

/**
 * @file
 * Hash mixers used by the QVStore planes, Bloom filters, perceptron
 * feature indices, and set-index computations.
 *
 * All hashes are deterministic pure functions so that hardware tables
 * indexed by them behave identically across runs.
 */

#ifndef ATHENA_COMMON_HASHING_HH
#define ATHENA_COMMON_HASHING_HH

#include <cstdint>

namespace athena
{

/** 64-bit finalizer from MurmurHash3 (fmix64). Full avalanche. */
constexpr std::uint64_t
mix64(std::uint64_t x)
{
    x ^= x >> 33;
    x *= 0xff51afd7ed558ccdull;
    x ^= x >> 33;
    x *= 0xc4ceb9fe1a85ec53ull;
    x ^= x >> 33;
    return x;
}

/** Combine two words into one mixed hash (order-sensitive). */
constexpr std::uint64_t
hashCombine(std::uint64_t a, std::uint64_t b)
{
    return mix64(a ^ (b + 0x9e3779b97f4a7c15ull + (a << 6) + (a >> 2)));
}

/**
 * Keyed hash: family member @p key of a universal-ish hash family.
 * Used where a structure needs several independent hash functions
 * (Bloom filters, QVStore planes).
 */
constexpr std::uint64_t
keyedHash(std::uint64_t x, std::uint64_t key)
{
    return mix64(x * (2 * key + 1) + 0x632be59bd9b4e019ull * (key + 1));
}

/** Fold a 64-bit hash down to @p bits bits by XOR-folding. */
constexpr std::uint64_t
foldTo(std::uint64_t x, unsigned bits)
{
    std::uint64_t r = 0;
    while (x) {
        r ^= x & ((1ull << bits) - 1);
        x >>= bits;
    }
    return r;
}

} // namespace athena

#endif // ATHENA_COMMON_HASHING_HH
